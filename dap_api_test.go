package dap_test

import (
	"math"
	"strings"
	"testing"

	"dap"
)

func TestPublicAPIQuickRun(t *testing.T) {
	cfg := dap.QuickConfig()
	mix := dap.RateWorkload("gcc.expr", cfg.CPU.Cores)
	r := dap.Run(cfg, mix)
	if r.Cycles == 0 || len(r.Cores) != cfg.CPU.Cores {
		t.Fatalf("bad result: cycles=%d cores=%d", r.Cycles, len(r.Cores))
	}
}

func TestPublicAPIUnknownWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload must panic")
		}
	}()
	dap.RateWorkload("not-a-benchmark", 8)
}

func TestPublicAPIUnknownWorkloadError(t *testing.T) {
	_, err := dap.WorkloadByNameE("not-a-benchmark", 8)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "mcf") {
		t.Fatalf("error does not list the valid names: %v", err)
	}
	if _, err := dap.AloneIPCE(dap.QuickConfig(), "not-a-benchmark"); err == nil {
		t.Fatal("AloneIPCE accepted an unknown workload")
	}
	if w, err := dap.WorkloadByNameE("mcf", 4); err != nil || len(w.Specs) != 4 {
		t.Fatalf("valid workload rejected: %v", err)
	}
}

func TestPublicAPIRunEValidates(t *testing.T) {
	cfg := dap.QuickConfig()
	cfg.Arch = dap.MainMemoryOnly
	cfg.Policy = dap.PolicyDAP // partitioning with nothing to partition
	mix, _ := dap.WorkloadByNameE("mcf", cfg.CPU.Cores)
	if _, err := dap.RunE(cfg, mix); err == nil {
		t.Fatal("RunE accepted DAP on a cacheless system")
	}
}

// The hardening types are part of the facade.
var (
	_ *dap.StallError
	_ *dap.AuditError
	_ dap.FaultPlan
)

func TestPublicAPIWorkloadCatalog(t *testing.T) {
	if n := len(dap.WorkloadNames()); n != 17 {
		t.Fatalf("workloads = %d, want 17", n)
	}
	if n := len(dap.Workloads(8)); n != 44 {
		t.Fatalf("mixes = %d, want 44", n)
	}
	if _, ok := dap.SpecOf("mcf"); !ok {
		t.Fatal("mcf spec must resolve")
	}
}

func TestPublicAPICustomSpec(t *testing.T) {
	spec, _ := dap.SpecOf("gcc.expr")
	spec.Name = "custom"
	spec.FootprintMB = 2
	cfg := dap.QuickConfig()
	cfg.MeasureInstr = 100_000
	cfg.WarmAccesses = 30_000
	r := dap.Run(cfg, dap.CustomRate(spec, cfg.CPU.Cores))
	if r.Cycles == 0 {
		t.Fatal("custom workload failed to run")
	}
	mix := dap.CustomMix("pair", []dap.Spec{spec, spec, spec, spec, spec, spec, spec, spec})
	if r := dap.Run(cfg, mix); r.Cycles == 0 {
		t.Fatal("custom mix failed to run")
	}
}

func TestPublicAPIBandwidthModel(t *testing.T) {
	// the Section III example
	b := []float64{102.4, 51.2}
	if got := dap.DeliveredBandwidth(b, []float64{0.5, 0.5}); got != 102.4 {
		t.Fatalf("equation 2: %v", got)
	}
	f := dap.OptimalFractions(b)
	if math.Abs(f[0]-2.0/3) > 1e-12 {
		t.Fatalf("equation 4: %v", f)
	}
	if g := dap.GeoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("geomean: %v", g)
	}
}

func TestPublicAPIAloneIPC(t *testing.T) {
	cfg := dap.QuickConfig()
	cfg.MeasureInstr = 100_000
	cfg.WarmAccesses = 50_000
	v := dap.AloneIPC(cfg, "parboil-histo")
	if v <= 0 || v > 4.05 {
		t.Fatalf("alone IPC = %v", v)
	}
}
