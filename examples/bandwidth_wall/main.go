// Bandwidth wall: reproduce the paper's motivating observation (Figure 1 and
// Section III) that raising the memory-side cache hit rate stops improving —
// and for eDRAM actively hurts — delivered bandwidth, because the main
// memory sits idle. The measured curves from the cycle-level DRAM models are
// printed next to the analytical bound of Equation 2.
package main

import (
	"fmt"

	"dap"
	"dap/internal/harness"
)

func main() {
	fmt.Println("Delivered read bandwidth (GB/s) vs. memory-side cache hit rate")
	fmt.Println()
	fmt.Printf("%8s | %12s %12s | %12s %12s\n", "hit rate",
		"DRAM$ sim", "DRAM$ model", "eDRAM sim", "eDRAM model")

	for _, h := range harness.Figure1HitRates {
		dramSim := harness.BandwidthKernel(harness.KernelDRAMCache, h, 256, 2_000_000)
		edramSim := harness.BandwidthKernel(harness.KernelEDRAM, h, 256, 2_000_000)

		// Equation 2 bounds. DRAM cache: hits and fills share one channel
		// set, so the cache serves fraction h + (1-h) = 1 of every access;
		// main memory serves (1-h). eDRAM: reads h on the read channels,
		// fills (1-h) on the write channels, misses (1-h) at main memory.
		dramModel := dap.DeliveredBandwidth(
			[]float64{102.4, 38.4},
			[]float64{1.0, 1 - h},
		)
		edramModel := dap.DeliveredBandwidth(
			[]float64{51.2, 51.2, 38.4},
			[]float64{h, 1 - h, 1 - h},
		)
		fmt.Printf("%7.0f%% | %12.1f %12.1f | %12.1f %12.1f\n",
			h*100, dramSim.DeliveredGBps, dramModel, edramSim.DeliveredGBps, edramModel)
	}

	fmt.Println()
	fmt.Println("The DRAM cache saturates at its own bandwidth past ~70% hits;")
	fmt.Println("the eDRAM cache peaks mid-range and *loses* bandwidth as the hit")
	fmt.Println("rate approaches 100%, stranding 38.4 GB/s of DDR4 bandwidth.")
	fmt.Println()

	// The conclusion of Section III: the optimal partition sends accesses
	// in proportion to source bandwidths.
	opt := dap.OptimalFractions([]float64{102.4, 38.4})
	fmt.Printf("Equation 4: optimal split for 102.4+38.4 GB/s is %.0f%%/%.0f%%, "+
		"delivering %.1f GB/s.\n", opt[0]*100, opt[1]*100,
		dap.DeliveredBandwidth([]float64{102.4, 38.4}, opt))
}
