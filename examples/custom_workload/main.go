// Custom workload: author a new synthetic application spec and evaluate how
// much DAP helps it across the three memory-side cache architectures. The
// spec below models a key-value-store-like service: a hot index with heavy
// temporal locality, a large sparsely-used record heap (poor sector
// utilization, like omnetpp), and a moderate write rate from updates.
package main

import (
	"fmt"

	"dap"
)

func main() {
	kv := dap.Spec{
		Name:          "kvstore",
		FootprintMB:   8,    // record heap per core (64x scaled)
		HotMB:         1,    // index
		HotFrac:       0.35, // index lookups
		ChaseFrac:     0.10, // bucket-chain walks serialize
		WriteFrac:     0.25, // updates
		MemPerKilo:    30,
		Burstiness:    0.5,
		SectorDensity: 0.25, // records scattered within pages
		SkewAlpha:     2.5,  // Zipfian keys
	}

	archs := []struct {
		name string
		a    dap.Architecture
	}{
		{"sectored DRAM$", dap.SectoredDRAMCache},
		{"Alloy$", dap.AlloyCache},
		{"eDRAM$", dap.SectoredEDRAM},
	}

	ipc := func(r dap.Result) float64 {
		s := 0.0
		for _, c := range r.Cores {
			s += c.IPC()
		}
		return s
	}

	fmt.Printf("workload %q on %d cores\n\n", kv.Name, 8)
	fmt.Printf("%-16s %10s %10s %8s %10s %10s\n",
		"architecture", "base IPC", "DAP IPC", "gain", "hit(base)", "CAS(dap)")
	for _, ar := range archs {
		cfg := dap.QuickConfig()
		cfg.Arch = ar.a
		mix := dap.CustomRate(kv, cfg.CPU.Cores)
		base := dap.Run(cfg, mix)
		cfg.Policy = dap.PolicyDAP
		d := dap.Run(cfg, mix)
		fmt.Printf("%-16s %10.3f %10.3f %7.1f%% %10.3f %10.3f\n",
			ar.name, ipc(base), ipc(d), (ipc(d)/ipc(base)-1)*100,
			base.MemSide.HitRatio(), d.MainMemCASFraction())
	}

	fmt.Println("\nAuthor your own dap.Spec to explore where access partitioning")
	fmt.Println("pays off: it needs a saturated cache and idle memory bandwidth.")
}
