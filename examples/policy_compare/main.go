// Policy comparison: the Figure 11 experiment on a single heterogeneous mix
// — self-balancing dispatch (SBD and its write-through variant), BATMAN's
// hit-rate-targeted set disabling, and DAP — all normalized to the shared
// baseline.
package main

import (
	"fmt"

	"dap"
)

func main() {
	cfg := dap.QuickConfig()
	// a dissimilar heterogeneous mix: bandwidth hogs next to latency-bound apps
	var mix dap.Workload
	for _, m := range dap.Workloads(cfg.CPU.Cores) {
		if m.Name == "hetero-dis-03" {
			mix = m
			break
		}
	}
	fmt.Printf("mix %s:\n", mix.Name)
	for i, s := range mix.Specs {
		fmt.Printf("  core %d: %s\n", i, s.Name)
	}
	fmt.Println()

	policies := []struct {
		name string
		p    dap.Policy
	}{
		{"baseline", dap.PolicyBaseline},
		{"SBD", dap.PolicySBD},
		{"SBD-WT", dap.PolicySBDWT},
		{"BATMAN", dap.PolicyBATMAN},
		{"DAP", dap.PolicyDAP},
	}

	ipc := func(r dap.Result) float64 {
		s := 0.0
		for _, c := range r.Cores {
			s += c.IPC()
		}
		return s
	}

	var baseIPC float64
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "policy", "IPC", "vs base", "MS$ hit", "MM CAS")
	for _, pc := range policies {
		c := cfg
		c.Policy = pc.p
		r := dap.Run(c, mix)
		v := ipc(r)
		if pc.p == dap.PolicyBaseline {
			baseIPC = v
		}
		fmt.Printf("%-10s %10.3f %9.1f%% %10.3f %10.3f\n",
			pc.name, v, (v/baseIPC-1)*100, r.MemSide.HitRatio(), r.MainMemCASFraction())
	}
	fmt.Println("\nSBD pays for forced page cleaning; BATMAN's set disabling is")
	fmt.Println("coarse and slow to adapt; DAP recomputes the optimal partition")
	fmt.Println("every 64 cycles and converges near B_MM/(B_MM+B_MS$) = 0.27.")
}
