// Quickstart: run the paper's headline experiment on one workload — the
// baseline sectored DRAM cache against DAP — and print what changed:
// weighted throughput, the main-memory CAS fraction (the paper's measure of
// how close the system is to optimal bandwidth partitioning), and the cache
// hit rate DAP deliberately sacrifices.
package main

import (
	"fmt"

	"dap"
)

func main() {
	const name = "libquantum"
	cfg := dap.QuickConfig() // shortened runs; use DefaultConfig for full length
	mix := dap.RateWorkload(name, cfg.CPU.Cores)

	base := dap.Run(cfg, mix)

	cfg.Policy = dap.PolicyDAP
	withDAP := dap.Run(cfg, mix)

	ipc := func(r dap.Result) float64 {
		s := 0.0
		for _, c := range r.Cores {
			s += c.IPC()
		}
		return s
	}

	optimal := dap.OptimalFractions([]float64{102.4, 38.4})[1]
	fmt.Printf("workload: %s (rate-%d)\n\n", name, cfg.CPU.Cores)
	fmt.Printf("%-28s %10s %10s\n", "", "baseline", "DAP")
	fmt.Printf("%-28s %10.3f %10.3f\n", "aggregate IPC", ipc(base), ipc(withDAP))
	fmt.Printf("%-28s %10.3f %10.3f\n", "MS$ hit ratio", base.MemSide.HitRatio(), withDAP.MemSide.HitRatio())
	fmt.Printf("%-28s %10.3f %10.3f   (optimal %.3f)\n", "main-memory CAS fraction",
		base.MainMemCASFraction(), withDAP.MainMemCASFraction(), optimal)
	fmt.Printf("%-28s %10.1f %10.1f\n", "delivered GB/s", base.DeliveredGBps, withDAP.DeliveredGBps)
	fmt.Printf("\nspeedup: %.1f%%\n", (ipc(withDAP)/ipc(base)-1)*100)

	f, w, i, s := withDAP.DAP.Fractions()
	fmt.Printf("DAP decisions: %d (FWB %.0f%% | WB %.0f%% | IFRM %.0f%% | SFRM %.0f%%)\n",
		withDAP.DAP.Total(), f*100, w*100, i*100, s*100)
	fmt.Println("\nDAP trades cache hits for idle main-memory bandwidth: the hit")
	fmt.Println("ratio drops, the CAS fraction approaches the optimal split, and")
	fmt.Println("delivered bandwidth (hence throughput) rises.")
}
