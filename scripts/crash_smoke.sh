#!/usr/bin/env bash
# crash_smoke.sh — kill -9 a running sweep service and verify it resumes.
#
# Boots `dapsim -serve -sweep-dir` on a random port, submits a small sweep
# over the HTTP API, waits until at least one job has completed, SIGKILLs
# the process mid-sweep, restarts it against the same state directory, and
# asserts the resumed service drives the sweep to completion: every job
# reported "done", every result served by /jobs/1/results, and a clean
# exit 0 on SIGINT. This is the shell-level counterpart of the in-repo
# kill-and-restart test (internal/harness/sweep_crash_test.go), exercising
# the real binary, real signals and the real WAL-replay path.
set -u

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
log="$tmp/dapsim.log"
state="$tmp/state"
pid=""

cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

dump_log() {
    echo "--- dapsim output ($log) ---" >&2
    if [ -s "$log" ]; then
        cat "$log" >&2
    else
        echo "(no output captured)" >&2
    fi
    echo "--- end dapsim output ---" >&2
}

fail() {
    echo "crash-smoke: FAIL: $*" >&2
    dump_log
    exit 1
}

# start_service: launches the sweep service (appending to the shared log)
# and waits for its bound address; sets $pid and $addr. Each start must
# print its own address line — matching on the line count, not just the
# last match, keeps a restart from reading the dead predecessor's address.
starts=0
start_service() {
    "$tmp/dapsim" -serve 127.0.0.1:0 -sweep-dir "$state" -sweep-workers 1 \
        >>"$log" 2>&1 &
    pid=$!
    starts=$((starts + 1))
    addr=""
    for _ in $(seq 1 120); do
        addrs=$(sed -n 's|^sweep service: serving on http://\([^ ]*\).*|\1|p' "$log")
        if [ "$(printf '%s\n' "$addrs" | grep -c .)" -ge "$starts" ]; then
            addr=$(printf '%s\n' "$addrs" | tail -1)
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || fail "dapsim exited during startup"
        sleep 0.5
    done
    fail "timeout: no bound address within 60s"
}

# done_count: prints the sweep's "done" count from GET /jobs/1 (0 if the
# request fails — the service may be mid-restart).
done_count() {
    curl -s "http://$addr/jobs/1" 2>/dev/null |
        grep -o '"done": *[0-9]*' | head -1 | grep -o '[0-9]*$'
}

echo "crash-smoke: building dapsim"
go build -o "$tmp/dapsim" ./cmd/dapsim || fail "build"

echo "crash-smoke: starting sweep service"
start_service
echo "crash-smoke: serving on $addr"

# 4 jobs: 2 mixes x 2 policies, quick config. One worker and ~half-second
# jobs, so the kill lands with the sweep genuinely in progress.
spec='{"mixes":["mcf","omnetpp"],"policies":["baseline","dap"],"cores":2,"instr":1000000,"warm":100000,"quick":true}'
code=$(curl -s -o "$tmp/submit" -w '%{http_code}' \
    -X POST -d "$spec" "http://$addr/jobs") || fail "curl POST /jobs"
[ "$code" = 201 ] || fail "POST /jobs returned $code: $(cat "$tmp/submit")"
grep -q '"jobs": *4' "$tmp/submit" || fail "submit response lacks 4 jobs: $(cat "$tmp/submit")"

# Wait for partial progress (>=1 done, ideally not all 4), then pull the plug.
for _ in $(seq 1 240); do
    n=$(done_count)
    [ "${n:-0}" -ge 1 ] 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || fail "dapsim died while sweeping"
    sleep 0.25
done
[ "${n:-0}" -ge 1 ] || fail "timeout: no job completed within 60s"
echo "crash-smoke: $n/4 done — SIGKILL"
kill -9 "$pid"
wait "$pid" 2>/dev/null
pid=""

echo "crash-smoke: restarting against the same state dir"
start_service

# The resumed service must finish the sweep from its journal.
for _ in $(seq 1 240); do
    n=$(done_count)
    [ "${n:-0}" = 4 ] && break
    kill -0 "$pid" 2>/dev/null || fail "resumed dapsim died"
    sleep 0.25
done
[ "${n:-0}" = 4 ] || fail "timeout: resumed sweep stuck at ${n:-0}/4 done"
echo "crash-smoke: sweep complete after resume"

# Every result is durably stored and served.
code=$(curl -s -o "$tmp/results" -w '%{http_code}' "http://$addr/jobs/1/results") || fail "curl /jobs/1/results"
[ "$code" = 200 ] || fail "/jobs/1/results returned $code"
results=$(grep -o '"agg_ipc"' "$tmp/results" | wc -l)
[ "$results" = 4 ] || fail "expected 4 stored results, found $results: $(cat "$tmp/results")"

kill -INT "$pid"
wait "$pid"
status=$?
[ "$status" = 0 ] || fail "dapsim exited $status after SIGINT, want clean 0"
pid=""

echo "crash-smoke: PASS"
