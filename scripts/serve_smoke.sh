#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the live telemetry service.
#
# Builds dapsim (race detector on), starts it with -serve on a random port
# (port 0, so parallel CI jobs never collide), waits for the replicated
# quick run to finish, asserts that /healthz and /metrics answer 200 and
# that the metric families the dashboard depends on (DAP credit gauges,
# runner pool counters) are present, then checks the server shuts down
# cleanly on SIGINT (exit 0 via context cancellation).
#
# Every failure path — including the server never printing its bound
# address — dumps the server's captured output so a CI log is actionable
# without a rerun.
set -u

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
log="$tmp/dapsim.log"
pid=""

cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

dump_log() {
    echo "--- dapsim output ($log) ---" >&2
    if [ -s "$log" ]; then
        cat "$log" >&2
    else
        echo "(no output captured)" >&2
    fi
    echo "--- end dapsim output ---" >&2
}

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    dump_log
    exit 1
}

# wait_for <deadline-seconds> <description> <predicate...>
# Polls the predicate every 0.5s; fails (with server output) when the
# server dies or the deadline passes.
wait_for() {
    local deadline=$1 what=$2
    shift 2
    local tries=$((deadline * 2))
    for _ in $(seq 1 "$tries"); do
        "$@" && return 0
        kill -0 "$pid" 2>/dev/null || fail "dapsim exited while waiting for $what"
        sleep 0.5
    done
    fail "timeout: $what did not happen within ${deadline}s"
}

echo "serve-smoke: building dapsim (-race)"
go build -race -o "$tmp/dapsim" ./cmd/dapsim || fail "build"

"$tmp/dapsim" -quick -workload mcf -policy dap -metrics-every 20000 \
    -replicate 2 -j 2 -serve 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

# Startup: the server must print its bound address promptly; a hang here is
# the classic mis-binding failure, so surface the server's own output.
bound_addr() {
    addr=$(sed -n 's|^telemetry: serving on http://||p' "$log" | head -1)
    [ -n "$addr" ]
}
addr=""
wait_for 60 "bound address on stdout" bound_addr
echo "serve-smoke: serving on $addr"

run_complete() { grep -q "run complete" "$log"; }
wait_for 120 "replicated run completion" run_complete

code=$(curl -s -o "$tmp/healthz" -w '%{http_code}' "http://$addr/healthz") || fail "curl /healthz"
[ "$code" = 200 ] || fail "/healthz returned $code"
grep -q '"status"' "$tmp/healthz" || fail "/healthz body lacks status: $(cat "$tmp/healthz")"

code=$(curl -s -o "$tmp/metrics" -w '%{http_code}' "http://$addr/metrics") || fail "curl /metrics"
[ "$code" = 200 ] || fail "/metrics returned $code"
for family in dap_credit_fwb runner_jobs_done sim_runs_finished_total \
    telemetry_http_request_seconds_bucket; do
    grep -q "^$family" "$tmp/metrics" || fail "/metrics missing $family"
done

kill -INT "$pid"
wait "$pid"
status=$?
[ "$status" = 0 ] || fail "dapsim exited $status after SIGINT, want clean 0"
pid=""

# Phase 2: the sweep service exposes the job-lifecycle observability
# surface — latency histogram families on /metrics, the Chrome trace
# endpoint, and a clean 404 (not a routing error) for a job with no flight
# recording.
echo "serve-smoke: starting sweep service"
log="$tmp/sweep.log"
"$tmp/dapsim" -serve 127.0.0.1:0 -sweep-dir "$tmp/state" -sweep-workers 2 \
    >"$log" 2>&1 &
pid=$!

sweep_addr() {
    addr=$(sed -n 's|^sweep service: serving on http://\([^ ]*\).*|\1|p' "$log" | head -1)
    [ -n "$addr" ]
}
addr=""
wait_for 60 "sweep service bound address" sweep_addr
echo "serve-smoke: sweep service on $addr"

code=$(curl -s -o "$tmp/smetrics" -w '%{http_code}' "http://$addr/metrics") || fail "curl sweep /metrics"
[ "$code" = 200 ] || fail "sweep /metrics returned $code"
for family in jobqueue_queue_wait_seconds_bucket jobqueue_lease_seconds_bucket \
    jobqueue_execute_seconds_bucket jobqueue_wal_append_seconds_bucket \
    jobqueue_checkpoint_seconds_bucket store_put_seconds_bucket \
    jobqueue_depth jobqueue_deadletters; do
    grep -q "^$family" "$tmp/smetrics" || fail "sweep /metrics missing $family"
done

code=$(curl -s -o "$tmp/flight" -w '%{http_code}' "http://$addr/jobs/12345/flight") || fail "curl /jobs/12345/flight"
[ "$code" = 404 ] || fail "/jobs/12345/flight returned $code, want 404"
grep -q "no flight recording for job 12345" "$tmp/flight" \
    || fail "/jobs/12345/flight body is not the flight 404: $(cat "$tmp/flight")"

code=$(curl -s -o "$tmp/trace" -w '%{http_code}' "http://$addr/trace") || fail "curl /trace"
[ "$code" = 200 ] || fail "/trace returned $code"
grep -q '"traceEvents"' "$tmp/trace" || fail "/trace is not Chrome trace JSON: $(head -c 200 "$tmp/trace")"

kill -INT "$pid"
wait "$pid"
status=$?
[ "$status" = 0 ] || fail "sweep service exited $status after SIGINT, want clean 0"
pid=""

echo "serve-smoke: PASS"
