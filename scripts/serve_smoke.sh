#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the live telemetry service.
#
# Builds dapsim (race detector on), starts it with -serve on a random port,
# waits for the replicated quick run to finish, asserts that /healthz and
# /metrics answer 200 and that the metric families the dashboard depends on
# (DAP credit gauges, runner pool counters) are present, then checks the
# server shuts down cleanly on SIGINT (exit 0 via context cancellation).
set -u

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
log="$tmp/dapsim.log"
pid=""
fail() {
    echo "serve-smoke: FAIL: $*" >&2
    [ -s "$log" ] && { echo "--- dapsim log ---" >&2; cat "$log" >&2; }
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    rm -rf "$tmp"
    exit 1
}

echo "serve-smoke: building dapsim (-race)"
go build -race -o "$tmp/dapsim" ./cmd/dapsim || fail "build"

"$tmp/dapsim" -quick -workload mcf -policy dap -metrics-every 20000 \
    -replicate 2 -j 2 -serve 127.0.0.1:0 >"$log" 2>&1 &
pid=$!

# Wait for the bound address, then for the run to complete (metrics final).
addr=""
for _ in $(seq 1 120); do
    addr=$(sed -n 's|^telemetry: serving on http://||p' "$log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "dapsim exited before serving"
    sleep 0.5
done
[ -n "$addr" ] && echo "serve-smoke: serving on $addr" || fail "no bound address after 60s"

for _ in $(seq 1 240); do
    grep -q "run complete" "$log" && break
    kill -0 "$pid" 2>/dev/null || fail "dapsim exited before completing the run"
    sleep 0.5
done
grep -q "run complete" "$log" || fail "run did not complete within 120s"

code=$(curl -s -o "$tmp/healthz" -w '%{http_code}' "http://$addr/healthz") || fail "curl /healthz"
[ "$code" = 200 ] || fail "/healthz returned $code"
grep -q '"status"' "$tmp/healthz" || fail "/healthz body lacks status: $(cat "$tmp/healthz")"

code=$(curl -s -o "$tmp/metrics" -w '%{http_code}' "http://$addr/metrics") || fail "curl /metrics"
[ "$code" = 200 ] || fail "/metrics returned $code"
for family in dap_credit_fwb runner_jobs_done sim_runs_finished_total; do
    grep -q "^$family" "$tmp/metrics" || fail "/metrics missing $family"
done

kill -INT "$pid"
wait "$pid"
status=$?
[ "$status" = 0 ] || fail "dapsim exited $status after SIGINT, want clean 0"

rm -rf "$tmp"
echo "serve-smoke: PASS"
