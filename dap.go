// Package dap is a from-scratch reproduction of "Near-Optimal Access
// Partitioning for Memory Hierarchies with Multiple Heterogeneous Bandwidth
// Sources" (HPCA 2017). It bundles a cycle-level memory-hierarchy simulator
// — out-of-order cores, an L1/L2/L3 SRAM hierarchy, DDR4/LPDDR4/HBM/eDRAM
// DRAM models, three memory-side cache architectures — together with the
// paper's contribution, the DAP dynamic access partitioning algorithm, and
// the related policies it is compared against (SBD, SBD-WT, BATMAN, BEAR).
//
// The package exposes a small facade over the internal packages: build a
// Config, pick a Workload, and Run it. The experiment drivers that
// regenerate every table and figure of the paper live behind RunFigure; the
// analytical bandwidth model of Section III is exposed directly.
//
// Quick start:
//
//	cfg := dap.DefaultConfig()
//	cfg.Policy = dap.PolicyDAP
//	res := dap.Run(cfg, dap.RateWorkload("mcf", 8))
//	fmt.Println(res.IPC(), res.MainMemCASFraction())
package dap

import (
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"strings"

	"dap/internal/core"
	"dap/internal/faultinject"
	"dap/internal/harness"
	"dap/internal/jobqueue"
	"dap/internal/obs"
	"dap/internal/sim"
	"dap/internal/stats"
	"dap/internal/store"
	"dap/internal/telemetry"
	"dap/internal/workload"
)

// Architecture selects the memory-side cache organization.
type Architecture = harness.Arch

// Memory-side cache architectures (Section II of the paper).
const (
	SectoredDRAMCache = harness.SectoredDRAM // 4 KB-sector die-stacked HBM cache
	AlloyCache        = harness.AlloyCache   // direct-mapped TAD cache
	SectoredEDRAM     = harness.SectoredEDRAM
	MainMemoryOnly    = harness.NoMSCache
)

// Policy selects the partitioning/steering policy.
type Policy = harness.Policy

// Policies.
const (
	PolicyBaseline = harness.Baseline
	PolicyDAP      = harness.DAP
	PolicyDAPFWBWB = harness.DAPFWBWB // DAP restricted to FWB+WB (Fig. 8)
	PolicySBD      = harness.SBD
	PolicySBDWT    = harness.SBDWT
	PolicyBATMAN   = harness.BATMAN
)

// Config is a complete system configuration. Config.Validate reports every
// problem at once as structured diagnostics (RunE calls it for you); the
// hardening knobs — Audit, WatchdogEvents, Faults — live here too.
type Config = harness.Config

// FaultPlan schedules deterministic fault injection for a run: dropped DRAM
// responses, delayed metadata fetches, corrupted DAP credit updates. Attach
// one via Config.Faults.
type FaultPlan = faultinject.Plan

// StallError is the diagnostic the forward-progress watchdog or deadlock
// detector attaches to Result.Abort when a run stops making progress.
type StallError = sim.StallError

// AuditError is the diagnostic the runtime invariant auditor (Config.Audit)
// attaches to Result.Abort on the first violated invariant.
type AuditError = harness.AuditError

// DefaultConfig returns the paper's default system: eight 4-wide cores with
// 224-entry ROBs, a 4 GB (64x scaled: 64 MB) sectored HBM DRAM cache at
// 102.4 GB/s with an SRAM tag cache and footprint prefetcher, and
// dual-channel DDR4-2400 main memory.
func DefaultConfig() Config { return harness.Default() }

// QuickConfig returns a shortened configuration for tests and demos.
func QuickConfig() Config { return harness.Quick() }

// Workload is a named eight-way (or n-way) multi-programmed mix.
type Workload = workload.Mix

// WorkloadByNameE returns the paper's rate-n mode for a named snippet: n
// copies of the same application, one per core. An unknown name yields an
// error listing every valid one.
func WorkloadByNameE(name string, cores int) (Workload, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return Workload{}, fmt.Errorf("dap: unknown workload %q (valid names: %s)",
			name, strings.Join(workload.Names(), ", "))
	}
	return workload.RateMix(spec, cores), nil
}

// RateWorkload is WorkloadByNameE for callers that prefer a panic on an
// unknown name (e.g. package-level test fixtures).
func RateWorkload(name string, cores int) Workload {
	w, err := WorkloadByNameE(name, cores)
	if err != nil {
		panic(err.Error())
	}
	return w
}

// WorkloadNames lists the 17 synthetic application snippets.
func WorkloadNames() []string { return workload.Names() }

// Spec is a synthetic application description; build your own to evaluate a
// new workload (see examples/custom_workload).
type Spec = workload.Spec

// SpecOf returns the parameters of a named snippet (useful as a starting
// point for custom specs).
func SpecOf(name string) (Spec, bool) { return workload.ByName(name) }

// CustomRate runs n copies of a custom spec, one per core.
func CustomRate(spec Spec, cores int) Workload { return workload.RateMix(spec, cores) }

// CustomMix builds a heterogeneous mix from arbitrary specs (one per core).
func CustomMix(name string, specs []Spec) Workload {
	return Workload{Name: name, Specs: specs}
}

// Workloads returns the full 44-mix evaluation suite for an n-core system
// (12 bandwidth-sensitive rate mixes, 5 insensitive, 27 heterogeneous).
func Workloads(cores int) []Workload { return workload.AllMixes(cores) }

// Result is the outcome of one simulation.
type Result = harness.Result

// MetricsSampler is the windowed time-series sampler found on
// Result.Metrics when Config.MetricsEvery is set; export its series with
// WriteCSV or WriteJSONL.
type MetricsSampler = obs.Sampler

// LifecycleTracer is the request-lifecycle tracer found on Result.Trace
// when Config.Trace is set; export its spans with WriteChromeTrace (loads
// in Perfetto / chrome://tracing).
type LifecycleTracer = obs.Tracer

// LatencyBreakdown aggregates traced L3-miss phase latencies by serving
// source and DAP technique (Result.Breakdown).
type LatencyBreakdown = stats.LatencyBreakdown

// EffectiveDAPWindow returns the DAP observation window (in cycles) the
// configured policy will use: the override's window when one is set, else
// the paper's 64-cycle default.
func EffectiveDAPWindow(cfg Config) uint64 {
	if cfg.DAPOverride != nil && cfg.DAPOverride.Window != 0 {
		return uint64(cfg.DAPOverride.Window)
	}
	return 64
}

// RunE simulates a workload on a configuration: the configuration is
// validated (every problem reported at once), then functional warmup and the
// timed region run. A run that ends abnormally — watchdog, deadlock or audit
// violation — returns the partial Result together with its Abort error.
func RunE(cfg Config, w Workload) (Result, error) { return harness.RunMixE(cfg, w) }

// Run is RunE for callers that prefer a panic over error plumbing; the panic
// message carries the same structured diagnostics.
func Run(cfg Config, w Workload) Result {
	r, err := RunE(cfg, w)
	if err != nil {
		panic("dap: " + err.Error())
	}
	return r
}

// RunSeededE is RunE with a run-level workload stream seed (0 behaves like
// RunE) — replicated measurements under different address streams.
func RunSeededE(cfg Config, w Workload, seed uint64) (Result, error) {
	return harness.RunSeededE(cfg, w, seed)
}

// WarmupCheckpoints is the shared warmup-checkpoint cache behind `dapsim
// -ckpt-dir` and Options.Ckpt: the full post-warmup simulator state is
// snapshotted once per (workload, architecture, warmup length, seed) prefix
// and every runtime-policy variant of that prefix resumes from the shared
// snapshot, single-flight under concurrency. Resumed runs are bit-identical
// to straight runs; only the wall clock changes.
type WarmupCheckpoints = harness.Checkpoints

// NewWarmupCheckpoints opens a checkpoint cache persisted (crash-safely)
// under dir; checkpoints are reused across processes.
func NewWarmupCheckpoints(dir string) (*WarmupCheckpoints, error) {
	return harness.NewCheckpoints(dir)
}

// InMemoryWarmupCheckpoints returns a process-local checkpoint cache.
func InMemoryWarmupCheckpoints() *WarmupCheckpoints { return harness.MemCheckpoints() }

// RunCheckpointedE is RunSeededE resuming from the shared warmup-checkpoint
// cache (ck == nil behaves exactly like RunSeededE).
func RunCheckpointedE(cfg Config, w Workload, seed uint64, ck *WarmupCheckpoints) (Result, error) {
	return harness.RunSeededCkptE(cfg, w, seed, ck)
}

// SamplingReport is the interval-sampling estimator's account found on
// Result.Sampling when Config.Sampled is set: interval count, convergence,
// and 95% confidence intervals for the headline metrics.
type SamplingReport = harness.SamplingReport

// MetricCI is a sampled metric: mean, 95% confidence half-width, intervals.
type MetricCI = harness.MetricCI

// AloneIPCE measures the single-core IPC of a named snippet on cfg, the
// denominator of the paper's weighted-speedup metric.
func AloneIPCE(cfg Config, name string) (float64, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return 0, fmt.Errorf("dap: unknown workload %q (valid names: %s)",
			name, strings.Join(workload.Names(), ", "))
	}
	return harness.AloneIPC(cfg, spec), nil
}

// AloneIPC is AloneIPCE with a panic on an unknown name.
func AloneIPC(cfg Config, name string) float64 {
	v, err := AloneIPCE(cfg, name)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// Replicate runs a workload over n address-stream seeds — fanning the
// simulations across up to parallel workers (0 = GOMAXPROCS, 1 = serial) —
// and returns the per-seed values of metric in seed order plus their mean
// and sample standard deviation. Results are identical at any parallelism.
func Replicate(parallel int, cfg Config, w Workload, n int, metric func(Result) float64) (vals []float64, mean, std float64) {
	return harness.ReplicateParallel(parallel, cfg, w, n, metric)
}

// Figure identifies a reproducible experiment.
type Figure = harness.Figure

// Experiments drive the paper's evaluation. Options{Quick: true} shortens
// runs by roughly an order of magnitude.
type Options = harness.Options

// The experiment drivers, one per table/figure of the paper.
var (
	Fig01 = harness.Fig01 // delivered bandwidth vs hit rate
	Fig02 = harness.Fig02 // eDRAM capacity doubling
	Fig04 = harness.Fig04 // bandwidth sensitivity + MPKI
	Fig05 = harness.Fig05 // tag cache benefit + miss ratio
	Fig06 = harness.Fig06 // DAP on the sectored DRAM cache
	Fig07 = harness.Fig07 // DAP decision mix
	Fig08 = harness.Fig08 // CAS fractions + hit ratios
	Tab01 = harness.Tab01 // window/efficiency sensitivity
	Fig09 = harness.Fig09 // main-memory technology sensitivity
	Fig10 = harness.Fig10 // cache capacity/bandwidth sensitivity
	Fig11 = harness.Fig11 // SBD / SBD-WT / BATMAN / DAP
	Fig12 = harness.Fig12 // the full 44-workload suite
	Fig13 = harness.Fig13 // 16-core scaling
	Fig14 = harness.Fig14 // Alloy cache: BEAR vs DAP
	Fig15 = harness.Fig15 // eDRAM cache: DAP at two capacities

	// FigBreakdown is an observability-layer driver (not a paper figure):
	// traced L3-miss phase latencies by serving source.
	FigBreakdown = harness.FigBreakdown
	// FigGap is the decision-introspection driver (not a paper figure):
	// per-window optimality-gap statistics (mean and CDF quantiles) of DAP
	// decisions on one bandwidth-sensitive mix per architecture.
	FigGap = harness.FigGap
)

// DecisionRecorder collects the per-window partitioner decision records and
// baseline policy events found on Result.Decisions when Config.Decisions is
// set; export with WriteCSV/WriteJSONL or merge its counter tracks into the
// Chrome trace via Result.WriteTrace.
type DecisionRecorder = core.DecisionRecorder

// DecisionRecord is one window of partitioner introspection: solver inputs
// (window counts, K ratio), outputs (credit refills), the implied access
// fractions, and the counterfactual optimality-gap audit against the
// Equation 3 bound.
type DecisionRecord = core.DecisionRecord

// PolicyEvent is the baseline policies' (SBD, BATMAN) introspection record,
// captured at their own adjustment points into the same decision stream.
type PolicyEvent = core.PolicyEvent

// DeliveredBandwidth evaluates the paper's Equation 2 and OptimalFractions
// Equation 3/4: how bandwidth is delivered by n parallel sources and how
// accesses should be split across them.
func DeliveredBandwidth(bandwidths, fractions []float64) float64 {
	return core.DeliveredBandwidth(bandwidths, fractions)
}

// OptimalFractions returns the access split that maximizes delivered
// bandwidth: proportional to each source's bandwidth.
func OptimalFractions(bandwidths []float64) []float64 {
	return core.OptimalFractions(bandwidths)
}

// GeoMean aggregates normalized speedups the way the paper reports GMEAN.
func GeoMean(vs []float64) float64 { return stats.GeoMean(vs) }

// TelemetryServer is the live monitoring HTTP service behind `dapsim -serve`
// and `figures -serve`: Prometheus-text /metrics, /runs JSON, a per-run SSE
// stream, an embedded dashboard, /healthz and /debug/pprof.
type TelemetryServer = telemetry.Server

// Serve starts the process-wide telemetry service on addr (host:port; port 0
// picks a free one) and returns the server plus the bound address. Every
// simulation in the process registers itself automatically; publishing is
// lock-free and read-only, so serving telemetry never perturbs results.
func Serve(addr string) (*TelemetryServer, string, error) {
	return ServeLogged(addr, nil)
}

// ServeLogged is Serve with structured request logging: every HTTP request
// gets one slog record (method, path, status, duration) on logger. A nil
// logger serves silently, exactly like Serve.
func ServeLogged(addr string, logger *slog.Logger) (*TelemetryServer, string, error) {
	srv := telemetry.NewServer(telemetry.Default, telemetry.Runs)
	srv.Logger = logger
	bound, err := srv.Start(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// NewLogger builds a structured logger writing to w. format is "text" or
// "json"; level is "debug", "info", "warn" or "error" (default info). It is
// the logger behind dapsim's -log-level/-log-format flags.
func NewLogger(w io.Writer, level, format string) *slog.Logger {
	return obs.NewLogger(w, level, format)
}

// ParseArchitecture resolves an architecture name ("sectored", "alloy",
// "edram", "none") to its enum, with an error listing the valid names.
func ParseArchitecture(name string) (Architecture, error) { return harness.ParseArch(name) }

// ParsePolicyName resolves a policy name ("baseline", "dap", "dap-fwb-wb",
// "sbd", "sbd-wt", "batman") to its enum.
func ParsePolicyName(name string) (Policy, error) { return harness.ParsePolicy(name) }

// SweepService is the durable sweep execution service behind
// `dapsim -serve -sweep-dir`: a crash-safe job queue (WAL + checkpoints)
// feeding a worker pool, with leases, retry-with-backoff, a dead-letter
// list and a crash-consistent result store keyed by configuration
// fingerprint. See ServeSweeps.
type SweepService = jobqueue.Service

// SweepSpec is the client-facing sweep request: the cross product of
// mixes × archs × policies × seeds (POST /jobs).
type SweepSpec = jobqueue.SweepSpec

// ServeSweeps starts the telemetry server on addr with the sweep service
// mounted on it (POST/GET/DELETE /jobs, /jobs/{id}/results, /deadletters).
// State lives under dir ("queue/" and "results/"): a process killed at any
// point reopens the same dir, replays its journal and resumes the sweep —
// completed jobs are served from the result store, not re-simulated. Stop
// with svc.Close then srv.Shutdown.
func ServeSweeps(addr, dir string, workers int) (*TelemetryServer, *SweepService, string, error) {
	return ServeSweepsObserved(addr, dir, SweepServeOptions{Workers: workers})
}

// SweepServeOptions parameterizes ServeSweepsObserved beyond the state
// directory: worker count, structured logging, job-lifecycle trace capacity
// and where stalled jobs' flight-recorder dumps land.
type SweepServeOptions struct {
	// Workers is the concurrent executor count (0 = GOMAXPROCS).
	Workers int
	// Logger receives every job state transition, simulation lifecycle
	// record and HTTP request, each stamped with the job's correlation ID
	// where one applies. nil serves silently.
	Logger *slog.Logger
	// JobTraceCap bounds the in-memory job-lifecycle trace served at /trace
	// (0 = 65536 events).
	JobTraceCap int
	// FlightDir is where aborted jobs' flight-recorder dumps are persisted
	// and served from at /jobs/{id}/flight ("" = <dir>/flight).
	FlightDir string
}

// ServeSweepsObserved is ServeSweeps with service-grade observability: a
// structured logger threading one correlation ID per job from submission
// through execution to acknowledgment, a bounded job-lifecycle Chrome trace
// at GET /trace (open in Perfetto), and stalled jobs' flight-recorder dumps
// persisted under FlightDir and served at GET /jobs/{id}/flight.
func ServeSweepsObserved(addr, dir string, opts SweepServeOptions) (*TelemetryServer, *SweepService, string, error) {
	qcfg := harness.SweepQueueConfig(filepath.Join(dir, "queue"))
	qcfg.Logger = opts.Logger
	qcfg.Tracer = obs.NewJobTracer(opts.JobTraceCap)
	q, err := jobqueue.Open(qcfg)
	if err != nil {
		return nil, nil, "", err
	}
	st, err := store.Open(filepath.Join(dir, "results"))
	if err != nil {
		q.Close() //nolint:errcheck // surfacing the open error
		return nil, nil, "", err
	}
	flightDir := opts.FlightDir
	if flightDir == "" {
		flightDir = filepath.Join(dir, "flight")
	}
	// Jobs resume from shared warmup checkpoints persisted next to the
	// queue: policy variants of the same sweep point warm up once.
	ck, err := harness.NewCheckpoints(filepath.Join(dir, "ckpt"))
	if err != nil {
		q.Close() //nolint:errcheck // surfacing the open error
		return nil, nil, "", err
	}
	svc := jobqueue.NewService(q, st, harness.SweepExecutorCkpt(ck), jobqueue.ServiceConfig{
		Workers: opts.Workers, FlightDir: flightDir,
	})
	if _, _, err := svc.Reconcile(); err != nil {
		q.Close() //nolint:errcheck // surfacing the reconcile error
		return nil, nil, "", err
	}
	srv := telemetry.NewServer(telemetry.Default, telemetry.Runs)
	srv.Logger = opts.Logger
	jobqueue.NewAPI(svc).Attach(srv)
	bound, err := srv.Start(addr)
	if err != nil {
		q.Close() //nolint:errcheck // surfacing the start error
		return nil, nil, "", err
	}
	svc.Start()
	return srv, svc, bound, nil
}

// ConfigFingerprint condenses a configuration into a short stable hex token
// covering every behavior-affecting field. Telemetry stamps it on each
// registered run and each metrics export: two artifacts carry the same
// fingerprint if and only if their configurations were identical.
func ConfigFingerprint(cfg Config) string { return harness.Fingerprint(cfg) }

// BuildVersion reports the git revision this binary was built from (a short
// hash, "+dirty" when the tree was modified, or "dev" without VCS info); it
// is stamped on metrics exports and the /healthz endpoint.
func BuildVersion() string { return telemetry.Version() }
