// Package dap is a from-scratch reproduction of "Near-Optimal Access
// Partitioning for Memory Hierarchies with Multiple Heterogeneous Bandwidth
// Sources" (HPCA 2017). It bundles a cycle-level memory-hierarchy simulator
// — out-of-order cores, an L1/L2/L3 SRAM hierarchy, DDR4/LPDDR4/HBM/eDRAM
// DRAM models, three memory-side cache architectures — together with the
// paper's contribution, the DAP dynamic access partitioning algorithm, and
// the related policies it is compared against (SBD, SBD-WT, BATMAN, BEAR).
//
// The package exposes a small facade over the internal packages: build a
// Config, pick a Workload, and Run it. The experiment drivers that
// regenerate every table and figure of the paper live behind RunFigure; the
// analytical bandwidth model of Section III is exposed directly.
//
// Quick start:
//
//	cfg := dap.DefaultConfig()
//	cfg.Policy = dap.PolicyDAP
//	res := dap.Run(cfg, dap.RateWorkload("mcf", 8))
//	fmt.Println(res.IPC(), res.MainMemCASFraction())
package dap

import (
	"fmt"

	"dap/internal/core"
	"dap/internal/harness"
	"dap/internal/stats"
	"dap/internal/workload"
)

// Architecture selects the memory-side cache organization.
type Architecture = harness.Arch

// Memory-side cache architectures (Section II of the paper).
const (
	SectoredDRAMCache = harness.SectoredDRAM // 4 KB-sector die-stacked HBM cache
	AlloyCache        = harness.AlloyCache   // direct-mapped TAD cache
	SectoredEDRAM     = harness.SectoredEDRAM
	MainMemoryOnly    = harness.NoMSCache
)

// Policy selects the partitioning/steering policy.
type Policy = harness.Policy

// Policies.
const (
	PolicyBaseline = harness.Baseline
	PolicyDAP      = harness.DAP
	PolicyDAPFWBWB = harness.DAPFWBWB // DAP restricted to FWB+WB (Fig. 8)
	PolicySBD      = harness.SBD
	PolicySBDWT    = harness.SBDWT
	PolicyBATMAN   = harness.BATMAN
)

// Config is a complete system configuration.
type Config = harness.Config

// DefaultConfig returns the paper's default system: eight 4-wide cores with
// 224-entry ROBs, a 4 GB (64x scaled: 64 MB) sectored HBM DRAM cache at
// 102.4 GB/s with an SRAM tag cache and footprint prefetcher, and
// dual-channel DDR4-2400 main memory.
func DefaultConfig() Config { return harness.Default() }

// QuickConfig returns a shortened configuration for tests and demos.
func QuickConfig() Config { return harness.Quick() }

// Workload is a named eight-way (or n-way) multi-programmed mix.
type Workload = workload.Mix

// RateWorkload returns the paper's rate-n mode for a named snippet: n copies
// of the same application, one per core. Valid names are listed by
// WorkloadNames.
func RateWorkload(name string, cores int) Workload {
	spec, ok := workload.ByName(name)
	if !ok {
		panic(fmt.Sprintf("dap: unknown workload %q (see dap.WorkloadNames)", name))
	}
	return workload.RateMix(spec, cores)
}

// WorkloadNames lists the 17 synthetic application snippets.
func WorkloadNames() []string { return workload.Names() }

// Spec is a synthetic application description; build your own to evaluate a
// new workload (see examples/custom_workload).
type Spec = workload.Spec

// SpecOf returns the parameters of a named snippet (useful as a starting
// point for custom specs).
func SpecOf(name string) (Spec, bool) { return workload.ByName(name) }

// CustomRate runs n copies of a custom spec, one per core.
func CustomRate(spec Spec, cores int) Workload { return workload.RateMix(spec, cores) }

// CustomMix builds a heterogeneous mix from arbitrary specs (one per core).
func CustomMix(name string, specs []Spec) Workload {
	return Workload{Name: name, Specs: specs}
}

// Workloads returns the full 44-mix evaluation suite for an n-core system
// (12 bandwidth-sensitive rate mixes, 5 insensitive, 27 heterogeneous).
func Workloads(cores int) []Workload { return workload.AllMixes(cores) }

// Result is the outcome of one simulation.
type Result = harness.Result

// Run simulates a workload on a configuration: functional warmup followed by
// the timed region.
func Run(cfg Config, w Workload) Result { return harness.RunMix(cfg, w) }

// AloneIPC measures the single-core IPC of a named snippet on cfg, the
// denominator of the paper's weighted-speedup metric.
func AloneIPC(cfg Config, name string) float64 {
	spec, ok := workload.ByName(name)
	if !ok {
		panic(fmt.Sprintf("dap: unknown workload %q", name))
	}
	return harness.AloneIPC(cfg, spec)
}

// Figure identifies a reproducible experiment.
type Figure = harness.Figure

// Experiments drive the paper's evaluation. Options{Quick: true} shortens
// runs by roughly an order of magnitude.
type Options = harness.Options

// The experiment drivers, one per table/figure of the paper.
var (
	Fig01 = harness.Fig01 // delivered bandwidth vs hit rate
	Fig02 = harness.Fig02 // eDRAM capacity doubling
	Fig04 = harness.Fig04 // bandwidth sensitivity + MPKI
	Fig05 = harness.Fig05 // tag cache benefit + miss ratio
	Fig06 = harness.Fig06 // DAP on the sectored DRAM cache
	Fig07 = harness.Fig07 // DAP decision mix
	Fig08 = harness.Fig08 // CAS fractions + hit ratios
	Tab01 = harness.Tab01 // window/efficiency sensitivity
	Fig09 = harness.Fig09 // main-memory technology sensitivity
	Fig10 = harness.Fig10 // cache capacity/bandwidth sensitivity
	Fig11 = harness.Fig11 // SBD / SBD-WT / BATMAN / DAP
	Fig12 = harness.Fig12 // the full 44-workload suite
	Fig13 = harness.Fig13 // 16-core scaling
	Fig14 = harness.Fig14 // Alloy cache: BEAR vs DAP
	Fig15 = harness.Fig15 // eDRAM cache: DAP at two capacities
)

// DeliveredBandwidth evaluates the paper's Equation 2 and OptimalFractions
// Equation 3/4: how bandwidth is delivered by n parallel sources and how
// accesses should be split across them.
func DeliveredBandwidth(bandwidths, fractions []float64) float64 {
	return core.DeliveredBandwidth(bandwidths, fractions)
}

// OptimalFractions returns the access split that maximizes delivered
// bandwidth: proportional to each source's bandwidth.
func OptimalFractions(bandwidths []float64) []float64 {
	return core.OptimalFractions(bandwidths)
}

// GeoMean aggregates normalized speedups the way the paper reports GMEAN.
func GeoMean(vs []float64) float64 { return stats.GeoMean(vs) }
