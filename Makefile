# Tier-1 verification gate: everything must vet, build, and pass the test
# suite with the race detector on. The observability package gets an extra
# explicit vet + race pass so its strict-observer guarantees are always
# exercised even when the main suite is filtered.
GO ?= go

.PHONY: check vet build test race bench bench-gate bench-cmp bench-figures runner-race obs-check obs-race pool-debug telemetry-race queue-race ckpt-race serve-smoke crash-smoke trace-demo profile profile-diff profile-base fuzz-smoke

check: vet build race runner-race obs-check obs-race pool-debug telemetry-race queue-race ckpt-race serve-smoke crash-smoke fuzz-smoke profile-diff bench-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The harness integration suite is simulation-bound; under the race
# detector it needs far more than go test's default 10-minute budget.
race:
	$(GO) test -race -timeout 90m ./...

obs-check:
	$(GO) vet ./internal/obs/...
	$(GO) test -race ./internal/obs/... -run . -count=1
	$(GO) test -race ./internal/harness/ -run 'TestObservability|TestObsConfig|TestServe' -count=1

# obs-race drives the service-grade observability surface under the race
# detector: job-lifecycle tracing + flight recorder + context logging
# (internal/obs), the latency histograms and request-log middleware
# (internal/telemetry), the instrumented queue/service end to end
# (internal/jobqueue), and the harness's flight-recorder stall capture and
# bit-identity guarantees.
obs-race:
	$(GO) test -race -count=1 ./internal/telemetry/ \
		-run 'TestHistogram|TestRequestLog|TestStatusWriter'
	$(GO) test -race -count=1 ./internal/jobqueue/ -run 'TestServiceObservabilityEndToEnd'
	$(GO) test -race -count=1 -short ./internal/harness/ \
		-run 'TestObservabilityIsBitIdenticalWithFlight|TestFlightRecorder|TestSweepExecutor'

# telemetry-race exercises the live telemetry service under the race
# detector: 8 concurrent publishers against a scraping /metrics loop, the
# SSE stream, run-registry lifecycle, and the Prometheus golden file.
telemetry-race:
	$(GO) vet ./internal/telemetry/...
	$(GO) test -race ./internal/telemetry/... -count=1

# queue-race runs the sweep-service packages — the durable job queue with
# its WAL/lease/backoff machinery and the crash-consistent result store —
# under the race detector: workers, reaper, heartbeats and checkpointing
# all race against each other by design.
queue-race:
	$(GO) vet ./internal/jobqueue/... ./internal/store/...
	$(GO) test -race -count=1 ./internal/jobqueue/... ./internal/store/...

# ckpt-race drives the warmup-checkpoint cache under the race detector:
# eight concurrent policy/DRAM variants of one figure point restore from a
# single-flight snapshot (asserting it was built exactly once and every
# variant stays bit-identical), the nws figure driver does the same through
# its worker pool, and the store-backed path recovers from flipped-byte and
# torn-tail corruption.
ckpt-race:
	$(GO) test -race -count=1 -timeout 20m ./internal/harness/ \
		-run 'TestCheckpointSharedParallelVariants|TestCheckpointFigureDriverSingleFlight|TestCheckpointStoreReuseAndCorruption'

# serve-smoke boots `dapsim -serve` on a random port (race detector on),
# curls /healthz and /metrics, asserts the DAP credit and runner pool
# families are exposed, and checks clean shutdown on SIGINT.
serve-smoke:
	./scripts/serve_smoke.sh

# crash-smoke SIGKILLs a running sweep service mid-sweep and verifies the
# restarted process resumes from its journal: all jobs done, all results
# served, clean SIGINT exit. The in-process counterpart lives in
# internal/harness/sweep_crash_test.go.
crash-smoke:
	./scripts/crash_smoke.sh

# runner-race exercises the worker pool and the parallel experiment drivers
# under the race detector: the full runner suite (ordering, panic/error
# propagation), the harness unit tests, and the parallel-vs-serial figure
# identity sweep (which shrinks itself to race-affordable drivers — see
# raceEnabled in internal/harness). The full harness integration suite is
# simulation-bound and exceeds any sane race budget; `make race` covers it
# without the detector's ~10x tax via the plain test target.
runner-race:
	$(GO) test -race ./internal/runner
	$(GO) test -race -short ./internal/harness
	$(GO) test -race -run 'TestParallelFiguresBitIdentical|TestAloneFingerprintSeparates' -timeout 20m -count=1 ./internal/harness

# pool-debug reruns the pooled-allocation paths with the request-pool poison
# mode armed (-tags dappooldebug): double-free, use-after-free and
# freed-record callbacks panic instead of corrupting an unrelated request.
# The harness test drives full simulations of all three architectures
# through the armed pools.
pool-debug:
	$(GO) test -tags dappooldebug ./internal/mem/
	$(GO) test -tags dappooldebug -run 'TestPoolingUnderParallelRuns' ./internal/harness/

# bench runs the substrate microbenchmarks plus the end-to-end quick run and
# writes the machine-readable report consumed by DESIGN.md's performance
# section. The long end-to-end benchmarks run in a second invocation with a
# fixed iteration count: under the default 1s benchtime they get only 1-2
# iterations, and a single noisy run then dominates the recorded ns/op.
# bench-figures is the full figure-regeneration benchmark suite.
bench:
	{ $(GO) test -bench='EngineEvent|CacheLookup|DRAMStream|WorkloadGen' \
		-benchmem -run=^$$ . && \
	  $(GO) test -bench='EndToEndQuickRun|EndToEndCheckpointResume|Replicate6' \
		-benchtime=5x -benchmem -run=^$$ . ; } \
		| $(GO) run ./cmd/benchjson -o BENCH_PR10.json \
		-note "cache-conscious data layout: packed SoA tag stores, DAP per-access fast path, streaming checkpoints"

# bench-gate enforces that the data-layout pass keeps its wins: the
# recorded BENCH_PR10.json must not regress against the PR9 baseline by
# more than benchcmp's 10% tolerance in ns/op, bytes/op or allocs/op.
# Matching EndToEnd pulls the checkpoint-resume benchmark into the gate, so
# the streaming encoder's bytes/op reduction is locked in alongside the
# quick-run time. The sub-microsecond substrate benches were recorded in a
# different session and track machine state (frequency scaling, co-tenant
# load) more than code, so cross-session comparison of them gates on
# noise. Re-record the HEAD report with `make bench` after intentional
# changes.
bench-gate:
	$(GO) run ./cmd/benchcmp -match 'EndToEnd|Replicate' \
		BENCH_PR9.json BENCH_PR10.json

bench-figures:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-cmp gates a bench report against a baseline: prints the per-benchmark
# delta table and exits non-zero when any shared benchmark regressed by more
# than 10% in ns/op, bytes/op or allocs/op.
#   make bench-cmp BASE=BENCH_PR3.json HEAD=BENCH_HEAD.json
bench-cmp:
	$(GO) run ./cmd/benchcmp $(BASE) $(HEAD)

# fuzz-smoke runs the checkpoint-envelope fuzzer for 10 seconds: corrupt,
# truncated and bit-flipped envelopes must always be rejected with an
# ErrCorrupt-wrapping error — never a panic — and the corpus grows in
# internal/ckpt/testdata between runs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecEnvelope -fuzztime 10s ./internal/ckpt/

# profile captures CPU and allocation profiles of the end-to-end quick run
# and prints the top-10 allocation sites — the view that drove (and guards)
# the allocation-free hot path work.
profile:
	mkdir -p out
	$(GO) test -bench=EndToEndQuickRun -benchmem -run=^$$ \
		-cpuprofile out/cpu.prof -memprofile out/mem.prof .
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_objects out/mem.prof
	@echo "profiles in out/cpu.prof, out/mem.prof (go tool pprof -http=: out/cpu.prof)"

# profile-diff re-profiles the end-to-end quick run and diffs its allocation
# sites against the committed baseline (profiles/mem_base.prof, recorded by
# profile-base at the data-layout pass): a hot path that starts allocating
# again shows up as a positive flat delta at the guilty function instead of
# a silent allocs/op creep. Refresh the baseline with `make profile-base`
# after intentional allocation-behavior changes.
profile-diff:
	mkdir -p out
	$(GO) test -bench=EndToEndQuickRun -benchmem -run=^$$ \
		-memprofile out/mem.prof .
	$(GO) tool pprof -top -nodecount=12 -sample_index=alloc_objects \
		-diff_base=profiles/mem_base.prof out/mem.prof

# profile-base records the allocation-profile baseline that profile-diff
# compares against. Run it (and commit profiles/mem_base.prof) only when an
# allocation-behavior change is intentional.
profile-base:
	mkdir -p profiles
	$(GO) test -bench=EndToEndQuickRun -benchmem -run=^$$ \
		-memprofile profiles/mem_base.prof .

# trace-demo produces a small end-to-end observability artifact set: a
# Perfetto-loadable Chrome trace of L3-miss lifecycles and a per-window
# metrics CSV (DAP credits, per-source bandwidth, hit ratios, per-core IPC).
trace-demo:
	mkdir -p out
	$(GO) run ./cmd/dapsim -quick -workload mcf -policy dap \
		-trace out/trace.json -metrics-every 1000 -metrics-out out/metrics.csv
	@echo "open out/trace.json in https://ui.perfetto.dev, plot out/metrics.csv"
