# Tier-1 verification gate: everything must vet, build, and pass the test
# suite with the race detector on. The observability package gets an extra
# explicit vet + race pass so its strict-observer guarantees are always
# exercised even when the main suite is filtered.
GO ?= go

.PHONY: check vet build test race bench obs-check trace-demo

check: vet build race obs-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

obs-check:
	$(GO) vet ./internal/obs/...
	$(GO) test -race ./internal/obs/... -run . -count=1
	$(GO) test -race ./internal/harness/ -run 'TestObservability|TestObsConfig' -count=1

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# trace-demo produces a small end-to-end observability artifact set: a
# Perfetto-loadable Chrome trace of L3-miss lifecycles and a per-window
# metrics CSV (DAP credits, per-source bandwidth, hit ratios, per-core IPC).
trace-demo:
	mkdir -p out
	$(GO) run ./cmd/dapsim -quick -workload mcf -policy dap \
		-trace out/trace.json -metrics-every 1000 -metrics-out out/metrics.csv
	@echo "open out/trace.json in https://ui.perfetto.dev, plot out/metrics.csv"
