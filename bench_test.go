// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md for the experiment index). Each benchmark drives the
// corresponding experiment end-to-end and logs the reproduced table; the
// reported metric "gmean_speedup" (or "GBps" for Figure 1) is the headline
// number to compare against the paper.
//
// Run with:
//
//	go test -bench=. -benchmem            # quick-scale experiments
//	go test -bench=. -benchmem -jobs 8    # fan simulations across 8 workers
//
// cmd/figures runs the full-length versions used for EXPERIMENTS.md.
package dap_test

import (
	"flag"
	"testing"

	"dap/internal/cache"
	"dap/internal/dram"
	"dap/internal/harness"
	"dap/internal/mem"
	"dap/internal/sim"
	"dap/internal/workload"
)

// -jobs is the benchmarks' -j knob: simulations per experiment run
// concurrently, with output bit-identical to a serial run (0 = GOMAXPROCS).
var benchJobs = flag.Int("jobs", 0, "concurrent simulations per figure benchmark (0 = GOMAXPROCS, 1 = serial)")

var quick = harness.Options{Quick: true}

func quickOpts() harness.Options {
	o := quick
	o.Parallel = *benchJobs
	return o
}

// benchFigure runs an experiment once per iteration and reports its summary.
func benchFigure(b *testing.B, run func(harness.Options) harness.Figure, metric string) {
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = run(quickOpts())
	}
	b.Log("\n" + fig.String())
	if len(fig.Series) > 0 && metric != "" {
		b.ReportMetric(fig.Series[len(fig.Series)-1].Summary, metric)
	}
}

// BenchmarkFig01BandwidthVsHitRate reproduces Figure 1: delivered bandwidth
// against memory-side cache hit rate for the DRAM and eDRAM caches.
func BenchmarkFig01BandwidthVsHitRate(b *testing.B) {
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig01(quickOpts())
	}
	b.Log("\n" + fig.String())
	b.ReportMetric(fig.Series[0].Values[len(fig.Series[0].Values)-1], "GBps_dram_100pct")
}

// BenchmarkFig02EDRAMCapacity reproduces Figure 2: speedup and miss-rate
// drop from doubling the eDRAM cache.
func BenchmarkFig02EDRAMCapacity(b *testing.B) {
	benchFigure(b, harness.Fig02, "mean_missdrop_pp")
}

// BenchmarkFig04BandwidthSensitivity reproduces Figure 4: the effect of
// doubling the DRAM cache bandwidth, plus each snippet's L3 MPKI.
func BenchmarkFig04BandwidthSensitivity(b *testing.B) {
	benchFigure(b, harness.Fig04, "mean_mpki")
}

// BenchmarkFig05TagCache reproduces Figure 5: the benefit of the SRAM tag
// cache and its miss ratio.
func BenchmarkFig05TagCache(b *testing.B) {
	benchFigure(b, harness.Fig05, "mean_tagmiss")
}

// BenchmarkFig06DAPSectored reproduces Figure 6: DAP's weighted speedup on
// the sectored DRAM cache (paper: 15.2% mean on the bandwidth-sensitive set).
func BenchmarkFig06DAPSectored(b *testing.B) {
	var fig harness.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig06(quickOpts())
	}
	b.Log("\n" + fig.String())
	b.ReportMetric(fig.Series[0].Summary, "gmean_speedup")
}

// BenchmarkFig07DAPDecisionMix reproduces Figure 7: the FWB/WB/IFRM/SFRM
// decision shares (paper means: 23/40/12/25%).
func BenchmarkFig07DAPDecisionMix(b *testing.B) {
	benchFigure(b, harness.Fig07, "mean_sfrm_share")
}

// BenchmarkFig08CASFraction reproduces Figure 8: main-memory CAS fraction
// and cache hit-rate under baseline, FWB+WB and full DAP.
func BenchmarkFig08CASFraction(b *testing.B) {
	benchFigure(b, harness.Fig08, "mean_hit_dap")
}

// BenchmarkTab01WindowEfficiency reproduces Table I: sensitivity to the
// window size W and bandwidth efficiency E.
func BenchmarkTab01WindowEfficiency(b *testing.B) {
	benchFigure(b, harness.Tab01, "gmean_last")
}

// BenchmarkFig09MainMemorySensitivity reproduces Figure 9: DAP under
// DDR4-2400 (with and without I/O latency), LPDDR4 and DDR4-3200.
func BenchmarkFig09MainMemorySensitivity(b *testing.B) {
	benchFigure(b, harness.Fig09, "gmean_ddr4_3200")
}

// BenchmarkFig10CapacityBandwidth reproduces Figure 10: DAP across cache
// capacities (2/4/8 GB scaled) and bandwidths (102.4/128/204.8 GB/s).
func BenchmarkFig10CapacityBandwidth(b *testing.B) {
	benchFigure(b, harness.Fig10, "gmean_204GBps")
}

// BenchmarkFig11RelatedProposals reproduces Figure 11: SBD, SBD-WT and
// BATMAN against DAP.
func BenchmarkFig11RelatedProposals(b *testing.B) {
	benchFigure(b, harness.Fig11, "gmean_dap")
}

// BenchmarkFig12AllWorkloads reproduces Figure 12: DAP across the full
// 44-workload suite (paper: 13% average).
func BenchmarkFig12AllWorkloads(b *testing.B) {
	benchFigure(b, harness.Fig12, "gmean_speedup")
}

// BenchmarkFig13SixteenCores reproduces Figure 13: DAP on a sixteen-core
// system with an 8 GB / 204.8 GB/s cache (paper: 14.6%).
func BenchmarkFig13SixteenCores(b *testing.B) {
	benchFigure(b, harness.Fig13, "gmean_speedup")
}

// BenchmarkFig14AlloyCache reproduces Figure 14: BEAR and DAP on the Alloy
// cache plus main-memory CAS fractions.
func BenchmarkFig14AlloyCache(b *testing.B) {
	benchFigure(b, harness.Fig14, "mean_cas_dap")
}

// BenchmarkFig15EDRAMDAP reproduces Figure 15: DAP on 256 MB and 512 MB
// eDRAM caches with the hit-rate deltas.
func BenchmarkFig15EDRAMDAP(b *testing.B) {
	benchFigure(b, harness.Fig15, "mean_dhit_512dap")
}

// Ablations of DAP design choices (DESIGN.md).

// BenchmarkAblCreditWidth sweeps the credit-counter saturation value.
func BenchmarkAblCreditWidth(b *testing.B) {
	benchFigure(b, harness.AblationCreditWidth, "gmean_cap4095")
}

// BenchmarkAblKApprox sweeps the hardware K-approximation precision.
func BenchmarkAblKApprox(b *testing.B) {
	benchFigure(b, harness.AblationKApprox, "gmean_den64")
}

// BenchmarkAblSFRMReserve sweeps the SFRM bandwidth reserve (paper: 0.8).
func BenchmarkAblSFRMReserve(b *testing.B) {
	benchFigure(b, harness.AblationSFRMReserve, "gmean_reserve100")
}

// BenchmarkAblTechniques disables one DAP technique at a time.
func BenchmarkAblTechniques(b *testing.B) {
	benchFigure(b, harness.AblationTechniques, "gmean_noSFRM")
}

// BenchmarkAblLearning compares raw-window learning against EWMA smoothing.
func BenchmarkAblLearning(b *testing.B) {
	benchFigure(b, harness.AblationLearning, "gmean_ewma")
}

// BenchmarkAblThreadAware evaluates the thread-aware IFRM variant on
// heterogeneous mixes.
func BenchmarkAblThreadAware(b *testing.B) {
	benchFigure(b, harness.AblationThreadAware, "gmean_threadaware")
}

// BenchmarkAblReplacement compares sector replacement policies under DAP.
func BenchmarkAblReplacement(b *testing.B) {
	benchFigure(b, harness.AblationReplacement, "gmean_random")
}

// BenchmarkAblFootprint measures the footprint prefetcher's contribution.
func BenchmarkAblFootprint(b *testing.B) {
	benchFigure(b, harness.AblationFootprint, "gmean_nofootprint")
}

// Substrate microbenchmarks (ns/op figures for the building blocks).

// BenchmarkEngineEvent measures event scheduling/dispatch cost. The
// callback is hoisted out of the loop — exactly how the simulator's hot
// paths schedule (prebound handlers, AtArg) — so the benchmark reports the
// engine's own cost: with the timing wheel it must be allocation-free.
func BenchmarkEngineEvent(b *testing.B) {
	eng := sim.New()
	n := 0
	fn := func() { n++ }
	for i := 0; i < b.N; i++ {
		eng.After(mem.Cycle(i%64), fn)
		if eng.Pending() > 1024 {
			eng.Drain()
		}
	}
	eng.Drain()
	if n != b.N {
		b.Fatal("event loss")
	}
}

// BenchmarkCacheLookup measures set-associative lookup cost.
func BenchmarkCacheLookup(b *testing.B) {
	c := cache.NewBytes(8*mem.MiB, 16, cache.LRU)
	for i := 0; i < 1<<16; i++ {
		c.Insert(mem.Addr(i)<<mem.LineShift, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(mem.Addr(i%(1<<16)) << mem.LineShift)
	}
}

// BenchmarkDRAMStream measures the DRAM channel model's throughput in
// simulated accesses per wall-clock second.
func BenchmarkDRAMStream(b *testing.B) {
	eng := sim.New()
	dev := dram.NewDevice(dram.HBM102(), eng)
	for i := 0; i < b.N; i++ {
		dev.Access(mem.Addr(i)<<mem.LineShift, mem.ReadKind, 0, nil)
		if dev.QueueLen() > 512 {
			eng.Drain()
		}
	}
	eng.Drain()
}

// BenchmarkWorkloadGen measures access-stream generation cost.
func BenchmarkWorkloadGen(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	s := workload.NewStream(spec, workload.CoreSpacing, 1)
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

// BenchmarkEndToEndQuickRun measures a full quick simulation (the unit every
// figure experiment is built from).
func BenchmarkEndToEndQuickRun(b *testing.B) {
	cfg := harness.Quick()
	cfg.Policy = harness.DAP
	spec, _ := workload.ByName("libquantum")
	mix := workload.RateMix(spec, cfg.CPU.Cores)
	for i := 0; i < b.N; i++ {
		harness.RunMix(cfg, mix)
	}
}

// BenchmarkEndToEndCheckpointResume measures the warmup-checkpoint fast
// path end to end: serializing a warmed system, restoring the blob into a
// freshly built one, and running a short timed region from it. Compare
// against BenchmarkEndToEndQuickRun, whose cost is dominated by re-running
// the functional warmup this path skips.
func BenchmarkEndToEndCheckpointResume(b *testing.B) {
	cfg := harness.Quick()
	cfg.Policy = harness.DAP
	cfg.MeasureInstr = 100_000
	spec, _ := workload.ByName("libquantum")
	mix := workload.RateMix(spec, cfg.CPU.Cores)
	warm := harness.Build(cfg, mix)
	warm.Warmup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := warm.SaveCheckpoint()
		if err != nil {
			b.Fatal(err)
		}
		s := harness.Build(cfg, mix)
		if err := s.LoadCheckpoint(blob); err != nil {
			b.Fatal(err)
		}
		s.Measure()
	}
}

// benchReplicate measures the runner's wall-clock scaling: six seeded quick
// replicas fanned across j workers. The ratio Serial/J8 is the delivered
// parallel speedup; it tracks the host's available CPUs (bit-identical
// results either way).
func benchReplicate(b *testing.B, j int) {
	cfg := harness.Quick()
	spec, _ := workload.ByName("libquantum")
	mix := workload.RateMix(spec, cfg.CPU.Cores)
	for i := 0; i < b.N; i++ {
		harness.ReplicateParallel(j, cfg, mix, 6, func(harness.Result) float64 { return 0 })
	}
}

func BenchmarkReplicate6Serial(b *testing.B) { benchReplicate(b, 1) }
func BenchmarkReplicate6J8(b *testing.B)     { benchReplicate(b, 8) }
