module dap

go 1.22
