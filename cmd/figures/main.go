// Command figures regenerates every table and figure of the paper's
// evaluation section and prints them as text tables (the source of
// EXPERIMENTS.md). Select a subset by ID, or run everything.
//
//	figures                # every experiment, full length
//	figures -quick         # shortened runs
//	figures -only fig6,tab1,fig11
//	figures -j 8           # fan simulations across 8 workers (output is
//	                       # bit-identical at any -j; 0 = GOMAXPROCS)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dap"
)

type experiment struct {
	key string
	run func(dap.Options) dap.Figure
}

var experiments = []experiment{
	{"fig1", dap.Fig01},
	{"fig2", dap.Fig02},
	{"fig4", dap.Fig04},
	{"fig5", dap.Fig05},
	{"fig6", dap.Fig06},
	{"fig7", dap.Fig07},
	{"fig8", dap.Fig08},
	{"tab1", dap.Tab01},
	{"fig9", dap.Fig09},
	{"fig10", dap.Fig10},
	{"fig11", dap.Fig11},
	{"fig12", dap.Fig12},
	{"fig13", dap.Fig13},
	{"fig14", dap.Fig14},
	{"fig15", dap.Fig15},
	{"figgap", dap.FigGap},
}

func main() {
	quick := flag.Bool("quick", false, "shortened runs")
	only := flag.String("only", "", "comma-separated experiment keys (fig1..fig15, tab1, figgap)")
	chart := flag.Bool("chart", false, "also render each figure's first series as an ASCII bar chart")
	jobs := flag.Int("j", 0, "max concurrent simulations per experiment (0 = GOMAXPROCS, 1 = serial)")
	useCkpt := flag.Bool("ckpt", false, "share warmup checkpoints across each figure's variants (bit-identical output, warmup runs once per mix)")
	ckptDir := flag.String("ckpt-dir", "", "persist warmup checkpoints under this directory so reruns skip warmup entirely (implies -ckpt)")
	sampled := flag.Bool("sampled", false, "SMARTS interval sampling: estimate each figure point from measured intervals with 95% CIs instead of the full timed region (fast, approximate)")
	decisions := flag.Bool("decisions", false, "record per-window DAP decisions (optimality gap, fractions) on every driver run; the series are served at /runs/{id}/decisions while -serve is up")
	serveAddr := flag.String("serve", "", "serve live telemetry (/metrics, /runs, dashboard) on this address while the sweep runs; keeps serving after it until interrupted")
	flag.Parse()

	if *serveAddr != "" {
		srv, bound, err := dap.Serve(*serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: serving on http://%s\n", bound)
		defer func() {
			fmt.Println("telemetry: sweep complete; serving until interrupt (Ctrl-C)")
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			<-ctx.Done()
			stop()
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	opts := dap.Options{Quick: *quick, Parallel: *jobs, Sampled: *sampled, Decisions: *decisions}
	if *ckptDir != "" {
		ck, err := dap.NewWarmupCheckpoints(*ckptDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: checkpoint store: %v\n", err)
			os.Exit(1)
		}
		opts.Ckpt = ck
	} else if *useCkpt {
		opts.Ckpt = dap.InMemoryWarmupCheckpoints()
	}
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.key] {
			continue
		}
		start := time.Now()
		fig := e.run(opts)
		fmt.Println(fig.String())
		if *chart {
			fmt.Println(fig.Chart(0))
		}
		fmt.Printf("(%s in %.0fs)\n\n", e.key, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "figures: nothing matched -only; keys are fig1,fig2,fig4..fig15,tab1,figgap")
		os.Exit(1)
	}
	if opts.Ckpt != nil {
		st := opts.Ckpt.Stats()
		fmt.Printf("warmup checkpoints: built %d, disk hits %d, load failures %d\n",
			st.Builds, st.StoreHits, st.LoadFailures)
	}
}
