// Command dapsim runs a single memory-hierarchy simulation and prints the
// measured statistics: per-core IPC, weighted speedup inputs, memory-side
// cache behaviour, CAS fractions and DAP decision counts.
//
// Examples:
//
//	dapsim -workload mcf -policy dap
//	dapsim -workload omnetpp -arch alloy -policy dap -instr 2000000
//	dapsim -mix hetero-dis-03 -policy batman
//	dapsim -workload mcf -replicate 8 -j 4
//	dapsim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"dap"
	"dap/internal/mem"
	"dap/internal/stats"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list workloads and mixes, then exit")
		wl      = flag.String("workload", "mcf", "rate-mode workload name")
		mixName = flag.String("mix", "", "heterogeneous mix name (overrides -workload)")
		arch    = flag.String("arch", "sectored", "memory-side cache: sectored | alloy | edram | none")
		policy  = flag.String("policy", "baseline", "policy: baseline | dap | dap-fwb-wb | sbd | sbd-wt | batman")
		cores   = flag.Int("cores", 8, "core count")
		instr   = flag.Uint64("instr", 0, "instructions per core (0 = config default)")
		warm    = flag.Int("warm", 0, "functional warmup accesses per core (0 = config default: 400000, or 180000 with -quick)")
		quick   = flag.Bool("quick", false, "use the shortened quick configuration")
		capMB   = flag.Int("capacity", 0, "memory-side cache capacity in MiB (0 = default)")
		bwPoint = flag.Float64("cachebw", 0, "cache bandwidth in GB/s: 102.4 | 128 | 204.8 (0 = default)")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		audit   = flag.Bool("audit", false, "enable the runtime invariant auditor (aborts on the first violation)")
		wdog    = flag.Int("watchdog", 0, "forward-progress watchdog deadline in events (0 = default, -1 = off)")
		seed    = flag.Uint64("seed", 0, "workload address-stream seed (0 = default streams)")
		ckptDir = flag.String("ckpt-dir", "", "reuse warmup checkpoints under this directory: the post-warmup state is snapshotted once per (workload, arch, warmup, seed) and later runs — any policy — resume from it bit-identically")
		sampled = flag.Bool("sampled", false, "SMARTS-style interval sampling: alternate functional fast-forward with short measured intervals and report means with 95% confidence intervals (falls back to the full run if they do not converge)")
		replic  = flag.Int("replicate", 0, "run N replicas over seeds 0..N-1 and report mean/std aggregate IPC")
		jobs    = flag.Int("j", 0, "max concurrent replica simulations (0 = GOMAXPROCS, 1 = serial)")

		tracePath    = flag.String("trace", "", "write a Chrome trace-event JSON of L3-miss lifecycles to this file (load in Perfetto); with -decisions, per-window gap/fraction counter tracks are merged in")
		traceSample  = flag.Int("trace-sample", 0, "trace every Nth L3 miss (0 = tracer default of 1)")
		decisionsOut = flag.String("decisions", "", "record per-window DAP decisions (window counts, K, credit refills, access fractions, optimality gap) and write them to this file (.jsonl/.json = JSON Lines, else CSV)")
		metricsEvery = flag.Uint64("metrics-every", 0, "sample windowed metrics every N cycles (0 = off)")
		metricsOut   = flag.String("metrics-out", "", "write the sampled metric series as CSV to this file (default stdout when sampling)")
		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
		serveAddr    = flag.String("serve", "", "serve live telemetry (/metrics, /runs, dashboard) on this address (e.g. :8080, :0 = any free port); keeps serving after the run until interrupted")
		sweepDir     = flag.String("sweep-dir", "", "run as a durable sweep service: job queue + result store under this directory, API on the -serve address (requires -serve)")
		sweepWorkers = flag.Int("sweep-workers", 0, "sweep service worker count (0 = GOMAXPROCS)")
		logLevel     = flag.String("log-level", "info", "structured log level: debug | info | warn | error")
		logFormat    = flag.String("log-format", "text", "structured log format: text | json")
	)
	flag.Parse()

	// Structured logs go to stderr so stdout keeps carrying results and the
	// service banner lines scripts grep for.
	logger := dap.NewLogger(os.Stderr, *logLevel, *logFormat)

	if *sweepDir != "" {
		if *serveAddr == "" {
			fatalf("-sweep-dir requires -serve (the API mounts on the telemetry address)")
		}
		runSweepService(*serveAddr, *sweepDir, *sweepWorkers, logger)
		return
	}

	if *serveAddr != "" {
		srv, bound, err := dap.ServeLogged(*serveAddr, logger)
		fatalIf(err)
		fmt.Printf("telemetry: serving on http://%s\n", bound)
		defer func() {
			fmt.Println("telemetry: run complete; serving until interrupt (Ctrl-C)")
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			<-ctx.Done()
			stop()
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintf(os.Stderr, "dapsim: telemetry shutdown: %v\n", err)
			}
		}()
	}

	if *list {
		fmt.Println("workloads (rate mode):")
		for _, n := range dap.WorkloadNames() {
			fmt.Println("  " + n)
		}
		fmt.Println("mixes:")
		for _, m := range dap.Workloads(*cores) {
			fmt.Println("  " + m.Name)
		}
		return
	}

	cfg := dap.DefaultConfig()
	if *quick {
		cfg = dap.QuickConfig()
	}
	cfg.CPU.Cores = *cores
	if *instr > 0 {
		cfg.MeasureInstr = *instr
	}
	if *warm > 0 {
		cfg.WarmAccesses = *warm
	}
	archVal, err := dap.ParseArchitecture(*arch)
	fatalIf(err)
	cfg.Arch = archVal
	polVal, err := dap.ParsePolicyName(*policy)
	fatalIf(err)
	cfg.Policy = polVal
	if *capMB > 0 {
		cfg.Sectored.CapacityBytes = *capMB << 20
		cfg.Alloy.CapacityBytes = *capMB << 20
		cfg.EDRAM.CapacityBytes = *capMB << 20
	}
	if *bwPoint > 0 {
		fatalIf(setCacheBW(&cfg, *bwPoint))
	}
	cfg.Audit = *audit
	cfg.WatchdogEvents = *wdog
	cfg.Trace = *tracePath != ""
	cfg.TraceSample = *traceSample
	cfg.MetricsEvery = mem.Cycle(*metricsEvery)
	cfg.Sampled = *sampled
	cfg.Decisions = *decisionsOut != ""

	var ckpts *dap.WarmupCheckpoints
	if *ckptDir != "" {
		var err error
		ckpts, err = dap.NewWarmupCheckpoints(*ckptDir)
		fatalIf(err)
	}

	var mix dap.Workload
	if *mixName != "" {
		found := false
		for _, m := range dap.Workloads(*cores) {
			if m.Name == *mixName {
				mix, found = m, true
				break
			}
		}
		if !found {
			fatalf("unknown mix %q (see -list)", *mixName)
		}
	} else {
		var err error
		mix, err = dap.WorkloadByNameE(*wl, *cores)
		fatalIf(err)
	}

	if *replic > 0 {
		// Replicated mode: N runs over seeds 0..N-1, fanned across -j
		// workers. Per-seed values are seed-ordered and identical at any -j.
		aggIPC := func(r dap.Result) float64 {
			s := 0.0
			for i := range r.Cores {
				s += r.Cores[i].IPC()
			}
			return s
		}
		vals, mean, std := dap.Replicate(*jobs, cfg, mix, *replic, aggIPC)
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			fatalIf(enc.Encode(struct {
				Mix    string    `json:"mix"`
				Seeds  int       `json:"seeds"`
				AggIPC []float64 `json:"agg_ipc"`
				Mean   float64   `json:"mean"`
				StdDev float64   `json:"std_dev"`
			}{mix.Name, *replic, vals, mean, std}))
			return
		}
		fmt.Printf("dapsim %s: %d replicas (seeds 0..%d), -j %d\n", mix.Name, *replic, *replic-1, *jobs)
		for s, v := range vals {
			fmt.Printf("  seed %2d: aggregate IPC %.4f\n", s, v)
		}
		fmt.Printf("aggregate IPC: mean %.4f, std %.4f\n", mean, std)
		return
	}

	// One-line effective configuration so a pasted log is self-describing.
	header := fmt.Sprintf(
		"dapsim %s: arch=%s policy=%s cores=%d instr=%d warm=%d seed=%d dap-window=%d trace=%v metrics-every=%d sampled=%v decisions=%v",
		mix.Name, *arch, *policy, *cores, cfg.MeasureInstr, cfg.WarmAccesses,
		*seed, dap.EffectiveDAPWindow(cfg), cfg.Trace, cfg.MetricsEvery, cfg.Sampled, cfg.Decisions)
	if !*asJSON {
		fmt.Println(header)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fatalIf(err)
		fatalIf(pprof.StartCPUProfile(f))
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	r, err := dap.RunCheckpointedE(cfg, mix, *seed, ckpts)
	if err != nil {
		// A validation error prints one line per problem; an aborted run
		// prints the stall/audit diagnostic with its state snapshot.
		fatalf("%v", err)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		fatalIf(err)
		runtime.GC()
		fatalIf(pprof.WriteHeapProfile(f))
		fatalIf(f.Close())
	}
	writeArtifacts(r, *tracePath, *metricsOut, *decisionsOut, *asJSON,
		exportStamp(cfg, mix.Name, *seed, *ckptDir))
	if ckpts != nil && !*asJSON {
		cs := ckpts.Stats()
		fmt.Printf("warmup checkpoint: built %d, disk hits %d, load failures %d\n",
			cs.Builds, cs.StoreHits, cs.LoadFailures)
	}

	if *asJSON {
		reportJSON(r, mix.Name, *arch, *policy, header)
		return
	}
	report(r)
	if r.Breakdown != nil && r.Breakdown.Spans() > 0 {
		fmt.Print(r.Breakdown.String())
	}
}

// runSweepService runs dapsim as the durable sweep service until
// interrupted: telemetry + sweep API on addr, queue and result store under
// dir. Shutdown drains in-flight jobs, checkpoints the queue and exits 0;
// a SIGKILLed process instead resumes from its journal on the next start.
func runSweepService(addr, dir string, workers int, logger *slog.Logger) {
	srv, svc, bound, err := dap.ServeSweepsObserved(addr, dir,
		dap.SweepServeOptions{Workers: workers, Logger: logger})
	fatalIf(err)
	fmt.Printf("sweep service: serving on http://%s (state in %s)\n", bound, dir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()

	fmt.Println("sweep service: draining in-flight jobs")
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Close(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "dapsim: sweep service close: %v\n", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "dapsim: telemetry shutdown: %v\n", err)
	}
}

// exportStamp renders the self-describing provenance header stamped onto
// metrics and decision exports: workload, seed, configuration fingerprint,
// build version, plus the run-acceleration knobs (warmup-checkpoint reuse
// and interval sampling) that decide whether the rows are bit-exact full-run
// values or checkpoint-resumed/sampled estimates. A file carrying this line
// can always be reproduced from its header alone.
func exportStamp(cfg dap.Config, mixName string, seed uint64, ckptDir string) string {
	return fmt.Sprintf("mix=%s seed=%d fingerprint=%s version=%s ckpt=%v ckpt-dir=%q sampled=%v",
		mixName, seed, dap.ConfigFingerprint(cfg), dap.BuildVersion(),
		ckptDir != "", ckptDir, cfg.Sampled)
}

// writeArtifacts persists the observability outputs: the Chrome trace JSON
// (with decision counter tracks merged in when recording was on), the
// per-window decision records, and the sampled metric series (to a file, or
// to stdout in text mode when no -metrics-out was given). A `.jsonl`/`.json`
// suffix selects JSON Lines — with the provenance stamp as a leading
// {"header": ...} object — over CSV, which carries the stamp as a leading
// `# ...` comment line.
func writeArtifacts(r dap.Result, tracePath, metricsOut, decisionsOut string, asJSON bool, stamp string) {
	if tracePath != "" && r.Trace != nil {
		f, err := os.Create(tracePath)
		fatalIf(err)
		fatalIf(r.WriteTrace(f))
		fatalIf(f.Close())
		if !asJSON {
			fmt.Printf("trace: %d spans -> %s (dropped %d)\n",
				len(r.Trace.Spans()), tracePath, r.Trace.Dropped())
		}
	}
	if decisionsOut != "" && r.Decisions != nil {
		f, err := os.Create(decisionsOut)
		fatalIf(err)
		if strings.HasSuffix(decisionsOut, ".jsonl") || strings.HasSuffix(decisionsOut, ".json") {
			hdr, err := json.Marshal(stamp)
			fatalIf(err)
			fmt.Fprintf(f, "{\"header\":%s}\n", hdr)
			fatalIf(r.Decisions.WriteJSONL(f))
		} else {
			fmt.Fprintf(f, "# %s\n", stamp)
			fatalIf(r.Decisions.WriteCSV(f))
		}
		fatalIf(f.Close())
		if !asJSON {
			fmt.Printf("decisions: %d windows, %d policy events -> %s (evicted %d)\n",
				len(r.Decisions.Records()), len(r.Decisions.Events()), decisionsOut, r.Decisions.Evicted())
		}
	}
	if r.Metrics == nil {
		return
	}
	switch {
	case metricsOut != "":
		f, err := os.Create(metricsOut)
		fatalIf(err)
		if strings.HasSuffix(metricsOut, ".jsonl") || strings.HasSuffix(metricsOut, ".json") {
			hdr, err := json.Marshal(stamp)
			fatalIf(err)
			fmt.Fprintf(f, "{\"header\":%s}\n", hdr)
			fatalIf(r.Metrics.WriteJSONL(f))
		} else {
			fmt.Fprintf(f, "# %s\n", stamp)
			fatalIf(r.Metrics.WriteCSV(f))
		}
		fatalIf(f.Close())
		if !asJSON {
			fmt.Printf("metrics: %d windows -> %s (dropped %d)\n",
				r.Metrics.Samples(), metricsOut, r.Metrics.Dropped())
		}
	case !asJSON:
		fmt.Println("metrics (CSV):")
		fmt.Printf("# %s\n", stamp)
		fatalIf(r.Metrics.WriteCSV(os.Stdout))
	}
}

// jsonReport is the machine-readable result schema.
type jsonReport struct {
	Mix        string    `json:"mix"`
	Arch       string    `json:"arch"`
	Policy     string    `json:"policy"`
	Config     string    `json:"config"`
	Cycles     uint64    `json:"cycles"`
	CoreIPC    []float64 `json:"core_ipc"`
	CoreMPKI   []float64 `json:"core_mpki"`
	HitRatio   float64   `json:"ms_hit_ratio"`
	TagMiss    float64   `json:"tag_cache_miss_ratio"`
	MSCacheCAS uint64    `json:"ms_cache_cas"`
	MainMemCAS uint64    `json:"main_mem_cas"`
	CASFrac    float64   `json:"main_mem_cas_fraction"`
	Delivered  float64   `json:"delivered_gbps"`
	DAP        struct {
		FWB, WB, IFRM, SFRM uint64
	} `json:"dap_decisions"`
	Sampling *dap.SamplingReport `json:"sampling,omitempty"`
}

func reportJSON(r dap.Result, mixName, arch, policy, header string) {
	out := jsonReport{
		Mix: mixName, Arch: arch, Policy: policy, Config: header,
		Cycles:     uint64(r.Cycles),
		HitRatio:   r.MemSide.HitRatio(),
		TagMiss:    r.MemSide.TagCacheMissRatio(),
		MSCacheCAS: r.MSCacheCAS,
		MainMemCAS: r.MainMemCAS,
		CASFrac:    r.MainMemCASFraction(),
		Delivered:  r.DeliveredGBps,
		Sampling:   r.Sampling,
	}
	for _, c := range r.Cores {
		out.CoreIPC = append(out.CoreIPC, c.IPC())
		out.CoreMPKI = append(out.CoreMPKI, c.MPKI())
	}
	out.DAP.FWB, out.DAP.WB = r.DAP.FWB, r.DAP.WB
	out.DAP.IFRM, out.DAP.SFRM = r.DAP.IFRM, r.DAP.SFRM
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatalf("encoding JSON: %v", err)
	}
}

func report(r dap.Result) {
	if sr := r.Sampling; sr != nil {
		switch {
		case sr.FellBack:
			fmt.Printf("sampling: %d intervals did not converge; numbers below are the full-run fallback\n", sr.Intervals)
		default:
			fmt.Printf("sampling: %d intervals of %d instr (ff %d accesses), converged=%v\n",
				sr.Intervals, sr.IntervalInstr, sr.FFAccesses, sr.Converged)
			fmt.Printf("  aggregate IPC %s  delivered GB/s %s  hit ratio %s\n",
				sr.IPC, sr.DeliveredGBps, sr.HitRatio)
		}
	}
	fmt.Printf("cycles: %d\n", r.Cycles)
	sum := 0.0
	for i, c := range r.Cores {
		fmt.Printf("  core %2d: IPC %.3f  L3 MPKI %6.2f  avg L3 read-miss latency %6.0f cycles\n",
			i, c.IPC(), c.MPKI(), c.AvgL3ReadMissLatency())
		sum += c.IPC()
	}
	fmt.Printf("aggregate IPC: %.3f\n", sum)
	var lat stats.Histogram
	for i := range r.Cores {
		lat.Merge(&r.Cores[i].L3MissLat)
	}
	if lat.Count > 0 {
		fmt.Printf("L3 read-miss latency: mean %.0f, p50 <%d, p99 <%d cycles\n",
			lat.Mean(), lat.Percentile(50), lat.Percentile(99))
	}
	ms := r.MemSide
	fmt.Printf("memory-side cache: hit %.3f (reads %.3f), tag-cache miss %.3f\n",
		ms.HitRatio(), ms.ReadHitRatio(), ms.TagCacheMissRatio())
	fmt.Printf("  fills %d (bypassed %d), write bypasses %d, forced misses %d, speculative %d (wasted %d)\n",
		ms.Fills, ms.FillBypasses, ms.WriteBypasses, ms.ForcedMisses, ms.SpecForced, ms.SpecWasted)
	fmt.Printf("  sector evicts %d, dirty writeouts %d, metadata r/w %d/%d\n",
		ms.SectorEvicts, ms.DirtyWriteouts, ms.MetaReads, ms.MetaWrites)
	fmt.Printf("CAS: cache %d, main memory %d -> main-memory fraction %.3f (optimal %.3f)\n",
		r.MSCacheCAS, r.MainMemCAS, r.MainMemCASFraction(), 38.4/(38.4+102.4))
	if t := r.DAP.Total(); t > 0 {
		f, w, ifrm, sfrm := r.DAP.Fractions()
		fmt.Printf("DAP decisions: %d (FWB %.0f%%, WB %.0f%%, IFRM %.0f%%, SFRM %.0f%%)\n",
			t, f*100, w*100, ifrm*100, sfrm*100)
	}
	fmt.Printf("delivered bandwidth: %.1f GB/s\n", r.DeliveredGBps)
}

func setCacheBW(cfg *dap.Config, gbps float64) error {
	switch gbps {
	case 102.4:
		// default
	case 128:
		cfg.Sectored.Array.Name = "HBM-128"
		cfg.Sectored.Array.FreqMHz = 1000
		cfg.Sectored.Array.TCAS, cfg.Sectored.Array.TRCD, cfg.Sectored.Array.TRP, cfg.Sectored.Array.TRAS = 12, 12, 12, 32
	case 204.8:
		cfg.Sectored.Array.Channels = 8
	default:
		return fmt.Errorf("unsupported cache bandwidth %.1f (use 102.4, 128 or 204.8)", gbps)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dapsim: "+format+"\n", args...)
	os.Exit(1)
}

func fatalIf(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}
