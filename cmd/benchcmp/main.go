// Command benchcmp compares two BENCH_*.json reports (the machine-readable
// output of cmd/benchjson) and acts as the regression gate of the bench
// workflow: it prints a per-benchmark delta table and exits non-zero when
// any shared benchmark regressed by more than the threshold in ns/op,
// bytes/op or allocs/op.
//
//	go run ./cmd/benchcmp BENCH_BASE.json BENCH_HEAD.json
//	go run ./cmd/benchcmp -threshold 5 old.json new.json
//	go run ./cmd/benchcmp -match 'EndToEnd|Replicate' base.json head.json
//	make bench-cmp BASE=BENCH_PR3.json HEAD=BENCH_HEAD.json
//
// -match restricts the gate to benchmarks whose name matches the regexp.
// Sub-microsecond benchmarks recorded in different sessions track machine
// state (frequency scaling, co-tenant load) as much as code, so a gate
// spanning recording sessions should match the long-running end-to-end
// benchmarks, where real regressions dominate noise.
//
// A benchmark present in the baseline but missing from the head report is a
// hard failure: a silently vanished benchmark usually means a renamed or
// deleted benchmark function, and letting it pass would hide exactly the
// regressions the gate exists to catch. Benchmarks new in head are reported
// but never gate; noise on sub-threshold deltas is tolerated by design (the
// default gate is 10%).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
)

type entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Note       string  `json:"note,omitempty"`
	GOMAXPROCS int     `json:"gomaxprocs,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exit code returned instead of called, so the gate
// logic is testable: 0 = within threshold, 1 = regression (or bad input),
// 2 = usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10, "regression gate in percent: fail when ns/op, bytes/op or allocs/op grows by more than this")
	match := fs.String("match", "", "regexp restricting the gate to matching benchmark names (empty = all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchcmp [-threshold pct] [-match regexp] BASE.json HEAD.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil || fs.NArg() != 2 {
		if err == nil {
			fs.Usage()
		}
		return 2
	}
	re, err := compileMatch(*match)
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: bad -match: %v\n", err)
		return 2
	}
	base, err := load(fs.Arg(0))
	if err == nil {
		var head report
		head, err = load(fs.Arg(1))
		if err == nil {
			return compare(base, head, fs.Arg(0), fs.Arg(1), *threshold, re, stdout, stderr)
		}
	}
	fmt.Fprintf(stderr, "benchcmp: %v\n", err)
	return 1
}

// compileMatch turns the -match value into a filter; empty matches all.
func compileMatch(expr string) (*regexp.Regexp, error) {
	if expr == "" {
		return nil, nil
	}
	return regexp.Compile(expr)
}

func compare(base, head report, basePath, headPath string, threshold float64, match *regexp.Regexp, stdout, stderr io.Writer) int {
	baseBy := make(map[string]entry, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	headBy := make(map[string]entry, len(head.Benchmarks))
	for _, h := range head.Benchmarks {
		headBy[h.Name] = h
	}

	if match != nil {
		fmt.Fprintf(stdout, "benchcmp: %s vs %s (gate: +%.0f%% ns/op, bytes/op or allocs/op, match %q)\n\n",
			basePath, headPath, threshold, match.String())
	} else {
		fmt.Fprintf(stdout, "benchcmp: %s vs %s (gate: +%.0f%% ns/op, bytes/op or allocs/op)\n\n",
			basePath, headPath, threshold)
	}
	fmt.Fprintf(stdout, "%-44s %14s %14s %9s %9s %9s\n", "benchmark", "base ns/op", "head ns/op", "Δns/op", "Δbytes", "Δallocs")

	regressions := 0
	for _, b := range base.Benchmarks { // base order keeps the table stable
		if match != nil && !match.MatchString(b.Name) {
			continue
		}
		h, ok := headBy[b.Name]
		if !ok {
			// Present in base, gone in head: hard failure. A benchmark that
			// silently disappears (renamed, deleted, build-tagged away) would
			// otherwise let any regression in it sail through the gate.
			fmt.Fprintf(stdout, "%-44s %14s %14s %9s %9s %9s  MISSING\n", b.Name, fmtNs(b.NsPerOp), "-", "-", "-", "-")
			regressions++
			continue
		}
		dns := pctDelta(b.NsPerOp, h.NsPerOp)
		dbytes := pctDelta(b.BytesPerOp, h.BytesPerOp)
		dallocs := pctDelta(b.AllocsPerOp, h.AllocsPerOp)
		mark := ""
		if dns > threshold || dbytes > threshold || dallocs > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-44s %14s %14s %9s %9s %9s%s\n",
			b.Name, fmtNs(b.NsPerOp), fmtNs(h.NsPerOp), fmtPct(dns), fmtPct(dbytes), fmtPct(dallocs), mark)
	}
	for _, h := range head.Benchmarks {
		if match != nil && !match.MatchString(h.Name) {
			continue
		}
		if _, ok := baseBy[h.Name]; !ok {
			fmt.Fprintf(stdout, "%-44s %14s %14s %9s %9s %9s  (new)\n", h.Name, "-", fmtNs(h.NsPerOp), "-", "-", "-")
		}
	}

	if regressions > 0 {
		fmt.Fprintf(stderr, "\nbenchcmp: %d benchmark(s) regressed beyond %.0f%% or missing from head\n", regressions, threshold)
		return 1
	}
	fmt.Fprintf(stdout, "\nbenchcmp: no regression beyond %.0f%%\n", threshold)
	return 0
}

// pctDelta returns the head-over-base growth in percent; a zero or absent
// base yields 0 (a metric appearing from nothing is not a measurable
// regression — allocs_per_op is omitempty in the report schema).
func pctDelta(base, head float64) float64 {
	if base <= 0 {
		return 0
	}
	return (head - base) / base * 100
}

func fmtNs(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func fmtPct(v float64) string {
	return fmt.Sprintf("%+.1f%%", v)
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return r, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return r, nil
}
