package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runFixture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestRegressionGate is the acceptance check: a synthetic 2x ns/op (and 3x
// allocs/op) regression must fail the gate with a non-zero exit.
func TestRegressionGate(t *testing.T) {
	base := filepath.Join("testdata", "base.json")
	head := filepath.Join("testdata", "head_regressed.json")
	code, stdout, stderr := runFixture(t, base, head)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "3 benchmark(s) regressed beyond 10% or missing") {
		t.Errorf("stderr missing regression count: %q", stderr)
	}
	for _, want := range []string{
		"BenchmarkEngineEventLoop", "REGRESSION",
		"BenchmarkRemovedInHead", "MISSING",
		"BenchmarkNewInHead", "(new)",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("table missing %q\n%s", want, stdout)
		}
	}
	// The unregressed benchmark must not be flagged.
	for _, line := range strings.Split(stdout, "\n") {
		if strings.Contains(line, "BenchmarkEndToEndQuickRun") && strings.Contains(line, "REGRESSION") {
			t.Errorf("EndToEndQuickRun wrongly flagged: %s", line)
		}
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	code, stdout, stderr := runFixture(t,
		filepath.Join("testdata", "base.json"), filepath.Join("testdata", "head_ok.json"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "no regression") {
		t.Errorf("missing pass line:\n%s", stdout)
	}
}

// TestBytesPerOpGate: a benchmark whose bytes/op doubled must fail the gate
// even though its ns/op and allocs/op stayed within threshold — memory-
// footprint regressions gate on their own axis.
func TestBytesPerOpGate(t *testing.T) {
	code, stdout, stderr := runFixture(t,
		filepath.Join("testdata", "base.json"), filepath.Join("testdata", "head_bytes_regressed.json"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "1 benchmark(s) regressed beyond 10% or missing") {
		t.Errorf("stderr = %q", stderr)
	}
	var lookupLine string
	for _, line := range strings.Split(stdout, "\n") {
		if strings.Contains(line, "BenchmarkCacheLookup") {
			lookupLine = line
		}
	}
	if !strings.Contains(lookupLine, "REGRESSION") || !strings.Contains(lookupLine, "+100.0%") {
		t.Errorf("CacheLookup line does not flag the bytes/op doubling: %q", lookupLine)
	}
	// Benchmarks without bytes_per_op in either report must not be flagged.
	for _, line := range strings.Split(stdout, "\n") {
		if strings.Contains(line, "BenchmarkEngineEventLoop") && strings.Contains(line, "REGRESSION") {
			t.Errorf("EngineEventLoop wrongly flagged: %s", line)
		}
	}
}

// TestMissingBenchmarkIsHardFailure: a head report that lacks a baseline
// benchmark must fail the gate even when every shared benchmark is within
// threshold — a vanished benchmark silently passing was the old behavior
// this pins down.
func TestMissingBenchmarkIsHardFailure(t *testing.T) {
	code, stdout, stderr := runFixture(t,
		filepath.Join("testdata", "base.json"), filepath.Join("testdata", "head_missing.json"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "1 benchmark(s) regressed beyond 10% or missing") {
		t.Errorf("stderr = %q", stderr)
	}
	var missingLine string
	for _, line := range strings.Split(stdout, "\n") {
		if strings.Contains(line, "BenchmarkRemovedInHead") {
			missingLine = line
		}
	}
	if !strings.Contains(missingLine, "MISSING") {
		t.Errorf("missing benchmark not marked MISSING: %q", missingLine)
	}
}

// TestThresholdFlag verifies the gate moves with -threshold: the ok fixture
// has a ~4.6% ns/op growth that a 2% gate must catch.
func TestThresholdFlag(t *testing.T) {
	code, _, _ := runFixture(t, "-threshold", "2",
		filepath.Join("testdata", "base.json"), filepath.Join("testdata", "head_ok.json"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1 with -threshold 2", code)
	}
}

// TestMatchFlagScopesGate: the regressed fixture must pass when -match
// restricts the gate to the (unregressed) end-to-end benchmark — both the
// 2x EngineEventLoop regression and the MISSING RemovedInHead are outside
// the match and must neither gate nor appear in the table.
func TestMatchFlagScopesGate(t *testing.T) {
	code, stdout, stderr := runFixture(t, "-match", "EndToEndQuickRun",
		filepath.Join("testdata", "base.json"), filepath.Join("testdata", "head_regressed.json"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, excluded := range []string{"BenchmarkEngineEventLoop", "BenchmarkRemovedInHead", "BenchmarkNewInHead"} {
		if strings.Contains(stdout, excluded) {
			t.Errorf("non-matching benchmark %s in table:\n%s", excluded, stdout)
		}
	}
	if !strings.Contains(stdout, "BenchmarkEndToEndQuickRun") {
		t.Errorf("matched benchmark absent from table:\n%s", stdout)
	}
	if !strings.Contains(stdout, `match "EndToEndQuickRun"`) {
		t.Errorf("header does not echo the match expression:\n%s", stdout)
	}
}

func TestBadMatchRegexpIsUsageError(t *testing.T) {
	code, _, stderr := runFixture(t, "-match", "(",
		filepath.Join("testdata", "base.json"), filepath.Join("testdata", "head_ok.json"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "bad -match") {
		t.Errorf("stderr = %q, want bad -match message", stderr)
	}
}

func TestUsageAndBadInput(t *testing.T) {
	if code, _, _ := runFixture(t, "only-one.json"); code != 2 {
		t.Errorf("one arg: exit = %d, want 2", code)
	}
	if code, _, stderr := runFixture(t, "no-such.json", "no-such-either.json"); code != 1 || stderr == "" {
		t.Errorf("missing files: exit = %d (stderr %q), want 1 with message", code, stderr)
	}
}

func TestPctDelta(t *testing.T) {
	for _, tc := range []struct {
		base, head, want float64
	}{
		{100, 200, 100},
		{100, 110, 10},
		{100, 90, -10},
		{0, 5, 0}, // metric absent in base: not gateable
	} {
		if got := pctDelta(tc.base, tc.head); got != tc.want {
			t.Errorf("pctDelta(%v, %v) = %v, want %v", tc.base, tc.head, got, tc.want)
		}
	}
}
