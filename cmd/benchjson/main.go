// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON benchmark report. It reads the benchmark log on
// stdin, echoes it unchanged to stdout (so it can sit in a pipe without
// hiding the live output), and writes one JSON object per benchmark to the
// -o file: ns/op, B/op, allocs/op and any custom metrics reported with
// b.ReportMetric (the figure benchmarks' headline gmean/mean numbers).
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -o BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's parsed result. Metrics holds the non-standard
// units (e.g. "gmean_speedup", "GBps_dram_100pct").
type entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Note       string  `json:"note,omitempty"`
	GOMAXPROCS int     `json:"gomaxprocs,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout, after the echoed log)")
	note := flag.String("note", "", "free-form note recorded in the report (e.g. host caveats)")
	flag.Parse()

	rep := report{Note: *note}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if e, procs, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, e)
			rep.GOMAXPROCS = procs
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatalf("encoding: %v", err)
	}
	if *out != "" {
		fmt.Printf("benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
	}
}

// parseBenchLine parses one `BenchmarkName-P  N  v1 unit1  v2 unit2 ...`
// line; non-benchmark lines return ok=false.
func parseBenchLine(line string) (e entry, procs int, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return e, 0, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return e, 0, false
	}
	e = entry{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return e, 0, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return e, procs, true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
