package core

import (
	"fmt"

	"dap/internal/check"
	"dap/internal/mem"
	"dap/internal/sim"
	"dap/internal/stats"
)

// WindowCounts is the demand profile a memory-side cache controller collects
// during one observation window. The controller increments these as traffic
// arrives; the partitioner consumes and resets them at window boundaries.
//
// AMSR/AMSW split memory-side cache demand into its read and write
// components (needed by the eDRAM variant, which has independent read and
// write channels); single-channel architectures use the sum. AMM counts
// baseline main-memory accesses only (read misses and dirty write-outs of
// the memory-side cache) — traffic added by WB/IFRM/SFRM redirection is
// accounted analytically by the equations, not double-counted here.
type WindowCounts struct {
	AMSR      int64 // reads demanded of the memory-side cache (incl. metadata reads, victim reads)
	AMSW      int64 // writes demanded of the memory-side cache (fills, writebacks, metadata updates)
	AMM       int64 // baseline main-memory accesses (read misses + dirty write-outs)
	Rm        int64 // read-miss fills intended (demand misses + footprint fetches)
	Wm        int64 // writes to the memory-side cache (dirty L3 evictions)
	CleanHits int64 // clean read hits observed (IFRM candidates)
}

// AMS is the total memory-side cache demand.
func (w *WindowCounts) AMS() int64 { return w.AMSR + w.AMSW }

func (w *WindowCounts) reset() { *w = WindowCounts{} }

// Partitioner is the decision interface consulted by memory-side cache
// controllers at each technique's application point. Each Take* consumes one
// credit when available. The baseline partitioner never partitions.
type Partitioner interface {
	// TakeFWB reports whether the next read-miss fill should be dropped.
	TakeFWB() bool
	// TakeWB reports whether the next dirty L3 eviction should be steered
	// to main memory.
	TakeWB() bool
	// TakeIFRM reports whether the next clean read hit (issued by the
	// given core; -1 when unattributed) should be served from main memory.
	TakeIFRM(core int) bool
	// TakeSFRM reports whether a read with unknown hit/miss status should
	// be speculatively issued to main memory alongside the metadata fetch.
	TakeSFRM() bool
	// TakeWT reports whether a write should additionally be written
	// through to main memory (Alloy-cache variant: keeps blocks clean so
	// IFRM stays applicable).
	TakeWT() bool
	// Decisions returns the technique application counts (Figure 7).
	Decisions() stats.DAPDecisions
}

// Nop is the baseline partitioner: it never partitions.
type Nop struct{}

func (Nop) TakeFWB() bool                 { return false }
func (Nop) TakeWB() bool                  { return false }
func (Nop) TakeIFRM(int) bool             { return false }
func (Nop) TakeSFRM() bool                { return false }
func (Nop) TakeWT() bool                  { return false }
func (Nop) Decisions() stats.DAPDecisions { return stats.DAPDecisions{} }

// Arch selects the architecture-specific credit computation.
type Arch uint8

// Architectures supported by DAP (Section IV-A/B/C).
const (
	SectoredArch Arch = iota // die-stacked sectored DRAM cache (single channel set)
	AlloyArch                // Alloy cache (single channel set, TAD bloat)
	EDRAMArch                // sectored eDRAM cache (separate read/write channels)
)

// Config parameterizes DAP.
type Config struct {
	Arch Arch

	// BMSGBps is the peak bandwidth of the memory-side cache in GB/s. For
	// the eDRAM architecture this is the bandwidth of EACH of the read and
	// write channel sets. For the Alloy cache pass the effective data
	// bandwidth (2/3 of peak: a TAD burst moves 96 B to deliver 64 B).
	BMSGBps float64
	// BMMGBps is the peak main-memory bandwidth in GB/s.
	BMMGBps float64

	// Window is the observation window W in CPU cycles (paper default 64).
	Window mem.Cycle
	// Efficiency is the assumed fraction of peak deliverable by every
	// source (paper default 0.75).
	Efficiency float64

	// MaxKDen bounds the denominator of the hardware rational
	// approximation of K (paper default 4, giving 11/4 for 8/3).
	MaxKDen int64
	// CreditCap is the saturation value of each raw credit counter
	// (paper: eight-bit counters, 255).
	CreditCap int64
	// SFRMReserve is the fraction of spare main-memory bandwidth granted
	// to SFRM / write-through (paper default 0.8, keeping 20% for
	// bandwidth emergencies).
	SFRMReserve float64

	// Disable selectively turns techniques off (Figure 8 evaluates a
	// FWB+WB-only configuration; the ablation benches use the rest).
	Disable struct{ FWB, WB, IFRM, SFRM bool }

	// Backlog, when non-nil, reports the requests still queued at the
	// memory-side cache's read and write channels and at main memory. The
	// paper's A_MS$/A_MM are the accesses that *need* to be served — under
	// saturation that is new arrivals plus the backlog, not arrivals alone
	// (which self-limit to the service rate in a closed-loop system).
	Backlog func() (msRead, msWrite, mm int64)

	// EWMALearning smooths the window counts exponentially (half-life one
	// window) instead of using each window's raw counts — the learning
	// ablation discussed in DESIGN.md. The paper uses raw windows.
	EWMALearning bool

	// ThreadAware enables the thread-aware IFRM variant sketched in
	// Section IV-A: clean hits of latency-insensitive threads are bypassed
	// to main memory before those of latency-sensitive ones. Sensitive
	// threads only consume IFRM credits while more than half of the
	// window's grant remains.
	ThreadAware bool
	// LatencySensitive marks each core (indexed by core id) as
	// latency-sensitive; only consulted when ThreadAware is set.
	LatencySensitive []bool
}

// Validate checks the DAP parameters. Zero values that NewDAP defaults
// (Window, Efficiency, MaxKDen, CreditCap, SFRMReserve) are accepted;
// everything else must be in range. All problems are reported at once.
func (c *Config) Validate() error {
	var errs check.Collector
	if c.Arch > EDRAMArch {
		errs.Addf("Arch", c.Arch, "unknown DAP architecture")
	}
	if !(c.BMSGBps > 0) {
		errs.Addf("BMSGBps", c.BMSGBps, "memory-side cache bandwidth must be positive")
	}
	if !(c.BMMGBps > 0) {
		errs.Addf("BMMGBps", c.BMMGBps, "main-memory bandwidth must be positive")
	}
	if c.Efficiency < 0 || c.Efficiency > 1 {
		errs.Addf("Efficiency", c.Efficiency, "must lie in (0, 1] (0 selects the default)")
	}
	if c.MaxKDen < 0 {
		errs.Addf("MaxKDen", c.MaxKDen, "must not be negative")
	}
	if c.CreditCap < 0 {
		errs.Addf("CreditCap", c.CreditCap, "must not be negative")
	}
	if c.SFRMReserve < 0 || c.SFRMReserve > 1 {
		errs.Addf("SFRMReserve", c.SFRMReserve, "must lie in (0, 1] (0 selects the default)")
	}
	if c.ThreadAware && len(c.LatencySensitive) == 0 {
		errs.Addf("LatencySensitive", c.LatencySensitive, "thread-aware IFRM needs per-core sensitivity flags")
	}
	return errs.Err()
}

// DefaultConfig returns the paper's default DAP parameters for the given
// architecture and bandwidth point.
func DefaultConfig(arch Arch, bmsGBps, bmmGBps float64) Config {
	return Config{
		Arch: arch, BMSGBps: bmsGBps, BMMGBps: bmmGBps,
		Window: 64, Efficiency: 0.75,
		MaxKDen: 4, CreditCap: 255, SFRMReserve: 0.8,
	}
}

// DAP is the dynamic access partitioner. It samples the demand profile every
// Window cycles and refills the four credit counters by solving the
// bandwidth-balance equations of Section IV; controllers then drain the
// credits at each technique's application point.
//
// All window arithmetic is integer-only, mirroring the hardware: K is the
// rational Num/Den, WB and IFRM credits are stored pre-multiplied by (K+1)
// — i.e. by (Num+Den) in units of Den — exactly as the paper stores
// (K+1)N_WB to avoid a division.
type DAP struct {
	cfg Config
	eng *sim.Engine
	wc  *WindowCounts

	k Ratio

	// per-window capacities in accesses (already derated by Efficiency)
	bmsWinR int64 // read channels (== total for single-channel archs)
	bmsWinW int64 // write channels (eDRAM only)
	bmmWin  int64

	// Per-access fast path: the credit cost of one application, fixed at
	// construction (costFWB = Den, costUnit = Num+Den), so each Take* is a
	// single compare-and-decrement against a live counter. Disable flags
	// are folded into the live counters at credit install (a disabled
	// technique's counter is forced to zero), and the thread-aware IFRM
	// watermark is precomputed as ifrmHalf, so no per-access decision reads
	// the Config.
	costFWB, costUnit int64
	// taSensitive aliases cfg.LatencySensitive when thread-aware IFRM is
	// on; nil otherwise, making the common-case check one pointer test.
	taSensitive []bool

	// raw credit counters; fwb and sfrm in units of Den, wb and ifrm in
	// units of (Num+Den) [one application costs Num+Den], wt in units 1.
	fwb, wb, ifrm, sfrm, wt int64
	// ifrmGrant is this window's IFRM grant (thread-aware watermark);
	// ifrmHalf is its precomputed half.
	ifrmGrant, ifrmHalf int64

	// rawFWB..rawWT hold the window's clamped grants before Disable
	// folding. They exist for the decision recorder, which must observe
	// what the solver granted rather than what the controllers can drain,
	// and are overwritten at every rollover (never serialized).
	rawFWB, rawWB, rawIFRM, rawSFRM, rawWT int64
	// smooth carries the EWMA-filtered counts when EWMALearning is set.
	smooth WindowCounts

	dec stats.DAPDecisions

	// rec, when non-nil, captures a DecisionRecord at every window
	// rollover (strict observer; see decision.go).
	rec *DecisionRecorder

	// Windows counts recomputations; Partitioned counts windows where any
	// partitioning was invoked (useful in tests and for insensitive
	// workloads, where this should be near zero).
	Windows, Partitioned uint64
	// SumAMS/SumAMM accumulate the observed per-window demand (diagnostics).
	SumAMS, SumAMM int64

	stopped bool
}

// NewDAP builds a DAP instance observing wc and schedules its window timer
// on eng.
func NewDAP(cfg Config, eng *sim.Engine, wc *WindowCounts) *DAP {
	if cfg.Window == 0 {
		cfg.Window = 64
	}
	if cfg.Efficiency == 0 {
		cfg.Efficiency = 0.75
	}
	if cfg.MaxKDen == 0 {
		cfg.MaxKDen = 4
	}
	if cfg.CreditCap == 0 {
		cfg.CreditCap = 255
	}
	if cfg.SFRMReserve == 0 {
		cfg.SFRMReserve = 0.8
	}
	d := &DAP{cfg: cfg, eng: eng, wc: wc}
	bms := mem.AccessesPerCycle(cfg.BMSGBps) * cfg.Efficiency
	bmm := mem.AccessesPerCycle(cfg.BMMGBps) * cfg.Efficiency
	d.k = ApproxRatio(bms/bmm, cfg.MaxKDen)
	d.costFWB = d.k.Den
	d.costUnit = d.k.Num + d.k.Den
	if cfg.ThreadAware {
		d.taSensitive = cfg.LatencySensitive
	}
	w := float64(cfg.Window)
	d.bmsWinR = int64(bms * w)
	d.bmsWinW = d.bmsWinR
	d.bmmWin = int64(bmm * w)
	eng.AfterArg(cfg.Window, windowTick, d, 0)
	return d
}

// windowTick is the window timer's top-level handler: scheduling it through
// AfterArg with the DAP as ctx costs no allocation, where the method value
// d.window allocated one closure per window — the simulator's largest
// steady-state allocation site once the access paths went allocation-free.
func windowTick(ctx any, _ uint64, _ mem.Cycle) { ctx.(*DAP).window() }

// Stop halts the window timer (end of a simulation).
func (d *DAP) Stop() { d.stopped = true }

// Credits returns the raw credit counters (fwb and sfrm in units of Den,
// wb and ifrm in units of Num+Den, wt in units of one) for diagnostics and
// the runtime invariant auditor.
func (d *DAP) Credits() (fwb, wb, ifrm, sfrm, wt int64) {
	return d.fwb, d.wb, d.ifrm, d.sfrm, d.wt
}

// AuditCredits verifies the credit-counter invariants the hardware's
// saturating arithmetic guarantees: no counter may be negative or exceed
// its saturation bound. A corrupted credit update violates one of these.
func (d *DAP) AuditCredits() error {
	den, unit := d.k.Den, d.k.Num+d.k.Den
	bounds := []struct {
		name string
		v    int64
		cap  int64
	}{
		{"fwb", d.fwb, d.cfg.CreditCap * den},
		{"wb", d.wb, d.cfg.CreditCap * unit / den},
		{"ifrm", d.ifrm, d.cfg.CreditCap * unit / den},
		{"sfrm", d.sfrm, d.cfg.CreditCap},
		{"wt", d.wt, d.cfg.CreditCap},
	}
	for _, b := range bounds {
		if b.v < 0 {
			return fmt.Errorf("dap credit %s = %d: negative", b.name, b.v)
		}
		if b.v > b.cap {
			return fmt.Errorf("dap credit %s = %d: exceeds saturation bound %d", b.name, b.v, b.cap)
		}
	}
	return nil
}

// InjectCreditFault adds delta to every credit counter, bypassing the
// saturating clamp. It exists solely for fault injection: tests use it to
// verify the invariant auditor detects corrupted credit state.
func (d *DAP) InjectCreditFault(delta int64) {
	d.fwb += delta
	d.wb += delta
	d.ifrm += delta
	d.sfrm += delta
	d.wt += delta
}

// K returns the rational bandwidth ratio in use.
func (d *DAP) K() Ratio { return d.k }

// Decisions implements Partitioner.
func (d *DAP) Decisions() stats.DAPDecisions { return d.dec }

// TakeFWB implements Partitioner (credit unit: Den per application).
// Disabled techniques install zero credits, so the common unpartitioned
// case is a single compare.
func (d *DAP) TakeFWB() bool {
	if d.fwb < d.costFWB {
		return false
	}
	d.fwb -= d.costFWB
	d.dec.FWB++
	return true
}

// TakeWB implements Partitioner (credit unit: Num+Den per application).
func (d *DAP) TakeWB() bool {
	if d.wb < d.costUnit {
		return false
	}
	d.wb -= d.costUnit
	d.dec.WB++
	return true
}

// TakeIFRM implements Partitioner (credit unit: Num+Den per application).
// With ThreadAware set, latency-sensitive cores only consume credits while
// more than half of this window's grant remains, so insensitive threads'
// clean hits are bypassed first (Section IV-A).
func (d *DAP) TakeIFRM(core int) bool {
	if d.ifrm < d.costUnit {
		return false
	}
	if d.taSensitive != nil && core >= 0 && core < len(d.taSensitive) &&
		d.taSensitive[core] && d.ifrm <= d.ifrmHalf {
		return false
	}
	d.ifrm -= d.costUnit
	d.dec.IFRM++
	return true
}

// TakeSFRM implements Partitioner.
func (d *DAP) TakeSFRM() bool {
	if d.sfrm < 1 {
		return false
	}
	d.sfrm--
	d.dec.SFRM++
	return true
}

// TakeWT implements Partitioner (Alloy write-through credits).
func (d *DAP) TakeWT() bool {
	if d.wt < 1 {
		return false
	}
	d.wt--
	return true
}

// window is the periodic recomputation (Figure 3).
func (d *DAP) window() {
	if d.stopped {
		return
	}
	d.eng.AfterArg(d.cfg.Window, windowTick, d, 0)
	w := *d.wc
	d.wc.reset()
	if d.cfg.Backlog != nil {
		msR, msW, mm := d.cfg.Backlog()
		w.AMSR += msR
		w.AMSW += msW
		w.AMM += mm
	}
	if d.cfg.EWMALearning {
		s := &d.smooth
		s.AMSR = (s.AMSR + w.AMSR) / 2
		s.AMSW = (s.AMSW + w.AMSW) / 2
		s.AMM = (s.AMM + w.AMM) / 2
		s.Rm = (s.Rm + w.Rm) / 2
		s.Wm = (s.Wm + w.Wm) / 2
		s.CleanHits = (s.CleanHits + w.CleanHits) / 2
		w = *s
	}
	d.Windows++
	d.SumAMS += w.AMS()
	d.SumAMM += w.AMM

	switch d.cfg.Arch {
	case EDRAMArch:
		d.solveEDRAM(&w)
	case AlloyArch:
		d.solveAlloy(&w)
	default:
		d.solveSectored(&w)
	}

	if d.rec != nil {
		d.recordDecision(&w)
	}
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// setCredits installs the window's solution with saturation. Raw units: fwb
// and sfrm scale by Den; wb/ifrm are already in (Num+Den) units. The
// clamped solver grants land in the raw* fields for the decision recorder;
// the live counters the Take* fast paths drain additionally fold the
// Disable flags (a disabled technique's counter is forced to zero, so no
// per-access check is needed).
func (d *DAP) setCredits(fwbRaw, wbRaw, ifrmRaw, sfrm, wt int64) {
	den := d.costFWB
	unit := d.costUnit
	d.rawFWB = clamp(fwbRaw, 0, d.cfg.CreditCap*den)
	d.rawWB = clamp(wbRaw, 0, d.cfg.CreditCap*unit/den)
	d.rawIFRM = clamp(ifrmRaw, 0, d.cfg.CreditCap*unit/den)
	d.rawSFRM = clamp(sfrm, 0, d.cfg.CreditCap)
	d.rawWT = clamp(wt, 0, d.cfg.CreditCap)
	if d.rawFWB > 0 || d.rawWB > 0 || d.rawIFRM > 0 || d.rawSFRM > 0 || d.rawWT > 0 {
		d.Partitioned++
	}
	d.fwb, d.wb, d.ifrm, d.sfrm, d.wt = d.rawFWB, d.rawWB, d.rawIFRM, d.rawSFRM, d.rawWT
	if d.cfg.Disable.FWB {
		d.fwb = 0
	}
	if d.cfg.Disable.WB {
		d.wb = 0
	}
	if d.cfg.Disable.IFRM {
		d.ifrm = 0
	}
	if d.cfg.Disable.SFRM {
		d.sfrm = 0
	}
	d.ifrmGrant = d.ifrm
	d.ifrmHalf = d.ifrmGrant / 2
}

// solveSectored implements the Figure 3 flow for the sectored DRAM cache:
// a single set of cache channels serving both reads and writes, metadata in
// the cache, SFRM available.
func (d *DAP) solveSectored(w *WindowCounts) {
	p, q := d.k.Num, d.k.Den
	ams, amm := w.AMS(), w.AMM
	if ams <= d.bmsWinR {
		d.setCredits(0, 0, 0, 0, 0)
		return
	}
	// N_FWB = A_MS$ - K*A_MM, capped by the bandwidth excess and by the
	// number of read-miss fills available (all scaled by q).
	nfwb := q*ams - p*amm
	if nfwb <= 0 {
		// main memory is the bottleneck: exit partitioning
		d.setCredits(0, 0, 0, 0, 0)
		return
	}
	if max := q * (ams - d.bmsWinR); nfwb > max {
		nfwb = max
	}
	var nwb, nifrm int64
	if nfwb > q*w.Rm {
		nfwb = q * w.Rm
		// (K+1)N_WB = A_MS$ - K*A_MM - R_m    [units of q]
		nwb = q*ams - p*amm - q*w.Rm
		if nwb > (p+q)*w.Wm {
			nwb = (p + q) * w.Wm
			// (K+1)N_IFRM = A_MS$ - K*(A_MM + W_m) - R_m - W_m
			nifrm = q*ams - p*(amm+w.Wm) - q*w.Rm - q*w.Wm
			if nifrm > (p+q)*w.CleanHits {
				nifrm = (p + q) * w.CleanHits
			}
			if nifrm < 0 {
				nifrm = 0
			}
		}
		if nwb < 0 {
			nwb = 0
		}
	}
	// N_SFRM = reserve * (B_MM*W - A_MM - N_WB - N_IFRM), >= 0.
	spare := float64(d.bmmWin-amm) - float64(nwb+nifrm)/float64(p+q)
	nsfrm := int64(d.cfg.SFRMReserve * spare)
	if nsfrm < 0 {
		nsfrm = 0
	}
	d.setCredits(nfwb, nwb, nifrm, nsfrm, 0)
}

// solveAlloy implements Section IV-B: tag and data are fused (TAD), so
// write bypass and explicit fill bypass are unavailable; IFRM (with implied
// fill bypass) is computed from Equation 8 and residual main-memory
// bandwidth funds write-throughs that keep blocks clean.
func (d *DAP) solveAlloy(w *WindowCounts) {
	p, q := d.k.Num, d.k.Den
	ams, amm := w.AMS(), w.AMM
	if ams <= d.bmsWinR {
		d.setCredits(0, 0, 0, 0, 0)
		return
	}
	// (K+1)N_IFRM = A_MS$ - K*A_MM   [units of q]
	nifrm := q*ams - p*amm
	if nifrm <= 0 {
		d.setCredits(0, 0, 0, 0, 0)
		return
	}
	if nifrm > (p+q)*w.CleanHits {
		nifrm = (p + q) * w.CleanHits
	}
	// Residual main-memory bandwidth funds write-through.
	spare := float64(d.bmmWin-amm) - float64(nifrm)/float64(p+q)
	nwt := int64(d.cfg.SFRMReserve * spare)
	if nwt < 0 {
		nwt = 0
	}
	if nwt > w.Wm {
		nwt = w.Wm
	}
	d.setCredits(0, 0, nifrm, 0, nwt)
}

// solveEDRAM implements Section IV-C: three bandwidth sources (independent
// read and write channel sets plus main memory), on-die metadata (no SFRM),
// and the three demand scenarios of Equations 9-12.
func (d *DAP) solveEDRAM(w *WindowCounts) {
	p, q := d.k.Num, d.k.Den
	readShort := w.AMSR > d.bmsWinR
	writeShort := w.AMSW > d.bmsWinW

	switch {
	case readShort && !writeShort:
		// (i) Equation 9: (K+1)N_IFRM = A_MS$-R - K*A_MM
		nifrm := q*w.AMSR - p*w.AMM
		if nifrm > (p+q)*w.CleanHits {
			nifrm = (p + q) * w.CleanHits
		}
		if nifrm < 0 {
			nifrm = 0
		}
		d.setCredits(0, 0, nifrm, 0, 0)

	case writeShort && !readShort:
		// (ii) Equation 10: N_FWB = A_MS$-W - K*A_MM
		nfwb := q*w.AMSW - p*w.AMM
		if nfwb < 0 {
			nfwb = 0
		}
		if nfwb > q*w.Rm {
			nfwb = q * w.Rm
		}
		// Equation 11: (K+1)N_WB = (A_MS$-W - N_FWB) - K*A_MM
		nwb := q*w.AMSW - nfwb - p*w.AMM
		if nwb > (p+q)*w.Wm {
			nwb = (p + q) * w.Wm
		}
		if nwb < 0 {
			nwb = 0
		}
		d.setCredits(nfwb, nwb, 0, 0, 0)

	case readShort && writeShort:
		// (iii) N_FWB from Equation 10, then the simultaneous solution:
		// (2K+1)N_WB   = (K+1)(A_MS$-W - N_FWB) - K*A_MS$-R - K*A_MM
		// (2K+1)N_IFRM = (K+1)A_MS$-R - K*(A_MS$-W - N_FWB) - K*A_MM
		nfwb := q*w.AMSW - p*w.AMM
		if nfwb < 0 {
			nfwb = 0
		}
		if nfwb > q*w.Rm {
			nfwb = q * w.Rm
		}
		// Work in units of q^2 to keep everything integral: let
		// a = q*A_MS$-W - N_FWBraw (units q), r = q*A_MS$-R, m = q*A_MM.
		a := q*w.AMSW - nfwb
		r := q * w.AMSR
		m := q * w.AMM
		// (2K+1) in units of q is (2p+q)/q; credits stored in units of
		// (2p+q) so one application costs (2p+q) and values below are in
		// units of q^2 -> divide by q once to land in (2p+q)*... units.
		nwb := ((p+q)*a - p*r - p*m) / q
		nifrm := ((p+q)*r - p*a - p*m) / q
		if nwb > (2*p+q)*w.Wm {
			nwb = (2*p + q) * w.Wm
		}
		if nwb < 0 {
			nwb = 0
		}
		if nifrm > (2*p+q)*w.CleanHits {
			nifrm = (2*p + q) * w.CleanHits
		}
		if nifrm < 0 {
			nifrm = 0
		}
		// Rescale (2K+1)-unit credits into the (K+1)-unit counters used
		// by Take*: value * (K+1)/(2K+1).
		nwb = nwb * (p + q) / (2*p + q)
		nifrm = nifrm * (p + q) / (2*p + q)
		d.setCredits(nfwb, nwb, nifrm, 0, 0)

	default:
		d.setCredits(0, 0, 0, 0, 0)
	}
}
