package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeliveredBandwidthExamples(t *testing.T) {
	// Section III example: M1 = 102.4, M2 = 51.2.
	b := []float64{102.4, 51.2}
	if got := DeliveredBandwidth(b, []float64{1, 0}); got != 102.4 {
		t.Fatalf("all to M1: %v", got)
	}
	if got := DeliveredBandwidth(b, []float64{0.5, 0.5}); got != 102.4 {
		t.Fatalf("half-half is bottlenecked by M2: %v", got)
	}
	// optimal: 2/3 and 1/3 delivers the sum
	got := DeliveredBandwidth(b, []float64{2.0 / 3, 1.0 / 3})
	if math.Abs(got-153.6) > 1e-9 {
		t.Fatalf("optimal split: %v, want 153.6", got)
	}
}

func TestOptimalFractions(t *testing.T) {
	f := OptimalFractions([]float64{102.4, 38.4})
	if math.Abs(f[0]-102.4/140.8) > 1e-12 || math.Abs(f[1]-38.4/140.8) > 1e-12 {
		t.Fatalf("fractions = %v", f)
	}
	// paper: optimal main-memory CAS fraction is 0.27 for 102.4 + 38.4
	if math.Abs(f[1]-0.2727) > 0.001 {
		t.Fatalf("MM fraction = %v, want ~0.27", f[1])
	}
}

// Property (Equation 3): the optimal fractions maximize Equation 2, and the
// maximum equals sum(B_i).
func TestOptimalFractionsAreOptimal(t *testing.T) {
	f := func(b1, b2, b3 uint8) bool {
		b := []float64{float64(b1%100) + 1, float64(b2%100) + 1, float64(b3%100) + 1}
		opt := OptimalFractions(b)
		best := DeliveredBandwidth(b, opt)
		sum := b[0] + b[1] + b[2]
		if math.Abs(best-sum) > 1e-9 {
			return false
		}
		// a few perturbed splits must never beat the optimum
		for _, eps := range []float64{0.01, 0.1, 0.25} {
			p := []float64{opt[0] + eps, opt[1] - eps/2, opt[2] - eps/2}
			if p[1] <= 0 || p[2] <= 0 {
				continue
			}
			if DeliveredBandwidth(b, p) > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveredBandwidthEdge(t *testing.T) {
	if got := DeliveredBandwidth(nil, nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := DeliveredBandwidth([]float64{0}, []float64{1}); got != 0 {
		t.Fatalf("zero-bandwidth source with traffic = %v", got)
	}
	if got := DeliveredBandwidth([]float64{10, 20}, []float64{0, 0}); got != 0 {
		t.Fatalf("no traffic = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths must panic")
		}
	}()
	DeliveredBandwidth([]float64{1}, []float64{1, 0})
}

func TestMaxDeliveredBandwidth(t *testing.T) {
	b := []float64{102.4, 38.4}
	if got := MaxDeliveredBandwidth(b, 1); got != 140.8 {
		t.Fatalf("C=1: %v", got)
	}
	if got := MaxDeliveredBandwidth(b, 2); got != 70.4 {
		t.Fatalf("C=2: %v", got)
	}
	if got := MaxDeliveredBandwidth(b, 0.5); got != 140.8 {
		t.Fatalf("C<1 must clamp: %v", got)
	}
}

func TestApproxRatioPaperExample(t *testing.T) {
	// K = 102.4/38.4 = 8/3; the paper approximates it as 11/4.
	r := ApproxRatio(8.0/3.0, 4)
	if r.Num != 11 || r.Den != 4 {
		t.Fatalf("K approx = %d/%d, want 11/4", r.Num, r.Den)
	}
}

func TestApproxRatioExactValues(t *testing.T) {
	r := ApproxRatio(2.0, 4)
	if r.Float() != 2.0 {
		t.Fatalf("2.0 -> %d/%d", r.Num, r.Den)
	}
	r = ApproxRatio(1.5, 4)
	if r.Float() != 1.5 {
		t.Fatalf("1.5 -> %d/%d", r.Num, r.Den)
	}
}

// Property: the approximation error never exceeds 1/(2*maxDen), and the
// denominator respects the bound.
func TestApproxRatioBounds(t *testing.T) {
	f := func(x16 uint16, d8 uint8) bool {
		x := float64(x16)/1000 + 0.1
		maxDen := int64(d8%8) + 1
		pow2 := int64(1)
		for pow2*2 <= maxDen {
			pow2 *= 2
		}
		r := ApproxRatio(x, maxDen)
		if r.Den < 1 || r.Den > maxDen || r.Den&(r.Den-1) != 0 {
			return false
		}
		return math.Abs(r.Float()-x) <= 0.5/float64(pow2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApproxRatioMaxDenClamp(t *testing.T) {
	// A non-positive denominator bound clamps to 1: integer rounding only.
	for _, d := range []int64{0, -5} {
		r := ApproxRatio(8.0/3.0, d)
		if r.Num != 3 || r.Den != 1 {
			t.Fatalf("maxDen=%d: got %d/%d, want 3/1", d, r.Num, r.Den)
		}
	}
}

func TestApproxRatioRoundingTies(t *testing.T) {
	// Numerators round half-up: 2.5 becomes 3/1, not 2/1.
	if r := ApproxRatio(2.5, 1); r.Num != 3 || r.Den != 1 {
		t.Fatalf("half-up: got %d/%d, want 3/1", r.Num, r.Den)
	}
	// 1.25 with maxDen=2 has equal error at 1/1 (-0.25) and 3/2 (+0.25);
	// the strict < comparison keeps the first, cheaper denominator.
	if r := ApproxRatio(1.25, 2); r.Num != 1 || r.Den != 1 {
		t.Fatalf("tie: got %d/%d, want 1/1", r.Num, r.Den)
	}
	// Widening the bound to 4 makes 5/4 exact and must win the tie break.
	if r := ApproxRatio(1.25, 4); r.Num != 5 || r.Den != 4 {
		t.Fatalf("exact: got %d/%d, want 5/4", r.Num, r.Den)
	}
}

func TestDeliveredBandwidthZeroSourceAmongMany(t *testing.T) {
	// Any positive fraction routed at a dead source stalls the whole stream
	// (Equation 2's bottleneck max); rerouting it restores the live source.
	b := []float64{102.4, 0}
	if got := DeliveredBandwidth(b, []float64{0.73, 0.27}); got != 0 {
		t.Fatalf("dead source with traffic = %v, want 0", got)
	}
	if got := DeliveredBandwidth(b, []float64{1, 0}); got != 102.4 {
		t.Fatalf("all to the live source = %v, want 102.4", got)
	}
}
