package core

import (
	"testing"

	"dap/internal/sim"
)

func TestThreadAwareIFRMPrioritizesInsensitive(t *testing.T) {
	eng := sim.New()
	wc := &WindowCounts{}
	cfg := DefaultConfig(SectoredArch, 102.4, 38.4)
	cfg.ThreadAware = true
	cfg.LatencySensitive = []bool{true, false} // core 0 sensitive, core 1 not
	d := NewDAP(cfg, eng, wc)
	// grant IFRM credits
	wc.AMSR, wc.AMSW = 50, 10
	wc.AMM, wc.Rm, wc.Wm, wc.CleanHits = 4, 2, 3, 30
	eng.RunUntil(eng.Now() + 64)

	// the insensitive core drains credits down through the watermark
	insensitiveGrants := 0
	for d.TakeIFRM(1) {
		insensitiveGrants++
	}
	if insensitiveGrants == 0 {
		t.Fatal("insensitive core must receive IFRM grants")
	}
	// after full drain the sensitive core gets nothing either
	if d.TakeIFRM(0) {
		t.Fatal("no credits remain")
	}

	// refill and check the sensitive core stops at the watermark
	wc.AMSR, wc.AMSW = 50, 10
	wc.AMM, wc.Rm, wc.Wm, wc.CleanHits = 4, 2, 3, 30
	eng.RunUntil(eng.Now() + 64)
	sensitiveGrants := 0
	for d.TakeIFRM(0) {
		sensitiveGrants++
	}
	if sensitiveGrants == 0 {
		t.Fatal("sensitive core must get some IFRM above the watermark")
	}
	if sensitiveGrants >= insensitiveGrants {
		t.Fatalf("sensitive grants (%d) must stop at the watermark, below insensitive (%d)",
			sensitiveGrants, insensitiveGrants)
	}
	// the remaining credits below the watermark are still available to the
	// insensitive core
	if !d.TakeIFRM(1) {
		t.Fatal("insensitive core must still drain below the watermark")
	}
}

func TestThreadAwareUnattributedUnaffected(t *testing.T) {
	eng := sim.New()
	wc := &WindowCounts{}
	cfg := DefaultConfig(SectoredArch, 102.4, 38.4)
	cfg.ThreadAware = true
	cfg.LatencySensitive = []bool{true}
	d := NewDAP(cfg, eng, wc)
	wc.AMSR, wc.AMSW = 50, 10
	wc.AMM, wc.Rm, wc.Wm, wc.CleanHits = 4, 2, 3, 30
	eng.RunUntil(eng.Now() + 64)
	// core -1 (maintenance/unattributed) is treated as insensitive
	if !d.TakeIFRM(-1) {
		t.Fatal("unattributed IFRM must be grantable")
	}
}

func TestEWMALearningSmoothsBursts(t *testing.T) {
	eng := sim.New()
	wc := &WindowCounts{}
	cfg := DefaultConfig(SectoredArch, 102.4, 38.4)
	cfg.EWMALearning = true
	d := NewDAP(cfg, eng, wc)

	// one burst window followed by a quiet window: raw learning would grant
	// nothing after the quiet window; the EWMA remembers half the burst.
	wc.AMSR, wc.AMSW = 60, 20
	wc.AMM, wc.Rm = 2, 40
	eng.RunUntil(eng.Now() + 64) // smoothed ~ half the burst
	eng.RunUntil(eng.Now() + 64) // quiet window; smoothed ~ quarter
	if !d.TakeFWB() {
		t.Fatal("EWMA learning must retain credits across a quiet window")
	}
}

func TestEWMADisabledForgetsImmediately(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	wc.AMSR, wc.AMSW = 60, 20
	wc.AMM, wc.Rm = 2, 40
	fire(eng)
	fire(eng) // quiet window resets everything
	if d.TakeFWB() {
		t.Fatal("raw window learning must reset after a quiet window")
	}
}
