package core

import "dap/internal/obs"

// RegisterMetrics registers the DAP's time-series probes on a sampler:
// per-technique credit levels (`dap.credit.*`, raw hardware units — fwb and
// sfrm in units of Den, wb and ifrm in units of Num+Den), per-window
// technique activations (`dap.dec.*`), and partitioned-window counts. All
// probes are read-only; sampling them never perturbs the partitioner.
func (d *DAP) RegisterMetrics(s *obs.Sampler) {
	s.Gauge("dap.credit.fwb", func() float64 { return float64(d.fwb) })
	s.Gauge("dap.credit.wb", func() float64 { return float64(d.wb) })
	s.Gauge("dap.credit.ifrm", func() float64 { return float64(d.ifrm) })
	s.Gauge("dap.credit.sfrm", func() float64 { return float64(d.sfrm) })
	s.Gauge("dap.credit.wt", func() float64 { return float64(d.wt) })

	s.Counter("dap.dec.fwb", func() uint64 { return d.dec.FWB })
	s.Counter("dap.dec.wb", func() uint64 { return d.dec.WB })
	s.Counter("dap.dec.ifrm", func() uint64 { return d.dec.IFRM })
	s.Counter("dap.dec.sfrm", func() uint64 { return d.dec.SFRM })
	s.Counter("dap.windows", func() uint64 { return d.Windows })
	s.Counter("dap.partitioned", func() uint64 { return d.Partitioned })
}
