package core

import (
	"dap/internal/mem"
	"dap/internal/obs"
)

// DecisionRecordVersion is the schema version stamped on every record, so
// exported decision logs stay interpretable as fields are added.
const DecisionRecordVersion = 1

// DecisionRecord is one window of partitioner introspection: exactly what
// the Figure 3 solver saw at a window rollover, what it chose, and a
// counterfactual audit of that choice against the Section III bandwidth
// model. The audit reprices the window's demand under the solved
// redirections as per-source access fractions, evaluates Equation 2 for
// those fractions, and compares against the Equation 3 bound (the
// proportional split, which delivers the sum of the source bandwidths);
// Gap is the fraction of that bound the chosen split leaves on the table.
//
// A window whose demand does not saturate the cache solves to zero credits
// by design; its record then audits the raw demand split — the gap of the
// traffic DAP chose not to touch — which is what makes the series
// comparable across partitioned and unpartitioned windows.
type DecisionRecord struct {
	// Version is DecisionRecordVersion at capture time.
	Version int
	// Cycle is the engine cycle the window closed at; Window is the
	// 1-based window ordinal (DAP.Windows after the rollover).
	Cycle  mem.Cycle
	Window uint64
	// Arch is the solver variant that produced the record.
	Arch Arch

	// Counts is the demand profile the solver consumed: the controller's
	// window counters plus queue backlog, after EWMA smoothing when that
	// learning variant is on.
	Counts WindowCounts
	// K is the hardware rational approximation of B_MS$/B_MM in use.
	K Ratio

	// Solved credit refills in applications (raw counters normalized by
	// their hardware units: fwb/sfrm by Den, wb/ifrm by Num+Den), after
	// the saturating clamp — i.e. what the controllers can actually drain.
	FWB, WB, IFRM, SFRM, WT int64
	// Partitioned reports whether any credit was granted this window.
	Partitioned bool

	// Fractions is the per-source access split implied by applying every
	// granted credit to this window's demand, ordered like SourceNames
	// (cache read channels[, cache write channels], main memory). Optimal
	// is the Equation 3/4 proportional split of the same sources.
	Fractions []float64
	Optimal   []float64
	// DeliveredGBps is Equation 2 evaluated at Fractions over the derated
	// source bandwidths; OptimalGBps is the Equation 3 bound (their sum).
	DeliveredGBps float64
	OptimalGBps   float64
	// Gap = 1 - DeliveredGBps/OptimalGBps, clamped to [0, 1]; 0 for an
	// empty window (no demand loses no bandwidth).
	Gap float64
}

// PolicyEvent is the smaller introspection record captured at the baseline
// policies' own adjustment points — BATMAN's epoch evaluation and SBD's
// periodic dirty-list decay — so baseline steering behaviour lands in the
// same artifact stream DAP decisions do.
type PolicyEvent struct {
	Version int
	Cycle   mem.Cycle
	// Policy is "batman" or "sbd".
	Policy string

	// BATMAN: epoch ordinal and the disabled-set state after it.
	Epoch        uint64
	DisabledSets int

	// SBD: dirty-list occupancy and cumulative steering counters at decay.
	DirtyPages                       int
	SteeredMM, Promotions, Cleanings uint64
}

// DecisionRecorder collects per-window DecisionRecords (a bounded ring,
// oldest evicted) plus baseline PolicyEvents. Like the obs.Tracer it is a
// strict observer with a nil-safe API: a nil *DecisionRecorder is a valid
// disabled recorder, every method a no-op, so the DAP and the controllers
// hook it unconditionally. Recording reads already-computed solver state
// and never feeds anything back, so a run with recording on yields a
// bit-identical stats.Run (TestDecisionRecordingIsBitIdentical).
type DecisionRecorder struct {
	max  int
	recs []DecisionRecord
	head int
	n    int

	events        []PolicyEvent
	eventsMax     int
	eventsDropped uint64

	evicted  uint64
	sources  []string
	onRecord func(DecisionRecord)
}

// NewDecisionRecorder builds a recorder retaining at most capacity decision
// records (<= 0 selects 65536) and a bounded tail of policy events.
func NewDecisionRecorder(capacity int) *DecisionRecorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &DecisionRecorder{max: capacity, eventsMax: 4096}
}

// OnRecord installs a callback invoked for every recorded decision (the
// telemetry publication hook). Install before the run starts.
func (r *DecisionRecorder) OnRecord(fn func(DecisionRecord)) {
	if r == nil {
		return
	}
	r.onRecord = fn
}

// setSources names the bandwidth sources the records' fraction vectors are
// ordered by; the DAP calls it when the recorder is attached.
func (r *DecisionRecorder) setSources(names []string) {
	if r == nil {
		return
	}
	r.sources = names
}

// SourceNames returns the per-source labels for Fractions/Optimal entries.
func (r *DecisionRecorder) SourceNames() []string {
	if r == nil {
		return nil
	}
	return r.sources
}

// Add records one decision (ring semantics: oldest evicted when full).
func (r *DecisionRecorder) Add(rec DecisionRecord) {
	if r == nil {
		return
	}
	if len(r.recs) < r.max {
		r.recs = append(r.recs, rec)
		r.n++
	} else {
		r.recs[r.head] = rec
		r.head = (r.head + 1) % r.max
		r.evicted++
	}
	if r.onRecord != nil {
		r.onRecord(rec)
	}
}

// AddPolicyEvent records one baseline-policy event (append until the cap,
// then count drops — events are orders of magnitude rarer than windows).
func (r *DecisionRecorder) AddPolicyEvent(ev PolicyEvent) {
	if r == nil {
		return
	}
	if len(r.events) >= r.eventsMax {
		r.eventsDropped++
		return
	}
	ev.Version = DecisionRecordVersion
	r.events = append(r.events, ev)
}

// Records returns the retained decision records, oldest first.
func (r *DecisionRecorder) Records() []DecisionRecord {
	if r == nil {
		return nil
	}
	out := make([]DecisionRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.recs[(r.head+i)%r.max])
	}
	return out
}

// Last returns the most recent decision record, or nil before the first.
func (r *DecisionRecorder) Last() *DecisionRecord {
	if r == nil || r.n == 0 {
		return nil
	}
	return &r.recs[(r.head+r.n-1)%r.max]
}

// Events returns the retained policy events in capture order.
func (r *DecisionRecorder) Events() []PolicyEvent {
	if r == nil {
		return nil
	}
	return r.events
}

// Evicted reports how many decision records the ring evicted; Dropped how
// many policy events fell past the event cap.
func (r *DecisionRecorder) Evicted() uint64 {
	if r == nil {
		return 0
	}
	return r.evicted
}

// Dropped returns the count of policy events discarded at the event cap.
func (r *DecisionRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.eventsDropped
}

// SetRecorder attaches a decision recorder to the partitioner: every window
// rollover of any solver variant then captures a DecisionRecord. Passing
// nil detaches.
func (d *DAP) SetRecorder(r *DecisionRecorder) {
	d.rec = r
	r.setSources(d.sourceNames())
}

// Recorder returns the attached decision recorder (nil when detached).
func (d *DAP) Recorder() *DecisionRecorder { return d.rec }

// SourceBandwidths returns the derated (Efficiency-scaled) per-source
// bandwidths in GB/s the decision audit evaluates Equation 2 over, ordered
// like the records' fraction vectors.
func (d *DAP) SourceBandwidths() []float64 {
	bms := d.cfg.BMSGBps * d.cfg.Efficiency
	bmm := d.cfg.BMMGBps * d.cfg.Efficiency
	if d.cfg.Arch == EDRAMArch {
		return []float64{bms, bms, bmm}
	}
	return []float64{bms, bmm}
}

func (d *DAP) sourceNames() []string {
	if d.cfg.Arch == EDRAMArch {
		return []string{"ms.rd", "ms.wr", "mm"}
	}
	return []string{"ms", "mm"}
}

// recordDecision captures the window just solved: w is the demand profile
// the solver consumed, and the raw* fields hold the clamped refills
// setCredits just installed, before Disable folding — the recorder reports
// what the solver granted, not what the controllers can drain. Called only
// when a recorder is attached.
func (d *DAP) recordDecision(w *WindowCounts) {
	den, unit := d.k.Den, d.k.Num+d.k.Den
	rec := DecisionRecord{
		Version: DecisionRecordVersion,
		Cycle:   d.eng.Now(),
		Window:  d.Windows,
		Arch:    d.cfg.Arch,
		Counts:  *w,
		K:       d.k,
		FWB:     d.rawFWB / den,
		WB:      d.rawWB / unit,
		IFRM:    d.rawIFRM / unit,
		SFRM:    d.rawSFRM,
		WT:      d.rawWT,
	}
	// Mirror setCredits' Partitioned++ criterion on the raw counters: a
	// grant smaller than one application unit still partitions the window.
	rec.Partitioned = d.rawFWB > 0 || d.rawWB > 0 || d.rawIFRM > 0 || d.rawSFRM > 0 || d.rawWT > 0

	bw := d.SourceBandwidths()
	rec.Optimal = OptimalFractions(bw)
	rec.OptimalGBps = MaxDeliveredBandwidth(bw, 1)

	// Reprice the window's demand under the granted redirections. Each FWB
	// drops a cache fill outright; each WB and IFRM moves one cache access
	// to main memory; SFRM and WT add main-memory accesses without
	// relieving the cache (the metadata read and the cache write remain).
	var acc []int64
	if d.cfg.Arch == EDRAMArch {
		acc = []int64{
			w.AMSR - rec.IFRM,
			w.AMSW - rec.FWB - rec.WB,
			w.AMM + rec.WB + rec.IFRM + rec.SFRM + rec.WT,
		}
	} else {
		acc = []int64{
			w.AMS() - rec.FWB - rec.WB - rec.IFRM,
			w.AMM + rec.WB + rec.IFRM + rec.SFRM + rec.WT,
		}
	}
	var total int64
	for i, a := range acc {
		if a < 0 {
			acc[i] = 0
		}
		total += acc[i]
	}
	rec.Fractions = make([]float64, len(acc))
	if total > 0 {
		for i, a := range acc {
			rec.Fractions[i] = float64(a) / float64(total)
		}
		rec.DeliveredGBps = DeliveredBandwidth(bw, rec.Fractions)
		if rec.OptimalGBps > 0 {
			rec.Gap = clampF(1-rec.DeliveredGBps/rec.OptimalGBps, 0, 1)
		}
	}
	d.rec.Add(rec)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CounterTracks renders the recorded decision series as Perfetto counter
// tracks — the optimality gap, the Equation 2 delivered bandwidth, and one
// track per source access fraction — mergeable into the request-lifecycle
// Chrome trace via obs.Tracer.WriteChromeTraceWith, so per-window solver
// state lines up under the traced misses it caused.
func (r *DecisionRecorder) CounterTracks() []obs.CounterTrack {
	if r == nil || r.n == 0 {
		return nil
	}
	recs := r.Records()
	tracks := []obs.CounterTrack{
		{Name: "dap.gap"},
		{Name: "dap.delivered_gbps"},
	}
	for _, s := range r.sources {
		tracks = append(tracks, obs.CounterTrack{Name: "dap.frac." + s})
	}
	for i := range tracks {
		tracks[i].Points = make([]obs.CounterPoint, 0, len(recs))
	}
	for _, rec := range recs {
		tracks[0].Points = append(tracks[0].Points, obs.CounterPoint{Cycle: rec.Cycle, Value: rec.Gap})
		tracks[1].Points = append(tracks[1].Points, obs.CounterPoint{Cycle: rec.Cycle, Value: rec.DeliveredGBps})
		for i, f := range rec.Fractions {
			if 2+i < len(tracks) {
				tracks[2+i].Points = append(tracks[2+i].Points, obs.CounterPoint{Cycle: rec.Cycle, Value: f})
			}
		}
	}
	return tracks
}
