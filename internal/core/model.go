// Package core implements the paper's primary contribution: the bandwidth
// equation (Section III) and DAP, the Dynamic Access Partitioning algorithm
// (Section IV), in its three architecture-specific variants — sectored DRAM
// cache, Alloy cache, and sectored eDRAM cache with independent read and
// write channels.
package core

// DeliveredBandwidth evaluates Equation 2: the bandwidth delivered by n
// parallel sources with bandwidths b[i] when source i serves fraction f[i]
// of the accesses. Units are caller-defined (GB/s in the paper). Fractions
// of zero contribute no constraint; a positive fraction on a zero-bandwidth
// source yields zero.
func DeliveredBandwidth(b, f []float64) float64 {
	if len(b) != len(f) {
		panic("core: bandwidths and fractions must have equal length")
	}
	min := -1.0
	for i := range b {
		if f[i] <= 0 {
			continue
		}
		if b[i] <= 0 {
			return 0
		}
		v := b[i] / f[i]
		if min < 0 || v < min {
			min = v
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// OptimalFractions evaluates Equation 3/4: accesses should be distributed in
// proportion to source bandwidths, making the delivered bandwidth the sum of
// all source bandwidths.
func OptimalFractions(b []float64) []float64 {
	sum := 0.0
	for _, v := range b {
		sum += v
	}
	out := make([]float64, len(b))
	if sum == 0 {
		return out
	}
	for i, v := range b {
		out[i] = v / sum
	}
	return out
}

// MaxDeliveredBandwidth is the right-hand side of Equation 3 divided by the
// access-volume inflation factor C (>= 1): sum(B_i)/C.
func MaxDeliveredBandwidth(b []float64, c float64) float64 {
	if c < 1 {
		c = 1
	}
	sum := 0.0
	for _, v := range b {
		sum += v
	}
	return sum / c
}

// Ratio is a small positive rational used for the bandwidth ratio
// K = B_MS$ / B_MM. The paper approximates K with a hardware-friendly
// denominator (8/3 is approximated as 11/4) so that multiplications by K and
// (K+1) reduce to shifts and adds.
type Ratio struct{ Num, Den int64 }

// ApproxRatio returns the best rational approximation of x whose denominator
// is a power of two at most maxDen (paper default 4). Power-of-two
// denominators keep the multiply-by-(K+1) datapath to shifts and adds, which
// is why the paper approximates 8/3 as 11/4 rather than using it exactly.
func ApproxRatio(x float64, maxDen int64) Ratio {
	if maxDen < 1 {
		maxDen = 1
	}
	best := Ratio{Num: int64(x + 0.5), Den: 1}
	bestErr := abs(x - float64(best.Num))
	for d := int64(1); d <= maxDen; d *= 2 {
		n := int64(x*float64(d) + 0.5)
		if err := abs(x - float64(n)/float64(d)); err < bestErr {
			best, bestErr = Ratio{Num: n, Den: d}, err
		}
	}
	return best
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Float returns the ratio's value.
func (r Ratio) Float() float64 { return float64(r.Num) / float64(r.Den) }
