package core

import (
	"testing"

	"dap/internal/mem"
	"dap/internal/sim"
)

// newTestDAP builds a DAP with the paper's default bandwidth point
// (102.4 GB/s cache, 38.4 GB/s memory, W=64, E=0.75) on a fresh engine.
func newTestDAP(arch Arch) (*DAP, *sim.Engine, *WindowCounts) {
	eng := sim.New()
	wc := &WindowCounts{}
	cfg := DefaultConfig(arch, 102.4, 38.4)
	d := NewDAP(cfg, eng, wc)
	return d, eng, wc
}

// fire advances the engine across one window boundary.
func fire(eng *sim.Engine) { eng.RunUntil(eng.Now() + 64) }

func TestDAPKApproximation(t *testing.T) {
	d, _, _ := newTestDAP(SectoredArch)
	if k := d.K(); k.Num != 11 || k.Den != 4 {
		t.Fatalf("K = %d/%d, want 11/4", k.Num, k.Den)
	}
}

func TestNopNeverPartitions(t *testing.T) {
	var n Nop
	if n.TakeFWB() || n.TakeWB() || n.TakeIFRM(0) || n.TakeSFRM() || n.TakeWT() {
		t.Fatal("Nop must always refuse")
	}
	if n.Decisions().Total() != 0 {
		t.Fatal("Nop has no decisions")
	}
}

func TestNoPartitioningWhenDemandLow(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	// B_MS$ * W * E = 0.4*64*0.75 = 19.2 accesses; offer less.
	wc.AMSR, wc.AMM, wc.Rm = 10, 5, 5
	fire(eng)
	if d.TakeFWB() || d.TakeWB() || d.TakeIFRM(0) || d.TakeSFRM() {
		t.Fatal("no partitioning should be granted when A_MS$ <= B_MS$.W")
	}
	if d.Partitioned != 0 {
		t.Fatalf("Partitioned = %d, want 0", d.Partitioned)
	}
}

func TestNoPartitioningWhenMainMemoryBottleneck(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	// A_MS$ high but A_MM so high that N_FWB = A_MS$ - K*A_MM < 0.
	wc.AMSR, wc.AMSW = 20, 10
	wc.AMM = 20 // K*A_MM = 55 > 30
	wc.Rm = 10
	fire(eng)
	if d.TakeFWB() || d.TakeWB() || d.TakeIFRM(0) {
		t.Fatal("main-memory bottleneck must exit partitioning")
	}
}

func TestFWBOnlyWindow(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	// Demand 30 accesses, A_MM = 8: N_FWB = 30 - 2.75*8 = 8; plenty of
	// fills available (Rm = 12), so WB/IFRM stay zero.
	wc.AMSR, wc.AMSW = 18, 12
	wc.AMM, wc.Rm, wc.Wm = 8, 12, 6
	fire(eng)
	grants := 0
	for d.TakeFWB() {
		grants++
	}
	if grants < 7 || grants > 8 {
		t.Fatalf("FWB grants = %d, want ~8", grants)
	}
	if d.TakeWB() {
		t.Fatal("WB must not be granted when FWB suffices")
	}
	if d.TakeIFRM(0) {
		t.Fatal("IFRM must not be granted when FWB suffices")
	}
}

func TestFWBCappedByExcessThenWB(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	// N_FWB raw = A_MS$ - K*A_MM = 40 - 11 = 29, but only Rm = 4 fills
	// exist, so WB picks up the remainder:
	// (K+1) N_WB = 40 - 11 - 4 = 25 -> N_WB = 25/3.75 = 6.67.
	wc.AMSR, wc.AMSW = 25, 15
	wc.AMM, wc.Rm, wc.Wm = 4, 4, 20
	fire(eng)
	f := 0
	for d.TakeFWB() {
		f++
	}
	if f != 4 {
		t.Fatalf("FWB grants = %d, want Rm = 4", f)
	}
	w := 0
	for d.TakeWB() {
		w++
	}
	if w < 5 || w > 7 {
		t.Fatalf("WB grants = %d, want ~6-7", w)
	}
}

func TestWBCappedThenIFRM(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	// Very few fills and writes force IFRM:
	// raw = 60 - 2.75*4 = 49 > Rm=2 -> N_WB: (K+1)N_WB = 60-11-2 = 47,
	// cap at Wm=3 -> N_IFRM: (K+1)N_IFRM = 60 - 2.75*(4+3) - 2 - 3 = 35.75
	// -> N_IFRM ~ 9.5, capped by clean hits 30.
	wc.AMSR, wc.AMSW = 50, 10
	wc.AMM, wc.Rm, wc.Wm, wc.CleanHits = 4, 2, 3, 30
	fire(eng)
	f := 0
	for d.TakeFWB() {
		f++
	}
	if f != 2 {
		t.Fatalf("FWB grants = %d, want 2", f)
	}
	w := 0
	for d.TakeWB() {
		w++
	}
	if w != 3 {
		t.Fatalf("WB grants = %d, want Wm = 3", w)
	}
	i := 0
	for d.TakeIFRM(0) {
		i++
	}
	if i < 8 || i > 10 {
		t.Fatalf("IFRM grants = %d, want ~9", i)
	}
}

func TestSFRMUsesSpareMemoryBandwidth(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	// B_MM*W*E = 0.15*64*0.75 = 7.2 -> bmmWin = 7. A_MM = 1 leaves spare.
	wc.AMSR, wc.AMSW = 25, 5
	wc.AMM, wc.Rm, wc.Wm = 1, 25, 2
	fire(eng)
	s := 0
	for d.TakeSFRM() {
		s++
	}
	// spare = 7 - 1 = 6 (no WB/IFRM), reserve 0.8 -> 4.8 -> 4
	if s < 3 || s > 5 {
		t.Fatalf("SFRM grants = %d, want ~4", s)
	}
}

func TestCreditsExpireEachWindow(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	wc.AMSR, wc.AMSW, wc.AMM, wc.Rm = 20, 10, 2, 20
	fire(eng)
	if !d.TakeFWB() {
		t.Fatal("first window should grant FWB")
	}
	// quiet window: credits must reset to zero
	fire(eng)
	if d.TakeFWB() {
		t.Fatal("credits must be recomputed (zero) after a quiet window")
	}
}

func TestWindowCountsResetEachWindow(t *testing.T) {
	_, eng, wc := newTestDAP(SectoredArch)
	wc.AMSR = 42
	fire(eng)
	if wc.AMSR != 0 {
		t.Fatalf("counts must reset at the window boundary, AMSR = %d", wc.AMSR)
	}
}

func TestDisableFlags(t *testing.T) {
	eng := sim.New()
	wc := &WindowCounts{}
	cfg := DefaultConfig(SectoredArch, 102.4, 38.4)
	cfg.Disable.FWB = true
	cfg.Disable.SFRM = true
	d := NewDAP(cfg, eng, wc)
	wc.AMSR, wc.AMSW, wc.AMM, wc.Rm, wc.Wm = 25, 10, 2, 20, 10
	fire(eng)
	if d.TakeFWB() {
		t.Fatal("disabled FWB must refuse")
	}
	if d.TakeSFRM() {
		t.Fatal("disabled SFRM must refuse")
	}
}

func TestDecisionAccounting(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	wc.AMSR, wc.AMSW, wc.AMM, wc.Rm = 20, 12, 2, 20
	fire(eng)
	n := 0
	for d.TakeFWB() {
		n++
	}
	dec := d.Decisions()
	if dec.FWB != uint64(n) || dec.Total() != uint64(n) {
		t.Fatalf("decisions = %+v, want FWB = %d", dec, n)
	}
}

func TestStopHaltsWindows(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	fire(eng)
	w := d.Windows
	d.Stop()
	wc.AMSR = 100
	eng.RunUntil(eng.Now() + 1000)
	if d.Windows != w+1 && d.Windows != w {
		// one more window may fire before the stop flag is seen
		t.Fatalf("windows kept firing after Stop: %d -> %d", w, d.Windows)
	}
}

func TestEDRAMReadShortageGrantsIFRMOnly(t *testing.T) {
	d, eng, wc := newTestDAP(EDRAMArch)
	// read channels overloaded, write channels fine
	wc.AMSR, wc.AMSW = 30, 5
	wc.AMM, wc.Rm, wc.Wm, wc.CleanHits = 2, 3, 5, 40
	fire(eng)
	if d.TakeFWB() || d.TakeWB() {
		t.Fatal("read shortage must not grant FWB/WB")
	}
	i := 0
	for d.TakeIFRM(0) {
		i++
	}
	// (K+1)N = 30 - 2.75*2 = 24.5 -> N ~ 6.5
	if i < 5 || i > 8 {
		t.Fatalf("IFRM grants = %d, want ~6", i)
	}
}

func TestEDRAMWriteShortageGrantsFWBThenWB(t *testing.T) {
	d, eng, wc := newTestDAP(EDRAMArch)
	wc.AMSR, wc.AMSW = 5, 30
	wc.AMM, wc.Rm, wc.Wm = 2, 4, 25
	fire(eng)
	if d.TakeIFRM(0) {
		t.Fatal("write shortage must not grant IFRM")
	}
	f := 0
	for d.TakeFWB() {
		f++
	}
	if f != 4 {
		t.Fatalf("FWB grants = %d, want Rm = 4", f)
	}
	w := 0
	for d.TakeWB() {
		w++
	}
	// (K+1)N_WB = (30 - 4) - 5.5 = 20.5 -> N ~ 5.4
	if w < 4 || w > 7 {
		t.Fatalf("WB grants = %d, want ~5", w)
	}
}

func TestEDRAMDualShortageSolvesSimultaneously(t *testing.T) {
	d, eng, wc := newTestDAP(EDRAMArch)
	wc.AMSR, wc.AMSW = 30, 30
	wc.AMM, wc.Rm, wc.Wm, wc.CleanHits = 2, 4, 25, 40
	fire(eng)
	f, w, i := 0, 0, 0
	for d.TakeFWB() {
		f++
	}
	for d.TakeWB() {
		w++
	}
	for d.TakeIFRM(0) {
		i++
	}
	if f != 4 {
		t.Fatalf("FWB grants = %d, want 4", f)
	}
	if w == 0 || i == 0 {
		t.Fatalf("dual shortage must grant both WB (%d) and IFRM (%d)", w, i)
	}
}

func TestAlloyGrantsIFRMAndWT(t *testing.T) {
	eng := sim.New()
	wc := &WindowCounts{}
	cfg := DefaultConfig(AlloyArch, 102.4*2/3, 38.4)
	d := NewDAP(cfg, eng, wc)
	wc.AMSR, wc.AMSW = 20, 5
	wc.AMM, wc.Wm, wc.CleanHits = 1, 10, 2
	eng.RunUntil(eng.Now() + 64)
	i := 0
	for d.TakeIFRM(0) {
		i++
	}
	if i == 0 {
		t.Fatal("alloy DAP must grant IFRM under cache pressure")
	}
	wt := 0
	for d.TakeWT() {
		wt++
	}
	if wt == 0 {
		t.Fatal("alloy DAP must fund write-through from spare memory bandwidth")
	}
	if d.TakeFWB() || d.TakeWB() {
		t.Fatal("alloy DAP grants neither FWB nor WB credits directly")
	}
}

func TestCreditSaturation(t *testing.T) {
	eng := sim.New()
	wc := &WindowCounts{}
	cfg := DefaultConfig(SectoredArch, 102.4, 38.4)
	cfg.CreditCap = 4
	d := NewDAP(cfg, eng, wc)
	wc.AMSR, wc.AMSW, wc.AMM, wc.Rm = 200, 100, 2, 300
	eng.RunUntil(eng.Now() + 64)
	n := 0
	for d.TakeFWB() {
		n++
	}
	if n > 4 {
		t.Fatalf("FWB grants = %d, want <= CreditCap 4", n)
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	eng := sim.New()
	d := NewDAP(Config{Arch: SectoredArch, BMSGBps: 102.4, BMMGBps: 38.4}, eng, &WindowCounts{})
	if d.cfg.Window != 64 || d.cfg.Efficiency != 0.75 || d.cfg.CreditCap != 255 ||
		d.cfg.MaxKDen != 4 || d.cfg.SFRMReserve != 0.8 {
		t.Fatalf("defaults not applied: %+v", d.cfg)
	}
	_ = mem.Cycle(0)
}

func TestSectoredSolverGrantsNoWT(t *testing.T) {
	d, eng, wc := newTestDAP(SectoredArch)
	wc.AMSR, wc.AMSW, wc.AMM, wc.Rm, wc.Wm = 40, 10, 2, 30, 10
	fire(eng)
	if d.TakeWT() {
		t.Fatal("the sectored solver never grants write-through credits")
	}
}

func TestEDRAMNoSFRM(t *testing.T) {
	d, eng, wc := newTestDAP(EDRAMArch)
	wc.AMSR, wc.AMSW, wc.AMM, wc.Rm, wc.Wm, wc.CleanHits = 30, 30, 1, 10, 10, 10
	fire(eng)
	if d.TakeSFRM() {
		t.Fatal("eDRAM metadata is on-die: SFRM must never be granted")
	}
}

func TestBacklogRaisesDemand(t *testing.T) {
	eng := sim.New()
	wc := &WindowCounts{}
	cfg := DefaultConfig(SectoredArch, 102.4, 38.4)
	backlog := int64(0)
	cfg.Backlog = func() (int64, int64, int64) { return backlog, 0, 0 }
	d := NewDAP(cfg, eng, wc)
	// arrivals alone are below the threshold: no partitioning
	wc.AMSR, wc.Rm = 15, 15
	eng.RunUntil(eng.Now() + 64)
	if d.TakeFWB() {
		t.Fatal("below-threshold arrivals must not partition")
	}
	// the same arrivals plus queued backlog exceed it
	backlog = 30
	wc.AMSR, wc.Rm = 15, 15
	eng.RunUntil(eng.Now() + 64)
	if !d.TakeFWB() {
		t.Fatal("backlog must count toward demand")
	}
}
