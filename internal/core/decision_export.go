package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonDecision is the JSONL wire form of a DecisionRecord: a type tag so
// decision and policy lines share one stream, and per-source fields labeled
// by name rather than position.
type jsonDecision struct {
	Type        string             `json:"type"`
	Version     int                `json:"version"`
	Cycle       uint64             `json:"cycle"`
	Window      uint64             `json:"window"`
	Arch        int                `json:"arch"`
	Counts      WindowCounts       `json:"counts"`
	KNum        int64              `json:"k_num"`
	KDen        int64              `json:"k_den"`
	FWB         int64              `json:"fwb"`
	WB          int64              `json:"wb"`
	IFRM        int64              `json:"ifrm"`
	SFRM        int64              `json:"sfrm"`
	WT          int64              `json:"wt"`
	Partitioned bool               `json:"partitioned"`
	Fractions   map[string]float64 `json:"fractions"`
	Optimal     map[string]float64 `json:"optimal"`
	Delivered   float64            `json:"delivered_gbps"`
	OptimalBW   float64            `json:"optimal_gbps"`
	Gap         float64            `json:"gap"`
}

type jsonPolicyEvent struct {
	Type         string `json:"type"`
	Version      int    `json:"version"`
	Cycle        uint64 `json:"cycle"`
	Policy       string `json:"policy"`
	Epoch        uint64 `json:"epoch,omitempty"`
	DisabledSets int    `json:"disabled_sets,omitempty"`
	DirtyPages   int    `json:"dirty_pages,omitempty"`
	SteeredMM    uint64 `json:"steered_mm,omitempty"`
	Promotions   uint64 `json:"promotions,omitempty"`
	Cleanings    uint64 `json:"cleanings,omitempty"`
}

func (r *DecisionRecorder) byName(vals []float64) map[string]float64 {
	m := make(map[string]float64, len(vals))
	for i, v := range vals {
		name := strconv.Itoa(i)
		if i < len(r.sources) {
			name = r.sources[i]
		}
		m[name] = v
	}
	return m
}

// WriteJSONL streams every retained decision record (type "decision") and
// policy event (type "policy") as one JSON object per line, in time order
// within each kind.
func (r *DecisionRecorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, rec := range r.Records() {
		if err := enc.Encode(jsonDecision{
			Type: "decision", Version: rec.Version,
			Cycle: uint64(rec.Cycle), Window: rec.Window, Arch: int(rec.Arch),
			Counts: rec.Counts, KNum: rec.K.Num, KDen: rec.K.Den,
			FWB: rec.FWB, WB: rec.WB, IFRM: rec.IFRM, SFRM: rec.SFRM, WT: rec.WT,
			Partitioned: rec.Partitioned,
			Fractions:   r.byName(rec.Fractions), Optimal: r.byName(rec.Optimal),
			Delivered: rec.DeliveredGBps, OptimalBW: rec.OptimalGBps, Gap: rec.Gap,
		}); err != nil {
			return err
		}
	}
	for _, ev := range r.events {
		if err := enc.Encode(jsonPolicyEvent{
			Type: "policy", Version: ev.Version, Cycle: uint64(ev.Cycle),
			Policy: ev.Policy, Epoch: ev.Epoch, DisabledSets: ev.DisabledSets,
			DirtyPages: ev.DirtyPages, SteeredMM: ev.SteeredMM,
			Promotions: ev.Promotions, Cleanings: ev.Cleanings,
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the decision table (one row per window) and, when policy
// events were captured, a second "# policy events" table after a blank
// line. Column order matches the JSONL field order.
func (r *DecisionRecorder) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	var sb strings.Builder
	sb.WriteString("cycle,window,arch,amsr,amsw,amm,rm,wm,clean_hits,k_num,k_den,fwb,wb,ifrm,sfrm,wt,partitioned")
	for _, s := range r.sources {
		fmt.Fprintf(&sb, ",frac_%s", s)
	}
	for _, s := range r.sources {
		fmt.Fprintf(&sb, ",opt_%s", s)
	}
	sb.WriteString(",delivered_gbps,optimal_gbps,gap\n")
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	for _, rec := range r.Records() {
		sb.Reset()
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%t",
			uint64(rec.Cycle), rec.Window, int(rec.Arch),
			rec.Counts.AMSR, rec.Counts.AMSW, rec.Counts.AMM,
			rec.Counts.Rm, rec.Counts.Wm, rec.Counts.CleanHits,
			rec.K.Num, rec.K.Den,
			rec.FWB, rec.WB, rec.IFRM, rec.SFRM, rec.WT, rec.Partitioned)
		for _, v := range rec.Fractions {
			fmt.Fprintf(&sb, ",%s", strconv.FormatFloat(v, 'g', 6, 64))
		}
		for _, v := range rec.Optimal {
			fmt.Fprintf(&sb, ",%s", strconv.FormatFloat(v, 'g', 6, 64))
		}
		fmt.Fprintf(&sb, ",%s,%s,%s\n",
			strconv.FormatFloat(rec.DeliveredGBps, 'g', 6, 64),
			strconv.FormatFloat(rec.OptimalGBps, 'g', 6, 64),
			strconv.FormatFloat(rec.Gap, 'g', 6, 64))
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	if len(r.events) == 0 {
		return nil
	}
	if _, err := io.WriteString(w, "\n# policy events\ncycle,policy,epoch,disabled_sets,dirty_pages,steered_mm,promotions,cleanings\n"); err != nil {
		return err
	}
	for _, ev := range r.events {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%d,%d\n",
			uint64(ev.Cycle), ev.Policy, ev.Epoch, ev.DisabledSets,
			ev.DirtyPages, ev.SteeredMM, ev.Promotions, ev.Cleanings); err != nil {
			return err
		}
	}
	return nil
}
