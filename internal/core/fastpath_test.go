package core

import (
	"math"
	"math/rand"
	"testing"

	"dap/internal/sim"
)

// This file property-tests the per-access fast path: the integer
// compare-and-decrement grants installed at window rollover must equal, for
// every solver variant and any demand profile, the grants computed by a
// reference solver written in plain float64 fraction arithmetic (K carried
// as the fraction p/q, divisions performed on fractions and truncated where
// the hardware truncates). Demand counts stay below 2^20 and K's terms
// below 2^6, so every intermediate product is below 2^53 and the float64
// reference is exact — any mismatch is a real arithmetic divergence, not
// rounding.

// refGrants mirrors the Section IV solvers in float64 fraction arithmetic
// and returns the per-technique application grants after the saturating
// clamp — what the decision recorder reports and what the controllers can
// drain (before Disable folding).
func refGrants(d *DAP, w WindowCounts) (fwb, wb, ifrm, sfrm, wt int64) {
	p, q := float64(d.k.Num), float64(d.k.Den)
	cap := float64(d.cfg.CreditCap)
	amsr, amsw := float64(w.AMSR), float64(w.AMSW)
	ams, amm := amsr+amsw, float64(w.AMM)
	rm, wm, clean := float64(w.Rm), float64(w.Wm), float64(w.CleanHits)
	bmsR, bmsW, bmm := float64(d.bmsWinR), float64(d.bmsWinW), float64(d.bmmWin)
	reserve := d.cfg.SFRMReserve

	// appsFWB/appsUnit convert a raw credit value (fwb/sfrm in units of q,
	// wb/ifrm in units of p+q) into whole applications after the clamp,
	// truncating where the hardware divides.
	appsFWB := func(raw float64) int64 {
		c := math.Trunc(cap * q)
		if raw < 0 {
			raw = 0
		} else if raw > c {
			raw = c
		}
		return int64(math.Trunc(raw / q))
	}
	appsUnit := func(raw float64) int64 {
		c := math.Trunc(cap * (p + q) / q)
		if raw < 0 {
			raw = 0
		} else if raw > c {
			raw = c
		}
		return int64(math.Trunc(raw / (p + q)))
	}
	appsOne := func(raw float64) int64 {
		if raw < 0 {
			raw = 0
		} else if raw > cap {
			raw = cap
		}
		return int64(math.Trunc(raw))
	}

	switch d.cfg.Arch {
	case EDRAMArch:
		readShort := amsr > bmsR
		writeShort := amsw > bmsW
		switch {
		case readShort && !writeShort:
			nifrm := q*amsr - p*amm
			if nifrm > (p+q)*clean {
				nifrm = (p + q) * clean
			}
			if nifrm < 0 {
				nifrm = 0
			}
			return 0, 0, appsUnit(nifrm), 0, 0
		case writeShort && !readShort:
			nfwb := q*amsw - p*amm
			if nfwb < 0 {
				nfwb = 0
			}
			if nfwb > q*rm {
				nfwb = q * rm
			}
			nwb := q*amsw - nfwb - p*amm
			if nwb > (p+q)*wm {
				nwb = (p + q) * wm
			}
			if nwb < 0 {
				nwb = 0
			}
			return appsFWB(nfwb), appsUnit(nwb), 0, 0, 0
		case readShort && writeShort:
			nfwb := q*amsw - p*amm
			if nfwb < 0 {
				nfwb = 0
			}
			if nfwb > q*rm {
				nfwb = q * rm
			}
			a := q*amsw - nfwb
			r := q * amsr
			m := q * amm
			nwb := math.Trunc(((p+q)*a - p*r - p*m) / q)
			nifrm := math.Trunc(((p+q)*r - p*a - p*m) / q)
			if nwb > (2*p+q)*wm {
				nwb = (2*p + q) * wm
			}
			if nwb < 0 {
				nwb = 0
			}
			if nifrm > (2*p+q)*clean {
				nifrm = (2*p + q) * clean
			}
			if nifrm < 0 {
				nifrm = 0
			}
			nwb = math.Trunc(nwb * (p + q) / (2*p + q))
			nifrm = math.Trunc(nifrm * (p + q) / (2*p + q))
			return appsFWB(nfwb), appsUnit(nwb), appsUnit(nifrm), 0, 0
		default:
			return 0, 0, 0, 0, 0
		}

	case AlloyArch:
		if ams <= bmsR {
			return 0, 0, 0, 0, 0
		}
		nifrm := q*ams - p*amm
		if nifrm <= 0 {
			return 0, 0, 0, 0, 0
		}
		if nifrm > (p+q)*clean {
			nifrm = (p + q) * clean
		}
		spare := (bmm - amm) - nifrm/(p+q)
		nwt := math.Trunc(reserve * spare)
		if nwt < 0 {
			nwt = 0
		}
		if nwt > wm {
			nwt = wm
		}
		return 0, 0, appsUnit(nifrm), 0, appsOne(nwt)

	default: // SectoredArch
		if ams <= bmsR {
			return 0, 0, 0, 0, 0
		}
		nfwb := q*ams - p*amm
		if nfwb <= 0 {
			return 0, 0, 0, 0, 0
		}
		if max := q * (ams - bmsR); nfwb > max {
			nfwb = max
		}
		var nwb, nifrm float64
		if nfwb > q*rm {
			nfwb = q * rm
			nwb = q*ams - p*amm - q*rm
			if nwb > (p+q)*wm {
				nwb = (p + q) * wm
				nifrm = q*ams - p*(amm+wm) - q*rm - q*wm
				if nifrm > (p+q)*clean {
					nifrm = (p + q) * clean
				}
				if nifrm < 0 {
					nifrm = 0
				}
			}
			if nwb < 0 {
				nwb = 0
			}
		}
		spare := (bmm - amm) - (nwb+nifrm)/(p+q)
		nsfrm := math.Trunc(reserve * spare)
		if nsfrm < 0 {
			nsfrm = 0
		}
		return appsFWB(nfwb), appsUnit(nwb), appsUnit(nifrm), appsOne(nsfrm), 0
	}
}

// drain counts how many applications of each technique the fast path
// actually grants before its credit runs out.
func drain(d *DAP) (fwb, wb, ifrm, sfrm, wt int64) {
	for d.TakeFWB() {
		fwb++
	}
	for d.TakeWB() {
		wb++
	}
	for d.TakeIFRM(-1) {
		ifrm++
	}
	for d.TakeSFRM() {
		sfrm++
	}
	for d.TakeWT() {
		wt++
	}
	return
}

// TestFastPathGrantsMatchFractionReference drives all three solver variants
// over randomized window demand and checks, exactly:
//   - the installed raw grants equal the float64 fraction-arithmetic
//     reference (what the decision recorder reports), and
//   - the compare-and-decrement fast path drains exactly that many
//     applications, with Disable flags folding the respective grant to zero
//     without disturbing the others.
func TestFastPathGrantsMatchFractionReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1dea))
	bwPoints := [][2]float64{{102.4, 38.4}, {160, 51.2}, {51.2, 51.2}, {320, 25.6}}
	archs := []Arch{SectoredArch, AlloyArch, EDRAMArch}

	for iter := 0; iter < 4000; iter++ {
		arch := archs[iter%len(archs)]
		bw := bwPoints[rng.Intn(len(bwPoints))]
		cfg := DefaultConfig(arch, bw[0], bw[1])
		disable := iter%5 == 4
		if disable {
			cfg.Disable.FWB = rng.Intn(2) == 1
			cfg.Disable.WB = rng.Intn(2) == 1
			cfg.Disable.IFRM = rng.Intn(2) == 1
			cfg.Disable.SFRM = rng.Intn(2) == 1
		}
		eng := sim.New()
		wc := &WindowCounts{}
		d := NewDAP(cfg, eng, wc)

		// Random demand, biased toward cache-saturating windows so the
		// solver actually grants; all counts stay below 2^20.
		n := func(hi int64) int64 { return rng.Int63n(hi) }
		wc.AMSR = n(1 << 20)
		wc.AMSW = n(1 << 16)
		wc.AMM = n(1 << 14)
		wc.Rm = n(1 << 14)
		wc.Wm = n(1 << 14)
		wc.CleanHits = n(1 << 14)
		w := *wc

		eng.RunUntil(eng.Now() + cfg.Window)

		refFWB, refWB, refIFRM, refSFRM, refWT := refGrants(d, w)
		den, unit := d.k.Den, d.k.Num+d.k.Den
		gotFWB, gotWB := d.rawFWB/den, d.rawWB/unit
		gotIFRM, gotSFRM, gotWT := d.rawIFRM/unit, d.rawSFRM, d.rawWT
		if gotFWB != refFWB || gotWB != refWB || gotIFRM != refIFRM ||
			gotSFRM != refSFRM || gotWT != refWT {
			t.Fatalf("iter %d arch %d bw %v demand %+v:\n solver grants fwb=%d wb=%d ifrm=%d sfrm=%d wt=%d\n reference     fwb=%d wb=%d ifrm=%d sfrm=%d wt=%d",
				iter, arch, bw, w,
				gotFWB, gotWB, gotIFRM, gotSFRM, gotWT,
				refFWB, refWB, refIFRM, refSFRM, refWT)
		}

		wantFWB, wantWB, wantIFRM, wantSFRM := refFWB, refWB, refIFRM, refSFRM
		if cfg.Disable.FWB {
			wantFWB = 0
		}
		if cfg.Disable.WB {
			wantWB = 0
		}
		if cfg.Disable.IFRM {
			wantIFRM = 0
		}
		if cfg.Disable.SFRM {
			wantSFRM = 0
		}
		dFWB, dWB, dIFRM, dSFRM, dWT := drain(d)
		if dFWB != wantFWB || dWB != wantWB || dIFRM != wantIFRM ||
			dSFRM != wantSFRM || dWT != refWT {
			t.Fatalf("iter %d arch %d disable %+v: drained fwb=%d wb=%d ifrm=%d sfrm=%d wt=%d, want %d/%d/%d/%d/%d",
				iter, arch, cfg.Disable, dFWB, dWB, dIFRM, dSFRM, dWT,
				wantFWB, wantWB, wantIFRM, wantSFRM, refWT)
		}
	}
}

// TestFastPathAllocs pins the per-access fast path and the window rollover
// at zero heap allocations: Take* is compare-and-decrement on precomputed
// integer thresholds, and the rollover (solve + setCredits + reschedule
// through the typed windowTick handler) runs allocation-free once the
// engine's event arena is warm.
func TestFastPathAllocs(t *testing.T) {
	cfg := DefaultConfig(SectoredArch, 102.4, 38.4)
	eng := sim.New()
	wc := &WindowCounts{}
	d := NewDAP(cfg, eng, wc)
	eng.RunUntil(eng.Now() + cfg.Window) // warm the event arena

	if a := testing.AllocsPerRun(1000, func() {
		wc.AMSR += 5000
		wc.AMSW += 700
		wc.AMM += 90
		wc.Rm += 40
		wc.Wm += 40
		wc.CleanHits += 30
		eng.RunUntil(eng.Now() + cfg.Window)
		d.TakeFWB()
		d.TakeWB()
		d.TakeIFRM(-1)
		d.TakeSFRM()
		d.TakeWT()
	}); a != 0 {
		t.Fatalf("window rollover + Take* allocates %.1f times per window, want 0", a)
	}
}

// TestThreadAwareWatermarkMatchesPrecomputedHalf checks the precomputed
// ifrmHalf threshold against the definitional grant/2 watermark: a
// latency-sensitive core must drain exactly the above-watermark half while
// an insensitive core drains the full grant.
func TestThreadAwareWatermarkMatchesPrecomputedHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		cfg := DefaultConfig(SectoredArch, 102.4, 38.4)
		cfg.ThreadAware = true
		cfg.LatencySensitive = []bool{true, false}
		eng := sim.New()
		wc := &WindowCounts{}
		d := NewDAP(cfg, eng, wc)
		wc.AMSR = rng.Int63n(1 << 18)
		wc.AMSW = rng.Int63n(1 << 14)
		wc.AMM = rng.Int63n(1 << 12)
		wc.Rm = rng.Int63n(1 << 12)
		wc.Wm = rng.Int63n(1 << 12)
		wc.CleanHits = rng.Int63n(1 << 12)
		eng.RunUntil(eng.Now() + cfg.Window)

		grant, half, unit := d.ifrmGrant, d.ifrmHalf, d.k.Num+d.k.Den
		if half != grant/2 {
			t.Fatalf("ifrmHalf = %d, want grant/2 = %d", half, grant/2)
		}
		// Sensitive core: grants stop once the counter dips to grant/2.
		var sens int64
		for d.TakeIFRM(0) {
			sens++
		}
		wantSens := int64(0)
		for c := grant; c >= unit && c > half; c -= unit {
			wantSens++
		}
		if sens != wantSens {
			t.Fatalf("sensitive core drained %d IFRM, want %d (grant %d unit %d)", sens, wantSens, grant, unit)
		}
		// Insensitive core: drains whatever remains.
		var ins int64
		for d.TakeIFRM(1) {
			ins++
		}
		if sens+ins != grant/unit {
			t.Fatalf("total IFRM %d+%d != grant/unit %d", sens, ins, grant/unit)
		}
	}
}
