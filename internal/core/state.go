package core

import "dap/internal/ckpt"

// Checkpoint serialization for the partitioner. Functional warmup never
// advances the engine clock, so the DAP window timer has not fired at
// warmup-checkpoint time and the credit counters are still at their
// constructed zeros; they are serialized anyway so a checkpoint is a
// complete snapshot of the learner.

// SaveState serializes the DAP runtime state: credit counters, the IFRM
// grant watermark, the EWMA-smoothed window counts, the decision counts and
// the window diagnostics. Derived configuration (K, per-window capacities)
// is not serialized — it is recomputed by NewDAP from the variant's own
// config on restore.
func (d *DAP) SaveState(e *ckpt.Enc) {
	e.I64(d.fwb)
	e.I64(d.wb)
	e.I64(d.ifrm)
	e.I64(d.sfrm)
	e.I64(d.wt)
	e.I64(d.ifrmGrant)
	e.I64(d.smooth.AMSR)
	e.I64(d.smooth.AMSW)
	e.I64(d.smooth.AMM)
	e.I64(d.smooth.Rm)
	e.I64(d.smooth.Wm)
	e.I64(d.smooth.CleanHits)
	e.U64(uint64(d.dec.FWB))
	e.U64(uint64(d.dec.WB))
	e.U64(uint64(d.dec.IFRM))
	e.U64(uint64(d.dec.SFRM))
	e.U64(d.Windows)
	e.U64(d.Partitioned)
	e.I64(d.SumAMS)
	e.I64(d.SumAMM)
}

// LoadState restores state saved by SaveState into a freshly constructed
// DAP (the window timer scheduled by NewDAP keeps running).
func (d *DAP) LoadState(dec *ckpt.Dec) error {
	d.fwb = dec.I64()
	d.wb = dec.I64()
	d.ifrm = dec.I64()
	d.sfrm = dec.I64()
	d.wt = dec.I64()
	d.ifrmGrant = dec.I64()
	d.ifrmHalf = d.ifrmGrant / 2
	d.smooth.AMSR = dec.I64()
	d.smooth.AMSW = dec.I64()
	d.smooth.AMM = dec.I64()
	d.smooth.Rm = dec.I64()
	d.smooth.Wm = dec.I64()
	d.smooth.CleanHits = dec.I64()
	d.dec.FWB = dec.U64()
	d.dec.WB = dec.U64()
	d.dec.IFRM = dec.U64()
	d.dec.SFRM = dec.U64()
	d.Windows = dec.U64()
	d.Partitioned = dec.U64()
	d.SumAMS = dec.I64()
	d.SumAMM = dec.I64()
	return dec.Err()
}
