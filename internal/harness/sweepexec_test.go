package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dap/internal/jobqueue"
)

// tinySweepSpec is the smallest job that exercises the full simulator path.
func tinySweepSpec() jobqueue.JobSpec {
	return jobqueue.JobSpec{
		Mix: "mcf", Arch: "sectored", Policy: "baseline", Seed: 0,
		Cores: 2, Instr: 40_000, Warm: 20_000, Quick: true,
	}
}

func TestParseArchPolicyRoundTrip(t *testing.T) {
	for _, a := range []Arch{SectoredDRAM, AlloyCache, SectoredEDRAM, NoMSCache} {
		got, err := ParseArch(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseArch(%q) = %v, %v", a.String(), got, err)
		}
	}
	for _, p := range []Policy{Baseline, DAP, DAPFWBWB, SBD, SBDWT, BATMAN} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseArch("bogus"); err == nil {
		t.Fatal("ParseArch accepted bogus")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
}

func TestSweepValidate(t *testing.T) {
	if err := SweepValidate(tinySweepSpec()); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, bad := range []jobqueue.JobSpec{
		{Mix: "no-such-mix", Arch: "sectored", Policy: "baseline"},
		{Mix: "mcf", Arch: "bogus", Policy: "baseline"},
		{Mix: "mcf", Arch: "sectored", Policy: "bogus"},
	} {
		if err := SweepValidate(bad); err == nil {
			t.Fatalf("invalid spec accepted: %+v", bad)
		}
	}
}

func TestSweepKeyIsFingerprintBased(t *testing.T) {
	spec := tinySweepSpec()
	k1 := SweepKey(spec)
	k2 := SweepKey(spec)
	if k1 != k2 || k1 == "" {
		t.Fatalf("key not stable: %q vs %q", k1, k2)
	}
	cfg, _, err := sweepConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := Fingerprint(cfg) + "-mcf-s0"; k1 != want {
		t.Fatalf("key = %q; want %q", k1, want)
	}
	// Any behavior-affecting knob moves the key.
	for _, mutate := range []func(*jobqueue.JobSpec){
		func(s *jobqueue.JobSpec) { s.Policy = "dap" },
		func(s *jobqueue.JobSpec) { s.Arch = "alloy" },
		func(s *jobqueue.JobSpec) { s.Seed = 1 },
		func(s *jobqueue.JobSpec) { s.Instr = 50_000 },
		func(s *jobqueue.JobSpec) { s.Cores = 4 },
	} {
		other := tinySweepSpec()
		mutate(&other)
		if SweepKey(other) == k1 {
			t.Fatalf("key unchanged for %+v", other)
		}
	}
	// Mixes share a config fingerprint but not a key.
	other := tinySweepSpec()
	other.Mix = "lbm"
	if SweepKey(other) == k1 {
		t.Fatal("key ignores the mix")
	}
}

// TestSweepExecutorDeterministicPayload is the property the whole result
// store relies on: the same spec yields byte-identical payloads, so a
// stored result is always interchangeable with a fresh simulation.
func TestSweepExecutorDeterministicPayload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	spec := tinySweepSpec()
	p1, err := SweepExecutor(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := SweepExecutor(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, p2) {
		t.Fatal("executor payloads differ across identical runs")
	}
	var res SweepResult
	if err := json.Unmarshal(p1, &res); err != nil {
		t.Fatalf("payload not valid JSON: %v", err)
	}
	if res.Mix != "mcf" || res.Arch != "sectored" || res.Policy != "baseline" || res.AggIPC <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Run.Cycles == 0 || len(res.Run.Cores) != 2 {
		t.Fatalf("embedded run stats empty: %+v", res.Run)
	}
}

// TestSweepExecutorSampledJob runs a Sampled spec through the
// checkpoint-aware executor: the payload must carry the sampling report,
// the Sampled knob must move the store key (a sampled result is not
// interchangeable with a full run's), and the shared cache must have
// warmed at most once.
func TestSweepExecutorSampledJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	spec := tinySweepSpec()
	spec.Sampled = true
	if SweepKey(spec) == SweepKey(tinySweepSpec()) {
		t.Fatal("Sampled does not move the sweep key")
	}
	ck := MemCheckpoints()
	exec := SweepExecutorCkpt(ck)
	payload, err := exec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var res SweepResult
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	if res.Sampling == nil {
		t.Fatalf("sampled job carries no sampling report: %+v", res)
	}
	if !res.Sampling.Converged && !res.Sampling.FellBack {
		t.Fatalf("sampling report neither converged nor fell back: %+v", res.Sampling)
	}
	if got := ck.Builds(); got > 1 {
		t.Fatalf("builds = %d, want at most 1", got)
	}
}

func TestSweepExecutorRejectsBadSpec(t *testing.T) {
	if _, err := SweepExecutor(context.Background(), jobqueue.JobSpec{Mix: "nope", Arch: "sectored", Policy: "baseline"}); err == nil {
		t.Fatal("executor ran an unresolvable spec")
	}
}
