package harness

import (
	"testing"

	"dap/internal/mem"
	"dap/internal/workload"
)

// TestDeterminism: the event engine's deterministic tie-break plus seeded
// streams must make every run exactly reproducible.
func TestDeterminism(t *testing.T) {
	cfg := Quick()
	cfg.Policy = DAP
	cfg.MeasureInstr = 150_000
	spec, _ := workload.ByName("soplex.ref")
	mix := workload.RateMix(spec, cfg.CPU.Cores)
	a := RunMix(cfg, mix)
	b := RunMix(cfg, mix)
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.MSCacheCAS != b.MSCacheCAS || a.MainMemCAS != b.MainMemCAS {
		t.Fatalf("CAS differ: %d/%d vs %d/%d", a.MSCacheCAS, a.MainMemCAS, b.MSCacheCAS, b.MainMemCAS)
	}
	if a.DAP != b.DAP {
		t.Fatalf("decisions differ: %+v vs %+v", a.DAP, b.DAP)
	}
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			t.Fatalf("core %d stats differ", i)
		}
	}
}

// TestBandwidthCeiling: no run may deliver more bandwidth than the sum of
// its sources' peaks.
func TestBandwidthCeiling(t *testing.T) {
	cfg := Quick()
	cfg.Policy = DAP
	spec, _ := workload.ByName("libquantum")
	r := RunMix(cfg, workload.RateMix(spec, cfg.CPU.Cores))
	limit := cfg.Sectored.Array.PeakGBps() + cfg.MainMemory.PeakGBps()
	if r.DeliveredGBps > limit {
		t.Fatalf("delivered %.1f GB/s exceeds the %.1f GB/s ceiling", r.DeliveredGBps, limit)
	}
}

// TestDAPRespectsOptimalFraction: with DAP, the main-memory CAS fraction
// must move toward (and never far beyond) the optimal B_MM/(B_MM+B_MS$).
func TestDAPRespectsOptimalFraction(t *testing.T) {
	base := Quick()
	dapCfg := base
	dapCfg.Policy = DAP
	spec, _ := workload.ByName("libquantum")
	mix := workload.RateMix(spec, base.CPU.Cores)
	rb := RunMix(base, mix)
	rd := RunMix(dapCfg, mix)
	optimal := base.MainMemory.PeakGBps() /
		(base.MainMemory.PeakGBps() + base.Sectored.Array.PeakGBps())
	if rd.MainMemCASFraction() <= rb.MainMemCASFraction() {
		t.Fatalf("DAP did not raise the CAS fraction: %.3f -> %.3f",
			rb.MainMemCASFraction(), rd.MainMemCASFraction())
	}
	if rd.MainMemCASFraction() > optimal+0.15 {
		t.Fatalf("DAP overshot the optimal fraction: %.3f vs %.3f",
			rd.MainMemCASFraction(), optimal)
	}
}

// TestInsensitiveWorkloadsUnaffected: DAP must rarely partition for
// low-demand workloads (the paper: "DAP seldom invokes partitioning for
// these workloads" and none lose performance).
func TestInsensitiveWorkloadsUnaffected(t *testing.T) {
	cfg := Quick()
	cfg.Policy = DAP
	spec, _ := workload.ByName("parboil-histo")
	r := RunMix(cfg, workload.RateMix(spec, cfg.CPU.Cores))
	// decisions per 1000 cycles should be tiny compared to saturated runs
	rate := float64(r.DAP.Total()) / float64(r.Cycles) * 1000
	if rate > 20 {
		t.Fatalf("DAP partitions an insensitive workload heavily: %.1f decisions/kcycle", rate)
	}
}

// TestEveryMixRunsShort exercises all 44 mixes end to end (very short runs)
// so that no combination of specs can break the pipeline.
func TestEveryMixRunsShort(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := Quick()
	cfg.WarmAccesses = 20_000
	cfg.MeasureInstr = 40_000
	cfg.Policy = DAP
	for _, m := range workload.AllMixes(cfg.CPU.Cores) {
		r := RunMix(cfg, m)
		if r.Cycles == 0 {
			t.Fatalf("mix %s: empty run", m.Name)
		}
		for i := range r.Cores {
			if r.Cores[i].Instructions == 0 {
				t.Fatalf("mix %s: core %d made no progress", m.Name, i)
			}
		}
	}
}

// TestCASConservation: on the baseline, every demand read miss must produce
// at least one main-memory read, and main-memory traffic must be fully
// attributable (reads >= misses, writes >= dirty write-outs).
func TestCASConservation(t *testing.T) {
	cfg := Quick()
	spec, _ := workload.ByName("parboil-lbm")
	sys := Build(cfg, workload.RateMix(spec, cfg.CPU.Cores))
	r := sys.Run()
	mmStats := sys.MM.Stats()
	if mmStats.Reads < r.MemSide.ReadMisses {
		t.Fatalf("MM reads %d < MS$ read misses %d", mmStats.Reads, r.MemSide.ReadMisses)
	}
	// a few hundred victim-read -> memory-write chains may still be in
	// flight when the run ends
	const inflightSlack = 1024
	if mmStats.Writes+inflightSlack < r.MemSide.DirtyWriteouts {
		t.Fatalf("MM writes %d << dirty write-outs %d", mmStats.Writes, r.MemSide.DirtyWriteouts)
	}
}

// TestCapacityMonotonicity: a larger memory-side cache must not lower the
// hit ratio for a capacity-pressured workload.
func TestCapacityMonotonicity(t *testing.T) {
	spec, _ := workload.ByName("mcf")
	var hits []float64
	for _, capMB := range []int{32, 64, 128} {
		cfg := Quick()
		cfg.Sectored.CapacityBytes = capMB * mem.MiB
		r := RunMix(cfg, workload.RateMix(spec, cfg.CPU.Cores))
		hits = append(hits, r.MemSide.HitRatio())
	}
	if hits[1] < hits[0]-0.02 || hits[2] < hits[1]-0.02 {
		t.Fatalf("hit ratio not monotone with capacity: %v", hits)
	}
}

// TestBATMANReachesTargetHitRate: with the corrected feedback, BATMAN's
// equilibrium overall hit rate should sit near B_MS$/(B_MS$+B_MM), not
// collapse to half the cache.
func TestBATMANReachesTargetHitRate(t *testing.T) {
	cfg := Quick()
	cfg.Policy = BATMAN
	cfg.MeasureInstr = 800_000
	spec, _ := workload.ByName("libquantum") // baseline hit ~1.0
	r := RunMix(cfg, workload.RateMix(spec, cfg.CPU.Cores))
	hit := r.MemSide.HitRatio()
	if hit < 0.55 || hit > 0.95 {
		t.Fatalf("BATMAN equilibrium hit ratio = %.3f, want near 0.73 target", hit)
	}
}

// TestSeedRobustness: the DAP speedup must hold across independent stream
// seeds, not just the default draw.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := Quick()
	spec, _ := workload.ByName("libquantum")
	mix := workload.RateMix(spec, cfg.CPU.Cores)
	aggIPC := func(r Result) float64 {
		s := 0.0
		for i := range r.Cores {
			s += r.Cores[i].IPC()
		}
		return s
	}
	_, baseMean, _ := Replicate(cfg, mix, 3, aggIPC)
	dapCfg := cfg
	dapCfg.Policy = DAP
	vals, dapMean, std := Replicate(dapCfg, mix, 3, aggIPC)
	if dapMean <= baseMean {
		t.Fatalf("DAP mean %.3f must beat baseline %.3f (runs %v)", dapMean, baseMean, vals)
	}
	if std > dapMean*0.15 {
		t.Fatalf("excessive seed variance: std %.3f of mean %.3f", std, dapMean)
	}
}

// TestSeedsProduceDistinctRuns: a non-zero seed must change the simulation.
func TestSeedsProduceDistinctRuns(t *testing.T) {
	cfg := Quick()
	cfg.MeasureInstr = 100_000
	spec, _ := workload.ByName("gcc.expr")
	mix := workload.RateMix(spec, cfg.CPU.Cores)
	a := RunSeeded(cfg, mix, 0)
	b := RunSeeded(cfg, mix, 1)
	if a.Cycles == b.Cycles && a.MSCacheCAS == b.MSCacheCAS {
		t.Fatal("different seeds should produce different runs")
	}
	c := RunMix(cfg, mix)
	if a.Cycles != c.Cycles {
		t.Fatal("seed 0 must match the default run")
	}
}
