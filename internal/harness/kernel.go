package harness

import (
	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/sim"
)

// KernelArch selects the idealized memory-side cache model of the Figure 1
// bandwidth kernel. As in the paper's motivation experiment, tags are
// assumed on-die and there are no maintenance overheads: the hit rate is an
// input, and the kernel measures the read bandwidth the system delivers.
type KernelArch int

// Kernel architectures.
const (
	KernelDRAMCache KernelArch = iota // one bi-directional HBM channel set
	KernelEDRAM                       // separate eDRAM read and write channel sets
)

// KernelResult is one point of Figure 1.
type KernelResult struct {
	HitRate       float64
	DeliveredGBps float64
}

// BandwidthKernel streams reads through the memory hierarchy at a target
// memory-side cache hit rate and reports the delivered read bandwidth
// (Figure 1). Hits read from the cache array; misses read from main memory
// and fill the cache (on the same channels for the DRAM cache, on the write
// channels for the eDRAM cache).
func BandwidthKernel(arch KernelArch, hitRate float64, outstanding int, duration mem.Cycle) KernelResult {
	eng := sim.New()
	mm := dram.NewDevice(dram.DDR4_2400(), eng)

	var cacheRd, cacheWr *dram.Device
	switch arch {
	case KernelEDRAM:
		cacheRd = dram.NewDevice(dram.EDRAMRead(51.2), eng)
		cacheWr = dram.NewDevice(dram.EDRAMWrite(51.2), eng)
	default:
		dev := dram.NewDevice(dram.HBM102(), eng)
		cacheRd, cacheWr = dev, dev
	}

	if outstanding <= 0 {
		outstanding = 256
	}
	rng := uint64(0x2545f4914f6cdd1d)
	next := func() float64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return float64((rng*0x9e3779b97f4a7c15)>>11) / (1 << 53)
	}

	var completedReads uint64
	var addr mem.Addr
	var issue func()
	issue = func() {
		if eng.Now() >= duration {
			return
		}
		addr += mem.LineBytes // stream sequentially, as the paper kernel does
		a := addr
		if next() < hitRate {
			cacheRd.Access(a, mem.ReadKind, 0, func(mem.Cycle) {
				completedReads++
				issue()
			})
			return
		}
		mm.Access(a, mem.ReadKind, 0, func(mem.Cycle) {
			completedReads++
			cacheWr.Access(a, mem.FillKind, 0, nil)
			issue()
		})
	}
	for i := 0; i < outstanding; i++ {
		issue()
	}
	eng.RunUntil(duration)
	return KernelResult{
		HitRate:       hitRate,
		DeliveredGBps: mem.GBPerSec(completedReads*mem.LineBytes, duration),
	}
}

// Figure1HitRates are the x-axis points of Figure 1.
var Figure1HitRates = []float64{0, 0.25, 0.50, 0.70, 0.90, 1.00}
