package harness

import (
	"dap/internal/check"
)

// Validate checks the full system configuration, aggregating the diagnostics
// of every sub-configuration (CPU, main memory, the selected cache
// architecture, DAP override, fault plan) into one check.Errors value with
// dotted field paths, so a misconfigured experiment reports every problem at
// once instead of panicking on the first.
func (c *Config) Validate() error {
	var errs check.Collector

	errs.Sub("CPU", c.CPU.Validate())
	errs.Sub("MainMemory", c.MainMemory.Validate())

	switch c.Arch {
	case SectoredDRAM:
		errs.Sub("Sectored", c.Sectored.Validate())
	case AlloyCache:
		errs.Sub("Alloy", c.Alloy.Validate())
	case SectoredEDRAM:
		errs.Sub("EDRAM", c.EDRAM.Validate())
	case NoMSCache:
		// nothing cache-side to validate
	default:
		errs.Addf("Arch", int(c.Arch), "unknown architecture")
	}

	switch c.Policy {
	case Baseline:
	case DAP, DAPFWBWB:
		if c.Arch == NoMSCache {
			errs.Addf("Policy", c.Policy.String(),
				"access partitioning needs a memory-side cache (Arch is NoMSCache)")
		}
	case SBD, SBDWT, BATMAN:
		if c.Arch != SectoredDRAM {
			errs.Addf("Policy", c.Policy.String(),
				"only implemented on the sectored DRAM cache (Arch SectoredDRAM)")
		}
	default:
		errs.Addf("Policy", int(c.Policy), "unknown policy")
	}

	if c.DAPOverride != nil {
		errs.Sub("DAPOverride", c.DAPOverride.Validate())
	}
	if c.ThreadAwareIFRM && c.DAPOverride != nil && c.DAPOverride.ThreadAware {
		// both paths would set the thread-aware tables; dapWithPolicy applies
		// ThreadAwareIFRM last, silently clobbering the override's tables
		errs.Addf("ThreadAwareIFRM", true, "conflicts with DAPOverride.ThreadAware (pick one)")
	}

	errs.NonNegative("WarmAccesses", c.WarmAccesses)
	if c.MeasureInstr == 0 {
		errs.Addf("MeasureInstr", c.MeasureInstr, "must be positive (cores would never finish)")
	}
	if c.AuditEvery > 0 && !c.Audit {
		errs.Addf("AuditEvery", c.AuditEvery, "set without Audit: the auditor would never run")
	}
	if c.Faults != nil {
		errs.Sub("Faults", c.Faults.Validate())
	}

	errs.NonNegative("MetricsCap", c.MetricsCap)
	errs.NonNegative("TraceSample", c.TraceSample)
	errs.NonNegative("TraceCap", c.TraceCap)
	if c.MetricsCap > 0 && c.MetricsEvery == 0 {
		errs.Addf("MetricsCap", c.MetricsCap, "set without MetricsEvery: the sampler would never run")
	}
	if (c.TraceSample > 0 || c.TraceCap > 0) && !c.Trace {
		errs.Addf("TraceSample", c.TraceSample, "trace knobs set without Trace: the tracer would never run")
	}
	errs.NonNegative("FlightEvery", c.FlightEvery)
	errs.NonNegative("FlightCap", c.FlightCap)
	if (c.FlightEvery > 0 || c.FlightCap > 0) && !c.Flight {
		errs.Addf("FlightEvery", c.FlightEvery, "flight knobs set without Flight: the recorder would never run")
	}
	errs.NonNegative("DecisionsCap", c.DecisionsCap)
	if c.DecisionsCap > 0 && !c.Decisions {
		errs.Addf("DecisionsCap", c.DecisionsCap, "set without Decisions: the recorder would never run")
	}
	return errs.Err()
}
