package harness

import (
	"errors"
	"testing"

	"dap/internal/faultinject"
	"dap/internal/runner"
	"dap/internal/sim"
	"dap/internal/workload"
)

// TestInjectedFaultIsolatedUnderParallelRunner covers the fault-injection ×
// auditor interplay under the parallel runner: in a concurrently executed
// batch, exactly the job carrying a fault plan must abort — with the
// watchdog's *sim.StallError attributed to it — while every sibling job
// (including audited ones) completes cleanly. A fault bleeding across jobs,
// or an abort landing on the wrong index, is the regression this guards
// against.
func TestInjectedFaultIsolatedUnderParallelRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel simulations in -short mode")
	}
	base := Quick()
	base.WarmAccesses = 40_000
	base.MeasureInstr = 100_000
	base.CPU.Cores = 2
	base.Policy = DAP
	spec, _ := workload.ByName("mcf")
	mix := workload.RateMix(spec, base.CPU.Cores)

	const faultyIdx = 1
	const n = 4
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = base
		// Siblings run with the auditor armed: the injected DRAM drops in
		// job 1 must not trip invariants anywhere else.
		cfgs[i].Audit = true
		cfgs[i].AuditEvery = 1024
	}
	cfgs[faultyIdx].WatchdogEvents = 10_000
	cfgs[faultyIdx].Faults = &faultinject.Plan{DropReadEvery: 1, DropReadAfter: 1000}

	type outcome struct {
		res Result
		err error
	}
	outs := runner.Map(n, n, func(i int) outcome {
		r, err := RunMixE(cfgs[i], mix)
		return outcome{r, err}
	})

	for i, o := range outs {
		if i == faultyIdx {
			if o.err == nil {
				t.Fatalf("job %d ran with every DRAM read dropped yet completed", i)
			}
			var stall *sim.StallError
			if !errors.As(o.err, &stall) {
				t.Fatalf("job %d: expected *sim.StallError, got %T: %v", i, o.err, o.err)
			}
			if o.res.Abort == nil {
				t.Fatalf("job %d: Result.Abort not set on aborted run", i)
			}
			continue
		}
		if o.err != nil {
			t.Fatalf("sibling job %d aborted: %v (fault plan bled across the batch)", i, o.err)
		}
		if o.res.Cycles == 0 {
			t.Fatalf("sibling job %d produced an empty result", i)
		}
	}

	// Clean siblings are bit-identical to a serial run of the same config:
	// the faulty neighbor perturbed nothing.
	serial, err := RunMixE(cfgs[0], mix)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].res.Cycles != serial.Cycles || outs[0].res.Cores[0].IPC() != serial.Cores[0].IPC() {
		t.Fatal("sibling result differs from serial run of the same config")
	}
}
