package harness

import "testing"

// Quick-scale structural checks on the experiment drivers that are not
// exercised elsewhere. These are integration tests over the whole stack;
// they are skipped in -short mode.

func TestFig08Relations(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	f := Fig08(Options{Quick: true})
	if len(f.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(f.Series))
	}
	casBase, casDAP := f.Series[0], f.Series[1]
	hitBase, hitDAP := f.Series[2], f.Series[4]
	if casDAP.Summary <= casBase.Summary {
		t.Fatalf("DAP must raise the mean CAS fraction: %.3f -> %.3f",
			casBase.Summary, casDAP.Summary)
	}
	if hitDAP.Summary > hitBase.Summary+0.01 {
		t.Fatalf("DAP must not raise the mean hit ratio: %.3f -> %.3f",
			hitBase.Summary, hitDAP.Summary)
	}
	if casDAP.Summary > 0.45 {
		t.Fatalf("DAP CAS fraction %.3f implausibly beyond the 0.27 optimum", casDAP.Summary)
	}
}

func TestTab01Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	f := Tab01(Options{Quick: true})
	if len(f.Series) != 6 {
		t.Fatalf("series = %d, want 6 (3 windows + 3 efficiencies)", len(f.Series))
	}
	for _, s := range f.Series {
		if s.Summary < 0.8 || s.Summary > 1.6 {
			t.Fatalf("series %s gmean %.3f out of plausible range", s.Label, s.Summary)
		}
	}
}

func TestFig04SensitiveVsInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	f := Fig04(Options{Quick: true})
	speed := f.Series[0]
	// mean speedup from doubling bandwidth over the 12 sensitive mixes must
	// exceed that over the 5 insensitive ones (that is their definition)
	var sens, insens []float64
	for i, v := range speed.Values {
		if i < 12 {
			sens = append(sens, v)
		} else {
			insens = append(insens, v)
		}
	}
	ms, mi := mean(sens), mean(insens)
	if ms <= mi {
		t.Fatalf("sensitive mixes (%.3f) must gain more from 2x bandwidth than insensitive (%.3f)", ms, mi)
	}
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func TestAblationTechniquesStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	f := AblationTechniques(Options{Quick: true})
	if len(f.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(f.Series))
	}
	full := f.Series[0].Summary
	if full < 1.0 {
		t.Fatalf("full DAP gmean %.3f should exceed 1", full)
	}
}
