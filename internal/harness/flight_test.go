package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"reflect"
	"strings"
	"testing"

	"dap/internal/faultinject"
	"dap/internal/jobqueue"
	"dap/internal/obs"
)

// TestObservabilityIsBitIdenticalWithFlight extends the bit-identity
// guarantee to the flight recorder: a run with the black box on (alongside
// the tracer and sampler) must produce exactly the same stats.Run as a bare
// run, while still recording flight entries.
func TestObservabilityIsBitIdenticalWithFlight(t *testing.T) {
	mix := traceableMix(4)
	base := obsTestConfig()
	base.CPU.Cores = 4

	inst := base
	inst.Flight = true
	inst.FlightEvery = 10_000
	inst.Trace = true
	inst.MetricsEvery = 5_000

	plain := RunMix(base, mix)
	flown := RunMix(inst, mix)
	if plain.Abort != nil || flown.Abort != nil {
		t.Fatalf("aborted runs: plain=%v flight=%v", plain.Abort, flown.Abort)
	}
	if !reflect.DeepEqual(plain.Run, flown.Run) {
		t.Errorf("stats.Run differs with flight recorder enabled")
		if plain.Cycles != flown.Cycles {
			t.Errorf("cycles: plain=%d flight=%d", plain.Cycles, flown.Cycles)
		}
	}
	if flown.Flight == nil || flown.Flight.Len() == 0 {
		t.Fatal("flight recorder captured nothing")
	}
	entries := flown.Flight.Entries()
	if !strings.HasPrefix(entries[0].Note, "measure-start") {
		t.Errorf("first entry is %q, want measure-start", entries[0].Note)
	}
	if last := entries[len(entries)-1].Note; last != "run-complete" {
		t.Errorf("last entry is %q, want run-complete", last)
	}
	if plain.Flight != nil {
		t.Error("uninstrumented run has a flight recorder")
	}
}

// TestFlightRecorderCapturesStall faultinjects a DRAM-drop stall and
// asserts the flight recorder's dump carries the failure: bounded entries,
// the watchdog reason, the engine snapshot, and periodic samples showing
// the frozen system.
func TestFlightRecorderCapturesStall(t *testing.T) {
	cfg := hardenConfig()
	cfg.Policy = DAP
	cfg.WatchdogEvents = 10_000
	cfg.Faults = &faultinject.Plan{DropReadEvery: 1, DropReadAfter: 1000}
	cfg.Flight = true
	cfg.FlightEvery = 2_000
	cfg.FlightCap = 32

	r, err := RunMixE(cfg, quickMix())
	if err == nil {
		t.Fatal("run with every read response dropped completed normally")
	}
	if r.Flight == nil {
		t.Fatal("aborted run has no flight recording")
	}
	if n := r.Flight.Len(); n == 0 || n > 32 {
		t.Fatalf("flight ring has %d entries, want 1..32", n)
	}
	entries := r.Flight.Entries()
	if last := entries[len(entries)-1].Note; !strings.HasPrefix(last, "run-aborted") {
		t.Errorf("last entry is %q, want run-aborted", last)
	}
	var periodic bool
	for _, e := range entries {
		if strings.HasPrefix(e.Note, "pending=") {
			periodic = true
			break
		}
	}
	if !periodic {
		t.Error("no periodic samples in the flight ring")
	}

	reason, snap := classifyAbort(err)
	if reason != "watchdog-stall" {
		t.Fatalf("classifyAbort reason = %q, want watchdog-stall", reason)
	}
	dump := r.Flight.Dump(reason, snap)
	if dump.Snapshot == "" || !strings.Contains(dump.Snapshot, "queued") {
		t.Errorf("dump snapshot missing engine state: %q", dump.Snapshot)
	}
	if _, err := json.Marshal(dump); err != nil {
		t.Fatalf("dump not serializable: %v", err)
	}
}

// TestSweepExecutorWrapsFlightError runs a doomed job spec through the
// service executor and asserts the abort comes back as an *obs.FlightError
// whose dump is stamped with the job's correlation ID and store key — the
// contract the sweep service's postmortem path relies on.
func TestSweepExecutorWrapsFlightError(t *testing.T) {
	spec := jobqueue.JobSpec{
		Mix: "mcf", Arch: "sectored", Policy: "dap",
		Cores: 2, Instr: 150_000, Warm: 60_000, Quick: true,
	}
	// No public knob injects faults through a JobSpec, so exercise the same
	// path sweepConfig feeds: resolve, poison, run.
	cfg, mix, err := sweepConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Flight {
		t.Fatal("sweepConfig did not enable the flight recorder")
	}
	cfg.WatchdogEvents = 10_000
	cfg.Faults = &faultinject.Plan{DropReadEvery: 1, DropReadAfter: 1000}
	res, runErr := RunSeededE(cfg, mix, 0)
	if runErr == nil {
		t.Fatal("poisoned run completed normally")
	}
	reason, snap := classifyAbort(runErr)
	dump := res.Flight.Dump(reason, snap)
	dump.Corr = "s1-j1"
	dump.Key = SweepKey(spec)
	fe := &obs.FlightError{Dump: dump, Err: runErr}

	var got *obs.FlightError
	if !errors.As(error(fe), &got) {
		t.Fatal("FlightError lost through errors.As")
	}
	if got.Dump.Corr != "s1-j1" || got.Dump.Key == "" || got.Dump.Reason != "watchdog-stall" {
		t.Fatalf("dump context = %+v", got.Dump)
	}
}

// TestSweepExecutorLogsWithCorr runs one real job through SweepExecutor
// with a capture logger on the context and asserts the start and done
// records both carry the correlation ID.
func TestSweepExecutorLogsWithCorr(t *testing.T) {
	var buf bytes.Buffer
	ctx := obs.WithLogger(obs.WithCorr(context.Background(), "s7-j9"),
		slog.New(slog.NewJSONHandler(&buf, nil)))
	spec := jobqueue.JobSpec{
		Mix: "mcf", Arch: "sectored", Policy: "baseline",
		Cores: 1, Instr: 60_000, Warm: 30_000, Quick: true,
	}
	payload, err := SweepExecutor(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(payload, []byte(`"agg_ipc"`)) {
		t.Fatalf("payload missing agg_ipc: %s", payload)
	}
	logs := buf.String()
	if strings.Count(logs, `"corr":"s7-j9"`) < 2 {
		t.Fatalf("expected start+done records stamped with corr, got:\n%s", logs)
	}
	if !strings.Contains(logs, "simulation start") || !strings.Contains(logs, "simulation done") {
		t.Fatalf("missing lifecycle records:\n%s", logs)
	}
}
