package harness

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dap/internal/faultinject"
	"dap/internal/jobqueue"
	"dap/internal/store"
)

// The kill-and-restart integration test: a sweep service process is crashed
// mid-sweep at a deterministic chaos point (immediately after a result-store
// write, before the completion is journaled), then a second process reopens
// the same state directory and resumes. The resumed sweep must
//
//   - complete every job,
//   - produce result payloads byte-identical to an uninterrupted in-process
//     reference run, and
//   - never re-simulate a job whose result already landed in the store
//     (each key is simulated exactly once across both processes).
//
// The "process" is this test binary re-executed against its own helper test,
// so the crash is a real os.Exit in a real separate process — not a
// goroutine standing in for one.

const (
	sweepHelperEnv     = "DAP_SWEEP_HELPER_DIR"
	sweepCrashAfterEnv = "DAP_CRASH_AFTER_PUTS"
	sweepCrashExitCode = 7
)

// crashSweepSpec is the sweep both processes work on: 4 tiny jobs.
func crashSweepSpec() jobqueue.SweepSpec {
	return jobqueue.SweepSpec{
		Mixes:    []string{"mcf", "omnetpp"},
		Policies: []string{"baseline", "dap"},
		Cores:    2, Instr: 40_000, Warm: 20_000, Quick: true,
	}
}

// TestSweepCrashHelper is the subprocess body (skipped in a normal test
// run): it opens the sweep service under $DAP_SWEEP_HELPER_DIR, submits the
// sweep on first start, arms the chaos crash point from the environment,
// and runs to completion — or to the injected crash.
func TestSweepCrashHelper(t *testing.T) {
	dir := os.Getenv(sweepHelperEnv)
	if dir == "" {
		t.Skip("subprocess helper (driven by TestSweepResumeAfterKill)")
	}

	q, err := jobqueue.Open(SweepQueueConfig(filepath.Join(dir, "queue")))
	if err != nil {
		t.Fatalf("open queue: %v", err)
	}
	st, err := store.Open(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatalf("open store: %v", err)
	}

	var chaos *faultinject.ServiceChaos
	if n, _ := strconv.ParseUint(os.Getenv(sweepCrashAfterEnv), 10, 64); n > 0 {
		chaos = faultinject.NewServiceChaos(faultinject.ServicePlan{
			CrashAfterPut: n, CrashExitCode: sweepCrashExitCode,
		})
	}

	// Log each actual simulation so the parent can prove completed jobs were
	// served from the store, not re-run.
	exec := func(ctx context.Context, spec jobqueue.JobSpec) ([]byte, error) {
		payload, err := SweepExecutor(ctx, spec)
		if err == nil {
			fmt.Printf("SIMDONE %s\n", SweepKey(spec))
		}
		return payload, err
	}

	svc := jobqueue.NewService(q, st, exec, jobqueue.ServiceConfig{
		Workers: 1, Poll: time.Millisecond, Chaos: chaos,
	})
	if _, _, err := svc.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if len(q.Sweeps()) == 0 { // first start: submit; restarts resume
		if _, err := q.Submit(crashSweepSpec()); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	svc.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := svc.Wait(ctx); err != nil {
		t.Fatalf("sweep never drained: %v", err)
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ccancel()
	if err := svc.Close(cctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	fmt.Println("ALL DONE")
}

// runSweepHelper re-executes the test binary against the helper with the
// given state dir and chaos env, returning combined output and exit code.
func runSweepHelper(t *testing.T, dir string, extraEnv ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestSweepCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), sweepHelperEnv+"="+dir)
	cmd.Env = append(cmd.Env, extraEnv...)
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run helper: %v\n%s", err, buf.String())
	}
	return buf.String(), code
}

func simDoneKeys(out string) []string {
	var keys []string
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "SIMDONE "); ok {
			keys = append(keys, strings.TrimSpace(rest))
		}
	}
	return keys
}

func TestSweepResumeAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess simulations in -short mode")
	}
	dir := t.TempDir()
	specs := crashSweepSpec().Expand()

	// Uninterrupted in-process reference: the payloads the resumed sweep
	// must reproduce bit-for-bit.
	reference := make(map[string][]byte, len(specs))
	for _, spec := range specs {
		payload, err := SweepExecutor(context.Background(), spec)
		if err != nil {
			t.Fatalf("reference run %s: %v", spec.String(), err)
		}
		reference[SweepKey(spec)] = payload
	}

	// Process 1: crash immediately after the 2nd result lands in the store —
	// after Put, before Ack, the nastiest window (result durable, completion
	// not journaled).
	out1, code1 := runSweepHelper(t, dir, sweepCrashAfterEnv+"=2")
	if code1 != sweepCrashExitCode {
		t.Fatalf("process 1 exited %d; want chaos exit %d\n%s", code1, sweepCrashExitCode, out1)
	}
	keys1 := simDoneKeys(out1)
	if len(keys1) != 2 {
		t.Fatalf("process 1 simulated %d jobs before the crash; want 2\n%s", len(keys1), out1)
	}

	// Process 2: same dir, no chaos. It must replay the journal, reconcile
	// the orphaned lease against the store, and finish the remaining jobs.
	out2, code2 := runSweepHelper(t, dir)
	if code2 != 0 {
		t.Fatalf("resumed process exited %d\n%s", code2, out2)
	}
	if !strings.Contains(out2, "ALL DONE") {
		t.Fatalf("resumed process never drained\n%s", out2)
	}
	keys2 := simDoneKeys(out2)

	// No job was simulated twice across the crash: every stored result was
	// reused, including the one whose ack the crash swallowed.
	seen := map[string]bool{}
	for _, k := range append(append([]string(nil), keys1...), keys2...) {
		if seen[k] {
			t.Fatalf("key %s simulated in both processes (stored result not reused)", k)
		}
		seen[k] = true
	}
	if got := len(keys1) + len(keys2); got != len(specs) {
		t.Fatalf("simulated %d jobs across both processes; want exactly %d", got, len(specs))
	}

	// The queue on disk agrees: every job done, nothing dead or stuck.
	q, err := jobqueue.Open(SweepQueueConfig(filepath.Join(dir, "queue")))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	counts, total := q.Counts()
	if total != len(specs) || counts["done"] != len(specs) {
		t.Fatalf("final queue counts = %v (total %d)", counts, total)
	}

	// Bit-identical results: the interrupted-and-resumed sweep's merged
	// store matches the uninterrupted reference byte for byte.
	st, err := store.Open(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range reference {
		got, ok := st.Get(key)
		if !ok {
			t.Fatalf("key %s missing from resumed store", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %s: resumed result differs from uninterrupted reference", key)
		}
	}
	if st.Len() != len(reference) {
		t.Fatalf("store holds %d entries; want %d", st.Len(), len(reference))
	}
}
