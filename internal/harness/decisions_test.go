package harness

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"dap/internal/runner"
)

// decTestConfig is the shortened DAP run the decision-introspection tests
// simulate (twice, for the identity checks), per architecture.
func decTestConfig(arch Arch) Config {
	cfg := obsTestConfig()
	cfg.CPU.Cores = 2
	cfg.Arch = arch
	return cfg
}

var decArchs = []struct {
	name string
	arch Arch
}{
	{"sectored", SectoredDRAM},
	{"alloy", AlloyCache},
	{"edram", SectoredEDRAM},
}

// TestDecisionRecordingIsBitIdentical is the tentpole guarantee of this
// layer: the recorder reads the partitioner's already-solved state at window
// rollover and must never feed back — stats.Run with recording enabled is
// bit-identical to the uninstrumented run, on every solver variant.
func TestDecisionRecordingIsBitIdentical(t *testing.T) {
	for _, tc := range decArchs {
		t.Run(tc.name, func(t *testing.T) {
			mix := traceableMix(2)
			base := decTestConfig(tc.arch)
			inst := base
			inst.Decisions = true

			plain := RunMix(base, mix)
			rec := RunMix(inst, mix)
			if plain.Abort != nil || rec.Abort != nil {
				t.Fatalf("aborted runs: plain=%v rec=%v", plain.Abort, rec.Abort)
			}
			if !reflect.DeepEqual(plain.Run, rec.Run) {
				t.Errorf("stats.Run differs with decision recording enabled")
				if plain.Cycles != rec.Cycles {
					t.Errorf("cycles: plain=%d rec=%d", plain.Cycles, rec.Cycles)
				}
			}
			if plain.Decisions != nil {
				t.Error("uninstrumented run carries a recorder")
			}

			// The recorder must have seen every window with well-formed
			// records: gaps in [0,1], one fraction per source, fractions
			// summing to one (or all-zero on an idle window).
			recs := rec.Decisions.Records()
			if len(recs) == 0 {
				t.Fatal("no decision records")
			}
			srcs := rec.Decisions.SourceNames()
			var granted int64
			for i, r := range recs {
				if r.Gap < 0 || r.Gap > 1 {
					t.Fatalf("record %d: gap %v outside [0,1]", i, r.Gap)
				}
				if len(r.Fractions) != len(srcs) || len(r.Optimal) != len(srcs) {
					t.Fatalf("record %d: %d fractions / %d optimal for %d sources",
						i, len(r.Fractions), len(r.Optimal), len(srcs))
				}
				sum := 0.0
				for _, f := range r.Fractions {
					sum += f
				}
				if sum != 0 && math.Abs(sum-1) > 1e-9 {
					t.Fatalf("record %d: fractions sum to %v", i, sum)
				}
				granted += r.FWB + r.WB + r.IFRM + r.SFRM + r.WT
			}
			// Records hold granted credits; stats.DAPDecisions counts consumed
			// applications. Consumption implies some window granted credit.
			if rec.Run.DAP.Total() > 0 && granted == 0 {
				t.Error("techniques applied but no window granted any credit")
			}

			// Both export encodings must round out valid and non-empty.
			var jl bytes.Buffer
			if err := rec.Decisions.WriteJSONL(&jl); err != nil {
				t.Fatal(err)
			}
			for _, line := range strings.Split(strings.TrimSpace(jl.String()), "\n") {
				if !json.Valid([]byte(line)) {
					t.Fatalf("invalid JSONL line: %s", line)
				}
			}
			var csv bytes.Buffer
			if err := rec.Decisions.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			header := strings.SplitN(csv.String(), "\n", 2)[0]
			for _, col := range []string{"cycle", "fwb", "gap", "frac_" + srcs[0]} {
				if !strings.Contains(header, col) {
					t.Errorf("decision CSV header missing %q: %s", col, header)
				}
			}

			// The merged Chrome trace must stay valid JSON and carry the
			// counter tracks even with span tracing off.
			var tr bytes.Buffer
			if err := rec.WriteTrace(&tr); err != nil {
				t.Fatal(err)
			}
			if !json.Valid(tr.Bytes()) {
				t.Error("merged Chrome trace is not valid JSON")
			}
			if !bytes.Contains(tr.Bytes(), []byte(`"dap.gap"`)) {
				t.Error("merged Chrome trace missing the dap.gap counter track")
			}
		})
	}
}

// TestDecisionsSerialParallelIdentical is the parallel-runner regression:
// fanning the three architectures across eight workers must reproduce the
// serial per-window records and aggregate decision counters exactly.
func TestDecisionsSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	mix := traceableMix(2)
	sweep := func(parallel int) []Result {
		return runner.Map(parallel, len(decArchs), func(i int) Result {
			cfg := decTestConfig(decArchs[i].arch)
			cfg.Decisions = true
			return RunMix(cfg, mix)
		})
	}
	ser := sweep(1)
	par := sweep(8)
	for i := range decArchs {
		if ser[i].Abort != nil || par[i].Abort != nil {
			t.Fatalf("%s: aborted runs: serial=%v parallel=%v",
				decArchs[i].name, ser[i].Abort, par[i].Abort)
		}
		if !reflect.DeepEqual(ser[i].Run.DAP, par[i].Run.DAP) {
			t.Errorf("%s: stats.DAPDecisions differ: serial=%+v parallel=%+v",
				decArchs[i].name, ser[i].Run.DAP, par[i].Run.DAP)
		}
		if !reflect.DeepEqual(ser[i].Decisions.Records(), par[i].Decisions.Records()) {
			t.Errorf("%s: per-window decision records differ between serial and parallel runs",
				decArchs[i].name)
		}
		if !reflect.DeepEqual(ser[i].Decisions.Events(), par[i].Decisions.Events()) {
			t.Errorf("%s: policy events differ between serial and parallel runs",
				decArchs[i].name)
		}
	}
}

// TestFigGapReportsAllArchitectures smoke-checks the introspection driver:
// every (architecture, mix) point must carry a non-empty gap series with
// ordered quantiles inside [0,1].
func TestFigGapReportsAllArchitectures(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	fig := FigGap(Options{Quick: true, Parallel: 4, tiny: true})
	if len(fig.Series) != 6 {
		t.Fatalf("want 6 series, got %d", len(fig.Series))
	}
	windows, p50, p90, p99 := fig.Series[0], fig.Series[3], fig.Series[4], fig.Series[5]
	if len(windows.Values) != 3 {
		t.Fatalf("want one point per architecture, got %d: %v", len(windows.Values), windows.Names)
	}
	for i, name := range windows.Names {
		if windows.Values[i] <= 0 {
			t.Errorf("%s: no decision windows recorded", name)
		}
		if p50.Values[i] < 0 || p99.Values[i] > 1 {
			t.Errorf("%s: quantiles outside [0,1]: p50=%v p99=%v", name, p50.Values[i], p99.Values[i])
		}
		if p50.Values[i] > p90.Values[i] || p90.Values[i] > p99.Values[i] {
			t.Errorf("%s: quantiles not monotone: %v %v %v", name, p50.Values[i], p90.Values[i], p99.Values[i])
		}
	}
}

// TestDecisionsConfigValidation covers the recorder knob cross-check.
func TestDecisionsConfigValidation(t *testing.T) {
	cfg := Quick()
	cfg.DecisionsCap = 64 // without Decisions
	err := cfg.Validate()
	if err == nil {
		t.Fatal("expected a validation error")
	}
	if !strings.Contains(err.Error(), "DecisionsCap") {
		t.Errorf("validation error missing DecisionsCap: %v", err)
	}
}
