//go:build !race

package harness

// raceEnabled reports whether the race detector is compiled in. Heavy test
// sweeps consult it to shrink to race-affordable sizes (the detector slows
// simulation-bound code by an order of magnitude).
const raceEnabled = false
