package harness

import (
	"testing"

	"dap/internal/workload"
)

// TestCalibration prints the per-workload profile on the default sectored
// system (baseline and DAP) so the synthetic specs can be tuned against the
// paper's reported characteristics. Run with -v to see the table.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration table is long-running")
	}
	cfg := Default()
	cfg.WarmAccesses = 250_000
	cfg.MeasureInstr = 1_500_000

	dapCfg := cfg
	dapCfg.Policy = DAP

	t.Logf("%-16s %6s %6s %6s %7s %7s %6s %6s %6s %6s | %6s %5s %5s %5s %5s",
		"workload", "MPKI", "MShit", "tagMis", "IPCbase", "IPCdap", "NWS", "CASb", "CASd", "hitD",
		"part%", "fwb", "wb", "ifrm", "sfrm")
	for _, spec := range workload.All() {
		mix := workload.RateMix(spec, cfg.CPU.Cores)
		rb := RunMix(cfg, mix)
		rd := RunMix(dapCfg, mix)
		ipcB, ipcD := 0.0, 0.0
		for i := range rb.Cores {
			ipcB += rb.Cores[i].IPC()
			ipcD += rd.Cores[i].IPC()
		}
		nws := 0.0
		if ipcB > 0 {
			nws = ipcD / ipcB
		}
		f, w, ifr, sf := rd.DAP.Fractions()
		t.Logf("%-16s %6.1f %6.3f %6.3f %7.3f %7.3f %6.3f %6.3f %6.3f %6.3f | %6d %5.2f %5.2f %5.2f %5.2f",
			spec.Name, rb.Cores[0].MPKI(), rb.MemSide.HitRatio(), rb.MemSide.TagCacheMissRatio(),
			ipcB, ipcD, nws, rb.MainMemCASFraction(), rd.MainMemCASFraction(), rd.MemSide.HitRatio(),
			rd.DAP.Total(), f, w, ifr, sf)
	}
}
