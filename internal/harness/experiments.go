package harness

import (
	"fmt"

	"dap/internal/cache"

	"dap/internal/core"
	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/runner"
	"dap/internal/stats"
	"dap/internal/workload"
)

// Options scale the experiments: Quick shortens runs for tests and benches;
// the cmd/figures binary uses full-length runs.
type Options struct {
	Quick bool
	// Parallel caps the number of simulations a driver runs concurrently
	// (0 = GOMAXPROCS, 1 = strictly serial, the -j knob of cmd/figures).
	// Every simulation owns a private engine and results are assembled in
	// submission order, so a figure produced at any Parallel setting is
	// bit-identical to the serial one.
	Parallel int

	// Ckpt, when non-nil, resumes every driver simulation from a shared
	// warmup checkpoint: all policy/DRAM variants of the same (mix, arch,
	// warmup, seed) prefix restore from one snapshot, built single-flight
	// by whichever variant gets there first. Results are bit-identical to
	// running with Ckpt nil; only the wall clock changes.
	Ckpt *Checkpoints

	// Sampled switches every driver simulation to SMARTS interval sampling
	// (Config.Sampled): the timed region shrinks to a train of measured
	// intervals, so the figure becomes a confidence-interval-backed
	// estimate produced in a fraction of the detailed-simulation time.
	// Unlike Ckpt this trades exactness for speed; leave it off when the
	// figure must be bit-exact.
	Sampled bool

	// Decisions switches every driver simulation to partitioner decision
	// recording (Config.Decisions): each run then carries its per-window
	// optimality-gap series in Result.Decisions. Read-only, bit-identity
	// preserving; FigGap forces it on regardless of this flag.
	Decisions bool

	// tiny shrinks runs far below Quick so in-package tests can afford to
	// execute whole drivers repeatedly (e.g. the parallel-vs-serial
	// determinism sweep). Deliberately unexported: figures produced at this
	// scale are statistically meaningless.
	tiny bool
}

// run executes one driver simulation, through the warmup-checkpoint cache
// when the options carry one.
func (o Options) run(cfg Config, mix workload.Mix) Result {
	if o.Ckpt != nil {
		return RunMixCkpt(cfg, mix, o.Ckpt)
	}
	return RunMix(cfg, mix)
}

func (o Options) base() Config {
	var c Config
	switch {
	case o.tiny:
		c = Quick()
		c.WarmAccesses = 40_000
		c.MeasureInstr = 80_000
	case o.Quick:
		c = Quick()
	default:
		c = Default()
	}
	c.Sampled = o.Sampled
	c.Decisions = o.Decisions
	return c
}

// labeled pairs a configuration with its series label.
type labeled struct {
	label string
	cfg   Config
}

// mixNames extracts the x-axis labels.
func mixNames(mixes []workload.Mix) []string {
	out := make([]string, len(mixes))
	for i, m := range mixes {
		out[i] = m.Name
	}
	return out
}

func sensitiveMixes(cores int) []workload.Mix {
	var out []workload.Mix
	for _, s := range workload.Sensitive() {
		out = append(out, workload.RateMix(s, cores))
	}
	return out
}

// runMixes fans RunMix out across the worker pool, one simulation per mix,
// and returns the results in mix order.
func runMixes(o Options, cfg Config, mixes []workload.Mix) []Result {
	return runner.Map(o.Parallel, len(mixes), func(i int) Result {
		return o.run(cfg, mixes[i])
	})
}

// nws runs every (config, mix) pair and returns normalized weighted speedup
// series: WS(config)/WS(base) per mix, weighted by alone IPCs measured on
// weightCfg. All (1+len(alts))*len(mixes) simulations fan out across one
// worker pool; the alone-IPC denominators come from the process-wide
// single-flight memo, so they are simulated at most once per process.
func nws(o Options, mixes []workload.Mix, base Config, alts []labeled, weightCfg Config) []Series {
	cfgs := make([]Config, 0, 1+len(alts))
	cfgs = append(cfgs, base)
	for _, alt := range alts {
		cfgs = append(cfgs, alt.cfg)
	}
	// ws[ci*len(mixes)+mi] is the weighted speedup of cfgs[ci] on mixes[mi]
	ws := runner.Map(o.Parallel, len(cfgs)*len(mixes), func(j int) float64 {
		ci, mi := j/len(mixes), j%len(mixes)
		r := o.run(cfgs[ci], mixes[mi])
		return alone.weightedSpeedup(r, weightCfg, mixes[mi])
	})
	baseWS := ws[:len(mixes)]
	var out []Series
	for ai, alt := range alts {
		s := Series{Label: alt.label, Names: mixNames(mixes), SummaryKind: "GMEAN"}
		altWS := ws[(ai+1)*len(mixes):]
		for i := range mixes {
			v := 0.0
			if baseWS[i] > 0 {
				v = altWS[i] / baseWS[i]
			}
			s.Values = append(s.Values, v)
		}
		s.Summary = stats.GeoMean(s.Values)
		out = append(out, s)
	}
	return out
}

// Fig01 reproduces Figure 1: delivered bandwidth against target hit rate for
// the HBM DRAM cache and the eDRAM cache.
func Fig01(o Options) Figure {
	dur := mem.Cycle(4_000_000)
	if o.Quick {
		dur = 800_000
	}
	if o.tiny {
		dur = 200_000
	}
	names := make([]string, len(Figure1HitRates))
	for i, h := range Figure1HitRates {
		names[i] = fmt.Sprintf("%.0f%%", h*100)
	}
	// one kernel simulation per (architecture, hit rate) point
	points := runner.Map(o.Parallel, 2*len(Figure1HitRates), func(j int) float64 {
		arch, h := KernelArch(j/len(Figure1HitRates)), Figure1HitRates[j%len(Figure1HitRates)]
		return BandwidthKernel(arch, h, 256, dur).DeliveredGBps
	})
	dramS := Series{Label: "DRAM$", Names: names, Values: points[:len(Figure1HitRates)], SummaryKind: ""}
	edramS := Series{Label: "eDRAM$", Names: names, Values: points[len(Figure1HitRates):]}
	return Figure{
		ID:     "Fig. 1",
		Title:  "Delivered bandwidth (GB/s) vs. memory-side cache hit rate",
		Notes:  "DRAM$ saturates near the cache bandwidth past ~70% hits; eDRAM$ peaks mid-range and falls to its read-channel bandwidth at 100%",
		Series: []Series{dramS, edramS},
	}
}

// Fig02 reproduces Figure 2: doubling the eDRAM cache from 256 MB to 512 MB
// (scaled 4 MB -> 8 MB): weighted speedup and drop in miss rate.
func Fig02(o Options) Figure {
	small := o.base()
	small.Arch = SectoredEDRAM
	big := small
	big.EDRAM.CapacityBytes = small.EDRAM.CapacityBytes * 2

	mixes := sensitiveMixes(small.CPU.Cores)
	speed := nws(o, mixes, small, []labeled{{"512MB/256MB", big}}, small)[0]
	speed.Label = "speedup"

	rss := runMixes(o, small, mixes)
	rbs := runMixes(o, big, mixes)
	drop := Series{Label: "missdrop%", Names: mixNames(mixes), SummaryKind: "MEAN"}
	for i := range mixes {
		drop.Values = append(drop.Values, 100*(rbs[i].MemSide.HitRatio()-rss[i].MemSide.HitRatio()))
	}
	drop.Summary = stats.Mean(drop.Values)
	return Figure{
		ID:     "Fig. 2",
		Title:  "512 MB vs 256 MB eDRAM cache: weighted speedup and miss-rate drop (pp)",
		Series: []Series{speed, drop},
	}
}

// Fig04 reproduces Figure 4: weighted speedup from doubling the DRAM cache
// bandwidth, plus the baseline L3 MPKI of every snippet.
func Fig04(o Options) Figure {
	base := o.base()
	double := base
	double.Sectored.Array = dram.HBM204()

	var mixes []workload.Mix
	for _, s := range workload.All() {
		mixes = append(mixes, workload.RateMix(s, base.CPU.Cores))
	}
	speed := nws(o, mixes, base, []labeled{{"2x-BW", double}}, base)[0]

	rs := runMixes(o, base, mixes)
	mpki := Series{Label: "L3-MPKI", Names: mixNames(mixes), SummaryKind: "MEAN"}
	for _, r := range rs {
		sum := 0.0
		for i := range r.Cores {
			sum += r.Cores[i].MPKI()
		}
		mpki.Values = append(mpki.Values, sum/float64(len(r.Cores)))
	}
	mpki.Summary = stats.Mean(mpki.Values)
	return Figure{
		ID:     "Fig. 4",
		Title:  "Speedup from doubling DRAM cache bandwidth; baseline L3 MPKI",
		Series: []Series{speed, mpki},
	}
}

// Fig05 reproduces Figure 5: the benefit of the SRAM tag cache and its miss
// ratio.
func Fig05(o Options) Figure {
	with := o.base()
	without := with
	without.Sectored.TagCacheEntries = 0

	mixes := sensitiveMixes(with.CPU.Cores)
	speed := nws(o, mixes, without, []labeled{{"tagcache", with}}, without)[0]

	rs := runMixes(o, with, mixes)
	miss := Series{Label: "tagmiss", Names: mixNames(mixes), SummaryKind: "MEAN"}
	for _, r := range rs {
		miss.Values = append(miss.Values, r.MemSide.TagCacheMissRatio())
	}
	miss.Summary = stats.Mean(miss.Values)
	return Figure{
		ID:           "Fig. 5",
		Title:        "Weighted speedup with a tag cache; tag cache miss ratio",
		PaperSummary: 1.16,
		Series:       []Series{speed, miss},
	}
}

// Fig06 reproduces Figure 6: DAP's weighted speedup on the sectored DRAM
// cache and the normalized L3 read-miss latency.
func Fig06(o Options) Figure {
	base := o.base()
	dapCfg := base
	dapCfg.Policy = DAP

	mixes := sensitiveMixes(base.CPU.Cores)
	speed := nws(o, mixes, base, []labeled{{"DAP", dapCfg}}, base)[0]

	rbs := runMixes(o, base, mixes)
	rds := runMixes(o, dapCfg, mixes)
	lat := Series{Label: "norm-lat", Names: mixNames(mixes), SummaryKind: "MEAN"}
	for i := range mixes {
		v := 0.0
		if l := rbs[i].AvgL3ReadMissLatency(); l > 0 {
			v = rds[i].AvgL3ReadMissLatency() / l
		}
		lat.Values = append(lat.Values, v)
	}
	lat.Summary = stats.Mean(lat.Values)
	return Figure{
		ID:           "Fig. 6",
		Title:        "DAP on the sectored DRAM cache: speedup and normalized L3 read-miss latency",
		PaperSummary: 1.152,
		Series:       []Series{speed, lat},
	}
}

// Fig07 reproduces Figure 7: the mix of DAP technique applications.
func Fig07(o Options) Figure {
	dapCfg := o.base()
	dapCfg.Policy = DAP
	mixes := sensitiveMixes(dapCfg.CPU.Cores)
	names := mixNames(mixes)
	fwb := Series{Label: "FWB", Names: names, SummaryKind: "MEAN"}
	wb := Series{Label: "WB", Names: names}
	ifrm := Series{Label: "IFRM", Names: names}
	sfrm := Series{Label: "SFRM", Names: names}
	waste := Series{Label: "SFRM-waste", Names: names}
	for _, r := range runMixes(o, dapCfg, mixes) {
		f, w, i, s := r.DAP.Fractions()
		fwb.Values = append(fwb.Values, f)
		wb.Values = append(wb.Values, w)
		ifrm.Values = append(ifrm.Values, i)
		sfrm.Values = append(sfrm.Values, s)
		waste.Values = append(waste.Values, r.MemSide.SpecWastedRatio())
	}
	fwb.Summary = stats.Mean(fwb.Values)
	wb.Summary, wb.SummaryKind = stats.Mean(wb.Values), "MEAN"
	ifrm.Summary, ifrm.SummaryKind = stats.Mean(ifrm.Values), "MEAN"
	sfrm.Summary, sfrm.SummaryKind = stats.Mean(sfrm.Values), "MEAN"
	waste.Summary, waste.SummaryKind = stats.Mean(waste.Values), "MEAN"
	return Figure{
		ID:     "Fig. 7",
		Title:  "Share of DAP decisions by technique",
		Notes:  "paper means: FWB 23%, WB 40%, IFRM 12%, SFRM 25%; SFRM-waste is the dirty-hit fraction of speculative reads",
		Series: []Series{fwb, wb, ifrm, sfrm, waste},
	}
}

// Fig08 reproduces Figure 8: main-memory CAS fraction (baseline vs DAP) and
// the memory-side cache hit ratio (baseline, FWB+WB, full DAP).
func Fig08(o Options) Figure {
	base := o.base()
	fw := base
	fw.Policy = DAPFWBWB
	dapCfg := base
	dapCfg.Policy = DAP

	mixes := sensitiveMixes(base.CPU.Cores)
	names := mixNames(mixes)
	casB := Series{Label: "CAS-base", Names: names, SummaryKind: "MEAN"}
	casD := Series{Label: "CAS-dap", Names: names, SummaryKind: "MEAN"}
	hitB := Series{Label: "hit-base", Names: names, SummaryKind: "MEAN"}
	hitF := Series{Label: "hit-fwbwb", Names: names, SummaryKind: "MEAN"}
	hitD := Series{Label: "hit-dap", Names: names, SummaryKind: "MEAN"}
	rbs := runMixes(o, base, mixes)
	rfs := runMixes(o, fw, mixes)
	rds := runMixes(o, dapCfg, mixes)
	for i := range mixes {
		casB.Values = append(casB.Values, rbs[i].MainMemCASFraction())
		casD.Values = append(casD.Values, rds[i].MainMemCASFraction())
		hitB.Values = append(hitB.Values, rbs[i].MemSide.HitRatio())
		hitF.Values = append(hitF.Values, rfs[i].MemSide.HitRatio())
		hitD.Values = append(hitD.Values, rds[i].MemSide.HitRatio())
	}
	for _, s := range []*Series{&casB, &casD, &hitB, &hitF, &hitD} {
		s.Summary = stats.Mean(s.Values)
	}
	return Figure{
		ID:     "Fig. 8",
		Title:  "Main-memory CAS fraction and memory-side cache hit ratio",
		Notes:  "optimal CAS fraction is B_MM/(B_MM+B_MS$) = 0.27; paper means: CAS 9%->25%, hit 89%->80% (FWB+WB) ->73% (DAP)",
		Series: []Series{casB, casD, hitB, hitF, hitD},
	}
}

// Tab01 reproduces Table I: sensitivity of the mean DAP speedup to the
// window size W and the bandwidth-efficiency assumption E.
func Tab01(o Options) Figure {
	base := o.base()
	mixes := sensitiveMixes(base.CPU.Cores)

	var alts []labeled
	for _, w := range []mem.Cycle{32, 64, 128} {
		cfg := base
		cfg.Policy = DAP
		dc := dapConfigFor(&cfg)
		dc.Window = w
		cfg.DAPOverride = &dc
		alts = append(alts, labeled{fmt.Sprintf("W=%d", w), cfg})
	}
	for _, e := range []float64{0.50, 0.75, 1.00} {
		cfg := base
		cfg.Policy = DAP
		dc := dapConfigFor(&cfg)
		dc.Efficiency = e
		cfg.DAPOverride = &dc
		alts = append(alts, labeled{fmt.Sprintf("E=%.2f", e), cfg})
	}
	series := nws(o, mixes, base, alts, base)
	return Figure{
		ID:     "Table I",
		Title:  "DAP speedup vs window size W (E=0.75) and efficiency E (W=64)",
		Notes:  "paper: W 32/64/128 -> 1.13/1.15/1.14; E 0.50/0.75/1.00 -> 1.14/1.15/1.12",
		Series: series,
	}
}

// Fig09 reproduces Figure 9: sensitivity to main-memory latency and
// bandwidth. Each series is DAP normalized to the baseline with the same
// main memory.
func Fig09(o Options) Figure {
	mems := []struct {
		label string
		cfg   dram.Config
	}{
		{"DDR4-2400", dram.DDR4_2400()},
		{"no-I/O", dram.DDR4_2400NoIO()},
		{"LPDDR4", dram.LPDDR4_2400()},
		{"DDR4-3200", dram.DDR4_3200()},
	}
	var series []Series
	for _, mm := range mems {
		base := o.base()
		base.MainMemory = mm.cfg
		dapCfg := base
		dapCfg.Policy = DAP
		mixes := sensitiveMixes(base.CPU.Cores)
		s := nws(o, mixes, base, []labeled{{mm.label, dapCfg}}, base)[0]
		series = append(series, s)
	}
	return Figure{
		ID:     "Fig. 9",
		Title:  "DAP speedup under different main-memory technologies",
		Notes:  "paper means: default 1.152, no-I/O 1.16, LPDDR4 1.08, DDR4-3200 higher than default",
		Series: series,
	}
}

// Fig10 reproduces Figure 10: sensitivity to DRAM cache capacity (top) and
// bandwidth (bottom). Each series normalizes DAP to the baseline with the
// same cache.
func Fig10(o Options) Figure {
	var series []Series
	for _, cap := range []int{32 * mem.MiB, 64 * mem.MiB, 128 * mem.MiB} {
		base := o.base()
		base.Sectored.CapacityBytes = cap
		dapCfg := base
		dapCfg.Policy = DAP
		mixes := sensitiveMixes(base.CPU.Cores)
		s := nws(o, mixes, base, []labeled{{fmt.Sprintf("%dMB", cap/mem.MiB), dapCfg}}, base)[0]
		series = append(series, s)
	}
	for _, arr := range []dram.Config{dram.HBM102(), dram.HBM128(), dram.HBM204()} {
		base := o.base()
		base.Sectored.Array = arr
		dapCfg := base
		dapCfg.Policy = DAP
		mixes := sensitiveMixes(base.CPU.Cores)
		s := nws(o, mixes, base, []labeled{{arr.Name, dapCfg}}, base)[0]
		series = append(series, s)
	}
	return Figure{
		ID:     "Fig. 10",
		Title:  "DAP speedup vs cache capacity (2/4/8 GB scaled) and bandwidth",
		Notes:  "paper: speedup grows with capacity; shrinks with cache bandwidth (15.2% at 102.4 -> 7% at 204.8)",
		Series: series,
	}
}

// Fig11 reproduces Figure 11: comparison with SBD, SBD-WT and BATMAN.
func Fig11(o Options) Figure {
	base := o.base()
	mk := func(p Policy) Config { c := base; c.Policy = p; return c }
	mixes := sensitiveMixes(base.CPU.Cores)
	series := nws(o, mixes, base, []labeled{
		{"SBD", mk(SBD)},
		{"SBD-WT", mk(SBDWT)},
		{"BATMAN", mk(BATMAN)},
		{"DAP", mk(DAP)},
	}, base)
	return Figure{
		ID:     "Fig. 11",
		Title:  "Related proposals vs DAP (normalized weighted speedup)",
		Notes:  "paper means: SBD 0.84, SBD-WT 1.055, BATMAN ~1.0, DAP 1.152",
		Series: series,
	}
}

// Fig12 reproduces Figure 12: DAP on the full 44-workload suite, grouped by
// category and sorted by speedup within each.
func Fig12(o Options) Figure {
	base := o.base()
	dapCfg := base
	dapCfg.Policy = DAP
	mixes := workload.AllMixes(base.CPU.Cores)
	s := nws(o, mixes, base, []labeled{{"DAP", dapCfg}}, base)[0]
	return Figure{
		ID:           "Fig. 12",
		Title:        "DAP across all 44 workloads (12 sensitive, 5 insensitive, 27 heterogeneous)",
		PaperSummary: 1.13,
		Series:       []Series{s},
	}
}

// Fig13 reproduces Figure 13: DAP on a sixteen-core system with an 8 GB
// (scaled 128 MB), 204.8 GB/s cache and DDR4-3200 memory.
func Fig13(o Options) Figure {
	base := o.base()
	base.CPU.Cores = 16
	base.CPU.L3Bytes = 16 * mem.MiB
	base.MainMemory = dram.DDR4_3200()
	base.Sectored.CapacityBytes = 128 * mem.MiB
	base.Sectored.Array = dram.HBM204()
	dapCfg := base
	dapCfg.Policy = DAP
	mixes := sensitiveMixes(base.CPU.Cores)
	s := nws(o, mixes, base, []labeled{{"DAP-16c", dapCfg}}, base)[0]
	return Figure{
		ID:           "Fig. 13",
		Title:        "DAP on a 16-core system",
		PaperSummary: 1.146,
		Series:       []Series{s},
	}
}

// Fig14 reproduces Figure 14: BEAR and DAP on the Alloy cache, plus the
// main-memory CAS fraction of each.
func Fig14(o Options) Figure {
	base := o.base()
	base.Arch = AlloyCache
	bear := base
	bear.Alloy.BEAR = true
	dapCfg := base
	dapCfg.Policy = DAP

	mixes := sensitiveMixes(base.CPU.Cores)
	series := nws(o, mixes, base, []labeled{
		{"Alloy+BEAR", bear},
		{"Alloy+DAP", dapCfg},
	}, base)

	names := mixNames(mixes)
	for _, v := range []struct {
		label string
		cfg   Config
	}{{"CAS-base", base}, {"CAS-bear", bear}, {"CAS-dap", dapCfg}} {
		s := Series{Label: v.label, Names: names, SummaryKind: "MEAN"}
		for _, r := range runMixes(o, v.cfg, mixes) {
			s.Values = append(s.Values, r.MainMemCASFraction())
		}
		s.Summary = stats.Mean(s.Values)
		series = append(series, s)
	}
	return Figure{
		ID:     "Fig. 14",
		Title:  "Alloy cache: BEAR vs DAP speedups and main-memory CAS fraction",
		Notes:  "paper means: BEAR 1.22, DAP 1.29; CAS fraction 13% (base), 15% (BEAR), 43% (DAP); optimal 36%",
		Series: series,
	}
}

// Fig15 reproduces Figure 15: DAP on 256 MB and 512 MB eDRAM caches
// (scaled 4/8 MB), normalized to the 256 MB baseline, plus hit-rate deltas.
func Fig15(o Options) Figure {
	base := o.base()
	base.Arch = SectoredEDRAM
	dap256 := base
	dap256.Policy = DAP
	base512 := base
	base512.EDRAM.CapacityBytes *= 2
	dap512 := base512
	dap512.Policy = DAP

	mixes := sensitiveMixes(base.CPU.Cores)
	series := nws(o, mixes, base, []labeled{
		{"256MB+DAP", dap256},
		{"512MB", base512},
		{"512MB+DAP", dap512},
	}, base)

	names := mixNames(mixes)
	rbs := runMixes(o, base, mixes)
	for _, v := range []struct {
		label string
		cfg   Config
	}{{"dHit-256dap", dap256}, {"dHit-512", base512}, {"dHit-512dap", dap512}} {
		s := Series{Label: v.label, Names: names, SummaryKind: "MEAN"}
		for i, r := range runMixes(o, v.cfg, mixes) {
			s.Values = append(s.Values, r.MemSide.HitRatio()-rbs[i].MemSide.HitRatio())
		}
		s.Summary = stats.Mean(s.Values)
		series = append(series, s)
	}
	return Figure{
		ID:     "Fig. 15",
		Title:  "eDRAM cache: DAP at 256/512 MB and hit-rate change vs 256 MB baseline",
		Notes:  "paper: 256MB+DAP -9.5pp hits +7% perf; 512MB +4pp +2%; 512MB+DAP -6.5pp +11%",
		Series: series,
	}
}

// AblationCreditWidth sweeps the credit-counter saturation value.
func AblationCreditWidth(o Options) Figure {
	return ablateDAP(o, "credit cap", []int64{15, 63, 255, 4095}, func(dc *core.Config, v int64) {
		dc.CreditCap = v
	})
}

// AblationKApprox sweeps the precision of the hardware K approximation.
func AblationKApprox(o Options) Figure {
	return ablateDAP(o, "K denominator", []int64{1, 2, 4, 64}, func(dc *core.Config, v int64) {
		dc.MaxKDen = v
	})
}

// AblationSFRMReserve sweeps the SFRM bandwidth reserve.
func AblationSFRMReserve(o Options) Figure {
	vals := []int64{40, 60, 80, 100}
	return ablateDAP(o, "SFRM reserve %", vals, func(dc *core.Config, v int64) {
		dc.SFRMReserve = float64(v) / 100
	})
}

// AblationTechniques disables one DAP technique at a time.
func AblationTechniques(o Options) Figure {
	base := o.base()
	mixes := ablationMixes(o, base)
	mk := func(label string, f func(*core.Config)) labeled {
		cfg := base
		cfg.Policy = DAP
		dc := dapConfigFor(&cfg)
		f(&dc)
		cfg.DAPOverride = &dc
		return labeled{label, cfg}
	}
	series := nws(o, mixes, base, []labeled{
		mk("full", func(*core.Config) {}),
		mk("-FWB", func(d *core.Config) { d.Disable.FWB = true }),
		mk("-WB", func(d *core.Config) { d.Disable.WB = true }),
		mk("-IFRM", func(d *core.Config) { d.Disable.IFRM = true }),
		mk("-SFRM", func(d *core.Config) { d.Disable.SFRM = true }),
	}, base)
	return Figure{
		ID:     "Abl. T",
		Title:  "DAP with one technique disabled (normalized weighted speedup)",
		Series: series,
	}
}

// AblationLearning compares the paper's raw per-window learning against an
// exponentially smoothed (EWMA) variant.
func AblationLearning(o Options) Figure {
	base := o.base()
	mixes := ablationMixes(o, base)
	mk := func(label string, ewma bool) labeled {
		cfg := base
		cfg.Policy = DAP
		dc := dapConfigFor(&cfg)
		dc.EWMALearning = ewma
		cfg.DAPOverride = &dc
		return labeled{label, cfg}
	}
	return Figure{
		ID:     "Abl. L",
		Title:  "Window learning: raw windows (paper) vs EWMA smoothing",
		Series: nws(o, mixes, base, []labeled{mk("raw", false), mk("ewma", true)}, base),
	}
}

// AblationThreadAware compares plain IFRM with the Section IV-A thread-aware
// variant on heterogeneous mixes (where latency sensitivity differs across
// cores; rate mixes are homogeneous, so the variant is a no-op there).
func AblationThreadAware(o Options) Figure {
	base := o.base()
	n := 8
	if o.Quick {
		n = 4
	}
	mixes := workload.HeterogeneousMixes(base.CPU.Cores)[:n]
	plain := base
	plain.Policy = DAP
	aware := plain
	aware.ThreadAwareIFRM = true
	return Figure{
		ID:     "Abl. TA",
		Title:  "IFRM vs thread-aware IFRM on heterogeneous mixes",
		Series: nws(o, mixes, base, []labeled{{"IFRM", plain}, {"thread-aware", aware}}, base),
	}
}

// AblationReplacement compares sector replacement policies under DAP (the
// paper uses NRU with its states in on-die SRAM).
func AblationReplacement(o Options) Figure {
	base := o.base()
	mixes := ablationMixes(o, base)
	mk := func(label string, p cache.ReplPolicy) labeled {
		cfg := base
		cfg.Policy = DAP
		cfg.Sectored.Replacement = p
		return labeled{label, cfg}
	}
	return Figure{
		ID:    "Abl. R",
		Title: "Sector replacement policy under DAP (baseline uses NRU)",
		Series: nws(o, mixes, base, []labeled{
			mk("NRU", cache.NRU), mk("LRU", cache.LRU),
			mk("SRRIP", cache.SRRIP), mk("random", cache.Rand),
		}, base),
	}
}

// AblationFootprint measures the footprint prefetcher's contribution.
func AblationFootprint(o Options) Figure {
	base := o.base()
	mixes := ablationMixes(o, base)
	with := base
	with.Policy = DAP
	without := with
	without.Sectored.Footprint = false
	return Figure{
		ID:     "Abl. F",
		Title:  "DAP with and without the footprint prefetcher",
		Series: nws(o, mixes, base, []labeled{{"footprint", with}, {"none", without}}, base),
	}
}

// ablationMixes trims the workload list at quick scale so the ablation
// benches stay fast; full-length runs use all twelve sensitive mixes.
func ablationMixes(o Options, base Config) []workload.Mix {
	mixes := sensitiveMixes(base.CPU.Cores)
	if o.Quick {
		mixes = mixes[:6]
	}
	return mixes
}

func ablateDAP(o Options, what string, vals []int64, apply func(*core.Config, int64)) Figure {
	base := o.base()
	mixes := ablationMixes(o, base)
	var alts []labeled
	for _, v := range vals {
		cfg := base
		cfg.Policy = DAP
		dc := dapConfigFor(&cfg)
		apply(&dc, v)
		cfg.DAPOverride = &dc
		alts = append(alts, labeled{fmt.Sprintf("%s=%d", what, v), cfg})
	}
	return Figure{
		ID:     "Abl",
		Title:  "DAP sensitivity: " + what,
		Series: nws(o, mixes, base, alts, base),
	}
}
