package harness

import (
	"strings"
	"testing"

	"dap/internal/workload"
)

func quickMix() workload.Mix {
	spec, _ := workload.ByName("libquantum")
	return workload.RateMix(spec, 8)
}

func TestRunProducesSaneResult(t *testing.T) {
	r := RunMix(Quick(), quickMix())
	if r.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	if len(r.Cores) != 8 {
		t.Fatalf("cores = %d", len(r.Cores))
	}
	for i, c := range r.Cores {
		if c.Instructions == 0 || c.IPC() <= 0 || c.IPC() > 4.05 {
			t.Fatalf("core %d: %+v", i, c)
		}
	}
	if r.MSCacheCAS == 0 {
		t.Fatal("memory-side cache saw no traffic")
	}
	if f := r.MainMemCASFraction(); f < 0 || f > 1 {
		t.Fatalf("CAS fraction = %v", f)
	}
}

func TestDAPRunPartitionsUnderPressure(t *testing.T) {
	cfg := Quick()
	cfg.Policy = DAP
	r := RunMix(cfg, quickMix())
	if r.DAP.Total() == 0 {
		t.Fatal("DAP made no decisions on a bandwidth-saturated workload")
	}
	if r.MainMemCASFraction() <= 0.01 {
		t.Fatal("DAP must move traffic to main memory")
	}
}

func TestBaselineNeverPartitions(t *testing.T) {
	r := RunMix(Quick(), quickMix())
	if r.DAP.Total() != 0 {
		t.Fatal("baseline must not record DAP decisions")
	}
}

func TestArchitecturesRun(t *testing.T) {
	for _, arch := range []Arch{SectoredDRAM, AlloyCache, SectoredEDRAM, NoMSCache} {
		cfg := Quick()
		cfg.Arch = arch
		r := RunMix(cfg, quickMix())
		if r.Cycles == 0 || r.Cores[0].Instructions == 0 {
			t.Fatalf("arch %d produced empty run", arch)
		}
	}
}

func TestPoliciesRun(t *testing.T) {
	for _, p := range []Policy{Baseline, DAP, DAPFWBWB, SBD, SBDWT, BATMAN} {
		cfg := Quick()
		cfg.Policy = p
		r := RunMix(cfg, quickMix())
		if r.Cycles == 0 {
			t.Fatalf("policy %v produced empty run", p)
		}
	}
}

func TestDAPPoliciesOnAllArchitectures(t *testing.T) {
	// Each architecture gets a workload whose working set gives it the
	// paper's operating point: high hit rates, so the cache is the
	// bottleneck and partitioning engages.
	cases := []struct {
		arch Arch
		name string
	}{
		{SectoredDRAM, "libquantum"},
		{AlloyCache, "libquantum"},
		{SectoredEDRAM, "hpcg"},
	}
	for _, c := range cases {
		cfg := Quick()
		cfg.Arch = c.arch
		cfg.Policy = DAP
		spec, _ := workload.ByName(c.name)
		r := RunMix(cfg, workload.RateMix(spec, cfg.CPU.Cores))
		if r.DAP.Total() == 0 {
			t.Errorf("arch %d (%s): DAP idle under saturation", c.arch, c.name)
		}
	}
}

func TestAloneIPCPositive(t *testing.T) {
	spec, _ := workload.ByName("gcc.expr")
	v := AloneIPC(Quick(), spec)
	if v <= 0 || v > 4 {
		t.Fatalf("alone IPC = %v", v)
	}
}

func TestHeterogeneousMixRuns(t *testing.T) {
	mixes := workload.HeterogeneousMixes(8)
	r := RunMix(Quick(), mixes[0])
	if r.Cycles == 0 {
		t.Fatal("heterogeneous mix failed")
	}
}

func TestFigureString(t *testing.T) {
	f := Figure{
		ID:    "Fig. X",
		Title: "test",
		Series: []Series{
			{Label: "a", Names: []string{"w1", "w2"}, Values: []float64{1, 2}, Summary: 1.41, SummaryKind: "GMEAN"},
			{Label: "b", Names: []string{"w1", "w2"}, Values: []float64{3, 4}, Summary: 3.46, SummaryKind: "GMEAN"},
		},
		Notes: "hello",
	}
	s := f.String()
	for _, want := range []string{"Fig. X", "w1", "w2", "GMEAN", "1.410", "hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFig01Shape(t *testing.T) {
	f := Fig01(Options{Quick: true})
	if len(f.Series) != 2 {
		t.Fatalf("series = %d", len(f.Series))
	}
	dram, edram := f.Series[0].Values, f.Series[1].Values
	// DRAM cache: monotone non-decreasing with hit rate; saturates high
	if dram[5] < dram[0] || dram[5] < 80 {
		t.Fatalf("DRAM$ shape wrong: %v", dram)
	}
	// eDRAM: 100%-hit point is LOWER than the mid-range peak (the paper's
	// key observation) and equals roughly the read-channel bandwidth
	peak := 0.0
	for _, v := range edram {
		if v > peak {
			peak = v
		}
	}
	if edram[5] >= peak {
		t.Fatalf("eDRAM must lose bandwidth at 100%% hits: %v", edram)
	}
	if edram[5] < 40 || edram[5] > 55 {
		t.Fatalf("eDRAM at 100%% should deliver ~51.2 GB/s: %v", edram)
	}
}

func TestBandwidthKernelZeroHitIsMemoryBound(t *testing.T) {
	r := BandwidthKernel(KernelDRAMCache, 0, 128, 500_000)
	if r.DeliveredGBps > 38.4 {
		t.Fatalf("0%% hits cannot exceed main-memory bandwidth: %v", r.DeliveredGBps)
	}
	if r.DeliveredGBps < 25 {
		t.Fatalf("0%% hits should still stream near memory peak: %v", r.DeliveredGBps)
	}
}

func TestFigureChart(t *testing.T) {
	f := Figure{
		ID:     "Fig. C",
		Series: []Series{{Label: "x", Names: []string{"a", "bb"}, Values: []float64{1, 2}}},
	}
	c := f.Chart(0)
	if !strings.Contains(c, "bb") || !strings.Contains(c, "█") {
		t.Fatalf("chart = %q", c)
	}
	if f.Chart(5) != "" || f.Chart(-1) != "" {
		t.Fatal("out-of-range series must render empty")
	}
}
