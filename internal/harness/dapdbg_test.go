package harness

import (
	"testing"

	"dap/internal/workload"
)

func TestDAPDebug(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := Default()
	cfg.WarmAccesses = 250_000
	cfg.MeasureInstr = 1_000_000
	cfg.Policy = DAP
	for _, name := range []string{"libquantum", "hpcg", "parboil-lbm", "omnetpp", "mcf"} {
		spec, _ := workload.ByName(name)
		sys := Build(cfg, workload.RateMix(spec, cfg.CPU.Cores))
		r := sys.Run()
		d := sys.dap
		t.Logf("%-12s windows=%d part=%.3f avgAMS=%.1f avgAMM=%.2f dec/partWin=%.2f casD=%.3f msCAS=%d mmCAS=%d cyc=%d",
			name, d.Windows, float64(d.Partitioned)/float64(d.Windows),
			float64(d.SumAMS)/float64(d.Windows), float64(d.SumAMM)/float64(d.Windows),
			float64(r.DAP.Total())/float64(d.Partitioned+1),
			r.MainMemCASFraction(), r.MSCacheCAS, r.MainMemCAS, r.Cycles)
	}
}
