package harness

import (
	"dap/internal/obs"
	"dap/internal/stats"
	"dap/internal/workload"
)

// registerMetrics wires every observable subsystem into the sampler. All
// probes are read-only; registration order fixes the CSV column order.
func (s *System) registerMetrics() {
	m := s.Metrics
	if s.dap != nil {
		s.dap.RegisterMetrics(m)
	}
	if rec := s.decRec; rec != nil && s.dap != nil {
		m.Gauge("dap.gap", func() float64 {
			if last := rec.Last(); last != nil {
				return last.Gap
			}
			return 0
		})
	}
	s.MM.RegisterMetrics(m, "mm")
	switch {
	case s.sectored != nil:
		s.sectored.Device().RegisterMetrics(m, "ms")
	case s.alloy != nil:
		s.alloy.Device().RegisterMetrics(m, "ms")
	case s.edram != nil:
		s.edram.ReadDevice().RegisterMetrics(m, "ms.rd")
		s.edram.WriteDevice().RegisterMetrics(m, "ms.wr")
	}
	st := s.Ctrl.MSStats()
	m.Gauge("ms.hit_ratio", obs.WindowedRatio(
		func() uint64 { return st.ReadHits + st.WriteHits },
		func() uint64 { return st.ReadHits + st.ReadMisses + st.WriteHits + st.WriteMisses },
	))
	m.Gauge("ms.tagmiss_ratio", obs.WindowedRatio(
		func() uint64 { return st.TagCacheMisses },
		func() uint64 { return st.TagCacheHits + st.TagCacheMisses },
	))
	s.CPU.RegisterMetrics(m)
}

// FigBreakdown is an observability-layer driver (not a paper figure): it
// runs DAP with full tracing on the bandwidth-sensitive mixes and tabulates
// the mean phase latencies of L3 misses by serving source — where cycles go
// when a miss is served by the cache array versus main memory.
func FigBreakdown(o Options) Figure {
	cfg := o.base()
	cfg.Policy = DAP
	cfg.Trace = true

	mixes := sensitiveMixes(cfg.CPU.Cores)
	if o.Quick && len(mixes) > 4 {
		mixes = mixes[:4]
	}
	names := mixNames(mixes)
	mk := func(label string) Series { return Series{Label: label, Names: names, SummaryKind: "MEAN"} }
	series := []Series{
		mk("q-ms$"), mk("meta-ms$"), mk("serve-ms$"),
		mk("q-mm"), mk("meta-mm"), mk("serve-mm"),
	}
	for _, r := range runMixes(o, cfg, mixes) {
		for si, src := range []int{stats.BDSrcCache, stats.BDSrcMain} {
			p := r.Breakdown.BySource(src)
			series[si*3+0].Values = append(series[si*3+0].Values, p.Queue.Mean())
			series[si*3+1].Values = append(series[si*3+1].Values, p.Meta.Mean())
			series[si*3+2].Values = append(series[si*3+2].Values, p.Service.Mean())
		}
	}
	for i := range series {
		series[i].Summary = stats.Mean(series[i].Values)
	}
	return Figure{
		ID:     "Obs. 1",
		Title:  "L3-miss latency breakdown by serving source (cycles)",
		Notes:  "q = serving-device queue wait, meta = tag/metadata probe, serve = data service remainder",
		Series: series,
	}
}

// traceableMix returns a small mix suitable for trace demos and tests.
func traceableMix(cores int) workload.Mix {
	spec, ok := workload.ByName("mcf")
	if !ok {
		spec = workload.Sensitive()[0]
	}
	return workload.RateMix(spec, cores)
}
