package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// obsTestConfig is a heavily shortened DAP run so the determinism test can
// afford to simulate the system twice.
func obsTestConfig() Config {
	cfg := Quick()
	cfg.Policy = DAP
	cfg.WarmAccesses = 40_000
	cfg.MeasureInstr = 120_000
	return cfg
}

// TestObservabilityIsBitIdentical is the tentpole guarantee: enabling the
// tracer and the metrics sampler must not change a single measured value.
// The sampler interleaves extra read-only events and the tracer wraps
// completion callbacks, but stats.Run — every counter, histogram bucket and
// cycle count — must match the uninstrumented run exactly.
func TestObservabilityIsBitIdentical(t *testing.T) {
	mix := traceableMix(4)
	base := obsTestConfig()
	base.CPU.Cores = 4

	inst := base
	inst.Trace = true
	inst.MetricsEvery = 5_000

	plain := RunMix(base, mix)
	obsRun := RunMix(inst, mix)
	if plain.Abort != nil || obsRun.Abort != nil {
		t.Fatalf("aborted runs: plain=%v obs=%v", plain.Abort, obsRun.Abort)
	}
	if !reflect.DeepEqual(plain.Run, obsRun.Run) {
		t.Errorf("instrumented stats.Run differs from uninstrumented run")
		if plain.Cycles != obsRun.Cycles {
			t.Errorf("cycles: plain=%d obs=%d", plain.Cycles, obsRun.Cycles)
		}
	}

	// The instrumented run must actually have observed something.
	if obsRun.Metrics == nil || obsRun.Metrics.Samples() == 0 {
		t.Fatal("sampler recorded no windows")
	}
	if obsRun.Trace == nil || len(obsRun.Trace.Spans()) == 0 {
		t.Fatal("tracer recorded no spans")
	}
	if obsRun.Breakdown == nil || obsRun.Breakdown.Spans() == 0 {
		t.Fatal("latency breakdown is empty")
	}

	// Metrics CSV: credit, bandwidth and per-core series must be present.
	var csv bytes.Buffer
	if err := obsRun.Metrics.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, col := range []string{"cycle", "dap.credit.fwb", "dap.dec.sfrm", "mm.gbps", "ms.gbps", "ms.hit_ratio", "core0.ipc"} {
		if !strings.Contains(header, col) {
			t.Errorf("metrics CSV header missing %q: %s", col, header)
		}
	}

	// Chrome trace: valid JSON in the traceEvents envelope.
	var tj bytes.Buffer
	if err := obsRun.Trace.WriteChromeTrace(&tj); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(tj.Bytes()) {
		t.Error("Chrome trace is not valid JSON")
	}
	if !bytes.Contains(tj.Bytes(), []byte(`"traceEvents"`)) {
		t.Error("Chrome trace missing traceEvents envelope")
	}
}

// TestObservabilityOnAllArchitectures smoke-checks that every controller
// wires the tracer and sampler without aborting, including the
// no-cache baseline (mmOnly) path.
func TestObservabilityOnAllArchitectures(t *testing.T) {
	mix := traceableMix(2)
	for _, tc := range []struct {
		name   string
		arch   Arch
		policy Policy
	}{
		{"alloy", AlloyCache, DAP},
		{"edram", SectoredEDRAM, DAP},
		{"none", NoMSCache, Baseline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := obsTestConfig()
			cfg.CPU.Cores = 2
			cfg.Arch = tc.arch
			cfg.Policy = tc.policy
			cfg.Trace = true
			cfg.TraceSample = 4
			cfg.MetricsEvery = 10_000
			r := RunMix(cfg, mix)
			if r.Abort != nil {
				t.Fatalf("aborted: %v", r.Abort)
			}
			if len(r.Trace.Spans()) == 0 {
				t.Error("no spans traced")
			}
			if r.Metrics.Samples() == 0 {
				t.Error("no metric windows sampled")
			}
		})
	}
}

// TestObsConfigValidation covers the new knob cross-checks.
func TestObsConfigValidation(t *testing.T) {
	cfg := Quick()
	cfg.MetricsCap = 16 // without MetricsEvery
	cfg.TraceSample = 2 // without Trace
	err := cfg.Validate()
	if err == nil {
		t.Fatal("expected validation errors")
	}
	for _, want := range []string{"MetricsCap", "TraceSample"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("validation error missing %s: %v", want, err)
		}
	}
}
