package harness

import (
	"os"
	"reflect"
	"testing"
)

// allDrivers names every experiment driver in the package.
var allDrivers = []struct {
	name string
	run  func(Options) Figure
}{
	{"Fig01", Fig01}, {"Fig02", Fig02}, {"Fig04", Fig04}, {"Fig05", Fig05},
	{"Fig06", Fig06}, {"Fig07", Fig07}, {"Fig08", Fig08}, {"Tab01", Tab01},
	{"Fig09", Fig09}, {"Fig10", Fig10}, {"Fig11", Fig11}, {"Fig12", Fig12},
	{"Fig13", Fig13}, {"Fig14", Fig14}, {"Fig15", Fig15},
	{"AblCreditWidth", AblationCreditWidth}, {"AblKApprox", AblationKApprox},
	{"AblSFRMReserve", AblationSFRMReserve}, {"AblTechniques", AblationTechniques},
	{"AblLearning", AblationLearning}, {"AblThreadAware", AblationThreadAware},
	{"AblReplacement", AblationReplacement}, {"AblFootprint", AblationFootprint},
	{"FigBreakdown", FigBreakdown}, {"FigGap", FigGap},
}

// determinismSubset is the representative slice of allDrivers the default
// test sweeps: the kernel path (Fig01), runMixes + nws over two architectures
// (Fig02, Fig06), a DAP-decision driver (Fig07), an ablation with a
// DAPOverride (AblTechniques) and the traced observability driver
// (FigBreakdown). Set DAP_DETERMINISM_ALL=1 to sweep every driver instead.
var determinismSubset = map[string]bool{
	"Fig01": true, "Fig02": true, "Fig06": true, "Fig07": true,
	"AblTechniques": true, "FigBreakdown": true,
}

// TestParallelFiguresBitIdentical asserts the tentpole guarantee: a figure
// produced with eight workers is deep-equal — bit-identical floats — to the
// one produced strictly serially. Runs at tiny scale so whole drivers stay
// affordable; the scheduling paths exercised are exactly the ones full-length
// runs use.
func TestParallelFiguresBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	all := os.Getenv("DAP_DETERMINISM_ALL") == "1"
	// Under the race detector simulations run ~10x slower; keep the two
	// cheapest drivers (which still fan out through the pool and the memo)
	// so `go test -race` gets real concurrency coverage at bounded cost.
	raceSubset := map[string]bool{"Fig01": true, "FigBreakdown": true}
	for _, d := range allDrivers {
		if !all && !determinismSubset[d.name] {
			continue
		}
		if raceEnabled && !raceSubset[d.name] {
			continue
		}
		d := d
		t.Run(d.name, func(t *testing.T) {
			par := d.run(Options{Quick: true, Parallel: 8, tiny: true})
			ser := d.run(Options{Quick: true, Parallel: 1, tiny: true})
			if !reflect.DeepEqual(par, ser) {
				t.Fatalf("parallel figure differs from serial:\n--- parallel ---\n%s\n--- serial ---\n%s",
					par.String(), ser.String())
			}
		})
	}
}

// TestAloneMemoSharing asserts the process-wide alone-IPC memo serves
// repeated (config, workload) pairs from one simulation: a second identical
// driver invocation must not grow the memo.
func TestAloneMemoSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	if raceEnabled {
		t.Skip("simulation-bound; the determinism sweep covers the memo under race")
	}
	o := Options{Quick: true, Parallel: 4, tiny: true}
	Fig06(o)
	alone.mu.Lock()
	n := len(alone.m)
	alone.mu.Unlock()
	if n == 0 {
		t.Fatal("alone memo empty after a weighted-speedup driver")
	}
	Fig06(o)
	alone.mu.Lock()
	n2 := len(alone.m)
	alone.mu.Unlock()
	if n2 != n {
		t.Fatalf("memo grew on an identical rerun: %d -> %d entries", n, n2)
	}
}

// TestAloneFingerprintSeparates guards the memo key: configurations that
// change the alone-IPC denominator (cache capacity, architecture, main
// memory) must not collide, while fields that cannot affect a single-core
// alone run on the baseline policy (core count is normalized to 1) must.
func TestAloneFingerprintSeparates(t *testing.T) {
	base := Quick()
	cap := base
	cap.Sectored.CapacityBytes *= 2
	arch := base
	arch.Arch = AlloyCache
	if aloneFingerprint(base) == aloneFingerprint(cap) {
		t.Fatal("capacity change must change the fingerprint")
	}
	if aloneFingerprint(base) == aloneFingerprint(arch) {
		t.Fatal("architecture change must change the fingerprint")
	}
	cores := base
	cores.CPU.Cores = 16
	if aloneFingerprint(base) != aloneFingerprint(cores) {
		t.Fatal("core count is normalized to 1 and must not change the fingerprint")
	}
}
