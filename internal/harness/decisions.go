package harness

import (
	"io"

	"dap/internal/core"
	"dap/internal/runner"
	"dap/internal/stats"
	"dap/internal/telemetry"
)

// telemetryDecision converts a core decision record into the telemetry
// wire form (telemetry stays import-free of the simulator packages).
func telemetryDecision(rec core.DecisionRecord) telemetry.Decision {
	return telemetry.Decision{
		Cycle:       uint64(rec.Cycle),
		Window:      rec.Window,
		Gap:         rec.Gap,
		Delivered:   rec.DeliveredGBps,
		Optimal:     rec.OptimalGBps,
		Fractions:   rec.Fractions,
		OptimalFrac: rec.Optimal,
		FWB:         rec.FWB,
		WB:          rec.WB,
		IFRM:        rec.IFRM,
		SFRM:        rec.SFRM,
		WT:          rec.WT,
		Partitioned: rec.Partitioned,
	}
}

// WriteTrace writes the run's Chrome trace, merging the decision recorder's
// counter tracks (optimality gap, delivered bandwidth, access fractions)
// into the request-lifecycle span stream when decision recording was on.
// Safe with either instrument disabled.
func (r *Result) WriteTrace(w io.Writer) error {
	return r.Trace.WriteChromeTraceWith(w, r.Decisions.CounterTracks())
}

// gapSeries extracts the per-window optimality-gap values of a run.
func gapSeries(r Result) []float64 {
	recs := r.Decisions.Records()
	out := make([]float64, len(recs))
	for i, rec := range recs {
		out[i] = rec.Gap
	}
	return out
}

// FigGap is the decision-introspection driver (not a paper figure): it runs
// DAP with decision recording on one bandwidth-sensitive mix per
// architecture and tabulates the per-window optimality-gap series — how far
// each window's chosen access split fell from the Equation 3 proportional
// bound — as mean and CDF quantiles, plus the fraction of windows that
// partitioned at all. Low partitioned fractions with near-zero gaps mean
// demand rarely saturated the cache; high partitioned fractions with small
// gaps are the paper's near-optimality claim made visible per window.
func FigGap(o Options) Figure {
	base := o.base()
	base.Policy = DAP
	base.Decisions = true

	mixes := sensitiveMixes(base.CPU.Cores)
	switch {
	case o.tiny && len(mixes) > 1:
		mixes = mixes[:1]
	case o.Quick && len(mixes) > 2:
		mixes = mixes[:2]
	}
	archs := []Arch{SectoredDRAM, AlloyCache, SectoredEDRAM}

	type point struct {
		name string
		cfg  Config
	}
	var pts []point
	for _, a := range archs {
		cfg := base
		cfg.Arch = a
		for _, m := range mixes {
			pts = append(pts, point{name: a.String() + "/" + m.Name, cfg: cfg})
		}
	}

	mk := func(label string) Series {
		names := make([]string, len(pts))
		for i, p := range pts {
			names[i] = p.name
		}
		return Series{Label: label, Names: names, SummaryKind: "MEAN"}
	}
	series := []Series{
		mk("windows"), mk("part-frac"),
		mk("gap-mean"), mk("gap-p50"), mk("gap-p90"), mk("gap-p99"),
	}

	results := runner.Map(o.Parallel, len(pts), func(i int) Result {
		return o.run(pts[i].cfg, mixes[i%len(mixes)])
	})
	for _, r := range results {
		gaps := gapSeries(r)
		var part float64
		for _, rec := range r.Decisions.Records() {
			if rec.Partitioned {
				part++
			}
		}
		if len(gaps) > 0 {
			part /= float64(len(gaps))
		}
		series[0].Values = append(series[0].Values, float64(len(gaps)))
		series[1].Values = append(series[1].Values, part)
		series[2].Values = append(series[2].Values, stats.Mean(gaps))
		series[3].Values = append(series[3].Values, stats.Quantile(gaps, 0.50))
		series[4].Values = append(series[4].Values, stats.Quantile(gaps, 0.90))
		series[5].Values = append(series[5].Values, stats.Quantile(gaps, 0.99))
	}
	for i := range series {
		series[i].Summary = stats.Mean(series[i].Values)
	}
	return Figure{
		ID:     "Obs. 2",
		Title:  "DAP per-window optimality gap vs the Equation 3 bound",
		Notes:  "gap = 1 - Delivered(chosen fractions)/(sum of source bandwidths); part-frac = fraction of windows granting any credit",
		Series: series,
	}
}
