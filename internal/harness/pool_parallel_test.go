package harness

import (
	"testing"

	"dap/internal/workload"
)

// TestPoolingUnderParallelRuns is the pool-safety concurrency test: the
// request and continuation free lists introduced by the allocation-free hot
// path are strictly per-engine, so concurrent simulations must never share
// a record. Running replicated seeds of all three architectures with eight
// workers gives the race detector (make runner-race) a chance to catch any
// pooled state that leaked across engines, and — built with
// -tags dappooldebug — arms the poison checks inside every one of those
// concurrent runs. Parallel results must stay bit-identical to serial ones:
// pooling only recycles memory, it must never change recycling-visible
// order.
func TestPoolingUnderParallelRuns(t *testing.T) {
	cfg := Quick()
	cfg.WarmAccesses = 8_000
	cfg.MeasureInstr = 12_000
	cfg.Policy = DAP
	spec, _ := workload.ByName("mcf")
	mix := workload.RateMix(spec, cfg.CPU.Cores)
	seeds := 8
	if raceEnabled {
		seeds = 4 // the detector's ~10x tax; 4 concurrent runs still overlap
	}
	ipc := func(r Result) float64 {
		var sum float64
		for i := range r.Cores {
			sum += r.Cores[i].IPC()
		}
		return sum
	}
	for _, arch := range []Arch{SectoredDRAM, AlloyCache, SectoredEDRAM} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			c := cfg
			c.Arch = arch
			par, _, _ := ReplicateParallel(8, c, mix, seeds, ipc)
			ser, _, _ := ReplicateParallel(1, c, mix, seeds, ipc)
			for i := range par {
				if par[i] != ser[i] {
					t.Fatalf("seed %d: parallel IPC %v != serial IPC %v — pooled state bled across runs",
						i, par[i], ser[i])
				}
			}
		})
	}
}
