package harness

import (
	"fmt"
	"strings"
)

// Series is one plotted line/bar group of a figure.
type Series struct {
	Label  string
	Names  []string // x-axis labels (workloads, hit rates, ...)
	Values []float64
	// Summary is the paper's aggregate for the series (GMEAN or MEAN).
	Summary float64
	// SummaryKind names the aggregate ("GMEAN", "MEAN", "").
	SummaryKind string
}

// Figure is the reproduction of one table or figure.
type Figure struct {
	ID     string // "Fig. 6", "Table I", ...
	Title  string
	Series []Series
	// PaperSummary records the headline number the paper reports for this
	// experiment, for EXPERIMENTS.md (0 when not applicable).
	PaperSummary float64
	// Notes carries caveats (scaling, substitutions).
	Notes string
}

// String renders the figure as an aligned text table: one row per x-axis
// name, one column per series.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	nameW := 4
	names := f.Series[0].Names
	for _, s := range f.Series {
		if len(s.Names) > len(names) {
			names = s.Names
		}
	}
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	colW := 10
	fmt.Fprintf(&b, "%-*s", nameW+2, "")
	for _, s := range f.Series {
		l := s.Label
		if len(l) > colW {
			l = l[:colW]
		}
		fmt.Fprintf(&b, " %*s", colW, l)
	}
	b.WriteByte('\n')
	for i, n := range names {
		fmt.Fprintf(&b, "%-*s", nameW+2, n)
		for _, s := range f.Series {
			if i < len(s.Values) {
				fmt.Fprintf(&b, " %*.3f", colW, s.Values[i])
			} else {
				fmt.Fprintf(&b, " %*s", colW, "-")
			}
		}
		b.WriteByte('\n')
	}
	hasSummary := false
	for _, s := range f.Series {
		if s.SummaryKind != "" {
			hasSummary = true
		}
	}
	if hasSummary {
		fmt.Fprintf(&b, "%-*s", nameW+2, f.Series[0].SummaryKind)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %*.3f", colW, s.Summary)
		}
		b.WriteByte('\n')
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Notes)
	}
	return b.String()
}

// Chart renders one series as a horizontal ASCII bar chart, scaled to the
// series' value range — a terminal-friendly view of a figure.
func (f *Figure) Chart(seriesIdx int) string {
	if seriesIdx < 0 || seriesIdx >= len(f.Series) {
		return ""
	}
	s := f.Series[seriesIdx]
	if len(s.Values) == 0 {
		return ""
	}
	max := s.Values[0]
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		max = 1
	}
	nameW := 4
	for _, n := range s.Names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, s.Label)
	for i, v := range s.Values {
		name := ""
		if i < len(s.Names) {
			name = s.Names[i]
		}
		bar := int(v / max * 40)
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&b, "%-*s %8.3f %s\n", nameW+2, name, v, strings.Repeat("█", bar))
	}
	return b.String()
}
