package harness

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"dap/internal/ckpt"
	"dap/internal/dram"
	"dap/internal/store"
	"dap/internal/workload"
)

// Warmup checkpoints: a versioned, checksummed snapshot of the full
// post-warmup simulator state, keyed by a fingerprint of the warmup prefix
// only. Functional warmup (cpu.Warm → WarmRead/WarmWriteback) touches the
// SRAM hierarchy, the prefetchers, the workload stream cursors and the
// memory-side tag/metadata structures — and nothing else: it never advances
// the engine clock, never issues a timed DRAM request, and never consults
// the partitioning policy. The warmup state of a (config, mix, seed) triple
// therefore depends only on the fields WarmKey hashes, so every policy
// variant of the same figure point (baseline, DAP, SBD, ...) resumes from
// one shared checkpoint instead of re-running the warmup per variant.

// WarmKey fingerprints the warmup prefix of a (config, mix, seed) triple:
// the workload (mix name, per-core specs after resizing, stream seed), the
// warmup length, and every geometry knob the functional warmup can observe
// (SRAM hierarchy, prefetcher, memory-side tag structures). Runtime-only
// knobs — policy, DAP parameters, DRAM timing, latencies, observability —
// are deliberately excluded: they cannot influence warmup, and excluding
// them is what lets ablation variants share a checkpoint.
func WarmKey(cfg Config, mix workload.Mix, seed uint64) string {
	specs := mix.Specs
	if len(specs) != cfg.CPU.Cores {
		specs = resize(specs, cfg.CPU.Cores)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "mix=%s seed=%d arch=%s warm=%d", mix.Name, seed, cfg.Arch, cfg.WarmAccesses)
	for _, sp := range specs {
		fmt.Fprintf(h, " spec=%+v", sp)
	}
	c := cfg.CPU
	fmt.Fprintf(h, " cpu=%d l1=%d/%d l2=%d/%d l3=%d/%d pf=%d/%d/%d",
		c.Cores, c.L1Bytes, c.L1Ways, c.L2Bytes, c.L2Ways, c.L3Bytes, c.L3Ways,
		c.PFStreams, c.PFDegree, c.PFDistance)
	switch cfg.Arch {
	case AlloyCache:
		a := cfg.Alloy
		fmt.Fprintf(h, " alloy=%d dbc=%d/%d", a.CapacityBytes, a.DBCEntries, a.DBCWays)
	case SectoredEDRAM:
		e := cfg.EDRAM
		fmt.Fprintf(h, " edram=%d/%d/%d", e.CapacityBytes, e.SectorBytes, e.Ways)
	case NoMSCache:
		// main memory only: no memory-side structures to warm
	default:
		sc := cfg.Sectored
		fmt.Fprintf(h, " sectored=%d/%d/%d tc=%d/%d repl=%v fp=%v/%d",
			sc.CapacityBytes, sc.SectorBytes, sc.Ways,
			sc.TagCacheEntries, sc.TagCacheWays, sc.Replacement,
			sc.Footprint, sc.FootprintEntries)
	}
	return fmt.Sprintf("warm-%016x", h.Sum64())
}

// devTag fingerprints a DRAM device configuration. Device sections are
// tagged with it so a checkpoint written under one DRAM timing model is not
// applied to a variant built with another (bandwidth sweeps share a warmup
// checkpoint across DRAM configurations).
func devTag(cfg dram.Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}

// ckptDevice pairs a device with its stable section name.
type ckptDevice struct {
	name string
	dev  *dram.Device
}

func (s *System) ckptDevices() []ckptDevice {
	out := []ckptDevice{{"dram.mm", s.MM}}
	switch {
	case s.sectored != nil:
		out = append(out, ckptDevice{"dram.cache", s.sectored.Device()})
	case s.alloy != nil:
		out = append(out, ckptDevice{"dram.cache", s.alloy.Device()})
	case s.edram != nil:
		out = append(out,
			ckptDevice{"dram.cache-rd", s.edram.ReadDevice()},
			ckptDevice{"dram.cache-wr", s.edram.WriteDevice()})
	}
	return out
}

// SaveCheckpoint serializes the full simulator state after functional
// warmup: the CPU (SRAM caches, prefetchers, stream cursors), the
// memory-side cache controller, the DRAM devices, and the policy machines
// (DAP, SBD, BATMAN) when present. It must be called after Warmup and
// before the timed region; the per-component savers enforce that (no
// in-flight requests, drained DRAM queues, engine at cycle zero).
func (s *System) SaveCheckpoint() ([]byte, error) {
	if now := s.Eng.Now(); now != 0 {
		return nil, fmt.Errorf("harness: checkpoint at cycle %d; must be taken after warmup, before the timed region", now)
	}
	w := ckpt.NewWriter()
	if err := s.CPU.SaveState(w.Section("cpu")); err != nil {
		return nil, fmt.Errorf("harness: checkpoint cpu: %w", err)
	}
	switch {
	case s.sectored != nil:
		s.sectored.SaveState(w.Section("ctrl.sectored"))
	case s.alloy != nil:
		s.alloy.SaveState(w.Section("ctrl.alloy"))
	case s.edram != nil:
		s.edram.SaveState(w.Section("ctrl.edram"))
	}
	for _, cd := range s.ckptDevices() {
		e := w.Section(cd.name)
		e.U64(devTag(cd.dev.Cfg))
		if err := cd.dev.SaveState(e); err != nil {
			return nil, fmt.Errorf("harness: checkpoint %s: %w", cd.name, err)
		}
	}
	if s.dap != nil {
		s.dap.SaveState(w.Section("dap"))
	}
	if s.sectored != nil {
		if s.sectored.SBD != nil {
			s.sectored.SBD.SaveState(w.Section("sbd"))
		}
		if s.sectored.BATMAN != nil {
			s.sectored.BATMAN.SaveState(w.Section("batman"))
		}
	}
	return w.Bytes(), nil
}

// LoadCheckpoint restores a SaveCheckpoint blob into a freshly built,
// reseeded system, leaving it in exactly the state Warmup would have. The
// cpu and controller sections are mandatory for the architectures that
// have them; the device/policy sections are applied only when this
// system's matching component exists and its configuration tag agrees —
// a mismatch (a variant with different DRAM timing, or without DAP) leaves
// the freshly built component untouched, which is correct because warmup
// provably never mutates those components.
func (s *System) LoadCheckpoint(blob []byte) error {
	r, err := ckpt.NewReader(blob)
	if err != nil {
		return err
	}
	d, ok := r.Section("cpu")
	if !ok {
		return fmt.Errorf("harness: checkpoint missing cpu section")
	}
	if err := s.CPU.LoadState(d); err != nil {
		return fmt.Errorf("harness: restore cpu: %w", err)
	}
	type ctrlLoad struct {
		name string
		load func(*ckpt.Dec) error
	}
	var ctrl *ctrlLoad
	switch {
	case s.sectored != nil:
		ctrl = &ctrlLoad{"ctrl.sectored", s.sectored.LoadState}
	case s.alloy != nil:
		ctrl = &ctrlLoad{"ctrl.alloy", s.alloy.LoadState}
	case s.edram != nil:
		ctrl = &ctrlLoad{"ctrl.edram", s.edram.LoadState}
	}
	if ctrl != nil {
		d, ok := r.Section(ctrl.name)
		if !ok {
			return fmt.Errorf("harness: checkpoint missing %s section", ctrl.name)
		}
		if err := ctrl.load(d); err != nil {
			return fmt.Errorf("harness: restore %s: %w", ctrl.name, err)
		}
	}
	for _, cd := range s.ckptDevices() {
		d, ok := r.Section(cd.name)
		if !ok || d.U64() != devTag(cd.dev.Cfg) {
			continue
		}
		if err := cd.dev.LoadState(d); err != nil {
			return fmt.Errorf("harness: restore %s: %w", cd.name, err)
		}
	}
	if s.dap != nil {
		if d, ok := r.Section("dap"); ok {
			if err := s.dap.LoadState(d); err != nil {
				return fmt.Errorf("harness: restore dap: %w", err)
			}
		}
	}
	if s.sectored != nil {
		if d, ok := r.Section("sbd"); ok && s.sectored.SBD != nil {
			if err := s.sectored.SBD.LoadState(d); err != nil {
				return fmt.Errorf("harness: restore sbd: %w", err)
			}
		}
		if d, ok := r.Section("batman"); ok && s.sectored.BATMAN != nil {
			if err := s.sectored.BATMAN.LoadState(d); err != nil {
				return fmt.Errorf("harness: restore batman: %w", err)
			}
		}
	}
	return nil
}

// Checkpoints is the process-wide warmup-checkpoint cache: a single-flight
// in-memory memo (concurrent variants of the same figure point build each
// checkpoint exactly once; the rest wait and restore) optionally backed by
// a crash-safe on-disk store so checkpoints survive across processes. A
// damaged store file is quarantined by the store layer and counted as a
// miss, and a blob that fails semantic restore is dropped and rebuilt — in
// both cases the affected run silently falls back to the plain warmup.
type Checkpoints struct {
	st *store.Store // nil = in-memory only

	mu sync.Mutex
	m  map[string]*ckptEntry

	builds    atomic.Uint64
	storeHits atomic.Uint64
	loadFails atomic.Uint64
}

type ckptEntry struct {
	once sync.Once
	blob []byte
	err  error
}

// NewCheckpoints opens a checkpoint cache backed by a store under dir.
func NewCheckpoints(dir string) (*Checkpoints, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Checkpoints{st: st, m: map[string]*ckptEntry{}}, nil
}

// MemCheckpoints returns an in-memory checkpoint cache (no disk store):
// single-flight sharing within one process only.
func MemCheckpoints() *Checkpoints {
	return &Checkpoints{m: map[string]*ckptEntry{}}
}

// CkptStats are the observable cache counters.
type CkptStats struct {
	// Builds counts warmups actually executed to build a checkpoint.
	Builds uint64
	// StoreHits counts checkpoints served from the on-disk store.
	StoreHits uint64
	// LoadFailures counts blobs that failed to restore (the run fell back
	// to a plain warmup and the blob was dropped for rebuild).
	LoadFailures uint64
	// Store carries the underlying store counters, including quarantined
	// corrupt files (zero-valued when the cache is memory-only).
	Store store.Stats
}

// Stats snapshots the cache counters.
func (c *Checkpoints) Stats() CkptStats {
	s := CkptStats{
		Builds:       c.builds.Load(),
		StoreHits:    c.storeHits.Load(),
		LoadFailures: c.loadFails.Load(),
	}
	if c.st != nil {
		s.Store = c.st.Stats()
	}
	return s
}

// Builds reports how many warmups were actually executed — the single-flight
// assertion hook: N variants sharing one warm prefix must yield Builds()==1.
func (c *Checkpoints) Builds() uint64 { return c.builds.Load() }

func (c *Checkpoints) get(key string, cfg Config, mix workload.Mix, seed uint64) ([]byte, error) {
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = new(ckptEntry)
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if c.st != nil {
			if blob, ok := c.st.Get(key); ok {
				c.storeHits.Add(1)
				e.blob = blob
				return
			}
		}
		sys := Build(cfg, mix)
		sys.reseed(mix, seed)
		sys.Warmup()
		blob, err := sys.SaveCheckpoint()
		if err != nil {
			e.err = fmt.Errorf("harness: build checkpoint %s: %w", key, err)
			return
		}
		c.builds.Add(1)
		if c.st != nil {
			// Best-effort cache write: the blob is served from memory this
			// process regardless, and a missing file is just a future miss.
			_ = c.st.Put(key, blob)
		}
		e.blob = blob
	})
	return e.blob, e.err
}

func (c *Checkpoints) drop(key string) {
	c.mu.Lock()
	delete(c.m, key)
	c.mu.Unlock()
}

// restoreOrWarm brings a freshly built, reseeded system to the post-warmup
// state: restored from the shared checkpoint when possible, by running the
// warmup otherwise. Both paths leave bit-identical state, so the choice is
// purely a wall-clock optimization.
func (c *Checkpoints) restoreOrWarm(s *System, cfg Config, mix workload.Mix, seed uint64) {
	key := WarmKey(cfg, mix, seed)
	blob, err := c.get(key, cfg, mix, seed)
	if err == nil {
		if err = s.LoadCheckpoint(blob); err == nil {
			return
		}
	}
	// Version skew or semantic damage behind a valid store envelope: drop
	// the blob so the next run rebuilds it, and warm this system directly.
	c.loadFails.Add(1)
	c.drop(key)
	s.Warmup()
}

// RunMixCkpt is RunMix resuming from a shared warmup checkpoint.
func RunMixCkpt(cfg Config, mix workload.Mix, ck *Checkpoints) Result {
	return RunSeededCkpt(cfg, mix, 0, ck)
}

// RunSeededCkpt is RunSeeded resuming from a shared warmup checkpoint
// (ck == nil degrades to RunSeeded).
func RunSeededCkpt(cfg Config, mix workload.Mix, seed uint64, ck *Checkpoints) Result {
	if ck == nil {
		return RunSeeded(cfg, mix, seed)
	}
	s := Build(cfg, mix)
	s.reseed(mix, seed)
	ck.restoreOrWarm(s, cfg, mix, seed)
	if cfg.Sampled {
		return s.runSampled(ck)
	}
	return s.Measure()
}

// RunSeededCkptE is RunSeededCkpt with configuration validation and
// abnormal-end reporting (the checkpoint counterpart of RunSeededE).
func RunSeededCkptE(cfg Config, mix workload.Mix, seed uint64, ck *Checkpoints) (Result, error) {
	if ck == nil {
		return RunSeededE(cfg, mix, seed)
	}
	s, err := BuildE(cfg, mix)
	if err != nil {
		return Result{}, err
	}
	s.reseed(mix, seed)
	ck.restoreOrWarm(s, cfg, mix, seed)
	var r Result
	if cfg.Sampled {
		r = s.runSampled(ck)
	} else {
		r = s.Measure()
	}
	return r, r.Abort
}
