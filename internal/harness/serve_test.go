package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dap/internal/telemetry"
)

// TestObservabilityIsBitIdenticalWithServe extends the strict-observer bar
// to the telemetry service: a run that registers with the run registry,
// publishes every sampler window through the lock-free path AND is scraped
// over HTTP while simulating must produce a stats.Run bit-identical to an
// unserved, uninstrumented run. This is the acceptance gate for -serve —
// live monitoring can never perturb results.
func TestObservabilityIsBitIdenticalWithServe(t *testing.T) {
	mix := traceableMix(4)
	base := obsTestConfig()
	base.CPU.Cores = 4

	inst := base
	inst.MetricsEvery = 5_000

	plain := RunMix(base, mix)

	// Serve the process-wide registries — the same ones System.Run
	// publishes into — and scrape them continuously while simulating.
	srv := httptest.NewServer(telemetry.NewServer(telemetry.Default, telemetry.Runs).Handler())
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/runs", "/healthz"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("scrape %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}
	}()

	served := RunMix(inst, mix)
	close(stop)
	wg.Wait()

	if plain.Abort != nil || served.Abort != nil {
		t.Fatalf("aborted runs: plain=%v served=%v", plain.Abort, served.Abort)
	}
	if !reflect.DeepEqual(plain.Run, served.Run) {
		t.Errorf("stats.Run differs between unserved and served runs")
		if plain.Cycles != served.Cycles {
			t.Errorf("cycles: plain=%d served=%d", plain.Cycles, served.Cycles)
		}
	}
	if served.Metrics == nil || served.Metrics.Samples() == 0 {
		t.Fatal("served run sampled no windows")
	}

	// The scrape surface must have the run's series: DAP credits and the
	// run-lifecycle gauges the issue names.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"dap_credit_fwb{", "sim_run_progress_cycles{", "sim_runs_finished_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeSSEStreamDeliversWindows runs a quick instrumented simulation
// and consumes its SSE stream end to end over real HTTP: the stream must
// open with a meta event carrying the sampler's column names and deliver
// at least two sampler windows before the done event.
func TestServeSSEStreamDeliversWindows(t *testing.T) {
	cfg := obsTestConfig()
	cfg.CPU.Cores = 2
	cfg.MetricsEvery = 5_000
	mix := traceableMix(2)

	// Stream the run live: subscribe concurrently with the simulation so
	// windows arrive as the sampler closes them, then drain through done.
	srv := httptest.NewServer(telemetry.NewServer(telemetry.Default, telemetry.Runs).Handler())
	defer srv.Close()

	r := RunMix(cfg, mix)
	if r.Abort != nil {
		t.Fatalf("aborted: %v", r.Abort)
	}

	// Find the run just registered (newest tracked run).
	snaps := telemetry.Runs.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no runs tracked")
	}
	id := snaps[0].ID

	resp, err := http.Get(fmt.Sprintf("%s/runs/%d/stream", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content-type %q", ct)
	}

	var meta, windows, done int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		switch line := sc.Text(); {
		case line == "event: meta":
			meta++
		case line == "event: window":
			windows++
		case line == "event: done":
			done++
		case strings.HasPrefix(line, "data: ") && meta == 1 && windows == 0:
			if !strings.Contains(line, "dap.credit.fwb") {
				t.Errorf("meta event missing sampler columns: %s", line)
			}
			meta++ // only inspect the first data line after meta
		}
		if done > 0 {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if meta == 0 {
		t.Error("no meta event")
	}
	if windows < 2 {
		t.Errorf("stream delivered %d windows, want >= 2", windows)
	}
	if done == 0 {
		t.Error("no done event")
	}
}

// TestServeDecisionsEndpoint runs a decision-recorded simulation and reads
// its per-window series back over real HTTP: /runs/{id}/decisions must carry
// the source names and a non-empty gap series matching the run's recorder.
func TestServeDecisionsEndpoint(t *testing.T) {
	cfg := obsTestConfig()
	cfg.CPU.Cores = 2
	cfg.Decisions = true
	mix := traceableMix(2)

	srv := httptest.NewServer(telemetry.NewServer(telemetry.Default, telemetry.Runs).Handler())
	defer srv.Close()

	r := RunMix(cfg, mix)
	if r.Abort != nil {
		t.Fatalf("aborted: %v", r.Abort)
	}
	recs := r.Decisions.Records()
	if len(recs) == 0 {
		t.Fatal("run recorded no decisions")
	}

	snaps := telemetry.Runs.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no runs tracked")
	}
	id := snaps[0].ID

	resp, err := http.Get(fmt.Sprintf("%s/runs/%d/decisions", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var snap telemetry.DecisionsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total != uint64(len(recs)) {
		t.Errorf("published %d decisions, recorder holds %d", snap.Total, len(recs))
	}
	if len(snap.Series) == 0 {
		t.Fatal("empty decision series")
	}
	if !reflect.DeepEqual(snap.Sources, r.Decisions.SourceNames()) {
		t.Errorf("sources = %v, want %v", snap.Sources, r.Decisions.SourceNames())
	}
	last := snap.Series[len(snap.Series)-1]
	want := recs[len(recs)-1]
	if last.Window != want.Window || last.Gap != want.Gap {
		t.Errorf("last wire record (w=%d gap=%v) != recorder (w=%d gap=%v)",
			last.Window, last.Gap, want.Window, want.Gap)
	}
}
