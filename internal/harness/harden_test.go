package harness

import (
	"errors"
	"strings"
	"testing"

	"dap/internal/check"
	"dap/internal/faultinject"
	"dap/internal/sim"
)

// hardenConfig is a shortened configuration for the fault-injection tests:
// long enough to reach steady state, short enough to keep the suite fast.
func hardenConfig() Config {
	cfg := Quick()
	cfg.WarmAccesses = 60_000
	cfg.MeasureInstr = 150_000
	return cfg
}

// TestWatchdogDetectsWedgedMSHR: dropping every DRAM read response wedges
// all core MSHRs. Under DAP the window timer keeps the event queue alive, so
// only the forward-progress watchdog can notice — the run must abort with a
// diagnostic snapshot rather than spin to the cycle limit.
func TestWatchdogDetectsWedgedMSHR(t *testing.T) {
	cfg := hardenConfig()
	cfg.Policy = DAP
	cfg.WatchdogEvents = 10_000
	cfg.Faults = &faultinject.Plan{DropReadEvery: 1, DropReadAfter: 1000}

	r, err := RunMixE(cfg, quickMix())
	if err == nil {
		t.Fatal("run with every read response dropped completed normally")
	}
	var stall *sim.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("expected *sim.StallError, got %T: %v", err, err)
	}
	if stall.Snapshot == "" {
		t.Fatal("stall diagnostic has no snapshot")
	}
	for _, want := range []string{"core", "queued", "responses dropped"} {
		if !strings.Contains(stall.Snapshot, want) {
			t.Errorf("snapshot missing %q:\n%s", want, stall.Snapshot)
		}
	}
	if r.Abort == nil {
		t.Fatal("Result.Abort not set on aborted run")
	}
}

// TestDeadlockDetectedWhenQueueDrains: under the baseline policy there is no
// periodic timer, so a fully wedged system drains the event queue instead of
// spinning — the harness must report that as a stall too, not return a
// fictitious result.
func TestDeadlockDetectedWhenQueueDrains(t *testing.T) {
	cfg := hardenConfig()
	cfg.Faults = &faultinject.Plan{DropReadEvery: 1, DropReadAfter: 1000}

	_, err := RunMixE(cfg, quickMix())
	var stall *sim.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("expected *sim.StallError, got %T: %v", err, err)
	}
	if stall.Pending != 0 {
		t.Fatalf("deadlock diagnostic claims %d pending events", stall.Pending)
	}
	if !strings.Contains(stall.Snapshot, "mshr") {
		t.Errorf("snapshot does not show MSHR state:\n%s", stall.Snapshot)
	}
}

// TestAuditorDetectsCorruptedCredits: a corrupted DAP credit update must be
// caught by the runtime auditor within one audit window, with cycle context.
// The audit window is set below the 64-cycle DAP window so the next credit
// recomputation cannot paper over the corruption first.
func TestAuditorDetectsCorruptedCredits(t *testing.T) {
	cfg := hardenConfig()
	cfg.Policy = DAP
	cfg.Audit = true
	cfg.AuditEvery = 16
	cfg.Faults = &faultinject.Plan{CorruptCreditsAt: 100_001, CorruptCreditsBy: -(1 << 40)}

	_, err := RunMixE(cfg, quickMix())
	var ae *AuditError
	if !errors.As(err, &ae) {
		t.Fatalf("expected *AuditError, got %T: %v", err, err)
	}
	if ae.Check != "dap-credits" {
		t.Fatalf("wrong check caught the corruption: %v", ae)
	}
	if ae.Cycle < 100_001 || ae.Cycle > 100_001+64 {
		t.Fatalf("violation cycle %d not within one window of the corruption at 100001", ae.Cycle)
	}
}

// TestDelayedMetadataCompletes: delaying every metadata fetch must slow the
// run down, not wedge it — the watchdog and auditor stay quiet.
func TestDelayedMetadataCompletes(t *testing.T) {
	cfg := hardenConfig()
	cfg.Audit = true
	base := RunMix(cfg, quickMix())
	if base.Abort != nil {
		t.Fatalf("healthy run aborted: %v", base.Abort)
	}

	cfg.Faults = &faultinject.Plan{DelayMetaEvery: 1, DelayMetaCycles: 500}
	slow, err := RunMixE(cfg, quickMix())
	if err != nil {
		t.Fatalf("delayed-metadata run aborted: %v", err)
	}
	if slow.Cycles <= base.Cycles {
		t.Fatalf("delaying every metadata fetch did not cost cycles: %d vs %d", slow.Cycles, base.Cycles)
	}
}

// TestAuditModeIsNonPerturbing: the auditor observes, never steers — a run
// with audit enabled must be bit-identical to the same run without, and
// reproducible across repetitions.
func TestAuditModeIsNonPerturbing(t *testing.T) {
	cfg := hardenConfig()
	cfg.Policy = DAP
	plain := RunMix(cfg, quickMix())

	cfg.Audit = true
	a := RunMix(cfg, quickMix())
	b := RunMix(cfg, quickMix())
	for _, r := range []Result{a, b} {
		if r.Abort != nil {
			t.Fatalf("audited healthy run aborted: %v", r.Abort)
		}
		if r.Cycles != plain.Cycles || r.MSCacheCAS != plain.MSCacheCAS || r.MainMemCAS != plain.MainMemCAS {
			t.Fatalf("audit mode perturbed the run: cycles %d vs %d, CAS %d/%d vs %d/%d",
				r.Cycles, plain.Cycles, r.MSCacheCAS, r.MainMemCAS, plain.MSCacheCAS, plain.MainMemCAS)
		}
	}
	for i := range a.Cores {
		if a.Cores[i].Instructions != b.Cores[i].Instructions || a.Cores[i].Cycles != b.Cores[i].Cycles {
			t.Fatalf("audited runs diverged on core %d", i)
		}
	}
}

// TestConfigValidation: a broken configuration is rejected before any
// construction, with one diagnostic per problem and dotted field paths into
// the sub-configurations.
func TestConfigValidation(t *testing.T) {
	if err := func() error { c := Quick(); return c.Validate() }(); err != nil {
		t.Fatalf("Quick config invalid: %v", err)
	}
	if err := func() error { c := Default(); return c.Validate() }(); err != nil {
		t.Fatalf("Default config invalid: %v", err)
	}

	cfg := Quick()
	cfg.CPU.Cores = 0                                 // nested CPU problem
	cfg.MainMemory.Channels = 0                       // nested DRAM problem
	cfg.MeasureInstr = 0                              // harness-level problem
	cfg.Arch = AlloyCache                             // SBD needs the sectored cache
	cfg.Policy = SBD                                  //
	cfg.Faults = &faultinject.Plan{DelayMetaEvery: 3} // half-configured fault

	err := cfg.Validate()
	var es check.Errors
	if !errors.As(err, &es) {
		t.Fatalf("expected check.Errors, got %T: %v", err, err)
	}
	if len(es) < 5 {
		t.Fatalf("expected at least 5 diagnostics, got %d:\n%v", len(es), err)
	}
	wantFields := []string{"CPU.Cores", "MainMemory.Channels", "MeasureInstr", "Policy", "Faults"}
	for _, f := range wantFields {
		found := false
		for _, e := range es {
			if strings.HasPrefix(e.Field, f) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic for %s in:\n%v", f, err)
		}
	}

	if _, err := BuildE(cfg, quickMix()); err == nil {
		t.Fatal("BuildE accepted an invalid config")
	}
	if _, err := RunMixE(cfg, quickMix()); err == nil {
		t.Fatal("RunMixE accepted an invalid config")
	}
}

// TestWatchdogDisabled: a negative deadline turns the watchdog off — the
// wedged run then exhausts MaxCycles instead (legacy behavior, kept
// reachable on purpose for debugging the watchdog itself).
func TestWatchdogDisabled(t *testing.T) {
	cfg := hardenConfig()
	cfg.Policy = DAP
	cfg.WatchdogEvents = -1
	cfg.MaxCycles = 2_000_000 // keep the spin short
	cfg.Faults = &faultinject.Plan{DropReadEvery: 1, DropReadAfter: 1000}

	r := RunMix(cfg, quickMix())
	var stall *sim.StallError
	if errors.As(r.Abort, &stall) && stall.Pending > 0 {
		t.Fatalf("watchdog fired while disabled: %v", r.Abort)
	}
	if r.Cycles < 2_000_000 {
		t.Fatalf("disabled watchdog still cut the run short at %d cycles", r.Cycles)
	}
}
