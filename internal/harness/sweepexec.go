package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"dap/internal/jobqueue"
	"dap/internal/obs"
	"dap/internal/sim"
	"dap/internal/stats"
	"dap/internal/workload"
)

// This file wires the simulator into the durable sweep service: resolving
// job specs to configurations, deriving store keys from the configuration
// fingerprint, and executing jobs deterministically so stored results are
// byte-for-byte interchangeable with fresh runs.

// ParseArch resolves an architecture name ("sectored", "alloy", "edram",
// "none") to its enum.
func ParseArch(name string) (Arch, error) {
	for _, a := range []Arch{SectoredDRAM, AlloyCache, SectoredEDRAM, NoMSCache} {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown arch %q (want sectored|alloy|edram|none)", name)
}

// ParsePolicy resolves a policy name ("baseline", "dap", "dap-fwb-wb",
// "sbd", "sbd-wt", "batman") to its enum.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range []Policy{Baseline, DAP, DAPFWBWB, SBD, SBDWT, BATMAN} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q (want baseline|dap|dap-fwb-wb|sbd|sbd-wt|batman)", name)
}

// sweepConfig resolves a job spec to a runnable (Config, Mix) pair.
func sweepConfig(spec jobqueue.JobSpec) (Config, workload.Mix, error) {
	cfg := Default()
	if spec.Quick {
		cfg = Quick()
	}
	if spec.Cores > 0 {
		cfg.CPU.Cores = spec.Cores
	}
	if spec.Instr > 0 {
		cfg.MeasureInstr = spec.Instr
	}
	if spec.Warm > 0 {
		cfg.WarmAccesses = spec.Warm
	}
	arch, err := ParseArch(spec.Arch)
	if err != nil {
		return Config{}, workload.Mix{}, err
	}
	cfg.Arch = arch
	pol, err := ParsePolicy(spec.Policy)
	if err != nil {
		return Config{}, workload.Mix{}, err
	}
	cfg.Policy = pol
	mix, err := resolveMix(spec.Mix, cfg.CPU.Cores)
	if err != nil {
		return Config{}, workload.Mix{}, err
	}
	cfg.Sampled = spec.Sampled
	// The service always flies the black box: Flight is part of the resolved
	// configuration (rather than toggled after the fact) so SweepKey's
	// fingerprint and the fingerprint embedded in the stored result agree.
	cfg.Flight = true
	return cfg, mix, nil
}

// resolveMix finds a mix by name: first among the full suite (rate mixes
// and heterogeneous mixes), then as a bare snippet name run rate-style.
func resolveMix(name string, cores int) (workload.Mix, error) {
	for _, m := range workload.AllMixes(cores) {
		if m.Name == name {
			return m, nil
		}
	}
	if s, ok := workload.ByName(name); ok {
		return workload.RateMix(s, cores), nil
	}
	return workload.Mix{}, fmt.Errorf("unknown mix %q", name)
}

// SweepKey derives the store key of a job: the configuration fingerprint
// (which covers arch, policy, core count and run lengths — see Fingerprint)
// plus the mix name and seed. Identical requests — even from different
// sweeps or across restarts — therefore share a key and a stored result.
func SweepKey(spec jobqueue.JobSpec) string {
	cfg, mix, err := sweepConfig(spec)
	if err != nil {
		// Unresolvable specs are caught by SweepValidate before submission;
		// fall back to the spec string so the queue still has a stable key.
		return "invalid-" + spec.String()
	}
	return fmt.Sprintf("%s-%s-s%d", Fingerprint(cfg), mix.Name, spec.Seed)
}

// SweepValidate rejects specs that do not resolve to a runnable
// configuration, so malformed requests 400 at submission instead of
// dead-lettering after doomed retries.
func SweepValidate(spec jobqueue.JobSpec) error {
	_, _, err := sweepConfig(spec)
	return err
}

// SweepResult is the stored payload of one completed job: deterministic
// JSON (fixed field order, integer-exact counters) so byte identity of
// payloads is equivalent to bit identity of the simulation.
type SweepResult struct {
	Mix         string    `json:"mix"`
	Arch        string    `json:"arch"`
	Policy      string    `json:"policy"`
	Seed        uint64    `json:"seed"`
	Fingerprint string    `json:"fingerprint"`
	AggIPC      float64   `json:"agg_ipc"`
	Run         stats.Run `json:"run"`
	// Sampling carries the interval-sampling estimator's report for
	// Sampled jobs (absent on full runs).
	Sampling *SamplingReport `json:"sampling,omitempty"`
}

// SweepExecutor runs one job spec through the simulator and renders its
// SweepResult. It is the jobqueue.Executor of the sweep service. The
// context carries the job's correlation ID and logger (obs.WithCorr /
// obs.WithLogger); an aborted run comes back as an *obs.FlightError
// wrapping the cause, so the service can persist and serve the frozen
// flight recording as a postmortem.
func SweepExecutor(ctx context.Context, spec jobqueue.JobSpec) ([]byte, error) {
	return sweepExecute(ctx, spec, nil)
}

// SweepExecutorCkpt returns a jobqueue.Executor that resumes each job from
// the shared warmup-checkpoint cache: concurrent jobs differing only in
// runtime policy restore from one single-flight snapshot. Results stay
// byte-identical to SweepExecutor's.
func SweepExecutorCkpt(ck *Checkpoints) jobqueue.Executor {
	return func(ctx context.Context, spec jobqueue.JobSpec) ([]byte, error) {
		return sweepExecute(ctx, spec, ck)
	}
}

func sweepExecute(ctx context.Context, spec jobqueue.JobSpec, ck *Checkpoints) ([]byte, error) {
	cfg, mix, err := sweepConfig(spec)
	if err != nil {
		return nil, err
	}
	corr := obs.Corr(ctx)
	log := obs.LoggerFrom(ctx)
	log.Info("simulation start", "corr", corr,
		"mix", mix.Name, "arch", cfg.Arch.String(), "policy", cfg.Policy.String(),
		"seed", spec.Seed, "fingerprint", Fingerprint(cfg))
	res, err := RunSeededCkptE(cfg, mix, spec.Seed, ck)
	if err != nil {
		reason, snap := classifyAbort(err)
		log.Error("simulation aborted", "corr", corr, "reason", reason, "err", err.Error())
		if res.Flight != nil {
			dump := res.Flight.Dump(reason, snap)
			dump.Corr = corr
			dump.Key = SweepKey(spec)
			dump.Error = err.Error()
			return nil, &obs.FlightError{Dump: dump, Err: err}
		}
		return nil, err
	}
	agg := 0.0
	for i := range res.Cores {
		agg += res.Cores[i].IPC()
	}
	log.Info("simulation done", "corr", corr,
		"mix", mix.Name, "agg_ipc", agg, "cycles", uint64(res.Cycles))
	out := SweepResult{
		Mix: mix.Name, Arch: cfg.Arch.String(), Policy: cfg.Policy.String(),
		Seed: spec.Seed, Fingerprint: Fingerprint(cfg), AggIPC: agg, Run: res.Run,
		Sampling: res.Sampling,
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("encode sweep result: %w", err)
	}
	return payload, nil
}

// classifyAbort maps an abnormal run ending onto a flight-dump reason and
// extracts the engine-state snapshot captured at detection time.
func classifyAbort(err error) (reason, snapshot string) {
	var stall *sim.StallError
	if errors.As(err, &stall) {
		return "watchdog-stall", stall.Snapshot
	}
	var audit *AuditError
	if errors.As(err, &audit) {
		return "audit-violation", ""
	}
	return "run-error", ""
}

// SweepQueueConfig is the queue configuration the sweep service uses: state
// under dir, keys from the config fingerprint, validation at submission.
func SweepQueueConfig(dir string) jobqueue.Config {
	return jobqueue.Config{
		Dir:      dir,
		KeyFunc:  SweepKey,
		Validate: SweepValidate,
	}
}
