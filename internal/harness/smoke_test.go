package harness

import (
	"testing"

	"dap/internal/workload"
)

func TestSmokeKernel(t *testing.T) {
	for _, h := range Figure1HitRates {
		r := BandwidthKernel(KernelDRAMCache, h, 256, 2_000_000)
		t.Logf("dram$ hit=%.2f -> %.1f GB/s", h, r.DeliveredGBps)
	}
	for _, h := range Figure1HitRates {
		r := BandwidthKernel(KernelEDRAM, h, 256, 2_000_000)
		t.Logf("edram hit=%.2f -> %.1f GB/s", h, r.DeliveredGBps)
	}
}

func TestSmokeRun(t *testing.T) {
	cfg := Quick()
	mix := workload.RateMix(workload.Sensitive()[7], cfg.CPU.Cores) // mcf
	r := RunMix(cfg, mix)
	t.Logf("cycles=%d", r.Cycles)
	for i, c := range r.Cores {
		if i < 2 {
			t.Logf("core%d: IPC=%.3f MPKI=%.2f l3lat=%.0f", i, c.IPC(), c.MPKI(), c.AvgL3ReadMissLatency())
		}
	}
	t.Logf("MS$ hit=%.3f tagmiss=%.3f mmCASfrac=%.3f delivered=%.1fGB/s",
		r.MemSide.HitRatio(), r.MemSide.TagCacheMissRatio(), r.MainMemCASFraction(), r.DeliveredGBps)
}
