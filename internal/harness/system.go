// Package harness assembles complete simulated systems (cores + SRAM
// hierarchy + memory-side cache + main memory + partitioning policy), runs
// workloads on them, and provides one driver per table and figure of the
// paper's evaluation.
package harness

import (
	"fmt"
	"math"

	"dap/internal/core"
	"dap/internal/cpu"
	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/mscache"
	"dap/internal/policy"
	"dap/internal/sim"
	"dap/internal/stats"
	"dap/internal/workload"
)

// Arch selects the memory-side cache architecture.
type Arch int

// Architectures.
const (
	SectoredDRAM Arch = iota
	AlloyCache
	SectoredEDRAM
	NoMSCache // main memory only (sanity baselines)
)

// Policy selects the steering/partitioning policy on top of the cache.
type Policy int

// Policies.
const (
	Baseline Policy = iota
	DAP
	DAPFWBWB // DAP with only FWB+WB enabled (Figure 8's middle series)
	SBD
	SBDWT
	BATMAN
)

func (p Policy) String() string {
	switch p {
	case Baseline:
		return "baseline"
	case DAP:
		return "dap"
	case DAPFWBWB:
		return "dap-fwb-wb"
	case SBD:
		return "sbd"
	case SBDWT:
		return "sbd-wt"
	case BATMAN:
		return "batman"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config is a full system configuration.
type Config struct {
	CPU        cpu.Config
	MainMemory dram.Config

	Arch     Arch
	Sectored mscache.SectoredConfig
	Alloy    mscache.AlloyConfig
	EDRAM    mscache.EDRAMConfig

	Policy Policy
	// DAPOverride, when non-nil, replaces the architecture-derived DAP
	// parameters (Table I sensitivity and the ablations).
	DAPOverride *core.Config
	// ThreadAwareIFRM enables the Section IV-A thread-aware IFRM variant:
	// pointer-chasing (latency-sensitive) threads keep their clean hits in
	// the cache while insensitive threads' hits are bypassed first.
	ThreadAwareIFRM bool

	// WarmAccesses is the functional warmup length per core (accesses).
	WarmAccesses int
	// MeasureInstr is the timed run length per core (instructions).
	MeasureInstr uint64
	// MaxCycles aborts a runaway simulation (0 = a large default).
	MaxCycles mem.Cycle
}

// Default returns the paper's default system: eight cores, a 4 GB (scaled
// 64 MB) sectored HBM DRAM cache at 102.4 GB/s with tag cache and footprint
// prefetcher, and dual-channel DDR4-2400 main memory.
func Default() Config {
	c := Config{
		CPU:          cpu.Default(),
		MainMemory:   dram.DDR4_2400(),
		Arch:         SectoredDRAM,
		Sectored:     mscache.DefaultSectored(),
		Alloy:        mscache.DefaultAlloy(),
		EDRAM:        mscache.DefaultEDRAM(),
		Policy:       Baseline,
		WarmAccesses: 400_000,
		MeasureInstr: 3_000_000,
	}
	// the SRAM tag cache / DBC borrows one L3 way (Section V)
	c.CPU.L3Ways = 15
	return c
}

// Quick returns a shortened configuration for unit tests and -short benches.
// Warmup still covers the largest workload footprints at least once.
func Quick() Config {
	c := Default()
	c.WarmAccesses = 180_000
	c.MeasureInstr = 400_000
	return c
}

// Result captures everything one run measures.
type Result struct {
	stats.Run
	Config Config
	Mix    workload.Mix
}

// dapConfigFor derives the DAP parameters for the configured architecture.
func dapConfigFor(cfg *Config) core.Config {
	if cfg.DAPOverride != nil {
		return *cfg.DAPOverride
	}
	mmBW := cfg.MainMemory.PeakGBps()
	switch cfg.Arch {
	case AlloyCache:
		return core.DefaultConfig(core.AlloyArch,
			mscache.AlloyEffectiveGBps(cfg.Alloy.Array.PeakGBps()), mmBW)
	case SectoredEDRAM:
		return core.DefaultConfig(core.EDRAMArch, cfg.EDRAM.ReadArray.PeakGBps(), mmBW)
	default:
		return core.DefaultConfig(core.SectoredArch, cfg.Sectored.Array.PeakGBps(), mmBW)
	}
}

// mmOnly is the architecture-free backend used by NoMSCache configurations.
type mmOnly struct {
	mm *dram.Device
	st stats.MemSideStats
}

func (m *mmOnly) Read(a mem.Addr, c int, k mem.Kind, done func(mem.Cycle)) {
	m.st.ReadMisses++
	m.mm.Access(a, k, c, done)
}
func (m *mmOnly) Writeback(a mem.Addr, c int) {
	m.mm.Access(a, mem.WritebackKind, c, nil)
}
func (m *mmOnly) WarmRead(mem.Addr, int)       {}
func (m *mmOnly) WarmWriteback(mem.Addr, int)  {}
func (m *mmOnly) MSStats() *stats.MemSideStats { return &m.st }
func (m *mmOnly) CacheCAS() uint64             { return 0 }
func (m *mmOnly) ResetStats()                  { m.st = stats.MemSideStats{} }

// System is an assembled simulation ready to run.
type System struct {
	Cfg  Config
	Eng  *sim.Engine
	MM   *dram.Device
	Ctrl mscache.Controller
	CPU  *cpu.CPU
	Part core.Partitioner

	dap      *core.DAP
	sectored *mscache.Sectored
}

// Build assembles a system for the given mix.
func Build(cfg Config, mix workload.Mix) *System {
	if len(mix.Specs) != cfg.CPU.Cores {
		// allow rate mixes authored for a different core count
		mix = workload.Mix{Name: mix.Name, Specs: resize(mix.Specs, cfg.CPU.Cores)}
	}
	s := &System{Cfg: cfg, Eng: sim.New()}
	s.MM = dram.NewDevice(cfg.MainMemory, s.Eng)
	s.Part = core.Nop{}

	switch cfg.Arch {
	case NoMSCache:
		s.Ctrl = &mmOnly{mm: s.MM}
	case AlloyCache:
		ac := cfg.Alloy
		if cfg.Policy == DAP || cfg.Policy == DAPFWBWB {
			ac.BEAR = true // DAP builds on the BEAR presence bit (Section IV-B)
		}
		al := mscache.NewAlloy(ac, s.Eng, s.MM, s.Part)
		if cfg.Policy == DAP || cfg.Policy == DAPFWBWB {
			dc := dapWithPolicy(cfg, mix)
			dc.Backlog = func() (int64, int64, int64) {
				return int64(al.Device().QueueLen()), 0, int64(s.MM.QueueLen())
			}
			d := core.NewDAP(dc, s.Eng, al.Windows())
			al.SetPartitioner(d)
			s.Part, s.dap = d, d
		}
		s.Ctrl = al
	case SectoredEDRAM:
		ed := mscache.NewEDRAM(cfg.EDRAM, s.Eng, s.MM, s.Part)
		if cfg.Policy == DAP || cfg.Policy == DAPFWBWB {
			dc := dapWithPolicy(cfg, mix)
			dc.Backlog = func() (int64, int64, int64) {
				return int64(ed.ReadDevice().QueueLen()), int64(ed.WriteDevice().QueueLen()), int64(s.MM.QueueLen())
			}
			d := core.NewDAP(dc, s.Eng, ed.Windows())
			ed.SetPartitioner(d)
			s.Part, s.dap = d, d
		}
		s.Ctrl = ed
	default:
		sc := mscache.NewSectored(cfg.Sectored, s.Eng, s.MM, s.Part)
		s.sectored = sc
		switch cfg.Policy {
		case DAP, DAPFWBWB:
			dc := dapWithPolicy(cfg, mix)
			dc.Backlog = func() (int64, int64, int64) {
				return int64(sc.Device().QueueLen()), 0, int64(s.MM.QueueLen())
			}
			d := core.NewDAP(dc, s.Eng, sc.Windows())
			sc.SetPartitioner(d)
			s.Part, s.dap = d, d
		case SBD:
			sc.SBD = policy.NewSBD(false)
		case SBDWT:
			sc.SBD = policy.NewSBD(true)
		case BATMAN:
			sets := cfg.Sectored.CapacityBytes / cfg.Sectored.SectorBytes / cfg.Sectored.Ways
			sc.BATMAN = policy.NewBATMAN(sets,
				cfg.Sectored.Array.PeakGBps(), cfg.MainMemory.PeakGBps())
		}
		s.Ctrl = sc
	}

	s.CPU = cpu.New(cfg.CPU, s.Eng, s.Ctrl)
	s.CPU.SetStreams(mix.Streams())
	return s
}

func dapWithPolicy(cfg Config, mix workload.Mix) core.Config {
	dc := dapConfigFor(&cfg)
	if cfg.Policy == DAPFWBWB {
		dc.Disable.IFRM = true
		dc.Disable.SFRM = true
	}
	if cfg.ThreadAwareIFRM {
		dc.ThreadAware = true
		dc.LatencySensitive = make([]bool, len(mix.Specs))
		for i, sp := range mix.Specs {
			dc.LatencySensitive[i] = sp.ChaseFrac >= 0.2
		}
	}
	return dc
}

func resize(specs []workload.Spec, n int) []workload.Spec {
	out := make([]workload.Spec, n)
	for i := range out {
		out[i] = specs[i%len(specs)]
	}
	return out
}

// Run executes warmup plus the timed region and collects the results.
func (s *System) Run() Result {
	cfg := s.Cfg
	s.CPU.Warm(cfg.WarmAccesses)
	s.Ctrl.ResetStats()
	s.MM.ResetStats()
	if s.sectored != nil {
		s.sectored.StartBATMAN()
	}

	start := s.Eng.Now()
	s.CPU.Start(cfg.MeasureInstr)
	limit := cfg.MaxCycles
	if limit == 0 {
		limit = mem.Cycle(400 * cfg.MeasureInstr) // far beyond any plausible CPI
	}
	s.Eng.RunWhile(func() bool {
		return !s.CPU.Done() && s.Eng.Now()-start < limit
	})
	if s.dap != nil {
		s.dap.Stop()
	}

	var r Result
	r.Config = cfg
	r.Cycles = s.Eng.Now() - start
	r.Cores = s.CPU.CoreStats()
	r.MemSide = *s.Ctrl.MSStats()
	r.DAP = s.Part.Decisions()
	r.MSCacheCAS = s.Ctrl.CacheCAS()
	mmStats := s.MM.Stats()
	r.MainMemCAS = mmStats.CAS()
	r.DeliveredGBps = mem.GBPerSec((r.MSCacheCAS+r.MainMemCAS)*mem.LineBytes, r.Cycles)
	return r
}

// RunMix builds and runs in one step.
func RunMix(cfg Config, mix workload.Mix) Result {
	return Build(cfg, mix).Run()
}

// RunSeeded runs the mix with a run-level stream seed (seed 0 equals RunMix).
func RunSeeded(cfg Config, mix workload.Mix, seed uint64) Result {
	s := Build(cfg, mix)
	if seed != 0 {
		if len(mix.Specs) != cfg.CPU.Cores {
			mix = workload.Mix{Name: mix.Name, Specs: resize(mix.Specs, cfg.CPU.Cores)}
		}
		s.CPU.SetStreams(mix.StreamsSeeded(seed))
	}
	return s.Run()
}

// Replicate runs the mix over n seeds and returns the per-seed values of
// metric plus their mean and (population) standard deviation — statistical
// confidence for any reported number.
func Replicate(cfg Config, mix workload.Mix, n int, metric func(Result) float64) (vals []float64, mean, std float64) {
	for seed := 0; seed < n; seed++ {
		r := RunSeeded(cfg, mix, uint64(seed))
		vals = append(vals, metric(r))
	}
	mean = stats.Mean(vals)
	for _, v := range vals {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(vals)))
	return vals, mean, std
}

// AloneIPC measures a workload's single-core IPC on the given configuration
// (the weight denominators of weighted speedup). The returned value is for
// one copy of the spec running alone.
func AloneIPC(cfg Config, spec workload.Spec) float64 {
	cfg.CPU.Cores = 1
	mix := workload.Mix{Name: spec.Name + "-alone", Specs: []workload.Spec{spec}}
	r := RunMix(cfg, mix)
	return r.Cores[0].IPC()
}

// aloneCache memoizes alone IPCs per (config fingerprint, workload).
type aloneCache struct {
	m map[string]float64
}

func newAloneCache() *aloneCache { return &aloneCache{m: make(map[string]float64)} }

func (a *aloneCache) get(cfg Config, spec workload.Spec) float64 {
	key := fmt.Sprintf("%s|%d|%d|%v|%s", spec.Name, cfg.Arch, cfg.CPU.Cores, cfg.MeasureInstr, cfg.MainMemory.Name)
	if v, ok := a.m[key]; ok {
		return v
	}
	v := AloneIPC(cfg, spec)
	a.m[key] = v
	return v
}

// WeightedSpeedupOf computes a run's weighted speedup using alone IPCs from
// the cache (measured on cfgWeights, typically the baseline configuration).
func (a *aloneCache) weightedSpeedup(r Result, cfgWeights Config, mix workload.Mix) float64 {
	alone := make([]float64, len(r.Cores))
	specs := resize(mix.Specs, len(r.Cores))
	for i := range alone {
		alone[i] = a.get(cfgWeights, specs[i])
	}
	return r.WeightedSpeedup(alone)
}
