// Package harness assembles complete simulated systems (cores + SRAM
// hierarchy + memory-side cache + main memory + partitioning policy), runs
// workloads on them, and provides one driver per table and figure of the
// paper's evaluation.
package harness

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strings"
	"sync"

	"dap/internal/core"
	"dap/internal/cpu"
	"dap/internal/dram"
	"dap/internal/faultinject"
	"dap/internal/mem"
	"dap/internal/mscache"
	"dap/internal/obs"
	"dap/internal/policy"
	"dap/internal/runner"
	"dap/internal/sim"
	"dap/internal/stats"
	"dap/internal/telemetry"
	"dap/internal/workload"
)

// Arch selects the memory-side cache architecture.
type Arch int

// Architectures.
const (
	SectoredDRAM Arch = iota
	AlloyCache
	SectoredEDRAM
	NoMSCache // main memory only (sanity baselines)
)

// Policy selects the steering/partitioning policy on top of the cache.
type Policy int

// Policies.
const (
	Baseline Policy = iota
	DAP
	DAPFWBWB // DAP with only FWB+WB enabled (Figure 8's middle series)
	SBD
	SBDWT
	BATMAN
)

func (a Arch) String() string {
	switch a {
	case SectoredDRAM:
		return "sectored"
	case AlloyCache:
		return "alloy"
	case SectoredEDRAM:
		return "edram"
	case NoMSCache:
		return "none"
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

func (p Policy) String() string {
	switch p {
	case Baseline:
		return "baseline"
	case DAP:
		return "dap"
	case DAPFWBWB:
		return "dap-fwb-wb"
	case SBD:
		return "sbd"
	case SBDWT:
		return "sbd-wt"
	case BATMAN:
		return "batman"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config is a full system configuration.
type Config struct {
	CPU        cpu.Config
	MainMemory dram.Config

	Arch     Arch
	Sectored mscache.SectoredConfig
	Alloy    mscache.AlloyConfig
	EDRAM    mscache.EDRAMConfig

	Policy Policy
	// DAPOverride, when non-nil, replaces the architecture-derived DAP
	// parameters (Table I sensitivity and the ablations).
	DAPOverride *core.Config
	// ThreadAwareIFRM enables the Section IV-A thread-aware IFRM variant:
	// pointer-chasing (latency-sensitive) threads keep their clean hits in
	// the cache while insensitive threads' hits are bypassed first.
	ThreadAwareIFRM bool

	// WarmAccesses is the functional warmup length per core (accesses).
	WarmAccesses int
	// MeasureInstr is the timed run length per core (instructions).
	MeasureInstr uint64
	// MaxCycles aborts a runaway simulation (0 = a large default).
	MaxCycles mem.Cycle

	// Audit enables the runtime invariant auditor: every AuditEvery cycles
	// the run checks DAP credit bounds, request conservation, delivered
	// bandwidth against source peaks, and sector-cache mask consistency,
	// aborting with an AuditError on the first violation.
	Audit bool
	// AuditEvery is the audit window in cycles (0 = 4096).
	AuditEvery mem.Cycle
	// WatchdogEvents arms the forward-progress watchdog: the run aborts with
	// a sim.StallError once roughly this many consecutive events execute
	// without the slowest unfinished core retiring an instruction. 0 uses
	// DefaultWatchdogEvents; negative disables the watchdog.
	WatchdogEvents int
	// Faults, when non-nil, arms deterministic fault injection over the run
	// (dropped DRAM responses, delayed metadata fetches, corrupted DAP
	// credits) — the adversarial half of the hardening layer's test story.
	Faults *faultinject.Plan

	// MetricsEvery enables the windowed metrics sampler: every MetricsEvery
	// cycles the run samples DAP credits, technique activations, per-channel
	// bandwidth and queue depth, MS$ hit and tag-cache miss ratios, and
	// per-core IPC into Result.Metrics. 0 disables sampling. Like the
	// auditor, the sampler is read-only and leaves stats.Run bit-identical.
	MetricsEvery mem.Cycle
	// MetricsCap bounds the sampler's ring buffer in rows (0 = 4096; old
	// windows are evicted first).
	MetricsCap int
	// Trace enables the request-lifecycle tracer: sampled L3 misses are
	// stamped through queue → tag/metadata probe → DAP decision → service →
	// response and collected in Result.Trace (Chrome trace JSON export)
	// and Result.Breakdown (phase-latency histograms).
	Trace bool
	// TraceSample traces every N-th L3 read miss (≤ 1 traces all).
	TraceSample int
	// TraceCap bounds the span buffer (0 = 65536; later spans are dropped).
	TraceCap int

	// Flight enables the stall flight recorder: a bounded ring of recent
	// engine-state summaries sampled every FlightEvery executed events,
	// frozen into Result.Flight. When the run aborts (watchdog stall,
	// deadlock, audit violation, injected fault) the recording turns the
	// failure into a postmortem artifact; on a clean run it is simply
	// discarded. Like every observer it is strictly read-only: runs with
	// the recorder on yield a bit-identical stats.Run.
	Flight bool
	// FlightEvery is the sampling stride in executed events (0 = 65536).
	FlightEvery int
	// FlightCap bounds the ring in entries (0 = 192; oldest evicted first).
	FlightCap int

	// Decisions enables the partitioner decision recorder: every DAP window
	// rollover captures a versioned record of the solver's inputs (window
	// counts, K), outputs (credit refills), the implied per-source access
	// fractions, and a counterfactual optimality-gap audit against the
	// Equation 3 bound; baseline policies (SBD, BATMAN) log their own
	// adjustment events into the same stream. Collected in
	// Result.Decisions. Strictly read-only: recording leaves stats.Run
	// bit-identical (TestDecisionRecordingIsBitIdentical).
	Decisions bool
	// DecisionsCap bounds the decision ring in records (0 = 65536; oldest
	// evicted first).
	DecisionsCap int

	// Sampled enables SMARTS-style interval sampling: instead of one long
	// timed region, the run alternates functional fast-forward with short
	// measured intervals and reports per-metric means with measured 95%
	// confidence intervals (Result.Sampling). If the intervals have not
	// converged to SampleCI after SampleMax of them, the harness falls back
	// to the full timed run.
	Sampled bool
	// SampleInterval is the measured-interval length in instructions per
	// core (0 = MeasureInstr/50, at least 25_000).
	SampleInterval uint64
	// SampleFF is the functional fast-forward length between measured
	// intervals, in accesses per core (0 = 10_000).
	SampleFF int
	// SampleMin and SampleMax bound the number of measured intervals
	// (0 = 8 and 40 respectively).
	SampleMin, SampleMax int
	// SampleCI is the convergence target: the 95% confidence half-width of
	// aggregate IPC as a fraction of its mean (0 = 0.05).
	SampleCI float64
}

// DefaultWatchdogEvents is the watchdog deadline when Config.WatchdogEvents
// is zero. At typical event densities (a handful of events per busy cycle)
// it corresponds to roughly a million cycles with a core making no forward
// progress — far past any legitimate queueing delay.
const DefaultWatchdogEvents = 4_000_000

// Default returns the paper's default system: eight cores, a 4 GB (scaled
// 64 MB) sectored HBM DRAM cache at 102.4 GB/s with tag cache and footprint
// prefetcher, and dual-channel DDR4-2400 main memory.
func Default() Config {
	c := Config{
		CPU:          cpu.Default(),
		MainMemory:   dram.DDR4_2400(),
		Arch:         SectoredDRAM,
		Sectored:     mscache.DefaultSectored(),
		Alloy:        mscache.DefaultAlloy(),
		EDRAM:        mscache.DefaultEDRAM(),
		Policy:       Baseline,
		WarmAccesses: 400_000,
		MeasureInstr: 3_000_000,
	}
	// the SRAM tag cache / DBC borrows one L3 way (Section V)
	c.CPU.L3Ways = 15
	return c
}

// Quick returns a shortened configuration for unit tests and -short benches.
// Warmup still covers the largest workload footprints at least once.
func Quick() Config {
	c := Default()
	c.WarmAccesses = 180_000
	c.MeasureInstr = 400_000
	return c
}

// Result captures everything one run measures.
type Result struct {
	stats.Run
	Config Config
	Mix    workload.Mix
	// Abort is non-nil when the run ended abnormally: a *sim.StallError from
	// the forward-progress watchdog or deadlock detector, or an *AuditError
	// from the runtime invariant auditor. Figures built from an aborted run
	// would be fiction, so drivers must check it (RunMixE does).
	Abort error

	// Metrics holds the windowed time series (nil unless Config.MetricsEvery
	// > 0). Export with WriteCSV/WriteJSONL.
	Metrics *obs.Sampler
	// Trace holds the sampled request-lifecycle spans (nil unless
	// Config.Trace). Export with WriteChromeTrace.
	Trace *obs.Tracer
	// Breakdown aggregates traced L3-miss phase latencies by serving source
	// and DAP technique (nil unless Config.Trace). It lives here rather
	// than inside stats.Run so instrumented runs keep a bit-identical Run.
	Breakdown *stats.LatencyBreakdown
	// Flight holds the stall flight recording (nil unless Config.Flight).
	// On an aborted run, freeze it with Flight.Dump for the postmortem.
	Flight *obs.FlightRecorder
	// Decisions holds the per-window partitioner decision records and
	// baseline policy events (nil unless Config.Decisions). Export with
	// Decisions.WriteCSV/WriteJSONL, or WriteTrace to merge its counter
	// tracks into the Chrome trace.
	Decisions *core.DecisionRecorder
	// Sampling reports the interval-sampling estimator when the run executed
	// in Sampled mode: interval count, convergence, and 95% confidence
	// intervals for the headline metrics. It is nil for full runs; on a
	// sampled run that failed to converge, the harness falls back to the
	// full timed run and returns its numbers with Sampling.FellBack set.
	Sampling *SamplingReport
}

// dapConfigFor derives the DAP parameters for the configured architecture.
func dapConfigFor(cfg *Config) core.Config {
	if cfg.DAPOverride != nil {
		return *cfg.DAPOverride
	}
	mmBW := cfg.MainMemory.PeakGBps()
	switch cfg.Arch {
	case AlloyCache:
		return core.DefaultConfig(core.AlloyArch,
			mscache.AlloyEffectiveGBps(cfg.Alloy.Array.PeakGBps()), mmBW)
	case SectoredEDRAM:
		return core.DefaultConfig(core.EDRAMArch, cfg.EDRAM.ReadArray.PeakGBps(), mmBW)
	default:
		return core.DefaultConfig(core.SectoredArch, cfg.Sectored.Array.PeakGBps(), mmBW)
	}
}

// mmOnly is the architecture-free backend used by NoMSCache configurations.
type mmOnly struct {
	mm *dram.Device
	st stats.MemSideStats
	tr *obs.Tracer
}

func (m *mmOnly) Read(a mem.Addr, c int, k mem.Kind, done func(mem.Cycle)) {
	m.st.ReadMisses++
	sp := m.tr.Read(c, a, k)
	sp.Serve(stats.BDSrcMain)
	m.mm.AccessTraced(a, k, c, obs.OnIssue(sp), sp.Wrap(done))
}
func (m *mmOnly) Writeback(a mem.Addr, c int) {
	m.mm.Access(a, mem.WritebackKind, c, nil)
}
func (m *mmOnly) WarmRead(mem.Addr, int)       {}
func (m *mmOnly) WarmWriteback(mem.Addr, int)  {}
func (m *mmOnly) MSStats() *stats.MemSideStats { return &m.st }
func (m *mmOnly) CacheCAS() uint64             { return 0 }
func (m *mmOnly) ResetStats()                  { m.st = stats.MemSideStats{} }
func (m *mmOnly) SetTracer(t *obs.Tracer)      { m.tr = t }

// System is an assembled simulation ready to run.
type System struct {
	Cfg  Config
	Eng  *sim.Engine
	MM   *dram.Device
	Ctrl mscache.Controller
	CPU  *cpu.CPU
	Part core.Partitioner

	// Metrics, Trace and Flight are the observability instruments (nil when
	// the corresponding Config knob is off); Run hands them to the Result.
	Metrics *obs.Sampler
	Trace   *obs.Tracer
	Flight  *obs.FlightRecorder
	decRec  *core.DecisionRecorder

	dap      *core.DAP
	sectored *mscache.Sectored
	alloy    *mscache.Alloy
	edram    *mscache.EDRAM
	inj      *faultinject.Injector
	counts   *reqCounter

	mixName string
	mix     workload.Mix // resized to Cores; kept for the sampled-run fallback
	seed    uint64
}

// Build assembles a system for the given mix.
func Build(cfg Config, mix workload.Mix) *System {
	if len(mix.Specs) != cfg.CPU.Cores {
		// allow rate mixes authored for a different core count
		mix = workload.Mix{Name: mix.Name, Specs: resize(mix.Specs, cfg.CPU.Cores)}
	}
	s := &System{Cfg: cfg, Eng: sim.New(), mixName: mix.Name, mix: mix}
	s.MM = dram.NewDevice(cfg.MainMemory, s.Eng)
	s.Part = core.Nop{}

	switch cfg.Arch {
	case NoMSCache:
		s.Ctrl = &mmOnly{mm: s.MM}
	case AlloyCache:
		ac := cfg.Alloy
		if cfg.Policy == DAP || cfg.Policy == DAPFWBWB {
			ac.BEAR = true // DAP builds on the BEAR presence bit (Section IV-B)
		}
		al := mscache.NewAlloy(ac, s.Eng, s.MM, s.Part)
		s.alloy = al
		if cfg.Policy == DAP || cfg.Policy == DAPFWBWB {
			dc := dapWithPolicy(cfg, mix)
			dc.Backlog = func() (int64, int64, int64) {
				return int64(al.Device().QueueLen()), 0, int64(s.MM.QueueLen())
			}
			d := core.NewDAP(dc, s.Eng, al.Windows())
			al.SetPartitioner(d)
			s.Part, s.dap = d, d
		}
		s.Ctrl = al
	case SectoredEDRAM:
		ed := mscache.NewEDRAM(cfg.EDRAM, s.Eng, s.MM, s.Part)
		s.edram = ed
		if cfg.Policy == DAP || cfg.Policy == DAPFWBWB {
			dc := dapWithPolicy(cfg, mix)
			dc.Backlog = func() (int64, int64, int64) {
				return int64(ed.ReadDevice().QueueLen()), int64(ed.WriteDevice().QueueLen()), int64(s.MM.QueueLen())
			}
			d := core.NewDAP(dc, s.Eng, ed.Windows())
			ed.SetPartitioner(d)
			s.Part, s.dap = d, d
		}
		s.Ctrl = ed
	default:
		sc := mscache.NewSectored(cfg.Sectored, s.Eng, s.MM, s.Part)
		s.sectored = sc
		switch cfg.Policy {
		case DAP, DAPFWBWB:
			dc := dapWithPolicy(cfg, mix)
			dc.Backlog = func() (int64, int64, int64) {
				return int64(sc.Device().QueueLen()), 0, int64(s.MM.QueueLen())
			}
			d := core.NewDAP(dc, s.Eng, sc.Windows())
			sc.SetPartitioner(d)
			s.Part, s.dap = d, d
		case SBD:
			sc.SBD = policy.NewSBD(false)
		case SBDWT:
			sc.SBD = policy.NewSBD(true)
		case BATMAN:
			sets := cfg.Sectored.CapacityBytes / cfg.Sectored.SectorBytes / cfg.Sectored.Ways
			sc.BATMAN = policy.NewBATMAN(sets,
				cfg.Sectored.Array.PeakGBps(), cfg.MainMemory.PeakGBps())
		}
		s.Ctrl = sc
	}

	if cfg.Faults != nil {
		s.inj = faultinject.New(*cfg.Faults)
		hook := s.inj.DeviceHook()
		s.MM.Fault = hook
		for _, d := range s.devices()[1:] { // cache-side devices
			d.Fault = hook
		}
	}
	backend := s.Ctrl
	if cfg.Audit {
		// count requests through the controller boundary so the auditor can
		// check conservation (issued == completed + in-flight) and catch
		// double completions; a pure pass-through, so audited and unaudited
		// runs stay bit-identical.
		s.counts = &reqCounter{inner: s.Ctrl, eng: s.Eng}
		backend = s.counts
	}
	s.CPU = cpu.New(cfg.CPU, s.Eng, backend)
	s.CPU.SetStreams(mix.Streams())

	if cfg.Trace {
		s.Trace = obs.NewTracer(s.Eng.Clock(), cfg.TraceSample, cfg.TraceCap)
		s.setTracer(s.Trace)
	}
	if cfg.Decisions {
		// Wired before the sampler so registerMetrics can export the live
		// optimality gap as a dap.gap probe.
		s.decRec = core.NewDecisionRecorder(cfg.DecisionsCap)
		if s.dap != nil {
			s.dap.SetRecorder(s.decRec)
		}
		if s.sectored != nil {
			s.sectored.SetDecisionRecorder(s.decRec)
		}
	}
	if cfg.MetricsEvery > 0 {
		s.Metrics = obs.NewSampler(s.Eng.Clock(), s.Eng.After, s.Eng.Pending,
			cfg.MetricsEvery, cfg.MetricsCap)
		s.registerMetrics()
	}
	if cfg.Flight {
		s.Flight = obs.NewFlightRecorder(cfg.FlightCap)
	}
	return s
}

// setTracer attaches the lifecycle tracer to whichever controller backs the
// system (all controllers and mmOnly implement the optional interface).
func (s *System) setTracer(t *obs.Tracer) {
	if c, ok := s.Ctrl.(interface{ SetTracer(*obs.Tracer) }); ok {
		c.SetTracer(t)
	}
}

// devices lists every bandwidth source in the system, main memory first.
func (s *System) devices() []*dram.Device {
	devs := []*dram.Device{s.MM}
	switch {
	case s.sectored != nil:
		devs = append(devs, s.sectored.Device())
	case s.alloy != nil:
		devs = append(devs, s.alloy.Device())
	case s.edram != nil:
		devs = append(devs, s.edram.ReadDevice(), s.edram.WriteDevice())
	}
	return devs
}

// BuildE validates the configuration and assembles a system, returning
// structured diagnostics (check.Errors) instead of panicking downstream.
func BuildE(cfg Config, mix workload.Mix) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return Build(cfg, mix), nil
}

func dapWithPolicy(cfg Config, mix workload.Mix) core.Config {
	dc := dapConfigFor(&cfg)
	if cfg.Policy == DAPFWBWB {
		dc.Disable.IFRM = true
		dc.Disable.SFRM = true
	}
	if cfg.ThreadAwareIFRM {
		dc.ThreadAware = true
		dc.LatencySensitive = make([]bool, len(mix.Specs))
		for i, sp := range mix.Specs {
			dc.LatencySensitive[i] = sp.ChaseFrac >= 0.2
		}
	}
	return dc
}

func resize(specs []workload.Spec, n int) []workload.Spec {
	out := make([]workload.Spec, n)
	for i := range out {
		out[i] = specs[i%len(specs)]
	}
	return out
}

// Run executes warmup plus the timed region and collects the results.
// Sampled configurations route through the interval-sampling estimator.
func (s *System) Run() Result {
	s.Warmup()
	if s.Cfg.Sampled {
		return s.runSampled(nil)
	}
	return s.Measure()
}

// Warmup executes the functional warmup: WarmAccesses accesses per core
// stream through the SRAM hierarchy and the memory-side tags without
// advancing the engine clock. The post-warmup state is exactly what
// SaveCheckpoint captures and LoadCheckpoint restores, so
// Warmup-then-Measure and restore-then-Measure are bit-identical.
func (s *System) Warmup() {
	s.CPU.Warm(s.Cfg.WarmAccesses)
}

// Measure runs the timed region on an already-warm system and collects the
// results. Run = Warmup + Measure; checkpoint-aware entry points swap the
// Warmup for a LoadCheckpoint.
func (s *System) Measure() Result {
	cfg := s.Cfg
	s.Ctrl.ResetStats()
	s.MM.ResetStats()
	if s.sectored != nil {
		s.sectored.StartBATMAN()
	}

	start := s.Eng.Now()
	limit := cfg.MaxCycles
	if limit == 0 {
		limit = mem.Cycle(400 * cfg.MeasureInstr) // far beyond any plausible CPI
	}

	// Register the run with the process-wide telemetry layer. Registration,
	// per-window publication and the final Finish are all strict observers:
	// they copy already-computed values behind lock-free handles, so a
	// scraped run stays bit-identical to an unobserved one (the telemetry
	// variant of TestObservabilityIsBitIdentical enforces this).
	run := telemetry.Runs.Start(telemetry.RunInfo{
		Mix:         s.mixName,
		Arch:        cfg.Arch.String(),
		Policy:      cfg.Policy.String(),
		Fingerprint: Fingerprint(cfg),
		Seed:        s.seed,
		Horizon:     uint64(limit),
	})
	if s.Metrics != nil {
		run.SetColumns(s.Metrics.Names())
		s.Metrics.OnWindow(func(w obs.Window) {
			run.Progress(uint64(w.Cycle - start))
			run.Publish(uint64(w.Cycle), w.Values)
		})
	}
	if s.decRec != nil {
		run.SetDecisionSources(s.decRec.SourceNames())
		// Replay the warmup-phase backlog before subscribing so the served
		// series covers the same windows the recorder holds.
		for _, rec := range s.decRec.Records() {
			run.PublishDecision(telemetryDecision(rec))
		}
		s.decRec.OnRecord(func(rec core.DecisionRecord) {
			run.PublishDecision(telemetryDecision(rec))
		})
	}

	s.CPU.Start(cfg.MeasureInstr)
	if s.Metrics != nil {
		s.Metrics.Start()
	}
	if wd := cfg.WatchdogEvents; wd >= 0 {
		if wd == 0 {
			wd = DefaultWatchdogEvents
		}
		s.Eng.SetWatchdog(wd, s.CPU.ProgressFingerprint, s.snapshot)
	}
	if cfg.Audit {
		s.startAudit()
	}
	if s.Flight != nil {
		every := cfg.FlightEvery
		if every == 0 {
			every = 65536
		}
		s.Eng.SetFlightSampler(every, s.flightSample)
		s.Flight.Addf(s.Eng.Now(), "measure-start mix=%s arch=%s policy=%s horizon=%d events",
			s.mixName, cfg.Arch, cfg.Policy, limit)
	}
	if s.inj != nil && s.dap != nil {
		s.inj.ArmCreditFault(s.Eng.After, s.dap)
	}
	s.Eng.RunWhile(func() bool {
		return !s.CPU.Done() && s.Eng.Now()-start < limit
	})
	if s.dap != nil {
		s.dap.Stop()
	}
	if s.Metrics != nil {
		s.Metrics.Stop()
	}

	var r Result
	r.Config = cfg
	r.Metrics = s.Metrics
	r.Trace = s.Trace
	r.Breakdown = s.Trace.Breakdown()
	r.Abort = s.Eng.Err()
	if r.Abort == nil && !s.CPU.Done() && s.Eng.Pending() == 0 {
		// The event queue drained with instructions still unretired: a true
		// deadlock (e.g. every response to a wedged MSHR was dropped). The
		// watchdog never fires here — no events execute — so detect it
		// directly.
		r.Abort = &sim.StallError{Cycle: s.Eng.Now(), Pending: 0, Snapshot: s.snapshot()}
	}
	if s.Flight != nil {
		if r.Abort != nil {
			s.Flight.Addf(s.Eng.Now(), "run-aborted pending=%d", s.Eng.Pending())
		} else {
			s.Flight.Add(s.Eng.Now(), "run-complete")
		}
		r.Flight = s.Flight
	}
	r.Decisions = s.decRec
	r.Cycles = s.Eng.Now() - start
	r.Cores = s.CPU.CoreStats()
	r.MemSide = *s.Ctrl.MSStats()
	r.DAP = s.Part.Decisions()
	r.MSCacheCAS = s.Ctrl.CacheCAS()
	mmStats := s.MM.Stats()
	r.MainMemCAS = mmStats.CAS()
	r.DeliveredGBps = mem.GBPerSec((r.MSCacheCAS+r.MainMemCAS)*mem.LineBytes, r.Cycles)

	run.Progress(uint64(r.Cycles))
	var aggIPC float64
	for i := range r.Cores {
		aggIPC += r.Cores[i].IPC()
	}
	run.Finish(r.Abort, map[string]float64{
		"ipc":            aggIPC,
		"cycles":         float64(r.Cycles),
		"delivered_gbps": r.DeliveredGBps,
	})
	return r
}

// flightSample is the engine's periodic flight-recorder feed: one compact
// line of system state per sample — enough to see queue growth, credit
// drift or frozen CPU progress across the ring's history without the cost
// of a full snapshot per sample.
func (s *System) flightSample(c mem.Cycle) {
	var b strings.Builder
	fmt.Fprintf(&b, "pending=%d progress=%d", s.Eng.Pending(), s.CPU.ProgressFingerprint())
	for _, d := range s.devices() {
		fmt.Fprintf(&b, " q[%s]=%d", d.Cfg.Name, d.QueueLen())
	}
	if s.dap != nil {
		fwb, wb, ifrm, sfrm, wt := s.dap.Credits()
		fmt.Fprintf(&b, " credits=fwb:%d,wb:%d,ifrm:%d,sfrm:%d,wt:%d", fwb, wb, ifrm, sfrm, wt)
	}
	s.Flight.Add(c, b.String())
}

// snapshot captures the simulation state for a stall or audit diagnostic:
// engine position, per-core progress and queue state, per-device queue
// occupancies, and (when present) DAP credits and injected-fault counts.
func (s *System) snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d, %d pending events\n", s.Eng.Now(), s.Eng.Pending())
	if s.counts != nil {
		fmt.Fprintf(&b, "memory requests: %d issued, %d completed, %d in flight\n",
			s.counts.Issued, s.counts.Completed, s.counts.InFlight())
	}
	b.WriteString(s.CPU.Snapshot())
	b.WriteByte('\n')
	for i, d := range s.devices() {
		name := d.Cfg.Name
		if i == 0 {
			name = "main memory (" + name + ")"
		}
		fmt.Fprintf(&b, "  %s: %d queued\n", name, d.QueueLen())
	}
	if s.dap != nil {
		fwb, wb, ifrm, sfrm, wt := s.dap.Credits()
		fmt.Fprintf(&b, "  dap credits: fwb %d, wb %d, ifrm %d, sfrm %d, wt %d\n",
			fwb, wb, ifrm, sfrm, wt)
	}
	if s.inj != nil {
		fmt.Fprintf(&b, "  %s\n", s.inj)
	}
	return strings.TrimRight(b.String(), "\n")
}

// RunMix builds and runs in one step.
func RunMix(cfg Config, mix workload.Mix) Result {
	return Build(cfg, mix).Run()
}

// RunMixE is the hardened RunMix: it validates the configuration before
// building, and surfaces an abnormal end of run (watchdog, deadlock or
// audit violation) as an error alongside the partial result.
func RunMixE(cfg Config, mix workload.Mix) (Result, error) {
	s, err := BuildE(cfg, mix)
	if err != nil {
		return Result{}, err
	}
	r := s.Run()
	return r, r.Abort
}

// RunSeeded runs the mix with a run-level stream seed (seed 0 equals RunMix).
func RunSeeded(cfg Config, mix workload.Mix, seed uint64) Result {
	s := Build(cfg, mix)
	s.reseed(mix, seed)
	return s.Run()
}

// RunSeededE is RunSeeded with configuration validation and abnormal-end
// reporting (the seeded counterpart of RunMixE).
func RunSeededE(cfg Config, mix workload.Mix, seed uint64) (Result, error) {
	s, err := BuildE(cfg, mix)
	if err != nil {
		return Result{}, err
	}
	s.reseed(mix, seed)
	r := s.Run()
	return r, r.Abort
}

func (s *System) reseed(mix workload.Mix, seed uint64) {
	s.seed = seed
	if seed == 0 {
		return
	}
	if len(mix.Specs) != s.Cfg.CPU.Cores {
		mix = workload.Mix{Name: mix.Name, Specs: resize(mix.Specs, s.Cfg.CPU.Cores)}
	}
	s.CPU.SetStreams(mix.StreamsSeeded(seed))
}

// Replicate runs the mix over n seeds and returns the per-seed values of
// metric plus their mean and (population) standard deviation — statistical
// confidence for any reported number.
func Replicate(cfg Config, mix workload.Mix, n int, metric func(Result) float64) (vals []float64, mean, std float64) {
	return ReplicateParallel(1, cfg, mix, n, metric)
}

// ReplicateParallel is Replicate with the per-seed simulations fanned out
// across up to parallel workers (<= 0 selects GOMAXPROCS). Each seed owns a
// private system, so the per-seed values — and therefore mean and std — are
// bit-identical to the serial run.
func ReplicateParallel(parallel int, cfg Config, mix workload.Mix, n int, metric func(Result) float64) (vals []float64, mean, std float64) {
	vals = runner.Map(parallel, n, func(seed int) float64 {
		return metric(RunSeeded(cfg, mix, uint64(seed)))
	})
	mean = stats.Mean(vals)
	for _, v := range vals {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(vals)))
	return vals, mean, std
}

// AloneIPC measures a workload's single-core IPC on the given configuration
// (the weight denominators of weighted speedup). The returned value is for
// one copy of the spec running alone.
func AloneIPC(cfg Config, spec workload.Spec) float64 {
	cfg.CPU.Cores = 1
	// Alone IPCs are normalization denominators shared by every figure in
	// the process; they stay exact even when the figure itself is sampled.
	cfg.Sampled = false
	mix := workload.Mix{Name: spec.Name + "-alone", Specs: []workload.Spec{spec}}
	r := RunMix(cfg, mix)
	return r.Cores[0].IPC()
}

// aloneFingerprint returns a complete textual key of every configuration
// field that can influence a single-core alone run. It must be exhaustive:
// the memo it keys is shared by every figure across a whole process, so two
// configurations may only collide when the alone simulation they describe
// is genuinely identical. Cores and Sampled are normalized (AloneIPC
// forces one exact core, so sampled and full figure runs share entries)
// and the two pointer fields are dereferenced — with the DAPOverride's
// Backlog hook excluded, since that is injected per-system at Build time —
// so that equal configurations format to equal keys.
func aloneFingerprint(cfg Config) string {
	cfg.CPU.Cores = 1
	cfg.Sampled = false
	return cfgKey(cfg)
}

// cfgKey renders every behavior-affecting configuration field into one
// textual key, dereferencing the pointer fields (with the DAPOverride's
// per-system Backlog hook excluded) so equal configurations format to
// equal keys.
func cfgKey(cfg Config) string {
	var dapOv, faults string
	if cfg.DAPOverride != nil {
		d := *cfg.DAPOverride
		d.Backlog = nil
		dapOv = fmt.Sprintf("%+v", d)
	}
	if cfg.Faults != nil {
		faults = fmt.Sprintf("%+v", *cfg.Faults)
	}
	cfg.DAPOverride = nil
	cfg.Faults = nil
	return fmt.Sprintf("%+v|%s|%s", cfg, dapOv, faults)
}

// Fingerprint condenses a configuration into a short stable hex token —
// the same field coverage as the alone-run memo key, hashed down for
// display. Telemetry stamps it on every registered run and every metrics
// export so an artifact can be traced back to the exact configuration
// that produced it: two files carry the same fingerprint if and only if
// their configurations were identical.
func Fingerprint(cfg Config) string {
	h := fnv.New64a()
	io.WriteString(h, cfgKey(cfg))
	return fmt.Sprintf("%016x", h.Sum64())
}

// aloneMemo memoizes alone IPCs per (config fingerprint, workload) with
// single-flight semantics: when two goroutines need the same alone IPC
// concurrently, one simulates and the other blocks on the entry's Once, so
// no simulation ever runs twice — neither within one figure nor across the
// figures of a whole cmd/figures sweep.
type aloneMemo struct {
	mu sync.Mutex
	m  map[string]*aloneEntry
}

type aloneEntry struct {
	once sync.Once
	v    float64
}

// alone is the process-wide memo. Sharing is safe because AloneIPC is a
// pure function of (configuration, spec): the memoized value is identical
// no matter which figure — or which worker goroutine — computes it first.
var alone = &aloneMemo{m: make(map[string]*aloneEntry)}

func (a *aloneMemo) get(cfg Config, spec workload.Spec) float64 {
	key := spec.Name + "\x00" + aloneFingerprint(cfg)
	a.mu.Lock()
	e := a.m[key]
	if e == nil {
		e = &aloneEntry{}
		a.m[key] = e
	}
	a.mu.Unlock()
	e.once.Do(func() { e.v = AloneIPC(cfg, spec) })
	return e.v
}

// weightedSpeedup computes a run's weighted speedup using alone IPCs from
// the memo (measured on cfgWeights, typically the baseline configuration).
func (a *aloneMemo) weightedSpeedup(r Result, cfgWeights Config, mix workload.Mix) float64 {
	aloneIPCs := make([]float64, len(r.Cores))
	specs := resize(mix.Specs, len(r.Cores))
	for i := range aloneIPCs {
		aloneIPCs[i] = a.get(cfgWeights, specs[i])
	}
	return r.WeightedSpeedup(aloneIPCs)
}
