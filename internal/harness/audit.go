package harness

import (
	"fmt"

	"dap/internal/mem"
	"dap/internal/mscache"
	"dap/internal/sim"
	"dap/internal/stats"
	"dap/internal/telemetry"
)

// Auditor counters on the process-wide telemetry registry: total sweeps
// performed and invariant violations found. Published via lock-free
// handles, so audit mode stays a strict observer of the simulation.
var (
	auditChecks     = telemetry.Default.Counter("harness_audit_checks_total", "Invariant audit sweeps completed across all runs.")
	auditViolations = telemetry.Default.Counter("harness_audit_violations_total", "Invariant violations detected by the runtime auditor.")
)

// AuditError reports the first runtime invariant violation the auditor
// found, with the cycle and the check that caught it.
type AuditError struct {
	Cycle mem.Cycle
	Check string
	Err   error
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("audit: %s invariant violated at cycle %d: %v", e.Check, e.Cycle, e.Err)
}

func (e *AuditError) Unwrap() error { return e.Err }

// auditable is implemented by controllers whose internal structures can be
// structurally checked (the sector caches: dirty mask ⊆ valid mask).
type auditable interface {
	AuditInvariants() error
}

// reqCounter wraps the memory-side controller in audit mode to track
// request conservation: every demand/prefetch read issued by the cores must
// be either completed or still in flight, and never completed twice. It is
// a pure pass-through — counting only — so enabling audit mode cannot
// change simulated behavior.
type reqCounter struct {
	inner mscache.Controller
	eng   *sim.Engine

	Issued    uint64
	Completed uint64
}

// InFlight returns the reads issued but not yet completed.
func (rc *reqCounter) InFlight() uint64 { return rc.Issued - rc.Completed }

func (rc *reqCounter) Read(a mem.Addr, c int, k mem.Kind, done func(mem.Cycle)) {
	if done == nil {
		rc.inner.Read(a, c, k, nil)
		return
	}
	rc.Issued++
	completed := false
	rc.inner.Read(a, c, k, func(t mem.Cycle) {
		if completed {
			rc.eng.Fail(&AuditError{Cycle: rc.eng.Now(), Check: "conservation",
				Err: fmt.Errorf("read of %#x (core %d) completed twice", a, c)})
			return
		}
		completed = true
		rc.Completed++
		done(t)
	})
}

func (rc *reqCounter) Writeback(a mem.Addr, c int)     { rc.inner.Writeback(a, c) }
func (rc *reqCounter) WarmRead(a mem.Addr, c int)      { rc.inner.WarmRead(a, c) }
func (rc *reqCounter) WarmWriteback(a mem.Addr, c int) { rc.inner.WarmWriteback(a, c) }
func (rc *reqCounter) MSStats() *stats.MemSideStats    { return rc.inner.MSStats() }
func (rc *reqCounter) CacheCAS() uint64                { return rc.inner.CacheCAS() }
func (rc *reqCounter) ResetStats()                     { rc.inner.ResetStats() }

// reservationHorizon mirrors the DRAM channel's scheduling horizon: a CAS
// may be reserved up to this many cycles ahead of now, so a window's CAS
// count can legitimately exceed the elapsed-time allowance by one horizon's
// worth of slack.
const reservationHorizon = 256

// startAudit arms the runtime invariant auditor: a periodic event that
// checks, every cfg.AuditEvery cycles (default 4096):
//
//   - DAP credit counters stay within [0, cap] (a corrupted update is
//     caught within one window);
//   - request conservation (issued == completed + in-flight, via the
//     reqCounter wrapper, which also catches double completions inline);
//   - delivered bandwidth per source never exceeds its peak — each device's
//     CAS delta over the window must fit the window's line budget;
//   - sector-cache metadata consistency (dirty mask ⊆ valid mask);
//   - CPU core-model structure (ROB window, fetch ordering, prefetch
//     accounting).
//
// The first violation aborts the run via Engine.Fail with an *AuditError
// carrying the cycle and check name.
func (s *System) startAudit() {
	every := s.Cfg.AuditEvery
	if every == 0 {
		every = 4096
	}
	devs := s.devices()
	lastCAS := make([]uint64, len(devs))
	for i, d := range devs {
		lastCAS[i] = d.Stats().CAS()
	}
	lastCycle := s.Eng.Now()

	fail := func(checkName string, err error) {
		auditViolations.Inc()
		s.Eng.Fail(&AuditError{Cycle: s.Eng.Now(), Check: checkName, Err: err})
	}
	var tick func()
	tick = func() {
		auditChecks.Inc()
		if s.dap != nil {
			if err := s.dap.AuditCredits(); err != nil {
				fail("dap-credits", err)
				return
			}
		}
		if au, ok := s.Ctrl.(auditable); ok {
			if err := au.AuditInvariants(); err != nil {
				fail("cache-metadata", err)
				return
			}
		}
		if err := s.CPU.AuditInvariants(); err != nil {
			fail("cpu-structure", err)
			return
		}
		dt := float64(s.Eng.Now()-lastCycle) + reservationHorizon
		for i, d := range devs {
			cas := d.Stats().CAS()
			delta := float64(cas - lastCAS[i])
			if allowed := mem.AccessesPerCycle(d.Cfg.PeakGBps())*dt + 8; delta > allowed {
				fail("bandwidth-ceiling", fmt.Errorf(
					"%s delivered %.0f lines in a %.0f-cycle window, peak allows %.0f",
					d.Cfg.Name, delta, dt, allowed))
				return
			}
			lastCAS[i] = cas
		}
		lastCycle = s.Eng.Now()
		s.Eng.After(every, tick)
	}
	s.Eng.After(every, tick)
}
