package harness

import (
	"fmt"
	"math"

	"dap/internal/mem"
	"dap/internal/stats"
	"dap/internal/telemetry"
)

// SMARTS-style interval sampling: the timed region is replaced by a train
// of short measured intervals separated by functional fast-forward. Each
// interval is a complete mini-run (every core retires SampleInterval
// instructions under full timing); between intervals the cores fast-forward
// SampleFF accesses functionally — same warmup machinery, no engine time —
// so the caches and predictors track the workload while the detailed model
// is off. Per-interval aggregate IPC, delivered bandwidth and MS$ hit ratio
// feed a Student-t 95% confidence interval; once the IPC half-width drops
// under SampleCI of the mean the run stops early. If SampleMax intervals
// don't get there, the harness falls back to the full timed run.

// MetricCI is a sampled metric: the interval mean with its 95% confidence
// half-width over N intervals.
type MetricCI struct {
	Mean float64
	Half float64
	N    int
}

// Lo and Hi bound the 95% confidence interval.
func (m MetricCI) Lo() float64 { return m.Mean - m.Half }
func (m MetricCI) Hi() float64 { return m.Mean + m.Half }

func (m MetricCI) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", m.Mean, m.Half, m.N)
}

// SamplingReport is the estimator's account of a sampled run.
type SamplingReport struct {
	// Intervals is the number of measured intervals executed.
	Intervals int
	// IntervalInstr and FFAccesses echo the resolved per-core interval and
	// fast-forward lengths.
	IntervalInstr uint64
	FFAccesses    int
	// Converged reports whether the IPC confidence target was reached.
	Converged bool
	// FellBack is set when sampling did not converge and the enclosing
	// Result carries a full timed run instead of the sampled estimate.
	FellBack bool

	IPC           MetricCI
	DeliveredGBps MetricCI
	HitRatio      MetricCI
}

// tTable95 holds two-sided 95% Student-t critical values for 1..30 degrees
// of freedom; beyond that the normal approximation is used.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCrit95(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.96
}

// metricCI computes the mean and 95% confidence half-width of the samples.
func metricCI(vals []float64) MetricCI {
	n := len(vals)
	mean := stats.Mean(vals)
	if n < 2 {
		return MetricCI{Mean: mean, Half: math.Inf(1), N: n}
	}
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(n-1))
	return MetricCI{Mean: mean, Half: tCrit95(n-1) * sd / math.Sqrt(float64(n)), N: n}
}

// sampleParams resolves the sampling knobs to effective values.
func sampleParams(cfg Config) (interval uint64, ff, minN, maxN int, target float64) {
	interval = cfg.SampleInterval
	if interval == 0 {
		// The floor matters: below ~25k instructions the empty queues each
		// interval starts from (a cold-start optimism) bias IPC visibly.
		interval = cfg.MeasureInstr / 50
		if interval < 25_000 {
			interval = 25_000
		}
	}
	ff = cfg.SampleFF
	if ff == 0 {
		// Functional warm costs about as much per access as detailed
		// simulation, so the fast-forward is decorrelation, not savings;
		// 10k accesses per core is enough to shuffle queue phase between
		// intervals without dominating the sampled run's wall clock.
		ff = 10_000
	}
	minN = cfg.SampleMin
	if minN < 2 {
		minN = 8
	}
	maxN = cfg.SampleMax
	if maxN == 0 {
		maxN = 40
	}
	if maxN < minN {
		maxN = minN
	}
	target = cfg.SampleCI
	if target == 0 {
		target = 0.05
	}
	return
}

// runSampled executes the interval-sampling estimator on an already-warm
// system. When the estimator fails to converge it falls back to a full
// timed run on a fresh system (resuming from ck when available), returning
// the full run's Result with the sampling report attached.
func (s *System) runSampled(ck *Checkpoints) Result {
	r, ok := s.sampleIntervals()
	if ok {
		return r
	}
	cfg := s.Cfg
	cfg.Sampled = false
	ns := Build(cfg, s.mix)
	ns.reseed(s.mix, s.seed)
	if ck != nil {
		ck.restoreOrWarm(ns, cfg, s.mix, s.seed)
	} else {
		ns.Warmup()
	}
	full := ns.Measure()
	rep := *r.Sampling
	rep.FellBack = true
	full.Sampling = &rep
	return full
}

// sampleIntervals runs the measured-interval train. It returns ok=false
// only when the run completed normally but did not converge; an aborted run
// (watchdog stall, cycle-budget blowout) comes back ok=true with Abort set
// so the caller surfaces the error instead of paying for a doomed full run.
func (s *System) sampleIntervals() (Result, bool) {
	cfg := s.Cfg
	interval, ff, minN, maxN, target := sampleParams(cfg)
	s.Ctrl.ResetStats()
	s.MM.ResetStats()
	if s.sectored != nil {
		s.sectored.StartBATMAN()
	}

	start := s.Eng.Now()
	limit := cfg.MaxCycles
	if limit == 0 {
		limit = mem.Cycle(400 * cfg.MeasureInstr)
	}
	if wd := cfg.WatchdogEvents; wd >= 0 {
		if wd == 0 {
			wd = DefaultWatchdogEvents
		}
		s.Eng.SetWatchdog(wd, s.CPU.ProgressFingerprint, s.snapshot)
	}
	run := telemetry.Runs.Start(telemetry.RunInfo{
		Mix:         s.mixName,
		Arch:        cfg.Arch.String(),
		Policy:      cfg.Policy.String(),
		Fingerprint: Fingerprint(cfg),
		Seed:        s.seed,
		Horizon:     uint64(limit),
	})

	rep := &SamplingReport{IntervalInstr: interval, FFAccesses: ff}
	var ipcs, bws, hrs []float64
	var coreAgg []stats.CoreStats
	var totalCycles mem.Cycle
	var abort error
	ms0 := *s.Ctrl.MSStats()
	var cas0 uint64

	for n := 0; n < maxN; n++ {
		if n > 0 {
			s.CPU.Warm(ff)
		}
		c0 := s.Eng.Now()
		s.CPU.Start(interval)
		s.Eng.RunWhile(func() bool {
			return !s.CPU.Done() && s.Eng.Now()-start < limit
		})
		if err := s.Eng.Err(); err != nil {
			abort = err
			break
		}
		if !s.CPU.Done() {
			// cumulative cycle budget exhausted mid-interval: treat like the
			// full run's horizon overrun (partial stats, no abort error)
			break
		}
		intervalCycles := s.Eng.Now() - c0
		// Halt fetch and drain the in-flight tail so the next fast-forward
		// starts from a quiesced machine (cpu.Warm requires it).
		s.CPU.Halt()
		s.Eng.RunWhile(func() bool { return !s.CPU.Quiesced() })
		if err := s.Eng.Err(); err != nil {
			abort = err
			break
		}

		cs := s.CPU.CoreStats()
		if coreAgg == nil {
			coreAgg = make([]stats.CoreStats, len(cs))
		}
		// The IPC sample is the sum of per-core IPCs, each over the core's
		// own retirement time — the aggregate the figure drivers report.
		// Dividing total instructions by the interval's wall cycles instead
		// would charge every core for the slowest core's tail, a straggler
		// bias that short intervals amplify.
		var aggIPC float64
		for i := range cs {
			aggIPC += cs[i].IPC()
			mergeCoreStats(&coreAgg[i], &cs[i])
		}
		ms1 := *s.Ctrl.MSStats()
		cas1 := s.Ctrl.CacheCAS() + s.MM.Stats().CAS()
		ipcs = append(ipcs, aggIPC)
		bws = append(bws, mem.GBPerSec((cas1-cas0)*mem.LineBytes, intervalCycles))
		hrs = append(hrs, deltaHitRatio(&ms0, &ms1))
		ms0, cas0 = ms1, cas1
		totalCycles += intervalCycles
		run.Progress(uint64(totalCycles))

		if len(ipcs) >= 4 {
			ci := metricCI(ipcs)
			if ci.Mean <= 0 {
				continue
			}
			if len(ipcs) >= minN && ci.Half/ci.Mean <= target {
				rep.Converged = true
				break
			}
			// Predictive abandonment: the half-width shrinks as t(n)/sqrt(n),
			// so the interval count this variance needs is
			// (t(maxN)·sd / (target·mean))². A run that provably cannot
			// converge within maxN intervals stops paying for them now and
			// goes straight to the full-run fallback. Before minN the sample
			// standard deviation is still noisy, so require a 2x overshoot.
			sd := ci.Half * math.Sqrt(float64(ci.N)) / tCrit95(ci.N-1)
			need := tCrit95(maxN-1) * sd / (target * ci.Mean)
			need *= need
			headroom := 1.0
			if len(ipcs) < minN {
				headroom = 2.0
			}
			if need > headroom*float64(maxN) {
				break
			}
		}
	}
	if s.dap != nil {
		s.dap.Stop()
	}

	rep.Intervals = len(ipcs)
	rep.IPC = metricCI(ipcs)
	rep.DeliveredGBps = metricCI(bws)
	rep.HitRatio = metricCI(hrs)

	var r Result
	r.Config = cfg
	r.Sampling = rep
	r.Abort = abort
	r.Cycles = totalCycles
	r.Cores = coreAgg
	r.MemSide = *s.Ctrl.MSStats()
	r.DAP = s.Part.Decisions()
	r.MSCacheCAS = s.Ctrl.CacheCAS()
	r.MainMemCAS = s.MM.Stats().CAS()
	if totalCycles > 0 {
		r.DeliveredGBps = mem.GBPerSec((r.MSCacheCAS+r.MainMemCAS)*mem.LineBytes, totalCycles)
	}

	var aggIPC float64
	for i := range r.Cores {
		aggIPC += r.Cores[i].IPC()
	}
	run.Finish(abort, map[string]float64{
		"ipc":            aggIPC,
		"cycles":         float64(r.Cycles),
		"delivered_gbps": r.DeliveredGBps,
	})
	return r, abort != nil || rep.Converged
}

// mergeCoreStats folds one interval's per-core stats into the running total.
func mergeCoreStats(dst, src *stats.CoreStats) {
	dst.Instructions += src.Instructions
	dst.Cycles += src.Cycles
	dst.L3Misses += src.L3Misses
	dst.L3ReadMissLatSum += src.L3ReadMissLatSum
	dst.L3ReadMisses += src.L3ReadMisses
	for i := range dst.L3MissLat.Buckets {
		dst.L3MissLat.Buckets[i] += src.L3MissLat.Buckets[i]
	}
	dst.L3MissLat.Count += src.L3MissLat.Count
	dst.L3MissLat.Sum += src.L3MissLat.Sum
	if src.L3MissLat.MaxSeen > dst.L3MissLat.MaxSeen {
		dst.L3MissLat.MaxSeen = src.L3MissLat.MaxSeen
	}
}

// deltaHitRatio is the MS$ hit ratio over the window between two snapshots.
func deltaHitRatio(a, b *stats.MemSideStats) float64 {
	h := (b.ReadHits - a.ReadHits) + (b.WriteHits - a.WriteHits)
	m := (b.ReadMisses - a.ReadMisses) + (b.WriteMisses - a.WriteMisses)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
