package harness

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dap/internal/dram"
	"dap/internal/faultinject"
	"dap/internal/workload"
)

// tinyCkptCfg mirrors the unexported tiny driver scale: long enough to
// exercise every warm path, short enough to run three architectures with a
// straight-run control each.
func tinyCkptCfg(arch Arch, pol Policy) Config {
	c := Quick()
	c.WarmAccesses = 40_000
	c.MeasureInstr = 80_000
	c.Arch = arch
	c.Policy = pol
	return c
}

// TestCheckpointResumeBitIdentical is the tentpole correctness claim: for
// each architecture, a run resumed from a warmup checkpoint is byte-identical
// to the same run warmed directly. DAP is enabled so the dap section (and on
// sectored the tag cache + footprint state) is exercised too.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	mix := quickMix()
	for _, tc := range []struct {
		name string
		arch Arch
	}{
		{"sectored", SectoredDRAM},
		{"alloy", AlloyCache},
		{"edram", SectoredEDRAM},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyCkptCfg(tc.arch, DAP)
			straight := RunSeeded(cfg, mix, 7)
			ck := MemCheckpoints()
			resumed := RunSeededCkpt(cfg, mix, 7, ck)
			if !reflect.DeepEqual(straight.Run, resumed.Run) {
				t.Fatalf("resumed run diverged from straight run:\nstraight %+v\nresumed  %+v",
					straight.Run, resumed.Run)
			}
			if got := ck.Builds(); got != 1 {
				t.Fatalf("builds = %d, want 1", got)
			}
		})
	}
}

// TestCheckpointSaveRejectsTimedState guards the envelope's precondition:
// once the engine has advanced past warmup, a checkpoint would capture timed
// state the restore path cannot reproduce, so SaveCheckpoint must refuse.
func TestCheckpointSaveRejectsTimedState(t *testing.T) {
	cfg := tinyCkptCfg(SectoredDRAM, Baseline)
	s := Build(cfg, quickMix())
	s.Warmup()
	if _, err := s.SaveCheckpoint(); err != nil {
		t.Fatalf("post-warmup save: %v", err)
	}
	s.Measure()
	if _, err := s.SaveCheckpoint(); err == nil {
		t.Fatal("save after the timed region should fail")
	}
}

// TestCheckpointSharedParallelVariants drives eight concurrent policy/DRAM
// variants of one figure point through a shared cache (the make ckpt-race
// workload): the warmup must build exactly once and every variant must stay
// bit-identical to its straight run. The two DDR4-3200 variants additionally
// exercise the devTag skip — their main-memory section tag disagrees with the
// stored blob, so restore leaves the freshly built device untouched.
func TestCheckpointSharedParallelVariants(t *testing.T) {
	mix := quickMix()
	variants := make([]Config, 0, 8)
	for _, pol := range []Policy{Baseline, DAP, DAPFWBWB, SBD, SBDWT, BATMAN} {
		variants = append(variants, tinyCkptCfg(SectoredDRAM, pol))
	}
	for _, pol := range []Policy{Baseline, DAP} {
		c := tinyCkptCfg(SectoredDRAM, pol)
		c.MainMemory = dram.DDR4_3200()
		variants = append(variants, c)
	}

	key := WarmKey(variants[0], mix, 0)
	for i, v := range variants[1:] {
		if got := WarmKey(v, mix, 0); got != key {
			t.Fatalf("variant %d has warm key %s, want shared %s", i+1, got, key)
		}
	}

	straight := make([]Result, len(variants))
	for i, v := range variants {
		straight[i] = RunMix(v, mix)
	}

	ck := MemCheckpoints()
	resumed := make([]Result, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v Config) {
			defer wg.Done()
			resumed[i] = RunMixCkpt(v, mix, ck)
		}(i, v)
	}
	wg.Wait()

	if got := ck.Builds(); got != 1 {
		t.Fatalf("builds = %d, want 1 (single-flight across 8 variants)", got)
	}
	for i := range variants {
		if !reflect.DeepEqual(straight[i].Run, resumed[i].Run) {
			t.Fatalf("variant %d (%s, mm=%.0fGB/s) diverged after checkpoint resume",
				i, variants[i].Policy, variants[i].MainMemory.PeakGBps())
		}
	}
}

// TestCheckpointFigureDriverSingleFlight runs a multi-variant figure driver
// (the nws normalized-weighted-speedup helper every speedup figure uses) with
// and without the checkpoint cache: the series must be bit-identical, and the
// cache must have built exactly one checkpoint per mix.
func TestCheckpointFigureDriverSingleFlight(t *testing.T) {
	mixes := []workload.Mix{quickMix()}
	if s, ok := workload.ByName("lbm"); ok {
		mixes = append(mixes, workload.RateMix(s, 8))
	}
	base := tinyCkptCfg(SectoredDRAM, Baseline)
	alts := []labeled{
		{"DAP", tinyCkptCfg(SectoredDRAM, DAP)},
		{"SBD", tinyCkptCfg(SectoredDRAM, SBD)},
	}
	plain := nws(Options{Parallel: 1}, mixes, base, alts, base)
	ck := MemCheckpoints()
	ckpt := nws(Options{Parallel: 4, Ckpt: ck}, mixes, base, alts, base)
	if !reflect.DeepEqual(plain, ckpt) {
		t.Fatalf("figure series diverged:\nplain %+v\nckpt  %+v", plain, ckpt)
	}
	if got, want := ck.Builds(), uint64(len(mixes)); got != want {
		t.Fatalf("builds = %d, want %d (one per mix across %d variants)",
			got, want, (1+len(alts))*len(mixes))
	}
}

// TestCheckpointStoreReuseAndCorruption covers the disk-backed cache: a
// second process (fresh Checkpoints on the same dir) restores from disk
// without rebuilding, and a damaged file — one flipped byte inside the
// trailing checksum, then a torn tail — is quarantined as a miss, the warmup
// re-runs, and the result is still bit-identical.
func TestCheckpointStoreReuseAndCorruption(t *testing.T) {
	cfg := tinyCkptCfg(SectoredDRAM, DAP)
	mix := quickMix()
	straight := RunMix(cfg, mix)
	dir := t.TempDir()

	check := func(stage string, ck *Checkpoints, wantBuilds, wantHits uint64) {
		t.Helper()
		r := RunMixCkpt(cfg, mix, ck)
		if !reflect.DeepEqual(straight.Run, r.Run) {
			t.Fatalf("%s: run diverged from straight run", stage)
		}
		st := ck.Stats()
		if st.Builds != wantBuilds || st.StoreHits != wantHits {
			t.Fatalf("%s: builds=%d hits=%d, want builds=%d hits=%d (stats %+v)",
				stage, st.Builds, st.StoreHits, wantBuilds, wantHits, st)
		}
	}

	ck1, err := NewCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	check("cold cache", ck1, 1, 0)

	ck2, err := NewCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	check("disk reuse", ck2, 0, 1)

	ckptFile := func() string {
		t.Helper()
		files, err := filepath.Glob(filepath.Join(dir, "*.res"))
		if err != nil || len(files) != 1 {
			t.Fatalf("checkpoint files in %s: %v (err %v)", dir, files, err)
		}
		return files[0]
	}

	if err := faultinject.FlipByte(ckptFile(), -3); err != nil {
		t.Fatal(err)
	}
	ck3, err := NewCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	check("flipped byte", ck3, 1, 0)
	if st := ck3.Stats(); st.Store.Corrupt == 0 {
		t.Fatalf("flipped byte not quarantined: store stats %+v", st.Store)
	}

	// The rebuild re-put the blob; tear its tail off and recover again.
	if err := faultinject.TruncateTail(ckptFile(), 16); err != nil {
		t.Fatal(err)
	}
	ck4, err := NewCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	check("torn tail", ck4, 1, 0)
	if st := ck4.Stats(); st.Store.Corrupt == 0 {
		t.Fatalf("torn tail not quarantined: store stats %+v", st.Store)
	}
}

// TestCheckpointTraceStreamCursor proves the trace cursor serializes: two
// systems fed from freshly opened copies of the same recorded trace — one
// warmed directly, one restored from the first's checkpoint (which must put
// the restored cursors mid-trace, exactly where warmup left them) — measure
// bit-identically.
func TestCheckpointTraceStreamCursor(t *testing.T) {
	cfg := tinyCkptCfg(SectoredDRAM, DAP)
	mix := quickMix()

	// Record one trace per core from the mix's own streams, then re-open a
	// fresh cursor-at-zero copy for every system under test.
	var traces [][]byte
	for _, src := range mix.Streams() {
		var buf bytes.Buffer
		if err := workload.WriteTrace(&buf, src, 2048); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, buf.Bytes())
	}
	openAll := func() []workload.Stream {
		t.Helper()
		out := make([]workload.Stream, len(traces))
		for i, raw := range traces {
			ts, err := workload.ReadTrace(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = ts
		}
		return out
	}

	s1 := Build(cfg, mix)
	s1.CPU.SetStreams(openAll())
	s1.Warmup()
	blob, err := s1.SaveCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	r1 := s1.Measure()

	s2 := Build(cfg, mix)
	s2.CPU.SetStreams(openAll())
	if err := s2.LoadCheckpoint(blob); err != nil {
		t.Fatal(err)
	}
	r2 := s2.Measure()

	if !reflect.DeepEqual(r1.Run, r2.Run) {
		t.Fatal("trace-fed run diverged after checkpoint restore")
	}
}

// TestSampledRunBracketsFullRun checks the estimator's contract on a quick
// configuration: a converged sampled run's IPC confidence interval must
// bracket the full run's aggregate IPC (with modest slack for the estimator's
// systematic interval-boundary bias), and a fallback must return the full
// run's numbers bit-identically with FellBack set.
func TestSampledRunBracketsFullRun(t *testing.T) {
	cfg := Quick()
	cfg.Policy = DAP
	mix := quickMix()
	full := RunMix(cfg, mix)
	var fullIPC float64
	for i := range full.Cores {
		fullIPC += full.Cores[i].IPC()
	}

	sc := cfg
	sc.Sampled = true
	r := RunMix(sc, mix)
	rep := r.Sampling
	if rep == nil {
		t.Fatal("sampled run carries no sampling report")
	}
	t.Logf("full IPC %.4f; sampled %s over %d intervals (converged=%v fellback=%v)",
		fullIPC, rep.IPC, rep.Intervals, rep.Converged, rep.FellBack)
	if rep.FellBack {
		if !reflect.DeepEqual(full.Run, r.Run) {
			t.Fatal("fallback run diverged from the plain full run")
		}
		return
	}
	if !rep.Converged {
		t.Fatalf("sampled run neither converged nor fell back: %+v", rep)
	}
	slack := 0.15 * rep.IPC.Mean
	if fullIPC < rep.IPC.Lo()-slack || fullIPC > rep.IPC.Hi()+slack {
		t.Fatalf("full-run IPC %.4f outside sampled CI %s (+%.4f slack)",
			fullIPC, rep.IPC, slack)
	}
	if r.Cycles >= full.Cycles {
		t.Fatalf("sampled run simulated %d detailed cycles, full run %d — no savings",
			r.Cycles, full.Cycles)
	}
}
