// Package cache implements the set-associative SRAM structures used
// throughout the hierarchy: the L1/L2/L3 data caches, the DRAM-cache SRAM
// tag cache, the Alloy dirty-bit cache and assorted predictor tables.
//
// The caches are tag-only (the simulator never moves real data); each line
// carries a small state word that callers interpret.
package cache

import "dap/internal/mem"

// ReplPolicy selects a victim within a set.
type ReplPolicy uint8

// Replacement policies.
const (
	LRU   ReplPolicy = iota
	NRU              // single-bit not-recently-used (paper's DRAM cache policy)
	SRRIP            // 2-bit static re-reference interval prediction
	Rand             // pseudo-random victim
)

// Line is one tag entry.
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool
	State uint32 // caller-defined payload
	VMask uint64 // per-block valid bits (sector caches; 1 bit per 64 B block)
	DMask uint64 // per-block dirty bits (sector caches)
	lru   uint32
	nru   bool  // true = recently used
	rrpv  uint8 // SRRIP re-reference prediction value (0 = imminent)
}

// Stats counts hits and misses.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	DirtyEvic uint64
}

// MissRatio returns misses / lookups.
func (s *Stats) MissRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// HitRatio returns hits / lookups.
func (s *Stats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Cache is a set-associative tag array. Addresses are mapped as
// line -> set = (line / SetSkip) % Sets, tag = line / (Sets*SetSkip).
// SetSkip lets sector caches index by sector rather than by line.
type Cache struct {
	Sets    int
	Ways    int
	Policy  ReplPolicy
	SetSkip uint64 // lines per indexing unit (1 for ordinary caches)
	Stats   Stats

	lines    []Line // Sets*Ways
	tick     uint32
	rng      uint64
	setMask  uint64
	setShift uint
}

// New builds a cache with the given geometry. sets must be a power of two.
func New(sets, ways int, policy ReplPolicy, setSkip uint64) *Cache {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("cache: sets must be a positive power of two")
	}
	if setSkip == 0 {
		setSkip = 1
	}
	return &Cache{
		Sets: sets, Ways: ways, Policy: policy, SetSkip: setSkip,
		lines:    make([]Line, sets*ways),
		rng:      0x9e3779b97f4a7c15,
		setMask:  uint64(sets) - 1,
		setShift: uint(log2(uint64(sets))),
	}
}

// NewBytes builds a conventional cache of the given capacity with 64 B
// lines. The set count is rounded down to a power of two, so a 16-way cache
// with one way borrowed (15 usable ways) keeps its set count.
func NewBytes(capacity, ways int, policy ReplPolicy) *Cache {
	sets := capacity / mem.LineBytes / ways
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return New(p, ways, policy, 1)
}

// Index returns the set index and tag for an address.
func (c *Cache) Index(a mem.Addr) (set int, tag uint64) {
	unit := uint64(a.Line()) / c.SetSkip
	return int(unit & c.setMask), unit >> c.setShift
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// set returns the ways of a set.
func (c *Cache) set(si int) []Line { return c.lines[si*c.Ways : (si+1)*c.Ways] }

// Probe looks up an address without updating recency or stats. Returns the
// line or nil.
func (c *Cache) Probe(a mem.Addr) *Line {
	si, tag := c.Index(a)
	for i := range c.set(si) {
		l := &c.set(si)[i]
		if l.Valid && l.Tag == tag {
			return l
		}
	}
	return nil
}

// Lookup searches for an address, updating recency and hit/miss stats.
func (c *Cache) Lookup(a mem.Addr) *Line {
	si, tag := c.Index(a)
	s := c.set(si)
	for i := range s {
		if s[i].Valid && s[i].Tag == tag {
			c.Stats.Hits++
			c.touch(s, i)
			return &s[i]
		}
	}
	c.Stats.Misses++
	return nil
}

func (c *Cache) touch(s []Line, i int) {
	switch c.Policy {
	case LRU, Rand:
		c.tick++
		s[i].lru = c.tick
	case SRRIP:
		s[i].rrpv = 0 // hit promotion (HP policy)
	case NRU:
		s[i].nru = true
		// if all ways are now recently-used, clear the others
		all := true
		for j := range s {
			if j != i && s[j].Valid && !s[j].nru {
				all = false
				break
			}
		}
		if all {
			for j := range s {
				if j != i {
					s[j].nru = false
				}
			}
		}
	}
}

// Victim returns the replacement candidate for an address: an invalid way if
// one exists, else the policy victim. It does not modify the set.
func (c *Cache) Victim(a mem.Addr) *Line {
	si, _ := c.Index(a)
	s := c.set(si)
	for i := range s {
		if !s[i].Valid {
			return &s[i]
		}
	}
	switch c.Policy {
	case NRU:
		for i := range s {
			if !s[i].nru {
				return &s[i]
			}
		}
		return &s[0]
	case SRRIP:
		// evict the first line with maximum RRPV (3), aging until one exists
		for {
			for i := range s {
				if s[i].rrpv >= 3 {
					return &s[i]
				}
			}
			for i := range s {
				s[i].rrpv++
			}
		}
	case Rand:
		c.rng ^= c.rng >> 12
		c.rng ^= c.rng << 25
		c.rng ^= c.rng >> 27
		return &s[int(c.rng%uint64(c.Ways))]
	default: // LRU
		vi, best := 0, s[0].lru
		for i := 1; i < c.Ways; i++ {
			if s[i].lru < best {
				vi, best = i, s[i].lru
			}
		}
		return &s[vi]
	}
}

// Insert installs an address, returning the evicted line contents (valid
// only if a real eviction occurred). The new line is marked recently used.
func (c *Cache) Insert(a mem.Addr, dirty bool) (evicted Line) {
	si, tag := c.Index(a)
	v := c.Victim(a)
	if v.Valid {
		evicted = *v
		c.Stats.Evictions++
		if v.Dirty {
			c.Stats.DirtyEvic++
		}
	}
	*v = Line{Tag: tag, Valid: true, Dirty: dirty}
	if c.Policy == SRRIP {
		v.rrpv = 2 // long re-reference interval on insertion
	}
	s := c.set(si)
	for i := range s {
		if &s[i] == v {
			if c.Policy != SRRIP {
				c.touch(s, i)
			}
			break
		}
	}
	return evicted
}

// Invalidate removes an address if present, returning the removed line.
func (c *Cache) Invalidate(a mem.Addr) (Line, bool) {
	if l := c.Probe(a); l != nil {
		old := *l
		*l = Line{}
		return old, true
	}
	return Line{}, false
}

// LineAddr reconstructs the base line address of an entry in set si.
func (c *Cache) LineAddr(si int, tag uint64) mem.Addr {
	unit := tag<<c.setShift | uint64(si)
	return mem.Addr(unit * c.SetSkip << mem.LineShift)
}

// ForEach visits every valid line (used for BATMAN set disabling and tests).
func (c *Cache) ForEach(fn func(set int, l *Line)) {
	for si := 0; si < c.Sets; si++ {
		s := c.set(si)
		for i := range s {
			if s[i].Valid {
				fn(si, &s[i])
			}
		}
	}
}

// ForEachInSet visits the valid lines of one set.
func (c *Cache) ForEachInSet(si int, fn func(l *Line)) {
	s := c.set(si)
	for i := range s {
		if s[i].Valid {
			fn(&s[i])
		}
	}
}

// InvalidateSet clears an entire set, invoking fn for each valid line first.
func (c *Cache) InvalidateSet(si int, fn func(l *Line)) {
	s := c.set(si)
	for i := range s {
		if s[i].Valid {
			if fn != nil {
				fn(&s[i])
			}
			s[i] = Line{}
		}
	}
}

// Occupancy returns the fraction of valid lines.
func (c *Cache) Occupancy() float64 {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return float64(n) / float64(len(c.lines))
}
