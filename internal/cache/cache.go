// Package cache implements the set-associative SRAM structures used
// throughout the hierarchy: the L1/L2/L3 data caches, the DRAM-cache SRAM
// tag cache, the Alloy dirty-bit cache and assorted predictor tables.
//
// The caches are tag-only (the simulator never moves real data); each line
// carries a small state word that callers interpret.
//
// Layout: the tag array is structure-of-arrays. The probe-critical word per
// line is tv = tag<<1 | valid, so a probe is a single 64-bit compare per way
// over a contiguous way group (an invalid line holds 0 and can never equal
// tag<<1|1). Replacement metadata lives in a second packed word — dirty,
// NRU bit and SRRIP RRPV in the low byte, the 32-bit LRU stamp in the high
// half — touched only on hits and installs. The rarely-used payloads
// (caller state word, sector valid/dirty masks) live in side arrays that are
// allocated lazily on first nonzero write, so ordinary caches never pay for
// them in memory, checkpoint bytes, or probe bandwidth.
package cache

import "dap/internal/mem"

// ReplPolicy selects a victim within a set.
type ReplPolicy uint8

// Replacement policies.
const (
	LRU   ReplPolicy = iota
	NRU              // single-bit not-recently-used (paper's DRAM cache policy)
	SRRIP            // 2-bit static re-reference interval prediction
	Rand             // pseudo-random victim
)

// meta word layout.
const (
	metaDirty = 1 << 0
	metaNRU   = 1 << 1
	rrpvShift = 2
	rrpvMask  = 3 << rrpvShift
	rrpvOne   = 1 << rrpvShift
	lruShift  = 32
)

// Line is a value snapshot of one tag entry, returned by Insert (the evicted
// contents) and Invalidate. It is plain data, detached from the array.
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool
	State uint32 // caller-defined payload
	VMask uint64 // per-block valid bits (sector caches; 1 bit per 64 B block)
	DMask uint64 // per-block dirty bits (sector caches)
}

// Stats counts hits and misses.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	DirtyEvic uint64
}

// MissRatio returns misses / lookups.
func (s *Stats) MissRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// HitRatio returns hits / lookups.
func (s *Stats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Cache is a set-associative tag array. Addresses are mapped as
// line -> set = (line / SetSkip) % Sets, tag = line / (Sets*SetSkip).
// SetSkip lets sector caches index by sector rather than by line.
type Cache struct {
	Sets    int
	Ways    int
	Policy  ReplPolicy
	SetSkip uint64 // lines per indexing unit (1 for ordinary caches)
	Stats   Stats

	tv   []uint64 // Sets*Ways: tag<<1 | valid
	meta []uint64 // Sets*Ways: dirty | nru | rrpv<<2 | lru<<32

	// Lazily allocated side arrays: nil until the first nonzero write.
	state []uint32 // caller payload (Alloy reuse bit)
	vmask []uint64 // sector valid masks
	dmask []uint64 // sector dirty masks

	tick      uint32
	rng       uint64
	setMask   uint64
	setShift  uint
	unitShift uint // LineShift + log2(SetSkip) when SetSkip is a power of two
	skipPow2  bool
}

// New builds a cache with the given geometry. sets must be a power of two.
func New(sets, ways int, policy ReplPolicy, setSkip uint64) *Cache {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("cache: sets must be a positive power of two")
	}
	if setSkip == 0 {
		setSkip = 1
	}
	n := sets * ways
	backing := make([]uint64, 2*n) // tv and meta carved from one block
	c := &Cache{
		Sets: sets, Ways: ways, Policy: policy, SetSkip: setSkip,
		tv:       backing[:n:n],
		meta:     backing[n:],
		rng:      0x9e3779b97f4a7c15,
		setMask:  uint64(sets) - 1,
		setShift: uint(log2(uint64(sets))),
	}
	if setSkip&(setSkip-1) == 0 {
		c.skipPow2 = true
		c.unitShift = mem.LineShift + uint(log2(setSkip))
	}
	return c
}

// NewBytes builds a conventional cache of the given capacity with 64 B
// lines. The set count is rounded down to a power of two, so a 16-way cache
// with one way borrowed (15 usable ways) keeps its set count.
func NewBytes(capacity, ways int, policy ReplPolicy) *Cache {
	sets := capacity / mem.LineBytes / ways
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return New(p, ways, policy, 1)
}

// Index returns the set index and tag for an address.
func (c *Cache) Index(a mem.Addr) (set int, tag uint64) {
	var unit uint64
	if c.skipPow2 {
		unit = uint64(a) >> c.unitShift
	} else {
		unit = uint64(a.Line()) / c.SetSkip
	}
	return int(unit & c.setMask), unit >> c.setShift
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Ref is a handle to one line of the packed array: the zero-cost equivalent
// of the old *Line, with accessor methods over the packed words. A failed
// probe returns a Ref whose Ok method reports false. A Ref stays valid (and
// aliases the slot, like a pointer) until the slot is re-filled by Insert or
// cleared by Invalidate.
type Ref struct {
	c *Cache
	i int32
}

// noRef is the miss sentinel.
var noRef = Ref{nil, -1}

// Ok reports whether the handle refers to a line (i.e. the probe hit).
func (r Ref) Ok() bool { return r.i >= 0 }

// Valid reports the slot's valid bit (a Victim handle may be invalid).
func (r Ref) Valid() bool { return r.c.tv[r.i]&1 != 0 }

// Tag returns the line's tag.
func (r Ref) Tag() uint64 { return r.c.tv[r.i] >> 1 }

// Dirty reports the line-granularity dirty bit.
func (r Ref) Dirty() bool { return r.c.meta[r.i]&metaDirty != 0 }

// SetDirty sets or clears the dirty bit.
func (r Ref) SetDirty(d bool) {
	if d {
		r.c.meta[r.i] |= metaDirty
	} else {
		r.c.meta[r.i] &^= metaDirty
	}
}

// MarkDirty sets the dirty bit.
func (r Ref) MarkDirty() { r.c.meta[r.i] |= metaDirty }

// State returns the caller-defined payload word.
func (r Ref) State() uint32 {
	if r.c.state == nil {
		return 0
	}
	return r.c.state[r.i]
}

// SetState stores the payload word (allocating the side array on the first
// nonzero write).
func (r Ref) SetState(v uint32) {
	if r.c.state == nil {
		if v == 0 {
			return
		}
		r.c.state = make([]uint32, len(r.c.tv))
	}
	r.c.state[r.i] = v
}

// OrState ORs bits into the payload word.
func (r Ref) OrState(v uint32) {
	if r.c.state == nil {
		if v == 0 {
			return
		}
		r.c.state = make([]uint32, len(r.c.tv))
	}
	r.c.state[r.i] |= v
}

// VMask returns the sector valid mask.
func (r Ref) VMask() uint64 {
	if r.c.vmask == nil {
		return 0
	}
	return r.c.vmask[r.i]
}

// SetVMask stores the sector valid mask.
func (r Ref) SetVMask(v uint64) {
	if r.c.vmask == nil {
		if v == 0 {
			return
		}
		r.c.vmask = make([]uint64, len(r.c.tv))
	}
	r.c.vmask[r.i] = v
}

// OrVMask ORs bits into the sector valid mask.
func (r Ref) OrVMask(v uint64) {
	if r.c.vmask == nil {
		if v == 0 {
			return
		}
		r.c.vmask = make([]uint64, len(r.c.tv))
	}
	r.c.vmask[r.i] |= v
}

// ClearVMask clears bits of the sector valid mask.
func (r Ref) ClearVMask(v uint64) {
	if r.c.vmask == nil {
		return
	}
	r.c.vmask[r.i] &^= v
}

// DMask returns the sector dirty mask.
func (r Ref) DMask() uint64 {
	if r.c.dmask == nil {
		return 0
	}
	return r.c.dmask[r.i]
}

// SetDMask stores the sector dirty mask.
func (r Ref) SetDMask(v uint64) {
	if r.c.dmask == nil {
		if v == 0 {
			return
		}
		r.c.dmask = make([]uint64, len(r.c.tv))
	}
	r.c.dmask[r.i] = v
}

// OrDMask ORs bits into the sector dirty mask.
func (r Ref) OrDMask(v uint64) {
	if r.c.dmask == nil {
		if v == 0 {
			return
		}
		r.c.dmask = make([]uint64, len(r.c.tv))
	}
	r.c.dmask[r.i] |= v
}

// ClearDMask clears bits of the sector dirty mask.
func (r Ref) ClearDMask(v uint64) {
	if r.c.dmask == nil {
		return
	}
	r.c.dmask[r.i] &^= v
}

// Line returns a detached value snapshot of the referenced slot.
func (r Ref) Line() Line { return r.c.snapshot(int(r.i)) }

func (c *Cache) snapshot(i int) Line {
	l := Line{Tag: c.tv[i] >> 1, Valid: c.tv[i]&1 != 0, Dirty: c.meta[i]&metaDirty != 0}
	if c.state != nil {
		l.State = c.state[i]
	}
	if c.vmask != nil {
		l.VMask = c.vmask[i]
	}
	if c.dmask != nil {
		l.DMask = c.dmask[i]
	}
	return l
}

// clearSlot zeroes one slot completely (tv, meta, side payloads).
func (c *Cache) clearSlot(i int) {
	c.tv[i] = 0
	c.meta[i] = 0
	if c.state != nil {
		c.state[i] = 0
	}
	if c.vmask != nil {
		c.vmask[i] = 0
	}
	if c.dmask != nil {
		c.dmask[i] = 0
	}
}

// Probe looks up an address without updating recency or stats. A miss
// returns a Ref with Ok() == false.
func (c *Cache) Probe(a mem.Addr) Ref {
	si, tag := c.Index(a)
	base := si * c.Ways
	want := tag<<1 | 1
	tv := c.tv[base : base+c.Ways]
	for w := range tv {
		if tv[w] == want {
			return Ref{c, int32(base + w)}
		}
	}
	return noRef
}

// Lookup searches for an address, updating recency and hit/miss stats.
func (c *Cache) Lookup(a mem.Addr) Ref {
	si, tag := c.Index(a)
	base := si * c.Ways
	want := tag<<1 | 1
	tv := c.tv[base : base+c.Ways]
	for w := range tv {
		if tv[w] == want {
			c.Stats.Hits++
			i := base + w
			c.touch(base, i)
			return Ref{c, int32(i)}
		}
	}
	c.Stats.Misses++
	return noRef
}

// touch updates replacement metadata for a hit or install of line i in the
// set whose way group starts at base.
func (c *Cache) touch(base, i int) {
	switch c.Policy {
	case LRU, Rand:
		c.tick++
		c.meta[i] = c.meta[i]&(1<<lruShift-1) | uint64(c.tick)<<lruShift
	case SRRIP:
		c.meta[i] &^= rrpvMask // hit promotion (HP policy)
	case NRU:
		c.meta[i] |= metaNRU
		// if all ways are now recently-used, clear the others
		all := true
		for k := base; k < base+c.Ways; k++ {
			if k != i && c.tv[k]&1 != 0 && c.meta[k]&metaNRU == 0 {
				all = false
				break
			}
		}
		if all {
			for k := base; k < base+c.Ways; k++ {
				if k != i {
					c.meta[k] &^= metaNRU
				}
			}
		}
	}
}

// victimIndex returns the replacement slot for a set: an invalid way if one
// exists, else the policy victim. SRRIP may age the set's RRPVs in place.
func (c *Cache) victimIndex(si int) int {
	base := si * c.Ways
	tv := c.tv[base : base+c.Ways]
	meta := c.meta[base : base+c.Ways]
	switch c.Policy {
	case NRU:
		for w := range tv {
			if tv[w]&1 == 0 {
				return base + w
			}
		}
		for w := range meta {
			if meta[w]&metaNRU == 0 {
				return base + w
			}
		}
		return base
	case SRRIP:
		for w := range tv {
			if tv[w]&1 == 0 {
				return base + w
			}
		}
		// evict the first line with maximum RRPV (3), aging until one exists
		for {
			for w := range meta {
				if meta[w]&rrpvMask >= 3<<rrpvShift {
					return base + w
				}
			}
			for w := range meta {
				meta[w] += rrpvOne
			}
		}
	case Rand:
		for w := range tv {
			if tv[w]&1 == 0 {
				return base + w
			}
		}
		c.rng ^= c.rng >> 12
		c.rng ^= c.rng << 25
		c.rng ^= c.rng >> 27
		return base + int(c.rng%uint64(c.Ways))
	default: // LRU: one fused pass finds an invalid way or the oldest line
		vi, best := base, ^uint32(0)
		for w := range tv {
			if tv[w]&1 == 0 {
				return base + w
			}
			if lru := uint32(meta[w] >> lruShift); lru < best {
				vi, best = base+w, lru
			}
		}
		return vi
	}
}

// Victim returns the replacement candidate for an address: an invalid way if
// one exists, else the policy victim. Only SRRIP aging modifies the set.
func (c *Cache) Victim(a mem.Addr) Ref {
	si, _ := c.Index(a)
	return Ref{c, int32(c.victimIndex(si))}
}

// Insert installs an address, returning the evicted line contents (valid
// only if a real eviction occurred). The new line is marked recently used.
func (c *Cache) Insert(a mem.Addr, dirty bool) (evicted Line) {
	si, tag := c.Index(a)
	vi := c.victimIndex(si)
	if c.tv[vi]&1 != 0 {
		evicted = c.snapshot(vi)
		c.Stats.Evictions++
		if c.meta[vi]&metaDirty != 0 {
			c.Stats.DirtyEvic++
		}
	}
	c.tv[vi] = tag<<1 | 1
	var m uint64
	if dirty {
		m = metaDirty
	}
	c.meta[vi] = m
	if c.state != nil {
		c.state[vi] = 0
	}
	if c.vmask != nil {
		c.vmask[vi] = 0
	}
	if c.dmask != nil {
		c.dmask[vi] = 0
	}
	if c.Policy == SRRIP {
		c.meta[vi] |= 2 << rrpvShift // long re-reference interval on insertion
	} else {
		c.touch(si*c.Ways, vi)
	}
	return evicted
}

// Invalidate removes an address if present, returning the removed line.
func (c *Cache) Invalidate(a mem.Addr) (Line, bool) {
	if r := c.Probe(a); r.Ok() {
		old := c.snapshot(int(r.i))
		c.clearSlot(int(r.i))
		return old, true
	}
	return Line{}, false
}

// LineAddr reconstructs the base line address of an entry in set si.
func (c *Cache) LineAddr(si int, tag uint64) mem.Addr {
	unit := tag<<c.setShift | uint64(si)
	return mem.Addr(unit * c.SetSkip << mem.LineShift)
}

// ForEach visits every valid line (used for BATMAN set disabling and tests).
func (c *Cache) ForEach(fn func(set int, r Ref)) {
	for si := 0; si < c.Sets; si++ {
		base := si * c.Ways
		for w := 0; w < c.Ways; w++ {
			if c.tv[base+w]&1 != 0 {
				fn(si, Ref{c, int32(base + w)})
			}
		}
	}
}

// ForEachInSet visits the valid lines of one set.
func (c *Cache) ForEachInSet(si int, fn func(r Ref)) {
	base := si * c.Ways
	for w := 0; w < c.Ways; w++ {
		if c.tv[base+w]&1 != 0 {
			fn(Ref{c, int32(base + w)})
		}
	}
}

// InvalidateSet clears an entire set, invoking fn for each valid line first.
func (c *Cache) InvalidateSet(si int, fn func(r Ref)) {
	base := si * c.Ways
	for w := 0; w < c.Ways; w++ {
		if c.tv[base+w]&1 != 0 {
			if fn != nil {
				fn(Ref{c, int32(base + w)})
			}
			c.clearSlot(base + w)
		}
	}
}

// Occupancy returns the fraction of valid lines.
func (c *Cache) Occupancy() float64 {
	n := 0
	for _, v := range c.tv {
		if v&1 != 0 {
			n++
		}
	}
	return float64(n) / float64(len(c.tv))
}
