package cache

import (
	"testing"

	"dap/internal/mem"
)

func TestSRRIPHitPromotion(t *testing.T) {
	c := New(1, 4, SRRIP, 1)
	a := mem.Addr(0)
	b := mem.Addr(1 << 6)
	c.Insert(a, false)
	c.Insert(b, false)
	c.Lookup(a) // promote a to rrpv 0
	// fill the set; a (rrpv 0) must survive the next evictions
	c.Insert(mem.Addr(2<<6), false)
	c.Insert(mem.Addr(3<<6), false)
	c.Insert(mem.Addr(4<<6), false) // evicts someone
	if !c.Probe(a).Ok() {
		t.Fatal("promoted line evicted before distant ones")
	}
}

func TestSRRIPAgingTerminates(t *testing.T) {
	c := New(1, 4, SRRIP, 1)
	for i := 0; i < 4; i++ {
		c.Insert(mem.Addr(i)<<6, false)
		c.Lookup(mem.Addr(i) << 6) // everything rrpv 0
	}
	// victim selection must age the set and still return a line
	v := c.Victim(mem.Addr(99) << 6)
	if !v.Ok() || !v.Valid() {
		t.Fatal("SRRIP aging must converge to a victim")
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// a reused working set should survive a one-pass scan better under
	// SRRIP than under LRU
	miss := func(p ReplPolicy) int {
		c := New(16, 4, p, 1)
		misses := 0
		hot := make([]mem.Addr, 32)
		for i := range hot {
			hot[i] = mem.Addr(i) << 6
		}
		scan := 0
		for round := 0; round < 200; round++ {
			// two passes over the hot set: the second establishes reuse
			for pass := 0; pass < 2; pass++ {
				for _, a := range hot {
					if !c.Lookup(a).Ok() {
						misses++
						c.Insert(a, false)
					}
				}
			}
			// scan 48 never-reused lines
			for i := 0; i < 48; i++ {
				scan++
				a := mem.Addr(1<<20) + mem.Addr(scan)<<6
				if !c.Lookup(a).Ok() {
					c.Insert(a, false)
				}
			}
		}
		return misses
	}
	lru, srrip := miss(LRU), miss(SRRIP)
	if srrip >= lru {
		t.Fatalf("SRRIP (%d misses) should beat LRU (%d) under scans", srrip, lru)
	}
}

func TestRandVictimIsValidWay(t *testing.T) {
	c := New(4, 4, Rand, 1)
	for i := 0; i < 64; i++ {
		c.Insert(mem.Addr(i)<<6, false)
	}
	// every set must still hold exactly Ways lines
	for si := 0; si < c.Sets; si++ {
		n := 0
		c.ForEachInSet(si, func(Ref) { n++ })
		if n != c.Ways {
			t.Fatalf("set %d holds %d lines", si, n)
		}
	}
}

func TestRandEventuallyEvictsEverything(t *testing.T) {
	c := New(1, 2, Rand, 1)
	c.Insert(mem.Addr(0), false)
	c.Insert(mem.Addr(1<<6), false)
	evicted := map[uint64]bool{}
	for i := 2; i < 200; i++ {
		ev := c.Insert(mem.Addr(i)<<6, false)
		if ev.Valid {
			evicted[ev.Tag] = true
		}
	}
	if len(evicted) < 100 {
		t.Fatalf("random replacement looks stuck: %d distinct evictions", len(evicted))
	}
}
