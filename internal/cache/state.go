package cache

import (
	"fmt"

	"dap/internal/ckpt"
)

// SaveState serializes the cache's complete mutable state — the packed tag
// and metadata arrays, the lazily-present side payloads, the recency tick,
// the random-victim RNG and the hit/miss counters — into a checkpoint
// section. Geometry (sets, ways, policy, set skip) is written first so
// LoadState can refuse a checkpoint taken under a different configuration.
// The packed arrays are written as bulk word arrays, and a side array that
// was never allocated writes a single absence flag instead of a block of
// zeros, so ordinary caches checkpoint at 16 bytes per line.
func (c *Cache) SaveState(e *ckpt.Enc) {
	e.U32(uint32(c.Sets))
	e.U32(uint32(c.Ways))
	e.U8(uint8(c.Policy))
	e.U64(c.SetSkip)
	e.U32(c.tick)
	e.U64(c.rng)
	e.U64(c.Stats.Hits)
	e.U64(c.Stats.Misses)
	e.U64(c.Stats.Evictions)
	e.U64(c.Stats.DirtyEvic)
	e.U64s(c.tv)
	e.U64s(c.meta)
	e.Bool(c.state != nil)
	if c.state != nil {
		e.U32s(c.state)
	}
	e.Bool(c.vmask != nil)
	if c.vmask != nil {
		e.U64s(c.vmask)
	}
	e.Bool(c.dmask != nil)
	if c.dmask != nil {
		e.U64s(c.dmask)
	}
}

// LoadState restores state saved by SaveState. The receiver must have been
// constructed with the same geometry; a mismatch returns an error without
// modifying the cache.
func (c *Cache) LoadState(d *ckpt.Dec) error {
	sets, ways := int(d.U32()), int(d.U32())
	policy, skip := ReplPolicy(d.U8()), d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if sets != c.Sets || ways != c.Ways || policy != c.Policy || skip != c.SetSkip {
		return fmt.Errorf("cache: checkpoint geometry %d sets x %d ways policy %d skip %d != built %d x %d policy %d skip %d",
			sets, ways, policy, skip, c.Sets, c.Ways, c.Policy, c.SetSkip)
	}
	c.tick = d.U32()
	c.rng = d.U64()
	c.Stats.Hits = d.U64()
	c.Stats.Misses = d.U64()
	c.Stats.Evictions = d.U64()
	c.Stats.DirtyEvic = d.U64()
	d.U64s(c.tv)
	d.U64s(c.meta)
	if d.Bool() {
		if c.state == nil {
			c.state = make([]uint32, len(c.tv))
		}
		d.U32s(c.state)
	} else {
		c.state = nil
	}
	if d.Bool() {
		if c.vmask == nil {
			c.vmask = make([]uint64, len(c.tv))
		}
		d.U64s(c.vmask)
	} else {
		c.vmask = nil
	}
	if d.Bool() {
		if c.dmask == nil {
			c.dmask = make([]uint64, len(c.tv))
		}
		d.U64s(c.dmask)
	} else {
		c.dmask = nil
	}
	return d.Err()
}
