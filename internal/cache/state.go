package cache

import (
	"fmt"

	"dap/internal/ckpt"
)

// SaveState serializes the cache's complete mutable state — every line
// including replacement metadata, the recency tick, the random-victim RNG
// and the hit/miss counters — into a checkpoint section. Geometry (sets,
// ways, policy, set skip) is written first so LoadState can refuse a
// checkpoint taken under a different configuration.
func (c *Cache) SaveState(e *ckpt.Enc) {
	e.U32(uint32(c.Sets))
	e.U32(uint32(c.Ways))
	e.U8(uint8(c.Policy))
	e.U64(c.SetSkip)
	e.U32(c.tick)
	e.U64(c.rng)
	e.U64(c.Stats.Hits)
	e.U64(c.Stats.Misses)
	e.U64(c.Stats.Evictions)
	e.U64(c.Stats.DirtyEvic)
	for i := range c.lines {
		l := &c.lines[i]
		e.U64(l.Tag)
		e.Bool(l.Valid)
		e.Bool(l.Dirty)
		e.U32(l.State)
		e.U64(l.VMask)
		e.U64(l.DMask)
		e.U32(l.lru)
		e.Bool(l.nru)
		e.U8(l.rrpv)
	}
}

// LoadState restores state saved by SaveState. The receiver must have been
// constructed with the same geometry; a mismatch returns an error without
// modifying the cache.
func (c *Cache) LoadState(d *ckpt.Dec) error {
	sets, ways := int(d.U32()), int(d.U32())
	policy, skip := ReplPolicy(d.U8()), d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if sets != c.Sets || ways != c.Ways || policy != c.Policy || skip != c.SetSkip {
		return fmt.Errorf("cache: checkpoint geometry %d sets x %d ways policy %d skip %d != built %d x %d policy %d skip %d",
			sets, ways, policy, skip, c.Sets, c.Ways, c.Policy, c.SetSkip)
	}
	c.tick = d.U32()
	c.rng = d.U64()
	c.Stats.Hits = d.U64()
	c.Stats.Misses = d.U64()
	c.Stats.Evictions = d.U64()
	c.Stats.DirtyEvic = d.U64()
	for i := range c.lines {
		l := &c.lines[i]
		l.Tag = d.U64()
		l.Valid = d.Bool()
		l.Dirty = d.Bool()
		l.State = d.U32()
		l.VMask = d.U64()
		l.DMask = d.U64()
		l.lru = d.U32()
		l.nru = d.Bool()
		l.rrpv = d.U8()
	}
	return d.Err()
}
