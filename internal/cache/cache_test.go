package cache

import (
	"testing"
	"testing/quick"

	"dap/internal/mem"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(16, 2, LRU, 1)
	a := mem.Addr(0x1000)
	if c.Lookup(a).Ok() {
		t.Fatal("empty cache must miss")
	}
	c.Insert(a, false)
	if !c.Lookup(a).Ok() {
		t.Fatal("inserted line must hit")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUVictim(t *testing.T) {
	c := New(1, 2, LRU, 1) // single set, 2 ways
	a := mem.Addr(0 << 6)
	b := mem.Addr(1 << 6)
	x := mem.Addr(2 << 6)
	c.Insert(a, false)
	c.Insert(b, false)
	c.Lookup(a) // a is MRU
	ev := c.Insert(x, false)
	if !ev.Valid {
		t.Fatal("full set must evict")
	}
	if c.Probe(b).Ok() {
		t.Fatal("LRU victim should have been b")
	}
	if !c.Probe(a).Ok() || !c.Probe(x).Ok() {
		t.Fatal("a and x must remain")
	}
}

func TestNRUVictimPrefersNotRecentlyUsed(t *testing.T) {
	c := New(1, 4, NRU, 1)
	addrs := []mem.Addr{0 << 6, 1 << 6, 2 << 6, 3 << 6}
	for _, a := range addrs {
		c.Insert(a, false)
	}
	// Touch all but addrs[2]; when all become recently-used the others are
	// cleared, so the last touched keeps its bit.
	c.Lookup(addrs[0])
	c.Lookup(addrs[1])
	c.Lookup(addrs[3])
	v := c.Victim(addrs[0])
	if !v.Ok() || !v.Valid() {
		t.Fatal("victim must be a valid line in a full set")
	}
	// insert and make sure the cache still functions
	c.Insert(mem.Addr(4<<6), false)
	if !c.Probe(mem.Addr(4<<6)).Ok() {
		t.Fatal("new line must be present")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(8, 2, LRU, 1)
	a := mem.Addr(0x40)
	c.Insert(a, true)
	l, ok := c.Invalidate(a)
	if !ok || !l.Dirty {
		t.Fatalf("invalidate = %+v, %v", l, ok)
	}
	if c.Probe(a).Ok() {
		t.Fatal("line must be gone")
	}
	if _, ok := c.Invalidate(a); ok {
		t.Fatal("second invalidate must miss")
	}
}

func TestLineAddrRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		c := New(64, 4, LRU, 1)
		a := mem.Addr(raw).LineAligned()
		si, tag := c.Index(a)
		return c.LineAddr(si, tag) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineAddrRoundTripSectored(t *testing.T) {
	// SetSkip = 64 (4 KB sectors): LineAddr returns the sector base.
	f := func(raw uint32) bool {
		c := New(64, 4, NRU, 64)
		a := mem.Addr(raw).LineAligned()
		si, tag := c.Index(a)
		base := c.LineAddr(si, tag)
		// base must be sector-aligned and within the same sector as a
		return uint64(base)%(64*mem.LineBytes) == 0 &&
			uint64(a)/(64*mem.LineBytes) == uint64(base)/(64*mem.LineBytes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertEvictReturnsContents(t *testing.T) {
	c := New(1, 1, LRU, 1)
	a := mem.Addr(0x40)
	c.Insert(a, true)
	l := c.Probe(a)
	l.SetVMask(0xdeadbeef)
	ev := c.Insert(mem.Addr(0x40+64*1), false)
	if !ev.Valid || !ev.Dirty || ev.VMask != 0xdeadbeef {
		t.Fatalf("evicted = %+v", ev)
	}
}

func TestOccupancyAndForEach(t *testing.T) {
	c := New(4, 2, LRU, 1)
	for i := 0; i < 4; i++ {
		c.Insert(mem.Addr(i*64), false)
	}
	if got := c.Occupancy(); got != 0.5 {
		t.Fatalf("occupancy = %v, want 0.5", got)
	}
	n := 0
	c.ForEach(func(set int, l Ref) { n++ })
	if n != 4 {
		t.Fatalf("ForEach visited %d, want 4", n)
	}
}

func TestInvalidateSet(t *testing.T) {
	c := New(2, 2, LRU, 1)
	c.Insert(mem.Addr(0*64), true)  // set 0
	c.Insert(mem.Addr(2*64), false) // set 0
	c.Insert(mem.Addr(1*64), false) // set 1
	seen := 0
	c.InvalidateSet(0, func(l Ref) { seen++ })
	if seen != 2 {
		t.Fatalf("visited %d lines, want 2", seen)
	}
	if c.Probe(mem.Addr(0)).Ok() || c.Probe(mem.Addr(2*64)).Ok() {
		t.Fatal("set 0 must be empty")
	}
	if !c.Probe(mem.Addr(1*64)).Ok() {
		t.Fatal("set 1 must be untouched")
	}
}

func TestNewBytesRoundsSetsToPowerOfTwo(t *testing.T) {
	// 8 MiB at 15 ways: 8 MiB/64/15 = 8738 -> 8192 sets.
	c := NewBytes(8*mem.MiB, 15, LRU)
	if c.Sets != 8192 {
		t.Fatalf("sets = %d, want 8192", c.Sets)
	}
}

func TestStatsRatios(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 || s.MissRatio() != 0 {
		t.Fatal("empty stats must be zero")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRatio() != 0.75 || s.MissRatio() != 0.25 {
		t.Fatalf("ratios = %v/%v", s.HitRatio(), s.MissRatio())
	}
}

// Property: a fresh insert is always found, and a full set holds exactly
// Ways distinct tags.
func TestSetNeverOverflows(t *testing.T) {
	f := func(seeds []uint16) bool {
		c := New(4, 3, LRU, 1)
		for _, s := range seeds {
			c.Insert(mem.Addr(s)<<6, s%2 == 0)
		}
		for si := 0; si < c.Sets; si++ {
			n := 0
			c.ForEachInSet(si, func(Ref) { n++ })
			if n > c.Ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: inserting then probing always hits, regardless of history.
func TestInsertThenProbe(t *testing.T) {
	f := func(seeds []uint16, a uint16) bool {
		c := New(8, 2, NRU, 1)
		for _, s := range seeds {
			c.Insert(mem.Addr(s)<<6, false)
		}
		addr := mem.Addr(a) << 6
		c.Insert(addr, false)
		return c.Probe(addr).Ok()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
