package cache

import (
	"testing"

	"dap/internal/mem"
)

// TestHotPathAllocs pins the point of the packed SoA tag store: the probe
// loop — Probe/Lookup returning a value Ref, reading line metadata through
// it, touching replacement state, and steady-state Insert over a warm set —
// performs zero heap allocations. A Ref that escaped to the heap or a
// metadata accessor that boxed would show up here immediately.
func TestHotPathAllocs(t *testing.T) {
	c := New(256, 8, LRU, 1)
	for i := 0; i < 256*8; i++ {
		c.Insert(mem.Addr(i*mem.LineBytes), i%3 == 0)
	}
	addrs := [...]mem.Addr{0, 64 * mem.LineBytes, 1024 * mem.LineBytes, 4095 * mem.LineBytes}

	if a := testing.AllocsPerRun(1000, func() {
		for _, ad := range addrs {
			if r := c.Probe(ad); r.Ok() {
				_ = r.Tag()
				_ = r.Dirty()
				_ = r.State()
				_ = r.VMask()
			}
		}
	}); a != 0 {
		t.Fatalf("Probe loop allocates %.1f times per run, want 0", a)
	}

	if a := testing.AllocsPerRun(1000, func() {
		for _, ad := range addrs {
			if r := c.Lookup(ad); r.Ok() {
				r.MarkDirty()
			}
		}
	}); a != 0 {
		t.Fatalf("Lookup loop allocates %.1f times per run, want 0", a)
	}

	// Steady-state insert into a full cache: eviction plus install reuses
	// the packed arrays, no per-line records exist to allocate.
	var n int
	if a := testing.AllocsPerRun(1000, func() {
		c.Insert(mem.Addr(n*mem.LineBytes), n%2 == 0)
		n++
	}); a != 0 {
		t.Fatalf("warm Insert allocates %.1f times per run, want 0", a)
	}
}
