package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram is a power-of-two-bucketed latency histogram: bucket i counts
// samples in [2^i, 2^(i+1)).
type Histogram struct {
	Buckets [32]uint64
	Count   uint64
	Sum     uint64
	MaxSeen uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	i := bits.Len64(v)
	if i > 0 {
		i--
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.MaxSeen {
		h.MaxSeen = v
	}
}

// Mean returns the average sample.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an upper bound for the p-th percentile (bucket upper
// edge), p in [0,100].
func (h *Histogram) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(p / 100 * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen > target {
			return 1 << uint(i+1)
		}
	}
	return h.MaxSeen
}

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.MaxSeen > h.MaxSeen {
		h.MaxSeen = o.MaxSeen
	}
}

// String renders the non-empty buckets as an ASCII bar chart.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "(empty)"
	}
	var max uint64
	lo, hi := -1, 0
	for i, c := range h.Buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > max {
				max = c
			}
		}
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		bar := int(h.Buckets[i] * 40 / max)
		fmt.Fprintf(&b, "%8d- %8d %s\n", 1<<uint(i), 1<<uint(i+1)-1, strings.Repeat("#", bar))
	}
	return b.String()
}
