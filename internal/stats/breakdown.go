package stats

import (
	"fmt"
	"strings"
)

// Serving-source indices for LatencyBreakdown cells: which bandwidth source
// returned the data of a traced L3 miss.
const (
	BDSrcCache = iota // served by the memory-side cache array
	BDSrcMain         // served by main memory
	BDNumSrc
)

// DAP-technique indices for LatencyBreakdown cells: which partitioning
// technique (if any) steered the traced miss. Fill/write bypasses never
// steer a read's serving source, so only the read-side techniques appear.
const (
	BDTechNone = iota // no technique applied
	BDTechIFRM        // instantaneous forced read miss
	BDTechSFRM        // speculative forced read miss
	BDNumTech
)

var (
	bdSrcNames  = [BDNumSrc]string{"ms$", "mm"}
	bdTechNames = [BDNumTech]string{"none", "ifrm", "sfrm"}
)

// BDSrcName names a serving-source index.
func BDSrcName(i int) string {
	if i >= 0 && i < BDNumSrc {
		return bdSrcNames[i]
	}
	return fmt.Sprintf("src(%d)", i)
}

// BDTechName names a technique index.
func BDTechName(i int) string {
	if i >= 0 && i < BDNumTech {
		return bdTechNames[i]
	}
	return fmt.Sprintf("tech(%d)", i)
}

// PhaseLatency holds the per-phase latency distributions of traced L3
// misses: in-device queueing of the serving access, the tag/metadata probe
// round trip, the data-service remainder, and the end-to-end total.
type PhaseLatency struct {
	Queue, Meta, Service, Total Histogram
}

// Merge folds another PhaseLatency into p.
func (p *PhaseLatency) Merge(o *PhaseLatency) {
	p.Queue.Merge(&o.Queue)
	p.Meta.Merge(&o.Meta)
	p.Service.Merge(&o.Service)
	p.Total.Merge(&o.Total)
}

// LatencyBreakdown aggregates traced L3-miss phase latencies by serving
// source and by the DAP technique applied. It is populated by the
// request-lifecycle tracer in internal/obs and deliberately lives outside
// Run, so instrumented runs keep a bit-identical stats.Run.
type LatencyBreakdown struct {
	Cells [BDNumSrc][BDNumTech]PhaseLatency
}

// Add records one traced miss. Out-of-range indices are dropped rather than
// panicking — the breakdown is diagnostics, not control flow.
func (b *LatencyBreakdown) Add(src, tech int, queue, meta, service, total uint64) {
	if b == nil || src < 0 || src >= BDNumSrc || tech < 0 || tech >= BDNumTech {
		return
	}
	c := &b.Cells[src][tech]
	c.Queue.Add(queue)
	c.Meta.Add(meta)
	c.Service.Add(service)
	c.Total.Add(total)
}

// Spans returns the total number of traced misses recorded.
func (b *LatencyBreakdown) Spans() uint64 {
	if b == nil {
		return 0
	}
	var n uint64
	for s := range b.Cells {
		for t := range b.Cells[s] {
			n += b.Cells[s][t].Total.Count
		}
	}
	return n
}

// BySource merges the technique cells of one serving source.
func (b *LatencyBreakdown) BySource(src int) PhaseLatency {
	var out PhaseLatency
	if b == nil || src < 0 || src >= BDNumSrc {
		return out
	}
	for t := range b.Cells[src] {
		out.Merge(&b.Cells[src][t])
	}
	return out
}

// String renders the populated cells as a table of counts, mean phase
// latencies and the p99 of the end-to-end total (cycles).
func (b *LatencyBreakdown) String() string {
	if b == nil || b.Spans() == 0 {
		return "(no traced spans)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %8s %8s %8s %8s %8s\n",
		"src/tech", "spans", "queue", "meta", "service", "total", "p99")
	for s := 0; s < BDNumSrc; s++ {
		for t := 0; t < BDNumTech; t++ {
			c := &b.Cells[s][t]
			if c.Total.Count == 0 {
				continue
			}
			fmt.Fprintf(&sb, "%-12s %10d %8.1f %8.1f %8.1f %8.1f %8d\n",
				BDSrcName(s)+"/"+BDTechName(t), c.Total.Count,
				c.Queue.Mean(), c.Meta.Mean(), c.Service.Mean(), c.Total.Mean(),
				c.Total.Percentile(99))
		}
	}
	return sb.String()
}
