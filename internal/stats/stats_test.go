package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dap/internal/mem"
)

func TestCoreStatsDerived(t *testing.T) {
	c := CoreStats{Instructions: 2000, Cycles: 1000, L3Misses: 40,
		L3ReadMissLatSum: 5000, L3ReadMisses: 25}
	if c.IPC() != 2.0 {
		t.Fatalf("IPC = %v", c.IPC())
	}
	if c.MPKI() != 20 {
		t.Fatalf("MPKI = %v", c.MPKI())
	}
	if c.AvgL3ReadMissLatency() != 200 {
		t.Fatalf("lat = %v", c.AvgL3ReadMissLatency())
	}
	var zero CoreStats
	if zero.IPC() != 0 || zero.MPKI() != 0 || zero.AvgL3ReadMissLatency() != 0 {
		t.Fatal("zero-value stats must not divide by zero")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	cores := []CoreStats{
		{Instructions: 100, Cycles: 100}, // IPC 1
		{Instructions: 200, Cycles: 100}, // IPC 2
	}
	ws := WeightedSpeedup(cores, []float64{2, 4})
	if ws != 1.0 {
		t.Fatalf("ws = %v, want 0.5+0.5", ws)
	}
	// zero alone IPCs contribute nothing
	if got := WeightedSpeedup(cores, []float64{0, 4}); got != 0.5 {
		t.Fatalf("ws = %v", got)
	}
	// short alone slice is tolerated
	if got := WeightedSpeedup(cores, []float64{2}); got != 0.5 {
		t.Fatalf("ws = %v", got)
	}
}

func TestDAPDecisionFractions(t *testing.T) {
	d := DAPDecisions{FWB: 1, WB: 2, IFRM: 3, SFRM: 4}
	if d.Total() != 10 {
		t.Fatalf("total = %d", d.Total())
	}
	f, w, i, s := d.Fractions()
	if f != 0.1 || w != 0.2 || i != 0.3 || s != 0.4 {
		t.Fatalf("fractions = %v %v %v %v", f, w, i, s)
	}
	var zero DAPDecisions
	f, w, i, s = zero.Fractions()
	if f+w+i+s != 0 {
		t.Fatal("zero decisions must produce zero fractions")
	}
}

func TestMemSideRatios(t *testing.T) {
	m := MemSideStats{ReadHits: 70, ReadMisses: 10, WriteHits: 15, WriteMisses: 5}
	if m.HitRatio() != 0.85 {
		t.Fatalf("hit = %v", m.HitRatio())
	}
	if m.ReadHitRatio() != 0.875 {
		t.Fatalf("read hit = %v", m.ReadHitRatio())
	}
	m.TagCacheHits, m.TagCacheMisses = 3, 1
	if m.TagCacheMissRatio() != 0.25 {
		t.Fatalf("tag miss = %v", m.TagCacheMissRatio())
	}
}

func TestRunDerived(t *testing.T) {
	r := Run{MSCacheCAS: 73, MainMemCAS: 27}
	if math.Abs(r.MainMemCASFraction()-0.27) > 1e-12 {
		t.Fatalf("cas frac = %v", r.MainMemCASFraction())
	}
	r.Cores = []CoreStats{
		{L3ReadMissLatSum: 100, L3ReadMisses: 1},
		{L3ReadMissLatSum: 300, L3ReadMisses: 1},
	}
	if r.AvgL3ReadMissLatency() != 200 {
		t.Fatalf("avg lat = %v", r.AvgL3ReadMissLatency())
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean = %v", g)
	}
	// zeros and negatives are skipped
	if g := GeoMean([]float64{0, -1, 4}); g != 4 {
		t.Fatalf("geomean with junk = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("empty = %v", g)
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		var vs []float64
		lo, hi := math.Inf(1), 0.0
		for _, r := range raw {
			v := float64(r)/100 + 0.01
			vs = append(vs, v)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if len(vs) == 0 {
			return true
		}
		g := GeoMean(vs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndSorted(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
	in := []float64{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("sorted = %v", out)
	}
	if in[0] != 3 {
		t.Fatal("input must not be mutated")
	}
}

func TestRow(t *testing.T) {
	s := Row("label", 1.5, 2.25)
	if !strings.Contains(s, "label") || !strings.Contains(s, "1.500") {
		t.Fatalf("row = %q", s)
	}
	_ = mem.Cycle(0)
}
