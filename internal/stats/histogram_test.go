package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 4, 100, 1000} {
		h.Add(v)
	}
	if h.Count != 6 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Mean() != (1+2+3+4+100+1000)/6.0 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.MaxSeen != 1000 {
		t.Fatalf("max = %d", h.MaxSeen)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Add(i)
	}
	p50 := h.Percentile(50)
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 = %d, want within a bucket of ~500", p50)
	}
	p99 := h.Percentile(99)
	if p99 < p50 {
		t.Fatal("p99 must be >= p50")
	}
	if h.Percentile(0) == 0 {
		t.Fatal("p0 of nonzero samples must be nonzero")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(5)
	b.Add(500)
	a.Merge(&b)
	if a.Count != 2 || a.MaxSeen != 500 {
		t.Fatalf("merge: %+v", a)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if h.String() != "(empty)" {
		t.Fatal("empty histogram")
	}
	h.Add(10)
	h.Add(12)
	h.Add(300)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Fatalf("no bars in %q", s)
	}
}

// Property: percentiles are monotone in p and bounded by bucket edges
// containing MaxSeen.
func TestHistogramPercentileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Add(uint64(v) + 1)
		}
		prev := uint64(0)
		for p := 0.0; p <= 100; p += 10 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
