// Package stats collects and aggregates the metrics the paper reports:
// per-core IPC, weighted speedup, memory-side cache hit rates, main-memory
// CAS fractions, DAP decision mixes and L3 read-miss latencies.
package stats

import (
	"fmt"
	"math"
	"sort"

	"dap/internal/mem"
)

// CoreStats tracks one core's progress.
type CoreStats struct {
	Instructions     uint64
	Cycles           mem.Cycle // cycles to retire Instructions
	L3Misses         uint64
	L3ReadMissLatSum mem.Cycle
	L3ReadMisses     uint64
	// L3MissLat is the distribution of L3 read-miss round trips.
	L3MissLat Histogram
}

// IPC returns retired instructions per cycle.
func (c *CoreStats) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// MPKI returns L3 misses per kilo-instruction.
func (c *CoreStats) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.L3Misses) / float64(c.Instructions) * 1000
}

// AvgL3ReadMissLatency returns the mean round-trip latency of L3 read misses.
func (c *CoreStats) AvgL3ReadMissLatency() float64 {
	if c.L3ReadMisses == 0 {
		return 0
	}
	return float64(c.L3ReadMissLatSum) / float64(c.L3ReadMisses)
}

// WeightedSpeedup computes sum_i IPC_i / IPCalone_i. The alone slice must be
// parallel to cores; zero alone IPCs contribute zero.
func WeightedSpeedup(cores []CoreStats, alone []float64) float64 {
	ws := 0.0
	for i := range cores {
		if i < len(alone) && alone[i] > 0 {
			ws += cores[i].IPC() / alone[i]
		}
	}
	return ws
}

// DAPDecisions counts technique applications (Figure 7).
type DAPDecisions struct {
	FWB, WB, IFRM, SFRM uint64
}

// Total returns the number of partitioning decisions taken.
func (d DAPDecisions) Total() uint64 { return d.FWB + d.WB + d.IFRM + d.SFRM }

// Fractions returns each technique's share of all decisions.
func (d DAPDecisions) Fractions() (fwb, wb, ifrm, sfrm float64) {
	t := d.Total()
	if t == 0 {
		return 0, 0, 0, 0
	}
	return float64(d.FWB) / float64(t), float64(d.WB) / float64(t),
		float64(d.IFRM) / float64(t), float64(d.SFRM) / float64(t)
}

// MemSideStats tracks memory-side cache behaviour.
type MemSideStats struct {
	ReadHits    uint64
	ReadMisses  uint64
	WriteHits   uint64
	WriteMisses uint64

	Fills         uint64
	FillBypasses  uint64
	WriteBypasses uint64
	ForcedMisses  uint64 // IFRM applications
	SpecForced    uint64 // SFRM issued
	SpecWasted    uint64 // SFRM that turned out dirty-hit (wasted MM bandwidth)

	TagCacheHits   uint64
	TagCacheMisses uint64
	MetaReads      uint64
	MetaWrites     uint64
	VictimReads    uint64
	SectorEvicts   uint64
	DirtyWriteouts uint64
}

// HitRatio is the combined read+write hit ratio the paper plots in Fig. 8.
func (m *MemSideStats) HitRatio() float64 {
	t := m.ReadHits + m.ReadMisses + m.WriteHits + m.WriteMisses
	if t == 0 {
		return 0
	}
	return float64(m.ReadHits+m.WriteHits) / float64(t)
}

// ReadHitRatio is hits over demand reads only.
func (m *MemSideStats) ReadHitRatio() float64 {
	t := m.ReadHits + m.ReadMisses
	if t == 0 {
		return 0
	}
	return float64(m.ReadHits) / float64(t)
}

// SpecWastedRatio is the fraction of SFRM speculative main-memory reads
// whose data was discarded because the access turned out to be a dirty hit
// (wasted main-memory bandwidth, Section 4.4).
func (m *MemSideStats) SpecWastedRatio() float64 {
	if m.SpecForced == 0 {
		return 0
	}
	return float64(m.SpecWasted) / float64(m.SpecForced)
}

// TagCacheMissRatio is the SRAM tag-cache miss rate (Figure 5).
func (m *MemSideStats) TagCacheMissRatio() float64 {
	t := m.TagCacheHits + m.TagCacheMisses
	if t == 0 {
		return 0
	}
	return float64(m.TagCacheMisses) / float64(t)
}

// Run captures everything measured during one simulation.
type Run struct {
	Cycles  mem.Cycle
	Cores   []CoreStats
	MemSide MemSideStats
	DAP     DAPDecisions

	// CAS counts by source for the main-memory CAS fraction (Fig. 8/14).
	MSCacheCAS uint64
	MainMemCAS uint64

	// Delivered bandwidth in GB/s (for the Figure 1 kernel).
	DeliveredGBps float64
}

// MainMemCASFraction is MM CAS / (MM CAS + MS$ CAS).
func (r *Run) MainMemCASFraction() float64 {
	t := r.MSCacheCAS + r.MainMemCAS
	if t == 0 {
		return 0
	}
	return float64(r.MainMemCAS) / float64(t)
}

// WeightedSpeedup against per-core alone IPCs.
func (r *Run) WeightedSpeedup(alone []float64) float64 { return WeightedSpeedup(r.Cores, alone) }

// AvgL3ReadMissLatency averages over cores with traffic.
func (r *Run) AvgL3ReadMissLatency() float64 {
	var sum mem.Cycle
	var n uint64
	for i := range r.Cores {
		sum += r.Cores[i].L3ReadMissLatSum
		n += r.Cores[i].L3ReadMisses
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative entries are skipped (matching how the paper reports GMEAN over
// normalized speedups).
func GeoMean(vs []float64) float64 {
	s, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Mean returns the arithmetic mean.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// SortedCopy returns an ascending copy (Fig. 12 sorts mixes by speedup).
func SortedCopy(vs []float64) []float64 {
	out := append([]float64(nil), vs...)
	sort.Float64s(out)
	return out
}

// Quantile returns the q-th quantile (0 <= q <= 1) of vs using linear
// interpolation between order statistics; 0 for an empty slice. Used by the
// optimality-gap CDF tables.
func Quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := SortedCopy(vs)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Row formats a labelled metric line for harness tables.
func Row(label string, vals ...float64) string {
	s := fmt.Sprintf("%-22s", label)
	for _, v := range vals {
		s += fmt.Sprintf(" %8.3f", v)
	}
	return s
}
