package policy

import (
	"fmt"
	"sort"

	"dap/internal/ckpt"
	"dap/internal/mem"
)

// Checkpoint serialization for the policy state machines. Functional warmup
// never invokes SBD or BATMAN (they only observe the timed datapath), so at
// warmup-checkpoint time both are in their freshly-constructed state; they
// are serialized anyway so a checkpoint is a complete simulator snapshot
// and the format does not have to change if a future warmup path starts
// training them.

// SaveState serializes the SBD decision state: the counting Bloom filter
// bank, the Dirty List (sorted by page so the byte stream is deterministic
// despite map iteration order), the hit-predictor EWMA and the decay
// bookkeeping.
func (s *SBD) SaveState(e *ckpt.Enc) {
	e.U32(uint32(len(s.counters)))
	for _, c := range s.counters {
		e.U8(c)
	}
	pages := make([]mem.Addr, 0, len(s.dirty))
	for p := range s.dirty {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	e.U32(uint32(len(pages)))
	for _, p := range pages {
		e.U64(uint64(p))
		e.U32(s.dirty[p])
	}
	e.U32(s.hitEWMA)
	e.U64(s.writes)
	e.U64(s.SteeredMM)
	e.U64(s.Promotions)
	e.U64(s.Cleanings)
}

// LoadState restores state saved by SaveState.
func (s *SBD) LoadState(d *ckpt.Dec) error {
	if n := int(d.U32()); n != len(s.counters) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("policy: SBD checkpoint has %d counters, built %d", n, len(s.counters))
	}
	for i := range s.counters {
		s.counters[i] = d.U8()
	}
	n := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	s.dirty = make(map[mem.Addr]uint32, n)
	for i := 0; i < n; i++ {
		p := mem.Addr(d.U64())
		s.dirty[p] = d.U32()
	}
	s.hitEWMA = d.U32()
	s.writes = d.U64()
	s.SteeredMM = d.U64()
	s.Promotions = d.U64()
	s.Cleanings = d.U64()
	return d.Err()
}

// SaveState serializes BATMAN's adaptive state: the disabled-set watermark,
// the in-epoch hit/lookup counters and the epoch statistics.
func (b *BATMAN) SaveState(e *ckpt.Enc) {
	e.U32(uint32(b.sets))
	e.U32(uint32(b.disabled))
	e.U64(b.hits)
	e.U64(b.lookups)
	e.U64(b.Epochs)
	e.U64(b.DisableOps)
	e.U64(b.EnableOps)
}

// LoadState restores state saved by SaveState.
func (b *BATMAN) LoadState(d *ckpt.Dec) error {
	if n := int(d.U32()); n != b.sets {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("policy: BATMAN checkpoint has %d sets, built %d", n, b.sets)
	}
	b.disabled = int(d.U32())
	b.hits = d.U64()
	b.lookups = d.U64()
	b.Epochs = d.U64()
	b.DisableOps = d.U64()
	b.EnableOps = d.U64()
	return d.Err()
}
