package policy

import (
	"testing"

	"dap/internal/mem"
)

func TestSBDDirtyListPromotion(t *testing.T) {
	s := NewSBD(false)
	page := mem.Addr(42)
	if s.InDirtyList(page) {
		t.Fatal("fresh page must not be dirty-listed")
	}
	for i := 0; i < int(s.DirtyThreshold); i++ {
		s.NoteWrite(page)
	}
	if !s.InDirtyList(page) {
		t.Fatalf("page must be promoted after %d writes", s.DirtyThreshold)
	}
	if s.Promotions != 1 {
		t.Fatalf("promotions = %d", s.Promotions)
	}
}

func TestSBDListEvictionForcesCleaning(t *testing.T) {
	s := NewSBD(false)
	s.ListCap = 2
	fill := func(p mem.Addr) (mem.Addr, bool) {
		var ev mem.Addr
		var clean bool
		for i := 0; i < int(s.DirtyThreshold)+2; i++ {
			if e, c := s.NoteWrite(p); c {
				ev, clean = e, c
			}
		}
		return ev, clean
	}
	fill(1)
	fill(2)
	ev, clean := fill(3)
	if !clean || ev == 0 {
		t.Fatalf("list overflow must evict and request cleaning (ev=%d clean=%v)", ev, clean)
	}
}

func TestSBDWTNeverCleans(t *testing.T) {
	s := NewSBD(true)
	s.ListCap = 1
	for p := mem.Addr(1); p <= 8; p++ {
		for i := 0; i < 10; i++ {
			if _, clean := s.NoteWrite(p); clean {
				t.Fatal("SBD-WT must never request cleaning")
			}
		}
	}
}

func TestSBDHitPredictor(t *testing.T) {
	s := NewSBD(false)
	for i := 0; i < 50; i++ {
		s.NoteReadOutcome(false)
	}
	if s.PredictHit() {
		t.Fatal("persistent misses must predict miss")
	}
	for i := 0; i < 50; i++ {
		s.NoteReadOutcome(true)
	}
	if !s.PredictHit() {
		t.Fatal("persistent hits must predict hit")
	}
}

func TestSBDSteering(t *testing.T) {
	s := NewSBD(false)
	// empty memory queue, loaded cache queue: steer to memory
	if !s.SteerToMM(0, 50, 14, 10, 96, 60) {
		t.Fatal("loaded cache should steer to memory")
	}
	// empty cache queue: stay
	if s.SteerToMM(50, 0, 14, 10, 96, 60) {
		t.Fatal("loaded memory should not steer")
	}
	if s.SteeredMM != 1 {
		t.Fatalf("steered = %d", s.SteeredMM)
	}
}

func TestSBDDecay(t *testing.T) {
	s := NewSBD(false)
	p := mem.Addr(7)
	for i := 0; i < int(s.DirtyThreshold); i++ {
		s.NoteWrite(p)
	}
	if !s.InDirtyList(p) {
		t.Fatal("promoted")
	}
	// force decay epochs: counts halve
	before := s.dirty[p]
	s.decay()
	if s.dirty[p] > before/2+1 {
		t.Fatal("decay must halve list counts")
	}
}

func TestBATMANTargetHitRate(t *testing.T) {
	b := NewBATMAN(1024, 102.4, 38.4)
	want := 102.4 / 140.8
	if b.TargetHitRate < want-1e-9 || b.TargetHitRate > want+1e-9 {
		t.Fatalf("target = %v, want %v", b.TargetHitRate, want)
	}
}

func TestBATMANDisablesAboveTarget(t *testing.T) {
	b := NewBATMAN(1024, 102.4, 38.4)
	for i := 0; i < 1000; i++ {
		b.NoteLookup(true) // 100% hit rate, far above target
	}
	from, to := b.Epoch()
	if to-from != 32 {
		t.Fatalf("disabled interval = [%d,%d), want one step of 32", from, to)
	}
	if !b.Disabled(0) || b.Disabled(32) {
		t.Fatal("sets [0,32) must be off, set 32 on")
	}
}

func TestBATMANReenablesBelowTarget(t *testing.T) {
	b := NewBATMAN(1024, 102.4, 38.4)
	for i := 0; i < 1000; i++ {
		b.NoteLookup(true)
	}
	b.Epoch()
	for i := 0; i < 1000; i++ {
		b.NoteLookup(i%2 == 0) // 50%: below target
	}
	b.Epoch()
	if b.DisabledSets() != 0 {
		t.Fatalf("disabled = %d, want 0", b.DisabledSets())
	}
}

func TestBATMANDeadBand(t *testing.T) {
	b := NewBATMAN(1024, 102.4, 38.4)
	// hit rate exactly at target: no action
	n := 1000
	hits := int(b.TargetHitRate * float64(n))
	for i := 0; i < n; i++ {
		b.NoteLookup(i < hits)
	}
	if f, to := b.Epoch(); f != to {
		t.Fatal("dead band must hold steady")
	}
	if b.DisabledSets() != 0 {
		t.Fatal("no sets should be disabled at the target")
	}
}

func TestBATMANNeedsSamples(t *testing.T) {
	b := NewBATMAN(1024, 102.4, 38.4)
	for i := 0; i < 10; i++ {
		b.NoteLookup(true)
	}
	if f, to := b.Epoch(); f != to {
		t.Fatal("too few samples must not trigger disabling")
	}
}

func TestBATMANCapsAtHalf(t *testing.T) {
	b := NewBATMAN(64, 102.4, 38.4)
	for e := 0; e < 100; e++ {
		for i := 0; i < 1000; i++ {
			b.NoteLookup(true)
		}
		b.Epoch()
	}
	if b.DisabledSets() > 32 {
		t.Fatalf("disabled = %d, must cap at half the sets", b.DisabledSets())
	}
}

// TestSBDEvictionDeterministic is a regression test for nondeterministic
// Dirty List eviction: when several pages tie at the minimal recent write
// count, the victim used to be whichever tied page Go's randomized map
// iteration visited first, making whole SBD simulations unreproducible.
// The tie-break is now the lowest page address, independent of insertion
// order and map layout.
func TestSBDEvictionDeterministic(t *testing.T) {
	promote := func(s *SBD, p mem.Addr) {
		for i := 0; i < 64 && !s.InDirtyList(p); i++ {
			s.NoteWrite(p)
		}
		if !s.InDirtyList(p) {
			t.Fatalf("page %#x never promoted", p)
		}
	}
	// Different insertion orders of the same tied pages must all evict the
	// lowest address. Each trial uses a fresh SBD so every listed page
	// keeps the count 0 it was promoted with (a guaranteed 4-way tie).
	orders := [][]mem.Addr{
		{0x100, 0x200, 0x300, 0x400},
		{0x400, 0x300, 0x200, 0x100},
		{0x300, 0x100, 0x400, 0x200},
		{0x200, 0x400, 0x100, 0x300},
	}
	for trial, order := range orders {
		s := NewSBD(false)
		s.ListCap = len(order)
		for _, p := range order {
			promote(s, p)
		}
		var ev mem.Addr
		for i := 0; i < 64 && !s.InDirtyList(0x500); i++ {
			if e, c := s.NoteWrite(0x500); c {
				ev = e
			}
		}
		if ev != 0x100 {
			t.Fatalf("trial %d: evicted %#x, want lowest tied page 0x100", trial, ev)
		}
	}
}
