// Package policy implements the related proposals the paper compares
// against in Section VI-A.4: SBD (self-balancing dispatch, MICRO 2012) with
// its write-through variant SBD-WT, and BATMAN (bandwidth-aware tiered
// memory management). The package contains only the decision state
// machines; the memory-side cache controllers in internal/mscache wire
// their consequences (write-through traffic, forced cleaning, set
// disabling) into the datapath.
package policy

import "dap/internal/mem"

// SBD is the self-balancing dispatch policy: reads predicted to hit the
// DRAM cache are steered to whichever source (cache or main memory) has the
// lowest expected service latency. Pages with a high volume of writes are
// tracked in a Dirty List via a bank of counting Bloom filters and always
// use the cache; all other pages are operated write-through so that
// steering their reads to main memory is safe.
type SBD struct {
	// WriteThroughOnly selects the SBD-WT variant: pages falling out of
	// the Dirty List are NOT forcibly cleaned.
	WriteThroughOnly bool

	// DirtyThreshold is the write count that promotes a page to the Dirty
	// List.
	DirtyThreshold uint8
	// ListCap bounds the Dirty List; insertions beyond it evict the
	// page with the smallest recent write count.
	ListCap int

	counters []uint8             // counting Bloom filter bank
	dirty    map[mem.Addr]uint32 // page -> recent write count

	// hit predictor: global EWMA of DRAM cache read hit outcomes, in
	// 1/1024 units.
	hitEWMA uint32

	// decay bookkeeping
	writes uint64

	// OnDecay, when non-nil, is invoked after each periodic counter decay
	// (the policy's own adjustment point) so observers can snapshot
	// steering state without polling. Strict observer: the callback runs
	// after the decay completes and must not mutate the policy.
	OnDecay func()

	// Stats
	SteeredMM  uint64
	Promotions uint64
	Cleanings  uint64
}

// NewSBD returns an SBD instance with the defaults used in the evaluation.
func NewSBD(writeThroughOnly bool) *SBD {
	return &SBD{
		WriteThroughOnly: writeThroughOnly,
		DirtyThreshold:   4,
		ListCap:          1024,
		counters:         make([]uint8, 4096),
		dirty:            make(map[mem.Addr]uint32),
		hitEWMA:          512,
	}
}

func (s *SBD) hash(page mem.Addr, i uint64) int {
	h := uint64(page)*0x9e3779b97f4a7c15 + i*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return int(h % uint64(len(s.counters)))
}

// InDirtyList reports whether the page is currently write-backed.
func (s *SBD) InDirtyList(page mem.Addr) bool {
	_, ok := s.dirty[page]
	return ok
}

// Steerable reports whether reads of this page may be served by main
// memory. Only pages whose write volume never crossed the Dirty List
// threshold are guaranteed write-through and hence memory-consistent; a
// page that ever accumulated enough writes may hold (or once held) dirty
// blocks, so the hardware cannot prove the memory copy fresh.
func (s *SBD) Steerable(page mem.Addr) bool {
	if _, ok := s.dirty[page]; ok {
		return false
	}
	for i := uint64(0); i < 4; i++ {
		if s.counters[s.hash(page, i)] >= s.DirtyThreshold {
			return false
		}
	}
	return true
}

// NoteWrite records a write to page. It returns a non-zero evicted page
// (and true) when promoting this page pushed another page out of the Dirty
// List; the caller must then clean that page's dirty blocks unless running
// the WT variant.
func (s *SBD) NoteWrite(page mem.Addr) (evicted mem.Addr, mustClean bool) {
	s.writes++
	if s.writes%16384 == 0 {
		s.decay()
	}
	if _, ok := s.dirty[page]; ok {
		s.dirty[page]++
		return 0, false
	}
	minCount := uint8(255)
	for i := uint64(0); i < 4; i++ {
		h := s.hash(page, i)
		if s.counters[h] < 255 {
			s.counters[h]++
		}
		if s.counters[h] < minCount {
			minCount = s.counters[h]
		}
	}
	if minCount < s.DirtyThreshold {
		return 0, false
	}
	s.Promotions++
	if len(s.dirty) >= s.ListCap {
		// Evict the page with the smallest recent write count. Ties are
		// broken by the lower page address: map iteration order is
		// randomized, so picking whichever tied page the range visits
		// first would make the whole simulation non-reproducible.
		var victim mem.Addr
		best := ^uint32(0)
		first := true
		for p, c := range s.dirty {
			if first || c < best || (c == best && p < victim) {
				victim, best, first = p, c, false
			}
		}
		delete(s.dirty, victim)
		s.dirty[page] = 0
		if !s.WriteThroughOnly {
			s.Cleanings++
			return victim, true
		}
		return 0, false
	}
	s.dirty[page] = 0
	return 0, false
}

// decay halves all Bloom counters and list counts (epoch aging).
func (s *SBD) decay() {
	for i := range s.counters {
		s.counters[i] >>= 1
	}
	for p := range s.dirty {
		s.dirty[p] >>= 1
	}
	if s.OnDecay != nil {
		s.OnDecay()
	}
}

// DirtyPages returns the current Dirty List occupancy.
func (s *SBD) DirtyPages() int { return len(s.dirty) }

// NoteReadOutcome trains the hit predictor.
func (s *SBD) NoteReadOutcome(hit bool) {
	v := uint32(0)
	if hit {
		v = 1024
	}
	s.hitEWMA = (s.hitEWMA*15 + v) / 16
}

// PredictHit reports whether the next read is expected to hit the cache.
func (s *SBD) PredictHit() bool { return s.hitEWMA >= 512 }

// SteerToMM applies the expected-latency rule: steer to main memory when
// its expected latency (queue length x service time + base latency) is
// lower than the cache's. Times are in CPU cycles.
func (s *SBD) SteerToMM(qMM, qMS int, svcMM, svcMS, latMM, latMS mem.Cycle) bool {
	expMM := mem.Cycle(qMM)*svcMM + latMM
	expMS := mem.Cycle(qMS)*svcMS + latMS
	if expMM < expMS {
		s.SteeredMM++
		return true
	}
	return false
}
