package policy

// BATMAN steers traffic to main memory by disabling a fraction of the
// memory-side cache sets so that the cache operates at a target hit rate
// dictated by the bandwidth ratio of the sources:
// target = B_MS$ / (B_MS$ + B_MM). Accesses mapping to disabled sets go
// straight to main memory. Disabling a set requires cleaning its dirty
// blocks; re-enabled sets warm up from cold.
type BATMAN struct {
	// TargetHitRate is B_MS$/(B_MS$+B_MM).
	TargetHitRate float64
	// Step is the fraction of sets toggled per epoch decision.
	Step float64
	// Margin is the dead band around the target.
	Margin float64

	sets     int
	disabled int // sets [0, disabled) are off

	hits, lookups uint64

	// Stats
	Epochs     uint64
	DisableOps uint64
	EnableOps  uint64
}

// NewBATMAN builds the policy for a cache with the given set count and
// bandwidths in GB/s.
func NewBATMAN(sets int, bmsGBps, bmmGBps float64) *BATMAN {
	return &BATMAN{
		TargetHitRate: bmsGBps / (bmsGBps + bmmGBps),
		Step:          1.0 / 32,
		Margin:        0.02,
		sets:          sets,
	}
}

// Disabled reports whether a set is currently off.
func (b *BATMAN) Disabled(set int) bool { return set < b.disabled }

// DisabledSets returns the current count of disabled sets.
func (b *BATMAN) DisabledSets() int { return b.disabled }

// NoteLookup records a demand lookup outcome on an enabled set.
func (b *BATMAN) NoteLookup(hit bool) {
	b.lookups++
	if hit {
		b.hits++
	}
}

// Epoch evaluates the observed hit rate and adjusts the disabled-set count.
// It returns (newlyDisabledFrom, newlyDisabledTo): the half-open interval of
// set indices that were just turned off and must be cleaned/invalidated by
// the controller; an empty interval means none.
func (b *BATMAN) Epoch() (from, to int) {
	b.Epochs++
	if b.lookups < 64 {
		return 0, 0
	}
	hr := float64(b.hits) / float64(b.lookups)
	b.hits, b.lookups = 0, 0
	step := int(b.Step * float64(b.sets))
	if step < 1 {
		step = 1
	}
	switch {
	case hr > b.TargetHitRate+b.Margin && b.disabled+step <= b.sets/2:
		from, to = b.disabled, b.disabled+step
		b.disabled += step
		b.DisableOps++
		return from, to
	case hr < b.TargetHitRate-b.Margin && b.disabled > 0:
		b.disabled -= step
		if b.disabled < 0 {
			b.disabled = 0
		}
		b.EnableOps++
	}
	return 0, 0
}
