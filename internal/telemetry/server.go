package telemetry

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"
)

//go:embed dashboard.html
var dashboardHTML []byte

// Version returns the binary's VCS identity ("<short-rev>[+dirty]") from
// the embedded build info, or "dev" when built without VCS stamping. It is
// the `version` field of /healthz and of exported metrics-file headers.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// Server is the embedded telemetry HTTP service: Prometheus /metrics, the
// run inventory as JSON, a live SSE window stream per run with an embedded
// dashboard, /healthz, and /debug/pprof.
type Server struct {
	Metrics *Registry
	Runs    *RunRegistry
	// Logger, when non-nil, gets one structured record per request (method,
	// path, status, duration). Scrape and stream endpoints (/metrics, SSE)
	// log at Debug so an Info-level service isn't drowned by its own
	// monitoring; set before Start/Handler.
	Logger *slog.Logger

	mu      sync.Mutex
	httpSrv *http.Server
	lis     net.Listener
	started time.Time
	extra   []extraRoute
}

type extraRoute struct {
	pattern string
	h       http.HandlerFunc
}

// Handle registers an additional route on the server's mux (Go 1.22
// method+wildcard patterns, e.g. "POST /jobs"). It lets subsystems such as
// the sweep service mount their API on the same listener; call it before
// Start/Handler.
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.extra = append(s.extra, extraRoute{pattern, h})
}

// NewServer builds a server over the given registries (pass Default and
// Runs for the process-wide ones).
func NewServer(metrics *Registry, runs *RunRegistry) *Server {
	return &Server{Metrics: metrics, Runs: runs, started: time.Now()}
}

// Handler returns the full route mux (usable directly under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/decisions", s.handleDecisions)
	mux.HandleFunc("GET /runs/{id}/stream", s.handleStream)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mu.Lock()
	extra := s.extra
	s.mu.Unlock()
	for _, r := range extra {
		mux.HandleFunc(r.pattern, r.h)
	}
	return s.withRequestObs(mux)
}

// withRequestObs wraps the mux with request observability: a latency
// histogram observation per request plus (when a Logger is set) one
// structured record with method, path, status and duration. The wrapper
// never buffers bodies — the status writer only captures the code and
// passes Flush through, so /metrics scrapes and SSE streams behave exactly
// as they do unwrapped.
func (s *Server) withRequestObs(h http.Handler) http.Handler {
	var hist *Histogram
	if s.Metrics != nil {
		hist = s.Metrics.Histogram("telemetry_http_request_seconds",
			"HTTP request handling duration.", DurationBuckets())
	}
	log := s.Logger
	if hist == nil && log == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		d := time.Since(t0)
		if hist != nil {
			hist.Observe(d.Seconds())
		}
		if log == nil {
			return
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rec := log.Info
		if r.URL.Path == "/metrics" || strings.HasSuffix(r.URL.Path, "/stream") {
			rec = log.Debug
		}
		rec("http request", "method", r.Method, "path", r.URL.Path,
			"status", status, "duration", d.String())
	})
}

// statusWriter captures the response status code for the request log while
// delegating everything else — including Flush, which SSE streaming needs —
// to the underlying writer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Start binds addr (":0" picks a free port) and serves in the background,
// returning the bound address. Call Shutdown to stop.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.lis, s.httpSrv = lis, srv
	s.mu.Unlock()
	go srv.Serve(lis) //nolint:errcheck // ErrServerClosed after Shutdown
	return lis.Addr().String(), nil
}

// Shutdown gracefully stops the server (no-op if never started).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":         "ok",
		"version":        Version(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"active_runs":    s.Runs.ActiveCount(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Metrics.WritePrometheus(w) //nolint:errcheck // client gone
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Runs.Snapshots())
}

func (s *Server) runFromPath(w http.ResponseWriter, r *http.Request) *Run {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return nil
	}
	run := s.Runs.Get(id)
	if run == nil {
		http.Error(w, "no such run (it may have been evicted)", http.StatusNotFound)
	}
	return run
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run := s.runFromPath(w, r)
	if run == nil {
		return
	}
	writeJSON(w, run.snapshot(true))
}

// handleDecisions serves the run's retained partitioner decision series:
// the per-window optimality gap, access fractions and credit refills the
// harness published while the run executed (empty when the run was not
// started with decision recording).
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	run := s.runFromPath(w, r)
	if run == nil {
		return
	}
	writeJSON(w, run.Decisions())
}

// sseHeartbeatEvery is the idle-stream keepalive period: a comment line is
// written so proxies and LBs with idle timeouts keep the connection open.
// Package-level so tests can shrink it.
var sseHeartbeatEvery = 15 * time.Second

// handleStream serves the SSE window stream: a `meta` event carrying the
// run snapshot and column names, one `window` event per sampler window
// (ring history replayed first, then live), and a closing `done` event with
// the final snapshot. Idle streams carry periodic heartbeat comments so
// intermediaries do not cut them; slow consumers drop windows rather than
// ever back-pressuring the simulation.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run := s.runFromPath(w, r)
	if run == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	meta := run.snapshot(false)
	meta.Columns = run.Columns()
	sendEvent(w, "meta", meta)
	fl.Flush()

	history, live, cancel := run.Subscribe()
	defer cancel()
	for _, win := range history {
		sendEvent(w, "window", win)
	}
	fl.Flush()

	ctx := r.Context()
	hb := time.NewTicker(sseHeartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hb.C:
			// SSE comment line: ignored by clients, resets proxy idle timers.
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case win, ok := <-live:
			if !ok {
				sendEvent(w, "done", run.snapshot(false))
				fl.Flush()
				return
			}
			sendEvent(w, "window", win)
			// Drain whatever else is already buffered before flushing, so a
			// fast publisher does not force one flush per window.
			for {
				select {
				case more, ok := <-live:
					if !ok {
						sendEvent(w, "done", run.snapshot(false))
						fl.Flush()
						return
					}
					sendEvent(w, "window", more)
					continue
				default:
				}
				break
			}
			fl.Flush()
		}
	}
}

func sendEvent(w http.ResponseWriter, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone
}
