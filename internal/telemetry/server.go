package telemetry

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

//go:embed dashboard.html
var dashboardHTML []byte

// Version returns the binary's VCS identity ("<short-rev>[+dirty]") from
// the embedded build info, or "dev" when built without VCS stamping. It is
// the `version` field of /healthz and of exported metrics-file headers.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// Server is the embedded telemetry HTTP service: Prometheus /metrics, the
// run inventory as JSON, a live SSE window stream per run with an embedded
// dashboard, /healthz, and /debug/pprof.
type Server struct {
	Metrics *Registry
	Runs    *RunRegistry

	mu      sync.Mutex
	httpSrv *http.Server
	lis     net.Listener
	started time.Time
	extra   []extraRoute
}

type extraRoute struct {
	pattern string
	h       http.HandlerFunc
}

// Handle registers an additional route on the server's mux (Go 1.22
// method+wildcard patterns, e.g. "POST /jobs"). It lets subsystems such as
// the sweep service mount their API on the same listener; call it before
// Start/Handler.
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.extra = append(s.extra, extraRoute{pattern, h})
}

// NewServer builds a server over the given registries (pass Default and
// Runs for the process-wide ones).
func NewServer(metrics *Registry, runs *RunRegistry) *Server {
	return &Server{Metrics: metrics, Runs: runs, started: time.Now()}
}

// Handler returns the full route mux (usable directly under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /runs", s.handleRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/stream", s.handleStream)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mu.Lock()
	extra := s.extra
	s.mu.Unlock()
	for _, r := range extra {
		mux.HandleFunc(r.pattern, r.h)
	}
	return mux
}

// Start binds addr (":0" picks a free port) and serves in the background,
// returning the bound address. Call Shutdown to stop.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.lis, s.httpSrv = lis, srv
	s.mu.Unlock()
	go srv.Serve(lis) //nolint:errcheck // ErrServerClosed after Shutdown
	return lis.Addr().String(), nil
}

// Shutdown gracefully stops the server (no-op if never started).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":         "ok",
		"version":        Version(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"active_runs":    s.Runs.ActiveCount(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Metrics.WritePrometheus(w) //nolint:errcheck // client gone
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Runs.Snapshots())
}

func (s *Server) runFromPath(w http.ResponseWriter, r *http.Request) *Run {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return nil
	}
	run := s.Runs.Get(id)
	if run == nil {
		http.Error(w, "no such run (it may have been evicted)", http.StatusNotFound)
	}
	return run
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run := s.runFromPath(w, r)
	if run == nil {
		return
	}
	writeJSON(w, run.snapshot(true))
}

// sseHeartbeatEvery is the idle-stream keepalive period: a comment line is
// written so proxies and LBs with idle timeouts keep the connection open.
// Package-level so tests can shrink it.
var sseHeartbeatEvery = 15 * time.Second

// handleStream serves the SSE window stream: a `meta` event carrying the
// run snapshot and column names, one `window` event per sampler window
// (ring history replayed first, then live), and a closing `done` event with
// the final snapshot. Idle streams carry periodic heartbeat comments so
// intermediaries do not cut them; slow consumers drop windows rather than
// ever back-pressuring the simulation.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run := s.runFromPath(w, r)
	if run == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	meta := run.snapshot(false)
	meta.Columns = run.Columns()
	sendEvent(w, "meta", meta)
	fl.Flush()

	history, live, cancel := run.Subscribe()
	defer cancel()
	for _, win := range history {
		sendEvent(w, "window", win)
	}
	fl.Flush()

	ctx := r.Context()
	hb := time.NewTicker(sseHeartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hb.C:
			// SSE comment line: ignored by clients, resets proxy idle timers.
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case win, ok := <-live:
			if !ok {
				sendEvent(w, "done", run.snapshot(false))
				fl.Flush()
				return
			}
			sendEvent(w, "window", win)
			// Drain whatever else is already buffered before flushing, so a
			// fast publisher does not force one flush per window.
			for {
				select {
				case more, ok := <-live:
					if !ok {
						sendEvent(w, "done", run.snapshot(false))
						fl.Flush()
						return
					}
					sendEvent(w, "window", more)
					continue
				default:
				}
				break
			}
			fl.Flush()
		}
	}
}

func sendEvent(w http.ResponseWriter, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone
}
