package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RunState is a run's lifecycle state.
type RunState int32

// Run states.
const (
	RunActive RunState = iota
	RunDone
	RunAborted
)

func (s RunState) String() string {
	switch s {
	case RunActive:
		return "running"
	case RunDone:
		return "done"
	}
	return "aborted"
}

// Window is one published sampler window: the simulated cycle it closed at
// and the exported per-column values (deltas/rates already applied). The
// Values slice is owned by the Window and never mutated after Publish.
type Window struct {
	Cycle  uint64    `json:"cycle"`
	Values []float64 `json:"values"`
}

// Decision is one published partitioner decision: the per-window solver
// output and its optimality-gap audit, converted by the harness from the
// core recorder's record (telemetry stays import-free of the simulator).
type Decision struct {
	Cycle       uint64    `json:"cycle"`
	Window      uint64    `json:"window"`
	Gap         float64   `json:"gap"`
	Delivered   float64   `json:"delivered_gbps"`
	Optimal     float64   `json:"optimal_gbps"`
	Fractions   []float64 `json:"fractions"`
	OptimalFrac []float64 `json:"optimal_fractions"`
	FWB         int64     `json:"fwb"`
	WB          int64     `json:"wb"`
	IFRM        int64     `json:"ifrm"`
	SFRM        int64     `json:"sfrm"`
	WT          int64     `json:"wt"`
	Partitioned bool      `json:"partitioned"`
}

// RunInfo is the immutable identity of a registered run.
type RunInfo struct {
	Mix         string `json:"mix"`
	Arch        string `json:"arch"`
	Policy      string `json:"policy"`
	Fingerprint string `json:"fingerprint"`
	Seed        uint64 `json:"seed"`
	// Horizon is the run's cycle budget (the RunWhile limit): progress is
	// reported as simulated cycles against it. It is an upper bound — most
	// runs retire their instruction budget long before the horizon.
	Horizon uint64 `json:"horizon_cycles"`
}

// Run tracks one live or recently finished simulation. The publishing side
// (the simulation thread) uses Progress and Publish; Progress and the
// /metrics scrape path are lock-free (atomic store / atomic pointer load),
// while Publish takes the run's mutex only to append to the bounded window
// ring and hand copies to SSE subscribers — it never blocks on them
// (slow subscribers drop windows) and never reads simulated state.
type Run struct {
	ID      int64
	Info    RunInfo
	Started time.Time

	columns  []string
	progress atomic.Uint64
	state    atomic.Int32
	latest   atomic.Pointer[Window]
	nwin     atomic.Uint64

	reg *RunRegistry

	mu       sync.Mutex
	ring     []Window
	head     int
	n        int
	subs     map[chan Window]struct{}
	dropped  uint64
	finished time.Time
	abortMsg string
	summary  map[string]float64

	decSources []string
	decRing    []Decision
	decHead    int
	decN       int
	decTotal   uint64
}

// ringCap bounds each run's retained window history (the SSE catch-up
// replay and the /runs/{id} JSON series).
const ringCap = 512

// SetColumns records the sampler's column names. It must be called before
// the first Publish and is immutable afterwards.
func (r *Run) SetColumns(cols []string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.columns = append([]string(nil), cols...)
	r.mu.Unlock()
}

// Columns returns the column names shared by every published window.
func (r *Run) Columns() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.columns
}

// Progress records simulated cycles completed (lock-free).
func (r *Run) Progress(cycles uint64) {
	if r == nil {
		return
	}
	r.progress.Store(cycles)
}

// Publish records one closed sampler window: vals is copied, the copy
// becomes the lock-free /metrics snapshot, lands in the window ring, and is
// fanned out to SSE subscribers with a non-blocking send.
func (r *Run) Publish(cycle uint64, vals []float64) {
	if r == nil {
		return
	}
	w := Window{Cycle: cycle, Values: append([]float64(nil), vals...)}
	r.latest.Store(&w)
	r.nwin.Add(1)
	r.mu.Lock()
	if len(r.ring) < ringCap {
		r.ring = append(r.ring, w)
		r.n++
	} else {
		r.ring[r.head] = w
		r.head = (r.head + 1) % ringCap
	}
	for ch := range r.subs {
		select {
		case ch <- w:
		default:
			r.dropped++
		}
	}
	r.mu.Unlock()
}

// SetDecisionSources names the bandwidth sources decision fraction vectors
// are ordered by. Call before the first PublishDecision.
func (r *Run) SetDecisionSources(names []string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.decSources = append([]string(nil), names...)
	r.mu.Unlock()
}

// PublishDecision records one partitioner decision into the run's bounded
// decision ring (oldest evicted), mirroring Publish's observer contract: it
// copies values under the run mutex and never reads simulated state.
func (r *Run) PublishDecision(d Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.decRing) < ringCap {
		r.decRing = append(r.decRing, d)
		r.decN++
	} else {
		r.decRing[r.decHead] = d
		r.decHead = (r.decHead + 1) % ringCap
	}
	r.decTotal++
	r.mu.Unlock()
}

// DecisionsSnapshot is the JSON view served by /runs/{id}/decisions.
type DecisionsSnapshot struct {
	ID      int64      `json:"id"`
	Sources []string   `json:"sources"`
	Total   uint64     `json:"total"`
	Series  []Decision `json:"series"`
}

// Decisions returns the retained decision series (oldest first) plus the
// source names and total published count.
func (r *Run) Decisions() DecisionsSnapshot {
	if r == nil {
		return DecisionsSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := DecisionsSnapshot{ID: r.ID, Sources: r.decSources, Total: r.decTotal}
	s.Series = make([]Decision, 0, r.decN)
	for i := 0; i < r.decN; i++ {
		s.Series = append(s.Series, r.decRing[(r.decHead+i)%ringCap])
	}
	return s
}

// Latest returns the most recent published window (nil before the first).
func (r *Run) Latest() *Window {
	if r == nil {
		return nil
	}
	return r.latest.Load()
}

// State returns the run's lifecycle state.
func (r *Run) State() RunState { return RunState(r.state.Load()) }

// Finish marks the run done (or aborted when abort != nil), records the
// final summary numbers, and closes every subscriber stream.
func (r *Run) Finish(abort error, summary map[string]float64) {
	if r == nil {
		return
	}
	st := RunDone
	if abort != nil {
		st = RunAborted
	}
	r.state.Store(int32(st))
	r.mu.Lock()
	r.finished = time.Now()
	if abort != nil {
		r.abortMsg = abort.Error()
	}
	r.summary = summary
	for ch := range r.subs {
		close(ch)
	}
	r.subs = nil
	r.mu.Unlock()
	if r.reg != nil {
		r.reg.finish(r, st)
	}
}

// Subscribe returns the retained window history (oldest first) plus a
// channel delivering every subsequently published window. The channel is
// closed when the run finishes; cancel detaches early. A finished run
// returns its history and an already-closed channel.
func (r *Run) Subscribe() (history []Window, live <-chan Window, cancel func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	history = make([]Window, 0, r.n)
	for i := 0; i < r.n; i++ {
		history = append(history, r.ring[(r.head+i)%ringCap])
	}
	ch := make(chan Window, 256)
	if r.State() != RunActive {
		close(ch)
		return history, ch, func() {}
	}
	if r.subs == nil {
		r.subs = make(map[chan Window]struct{})
	}
	r.subs[ch] = struct{}{}
	return history, ch, func() {
		r.mu.Lock()
		if _, ok := r.subs[ch]; ok {
			delete(r.subs, ch)
			close(ch)
		}
		r.mu.Unlock()
	}
}

// RunSnapshot is the JSON view of a run served by /runs and /runs/{id}.
type RunSnapshot struct {
	ID       int64   `json:"id"`
	RunInfo  RunInfo `json:"info"`
	State    string  `json:"state"`
	Started  string  `json:"started"`
	Finished string  `json:"finished,omitempty"`
	Progress uint64  `json:"progress_cycles"`
	Windows  uint64  `json:"windows"`
	Dropped  uint64  `json:"dropped_windows"`
	Abort    string  `json:"abort,omitempty"`

	Summary map[string]float64 `json:"summary,omitempty"`
	// Columns and Series are only populated on the /runs/{id} detail view.
	Columns []string `json:"columns,omitempty"`
	Series  []Window `json:"series,omitempty"`
}

func (r *Run) snapshot(detail bool) RunSnapshot {
	s := RunSnapshot{
		ID:       r.ID,
		RunInfo:  r.Info,
		State:    r.State().String(),
		Started:  r.Started.Format(time.RFC3339Nano),
		Progress: r.progress.Load(),
		Windows:  r.nwin.Load(),
	}
	r.mu.Lock()
	if !r.finished.IsZero() {
		s.Finished = r.finished.Format(time.RFC3339Nano)
	}
	s.Abort = r.abortMsg
	s.Summary = r.summary
	s.Dropped = r.dropped
	if detail {
		s.Columns = r.columns
	}
	r.mu.Unlock()
	if detail {
		hist, _, cancel := r.Subscribe()
		cancel()
		s.Series = hist
	}
	return s
}

// RunRegistry tracks every simulation the process runs: active runs plus a
// bounded ring of recently finished ones, with lifecycle counters published
// to a metrics Registry and a scrape-time collector exposing each tracked
// run's progress and latest sampler window as labeled gauges.
type RunRegistry struct {
	mu     sync.Mutex
	nextID int64
	active map[int64]*Run
	recent []*Run // most recent finished runs, newest last

	started, finished, aborted *Series
}

// recentCap bounds how many finished runs stay inspectable over HTTP.
const recentCap = 32

// metricsRuns caps how many runs (active + newest finished) the /metrics
// collector expands into per-column series, so a long sweep cannot bloat
// the exposition unboundedly.
const metricsRuns = 16

// NewRunRegistry returns a run registry publishing lifecycle counters and
// the per-run collector into reg.
func NewRunRegistry(reg *Registry) *RunRegistry {
	rr := &RunRegistry{active: make(map[int64]*Run)}
	rr.started = reg.Counter("sim_runs_started_total", "Simulation runs registered since process start.")
	rr.finished = reg.Counter("sim_runs_finished_total", "Simulation runs that completed normally.")
	rr.aborted = reg.Counter("sim_runs_aborted_total", "Simulation runs that ended with a watchdog, deadlock or audit abort.")
	reg.RegisterCollector(rr.collect)
	return rr
}

// Runs is the process-wide run registry; the harness registers every run
// here and the -serve HTTP endpoints read from it.
var Runs = NewRunRegistry(Default)

// Start registers a new run.
func (rr *RunRegistry) Start(info RunInfo) *Run {
	rr.mu.Lock()
	rr.nextID++
	r := &Run{ID: rr.nextID, Info: info, Started: time.Now(), reg: rr}
	rr.active[r.ID] = r
	rr.mu.Unlock()
	rr.started.Inc()
	return r
}

func (rr *RunRegistry) finish(r *Run, st RunState) {
	rr.mu.Lock()
	delete(rr.active, r.ID)
	rr.recent = append(rr.recent, r)
	if len(rr.recent) > recentCap {
		rr.recent = rr.recent[len(rr.recent)-recentCap:]
	}
	rr.mu.Unlock()
	if st == RunAborted {
		rr.aborted.Inc()
	} else {
		rr.finished.Inc()
	}
}

// Get returns a tracked run by ID (active or recent), or nil.
func (rr *RunRegistry) Get(id int64) *Run {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if r := rr.active[id]; r != nil {
		return r
	}
	for i := len(rr.recent) - 1; i >= 0; i-- {
		if rr.recent[i].ID == id {
			return rr.recent[i]
		}
	}
	return nil
}

// tracked returns the runs the HTTP layer can see: every active run plus
// the recent ring, newest first.
func (rr *RunRegistry) tracked() []*Run {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	out := make([]*Run, 0, len(rr.active)+len(rr.recent))
	for _, r := range rr.active {
		out = append(out, r)
	}
	for i := len(rr.recent) - 1; i >= 0; i-- {
		out = append(out, rr.recent[i])
	}
	// active runs first, then newest-first by ID within each group
	sortRuns(out)
	return out
}

func sortRuns(rs []*Run) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && runLess(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func runLess(a, b *Run) bool {
	aa, ba := a.State() == RunActive, b.State() == RunActive
	if aa != ba {
		return aa
	}
	return a.ID > b.ID
}

// Snapshots returns the JSON summaries for /runs.
func (rr *RunRegistry) Snapshots() []RunSnapshot {
	runs := rr.tracked()
	out := make([]RunSnapshot, len(runs))
	for i, r := range runs {
		out[i] = r.snapshot(false)
	}
	return out
}

// ActiveCount returns the number of currently running simulations.
func (rr *RunRegistry) ActiveCount() int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return len(rr.active)
}

// collect is the scrape-time collector: per tracked run (bounded by
// metricsRuns), progress/horizon gauges and one gauge per sampler column
// from the run's latest window, all labeled {run,mix}. The window read is a
// single atomic pointer load — the lock-free snapshot path that lets
// /metrics be scraped mid-run without perturbing the simulation.
func (rr *RunRegistry) collect(emit Emit) {
	runs := rr.tracked()
	if len(runs) > metricsRuns {
		runs = runs[:metricsRuns]
	}
	for _, r := range runs {
		labels := []Label{
			{"run", strconv.FormatInt(r.ID, 10)},
			{"mix", r.Info.Mix},
		}
		emit("sim_run_progress_cycles", "Simulated cycles completed by the run.", GaugeKind, labels, float64(r.progress.Load()))
		emit("sim_run_horizon_cycles", "The run's cycle budget (RunWhile limit).", GaugeKind, labels, float64(r.Info.Horizon))
		emit("sim_run_active", "1 while the run is executing, 0 once finished.", GaugeKind, labels, b2f(r.State() == RunActive))
		w := r.Latest()
		if w == nil {
			continue
		}
		cols := r.Columns()
		if len(cols) != len(w.Values) {
			continue
		}
		for i, c := range cols {
			emit(Sanitize(c), "Latest sampler window value for probe "+c+".", GaugeKind, labels, w.Values[i])
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
