package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestService() (*Registry, *RunRegistry, *httptest.Server) {
	reg := NewRegistry()
	runs := NewRunRegistry(reg)
	return reg, runs, httptest.NewServer(NewServer(reg, runs).Handler())
}

func TestHTTPEndpoints(t *testing.T) {
	_, runs, ts := newTestService()
	defer ts.Close()

	run := runs.Start(RunInfo{Mix: "mcf", Arch: "sectored", Policy: "dap", Seed: 3, Horizon: 1_000_000, Fingerprint: "abcd1234"})
	run.SetColumns([]string{"core0.ipc", "dap.credit.fwb"})
	run.Publish(1000, []float64{1.25, 32})
	run.Progress(1000)

	for _, path := range []string{"/", "/healthz", "/metrics", "/runs", fmt.Sprintf("/runs/%d", run.ID), "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// /metrics carries the per-run collector output.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`dap_credit_fwb{run="1",mix="mcf"} 32`,
		`core0_ipc{run="1",mix="mcf"} 1.25`,
		`sim_run_progress_cycles{run="1",mix="mcf"} 1000`,
		"sim_runs_started_total 1",
		"# TYPE sim_runs_started_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /runs/{id} detail includes columns and the window series.
	var snap RunSnapshot
	getJSON(t, ts.URL+fmt.Sprintf("/runs/%d", run.ID), &snap)
	if len(snap.Columns) != 2 || len(snap.Series) != 1 || snap.Series[0].Cycle != 1000 {
		t.Fatalf("detail snapshot: %+v", snap)
	}
	if snap.State != "running" || snap.RunInfo.Fingerprint != "abcd1234" {
		t.Fatalf("detail snapshot identity: %+v", snap)
	}

	// unknown run -> 404, bad id -> 400
	if r2, _ := http.Get(ts.URL + "/runs/999"); r2.StatusCode != 404 {
		t.Errorf("missing run: status %d", r2.StatusCode)
	}
	if r3, _ := http.Get(ts.URL + "/runs/zzz"); r3.StatusCode != 400 {
		t.Errorf("bad id: status %d", r3.StatusCode)
	}
}

// TestSSEStream subscribes to a run's stream and checks the full event
// sequence: meta (with columns), replayed history, live windows, done.
func TestSSEStream(t *testing.T) {
	_, runs, ts := newTestService()
	defer ts.Close()

	run := runs.Start(RunInfo{Mix: "mcf", Policy: "dap", Horizon: 10_000})
	run.SetColumns([]string{"core0.ipc"})
	run.Publish(100, []float64{1.0}) // history before the client connects

	resp, err := http.Get(ts.URL + fmt.Sprintf("/runs/%d/stream", run.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := make(chan [2]string, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var ev string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				events <- [2]string{ev, strings.TrimPrefix(line, "data: ")}
			}
		}
	}()

	next := func() [2]string {
		select {
		case e, ok := <-events:
			if !ok {
				t.Fatal("stream closed early")
			}
			return e
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for SSE event")
		}
		return [2]string{}
	}

	if e := next(); e[0] != "meta" || !strings.Contains(e[1], `"core0.ipc"`) {
		t.Fatalf("first event = %v, want meta with columns", e)
	}
	if e := next(); e[0] != "window" || !strings.Contains(e[1], `"cycle":100`) {
		t.Fatalf("second event = %v, want replayed window @100", e)
	}

	// live windows published after connect
	run.Publish(200, []float64{1.1})
	run.Publish(300, []float64{1.2})
	if e := next(); e[0] != "window" || !strings.Contains(e[1], `"cycle":200`) {
		t.Fatalf("live event = %v, want window @200", e)
	}
	if e := next(); e[0] != "window" || !strings.Contains(e[1], `"cycle":300`) {
		t.Fatalf("live event = %v, want window @300", e)
	}

	run.Finish(nil, map[string]float64{"agg_ipc": 1.2})
	e := next()
	if e[0] != "done" {
		t.Fatalf("final event = %v, want done", e)
	}
	var snap RunSnapshot
	if err := json.Unmarshal([]byte(e[1]), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != "done" || snap.Summary["agg_ipc"] != 1.2 {
		t.Fatalf("done snapshot: %+v", snap)
	}

	// A finished run still streams: history replay then immediate done.
	resp2, err := http.Get(ts.URL + fmt.Sprintf("/runs/%d/stream", run.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc := bufio.NewScanner(resp2.Body)
	var seq []string
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			seq = append(seq, strings.TrimPrefix(sc.Text(), "event: "))
		}
	}
	want := []string{"meta", "window", "window", "window", "done"}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("replay sequence = %v, want %v", seq, want)
	}
}

func TestRunRegistryEviction(t *testing.T) {
	reg := NewRegistry()
	runs := NewRunRegistry(reg)
	var last *Run
	for i := 0; i < recentCap+10; i++ {
		last = runs.Start(RunInfo{Mix: fmt.Sprintf("m%d", i)})
		last.Finish(nil, nil)
	}
	if runs.Get(1) != nil {
		t.Error("oldest run should be evicted")
	}
	if runs.Get(last.ID) == nil {
		t.Error("newest run should be retained")
	}
	if n := len(runs.Snapshots()); n != recentCap {
		t.Errorf("retained %d runs, want %d", n, recentCap)
	}
	if got := reg.Counter("sim_runs_finished_total", "").Value(); got != float64(recentCap+10) {
		t.Errorf("finished counter = %v", got)
	}
}

func TestRunAbortState(t *testing.T) {
	_, runs, ts := newTestService()
	defer ts.Close()
	run := runs.Start(RunInfo{Mix: "mcf"})
	run.Finish(fmt.Errorf("sim: stalled at cycle 99"), nil)
	var snap RunSnapshot
	getJSON(t, ts.URL+fmt.Sprintf("/runs/%d", run.ID), &snap)
	if snap.State != "aborted" || !strings.Contains(snap.Abort, "stalled") {
		t.Fatalf("abort snapshot: %+v", snap)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestRequestLogMiddleware exercises the request-observability wrapper: a
// structured record per request with method/path/status/duration, scrape
// endpoints demoted to Debug, the latency histogram counting every request,
// and Flush still reaching the underlying writer (SSE depends on it).
func TestRequestLogMiddleware(t *testing.T) {
	reg := NewRegistry()
	runs := NewRunRegistry(reg)
	srv := NewServer(reg, runs)
	var buf strings.Builder
	srv.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/runs/9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := http.Get(ts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}

	logs := buf.String()
	if !strings.Contains(logs, `"path":"/healthz"`) || !strings.Contains(logs, `"status":200`) {
		t.Errorf("missing healthz record:\n%s", logs)
	}
	if !strings.Contains(logs, `"path":"/runs/9999"`) || !strings.Contains(logs, `"status":404`) {
		t.Errorf("missing 404 record:\n%s", logs)
	}
	if strings.Contains(logs, `"path":"/metrics"`) {
		t.Errorf("scrape endpoint logged at Info level:\n%s", logs)
	}

	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	body := out.String()
	if !strings.Contains(body, "telemetry_http_request_seconds_count 3") {
		t.Errorf("request histogram did not count 3 requests:\n%s", body)
	}
}

// TestStatusWriterFlusher asserts the middleware's writer still implements
// http.Flusher so SSE streaming works behind it.
func TestStatusWriterFlusher(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	var w http.ResponseWriter = sw
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusWriter lost http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if _, err := io.WriteString(w, "x"); err != nil {
		t.Fatal(err)
	}
	if sw.status != http.StatusOK {
		t.Errorf("implicit status = %d, want 200", sw.status)
	}
}
