package telemetry

import (
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency/size distribution rendered in the
// Prometheus text format as the classic `_bucket`/`_sum`/`_count` triplet.
// Like Series, its hot path is lock-cheap: Observe is one binary search over
// the (immutable) bucket bounds plus two atomic adds — no locks, no
// allocation — so service threads (workers, the WAL appender, HTTP
// middleware) can observe on every operation without perturbing each other.
//
// Bucket counts are stored non-cumulatively and summed into the cumulative
// exposition at scrape time, which keeps Observe O(1) in atomics; `_count`
// is derived from the bucket totals at the same moment, so it always equals
// the `+Inf` bucket. `_sum` is tracked separately and may trail the bucket
// counts by in-flight observations during a concurrent scrape — the same
// point-in-time skew every lock-free Prometheus client exhibits.
type Histogram struct {
	bounds []float64 // ascending upper bounds, excluding +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    Series // atomic float64 accumulator
	labels []Label
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound contains v (le semantics: v <= bound).
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since t0 — the common
// latency-instrumentation shape (`defer h.ObserveSince(time.Now())`).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// snapshot returns the cumulative per-bucket counts (len(bounds)+1, the
// last being the +Inf bucket == total count) and the sum.
func (h *Histogram) snapshot() (cum []uint64, sum float64) {
	cum = make([]uint64, len(h.bounds)+1)
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	cum[len(h.bounds)] = running + h.inf.Load()
	return cum, h.sum.Value()
}

// DurationBuckets returns the default latency bucket bounds, in seconds:
// 25µs to 2min in a coarse exponential ladder that covers everything the
// sweep service measures (WAL fsyncs around a millisecond, store writes,
// quick-config executions around a second, queue waits up to minutes).
func DurationBuckets() []float64 {
	return []float64{
		0.000025, 0.0001, 0.00025, 0.001, 0.0025, 0.01,
		0.025, 0.1, 0.25, 1, 2.5, 10, 30, 120,
	}
}

// Histogram returns (creating on first use) the histogram series
// name{labels} with the given bucket upper bounds (+Inf is implicit and
// must not be listed). Bounds must be ascending; they are fixed at first
// registration — later calls with the same (name, labels) return the
// existing histogram regardless of the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	sig := labelSig(labels)
	r.mu.RLock()
	f := r.fams[name]
	var h *Histogram
	if f != nil && f.kind == HistogramKind {
		h = f.hists[sig]
	}
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: HistogramKind, hists: make(map[string]*Histogram)}
		r.fams[name] = f
	} else if f.kind != HistogramKind {
		panic("telemetry: metric " + name + " re-registered as histogram (was " + f.kind.String() + ")")
	}
	h = f.hists[sig]
	if h == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic("telemetry: histogram " + name + " bucket bounds not ascending")
			}
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)),
			labels: append([]Label(nil), labels...),
		}
		f.hists[sig] = h
	}
	return h
}

// formatLe renders a bucket bound the way Prometheus clients do ("0.005",
// "1", "+Inf").
func formatLe(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histRows renders one histogram into exposition rows: cumulative
// `_bucket{le=...}` lines (the base label set extended with le), then
// `_sum` and `_count`.
func histRows(sig string, h *Histogram) []row {
	cum, sum := h.snapshot()
	withLe := func(le string) string {
		ls := make([]Label, len(h.labels)+1)
		copy(ls, h.labels)
		ls[len(ls)-1] = Label{"le", le}
		return labelSig(ls)
	}
	rows := make([]row, 0, len(cum)+2)
	for i, bound := range h.bounds {
		rows = append(rows, row{suffix: "_bucket", sig: withLe(formatLe(bound)), val: float64(cum[i])})
	}
	rows = append(rows,
		row{suffix: "_bucket", sig: withLe("+Inf"), val: float64(cum[len(cum)-1])},
		row{suffix: "_sum", sig: sig, val: sum},
		row{suffix: "_count", sig: sig, val: float64(cum[len(cum)-1])},
	)
	return rows
}
