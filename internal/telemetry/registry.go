// Package telemetry turns the simulator into a monitorable service: a
// thread-safe Prometheus-text metrics Registry that simulation threads
// publish into through lock-free handles, a RunRegistry tracking the
// lifecycle and live window series of every simulation in the process, and
// an embedded HTTP server exposing /metrics, /runs JSON, an SSE stream per
// run, /healthz and /debug/pprof plus a small embedded dashboard.
//
// The design constraint inherited from internal/obs is strict
// non-perturbation: a simulation publishes values it has already computed,
// through pre-acquired handles whose hot path is a single atomic store (no
// locks, no channels, no allocation), and nothing on the scrape side can
// ever feed back into simulated state. Runs with telemetry enabled stay
// bit-identical to runs without — the same bar as the sampler and auditor,
// and enforced by the same determinism tests.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the Prometheus metric type of a family.
type Kind uint8

// Metric kinds.
const (
	CounterKind Kind = iota
	GaugeKind
	HistogramKind
)

func (k Kind) String() string {
	switch k {
	case CounterKind:
		return "counter"
	case HistogramKind:
		return "histogram"
	}
	return "gauge"
}

// Label is one name="value" pair on a series.
type Label struct {
	Key, Value string
}

// Series is one labeled time series inside a family. Its hot-path methods
// (Set, Add, Inc) are single atomic operations on a float64 bit pattern:
// safe from any goroutine, never blocking, never allocating — the lock-free
// publish path simulation threads use.
type Series struct {
	bits atomic.Uint64
}

// Set stores v (gauges).
func (s *Series) Set(v float64) {
	if s == nil {
		return
	}
	s.bits.Store(math.Float64bits(v))
}

// Add atomically adds v (counters; also usable on gauges for +/- deltas).
func (s *Series) Add(v float64) {
	if s == nil {
		return
	}
	for {
		old := s.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (s *Series) Inc() { s.Add(1) }

// Value reads the current value.
func (s *Series) Value() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.bits.Load())
}

// family is one named metric with its labeled series. Exactly one of
// series (counter/gauge) and hists (histogram) is populated.
type family struct {
	name, help string
	kind       Kind
	series     map[string]*Series    // keyed by rendered label signature
	hists      map[string]*Histogram // histogram families only
}

// Emit is the callback a scrape-time Collector pushes dynamic series
// through; name must already be a valid metric name (see Sanitize).
type Emit func(name, help string, kind Kind, labels []Label, v float64)

// Collector produces series at scrape time — used for values that live in
// another structure (e.g. each registered run's latest sampler window)
// rather than being pushed continuously.
type Collector func(emit Emit)

// Registry is a thread-safe collection of metric families rendered in the
// Prometheus text exposition format. Handle acquisition (Counter/Gauge)
// takes a lock; publishing on the returned *Series does not.
type Registry struct {
	mu         sync.RWMutex
	fams       map[string]*family
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-wide registry the runner pool, the harness auditor
// and the run registry publish into; the -serve HTTP endpoint scrapes it.
var Default = NewRegistry()

// Counter returns (creating on first use) the counter series name{labels}.
// The name must be a valid Prometheus metric name (see Sanitize); labels
// are rendered in the order given.
func (r *Registry) Counter(name, help string, labels ...Label) *Series {
	return r.get(name, help, CounterKind, labels)
}

// Gauge returns (creating on first use) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Series {
	return r.get(name, help, GaugeKind, labels)
}

// RegisterCollector adds a scrape-time collector.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

func (r *Registry) get(name, help string, kind Kind, labels []Label) *Series {
	sig := labelSig(labels)
	r.mu.RLock()
	f := r.fams[name]
	var s *Series
	if f != nil && f.kind == kind {
		s = f.series[sig]
	}
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*Series)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	s = f.series[sig]
	if s == nil {
		s = &Series{}
		f.series[sig] = s
	}
	return s
}

// labelSig renders labels as the {k="v",...} suffix (empty for none).
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Sanitize maps an arbitrary dotted probe name (e.g. "dap.credit.fwb",
// "mm.c0.util") onto a valid Prometheus metric name ("dap_credit_fwb").
func Sanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// row is one rendered exposition sample: an optional name suffix
// ("_bucket", "_sum", "_count" for histograms), the label signature, and
// the value.
type row struct {
	suffix string
	sig    string
	val    float64
}

// WritePrometheus renders every family — static series plus collector
// output — in the text exposition format with stable ordering: families
// sorted by name, each preceded by its HELP/TYPE lines, series sorted by
// label signature. Histogram families render each series as its cumulative
// `_bucket` ladder followed by `_sum` and `_count`, bucket order preserved.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type fam struct {
		help   string
		kind   Kind
		rows   []row
		sorted bool // histogram rows arrive pre-ordered; do not re-sort
	}
	out := make(map[string]*fam)

	r.mu.RLock()
	for name, f := range r.fams {
		o := &fam{help: f.help, kind: f.kind}
		if f.kind == HistogramKind {
			o.sorted = true
			sigs := make([]string, 0, len(f.hists))
			for sig := range f.hists {
				sigs = append(sigs, sig)
			}
			sort.Strings(sigs)
			for _, sig := range sigs {
				o.rows = append(o.rows, histRows(sig, f.hists[sig])...)
			}
		} else {
			for sig, s := range f.series {
				o.rows = append(o.rows, row{sig: sig, val: s.Value()})
			}
		}
		out[name] = o
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.RUnlock()

	emit := func(name, help string, kind Kind, labels []Label, v float64) {
		o := out[name]
		if o == nil {
			o = &fam{help: help, kind: kind}
			out[name] = o
		}
		o.rows = append(o.rows, row{sig: labelSig(labels), val: v})
	}
	for _, c := range collectors {
		c(emit)
	}

	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		o := out[name]
		if o.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, strings.ReplaceAll(o.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, o.kind)
		if !o.sorted {
			sort.Slice(o.rows, func(i, j int) bool { return o.rows[i].sig < o.rows[j].sig })
		}
		for _, rw := range o.rows {
			fmt.Fprintf(bw, "%s%s%s %s\n", name, rw.suffix, rw.sig, formatProm(rw.val))
		}
	}
	return bw.Flush()
}

// formatProm renders a sample value the way Prometheus expects.
func formatProm(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
