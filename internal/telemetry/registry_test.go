package telemetry

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestSeriesArithmetic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Add(3)
	c.Inc()
	if v := c.Value(); v != 4 {
		t.Fatalf("counter = %v, want 4", v)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7.5)
	if v := g.Value(); v != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", v)
	}
	// same (name, labels) must return the same series
	if r.Counter("jobs_total", "jobs") != c {
		t.Fatal("counter handle not shared")
	}
	if r.Counter("jobs_total", "jobs", Label{"w", "1"}) == c {
		t.Fatal("labeled series must be distinct")
	}
	var nilSeries *Series
	nilSeries.Set(1) // nil-safe no-ops
	nilSeries.Add(1)
	if nilSeries.Value() != 0 {
		t.Fatal("nil series value")
	}
}

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"dap.credit.fwb": "dap_credit_fwb",
		"mm.c0.util":     "mm_c0_util",
		"core0.ipc":      "core0_ipc",
		"ms.hit_ratio":   "ms_hit_ratio",
		"9lives":         "_lives",
		"a b/c":          "a_b_c",
	} {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusGolden locks the exposition format: stable family ordering,
// HELP/TYPE lines, sorted label signatures, integer rendering.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("runner_jobs_done", "Jobs completed by the worker pool.").Add(12)
	r.Counter("runner_jobs_total", "Jobs submitted to the worker pool.").Add(14)
	r.Gauge("runner_workers_busy", "Workers currently executing a job.").Set(2)
	for i := 0; i < 3; i++ {
		r.Gauge("dap_credit_fwb", "FWB credit level.",
			Label{"run", fmt.Sprint(i + 1)}, Label{"mix", "mcf"}).Set(float64(10 * i))
	}
	r.Gauge("ratio", "A fractional gauge.").Set(0.25)
	r.RegisterCollector(func(emit Emit) {
		emit("sim_run_progress_cycles", "Simulated cycles completed by the run.",
			GaugeKind, []Label{{"run", "1"}, {"mix", "mcf"}}, 123456)
	})

	var got bytes.Buffer
	if err := r.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	want, err := os.ReadFile(golden)
	if err != nil || !bytes.Equal(got.Bytes(), want) {
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("updated %s", golden)
			return
		}
		t.Fatalf("exposition differs from %s (set UPDATE_GOLDEN=1 to refresh)\n--- got ---\n%s\n--- want ---\n%s",
			golden, got.Bytes(), want)
	}
}

// TestRegistryConcurrentScrape is the -race workhorse: 8 publishers
// hammering counters/gauges (mixing pre-acquired handles and fresh
// lookups) while /metrics is scraped in a tight loop.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	runs := NewRunRegistry(r)
	srv := NewServer(r, runs)
	h := srv.Handler()

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})

	go func() { // scraper
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != 200 {
				t.Errorf("/metrics status %d", rec.Code)
				return
			}
		}
	}()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			done := r.Counter("runner_jobs_done", "done")
			busy := r.Gauge("runner_workers_busy", "busy")
			run := runs.Start(RunInfo{Mix: fmt.Sprintf("mix%d", w), Horizon: 1000})
			run.SetColumns([]string{"core0.ipc", "dap.credit.fwb"})
			for i := 0; i < iters; i++ {
				busy.Add(1)
				done.Inc()
				r.Gauge("per_worker_gauge", "g", Label{"w", fmt.Sprint(w)}).Set(float64(i))
				run.Progress(uint64(i))
				run.Publish(uint64(i), []float64{1.5, float64(i)})
				busy.Add(-1)
			}
			run.Finish(nil, map[string]float64{"ipc": 1.5})
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	if got := r.Counter("runner_jobs_done", "done").Value(); got != workers*iters {
		t.Fatalf("runner_jobs_done = %v, want %d", got, workers*iters)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dap_credit_fwb{", "core0_ipc{", "sim_runs_finished_total 8"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x", "")
}
