package telemetry

import (
	"fmt"
	"net/http"
	"testing"
)

// TestDecisionRingAndEndpoint covers the decision series surface: the
// bounded ring keeps the newest ringCap records in publish order, the
// total keeps counting past eviction, and /runs/{id}/decisions serves the
// snapshot as JSON.
func TestDecisionRingAndEndpoint(t *testing.T) {
	_, runs, ts := newTestService()
	defer ts.Close()

	run := runs.Start(RunInfo{Mix: "mcf", Policy: "dap"})
	run.SetDecisionSources([]string{"ms", "mm"})
	n := ringCap + 7
	for i := 0; i < n; i++ {
		run.PublishDecision(Decision{
			Cycle:       uint64(64 * (i + 1)),
			Window:      uint64(i + 1),
			Gap:         float64(i) / float64(n),
			Fractions:   []float64{0.8, 0.2},
			OptimalFrac: []float64{0.73, 0.27},
			Partitioned: i%2 == 0,
		})
	}

	snap := run.Decisions()
	if snap.Total != uint64(n) {
		t.Errorf("total = %d, want %d", snap.Total, n)
	}
	if len(snap.Series) != ringCap {
		t.Fatalf("ring kept %d records, want %d", len(snap.Series), ringCap)
	}
	if got := snap.Series[0].Window; got != uint64(n-ringCap+1) {
		t.Errorf("oldest retained window = %d, want %d", got, n-ringCap+1)
	}
	if got := snap.Series[len(snap.Series)-1].Window; got != uint64(n) {
		t.Errorf("newest retained window = %d, want %d", got, n)
	}
	if len(snap.Sources) != 2 || snap.Sources[0] != "ms" {
		t.Errorf("sources = %v", snap.Sources)
	}

	var wire DecisionsSnapshot
	getJSON(t, ts.URL+fmt.Sprintf("/runs/%d/decisions", run.ID), &wire)
	if wire.ID != run.ID || wire.Total != uint64(n) || len(wire.Series) != ringCap {
		t.Fatalf("wire snapshot: id=%d total=%d len=%d", wire.ID, wire.Total, len(wire.Series))
	}
	last := wire.Series[len(wire.Series)-1]
	if last.Window != uint64(n) || len(last.Fractions) != 2 {
		t.Fatalf("wire last record: %+v", last)
	}

	// A run that never recorded decisions serves an empty series, not 404.
	quiet := runs.Start(RunInfo{Mix: "lbm"})
	var empty DecisionsSnapshot
	getJSON(t, ts.URL+fmt.Sprintf("/runs/%d/decisions", quiet.ID), &empty)
	if empty.Total != 0 || len(empty.Series) != 0 {
		t.Fatalf("quiet run snapshot: %+v", empty)
	}

	// Unknown run -> 404.
	if resp, _ := http.Get(ts.URL + "/runs/9999/decisions"); resp.StatusCode != 404 {
		t.Errorf("missing run: status %d", resp.StatusCode)
	}
}
