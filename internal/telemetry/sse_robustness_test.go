package telemetry

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSlowConsumerNeverBlocksPublisher connects a stream client that stops
// reading, then publishes far more windows than any buffer in the path can
// hold. Publish must stay non-blocking (the whole burst completes within
// the deadline) and the overflow must surface as dropped windows on the
// run, not as back-pressure on the simulation.
func TestSlowConsumerNeverBlocksPublisher(t *testing.T) {
	_, runs, ts := newTestService()
	defer ts.Close()

	run := runs.Start(RunInfo{Mix: "mcf", Policy: "dap", Horizon: 1_000_000})
	run.SetColumns([]string{"core0.ipc"})

	// A raw TCP client that sends the request and then never reads: the
	// worst kind of stalled consumer (the server cannot even write).
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /runs/%d/stream HTTP/1.1\r\nHost: x\r\nAccept: text/event-stream\r\n\r\n", run.ID)
	// Give the handler a moment to subscribe.
	deadline := time.Now().Add(2 * time.Second)
	for {
		run.mu.Lock()
		n := len(run.subs)
		run.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// Publish a burst 8x the subscriber buffer. If Publish could block on
	// the stalled client, this loop would hang and the test would time out;
	// bound it explicitly so the failure mode is a clear assertion.
	const burst = 2048
	start := time.Now()
	for i := 0; i < burst; i++ {
		run.Publish(uint64(i), []float64{1.0})
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("publishing %d windows took %v: publisher was back-pressured", burst, elapsed)
	}

	run.mu.Lock()
	dropped := run.dropped
	run.mu.Unlock()
	if dropped == 0 {
		t.Fatal("no windows dropped: the stalled subscriber absorbed an unbounded burst")
	}
	snap := run.snapshot(false)
	if snap.Dropped != dropped {
		t.Fatalf("snapshot dropped = %d; run counted %d", snap.Dropped, dropped)
	}
	run.Finish(nil, nil)
}

// TestSSEHeartbeatOnIdleStream shrinks the heartbeat period and checks that
// an idle stream (no windows published) still carries periodic comment
// lines, so proxy idle timeouts never reap a healthy connection.
func TestSSEHeartbeatOnIdleStream(t *testing.T) {
	old := sseHeartbeatEvery
	sseHeartbeatEvery = 20 * time.Millisecond
	defer func() { sseHeartbeatEvery = old }()

	_, runs, ts := newTestService()
	defer ts.Close()
	run := runs.Start(RunInfo{Mix: "mcf", Policy: "dap", Horizon: 1_000_000})
	run.SetColumns([]string{"core0.ipc"})
	defer run.Finish(nil, nil)

	resp, err := http.Get(ts.URL + fmt.Sprintf("/runs/%d/stream", run.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	found := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(resp.Body)
		heartbeats := 0
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), ": heartbeat") {
				heartbeats++
				if heartbeats == 2 { // two periods: a ticker, not a one-off
					close(found)
					return
				}
			}
		}
	}()
	select {
	case <-found:
	case <-time.After(5 * time.Second):
		t.Fatal("no heartbeat comments on an idle stream")
	}
}
