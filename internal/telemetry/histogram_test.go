package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1})

	// le semantics: a sample exactly on a bound lands in that bucket.
	h.Observe(0.005) // bucket le=0.01
	h.Observe(0.01)  // bucket le=0.01 (boundary)
	h.Observe(0.05)  // bucket le=0.1
	h.Observe(0.5)   // bucket le=1
	h.Observe(5)     // +Inf

	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-5.565) > 1e-9 {
		t.Fatalf("Sum = %v, want 5.565", got)
	}
	cum, _ := h.snapshot()
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}

	// same (name, labels) returns the same histogram, bounds ignored
	if r.Histogram("lat", "latency", []float64{42}) != h {
		t.Fatal("histogram handle not shared")
	}
	// distinct labels, distinct histogram
	if r.Histogram("lat", "latency", []float64{0.01}, Label{"op", "put"}) == h {
		t.Fatal("labeled histogram must be distinct")
	}

	var nilH *Histogram
	nilH.Observe(1) // nil-safe no-ops
	nilH.ObserveSince(time.Now())
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram not zero")
	}
}

func TestHistogramKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a histogram should panic")
		}
	}()
	r.Histogram("x", "", DurationBuckets())
}

func TestHistogramBoundsNotAscendingPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds should panic")
		}
	}()
	r.Histogram("bad", "", []float64{1, 1})
}

// TestHistogramGolden locks the histogram exposition: cumulative _bucket
// ladder in bound order (not lexical — le="+Inf" must come last), the le
// label appended after the base labels, and the _sum/_count pair.
func TestHistogramGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("svc_op_seconds", "Operation latency.", []float64{0.005, 0.05, 0.5},
		Label{"op", "put"})
	for _, v := range []float64{0.001, 0.004, 0.02, 0.3, 2} {
		h.Observe(v)
	}
	// a second series in the same family, left empty: all-zero buckets
	r.Histogram("svc_op_seconds", "Operation latency.", []float64{0.005, 0.05, 0.5},
		Label{"op", "get"})
	// an unlabeled histogram alongside a counter, to pin family ordering
	r.Histogram("wal_fsync_seconds", "WAL fsync latency.", []float64{0.001, 0.01}).Observe(0.002)
	r.Counter("ops_total", "Operations.").Add(6)

	var got bytes.Buffer
	if err := r.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "histogram.golden")
	want, err := os.ReadFile(golden)
	if err != nil || !bytes.Equal(got.Bytes(), want) {
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("updated %s", golden)
			return
		}
		t.Fatalf("exposition differs from %s (set UPDATE_GOLDEN=1 to refresh)\n--- got ---\n%s\n--- want ---\n%s",
			golden, got.Bytes(), want)
	}
}

// TestHistogramConcurrentObserve is the -race workhorse for histograms:
// 8 goroutines observing (mixing pre-acquired handles and fresh lookups)
// while the exposition is rendered in a tight loop. Afterwards the bucket
// ladder must account for every observation exactly once.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 2, 4, 8}

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})

	go func() { // concurrent scraper
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			shared := r.Histogram("hist_shared", "shared", bounds)
			for i := 0; i < iters; i++ {
				shared.Observe(float64(i % 10))
				r.Histogram("hist_fresh", "fresh lookup", bounds,
					Label{"w", fmt.Sprint(w)}).Observe(float64(i % 10))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	shared := r.Histogram("hist_shared", "shared", bounds)
	if got := shared.Count(); got != workers*iters {
		t.Fatalf("shared Count = %d, want %d", got, workers*iters)
	}
	cum, sum := shared.snapshot()
	// i%10 over 2000 iters x 8 workers: 1600 of each value 0..9.
	const each = workers * iters / 10
	wantCum := []uint64{
		2 * each,  // values 0,1    -> le=1
		3 * each,  // +value 2      -> le=2
		5 * each,  // +values 3,4   -> le=4
		9 * each,  // +values 5..8  -> le=8
		10 * each, // +value 9      -> +Inf
	}
	for i, w := range wantCum {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	wantSum := float64(workers) * float64(iters/10) * 45 // sum 0..9 = 45 per decade
	if math.Abs(sum-wantSum) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", sum, wantSum)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hist_shared_bucket{le="+Inf"} 16000`,
		"hist_shared_count 16000",
		`hist_fresh_bucket{w="0",le="+Inf"} 2000`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestFormatLe(t *testing.T) {
	for v, want := range map[float64]string{
		0.005:    "0.005",
		0.000025: "2.5e-05",
		1:        "1",
		120:      "120",
	} {
		if got := formatLe(v); got != want {
			t.Errorf("formatLe(%v) = %q, want %q", v, got, want)
		}
	}
}
