package jobqueue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dap/internal/faultinject"
	"dap/internal/store"
)

// fastCfg returns a queue config tuned for fast tests: real clock, zero
// backoff (retries dispatch immediately).
func fastCfg(dir string) Config {
	return Config{
		Dir:         dir,
		LeaseTTL:    5 * time.Second,
		MaxAttempts: 3,
		BackoffBase: time.Nanosecond,
		BackoffMax:  time.Nanosecond,
	}
}

func openSvc(t *testing.T, dir string, exec Executor, scfg ServiceConfig) *Service {
	t.Helper()
	q, err := Open(fastCfg(dir + "/queue"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if scfg.Workers == 0 {
		scfg.Workers = 2
	}
	if scfg.Poll == 0 {
		scfg.Poll = time.Millisecond
	}
	if scfg.Reap == 0 {
		scfg.Reap = 5 * time.Millisecond
	}
	return NewService(q, st, exec, scfg)
}

func waitIdle(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Wait(ctx); err != nil {
		counts, _ := svc.Queue().Counts()
		t.Fatalf("service never drained: %v (counts %v)", err, counts)
	}
}

func closeSvc(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// echoExec returns a deterministic payload derived from the spec.
func echoExec(_ context.Context, spec JobSpec) ([]byte, error) {
	return []byte("result-of-" + spec.String()), nil
}

func TestServiceRunsSweepToCompletion(t *testing.T) {
	svc := openSvc(t, t.TempDir(), echoExec, ServiceConfig{})
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a", "b", "c"}, Seeds: []uint64{0, 1}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	waitIdle(t, svc)
	closeSvc(t, svc)

	counts, total := svc.Queue().Counts()
	if total != 6 || counts["done"] != 6 {
		t.Fatalf("counts = %v", counts)
	}
	if n := svc.Store().Len(); n != 6 {
		t.Fatalf("store has %d entries; want 6", n)
	}
	// Every result is the executor's payload, addressable by job key.
	for _, j := range svc.Queue().DoneJobs(1) {
		got, ok := svc.Store().Get(j.Key)
		if !ok || string(got) != "result-of-"+j.Spec.String() {
			t.Fatalf("job %d result = %q, %v", j.ID, got, ok)
		}
	}
}

func TestTransientFailureRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Uint64
	exec := func(_ context.Context, spec JobSpec) ([]byte, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("transient glitch")
		}
		return echoExec(nil, spec)
	}
	svc := openSvc(t, t.TempDir(), exec, ServiceConfig{Workers: 1})
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	waitIdle(t, svc)
	closeSvc(t, svc)

	j, _ := svc.Queue().Job(1)
	if j.State != JobDone || j.Attempts != 2 {
		t.Fatalf("job = state %v attempts %d; want done after 2 failed attempts", j.State, j.Attempts)
	}
}

func TestPermanentFailureDeadLetters(t *testing.T) {
	exec := func(_ context.Context, _ JobSpec) ([]byte, error) {
		return nil, errors.New("doomed")
	}
	svc := openSvc(t, t.TempDir(), exec, ServiceConfig{Workers: 1})
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	waitIdle(t, svc)
	closeSvc(t, svc)

	dead := svc.Queue().DeadLetters()
	if len(dead) != 2 {
		t.Fatalf("dead letters = %d; want 2", len(dead))
	}
	for _, d := range dead {
		if d.Attempts != 3 || d.Error != "doomed" || d.State != "dead" {
			t.Fatalf("dead letter = %+v", d)
		}
	}
	if svc.Store().Len() != 0 {
		t.Fatal("failed jobs wrote results")
	}
}

func TestIdenticalJobsShareStoredResult(t *testing.T) {
	var execs atomic.Uint64
	exec := func(_ context.Context, spec JobSpec) ([]byte, error) {
		execs.Add(1)
		return echoExec(nil, spec)
	}
	svc := openSvc(t, t.TempDir(), exec, ServiceConfig{Workers: 1})
	// Two sweeps with the same single job: the second must be a cache hit.
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	waitIdle(t, svc)
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, svc)
	closeSvc(t, svc)

	if n := execs.Load(); n != 1 {
		t.Fatalf("executor ran %d times; want 1 (second job served from store)", n)
	}
	if svc.CacheHits != 1 {
		t.Fatalf("CacheHits = %d; want 1", svc.CacheHits)
	}
	counts, _ := svc.Queue().Counts()
	if counts["done"] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestChaosInjectedExecFailuresAreAbsorbed(t *testing.T) {
	chaos := faultinject.NewServiceChaos(faultinject.ServicePlan{FailExecEvery: 2})
	svc := openSvc(t, t.TempDir(), echoExec, ServiceConfig{Workers: 1, Chaos: chaos})
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a", "b", "c", "d"}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	waitIdle(t, svc)
	closeSvc(t, svc)

	counts, _ := svc.Queue().Counts()
	if counts["done"] != 4 {
		t.Fatalf("counts = %v; want all 4 done despite injected failures", counts)
	}
	if chaos.Failed.Load() == 0 {
		t.Fatal("chaos injected no failures")
	}
}

// crashingChaos records the crash instead of exiting, then blocks the
// worker so the test can observe the "crashed" state.
func crashingChaos(plan faultinject.ServicePlan, crashed chan<- struct{}) *faultinject.ServiceChaos {
	chaos := faultinject.NewServiceChaos(plan)
	var once sync.Once
	chaos.Exit = func(int) {
		once.Do(func() { close(crashed) })
		select {} // the worker goroutine dies with the "process"
	}
	return chaos
}

func TestReconcileAfterCrashBeforePut(t *testing.T) {
	dir := t.TempDir()
	crashed := make(chan struct{})
	chaos := crashingChaos(faultinject.ServicePlan{CrashBeforePut: 1}, crashed)
	svc := openSvc(t, dir, echoExec, ServiceConfig{Workers: 1, Chaos: chaos})
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	<-crashed
	// The "process" died before Put: no result on disk, job still leased in
	// the WAL. Reopen from disk as a new process would.
	svc2 := openSvc(t, dir, echoExec, ServiceConfig{Workers: 1})
	acked, requeued, err := svc2.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if acked != 0 || requeued != 1 {
		t.Fatalf("Reconcile = ack %d requeue %d; want 0/1 (no result was stored)", acked, requeued)
	}
	j, _ := svc2.Queue().Job(1)
	if j.Attempts != 0 {
		t.Fatalf("crash recovery charged an attempt: %d", j.Attempts)
	}
	svc2.Start()
	waitIdle(t, svc2)
	closeSvc(t, svc2)
	if counts, _ := svc2.Queue().Counts(); counts["done"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestReconcileAfterCrashAfterPut(t *testing.T) {
	dir := t.TempDir()
	crashed := make(chan struct{})
	chaos := crashingChaos(faultinject.ServicePlan{CrashAfterPut: 1}, crashed)
	var execs atomic.Uint64
	exec := func(_ context.Context, spec JobSpec) ([]byte, error) {
		execs.Add(1)
		return echoExec(nil, spec)
	}
	svc := openSvc(t, dir, exec, ServiceConfig{Workers: 1, Chaos: chaos})
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	<-crashed
	// The result IS durable; only the ack was lost. Recovery must mark the
	// job done from the store, not re-simulate.
	svc2 := openSvc(t, dir, exec, ServiceConfig{Workers: 1})
	acked, requeued, err := svc2.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if acked != 1 || requeued != 0 {
		t.Fatalf("Reconcile = ack %d requeue %d; want 1/0 (result already stored)", acked, requeued)
	}
	if counts, _ := svc2.Queue().Counts(); counts["done"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if execs.Load() != 1 {
		t.Fatalf("executor ran %d times; the recovered job must not re-simulate", execs.Load())
	}
	closeSvc(t, svc2)
}

func TestGracefulCloseDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	exec := func(_ context.Context, spec JobSpec) ([]byte, error) {
		close(started)
		<-release
		return echoExec(nil, spec)
	}
	svc := openSvc(t, t.TempDir(), exec, ServiceConfig{Workers: 1})
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	<-started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- svc.Close(ctx)
	}()
	// Close must wait for the in-flight job, not abandon it.
	select {
	case err := <-done:
		t.Fatalf("Close returned before the in-flight job finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Close: %v", err)
	}
	j, _ := svc.Queue().Job(1)
	if j.State != JobDone {
		t.Fatalf("in-flight job not drained: %v", j.State)
	}
}

func TestHeartbeatKeepsLongJobLeased(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(Config{Dir: dir + "/queue", LeaseTTL: 50 * time.Millisecond, BackoffBase: time.Nanosecond, BackoffMax: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir + "/results")
	if err != nil {
		t.Fatal(err)
	}
	exec := func(_ context.Context, spec JobSpec) ([]byte, error) {
		time.Sleep(200 * time.Millisecond) // 4x the lease TTL
		return echoExec(nil, spec)
	}
	svc := NewService(q, st, exec, ServiceConfig{
		Workers: 1, Poll: time.Millisecond, Heartbeat: 10 * time.Millisecond, Reap: 10 * time.Millisecond,
	})
	if _, err := q.Submit(SweepSpec{Mixes: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	waitIdle(t, svc)
	closeSvc(t, svc)
	j, _ := q.Job(1)
	if j.State != JobDone || j.Attempts != 0 {
		t.Fatalf("long job: state %v attempts %d; want done with no reaped attempts", j.State, j.Attempts)
	}
}

func TestWorkerNames(t *testing.T) {
	// Sanity: worker names thread into lease snapshots (visible over the API).
	started := make(chan struct{})
	release := make(chan struct{})
	exec := func(_ context.Context, spec JobSpec) ([]byte, error) {
		close(started)
		<-release
		return echoExec(nil, spec)
	}
	svc := openSvc(t, t.TempDir(), exec, ServiceConfig{Workers: 1})
	if _, err := svc.Queue().Submit(SweepSpec{Mixes: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	<-started
	j, _ := svc.Queue().Job(1)
	if j.State != JobLeased || j.Worker != "worker-0" {
		t.Fatalf("leased job = %+v", j)
	}
	close(release)
	waitIdle(t, svc)
	closeSvc(t, svc)
}
