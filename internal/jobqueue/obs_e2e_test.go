package jobqueue

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dap/internal/faultinject"
	"dap/internal/mem"
	"dap/internal/obs"
	"dap/internal/store"
	"dap/internal/telemetry"
)

// syncBuffer is a goroutine-safe log sink: workers log concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServiceObservabilityEndToEnd drives a chaos-interrupted sweep through
// a fully instrumented service and asserts the whole observability surface
// at once: the Perfetto trace carries the lifecycle spans plus at least one
// retry and one dead-letter edge, the latency histograms counted real
// observations, one correlation ID threads through the log records from
// enqueue to ack, the stalled job's flight dump is persisted and servable,
// and clean jobs leave no dump behind.
func TestServiceObservabilityEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var logs syncBuffer
	tracer := obs.NewJobTracer(0)

	qcfg := fastCfg(filepath.Join(dir, "queue"))
	qcfg.Logger = obs.NewLogger(&logs, "debug", "json")
	qcfg.Tracer = tracer
	q, err := Open(qcfg)
	if err != nil {
		t.Fatal(err)
	}

	// The executor mirrors harness.SweepExecutor's observability contract:
	// it logs through the context logger stamped with the context corr, and
	// an aborted run surfaces as an *obs.FlightError carrying the frozen
	// flight ring.
	exec := func(ctx context.Context, spec JobSpec) ([]byte, error) {
		corr := obs.Corr(ctx)
		obs.LoggerFrom(ctx).Info("simulation start", "corr", corr, "mix", spec.Mix)
		if spec.Mix == "stall" {
			fr := obs.NewFlightRecorder(8)
			fr.Addf(mem.Cycle(1000), "pending=42 progress=0")
			dump := fr.Dump("watchdog-stall", "req queued=42")
			dump.Corr = corr
			dump.Error = "watchdog: no forward progress"
			return nil, &obs.FlightError{Dump: dump, Err: fmt.Errorf("watchdog: no forward progress")}
		}
		obs.LoggerFrom(ctx).Info("simulation done", "corr", corr)
		return []byte("result-of-" + spec.String()), nil
	}

	flightDir := filepath.Join(dir, "flight")
	svc := openSvcOn(t, q, dir, exec, ServiceConfig{
		Workers: 2, Poll: time.Millisecond, Reap: 5 * time.Millisecond,
		Chaos:     faultinject.NewServiceChaos(faultinject.ServicePlan{FailExecEvery: 4}),
		FlightDir: flightDir,
	})
	sweep, err := q.Submit(SweepSpec{Mixes: []string{"ok-a", "ok-b", "stall"}})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	waitIdle(t, svc)
	closeSvc(t, svc)

	// 1. The Chrome trace opens as one JSON document with the lifecycle
	// spans and the retry and dead-letter edges of the doomed job.
	var traceBuf bytes.Buffer
	if err := tracer.WriteChromeTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBuf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, traceBuf.String())
	}
	seen := map[string]int{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name]++
	}
	for _, want := range []string{"submit", "queue-wait", "lease", "execute", "ack", "retry", "dead"} {
		if seen[want] == 0 {
			t.Errorf("trace has no %q event (events: %v)", want, seen)
		}
	}

	// 2. The latency histograms counted real observations.
	var prom strings.Builder
	if err := telemetry.Default.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"jobqueue_queue_wait_seconds", "jobqueue_lease_seconds",
		"jobqueue_execute_seconds", "jobqueue_wal_append_seconds",
		"store_put_seconds",
	} {
		re := regexp.MustCompile(name + `_count (\d+)`)
		m := re.FindStringSubmatch(prom.String())
		if m == nil {
			t.Errorf("/metrics missing %s_count", name)
			continue
		}
		if n, _ := strconv.Atoi(m[1]); n == 0 {
			t.Errorf("%s_count is zero", name)
		}
	}

	// 3. One correlation ID threads through the log records of a clean job
	// from enqueue through lease and execution to ack.
	logStr := logs.String()
	corr := "s1-j1" // first job of the first sweep, submission order
	stamped := 0
	for _, marker := range []string{"job enqueued", "job leased", "simulation start", "simulation done", "job done"} {
		found := false
		for _, line := range strings.Split(logStr, "\n") {
			if strings.Contains(line, marker) && strings.Contains(line, `"corr":"`+corr+`"`) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q record stamped with corr %s", marker, corr)
			continue
		}
		stamped++
	}
	if stamped < 5 {
		t.Logf("logs:\n%s", logStr)
	}

	// 4. The stalled job's flight dump is persisted under FlightDir, carries
	// its correlation ID, and is retrievable through the service.
	stallID := sweep.JobIDs[2]
	data, ok := svc.FlightDump(stallID)
	if !ok {
		t.Fatalf("no flight dump for stalled job %d", stallID)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	wantCorr := fmt.Sprintf("s%d-j%d", sweep.ID, stallID)
	if dump.Corr != wantCorr || dump.Reason != "watchdog-stall" || len(dump.Entries) == 0 {
		t.Errorf("dump = corr %q reason %q entries %d, want corr %q reason watchdog-stall entries > 0",
			dump.Corr, dump.Reason, len(dump.Entries), wantCorr)
	}

	// 5. Clean runs leave no dump behind.
	if _, ok := svc.FlightDump(sweep.JobIDs[0]); ok {
		t.Error("clean job has a flight dump")
	}
	ents, err := os.ReadDir(flightDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("flight dir has %d dumps, want exactly 1 (the stalled job)", len(ents))
	}
}

// openSvcOn is openSvc over an already-open queue (whose config carries the
// observability hooks under test).
func openSvcOn(t *testing.T, q *Queue, dir string, exec Executor, scfg ServiceConfig) *Service {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	return NewService(q, st, exec, scfg)
}
