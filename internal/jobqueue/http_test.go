package jobqueue

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dap/internal/store"
	"dap/internal/telemetry"
)

// newAPIServer stands up the full HTTP surface over a real service.
func newAPIServer(t *testing.T, exec Executor, validate func(JobSpec) error) (*httptest.Server, *Service) {
	t.Helper()
	dir := t.TempDir()
	cfg := fastCfg(dir + "/queue")
	cfg.Validate = validate
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir + "/results")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(q, st, exec, ServiceConfig{Workers: 1, Poll: time.Millisecond, Reap: 5 * time.Millisecond})
	reg := telemetry.NewRegistry()
	srv := telemetry.NewServer(reg, telemetry.NewRunRegistry(reg))
	NewAPI(svc).Attach(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Close(ctx) //nolint:errcheck // test teardown
	})
	return ts, svc
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(b)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test helper
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d (%s); want %d", method, url, resp.StatusCode, strings.TrimSpace(buf.String()), wantStatus)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s response %q: %v", url, buf.String(), err)
		}
	}
}

func TestSubmitPollResultsLifecycle(t *testing.T) {
	ts, svc := newAPIServer(t, echoExec, nil)
	svc.Start()

	var created struct {
		ID   int64 `json:"id"`
		Jobs int   `json:"jobs"`
	}
	doJSON(t, "POST", ts.URL+"/jobs", SweepSpec{
		Mixes: []string{"mcf", "lbm"}, Policies: []string{"baseline", "dap"},
	}, http.StatusCreated, &created)
	if created.ID != 1 || created.Jobs != 4 {
		t.Fatalf("created = %+v", created)
	}

	// Poll until done.
	deadline := time.Now().Add(10 * time.Second)
	var snap SweepSnapshot
	for {
		doJSON(t, "GET", fmt.Sprintf("%s/jobs/%d", ts.URL, created.ID), nil, http.StatusOK, &snap)
		if snap.Counts["done"] == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never completed: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(snap.Jobs) != 4 {
		t.Fatalf("detail view has %d jobs", len(snap.Jobs))
	}
	for _, j := range snap.Jobs {
		if j.State != "done" || j.Key == "" {
			t.Fatalf("job = %+v", j)
		}
	}

	// Results endpoint returns each stored payload.
	var res sweepResults
	doJSON(t, "GET", fmt.Sprintf("%s/jobs/%d/results", ts.URL, created.ID), nil, http.StatusOK, &res)
	if res.Done != 4 || res.Total != 4 || len(res.Results) != 4 {
		t.Fatalf("results = done %d total %d n %d", res.Done, res.Total, len(res.Results))
	}
	var first string
	if err := json.Unmarshal(res.Results[0].Result, &first); err != nil {
		t.Fatalf("payload not passed through: %v", err)
	}
	if !strings.HasPrefix(first, "result-of-mcf|") {
		t.Fatalf("payload = %q", first)
	}

	// Sweep list includes the summary.
	var list []SweepSnapshot
	doJSON(t, "GET", ts.URL+"/jobs", nil, http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != 1 || list[0].Counts["done"] != 4 {
		t.Fatalf("list = %+v", list)
	}
}

func TestSubmitValidationAndDecodeErrors(t *testing.T) {
	ts, _ := newAPIServer(t, echoExec, func(js JobSpec) error {
		if js.Mix == "bogus" {
			return fmt.Errorf("unknown mix %q", js.Mix)
		}
		return nil
	})

	// Unknown mix -> 400 with the validator's message.
	req, _ := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(`{"mixes":["bogus"]}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test helper
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), "unknown mix") {
		t.Fatalf("invalid submit = %d %q", resp.StatusCode, buf.String())
	}

	// Malformed JSON and unknown fields -> 400.
	for _, body := range []string{`{not json`, `{"mixxes":["mcf"]}`, `{}`} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q = %d; want 400", body, resp.StatusCode)
		}
	}
}

func TestCancelSweepOverHTTP(t *testing.T) {
	// No workers started: jobs stay queued so cancellation hits all of them.
	ts, svc := newAPIServer(t, echoExec, nil)
	var created struct {
		ID int64 `json:"id"`
	}
	doJSON(t, "POST", ts.URL+"/jobs", SweepSpec{Mixes: []string{"a", "b"}}, http.StatusCreated, &created)

	var snap SweepSnapshot
	doJSON(t, "DELETE", fmt.Sprintf("%s/jobs/%d", ts.URL, created.ID), nil, http.StatusOK, &snap)
	if !snap.Cancelled || snap.Counts["cancelled"] != 2 {
		t.Fatalf("cancel snapshot = %+v", snap)
	}
	if _, ok := svc.Queue().Lease("w"); ok {
		t.Fatal("cancelled job still dispatchable")
	}
	// Unknown sweep -> 404; bad ID -> 400.
	doJSON(t, "DELETE", ts.URL+"/jobs/99", nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", ts.URL+"/jobs/xyz", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/jobs/99", nil, http.StatusNotFound, nil)
}

func TestDeadLettersEndpoint(t *testing.T) {
	exec := func(_ context.Context, _ JobSpec) ([]byte, error) {
		return nil, fmt.Errorf("doomed")
	}
	ts, svc := newAPIServer(t, exec, nil)
	doJSON(t, "POST", ts.URL+"/jobs", SweepSpec{Mixes: []string{"a"}}, http.StatusCreated, nil)
	svc.Start()

	deadline := time.Now().Add(10 * time.Second)
	var dead []JobSnapshot
	for {
		doJSON(t, "GET", ts.URL+"/deadletters", nil, http.StatusOK, &dead)
		if len(dead) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never dead-lettered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dead[0].State != "dead" || dead[0].Attempts != 3 || dead[0].Error != "doomed" {
		t.Fatalf("dead letter = %+v", dead[0])
	}
}

func TestTelemetryRoutesStillServe(t *testing.T) {
	// Mounting the API must not displace the telemetry surface.
	ts, _ := newAPIServer(t, echoExec, nil)
	for _, path := range []string{"/healthz", "/metrics", "/runs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
}
