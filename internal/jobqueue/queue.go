package jobqueue

import (
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"time"

	"dap/internal/obs"
	"dap/internal/telemetry"
)

// Process-wide lifecycle counters (monotonic, so test queues can share the
// default registry the way the runner pool does).
var (
	mSubmitted = telemetry.Default.Counter("jobqueue_jobs_submitted_total", "Jobs expanded from submitted sweeps.")
	mDone      = telemetry.Default.Counter("jobqueue_jobs_done_total", "Jobs acknowledged complete.")
	mRetried   = telemetry.Default.Counter("jobqueue_jobs_retried_total", "Job failures re-queued with backoff.")
	mDead      = telemetry.Default.Counter("jobqueue_jobs_dead_total", "Jobs dead-lettered after exhausting attempts.")
	mExpired   = telemetry.Default.Counter("jobqueue_leases_expired_total", "Leases reaped after missing their deadline.")
)

// Latency histograms over the job lifecycle and the durability machinery.
// Observations happen only at live mutation sites, never inside apply(), so
// WAL replay on restart does not re-observe history.
var (
	hQueueWait = telemetry.Default.Histogram("jobqueue_queue_wait_seconds",
		"Time a job spent dispatchable (enqueued or past its backoff gate) before a worker leased it.",
		telemetry.DurationBuckets())
	hLease = telemetry.Default.Histogram("jobqueue_lease_seconds",
		"Lease duration from grant to done/retry/dead.", telemetry.DurationBuckets())
	hWALAppend = telemetry.Default.Histogram("jobqueue_wal_append_seconds",
		"WAL record append+fsync latency.", telemetry.DurationBuckets())
	hCheckpoint = telemetry.Default.Histogram("jobqueue_checkpoint_seconds",
		"Full-state checkpoint write duration.", telemetry.DurationBuckets())
)

// Live queue-shape gauges, recomputed after every journaled mutation (and
// on the service's reaper tick, which keeps the lease age advancing while
// nothing mutates). With several queues in one process the last writer
// wins — in the served binary there is exactly one.
var (
	gDepth = telemetry.Default.Gauge("jobqueue_depth",
		"Jobs currently queued (dispatchable or backoff-gated).")
	gLeased = telemetry.Default.Gauge("jobqueue_leased",
		"Jobs currently leased to workers.")
	gDeadLetters = telemetry.Default.Gauge("jobqueue_deadletters",
		"Jobs currently in the dead-letter list.")
	gOldestLease = telemetry.Default.Gauge("jobqueue_oldest_lease_age_seconds",
		"Age of the oldest live lease (0 when none).")
)

// Config parameterizes a Queue. The zero value of every field selects a
// sensible default.
type Config struct {
	// Dir is the queue's state directory (WAL + checkpoint). Required.
	Dir string

	// LeaseTTL is how long a leased job may go without a heartbeat before
	// the reaper re-queues it (default 30s).
	LeaseTTL time.Duration
	// MaxAttempts dead-letters a job after this many failed attempts
	// (default 4).
	MaxAttempts int
	// BackoffBase and BackoffMax bound the exponential retry backoff
	// (defaults 1s and 60s). The jitter is a deterministic function of
	// (job ID, attempt), so a replayed schedule is reproducible.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CheckpointEvery compacts the WAL into a checkpoint after this many
	// appended records (default 512).
	CheckpointEvery int

	// Clock supplies the current time (default time.Now); tests inject a
	// manual clock to make lease expiry and backoff deterministic.
	Clock func() time.Time

	// KeyFunc derives the result-store key of a job (default JobSpec.String).
	// It must be a pure function of the spec.
	KeyFunc func(JobSpec) string
	// Validate, when non-nil, rejects malformed specs at submission so they
	// never enter the queue (unknown mixes, bad arch names, ...).
	Validate func(JobSpec) error

	// Logger receives a correlation-ID-stamped record at every job state
	// transition (submit, lease, done, retry, dead, requeue, reap, cancel).
	// nil logs nothing, keeping library users and tests quiet by default.
	Logger *slog.Logger
	// Tracer records the same transitions as Chrome trace events — spans
	// for queue wait and lease, instants for the edges — one Perfetto track
	// per job. nil disables tracing.
	Tracer *obs.JobTracer
}

func (c *Config) fill() {
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = time.Second
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Minute
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 512
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.KeyFunc == nil {
		c.KeyFunc = JobSpec.String
	}
}

// Queue is the durable job queue. Every mutating method journals its
// record (fsynced) before touching memory, so the on-disk log is always a
// superset of the in-memory state and a crash at any point replays to a
// consistent queue.
type Queue struct {
	cfg Config

	mu        sync.Mutex
	jobs      map[int64]*Job
	sweeps    map[int64]*Sweep
	order     []int64 // job IDs in submission order (dispatch priority)
	nextJob   int64
	nextSweep int64
	seq       uint64
	wal       *wal
	sinceCkpt int
	closed    bool
}

// Open creates or recovers a queue rooted at cfg.Dir: load the last
// checkpoint, replay the WAL tail past it, and reopen the journal for
// appending.
func Open(cfg Config) (*Queue, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("jobqueue: Config.Dir is required")
	}
	cfg.fill()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobqueue: %w", err)
	}
	q := &Queue{
		cfg:    cfg,
		jobs:   make(map[int64]*Job),
		sweeps: make(map[int64]*Sweep),
	}
	ck := readCheckpoint(checkpointPath(cfg.Dir))
	q.loadCheckpoint(ck)
	seq, err := replayWAL(walPath(cfg.Dir), ck.Seq, q.apply)
	if err != nil {
		return nil, err
	}
	q.seq = seq
	if q.wal, err = openWAL(walPath(cfg.Dir)); err != nil {
		return nil, err
	}
	q.updateGaugesLocked() // no lock needed yet: q unpublished
	return q, nil
}

// log returns the configured logger, or a silent one.
func (q *Queue) log() *slog.Logger { return obs.OrNop(q.cfg.Logger) }

func (q *Queue) loadCheckpoint(ck checkpointState) {
	q.nextJob, q.nextSweep, q.seq = ck.NextJob, ck.NextSweep, ck.Seq
	for _, s := range ck.Sweeps {
		q.sweeps[s.ID] = &Sweep{
			ID: s.ID, Spec: s.Spec, JobIDs: append([]int64(nil), s.JobIDs...),
			Submitted: fromUnixNano(s.Submitted), Cancelled: s.Cancelled,
		}
	}
	for _, j := range ck.Jobs {
		q.jobs[j.ID] = &Job{
			ID: j.ID, SweepID: j.SweepID, Spec: j.Spec, Key: j.Key,
			State: JobState(j.State), Attempts: j.Attempts, LastErr: j.LastErr,
			Worker: j.Worker, NotBefore: fromUnixNano(j.NotBefore), LeaseExpiry: fromUnixNano(j.Expiry),
		}
		q.order = append(q.order, j.ID)
	}
	sort.Slice(q.order, func(i, k int) bool { return q.order[i] < q.order[k] })
}

// apply replays one journal record onto the in-memory state. Records
// referencing unknown jobs are skipped (they can only arise from a journal
// older than the checkpoint, which the sequence filter already excludes,
// or manual tampering).
func (q *Queue) apply(rec walRecord) {
	switch rec.Op {
	case "sweep":
		if rec.Sweep == nil {
			return
		}
		now := q.cfg.Clock()
		s := &Sweep{ID: rec.Sweep.ID, Spec: rec.Sweep.Spec, Submitted: fromUnixNano(rec.Sweep.Submitted)}
		for _, jr := range rec.Sweep.Jobs {
			s.JobIDs = append(s.JobIDs, jr.ID)
			q.jobs[jr.ID] = &Job{ID: jr.ID, SweepID: s.ID, Spec: jr.Spec, Key: jr.Key, enqueuedAt: now}
			q.order = append(q.order, jr.ID)
			if jr.ID > q.nextJob {
				q.nextJob = jr.ID
			}
		}
		q.sweeps[s.ID] = s
		if s.ID > q.nextSweep {
			q.nextSweep = s.ID
		}
	case "lease":
		if j := q.jobs[rec.Job]; j != nil {
			j.State, j.Worker, j.LeaseExpiry = JobLeased, rec.Worker, fromUnixNano(rec.Expiry)
			j.leasedAt = q.cfg.Clock()
		}
	case "done":
		if j := q.jobs[rec.Job]; j != nil {
			j.State, j.Worker, j.LastErr = JobDone, "", ""
			j.leasedAt = time.Time{}
		}
	case "fail":
		if j := q.jobs[rec.Job]; j != nil {
			j.State, j.Worker = JobQueued, ""
			j.Attempts++
			j.LastErr = rec.Err
			j.NotBefore = fromUnixNano(rec.NotBefore)
			j.enqueuedAt, j.leasedAt = q.cfg.Clock(), time.Time{}
		}
	case "dead":
		if j := q.jobs[rec.Job]; j != nil {
			j.State, j.Worker = JobDead, ""
			j.Attempts++
			j.LastErr = rec.Err
			j.leasedAt = time.Time{}
		}
	case "requeue":
		if j := q.jobs[rec.Job]; j != nil {
			j.State, j.Worker, j.NotBefore = JobQueued, "", time.Time{}
			j.enqueuedAt, j.leasedAt = q.cfg.Clock(), time.Time{}
		}
	case "cancel":
		if s := q.sweeps[rec.Job]; s != nil {
			s.Cancelled = true
			for _, id := range s.JobIDs {
				if j := q.jobs[id]; j != nil && j.State == JobQueued {
					j.State = JobCancelled
				}
			}
		}
	}
}

// journal appends (and fsyncs) a record, then applies it to memory, then
// triggers a checkpoint if the WAL has grown enough. Callers hold q.mu.
func (q *Queue) journal(rec walRecord) error {
	if q.closed {
		return fmt.Errorf("jobqueue: queue closed")
	}
	q.seq++
	rec.Seq = q.seq
	t0 := time.Now()
	if err := q.wal.append(rec); err != nil {
		q.seq--
		return err
	}
	hWALAppend.ObserveSince(t0)
	q.apply(rec)
	q.updateGaugesLocked()
	q.sinceCkpt++
	if q.sinceCkpt >= q.cfg.CheckpointEvery {
		return q.checkpointLocked()
	}
	return nil
}

// updateGaugesLocked recomputes the queue-shape gauges. O(jobs), which is
// noise next to the fsync every mutation already pays.
func (q *Queue) updateGaugesLocked() {
	var depth, leased, dead float64
	var oldest time.Time
	for _, j := range q.jobs {
		switch j.State {
		case JobQueued:
			depth++
		case JobLeased:
			leased++
			if !j.leasedAt.IsZero() && (oldest.IsZero() || j.leasedAt.Before(oldest)) {
				oldest = j.leasedAt
			}
		case JobDead:
			dead++
		}
	}
	gDepth.Set(depth)
	gLeased.Set(leased)
	gDeadLetters.Set(dead)
	age := 0.0
	if !oldest.IsZero() {
		age = q.cfg.Clock().Sub(oldest).Seconds()
	}
	gOldestLease.Set(age)
}

// RefreshGauges re-publishes the queue-shape gauges; the service's reaper
// tick calls it so the oldest-lease age keeps advancing between mutations.
func (q *Queue) RefreshGauges() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.updateGaugesLocked()
}

// Submit expands a sweep spec into jobs, validates each (when the queue has
// a validator), journals the whole batch as one record and returns the
// sweep. An empty expansion is an error.
func (q *Queue) Submit(spec SweepSpec) (*Sweep, error) {
	specs := spec.Expand()
	if len(specs) == 0 {
		return nil, fmt.Errorf("jobqueue: sweep expands to no jobs (mixes is empty)")
	}
	if q.cfg.Validate != nil {
		for _, js := range specs {
			if err := q.cfg.Validate(js); err != nil {
				return nil, fmt.Errorf("jobqueue: invalid job %s: %w", js.String(), err)
			}
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	rec := walRecord{Op: "sweep", Sweep: &sweepRecord{
		ID: q.nextSweep + 1, Spec: spec, Submitted: unixNano(q.cfg.Clock()),
	}}
	id := q.nextJob
	for _, js := range specs {
		id++
		rec.Sweep.Jobs = append(rec.Sweep.Jobs, jobRecord{ID: id, Spec: js, Key: q.cfg.KeyFunc(js)})
	}
	if err := q.journal(rec); err != nil {
		return nil, err
	}
	mSubmitted.Add(float64(len(specs)))
	s := q.sweeps[rec.Sweep.ID]
	q.log().Info("sweep submitted", "sweep", s.ID, "jobs", len(s.JobIDs))
	for _, id := range s.JobIDs {
		j := q.jobs[id]
		corr := j.Corr()
		q.cfg.Tracer.Track(uint64(id), fmt.Sprintf("%s %s/%s/%s", corr, j.Spec.Mix, j.Spec.Arch, j.Spec.Policy))
		q.cfg.Tracer.Instant(uint64(id), "submit", "corr", corr, "key", j.Key)
		q.log().Debug("job enqueued", "corr", corr, "key", j.Key,
			"mix", j.Spec.Mix, "arch", j.Spec.Arch, "policy", j.Spec.Policy, "seed", j.Spec.Seed)
	}
	cp := *s
	return &cp, nil
}

// Lease hands the lowest-ID dispatchable job (queued, past its backoff
// gate) to worker under a LeaseTTL deadline. It returns false when nothing
// is currently dispatchable.
func (q *Queue) Lease(worker string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Clock()
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != JobQueued || j.NotBefore.After(now) {
			continue
		}
		rec := walRecord{Op: "lease", Job: j.ID, Worker: worker, Expiry: unixNano(now.Add(q.cfg.LeaseTTL))}
		// The queue wait started when the job became dispatchable: enqueue
		// (or re-enqueue) time, or the backoff gate if that was later.
		waitStart := j.enqueuedAt
		if j.NotBefore.After(waitStart) {
			waitStart = j.NotBefore
		}
		if err := q.journal(rec); err != nil {
			return Job{}, false
		}
		corr := j.Corr()
		if !waitStart.IsZero() {
			hQueueWait.Observe(now.Sub(waitStart).Seconds())
			q.cfg.Tracer.Span(uint64(j.ID), "queue-wait", waitStart, now, "corr", corr)
		}
		q.cfg.Tracer.Instant(uint64(j.ID), "lease", "corr", corr, "worker", worker)
		q.log().Debug("job leased", "corr", corr, "worker", worker, "attempt", j.Attempts+1)
		return *j, true
	}
	return Job{}, false
}

// Heartbeat extends a leased job's deadline. Extensions are deliberately
// not journaled: after a process crash every lease is stale by definition
// and recovery re-queues it, so only the live process needs the extension.
func (q *Queue) Heartbeat(jobID int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[jobID]
	if j == nil || j.State != JobLeased {
		return fmt.Errorf("jobqueue: heartbeat on job %d in state %v", jobID, stateOf(j))
	}
	j.LeaseExpiry = q.cfg.Clock().Add(q.cfg.LeaseTTL)
	return nil
}

// Ack marks a leased job done (its result is durable in the store).
func (q *Queue) Ack(jobID int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[jobID]
	if j == nil || j.State != JobLeased {
		return fmt.Errorf("jobqueue: ack on job %d in state %v", jobID, stateOf(j))
	}
	leasedAt := j.leasedAt // apply("done") clears the mark
	if err := q.journal(walRecord{Op: "done", Job: jobID}); err != nil {
		return err
	}
	mDone.Inc()
	corr := j.Corr()
	if !leasedAt.IsZero() {
		now := q.cfg.Clock()
		hLease.Observe(now.Sub(leasedAt).Seconds())
		q.cfg.Tracer.Span(uint64(jobID), "lease", leasedAt, now, "corr", corr)
	}
	q.cfg.Tracer.Instant(uint64(jobID), "ack", "corr", corr)
	q.log().Info("job done", "corr", corr, "key", j.Key)
	return nil
}

// Nack records a failed attempt: the job re-queues behind its backoff gate,
// or dead-letters once its attempts are exhausted.
func (q *Queue) Nack(jobID int64, cause string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[jobID]
	if j == nil || j.State != JobLeased {
		return fmt.Errorf("jobqueue: nack on job %d in state %v", jobID, stateOf(j))
	}
	return q.failLocked(j, cause)
}

func (q *Queue) failLocked(j *Job, cause string) error {
	attempt := j.Attempts + 1
	corr := j.Corr()
	leasedAt := j.leasedAt
	if !leasedAt.IsZero() {
		now := q.cfg.Clock()
		hLease.Observe(now.Sub(leasedAt).Seconds())
		q.cfg.Tracer.Span(uint64(j.ID), "lease", leasedAt, now, "corr", corr)
	}
	if attempt >= q.cfg.MaxAttempts {
		if err := q.journal(walRecord{Op: "dead", Job: j.ID, Err: cause}); err != nil {
			return err
		}
		mDead.Inc()
		q.cfg.Tracer.Instant(uint64(j.ID), "dead", "corr", corr, "attempts", fmt.Sprint(attempt), "err", cause)
		q.log().Error("job dead-lettered", "corr", corr, "attempts", attempt, "err", cause)
		return nil
	}
	backoff := backoffDelay(q.cfg.BackoffBase, q.cfg.BackoffMax, attempt, j.ID)
	nb := q.cfg.Clock().Add(backoff)
	if err := q.journal(walRecord{Op: "fail", Job: j.ID, Err: cause, NotBefore: unixNano(nb)}); err != nil {
		return err
	}
	mRetried.Inc()
	q.cfg.Tracer.Instant(uint64(j.ID), "retry", "corr", corr,
		"attempt", fmt.Sprint(attempt), "backoff", backoff.String(), "err", cause)
	q.log().Warn("job retry scheduled", "corr", corr, "attempt", attempt,
		"backoff", backoff.String(), "err", cause)
	return nil
}

// Requeue puts a leased job back at the front of the queue without counting
// an attempt — recovery uses it for jobs whose lease belonged to a dead
// process.
func (q *Queue) Requeue(jobID int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[jobID]
	if j == nil || j.State != JobLeased {
		return fmt.Errorf("jobqueue: requeue on job %d in state %v", jobID, stateOf(j))
	}
	if err := q.journal(walRecord{Op: "requeue", Job: jobID}); err != nil {
		return err
	}
	corr := j.Corr()
	q.cfg.Tracer.Instant(uint64(jobID), "requeue", "corr", corr)
	q.log().Info("job requeued", "corr", corr)
	return nil
}

// Reap re-queues every leased job whose deadline has passed (worker death
// or hang), counting the missed lease as a failed attempt so a job that
// repeatedly wedges its worker eventually dead-letters instead of cycling
// forever. It returns how many leases were reaped.
func (q *Queue) Reap() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Clock()
	n := 0
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State != JobLeased || j.LeaseExpiry.After(now) {
			continue
		}
		corr, worker := j.Corr(), j.Worker
		cause := fmt.Sprintf("lease expired (worker %q missed its deadline)", worker)
		if err := q.failLocked(j, cause); err != nil {
			break
		}
		mExpired.Inc()
		q.cfg.Tracer.Instant(uint64(id), "lease-expired", "corr", corr, "worker", worker)
		q.log().Warn("lease expired", "corr", corr, "worker", worker)
		n++
	}
	return n
}

// Cancel marks a sweep cancelled: its queued jobs move to cancelled and
// will never dispatch; jobs already leased run to completion.
func (q *Queue) Cancel(sweepID int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.sweeps[sweepID] == nil {
		return fmt.Errorf("jobqueue: no such sweep %d", sweepID)
	}
	if err := q.journal(walRecord{Op: "cancel", Job: sweepID}); err != nil {
		return err
	}
	q.log().Info("sweep cancelled", "sweep", sweepID)
	return nil
}

// Leased returns copies of every currently leased job (recovery reconciles
// these against the result store).
func (q *Queue) Leased() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Job
	for _, id := range q.order {
		if j := q.jobs[id]; j.State == JobLeased {
			out = append(out, *j)
		}
	}
	return out
}

// Counts returns the number of jobs per reported state label plus the
// total.
func (q *Queue) Counts() (map[string]int, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	counts := make(map[string]int)
	for _, j := range q.jobs {
		counts[stateLabel(j)]++
	}
	return counts, len(q.jobs)
}

// Idle reports whether every job is in a terminal state (done, dead or
// cancelled).
func (q *Queue) Idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, j := range q.jobs {
		switch j.State {
		case JobQueued, JobLeased:
			return false
		}
	}
	return true
}

// Job returns a copy of a job by ID.
func (q *Queue) Job(id int64) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return Job{}, false
	}
	return *j, true
}

// Sweeps lists every sweep's summary snapshot, oldest first.
func (q *Queue) Sweeps() []SweepSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	ids := make([]int64, 0, len(q.sweeps))
	for id := range q.sweeps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	out := make([]SweepSnapshot, 0, len(ids))
	for _, id := range ids {
		out = append(out, q.snapshotSweepLocked(q.sweeps[id], false))
	}
	return out
}

// SweepSnapshot returns one sweep's snapshot (with per-job detail when
// detail is set) and whether it exists.
func (q *Queue) SweepSnapshot(id int64, detail bool) (SweepSnapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.sweeps[id]
	if s == nil {
		return SweepSnapshot{}, false
	}
	return q.snapshotSweepLocked(s, detail), true
}

func (q *Queue) snapshotSweepLocked(s *Sweep, detail bool) SweepSnapshot {
	snap := SweepSnapshot{
		ID: s.ID, Spec: s.Spec, Submitted: s.Submitted.UTC().Format(time.RFC3339Nano),
		Cancelled: s.Cancelled, Total: len(s.JobIDs), Counts: make(map[string]int),
	}
	for _, id := range s.JobIDs {
		j := q.jobs[id]
		snap.Counts[stateLabel(j)]++
		if detail {
			snap.Jobs = append(snap.Jobs, snapshotJob(j))
		}
	}
	return snap
}

// DeadLetters lists every dead-lettered job with its attempt count and last
// error.
func (q *Queue) DeadLetters() []JobSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []JobSnapshot
	for _, id := range q.order {
		if j := q.jobs[id]; j.State == JobDead {
			out = append(out, snapshotJob(j))
		}
	}
	return out
}

// DoneJobs lists every completed job of a sweep in submission order.
func (q *Queue) DoneJobs(sweepID int64) []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.sweeps[sweepID]
	if s == nil {
		return nil
	}
	var out []Job
	for _, id := range s.JobIDs {
		if j := q.jobs[id]; j != nil && j.State == JobDone {
			out = append(out, *j)
		}
	}
	return out
}

// Checkpoint compacts the journal: the full state snapshot lands with an
// atomic rename, then the WAL is truncated. A crash between the two leaves
// stale records in the log that replay skips via the sequence filter.
func (q *Queue) Checkpoint() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.checkpointLocked()
}

func (q *Queue) checkpointLocked() error {
	t0 := time.Now()
	defer hCheckpoint.ObserveSince(t0)
	st := checkpointState{Seq: q.seq, NextJob: q.nextJob, NextSweep: q.nextSweep}
	ids := make([]int64, 0, len(q.sweeps))
	for id := range q.sweeps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	for _, id := range ids {
		s := q.sweeps[id]
		st.Sweeps = append(st.Sweeps, checkpointSweep{
			ID: s.ID, Spec: s.Spec, JobIDs: s.JobIDs,
			Submitted: unixNano(s.Submitted), Cancelled: s.Cancelled,
		})
	}
	for _, id := range q.order {
		j := q.jobs[id]
		st.Jobs = append(st.Jobs, checkpointJob{
			ID: j.ID, SweepID: j.SweepID, Spec: j.Spec, Key: j.Key,
			State: int32(j.State), Attempts: j.Attempts, LastErr: j.LastErr,
			Worker: j.Worker, NotBefore: unixNano(j.NotBefore), Expiry: unixNano(j.LeaseExpiry),
		})
	}
	if err := writeCheckpoint(checkpointPath(q.cfg.Dir), st); err != nil {
		return err
	}
	q.sinceCkpt = 0
	return q.wal.reset()
}

// Close checkpoints and closes the journal. The directory remains openable
// by a future process.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	err := q.checkpointLocked()
	q.closed = true
	if cerr := q.wal.close(); err == nil {
		err = cerr
	}
	return err
}

// backoffDelay is the capped exponential retry delay for a job's Nth
// attempt (attempt >= 1) plus a deterministic jitter derived from
// (jobID, attempt): delay = min(base << (attempt-1), max) stretched by up
// to +25%. Being a pure function, a replayed retry schedule is
// reproducible.
func backoffDelay(base, max time.Duration, attempt int, jobID int64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// FNV-64a over (jobID, attempt) drives the jitter.
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range []uint64{uint64(jobID), uint64(attempt)} {
		for i := 0; i < 8; i++ {
			h ^= (b >> (8 * i)) & 0xff
			h *= prime
		}
	}
	jitter := time.Duration(uint64(d) / 4 * (h % 1024) / 1024)
	if d+jitter > max {
		return max
	}
	return d + jitter
}

func stateOf(j *Job) string {
	if j == nil {
		return "absent"
	}
	return j.State.String()
}
