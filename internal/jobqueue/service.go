package jobqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dap/internal/faultinject"
	"dap/internal/obs"
	"dap/internal/runner"
	"dap/internal/store"
	"dap/internal/telemetry"
)

// Execution latency, observed by the worker pool per attempt.
var hExecute = telemetry.Default.Histogram("jobqueue_execute_seconds",
	"Wall-clock executor (simulation) duration per attempt.", telemetry.DurationBuckets())

// Executor runs one job and returns its result payload (the bytes the store
// persists under the job's key). It must be deterministic in the spec: the
// same spec always yields byte-identical payloads, which is what lets the
// service reuse stored results instead of re-simulating.
type Executor func(ctx context.Context, spec JobSpec) ([]byte, error)

// ServiceConfig parameterizes a Service; zero fields pick defaults.
type ServiceConfig struct {
	// Workers is the number of concurrent job executors (default
	// runner.Parallelism()).
	Workers int
	// Poll is how long an idle worker sleeps before re-asking for a lease
	// (default 50ms).
	Poll time.Duration
	// Heartbeat is the lease-extension period for running jobs (default
	// LeaseTTL/3, floored at 10ms).
	Heartbeat time.Duration
	// Reap is the reaper's scan period for expired leases (default 1s).
	Reap time.Duration
	// Chaos, when non-nil, injects process-level faults (executor failures
	// and crash points) for the chaos harness.
	Chaos *faultinject.ServiceChaos
	// FlightDir, when set, persists the flight-recorder dump of each aborted
	// run as <FlightDir>/job-<id>.json so a stalled simulation's black box
	// survives the process and is servable over HTTP.
	FlightDir string
}

// Service binds a Queue, a result Store and an Executor into the running
// sweep service: a worker pool leasing jobs, heartbeating them while they
// simulate, persisting results before acknowledging, plus a background
// reaper for expired leases.
//
// The completion protocol is the crash-safety contract:
//
//	execute -> store.Put(key) -> queue.Ack
//
// A crash after Put but before Ack leaves a leased job whose result is
// already durable; Reconcile detects that (store hit for a leased job) and
// acknowledges without re-executing. A crash before Put leaves nothing, and
// the job is re-queued with no attempt penalty. Either way the resumed
// sweep's merged results are byte-identical to an uninterrupted run.
type Service struct {
	q    *Queue
	st   *store.Store
	exec Executor
	cfg  ServiceConfig

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// CacheHits counts jobs acknowledged straight from the store without
	// executing (visible to tests and the crash harness).
	CacheHits int
	hitMu     sync.Mutex
}

// NewService assembles a service. The queue and store must share a fate: a
// restart must reopen both from the same directories for recovery to
// reconcile them.
func NewService(q *Queue, st *store.Store, exec Executor, cfg ServiceConfig) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runner.Parallelism(0)
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = q.cfg.LeaseTTL / 3
		if cfg.Heartbeat < 10*time.Millisecond {
			cfg.Heartbeat = 10 * time.Millisecond
		}
	}
	if cfg.Reap <= 0 {
		cfg.Reap = time.Second
	}
	return &Service{q: q, st: st, exec: exec, cfg: cfg}
}

// Queue exposes the underlying queue (the HTTP API reads through it).
func (s *Service) Queue() *Queue { return s.q }

// Store exposes the underlying result store.
func (s *Service) Store() *store.Store { return s.st }

// Reconcile resolves the leases a dead process left behind; call it once
// after Open, before Start. A leased job whose result already sits in the
// store is acknowledged as done (the crash happened between Put and Ack);
// every other leased job is re-queued with no attempt penalty (its lease
// died with the process). It returns (acked, requeued).
func (s *Service) Reconcile() (acked, requeued int, err error) {
	for _, j := range s.q.Leased() {
		if s.st.Has(j.Key) {
			if err := s.q.Ack(j.ID); err != nil {
				return acked, requeued, fmt.Errorf("jobqueue: reconcile ack job %d: %w", j.ID, err)
			}
			acked++
			continue
		}
		if err := s.q.Requeue(j.ID); err != nil {
			return acked, requeued, fmt.Errorf("jobqueue: reconcile requeue job %d: %w", j.ID, err)
		}
		requeued++
	}
	return acked, requeued, nil
}

// Start launches the worker pool and the lease reaper.
func (s *Service) Start() {
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func(id int) {
			defer s.wg.Done()
			s.workerLoop(fmt.Sprintf("worker-%d", id))
		}(i)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.reaperLoop()
	}()
}

func (s *Service) workerLoop(name string) {
	for {
		job, ok := s.q.Lease(name)
		if !ok {
			select {
			case <-s.ctx.Done():
				return
			case <-time.After(s.cfg.Poll):
			}
			continue
		}
		s.runJob(job)
		// After finishing a job, check for shutdown before leasing another:
		// graceful drain means "finish what you hold, take nothing new".
		select {
		case <-s.ctx.Done():
			return
		default:
		}
	}
}

// runJob executes one leased job through the completion protocol.
func (s *Service) runJob(job Job) {
	corr := job.Corr()
	tracer := s.q.cfg.Tracer
	log := s.q.log().With("corr", corr)
	// A result from an earlier identical job (same key) short-circuits
	// execution entirely — this is both the dedup path and the post-crash
	// "already simulated" path.
	if _, ok := s.st.Get(job.Key); ok {
		s.hitMu.Lock()
		s.CacheHits++
		s.hitMu.Unlock()
		tracer.Instant(uint64(job.ID), "cache-hit", "corr", corr, "key", job.Key)
		log.Info("job served from store", "key", job.Key)
		s.q.Ack(job.ID) //nolint:errcheck // lease may have been reaped; reaper wins
		return
	}

	if s.cfg.Chaos.FailExec() {
		s.q.Nack(job.ID, "faultinject: injected executor failure") //nolint:errcheck // see above
		return
	}

	// Heartbeat the lease while the simulation runs.
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(s.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-t.C:
				s.q.Heartbeat(job.ID) //nolint:errcheck // stops mattering once the job ends
			}
		}
	}()

	// The executor sees the job's correlation ID and the service logger via
	// the context, so "simulation start/done" records line up with the
	// queue's lifecycle records under one corr value.
	ctx := obs.WithLogger(obs.WithCorr(s.ctx, corr), s.q.cfg.Logger)
	t0 := time.Now()
	payload, err := s.exec(ctx, job.Spec)
	execEnd := time.Now()
	hExecute.ObserveSince(t0)
	tracer.Span(uint64(job.ID), "execute", t0, execEnd, "corr", corr)
	close(hbDone)
	hbWG.Wait()

	if err != nil {
		s.saveFlight(job, err, log)
		s.q.Nack(job.ID, err.Error()) //nolint:errcheck // lease may have been reaped
		return
	}

	s.cfg.Chaos.BeforePut()
	p0 := time.Now()
	if err := s.st.Put(job.Key, payload); err != nil {
		s.q.Nack(job.ID, fmt.Sprintf("store put: %v", err)) //nolint:errcheck
		return
	}
	tracer.Span(uint64(job.ID), "store-put", p0, time.Now(), "corr", corr, "key", job.Key)
	s.cfg.Chaos.AfterPut()
	s.q.Ack(job.ID) //nolint:errcheck // reaped lease: another worker re-runs; identical payload makes it idempotent
}

// saveFlight persists the flight-recorder dump carried by an aborted run
// (see obs.FlightError) under FlightDir as job-<id>.json, overwriting any
// earlier attempt's dump so the file always holds the latest postmortem.
func (s *Service) saveFlight(job Job, err error, log *slog.Logger) {
	var fe *obs.FlightError
	if !errors.As(err, &fe) || s.cfg.FlightDir == "" {
		return
	}
	if mkErr := os.MkdirAll(s.cfg.FlightDir, 0o755); mkErr != nil {
		log.Error("flight dump not saved", "err", mkErr.Error())
		return
	}
	data, mErr := json.MarshalIndent(fe.Dump, "", "  ")
	if mErr != nil {
		log.Error("flight dump not encoded", "err", mErr.Error())
		return
	}
	path := filepath.Join(s.cfg.FlightDir, fmt.Sprintf("job-%d.json", job.ID))
	if wErr := os.WriteFile(path, data, 0o644); wErr != nil {
		log.Error("flight dump not saved", "err", wErr.Error())
		return
	}
	log.Warn("flight dump saved", "path", path, "reason", fe.Dump.Reason,
		"entries", len(fe.Dump.Entries))
}

// FlightDump returns the persisted flight dump of a job, if one exists.
func (s *Service) FlightDump(jobID int64) ([]byte, bool) {
	if s.cfg.FlightDir == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.cfg.FlightDir, fmt.Sprintf("job-%d.json", jobID)))
	if err != nil {
		return nil, false
	}
	return data, true
}

func (s *Service) reaperLoop() {
	t := time.NewTicker(s.cfg.Reap)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.q.Reap()
			// Re-publish gauges so the oldest-lease age keeps advancing even
			// while nothing mutates the queue.
			s.q.RefreshGauges()
		}
	}
}

// Close drains the service gracefully: workers finish their in-flight jobs
// (taking no new ones), then the queue checkpoints and closes. The context
// bounds the drain; on expiry Close gives up waiting and closes the queue
// anyway (in-flight work then resolves as expired leases on the next open).
func (s *Service) Close(ctx context.Context) error {
	if s.cancel != nil {
		s.cancel()
		done := make(chan struct{})
		go func() { s.wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-ctx.Done():
		}
	}
	return s.q.Close()
}

// Wait blocks until every job in the queue is terminal (done, dead or
// cancelled) or the context expires.
func (s *Service) Wait(ctx context.Context) error {
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		if s.q.Idle() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}
