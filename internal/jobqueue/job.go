// Package jobqueue is a durable, crash-safe job queue for sweep execution:
// sweep specs expand into jobs journaled to an append-only write-ahead log
// with atomic-rename checkpoints, workers lease jobs with heartbeat-extended
// deadlines, a reaper re-queues jobs whose lease expired, transient failures
// retry with capped deterministically-jittered exponential backoff, and
// jobs that exhaust their attempts land in a dead-letter list instead of
// wedging the sweep.
//
// The queue itself is generic: a JobSpec is just names and knobs, and the
// executor (internal/harness wires the simulator in) decides what they
// mean. Everything the queue does is replayable — a killed process reopens
// the same directory, loads the last checkpoint, replays the WAL tail and
// resumes the sweep exactly where it died.
package jobqueue

import (
	"fmt"
	"time"
)

// JobState is a job's lifecycle state.
type JobState int32

// Job states. A queued job with Attempts > 0 is reported as "retrying".
const (
	JobQueued JobState = iota
	JobLeased
	JobDone
	JobDead
	JobCancelled
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobLeased:
		return "leased"
	case JobDone:
		return "done"
	case JobDead:
		return "dead"
	case JobCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// JobSpec describes one simulation: which mix on which architecture under
// which policy and seed, plus optional run-length knobs. The executor
// interprets it; the queue only keys and journals it.
type JobSpec struct {
	Mix    string `json:"mix"`
	Arch   string `json:"arch"`
	Policy string `json:"policy"`
	Seed   uint64 `json:"seed"`

	Cores int    `json:"cores,omitempty"`
	Instr uint64 `json:"instr,omitempty"`
	Warm  int    `json:"warm,omitempty"`
	Quick bool   `json:"quick,omitempty"`
	// Sampled asks the executor for SMARTS-style interval sampling instead
	// of the full timed region (the result carries confidence intervals).
	Sampled bool `json:"sampled,omitempty"`
}

// String renders the spec as the default store key.
func (j JobSpec) String() string {
	return fmt.Sprintf("%s|%s|%s|seed=%d|cores=%d|instr=%d|warm=%d|quick=%v|sampled=%v",
		j.Mix, j.Arch, j.Policy, j.Seed, j.Cores, j.Instr, j.Warm, j.Quick, j.Sampled)
}

// SweepSpec is the client-facing request: the cross product of mixes ×
// archs × policies × seeds, sharing the run-length knobs.
type SweepSpec struct {
	Mixes    []string `json:"mixes"`
	Archs    []string `json:"archs"`
	Policies []string `json:"policies"`
	Seeds    []uint64 `json:"seeds"`

	Cores   int    `json:"cores,omitempty"`
	Instr   uint64 `json:"instr,omitempty"`
	Warm    int    `json:"warm,omitempty"`
	Quick   bool   `json:"quick,omitempty"`
	Sampled bool   `json:"sampled,omitempty"`
}

// Expand returns the sweep's jobs in deterministic submission order
// (mix-major, then arch, policy, seed). Absent dimensions default to the
// simulator's defaults: arch "sectored", policy "baseline", seed 0.
func (s SweepSpec) Expand() []JobSpec {
	archs := s.Archs
	if len(archs) == 0 {
		archs = []string{"sectored"}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []string{"baseline"}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	var out []JobSpec
	for _, mix := range s.Mixes {
		for _, arch := range archs {
			for _, pol := range policies {
				for _, seed := range seeds {
					out = append(out, JobSpec{
						Mix: mix, Arch: arch, Policy: pol, Seed: seed,
						Cores: s.Cores, Instr: s.Instr, Warm: s.Warm, Quick: s.Quick,
						Sampled: s.Sampled,
					})
				}
			}
		}
	}
	return out
}

// Job is one unit of work tracked by the queue.
type Job struct {
	ID      int64
	SweepID int64
	Spec    JobSpec
	// Key addresses the job's result in the store; identical specs share a
	// key, which is what makes completed work reusable across crashes and
	// clients.
	Key string

	State    JobState
	Attempts int
	LastErr  string
	Worker   string
	// NotBefore gates a retrying job until its backoff elapses.
	NotBefore time.Time
	// LeaseExpiry is the deadline a leased job must be heartbeated or
	// finished by before the reaper re-queues it.
	LeaseExpiry time.Time

	// enqueuedAt and leasedAt are in-memory instrumentation marks feeding
	// the queue-wait and lease-duration histograms. They are deliberately
	// not journaled: after a restart they reset, so the first post-restart
	// observation of a recovered job measures from recovery — which is the
	// operationally honest number — and replay never re-observes history.
	enqueuedAt time.Time
	leasedAt   time.Time
}

// Corr is the job's correlation ID: a pure function of the sweep and job
// IDs ("s<sweep>-j<job>"), so it is stable across restarts, appears in
// every log record, trace event and flight dump about the job, and needs no
// journal support. Grep one corr value to reconstruct a job's lifecycle.
func (j *Job) Corr() string {
	return fmt.Sprintf("s%d-j%d", j.SweepID, j.ID)
}

// Sweep groups the jobs of one submitted spec.
type Sweep struct {
	ID        int64
	Spec      SweepSpec
	JobIDs    []int64
	Submitted time.Time
	Cancelled bool
}

// JobSnapshot is the JSON view of a job.
type JobSnapshot struct {
	ID       int64   `json:"id"`
	Sweep    int64   `json:"sweep"`
	Corr     string  `json:"corr"`
	Spec     JobSpec `json:"spec"`
	Key      string  `json:"key"`
	State    string  `json:"state"`
	Attempts int     `json:"attempts"`
	Error    string  `json:"error,omitempty"`
	Worker   string  `json:"worker,omitempty"`
}

// SweepSnapshot is the JSON view of a sweep served by GET /jobs/{id}.
type SweepSnapshot struct {
	ID        int64          `json:"id"`
	Submitted string         `json:"submitted"`
	Cancelled bool           `json:"cancelled,omitempty"`
	Total     int            `json:"total"`
	Counts    map[string]int `json:"counts"`
	Spec      SweepSpec      `json:"spec"`
	// Jobs is only populated on the detail view.
	Jobs []JobSnapshot `json:"jobs,omitempty"`
}

// stateLabel maps a job onto its reported state name, distinguishing
// first-time queued jobs from retrying ones.
func stateLabel(j *Job) string {
	if j.State == JobQueued && j.Attempts > 0 {
		return "retrying"
	}
	return j.State.String()
}

func snapshotJob(j *Job) JobSnapshot {
	return JobSnapshot{
		ID: j.ID, Sweep: j.SweepID, Corr: j.Corr(), Spec: j.Spec, Key: j.Key,
		State: stateLabel(j), Attempts: j.Attempts, Error: j.LastErr, Worker: j.Worker,
	}
}
