package jobqueue

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"dap/internal/telemetry"
)

// API serves the sweep service over HTTP, mounted onto the telemetry
// server's mux:
//
//	POST   /jobs               submit a sweep spec, returns {id, jobs}
//	GET    /jobs               list sweep summaries
//	GET    /jobs/{id}          one sweep with per-job states and attempts
//	DELETE /jobs/{id}          cancel a sweep's queued jobs
//	GET    /jobs/{id}/results  completed jobs' stored result payloads
//	GET    /jobs/{id}/flight   a stalled job's persisted flight-recorder dump
//	GET    /deadletters        jobs that exhausted their attempts
//	GET    /trace              the job-lifecycle Chrome trace (open in Perfetto)
type API struct {
	svc *Service
}

// NewAPI wraps a service for HTTP serving.
func NewAPI(svc *Service) *API { return &API{svc: svc} }

// Attach mounts the API's routes on the telemetry server. Call before the
// server starts.
func (a *API) Attach(srv *telemetry.Server) {
	srv.Handle("POST /jobs", a.handleSubmit)
	srv.Handle("GET /jobs", a.handleList)
	srv.Handle("GET /jobs/{id}", a.handleSweep)
	srv.Handle("DELETE /jobs/{id}", a.handleCancel)
	srv.Handle("GET /jobs/{id}/results", a.handleResults)
	srv.Handle("GET /jobs/{id}/flight", a.handleFlight)
	srv.Handle("GET /deadletters", a.handleDeadLetters)
	srv.Handle("GET /trace", a.handleTrace)
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad sweep spec: %v", err), http.StatusBadRequest)
		return
	}
	sweep, err := a.svc.Queue().Submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{"id": sweep.ID, "jobs": len(sweep.JobIDs)})
}

func (a *API) handleList(w http.ResponseWriter, _ *http.Request) {
	sweeps := a.svc.Queue().Sweeps()
	if sweeps == nil {
		sweeps = []SweepSnapshot{}
	}
	writeJSON(w, sweeps)
}

func (a *API) sweepID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad sweep id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

func (a *API) handleSweep(w http.ResponseWriter, r *http.Request) {
	id, ok := a.sweepID(w, r)
	if !ok {
		return
	}
	snap, ok := a.svc.Queue().SweepSnapshot(id, true)
	if !ok {
		http.Error(w, "no such sweep", http.StatusNotFound)
		return
	}
	writeJSON(w, snap)
}

func (a *API) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := a.sweepID(w, r)
	if !ok {
		return
	}
	if err := a.svc.Queue().Cancel(id); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	snap, _ := a.svc.Queue().SweepSnapshot(id, false)
	writeJSON(w, snap)
}

// sweepResults is the /jobs/{id}/results response: each completed job's
// stored payload, verbatim.
type sweepResults struct {
	ID      int64        `json:"id"`
	Done    int          `json:"done"`
	Total   int          `json:"total"`
	Results []jobPayload `json:"results"`
}

type jobPayload struct {
	Job    int64           `json:"job"`
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

func (a *API) handleResults(w http.ResponseWriter, r *http.Request) {
	id, ok := a.sweepID(w, r)
	if !ok {
		return
	}
	snap, ok := a.svc.Queue().SweepSnapshot(id, false)
	if !ok {
		http.Error(w, "no such sweep", http.StatusNotFound)
		return
	}
	out := sweepResults{ID: id, Total: snap.Total, Results: []jobPayload{}}
	for _, j := range a.svc.Queue().DoneJobs(id) {
		payload, ok := a.svc.Store().Get(j.Key)
		if !ok {
			// Done without a stored result should be impossible (Ack follows
			// Put); surface it rather than hiding the job.
			payload = []byte(`{"error":"result missing from store"}`)
		}
		if !json.Valid(payload) {
			quoted, _ := json.Marshal(string(payload))
			payload = quoted
		}
		out.Results = append(out.Results, jobPayload{Job: j.ID, Key: j.Key, Result: payload})
		out.Done++
	}
	writeJSON(w, out)
}

// handleFlight serves the persisted flight-recorder dump of one job. Here
// {id} is a job ID (dumps are per job, not per sweep); only jobs whose run
// stalled or aborted have one.
func (a *API) handleFlight(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	data, ok := a.svc.FlightDump(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no flight recording for job %d", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client gone
}

// handleTrace streams the job-lifecycle tracer's Chrome trace JSON — load
// it into Perfetto (ui.perfetto.dev) to see every job's queue-wait, lease,
// execute and store-put spans with retry and dead-letter edges.
func (a *API) handleTrace(w http.ResponseWriter, _ *http.Request) {
	tracer := a.svc.Queue().cfg.Tracer
	if tracer == nil {
		http.Error(w, "job tracing disabled (no tracer configured)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tracer.WriteChromeTrace(w) //nolint:errcheck // client gone
}

func (a *API) handleDeadLetters(w http.ResponseWriter, _ *http.Request) {
	dead := a.svc.Queue().DeadLetters()
	if dead == nil {
		dead = []JobSnapshot{}
	}
	writeJSON(w, dead)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone
}
