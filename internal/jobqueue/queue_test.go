package jobqueue

import (
	"os"
	"strings"
	"testing"
	"time"

	"dap/internal/faultinject"
)

// manualClock is a hand-advanced clock for deterministic lease/backoff
// tests.
type manualClock struct{ now time.Time }

func newManualClock() *manualClock {
	return &manualClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *manualClock) Now() time.Time          { return c.now }
func (c *manualClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func openQ(t *testing.T, dir string, clock *manualClock, mutate ...func(*Config)) *Queue {
	t.Helper()
	cfg := Config{Dir: dir, Clock: clock.Now, LeaseTTL: 30 * time.Second, MaxAttempts: 3}
	for _, m := range mutate {
		m(&cfg)
	}
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return q
}

func submitT(t *testing.T, q *Queue, spec SweepSpec) *Sweep {
	t.Helper()
	s, err := q.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return s
}

func TestSubmitExpandAndLeaseOrder(t *testing.T) {
	q := openQ(t, t.TempDir(), newManualClock())
	defer q.Close()
	s := submitT(t, q, SweepSpec{
		Mixes: []string{"mcf", "lbm"}, Policies: []string{"baseline", "dap"}, Seeds: []uint64{0, 1},
	})
	if len(s.JobIDs) != 8 {
		t.Fatalf("expanded %d jobs; want 8 (2 mixes x 2 policies x 2 seeds)", len(s.JobIDs))
	}
	// Dispatch order is submission order: mix-major.
	j1, ok1 := q.Lease("w")
	j2, ok2 := q.Lease("w")
	if !ok1 || !ok2 {
		t.Fatal("lease failed with queued jobs available")
	}
	if j1.ID != 1 || j2.ID != 2 {
		t.Fatalf("leases out of order: got %d then %d", j1.ID, j2.ID)
	}
	if j1.Spec.Mix != "mcf" || j1.Spec.Policy != "baseline" || j1.Spec.Seed != 0 {
		t.Fatalf("job 1 spec = %+v", j1.Spec)
	}
}

func TestValidateRejectsAtSubmission(t *testing.T) {
	q := openQ(t, t.TempDir(), newManualClock(), func(c *Config) {
		c.Validate = func(js JobSpec) error {
			if js.Mix == "bogus" {
				return &validationError{js.Mix}
			}
			return nil
		}
	})
	defer q.Close()
	if _, err := q.Submit(SweepSpec{Mixes: []string{"mcf", "bogus"}}); err == nil {
		t.Fatal("Submit accepted an invalid spec")
	}
	if counts, total := q.Counts(); total != 0 {
		t.Fatalf("rejected sweep left jobs behind: %v", counts)
	}
}

type validationError struct{ mix string }

func (e *validationError) Error() string { return "unknown mix " + e.mix }

func TestAckCompletesJob(t *testing.T) {
	q := openQ(t, t.TempDir(), newManualClock())
	defer q.Close()
	submitT(t, q, SweepSpec{Mixes: []string{"mcf"}})
	j, _ := q.Lease("w")
	if err := q.Ack(j.ID); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	got, _ := q.Job(j.ID)
	if got.State != JobDone {
		t.Fatalf("state = %v; want done", got.State)
	}
	if err := q.Ack(j.ID); err == nil {
		t.Fatal("double Ack succeeded")
	}
	if !q.Idle() {
		t.Fatal("queue not idle with all jobs done")
	}
}

func TestRetryWithDeterministicBackoffThenDeadLetter(t *testing.T) {
	clock := newManualClock()
	q := openQ(t, t.TempDir(), clock, func(c *Config) {
		c.BackoffBase = time.Second
		c.BackoffMax = time.Minute
	})
	defer q.Close()
	submitT(t, q, SweepSpec{Mixes: []string{"mcf"}})

	// Attempt 1 fails: the job re-queues behind its backoff gate.
	j, _ := q.Lease("w")
	if err := q.Nack(j.ID, "transient"); err != nil {
		t.Fatalf("Nack: %v", err)
	}
	got, _ := q.Job(j.ID)
	if got.State != JobQueued || got.Attempts != 1 {
		t.Fatalf("after nack: state=%v attempts=%d", got.State, got.Attempts)
	}
	wantDelay := backoffDelay(time.Second, time.Minute, 1, j.ID)
	if gotDelay := got.NotBefore.Sub(clock.Now()); gotDelay != wantDelay {
		t.Fatalf("backoff = %v; want %v (deterministic)", gotDelay, wantDelay)
	}
	if _, ok := q.Lease("w"); ok {
		t.Fatal("leased a job still inside its backoff window")
	}
	counts, _ := q.Counts()
	if counts["retrying"] != 1 {
		t.Fatalf("counts = %v; want 1 retrying", counts)
	}

	// Past the gate it dispatches again; attempt 2 fails with a longer gate.
	clock.Advance(wantDelay)
	j2, ok := q.Lease("w")
	if !ok || j2.ID != j.ID {
		t.Fatalf("re-lease after backoff: %+v, %v", j2, ok)
	}
	if err := q.Nack(j.ID, "transient again"); err != nil {
		t.Fatal(err)
	}
	got, _ = q.Job(j.ID)
	d2 := backoffDelay(time.Second, time.Minute, 2, j.ID)
	if d1 := backoffDelay(time.Second, time.Minute, 1, j.ID); d2 <= d1 {
		t.Fatalf("backoff not growing: %v then %v", d1, d2)
	}
	if gotDelay := got.NotBefore.Sub(clock.Now()); gotDelay != d2 {
		t.Fatalf("attempt-2 backoff = %v; want %v", gotDelay, d2)
	}

	// Attempt 3 = MaxAttempts: dead-letter, never dispatched again.
	clock.Advance(d2)
	if _, ok := q.Lease("w"); !ok {
		t.Fatal("re-lease failed")
	}
	if err := q.Nack(j.ID, "fatal-ish"); err != nil {
		t.Fatal(err)
	}
	got, _ = q.Job(j.ID)
	if got.State != JobDead || got.Attempts != 3 {
		t.Fatalf("after final nack: state=%v attempts=%d; want dead/3", got.State, got.Attempts)
	}
	dead := q.DeadLetters()
	if len(dead) != 1 || dead[0].ID != j.ID || dead[0].Error != "fatal-ish" || dead[0].Attempts != 3 {
		t.Fatalf("DeadLetters = %+v", dead)
	}
	clock.Advance(time.Hour)
	if _, ok := q.Lease("w"); ok {
		t.Fatal("dead-lettered job dispatched")
	}
	if !q.Idle() {
		t.Fatal("dead job should count as terminal")
	}
}

func TestBackoffCapAndDeterminism(t *testing.T) {
	base, max := time.Second, time.Minute
	for attempt := 1; attempt <= 12; attempt++ {
		d := backoffDelay(base, max, attempt, 42)
		if d > max {
			t.Fatalf("attempt %d: %v exceeds cap %v", attempt, d, max)
		}
		if d != backoffDelay(base, max, attempt, 42) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
	}
	// Different jobs jitter differently (with overwhelming probability).
	same := 0
	for id := int64(1); id <= 8; id++ {
		if backoffDelay(base, max, 2, id) == backoffDelay(base, max, 2, id+100) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("jitter appears constant across job IDs")
	}
}

func TestLeaseExpiryReapAndHeartbeat(t *testing.T) {
	clock := newManualClock()
	q := openQ(t, t.TempDir(), clock, func(c *Config) { c.LeaseTTL = 10 * time.Second })
	defer q.Close()
	submitT(t, q, SweepSpec{Mixes: []string{"mcf", "lbm"}})

	j1, _ := q.Lease("w1")
	j2, _ := q.Lease("w2")

	// Heartbeat keeps w1's lease alive across the original deadline.
	clock.Advance(8 * time.Second)
	if err := q.Heartbeat(j1.ID); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	clock.Advance(5 * time.Second) // j2 now 13s old (expired), j1 5s past heartbeat
	if n := q.Reap(); n != 1 {
		t.Fatalf("Reap = %d; want exactly the un-heartbeated lease", n)
	}
	g1, _ := q.Job(j1.ID)
	g2, _ := q.Job(j2.ID)
	if g1.State != JobLeased {
		t.Fatalf("heartbeated job reaped: %v", g1.State)
	}
	if g2.State != JobQueued || g2.Attempts != 1 {
		t.Fatalf("expired lease not requeued: state=%v attempts=%d", g2.State, g2.Attempts)
	}
	if !strings.Contains(g2.LastErr, "lease expired") {
		t.Fatalf("LastErr = %q", g2.LastErr)
	}
}

func TestRequeueDoesNotCountAttempt(t *testing.T) {
	q := openQ(t, t.TempDir(), newManualClock())
	defer q.Close()
	submitT(t, q, SweepSpec{Mixes: []string{"mcf"}})
	j, _ := q.Lease("w")
	if err := q.Requeue(j.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := q.Job(j.ID)
	if got.State != JobQueued || got.Attempts != 0 {
		t.Fatalf("after requeue: state=%v attempts=%d; want queued/0", got.State, got.Attempts)
	}
	if _, ok := q.Lease("w"); !ok {
		t.Fatal("requeued job not dispatchable")
	}
}

func TestCancelSweep(t *testing.T) {
	q := openQ(t, t.TempDir(), newManualClock())
	defer q.Close()
	s := submitT(t, q, SweepSpec{Mixes: []string{"mcf", "lbm", "milc"}})
	j, _ := q.Lease("w") // in-flight job survives cancellation
	if err := q.Cancel(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Lease("w"); ok {
		t.Fatal("leased a job from a cancelled sweep")
	}
	if err := q.Ack(j.ID); err != nil {
		t.Fatalf("in-flight job of cancelled sweep could not complete: %v", err)
	}
	snap, _ := q.SweepSnapshot(s.ID, false)
	if !snap.Cancelled || snap.Counts["cancelled"] != 2 || snap.Counts["done"] != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if err := q.Cancel(99); err == nil {
		t.Fatal("Cancel of unknown sweep succeeded")
	}
}

// reopen closes and reopens the queue, as a process restart would.
func reopen(t *testing.T, q *Queue, dir string, clock *manualClock, graceful bool, mutate ...func(*Config)) *Queue {
	t.Helper()
	if graceful {
		if err := q.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	} else {
		// Simulate a crash: drop the queue without checkpointing. The WAL
		// already holds every record durably.
		q.mu.Lock()
		q.closed = true
		q.wal.close()
		q.mu.Unlock()
	}
	return openQ(t, dir, clock, mutate...)
}

func TestRecoveryAfterCrashReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	clock := newManualClock()
	q := openQ(t, dir, clock)
	s := submitT(t, q, SweepSpec{Mixes: []string{"mcf", "lbm", "milc"}, Seeds: []uint64{0, 1}})
	j1, _ := q.Lease("w")
	q.Ack(j1.ID)
	j2, _ := q.Lease("w")
	q.Nack(j2.ID, "boom")
	j3, _ := q.Lease("w") // left leased across the crash

	q2 := reopen(t, q, dir, clock, false)
	defer q2.Close()

	counts, total := q2.Counts()
	if total != 6 || counts["done"] != 1 || counts["retrying"] != 1 || counts["leased"] != 1 || counts["queued"] != 3 {
		t.Fatalf("recovered counts = %v (total %d)", counts, total)
	}
	g2, _ := q2.Job(j2.ID)
	if g2.Attempts != 1 || g2.LastErr != "boom" {
		t.Fatalf("retry state lost: %+v", g2)
	}
	g3, _ := q2.Job(j3.ID)
	if g3.State != JobLeased || g3.Worker != "w" {
		t.Fatalf("lease lost: %+v", g3)
	}
	snap, ok := q2.SweepSnapshot(s.ID, true)
	if !ok || snap.Total != 6 || len(snap.Jobs) != 6 {
		t.Fatalf("sweep lost: %+v, %v", snap, ok)
	}
	// New submissions continue the ID sequence without collisions.
	s2 := submitT(t, q2, SweepSpec{Mixes: []string{"mcf"}})
	if s2.ID != s.ID+1 || s2.JobIDs[0] != 7 {
		t.Fatalf("ID sequence reset: sweep %d job %d", s2.ID, s2.JobIDs[0])
	}
}

func TestRecoveryAfterGracefulCloseUsesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	clock := newManualClock()
	q := openQ(t, dir, clock)
	submitT(t, q, SweepSpec{Mixes: []string{"mcf", "lbm"}})
	j, _ := q.Lease("w")
	q.Ack(j.ID)

	q2 := reopen(t, q, dir, clock, true)
	defer q2.Close()
	counts, total := q2.Counts()
	if total != 2 || counts["done"] != 1 || counts["queued"] != 1 {
		t.Fatalf("counts after graceful restart = %v", counts)
	}
}

func TestTornWALTailIsIgnored(t *testing.T) {
	dir := t.TempDir()
	clock := newManualClock()
	q := openQ(t, dir, clock)
	submitT(t, q, SweepSpec{Mixes: []string{"mcf", "lbm"}})
	j, _ := q.Lease("w")
	q.Ack(j.ID)
	q.mu.Lock()
	q.closed = true
	q.wal.close()
	q.mu.Unlock()

	// Tear the last record (the ack) in half, as a crash mid-append would.
	if err := faultinject.TruncateTail(walPath(dir), 10); err != nil {
		t.Fatal(err)
	}
	q2 := openQ(t, dir, clock)
	defer q2.Close()
	got, _ := q2.Job(j.ID)
	// The ack record was torn: the job must surface as still leased (to be
	// reconciled), never as a corrupted in-between.
	if got.State != JobLeased {
		t.Fatalf("state after torn ack = %v; want leased", got.State)
	}
}

func TestCorruptWALRecordEndsReplay(t *testing.T) {
	dir := t.TempDir()
	clock := newManualClock()
	q := openQ(t, dir, clock)
	submitT(t, q, SweepSpec{Mixes: []string{"mcf"}})
	j, _ := q.Lease("w")
	q.Ack(j.ID)
	q.mu.Lock()
	q.closed = true
	q.wal.close()
	q.mu.Unlock()

	// Flip a byte inside the lease record (second line): replay must stop
	// there, keeping the submit but dropping lease+ack.
	raw, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	first := strings.IndexByte(string(raw), '\n')
	if err := faultinject.FlipByte(walPath(dir), int64(first)+20); err != nil {
		t.Fatal(err)
	}
	q2 := openQ(t, dir, clock)
	defer q2.Close()
	got, _ := q2.Job(j.ID)
	if got.State != JobQueued {
		t.Fatalf("state = %v; want queued (lease+ack after corrupt record dropped)", got.State)
	}
}

func TestCheckpointTruncatesWALAndSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	clock := newManualClock()
	// Checkpoint every 4 records: a 3-mix sweep + 3 lease/ack pairs crosses
	// it several times.
	q := openQ(t, dir, clock, func(c *Config) { c.CheckpointEvery = 4 })
	submitT(t, q, SweepSpec{Mixes: []string{"mcf", "lbm", "milc"}})
	for i := 0; i < 3; i++ {
		j, ok := q.Lease("w")
		if !ok {
			t.Fatalf("lease %d failed", i)
		}
		if err := q.Ack(j.ID); err != nil {
			t.Fatal(err)
		}
	}
	info, err := os.Stat(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 1024 {
		t.Fatalf("WAL not compacted by checkpoints: %d bytes", info.Size())
	}
	q2 := reopen(t, q, dir, clock, false)
	defer q2.Close()
	counts, total := q2.Counts()
	if total != 3 || counts["done"] != 3 {
		t.Fatalf("counts after checkpointed crash = %v", counts)
	}
}

func TestStaleWALRecordsAfterCheckpointAreSkipped(t *testing.T) {
	// A crash between checkpoint-rename and WAL-truncate leaves records at
	// or below the checkpoint's sequence in the log; replay must skip them
	// rather than double-apply.
	dir := t.TempDir()
	clock := newManualClock()
	q := openQ(t, dir, clock)
	submitT(t, q, SweepSpec{Mixes: []string{"mcf"}})
	j, _ := q.Lease("w")
	q.Nack(j.ID, "x") // attempts = 1

	// Snapshot the WAL, checkpoint (which truncates), then restore the old
	// WAL contents — exactly the torn-between state.
	oldWAL, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	q.mu.Lock()
	q.closed = true
	q.wal.close()
	q.mu.Unlock()
	if err := os.WriteFile(walPath(dir), oldWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	q2 := openQ(t, dir, clock)
	defer q2.Close()
	got, _ := q2.Job(j.ID)
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d; want 1 (stale nack must not re-apply)", got.Attempts)
	}
}

func TestSubmitEmptySweepFails(t *testing.T) {
	q := openQ(t, t.TempDir(), newManualClock())
	defer q.Close()
	if _, err := q.Submit(SweepSpec{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}
