package jobqueue

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"dap/internal/store"
)

// The write-ahead log is one record per line:
//
//	<crc32-ieee of the JSON, hex> <JSON record>\n
//
// Records are appended (and fsynced) BEFORE the in-memory state mutates, so
// the journal is always at least as new as memory. Replay stops at the
// first line that fails its checksum or does not parse — the torn tail a
// SIGKILL mid-append leaves behind — and everything before it is valid by
// construction.
//
// Checkpoints (full-state snapshots under the store's checksummed envelope,
// written with an atomic rename) bound replay: a checkpoint carries the
// sequence number of the last record it covers, and replay skips records at
// or below it. After a checkpoint lands, the WAL is truncated; a crash
// between the two leaves old records in the log, which the sequence check
// makes harmless duplicates.

// walRecord is one journaled state transition.
type walRecord struct {
	Seq uint64 `json:"seq"`
	Op  string `json:"op"` // sweep | lease | done | fail | dead | requeue | cancel

	Sweep *sweepRecord `json:"sweep,omitempty"` // op=sweep

	Job    int64  `json:"job,omitempty"`
	Worker string `json:"worker,omitempty"`
	Err    string `json:"err,omitempty"`
	// Expiry (op=lease) and NotBefore (op=fail) are unix nanoseconds.
	Expiry    int64 `json:"expiry,omitempty"`
	NotBefore int64 `json:"not_before,omitempty"`
}

// sweepRecord journals a submitted sweep with its expanded jobs.
type sweepRecord struct {
	ID        int64       `json:"id"`
	Spec      SweepSpec   `json:"spec"`
	Submitted int64       `json:"submitted"` // unix nanoseconds
	Jobs      []jobRecord `json:"jobs"`
}

type jobRecord struct {
	ID   int64   `json:"id"`
	Spec JobSpec `json:"spec"`
	Key  string  `json:"key"`
}

// wal is the open journal file.
type wal struct {
	f    *os.File
	path string
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobqueue: open wal: %w", err)
	}
	return &wal{f: f, path: path}, nil
}

// append journals one record durably (write + fsync).
func (w *wal) append(rec walRecord) error {
	line, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("jobqueue: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobqueue: wal sync: %w", err)
	}
	return nil
}

// reset truncates the journal after a checkpoint covered its contents.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("jobqueue: wal truncate: %w", err)
	}
	return w.f.Sync()
}

func (w *wal) close() error { return w.f.Close() }

func encodeWALRecord(rec walRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("jobqueue: encode wal record: %w", err)
	}
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(body), body)), nil
}

// replayWAL streams the valid prefix of the journal at path through apply,
// skipping records with Seq <= afterSeq. It returns the highest sequence
// number seen. A missing file replays nothing; a torn or corrupt line ends
// the replay silently (it is the expected crash artifact).
func replayWAL(path string, afterSeq uint64, apply func(walRecord)) (lastSeq uint64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return afterSeq, nil
	}
	if err != nil {
		return afterSeq, fmt.Errorf("jobqueue: open wal: %w", err)
	}
	defer f.Close()

	lastSeq = afterSeq
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		rec, ok := decodeWALLine(sc.Bytes())
		if !ok {
			break // torn tail: everything after it is untrustworthy
		}
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
			apply(rec)
		}
	}
	return lastSeq, nil
}

func decodeWALLine(line []byte) (walRecord, bool) {
	var rec walRecord
	var crc uint32
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &crc); err != nil {
		return rec, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE(body) != crc {
		return rec, false
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// checkpointState is the full queue state snapshot written at a checkpoint.
type checkpointState struct {
	Seq       uint64            `json:"seq"`
	NextJob   int64             `json:"next_job"`
	NextSweep int64             `json:"next_sweep"`
	Sweeps    []checkpointSweep `json:"sweeps"`
	Jobs      []checkpointJob   `json:"jobs"`
}

type checkpointSweep struct {
	ID        int64     `json:"id"`
	Spec      SweepSpec `json:"spec"`
	JobIDs    []int64   `json:"job_ids"`
	Submitted int64     `json:"submitted"`
	Cancelled bool      `json:"cancelled,omitempty"`
}

type checkpointJob struct {
	ID        int64   `json:"id"`
	SweepID   int64   `json:"sweep"`
	Spec      JobSpec `json:"spec"`
	Key       string  `json:"key"`
	State     int32   `json:"state"`
	Attempts  int     `json:"attempts,omitempty"`
	LastErr   string  `json:"err,omitempty"`
	Worker    string  `json:"worker,omitempty"`
	NotBefore int64   `json:"not_before,omitempty"`
	Expiry    int64   `json:"expiry,omitempty"`
}

const checkpointTag = "jobqueue-checkpoint"

// writeCheckpoint atomically persists the snapshot.
func writeCheckpoint(path string, st checkpointState) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("jobqueue: encode checkpoint: %w", err)
	}
	if err := store.WriteFileAtomic(path, checkpointTag, payload); err != nil {
		return fmt.Errorf("jobqueue: write checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint loads the snapshot at path. A missing or corrupt
// checkpoint returns an empty state (recovery then replays the WAL from
// the beginning); because checkpoints are written with an atomic rename, a
// corrupt one can only mean the very first checkpoint was torn before any
// WAL truncation happened, so no history is lost.
func readCheckpoint(path string) checkpointState {
	payload, tag, err := store.ReadFileVerified(path)
	if err != nil || tag != checkpointTag {
		return checkpointState{}
	}
	var st checkpointState
	if err := json.Unmarshal(payload, &st); err != nil {
		return checkpointState{}
	}
	return st
}

// unixNano renders a time for a journal record (zero time -> 0).
func unixNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// fromUnixNano parses a journaled time (0 -> zero time).
func fromUnixNano(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

func walPath(dir string) string        { return filepath.Join(dir, "wal.log") }
func checkpointPath(dir string) string { return filepath.Join(dir, "checkpoint") }
