package ckpt

import (
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	e := w.Section("alpha")
	e.U64(0xdeadbeefcafef00d)
	e.I64(-42)
	e.U32(7)
	e.U16(65535)
	e.U8(200)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.141592653589793)
	e.Bytes([]byte("hello"))
	w.Section("beta").U64(99)

	blob := w.Bytes()
	r, err := NewReader(blob)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	d, ok := r.Section("alpha")
	if !ok {
		t.Fatal("missing section alpha")
	}
	if got := d.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.U32(); got != 7 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U16(); got != 65535 {
		t.Errorf("U16 = %d", got)
	}
	if got := d.U8(); got != 200 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.F64(); got != 3.141592653589793 {
		t.Errorf("F64 = %v", got)
	}
	if got := string(d.Bytes()); got != "hello" {
		t.Errorf("Bytes = %q", got)
	}
	if d.Err() != nil {
		t.Fatalf("decode err: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
	if b, ok := r.Section("beta"); !ok || b.U64() != 99 {
		t.Error("section beta lost")
	}
	if _, ok := r.Section("gamma"); ok {
		t.Error("phantom section gamma")
	}
}

func TestCorruptionDetected(t *testing.T) {
	w := NewWriter()
	w.Section("s").U64(12345)
	blob := w.Bytes()

	// Flip a byte anywhere: checksum must catch it.
	for _, off := range []int{0, len(Magic) + 1, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x40
		if _, err := NewReader(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
	// Truncation.
	for _, n := range []int{0, 3, len(blob) - 1} {
		if _, err := NewReader(blob[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncate to %d: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestOverreadLatchesError(t *testing.T) {
	w := NewWriter()
	w.Section("s").U32(1)
	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := r.Section("s")
	d.U32()
	if d.U64() != 0 {
		t.Error("overread returned nonzero")
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("Err = %v, want ErrCorrupt", d.Err())
	}
}
