package ckpt

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"testing"
)

// snapshotSeed renders a realistic envelope through the production Writer:
// several sections in the shapes the simulator actually serializes (scalar
// runs, bulk uint64/uint32 arrays, length-prefixed byte strings), so the
// fuzzer starts from the real wire format rather than having to discover
// it. The section names mirror the harness's component sections.
func snapshotSeed() []byte {
	w := NewWriter()
	e := w.Section("cpu")
	for i := 0; i < 16; i++ {
		e.U64(uint64(i) * 0x9e3779b97f4a7c15)
	}
	e.Bool(true)
	e.F64(0.75)

	e = w.Section("mscache.tags")
	tv := make([]uint64, 128)
	for i := range tv {
		tv[i] = uint64(i)<<1 | 1
	}
	e.U64s(tv)
	st := make([]uint32, 64)
	for i := range st {
		st[i] = uint32(i * 3)
	}
	e.U32s(st)

	e = w.Section("dap")
	for i := 0; i < 20; i++ {
		e.I64(int64(i) - 10)
	}
	e.Bytes([]byte("window-diagnostics"))
	e.U16(0xBEEF)
	e.U8(7)
	return w.Bytes()
}

// resum rewrites the trailing FNV-64a checksum so a mutated body still
// passes the integrity gate — the fuzzer cannot solve the hash itself, and
// without this every mutation would stop at "checksum mismatch" instead of
// exercising the structural parser behind it.
func resum(data []byte) []byte {
	if len(data) < 8 {
		return data
	}
	out := append([]byte(nil), data...)
	h := fnv.New64a()
	h.Write(out[:len(out)-8])
	binary.LittleEndian.PutUint64(out[len(out)-8:], h.Sum64())
	return out
}

// FuzzDecEnvelope feeds arbitrary (and arbitrarily damaged) envelopes to
// the checkpoint reader and then drives every decoder read pattern over
// whatever sections survive parsing. The contract under test: no input may
// panic, and every rejection must wrap ErrCorrupt. fixSum selects whether
// the harness repairs the trailing checksum first, so both the integrity
// gate and the structural parser behind it see mutated input.
func FuzzDecEnvelope(f *testing.F) {
	blob := snapshotSeed()
	f.Add(blob, false)
	f.Add(blob, true)
	f.Add([]byte{}, false)
	f.Add(blob[:len(blob)/2], true)               // truncated mid-section
	f.Add(blob[:headerLen+8], true)               // header only
	f.Add(append([]byte(nil), blob[8:]...), true) // beheaded

	flip := append([]byte(nil), blob...)
	flip[len(flip)/3] ^= 0x40 // bit-flip without checksum repair
	f.Add(flip, false)
	f.Add(flip, true) // bit-flip with a valid checksum over the damage

	f.Fuzz(func(t *testing.T, data []byte, fixSum bool) {
		if fixSum {
			data = resum(data)
		}
		r, err := NewReader(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("NewReader error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// A parsed envelope must tolerate any read pattern: reads past a
		// section's end or with mismatched array lengths must latch an
		// ErrCorrupt-wrapping error, never panic, and keep returning zero
		// values afterwards.
		for _, name := range r.Names() {
			d, ok := r.Section(name)
			if !ok {
				t.Fatalf("section %q listed but not retrievable", name)
			}
			d.U64()
			d.U32()
			d.Bytes()
			d.U64s(make([]uint64, 4))
			d.U32s(make([]uint32, 4))
			d.U16()
			d.U8()
			d.Bool()
			d.F64()
			for d.Remaining() > 0 && d.Err() == nil {
				d.U64()
			}
			if err := d.Err(); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("section %q decode error does not wrap ErrCorrupt: %v", name, err)
			}
			if _, ok := r.Section("no-such-section"); ok {
				t.Fatal("missing section reported present")
			}
		}
	})
}
