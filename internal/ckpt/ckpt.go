// Package ckpt implements the versioned, checksummed binary envelope used
// for warmup checkpoints (ISSUE 8). A checkpoint is a flat sequence of named
// sections — one per simulator component (per-core caches, prefetchers,
// workload stream cursors, memory-side cache tags, policy state, DRAM
// state) — framed by a magic string, a format version, and a trailing
// FNV-64a checksum over the whole payload.
//
// The envelope is deliberately dumb: fixed-width little-endian integers,
// length-prefixed sections, no compression, no reflection. Components
// serialize themselves through Enc/Dec so the set of bytes written is
// exactly the set of fields a restore needs, and nothing else. Sections are
// looked up by name at load time, so readers skip sections they do not
// understand and tolerate sections that are absent (a component that did
// not exist in the saving configuration simply has no section; the restored
// component keeps its freshly-constructed state, which is correct because
// functional warmup never mutates it).
//
// The writer streams every section into one contiguous buffer: opening a
// section writes its header with a length placeholder that is backpatched
// when the next section opens (or at Bytes), so rendering the envelope is a
// single checksum pass with no per-section intermediate slices. The buffer
// is sized from the previous envelope rendered by this process, so a
// steady-state checkpoint cycle performs one right-sized allocation. The
// decoder reads in place — section payloads and Bytes values are views into
// the caller's blob, never copies.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync/atomic"
)

// Magic and Version identify the envelope format. Bump Version on any
// incompatible layout change; Load rejects mismatches as corruption so the
// caller re-runs warmup instead of resuming from garbage.
//
// Version history: 1 = per-field AoS cache lines; 2 = packed SoA tag arrays
// with lazily-present side payloads and bulk little-endian word arrays.
const (
	Magic   = "DAPCKPT1"
	Version = 2
)

// ErrCorrupt is returned (wrapped) for any structural damage: bad magic,
// version mismatch, truncation, checksum failure, or a section read past
// its end.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// sizeHint remembers the size of the last envelope rendered by this process
// so the next writer allocates once. Checkpoints within one process are
// taken under a handful of configurations of near-constant size, so the
// previous size (plus slack) is an excellent predictor.
var sizeHint atomic.Int64

// headerLen is the fixed prefix before the first section: magic, version,
// section count.
const headerLen = len(Magic) + 4 + 4

// Writer streams named sections into a single contiguous envelope buffer.
type Writer struct {
	buf    []byte
	enc    Enc
	lenOff int // offset of the open section's length field; -1 when closed
	n      int // sections opened
	done   bool
}

// NewWriter returns an empty checkpoint writer.
func NewWriter() *Writer {
	hint := int(sizeHint.Load())
	if hint < 1<<10 {
		hint = 1 << 10
	}
	w := &Writer{buf: make([]byte, 0, hint), lenOff: -1}
	w.enc.w = w
	w.buf = append(w.buf, Magic...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, Version)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, 0) // count, backpatched
	return w
}

// Section opens a new named section and returns the writer's encoder for
// it. The previous section (if any) is finalized; each name must be opened
// at most once, and all of a section's fields must be encoded before the
// next Section call.
func (w *Writer) Section(name string) *Enc {
	if w.done {
		panic("ckpt: Section after Bytes")
	}
	w.closeSection()
	w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(name)))
	w.buf = append(w.buf, name...)
	w.lenOff = len(w.buf)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, 0) // length, backpatched
	w.n++
	return &w.enc
}

func (w *Writer) closeSection() {
	if w.lenOff >= 0 {
		binary.LittleEndian.PutUint32(w.buf[w.lenOff:], uint32(len(w.buf)-w.lenOff-4))
		w.lenOff = -1
	}
}

// Bytes finalizes and returns the envelope: magic, version, section count,
// the sections in creation order, and the FNV-64a checksum of everything
// before it. The returned slice is the writer's buffer; the writer must not
// be used afterwards.
func (w *Writer) Bytes() []byte {
	if !w.done {
		w.closeSection()
		binary.LittleEndian.PutUint32(w.buf[len(Magic)+4:], uint32(w.n))
		h := fnv.New64a()
		h.Write(w.buf)
		w.buf = binary.LittleEndian.AppendUint64(w.buf, h.Sum64())
		w.done = true
		// Remember the rendered size (with headroom for growth) so the next
		// writer allocates exactly once.
		sizeHint.Store(int64(len(w.buf) + len(w.buf)/8))
	}
	return w.buf
}

// Reader holds a parsed, checksum-verified envelope. Section payloads are
// views into the blob passed to NewReader; the blob must outlive every Dec.
type Reader struct {
	sections map[string][]byte
}

// NewReader parses and verifies an envelope. Any structural problem returns
// an error wrapping ErrCorrupt.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerLen+8 {
		return nil, fmt.Errorf("%w: short envelope (%d bytes)", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if string(body[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(Magic)
	ver := binary.LittleEndian.Uint32(body[off:])
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrCorrupt, ver, Version)
	}
	off += 4
	n := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	// Size the section map from the declared count, but never beyond what
	// the body could physically hold (each section needs at least a 2-byte
	// name length and a 4-byte payload length) — a forged count must not
	// translate into an attacker-sized allocation before the per-section
	// bounds checks reject it.
	hint := n
	if most := (len(body) - off) / 6; hint > most {
		hint = most
	}
	r := &Reader{sections: make(map[string][]byte, hint)}
	for i := 0; i < n; i++ {
		if off+2 > len(body) {
			return nil, fmt.Errorf("%w: truncated section header", ErrCorrupt)
		}
		nl := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nl+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated section name", ErrCorrupt)
		}
		name := string(body[off : off+nl])
		off += nl
		sl := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if off+sl > len(body) {
			return nil, fmt.Errorf("%w: truncated section %q", ErrCorrupt, name)
		}
		r.sections[name] = body[off : off+sl]
		off += sl
	}
	return r, nil
}

// Section returns a decoder over the named section, or ok=false when the
// envelope has no such section.
func (r *Reader) Section(name string) (*Dec, bool) {
	b, ok := r.sections[name]
	if !ok {
		return nil, false
	}
	return &Dec{buf: b}, true
}

// Names returns the section names in sorted order (diagnostics).
func (r *Reader) Names() []string {
	names := make([]string, 0, len(r.sections))
	for n := range r.sections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Enc appends fixed-width little-endian values to the writer's open
// section. Encoders are obtained from Writer.Section.
type Enc struct {
	w *Writer
}

// U64 appends a uint64.
func (e *Enc) U64(v uint64) { e.w.buf = binary.LittleEndian.AppendUint64(e.w.buf, v) }

// I64 appends an int64 (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.w.buf = binary.LittleEndian.AppendUint32(e.w.buf, v) }

// U16 appends a uint16.
func (e *Enc) U16(v uint16) { e.w.buf = binary.LittleEndian.AppendUint16(e.w.buf, v) }

// U8 appends a byte.
func (e *Enc) U8(v uint8) { e.w.buf = append(e.w.buf, v) }

// Bool appends a byte-encoded bool.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends an IEEE-754 float64 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte string.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.w.buf = append(e.w.buf, b...)
}

// grow extends the buffer by n bytes in one step and returns the window to
// fill — the bulk-array fast path.
func (e *Enc) grow(n int) []byte {
	buf := e.w.buf
	if cap(buf)-len(buf) < n {
		nb := make([]byte, len(buf), max(2*cap(buf), len(buf)+n))
		copy(nb, buf)
		buf = nb
	}
	e.w.buf = buf[:len(buf)+n]
	return e.w.buf[len(buf):]
}

// U64s appends a length-prefixed uint64 array as one contiguous write.
func (e *Enc) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	dst := e.grow(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(dst[8*i:], x)
	}
}

// U32s appends a length-prefixed uint32 array as one contiguous write.
func (e *Enc) U32s(v []uint32) {
	e.U32(uint32(len(v)))
	dst := e.grow(4 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(dst[4*i:], x)
	}
}

// Len returns the number of bytes encoded into the envelope so far.
func (e *Enc) Len() int { return len(e.w.buf) }

// Dec reads fixed-width little-endian values from a section. Reads past the
// end latch an error and return zero values; check Err once after decoding
// a group of fields.
type Dec struct {
	buf []byte
	off int
	err error
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: section read past end (off %d + %d > %d)", ErrCorrupt, d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U16 reads a uint16.
func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U8 reads a byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a byte-encoded bool.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// F64 reads an IEEE-754 float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a length-prefixed byte string. The returned slice is a view
// into the decoder's section (and thus into the caller's blob); copy it if
// it must outlive the blob.
func (d *Dec) Bytes() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	return d.take(n)
}

// U64s reads a length-prefixed uint64 array written by Enc.U64s into dst.
// A length mismatch with len(dst) latches ErrCorrupt and leaves dst
// untouched.
func (d *Dec) U64s(dst []uint64) {
	n := int(d.U32())
	if d.err != nil {
		return
	}
	if n != len(dst) {
		d.err = fmt.Errorf("%w: array length %d, want %d", ErrCorrupt, n, len(dst))
		return
	}
	b := d.take(8 * n)
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
}

// U32s reads a length-prefixed uint32 array written by Enc.U32s into dst.
func (d *Dec) U32s(dst []uint32) {
	n := int(d.U32())
	if d.err != nil {
		return
	}
	if n != len(dst) {
		d.err = fmt.Errorf("%w: array length %d, want %d", ErrCorrupt, n, len(dst))
		return
	}
	b := d.take(4 * n)
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
}

// Err returns the first decode error (nil if all reads were in bounds).
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes (diagnostics and
// end-of-section assertions).
func (d *Dec) Remaining() int { return len(d.buf) - d.off }
