// Package ckpt implements the versioned, checksummed binary envelope used
// for warmup checkpoints (ISSUE 8). A checkpoint is a flat sequence of named
// sections — one per simulator component (per-core caches, prefetchers,
// workload stream cursors, memory-side cache tags, policy state, DRAM
// state) — framed by a magic string, a format version, and a trailing
// FNV-64a checksum over the whole payload.
//
// The envelope is deliberately dumb: fixed-width little-endian integers,
// length-prefixed sections, no compression, no reflection. Components
// serialize themselves through Enc/Dec so the set of bytes written is
// exactly the set of fields a restore needs, and nothing else. Sections are
// looked up by name at load time, so readers skip sections they do not
// understand and tolerate sections that are absent (a component that did
// not exist in the saving configuration simply has no section; the restored
// component keeps its freshly-constructed state, which is correct because
// functional warmup never mutates it).
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Magic and Version identify the envelope format. Bump Version on any
// incompatible layout change; Load rejects mismatches as corruption so the
// caller re-runs warmup instead of resuming from garbage.
const (
	Magic   = "DAPCKPT1"
	Version = 1
)

// ErrCorrupt is returned (wrapped) for any structural damage: bad magic,
// version mismatch, truncation, checksum failure, or a section read past
// its end.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// Writer accumulates named sections and renders the envelope.
type Writer struct {
	names    []string
	sections map[string]*Enc
}

// NewWriter returns an empty checkpoint writer.
func NewWriter() *Writer {
	return &Writer{sections: make(map[string]*Enc)}
}

// Section returns the encoder for the named section, creating it on first
// use. Calling Section twice with the same name returns the same encoder
// (appends continue).
func (w *Writer) Section(name string) *Enc {
	if e, ok := w.sections[name]; ok {
		return e
	}
	e := &Enc{}
	w.sections[name] = e
	w.names = append(w.names, name)
	return e
}

// Bytes renders the envelope: magic, version, section count, the sections
// in creation order, and the FNV-64a checksum of everything before it.
func (w *Writer) Bytes() []byte {
	var buf []byte
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.names)))
	for _, name := range w.names {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		sec := w.sections[name].buf
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sec)))
		buf = append(buf, sec...)
	}
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// Reader holds a parsed, checksum-verified envelope.
type Reader struct {
	sections map[string][]byte
}

// NewReader parses and verifies an envelope. Any structural problem returns
// an error wrapping ErrCorrupt.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(Magic)+4+4+8 {
		return nil, fmt.Errorf("%w: short envelope (%d bytes)", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if string(body[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(Magic)
	ver := binary.LittleEndian.Uint32(body[off:])
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrCorrupt, ver, Version)
	}
	off += 4
	n := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	r := &Reader{sections: make(map[string][]byte, n)}
	for i := 0; i < n; i++ {
		if off+2 > len(body) {
			return nil, fmt.Errorf("%w: truncated section header", ErrCorrupt)
		}
		nl := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nl+4 > len(body) {
			return nil, fmt.Errorf("%w: truncated section name", ErrCorrupt)
		}
		name := string(body[off : off+nl])
		off += nl
		sl := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if off+sl > len(body) {
			return nil, fmt.Errorf("%w: truncated section %q", ErrCorrupt, name)
		}
		r.sections[name] = body[off : off+sl]
		off += sl
	}
	return r, nil
}

// Section returns a decoder over the named section, or ok=false when the
// envelope has no such section.
func (r *Reader) Section(name string) (*Dec, bool) {
	b, ok := r.sections[name]
	if !ok {
		return nil, false
	}
	return &Dec{buf: b}, true
}

// Names returns the section names in sorted order (diagnostics).
func (r *Reader) Names() []string {
	names := make([]string, 0, len(r.sections))
	for n := range r.sections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Enc appends fixed-width little-endian values to a section.
type Enc struct {
	buf []byte
}

// U64 appends a uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U16 appends a uint16.
func (e *Enc) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U8 appends a byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a byte-encoded bool.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends an IEEE-754 float64 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte string.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.buf) }

// Dec reads fixed-width little-endian values from a section. Reads past the
// end latch an error and return zero values; check Err once after decoding
// a group of fields.
type Dec struct {
	buf []byte
	off int
	err error
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: section read past end (off %d + %d > %d)", ErrCorrupt, d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U16 reads a uint16.
func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U8 reads a byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a byte-encoded bool.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// F64 reads an IEEE-754 float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a length-prefixed byte string.
func (d *Dec) Bytes() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Err returns the first decode error (nil if all reads were in bounds).
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes (diagnostics and
// end-of-section assertions).
func (d *Dec) Remaining() int { return len(d.buf) - d.off }
