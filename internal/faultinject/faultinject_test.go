package faultinject

import (
	"testing"

	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/sim"
)

// TestDropReadDeterministic: the same plan must drop exactly the same
// arrivals on every run, honoring onset and period.
func TestDropReadDeterministic(t *testing.T) {
	run := func() []bool {
		inj := New(Plan{DropReadEvery: 3, DropReadAfter: 2})
		hook := inj.DeviceHook()
		var dropped []bool
		for n := 0; n < 12; n++ {
			act := hook(&mem.Request{Kind: mem.ReadKind})
			dropped = append(dropped, act.DropResponse)
		}
		return dropped
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at read %d", i)
		}
	}
	// onset after 2, then every 3rd: reads 2, 5, 8, 11
	want := map[int]bool{2: true, 5: true, 8: true, 11: true}
	for i, d := range a {
		if d != want[i] {
			t.Fatalf("read %d: dropped=%v, want %v (pattern %v)", i, d, want[i], a)
		}
	}
}

// TestSeedShiftsPhase: a different seed hits different arrivals but keeps
// the same drop rate.
func TestSeedShiftsPhase(t *testing.T) {
	pattern := func(seed uint64) (drops []int) {
		inj := New(Plan{Seed: seed, DropReadEvery: 4})
		hook := inj.DeviceHook()
		for n := 0; n < 16; n++ {
			if hook(&mem.Request{Kind: mem.ReadKind}).DropResponse {
				drops = append(drops, n)
			}
		}
		return drops
	}
	a, b := pattern(0), pattern(1)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("drop rate changed with seed: %v vs %v", a, b)
	}
	if a[0] == b[0] {
		t.Fatalf("seed did not shift the phase: %v vs %v", a, b)
	}
}

// TestMetaDelayOnly: metadata fetches are delayed, demand reads untouched,
// and other kinds ignored entirely.
func TestMetaDelayOnly(t *testing.T) {
	inj := New(Plan{DelayMetaEvery: 1, DelayMetaCycles: 50})
	hook := inj.DeviceHook()
	if act := hook(&mem.Request{Kind: mem.MetaReadKind}); act.ExtraDelay != 50 || act.DropResponse {
		t.Fatalf("meta fetch not delayed: %+v", act)
	}
	if act := hook(&mem.Request{Kind: mem.ReadKind}); act != (dram.FaultAction{}) {
		t.Fatalf("demand read perturbed: %+v", act)
	}
	if act := hook(&mem.Request{Kind: mem.WritebackKind}); act != (dram.FaultAction{}) {
		t.Fatalf("writeback perturbed: %+v", act)
	}
	if inj.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", inj.Delayed)
	}
}

// TestDeviceDropsResponse: a dropped response spends the bandwidth but
// never invokes Done; a delayed one invokes Done late.
func TestDeviceDropsResponse(t *testing.T) {
	eng := sim.New()
	dev := dram.NewDevice(dram.DDR4_2400(), eng)
	inj := New(Plan{DropReadEvery: 2}) // drop reads 0, 2, ...
	dev.Fault = inj.DeviceHook()

	completions := 0
	for n := 0; n < 4; n++ {
		dev.Access(mem.Addr(n*4096), mem.ReadKind, 0, func(mem.Cycle) { completions++ })
	}
	eng.Drain()
	if completions != 2 {
		t.Fatalf("completions = %d, want 2 (two of four responses dropped)", completions)
	}
	if inj.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", inj.Dropped)
	}
	st := dev.Stats()
	if st.Reads != 4 {
		t.Fatalf("device performed %d reads, want 4 (dropped responses still cost bandwidth)", st.Reads)
	}
}

// TestDeviceDelaysResponse: ExtraDelay defers the completion by exactly the
// configured number of cycles.
func TestDeviceDelaysResponse(t *testing.T) {
	eng := sim.New()
	base := dram.NewDevice(dram.DDR4_2400(), eng)
	var baseline mem.Cycle
	base.Access(0, mem.MetaReadKind, 0, func(mem.Cycle) { baseline = eng.Now() })
	eng.Drain()

	eng2 := sim.New()
	dev := dram.NewDevice(dram.DDR4_2400(), eng2)
	inj := New(Plan{DelayMetaEvery: 1, DelayMetaCycles: 123})
	dev.Fault = inj.DeviceHook()
	var delayed mem.Cycle
	dev.Access(0, mem.MetaReadKind, 0, func(mem.Cycle) { delayed = eng2.Now() })
	eng2.Drain()

	if delayed != baseline+123 {
		t.Fatalf("delayed completion at %d, want %d + 123", delayed, baseline)
	}
}

// TestArmCreditFault: the corruption fires once at the configured delay.
type fakeDAP struct{ delta int64 }

func (f *fakeDAP) InjectCreditFault(d int64) { f.delta += d }

func TestArmCreditFault(t *testing.T) {
	eng := sim.New()
	inj := New(Plan{CorruptCreditsAt: 500, CorruptCreditsBy: -77})
	var target fakeDAP
	inj.ArmCreditFault(eng.After, &target)
	eng.RunUntil(499)
	if target.delta != 0 {
		t.Fatalf("corruption fired early: %d", target.delta)
	}
	eng.RunUntil(2000)
	if target.delta != -77 || inj.Corrupted != 1 {
		t.Fatalf("corruption not applied exactly once: delta=%d count=%d", target.delta, inj.Corrupted)
	}
}

// TestPlanValidate: half-configured faults are rejected.
func TestPlanValidate(t *testing.T) {
	if (&Plan{}).Validate() != nil {
		t.Fatal("zero plan rejected")
	}
	if (&Plan{DelayMetaEvery: 2}).Validate() == nil {
		t.Fatal("delay without cycles accepted")
	}
	if (&Plan{CorruptCreditsAt: 10}).Validate() == nil {
		t.Fatal("corruption without delta accepted")
	}
}
