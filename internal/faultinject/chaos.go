package faultinject

import (
	"fmt"
	"os"
	"sync/atomic"
)

// ServicePlan schedules process-level faults for the sweep service's chaos
// harness — the layer above the per-request device faults of Plan. The zero
// plan injects nothing. Like Plan, every decision is a pure function of the
// plan and arrival counters, so a chaos run is exactly reproducible.
type ServicePlan struct {
	// Seed phase-shifts FailExecEvery (which executions are hit).
	Seed uint64

	// FailExecEvery makes every Nth job execution return a transient error
	// before the simulation starts (1 = every execution). The job queue must
	// absorb these through retry-with-backoff. 0 disables.
	FailExecEvery uint64

	// CrashBeforePut terminates the process (via Exit) immediately before
	// the Nth result-store write — the "crash between WAL lease append and
	// result write" point. The job is journaled as leased but no result
	// exists; recovery must re-queue and re-execute it. 0 disables.
	CrashBeforePut uint64
	// CrashAfterPut terminates the process immediately after the Nth
	// result-store write completes — the "result durable but completion
	// never journaled" point. Recovery must observe the stored result and
	// mark the job done without re-simulating. 0 disables.
	CrashAfterPut uint64

	// CrashExitCode is the exit status used by the crash points (0 = 7), so
	// a supervising test can tell a chaos crash from any other failure.
	CrashExitCode int
}

// ServiceChaos executes a ServicePlan. Attach one to a jobqueue service;
// its counters observe the service's execution order.
type ServiceChaos struct {
	plan  ServicePlan
	execs atomic.Uint64
	puts  atomic.Uint64

	// Failed counts injected executor failures (for test assertions).
	Failed atomic.Uint64

	// Exit is called at the crash points (default os.Exit); tests may
	// substitute a panic or recorder.
	Exit func(code int)
}

// NewServiceChaos builds a chaos injector for the plan.
func NewServiceChaos(plan ServicePlan) *ServiceChaos {
	if plan.CrashExitCode == 0 {
		plan.CrashExitCode = 7
	}
	return &ServiceChaos{plan: plan, Exit: os.Exit}
}

// FailExec reports whether the current job execution should fail with an
// injected transient error (and counts it).
func (c *ServiceChaos) FailExec() bool {
	if c == nil || c.plan.FailExecEvery == 0 {
		return false
	}
	n := c.execs.Add(1) - 1
	if (n+c.plan.Seed)%c.plan.FailExecEvery == 0 {
		c.Failed.Add(1)
		return true
	}
	return false
}

// BeforePut is called by the service immediately before a result-store
// write; it terminates the process at the configured crash point.
func (c *ServiceChaos) BeforePut() {
	if c == nil {
		return
	}
	n := c.puts.Add(1)
	if c.plan.CrashBeforePut != 0 && n == c.plan.CrashBeforePut {
		c.Exit(c.plan.CrashExitCode)
	}
}

// AfterPut is called immediately after a result-store write completes.
func (c *ServiceChaos) AfterPut() {
	if c == nil {
		return
	}
	if c.plan.CrashAfterPut != 0 && c.puts.Load() == c.plan.CrashAfterPut {
		c.Exit(c.plan.CrashExitCode)
	}
}

// String summarizes the chaos activity so far.
func (c *ServiceChaos) String() string {
	return fmt.Sprintf("chaos: %d executions seen, %d failures injected, %d puts seen",
		c.execs.Load(), c.Failed.Load(), c.puts.Load())
}

// TruncateTail simulates a torn write by cutting the last n bytes off a
// file (clamped at emptying it) — the shape a crash mid-append leaves
// behind.
func TruncateTail(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipByte simulates silent media corruption by XOR-flipping one byte at
// offset (negative offsets count from the end).
func FlipByte(path string, offset int64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("faultinject: %s is empty", path)
	}
	if offset < 0 {
		offset += int64(len(raw))
	}
	if offset < 0 || offset >= int64(len(raw)) {
		return fmt.Errorf("faultinject: offset %d outside %s (%d bytes)", offset, path, len(raw))
	}
	raw[offset] ^= 0xff
	return os.WriteFile(path, raw, 0o644)
}
