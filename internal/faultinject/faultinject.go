// Package faultinject deterministically perturbs a running simulation so
// tests can prove the hardening layer detects each failure class: dropped
// DRAM responses wedge MSHRs (the forward-progress watchdog must trip),
// delayed metadata fetches stretch the tag path (the run must still
// complete, just slower), and corrupted DAP credit updates violate the
// credit invariants (the runtime auditor must report them).
//
// Every decision is a pure function of the plan and per-kind arrival
// counters — the seed only phase-shifts which arrivals are hit — so a
// faulted run is exactly as reproducible as a healthy one.
package faultinject

import (
	"fmt"

	"dap/internal/dram"
	"dap/internal/mem"
)

// Plan schedules the faults to inject. The zero Plan injects nothing.
type Plan struct {
	// Seed phase-shifts the periodic selectors below; two plans that differ
	// only in seed hit different (but still deterministic) arrivals.
	Seed uint64

	// DropReadEvery drops the response of every Nth demand read reaching a
	// device (1 = every read). The access still occupies the data bus — the
	// bandwidth is spent, the data never arrives — so a waiting MSHR never
	// retires. 0 disables.
	DropReadEvery uint64
	// DropReadAfter delays the onset: the first DropReadAfter demand reads
	// are delivered normally (lets a run warm up before wedging).
	DropReadAfter uint64

	// DelayMetaEvery delays the completion of every Nth metadata fetch by
	// DelayMetaCycles (both must be non-zero to take effect).
	DelayMetaEvery  uint64
	DelayMetaCycles mem.Cycle

	// CorruptCreditsAt, when non-zero, corrupts every DAP credit counter by
	// CorruptCreditsBy (bypassing the saturating clamp) that many cycles
	// into the measured region.
	CorruptCreditsAt mem.Cycle
	CorruptCreditsBy int64
}

// Validate rejects self-contradictory plans.
func (p *Plan) Validate() error {
	if p.DelayMetaEvery > 0 && p.DelayMetaCycles == 0 {
		return fmt.Errorf("faultinject: DelayMetaEvery set but DelayMetaCycles is zero")
	}
	if p.CorruptCreditsAt > 0 && p.CorruptCreditsBy == 0 {
		return fmt.Errorf("faultinject: CorruptCreditsAt set but CorruptCreditsBy is zero")
	}
	return nil
}

// Injector executes a Plan. One injector may serve several devices; its
// counters observe the merged arrival order, which the deterministic event
// engine makes reproducible.
type Injector struct {
	plan  Plan
	reads uint64
	metas uint64

	// Injection counts, for diagnostics and test assertions.
	Dropped   uint64
	Delayed   uint64
	Corrupted uint64
}

// New builds an injector for the plan.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

// Plan returns the plan being executed.
func (i *Injector) Plan() Plan { return i.plan }

// DeviceHook returns the dram.FaultHook implementing the plan's response
// dropping and metadata delays. Attach it to every device the plan should
// perturb (typically both main memory and the cache array).
func (i *Injector) DeviceHook() dram.FaultHook {
	return func(r *mem.Request) dram.FaultAction {
		switch r.Kind {
		case mem.ReadKind:
			if every := i.plan.DropReadEvery; every > 0 {
				n := i.reads
				i.reads++
				if n >= i.plan.DropReadAfter && (n-i.plan.DropReadAfter+i.plan.Seed)%every == 0 {
					i.Dropped++
					return dram.FaultAction{DropResponse: true}
				}
			}
		case mem.MetaReadKind:
			if every := i.plan.DelayMetaEvery; every > 0 && i.plan.DelayMetaCycles > 0 {
				n := i.metas
				i.metas++
				if (n+i.plan.Seed)%every == 0 {
					i.Delayed++
					return dram.FaultAction{ExtraDelay: i.plan.DelayMetaCycles}
				}
			}
		}
		return dram.FaultAction{}
	}
}

// CreditCorrupter is implemented by core.DAP: the harness uses it to arm
// the plan's credit corruption without importing the core package here.
type CreditCorrupter interface {
	InjectCreditFault(delta int64)
}

// ArmCreditFault schedules the plan's credit corruption on schedule (an
// After-style scheduler, typically sim.Engine.After bound at the start of
// the measured region). It is a no-op when the plan has none configured.
func (i *Injector) ArmCreditFault(schedule func(delay mem.Cycle, fn func()), target CreditCorrupter) {
	if i.plan.CorruptCreditsAt == 0 || target == nil {
		return
	}
	schedule(i.plan.CorruptCreditsAt, func() {
		i.Corrupted++
		target.InjectCreditFault(i.plan.CorruptCreditsBy)
	})
}

// String summarizes the injections performed so far.
func (i *Injector) String() string {
	return fmt.Sprintf("faults injected: %d responses dropped, %d metadata fetches delayed, %d credit corruptions",
		i.Dropped, i.Delayed, i.Corrupted)
}
