package sim

import (
	"testing"

	"dap/internal/mem"
)

// TestPastSchedulingClampOrdering: an event scheduled in the past is clamped
// to the current cycle and still runs after already-queued events of that
// cycle (insertion order is the tie-break, not the requested time).
func TestPastSchedulingClampOrdering(t *testing.T) {
	e := New()
	var order []string
	e.At(100, func() {
		e.At(100, func() { order = append(order, "same-cycle") })
		e.At(5, func() {
			order = append(order, "past")
			if e.Now() != 100 {
				t.Errorf("past event ran at %d, want 100", e.Now())
			}
		})
	})
	e.Drain()
	if len(order) != 2 || order[0] != "same-cycle" || order[1] != "past" {
		t.Fatalf("clamped event jumped the queue: %v", order)
	}
	if e.Now() != 100 {
		t.Fatalf("now = %d, want 100", e.Now())
	}
}

// TestDrainFollowsNewEvents: events scheduled by handlers during Drain are
// executed too, in time order, until the cascade genuinely ends.
func TestDrainFollowsNewEvents(t *testing.T) {
	e := New()
	depth := 0
	var cascade func()
	cascade = func() {
		if depth++; depth < 50 {
			e.After(3, cascade)
		}
	}
	e.At(1, cascade)
	e.Drain()
	if depth != 50 {
		t.Fatalf("cascade depth = %d, want 50", depth)
	}
	if want := mem.Cycle(1 + 3*49); e.Now() != want {
		t.Fatalf("now = %d, want %d", e.Now(), want)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Drain", e.Pending())
	}
}

// TestRunUntilEmptyQueueIdempotent: RunUntil on an empty queue advances time
// to the limit; a second call with a smaller limit must not move time back.
func TestRunUntilEmptyQueueIdempotent(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("now = %d, want 500", e.Now())
	}
	e.RunUntil(100)
	if e.Now() != 500 {
		t.Fatalf("RunUntil moved time backwards to %d", e.Now())
	}
}

// TestTieBreakDeterminismInterleaved: interleaved At/After scheduling onto
// the same cycle must execute in exact insertion order, every run.
func TestTieBreakDeterminismInterleaved(t *testing.T) {
	run := func() []int {
		e := New()
		var order []int
		e.At(10, func() {
			for i := 0; i < 8; i++ {
				i := i
				if i%2 == 0 {
					e.At(20, func() { order = append(order, i) })
				} else {
					e.After(10, func() { order = append(order, i) })
				}
			}
		})
		e.Drain()
		return order
	}
	a, b := run(), run()
	if len(a) != 8 {
		t.Fatalf("expected 8 events, got %v", a)
	}
	for i := range a {
		if a[i] != i {
			t.Fatalf("insertion order violated: %v", a)
		}
		if a[i] != b[i] {
			t.Fatalf("runs diverged: %v vs %v", a, b)
		}
	}
}

// TestStepAfterDrainEmpty: Step keeps returning false once drained, and
// re-arming the engine with new events resumes normally.
func TestStepAfterDrainEmpty(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.Drain()
	if e.Step() {
		t.Fatal("Step returned true on drained engine")
	}
	ran := false
	e.At(2, func() { ran = true })
	if !e.Step() || !ran {
		t.Fatal("engine did not resume after new event")
	}
}
