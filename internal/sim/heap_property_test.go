package sim

import (
	"container/heap"
	"fmt"
	"testing"

	"dap/internal/mem"
)

// --- reference implementation -------------------------------------------
//
// refEngine is the container/heap scheduler the timing wheel replaced:
// (when, seq) ordering, past-clamping, now = popped event's when. It exists
// only as a test oracle — a plain heap has no buckets, no occupancy bitmap
// and no overflow spill, so agreement across randomized programs pins the
// wheel's clamp, wrap-around and overflow behavior to the simple model.

type refEvent struct {
	when mem.Cycle
	seq  uint64
	fn   func()
	fnc  func(mem.Cycle)
	fna  Handler
	ctx  any
	v    uint64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() (x any) { old := *h; n := len(old) - 1; x = old[n]; *h = old[:n]; return }

type refEngine struct {
	now    mem.Cycle
	seq    uint64
	events refHeap
}

func (e *refEngine) Now() mem.Cycle { return e.now }

func (e *refEngine) At(when mem.Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	heap.Push(&e.events, refEvent{when: when, seq: e.seq, fn: fn})
}

func (e *refEngine) AtCall(when mem.Cycle, fn func(mem.Cycle)) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	heap.Push(&e.events, refEvent{when: when, seq: e.seq, fnc: fn})
}

func (e *refEngine) AtArg(when mem.Cycle, fn Handler, ctx any, v uint64) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	heap.Push(&e.events, refEvent{when: when, seq: e.seq, fna: fn, ctx: ctx, v: v})
}

func (e *refEngine) After(delay mem.Cycle, fn func()) { e.At(e.now+delay, fn) }

func (e *refEngine) AfterArg(delay mem.Cycle, fn Handler, ctx any, v uint64) {
	e.AtArg(e.now+delay, fn, ctx, v)
}

func (e *refEngine) Drain() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(refEvent)
		e.now = ev.when
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.fnc != nil:
			ev.fnc(ev.when)
		default:
			ev.fna(ev.ctx, ev.v, ev.when)
		}
	}
}

// scheduler is the surface both engines expose to the random program.
type scheduler interface {
	Now() mem.Cycle
	At(mem.Cycle, func())
	AtCall(mem.Cycle, func(mem.Cycle))
	AtArg(mem.Cycle, Handler, any, uint64)
	After(mem.Cycle, func())
	AfterArg(mem.Cycle, Handler, any, uint64)
	Drain()
}

// xorshift is a tiny deterministic RNG so both engines replay the exact
// same program (no math/rand global state involved).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// program is the randomized-schedule state shared by the closures and the
// typed AtArg handler (which, being a top-level function, reaches it
// through ctx).
type program struct {
	s      scheduler
	log    []string
	rng    xorshift
	budget int // total events; bounds the recursive rescheduling
}

// progArgEvent is the AtArg/AfterArg callback: v packs (id, depth).
func progArgEvent(ctx any, v uint64, t mem.Cycle) {
	p := ctx.(*program)
	id, depth := int(v>>8), int(v&0xff)
	p.log = append(p.log, fmt.Sprintf("arg:%d@%d(t=%d)", id, p.s.Now(), t))
	if depth < 3 && p.rng.next()%2 == 0 {
		p.schedule(id*7+4, depth+1)
	}
}

func (p *program) schedule(id, depth int) {
	if p.budget <= 0 {
		return
	}
	p.budget--
	s := p.s
	switch p.rng.next() % 5 {
	case 0: // plain At in the near future, possibly in the past (clamped)
		when := mem.Cycle(p.rng.next() % 2048)
		if p.rng.next()%4 == 0 && s.Now() > 16 {
			when = s.Now() - mem.Cycle(p.rng.next()%16) - 1 // strictly past
		}
		s.At(when, func() {
			p.log = append(p.log, fmt.Sprintf("at:%d@%d", id, s.Now()))
			if depth < 3 && p.rng.next()%2 == 0 {
				p.schedule(id*7+1, depth+1)
			}
		})
	case 1: // AtCall: the callback receives its run cycle; the range
		// straddles the wheel boundary, so some land in the overflow heap
		when := s.Now() + mem.Cycle(p.rng.next()%6000)
		s.AtCall(when, func(t mem.Cycle) {
			p.log = append(p.log, fmt.Sprintf("call:%d@%d(t=%d)", id, s.Now(), t))
			if depth < 3 && p.rng.next()%2 == 0 {
				p.schedule(id*7+2, depth+1)
			}
		})
	case 2: // relative, near future (wheel path, wraps as now advances)
		s.After(mem.Cycle(p.rng.next()%512), func() {
			p.log = append(p.log, fmt.Sprintf("after:%d@%d", id, p.s.Now()))
			if depth < 3 && p.rng.next()%3 == 0 {
				p.schedule(id*7+3, depth+1)
			}
		})
	case 3: // AtArg far in the future: always beyond the wheel horizon,
		// exercising the overflow spill and its (when, seq) merge on pop
		when := s.Now() + mem.Cycle(4100+p.rng.next()%16000)
		s.AtArg(when, progArgEvent, p, uint64(id)<<8|uint64(depth))
	default: // AfterArg with a delay straddling the wheel boundary
		s.AfterArg(mem.Cycle(p.rng.next()%5000), progArgEvent, p, uint64(id)<<8|uint64(depth))
	}
}

// runProgram executes a randomized schedule against s and returns the
// execution log: one entry per executed callback recording its identity and
// the cycle it observed. Executed callbacks reschedule follow-up events —
// At calls in the past (exercising the clamp), AtCall events, and
// AtArg/AfterArg events near and far beyond the wheel horizon (exercising
// wrap-around and the overflow heap) — driven by an RNG whose draws depend
// only on execution order, so two engines produce identical logs iff they
// execute events in exactly the same order at the same times.
func runProgram(seed uint64, s scheduler) []string {
	p := &program{s: s, rng: xorshift(seed | 1), budget: 4000}
	for i := 0; i < 400; i++ {
		p.schedule(i, 0)
		// interleave partial drains so some scheduling happens mid-run,
		// with time advanced — that is what makes past-clamping reachable
		if i%97 == 96 {
			s.Drain()
		}
	}
	s.Drain()
	return p.log
}

// TestEventQueueMatchesContainerHeap is the property test for the timing
// wheel: across randomized interleavings of At/AtCall/AtArg/After/AfterArg
// and partial drains — including events scheduled in the past (clamped),
// beyond the wheel horizon (overflow spill), across bucket wrap-around,
// and with (when, seq) ties — the Engine executes callbacks in exactly the
// order and at exactly the times the container/heap reference does.
func TestEventQueueMatchesContainerHeap(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		got := runProgram(seed, New())
		want := runProgram(seed, &refEngine{})
		if len(got) != len(want) {
			t.Fatalf("seed %d: executed %d events, reference executed %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: execution diverges at event %d: engine %q, reference %q",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestTieBreakIsInsertionOrder pins the seq tie-break directly: events
// scheduled at the same cycle run in insertion order, interleaved across
// At/AtCall/After.
func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(10, func() { order = append(order, 0) })
	e.AtCall(10, func(mem.Cycle) { order = append(order, 1) })
	e.After(10, func() { order = append(order, 2) })
	e.AtArg(10, func(ctx any, v uint64, _ mem.Cycle) {
		p := ctx.(*[]int)
		*p = append(*p, int(v))
	}, &order, 3)
	e.At(10, func() { order = append(order, 4) })
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events ran out of insertion order: %v", order)
		}
	}
}

var sinkCount int

func countEvent()                          { sinkCount++ }
func countEventAt(mem.Cycle)               { sinkCount++ }
func countEventArg(any, uint64, mem.Cycle) { sinkCount++ }

// TestSchedulePathAllocs asserts the point of the timing-wheel rewrite:
// once the wheel's buckets and the overflow heap are warm, scheduling and
// dispatching an event — through every schedule form, near-future (wheel)
// or far-future (overflow) — incurs zero heap allocations.
func TestSchedulePathAllocs(t *testing.T) {
	e := New()
	for i := 0; i < 1024; i++ { // grow bucket backing arrays once
		e.After(mem.Cycle(i%64), countEvent)
	}
	for i := 0; i < 512; i++ { // grow the overflow heap once
		e.After(wheelSize+mem.Cycle(i), countEvent)
	}
	e.Drain()
	if a := testing.AllocsPerRun(1000, func() {
		e.After(3, countEvent)
		e.Step()
	}); a != 0 {
		t.Fatalf("After+Step allocates %.1f times per event, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		e.AtCall(e.Now()+3, countEventAt)
		e.Step()
	}); a != 0 {
		t.Fatalf("AtCall+Step allocates %.1f times per event, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		e.AfterArg(3, countEventArg, e, 7)
		e.Step()
	}); a != 0 {
		t.Fatalf("AfterArg+Step allocates %.1f times per event, want 0", a)
	}
	// far-future: the event spills to the overflow heap and pops from it
	if a := testing.AllocsPerRun(1000, func() {
		e.AtArg(e.Now()+wheelSize+100, countEventArg, e, 7)
		e.Step()
	}); a != 0 {
		t.Fatalf("overflow AtArg+Step allocates %.1f times per event, want 0", a)
	}
}
