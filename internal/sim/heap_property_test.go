package sim

import (
	"container/heap"
	"fmt"
	"testing"

	"dap/internal/mem"
)

// --- reference implementation -------------------------------------------
//
// refEngine is the container/heap scheduler the hand-rolled eventQueue
// replaced: (when, seq) ordering, past-clamping, now = popped event's when.
// It exists only as a test oracle.

type refEvent struct {
	when mem.Cycle
	seq  uint64
	fn   func()
	fnc  func(mem.Cycle)
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() (x any) { old := *h; n := len(old) - 1; x = old[n]; *h = old[:n]; return }

type refEngine struct {
	now    mem.Cycle
	seq    uint64
	events refHeap
}

func (e *refEngine) Now() mem.Cycle { return e.now }

func (e *refEngine) At(when mem.Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	heap.Push(&e.events, refEvent{when: when, seq: e.seq, fn: fn})
}

func (e *refEngine) AtCall(when mem.Cycle, fn func(mem.Cycle)) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	heap.Push(&e.events, refEvent{when: when, seq: e.seq, fnc: fn})
}

func (e *refEngine) After(delay mem.Cycle, fn func()) { e.At(e.now+delay, fn) }

func (e *refEngine) Drain() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(refEvent)
		e.now = ev.when
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.fnc(ev.when)
		}
	}
}

// scheduler is the surface both engines expose to the random program.
type scheduler interface {
	Now() mem.Cycle
	At(mem.Cycle, func())
	AtCall(mem.Cycle, func(mem.Cycle))
	After(mem.Cycle, func())
	Drain()
}

// xorshift is a tiny deterministic RNG so both engines replay the exact
// same program (no math/rand global state involved).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// runProgram executes a randomized schedule against s and returns the
// execution log: one entry per executed callback recording its identity and
// the cycle it observed. Executed callbacks reschedule follow-up events —
// including At calls in the past (exercising the clamp) and AtCall events —
// driven by an RNG whose draws depend only on execution order, so two
// engines produce identical logs iff they execute events in exactly the
// same order at the same times.
func runProgram(seed uint64, s scheduler) []string {
	var log []string
	rng := xorshift(seed | 1)
	budget := 4000 // total events; bounds the recursive rescheduling
	var schedule func(id int, depth int)
	schedule = func(id int, depth int) {
		if budget <= 0 {
			return
		}
		budget--
		switch rng.next() % 3 {
		case 0: // plain At, possibly in the past (clamped)
			when := mem.Cycle(rng.next() % 2048)
			if rng.next()%4 == 0 && s.Now() > 16 {
				when = s.Now() - mem.Cycle(rng.next()%16) - 1 // strictly past
			}
			s.At(when, func() {
				log = append(log, fmt.Sprintf("at:%d@%d", id, s.Now()))
				if depth < 3 && rng.next()%2 == 0 {
					schedule(id*7+1, depth+1)
				}
			})
		case 1: // AtCall: the callback receives its (clamped) run cycle
			when := mem.Cycle(rng.next() % 2048)
			s.AtCall(when, func(t mem.Cycle) {
				log = append(log, fmt.Sprintf("call:%d@%d(t=%d)", id, s.Now(), t))
				if depth < 3 && rng.next()%2 == 0 {
					schedule(id*7+2, depth+1)
				}
			})
		default: // relative
			s.After(mem.Cycle(rng.next()%512), func() {
				log = append(log, fmt.Sprintf("after:%d@%d", id, s.Now()))
				if depth < 3 && rng.next()%3 == 0 {
					schedule(id*7+3, depth+1)
				}
			})
		}
	}
	for i := 0; i < 400; i++ {
		schedule(i, 0)
		// interleave partial drains so some scheduling happens mid-run,
		// with time advanced — that is what makes past-clamping reachable
		if i%97 == 96 {
			s.Drain()
		}
	}
	s.Drain()
	return log
}

// TestEventQueueMatchesContainerHeap is the property test for the
// hand-rolled heap: across randomized interleavings of At/AtCall/After and
// partial drains — including events scheduled in the past and (when, seq)
// ties — the Engine executes callbacks in exactly the order and at exactly
// the times the container/heap reference does.
func TestEventQueueMatchesContainerHeap(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		got := runProgram(seed, New())
		want := runProgram(seed, &refEngine{})
		if len(got) != len(want) {
			t.Fatalf("seed %d: executed %d events, reference executed %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: execution diverges at event %d: engine %q, reference %q",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestTieBreakIsInsertionOrder pins the seq tie-break directly: events
// scheduled at the same cycle run in insertion order, interleaved across
// At/AtCall/After.
func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(10, func() { order = append(order, 0) })
	e.AtCall(10, func(mem.Cycle) { order = append(order, 1) })
	e.After(10, func() { order = append(order, 2) })
	e.At(10, func() { order = append(order, 3) })
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events ran out of insertion order: %v", order)
		}
	}
}

var sinkCount int

func countEvent()            { sinkCount++ }
func countEventAt(mem.Cycle) { sinkCount++ }

// TestSchedulePathAllocs asserts the point of the heap rewrite: once the
// queue's backing array is warm, scheduling and dispatching an event incurs
// zero heap allocations — container/heap's interface boxing cost one per
// event.
func TestSchedulePathAllocs(t *testing.T) {
	e := New()
	for i := 0; i < 1024; i++ { // grow the backing array once
		e.After(mem.Cycle(i%64), countEvent)
	}
	e.Drain()
	if a := testing.AllocsPerRun(1000, func() {
		e.After(3, countEvent)
		e.Step()
	}); a != 0 {
		t.Fatalf("After+Step allocates %.1f times per event, want 0", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		e.AtCall(e.Now()+3, countEventAt)
		e.Step()
	}); a != 0 {
		t.Fatalf("AtCall+Step allocates %.1f times per event, want 0", a)
	}
}
