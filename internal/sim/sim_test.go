package sim

import (
	"testing"

	"dap/internal/mem"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same time: insertion order
	e.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %d, want 10", e.Now())
	}
}

func TestEnginePastClamped(t *testing.T) {
	e := New()
	e.At(100, func() {
		e.At(50, func() {
			if e.Now() != 100 {
				t.Errorf("past event ran at %d, want clamped to 100", e.Now())
			}
		})
	})
	e.Drain()
}

func TestEngineAfter(t *testing.T) {
	e := New()
	fired := mem.Cycle(0)
	e.At(7, func() {
		e.After(5, func() { fired = e.Now() })
	})
	e.Drain()
	if fired != 12 {
		t.Fatalf("After fired at %d, want 12", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(10, tick)
	}
	e.After(10, tick)
	e.RunUntil(100)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 100 {
		t.Fatalf("now = %d, want 100", e.Now())
	}
	// queue must still hold the next tick
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesIdleTime(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("now = %d, want 500 even with empty queue", e.Now())
	}
}

func TestRunWhile(t *testing.T) {
	e := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		e.After(1, tick)
	}
	e.After(1, tick)
	e.RunWhile(func() bool { return n < 5 })
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestStepEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func TestManyEventsStaySorted(t *testing.T) {
	e := New()
	last := mem.Cycle(0)
	// schedule in reverse and confirm monotone execution
	for i := 1000; i > 0; i-- {
		e.At(mem.Cycle(i), func() {
			if e.Now() < last {
				t.Fatalf("time went backwards: %d < %d", e.Now(), last)
			}
			last = e.Now()
		})
	}
	e.Drain()
	if last != 1000 {
		t.Fatalf("last = %d, want 1000", last)
	}
}
