package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dap/internal/mem"
)

// TestWatchdogTripsOnStall: a self-perpetuating timer with a frozen progress
// counter must trip the watchdog with a diagnostic snapshot.
func TestWatchdogTripsOnStall(t *testing.T) {
	e := New()
	progress := uint64(0)
	e.SetWatchdog(64, func() uint64 { return progress }, func() string { return "queues: wedged" })
	var tick func()
	tick = func() { e.After(1, tick) }
	e.After(1, tick)
	steps := 0
	for e.Step() {
		steps++
		if steps > 10_000 {
			t.Fatal("watchdog never tripped")
		}
	}
	var se *StallError
	if !errors.As(e.Err(), &se) {
		t.Fatalf("expected *StallError, got %v", e.Err())
	}
	if se.Cycle == 0 || se.Events == 0 {
		t.Fatalf("empty stall context: %+v", se)
	}
	if !strings.Contains(se.Error(), "queues: wedged") {
		t.Fatalf("snapshot missing from message: %q", se.Error())
	}
	if e.Step() {
		t.Fatal("failed engine must not execute further events")
	}
}

// TestWatchdogProgressSuppresses: advancing progress must keep the watchdog
// quiet indefinitely.
func TestWatchdogProgressSuppresses(t *testing.T) {
	e := New()
	progress := uint64(0)
	e.SetWatchdog(64, func() uint64 { return progress }, nil)
	var tick func()
	tick = func() {
		progress++ // every event makes progress
		e.After(1, tick)
	}
	e.After(1, tick)
	for i := 0; i < 5000 && e.Step(); i++ {
	}
	if e.Err() != nil {
		t.Fatalf("watchdog tripped despite progress: %v", e.Err())
	}
}

// TestWatchdogTimeFingerprintDefault: with a nil progress function the
// watchdog falls back to simulated time, so zero-delay self-rescheduling
// (time frozen) trips while advancing time does not.
func TestWatchdogTimeFingerprintDefault(t *testing.T) {
	e := New()
	e.SetWatchdog(64, nil, nil)
	var spin func()
	spin = func() { e.After(0, spin) } // same-cycle spin
	e.At(1, spin)
	for i := 0; i < 10_000 && e.Step(); i++ {
	}
	var se *StallError
	if !errors.As(e.Err(), &se) {
		t.Fatalf("same-cycle spin not detected: %v", e.Err())
	}
}

// TestWatchdogDisarm: staleEvents <= 0 disarms a previously armed watchdog.
func TestWatchdogDisarm(t *testing.T) {
	e := New()
	e.SetWatchdog(8, func() uint64 { return 0 }, nil)
	e.SetWatchdog(0, nil, nil)
	var tick func()
	tick = func() { e.After(1, tick) }
	e.After(1, tick)
	for i := 0; i < 1000; i++ {
		e.Step()
	}
	if e.Err() != nil {
		t.Fatalf("disarmed watchdog tripped: %v", e.Err())
	}
}

// TestFailStopsEngine: Fail freezes the engine; RunUntil must not advance
// time past the failure, and the first failure wins.
func TestFailStopsEngine(t *testing.T) {
	e := New()
	ran := false
	e.At(10, func() { e.Fail(fmt.Errorf("auditor: invariant violated")) })
	e.At(20, func() { ran = true })
	e.RunUntil(1000)
	if ran {
		t.Fatal("event after failure executed")
	}
	if e.Now() != 10 {
		t.Fatalf("failed engine advanced time to %d", e.Now())
	}
	e.Fail(fmt.Errorf("second"))
	if e.Err().Error() != "auditor: invariant violated" {
		t.Fatalf("first failure did not win: %v", e.Err())
	}
}

// TestStallErrorDeadlockMessage: Pending == 0 renders as a deadlock.
func TestStallErrorDeadlockMessage(t *testing.T) {
	se := &StallError{Cycle: 42, Events: 7, Pending: 0}
	if !strings.Contains(se.Error(), "deadlocked") {
		t.Fatalf("deadlock not named: %q", se.Error())
	}
	se.Pending = 3
	if !strings.Contains(se.Error(), "stalled") {
		t.Fatalf("stall not named: %q", se.Error())
	}
}

// BenchmarkStep measures the per-event dispatch cost with the watchdog
// disarmed (the default for every existing caller).
func BenchmarkStep(b *testing.B) {
	benchmarkStep(b, false)
}

// BenchmarkStepWatchdog measures the same loop with the watchdog armed; the
// difference is the hardening overhead paid by guarded runs.
func BenchmarkStepWatchdog(b *testing.B) {
	benchmarkStep(b, true)
}

func benchmarkStep(b *testing.B, watchdog bool) {
	e := New()
	n := uint64(0)
	if watchdog {
		e.SetWatchdog(1<<20, func() uint64 { return n }, nil)
	}
	var tick func()
	tick = func() {
		n++
		e.After(1, tick)
	}
	e.After(1, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	if e.Err() != nil {
		b.Fatalf("unexpected failure: %v", e.Err())
	}
	_ = mem.Cycle(0)
}
