package sim

import (
	"testing"

	"dap/internal/mem"
)

// TestFlightSamplerFires verifies the periodic sampler fires every N
// executed events with the current cycle, and that disarming stops it.
func TestFlightSamplerFires(t *testing.T) {
	e := New()
	var samples []mem.Cycle
	e.SetFlightSampler(3, func(c mem.Cycle) { samples = append(samples, c) })

	// Self-rescheduling tick: 10 events at cycles 1..10.
	var n int
	var tick func(mem.Cycle)
	tick = func(c mem.Cycle) {
		n++
		if n < 10 {
			e.AtCall(e.Now()+1, tick)
		}
	}
	e.AtCall(e.Now()+1, tick)
	e.Drain()

	if len(samples) != 3 { // events 3, 6, 9
		t.Fatalf("got %d samples (%v), want 3", len(samples), samples)
	}
	for i, want := range []mem.Cycle{3, 6, 9} {
		if samples[i] != want {
			t.Fatalf("sample %d at cycle %d, want %d (all %v)", i, samples[i], want, samples)
		}
	}

	// Disarm: no further samples.
	e.SetFlightSampler(0, nil)
	n = 0
	e.AtCall(e.Now()+1, tick)
	e.Drain()
	if len(samples) != 3 {
		t.Fatalf("sampler fired after disarm: %v", samples)
	}
}

// TestFlightSamplerCoexistsWithWatchdog checks both piggyback observers can
// be armed at once and the watchdog still trips.
func TestFlightSamplerCoexistsWithWatchdog(t *testing.T) {
	e := New()
	var fired int
	e.SetFlightSampler(4, func(mem.Cycle) { fired++ })
	e.SetWatchdog(16, func() uint64 { return 42 }, nil) // constant progress: stalls

	var spin func(mem.Cycle)
	spin = func(c mem.Cycle) { e.AtCall(c, spin) } // zero-time self-loop, no progress
	e.AtCall(0, spin)
	for i := 0; i < 1000 && e.Step(); i++ {
	}
	if e.Err() == nil {
		t.Fatal("watchdog did not trip")
	}
	if fired == 0 {
		t.Fatal("flight sampler never fired alongside watchdog")
	}
}
