// Package sim provides the discrete-event simulation engine that drives the
// whole memory-hierarchy model. Components schedule callbacks at absolute or
// relative cycle times; the engine executes them in time order with a
// deterministic tie-break so that simulations are exactly reproducible.
package sim

import (
	"fmt"
	"math/bits"

	"dap/internal/mem"
)

// Handler is a typed event callback: ctx is usually the receiving component
// (a pointer, so boxing it in the interface never allocates), v is a packed
// value argument, and now is the cycle the event runs at. Scheduling a
// top-level Handler through AtArg/AfterArg costs no closure allocation,
// which is why the simulator's hot completion paths use it instead of At.
type Handler func(ctx any, v uint64, now mem.Cycle)

// event is a scheduled callback. Exactly one of fn, fnc and fna is set: fn
// is a plain closure, fnc receives the cycle the event runs at (AtCall),
// and fna is a typed Handler with its ctx/v payload (AtArg).
type event struct {
	when mem.Cycle
	seq  uint64 // insertion order; breaks ties deterministically
	fn   func()
	fnc  func(mem.Cycle)
	fna  Handler
	ctx  any
	v    uint64
}

// The timing wheel exploits the fact that nearly every event in this
// simulator is scheduled a bounded, small number of cycles ahead: DRAM
// timing parameters and the channel reservation horizon are a few hundred
// cycles, tag/DBC latencies single digits, and core wake-ups rarely more
// than a few thousand. Those events go into a ring of wheelSize one-cycle
// buckets, giving O(1) schedule and pop; the rare far-future events
// (refresh ticks, DAP window boundaries, watchdog-scale timers) spill into
// a conventional binary heap that is consulted only at pop time.
const (
	wheelBits  = 12
	wheelSize  = 1 << wheelBits // cycles of near-future coverage
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64 // occupancy-bitmap words
)

// eventNode is one arena cell: an event plus the index of the next node in
// its wheel slot's list (or the free list), -1 terminating either. All wheel
// events live in a single growable arena and slots hold index-linked FIFO
// lists into it, so a fresh engine pays one amortized arena allocation for
// its entire lifetime instead of one slice growth per warming bucket.
type eventNode struct {
	ev   event
	next int32
}

// bucketList is one wheel slot: head/tail indices into the arena, -1 when
// empty. Because every resident event satisfies now <= when < now+wheelSize,
// a slot maps to exactly one absolute cycle at any moment, and tail-append
// preserves seq order — so a slot's list is always sorted by (when, seq)
// with no per-push work.
type bucketList struct {
	head, tail int32
}

// eventHeap is a hand-rolled binary min-heap ordered by (when, seq). It
// holds only the overflow events scheduled at least wheelSize cycles
// ahead; everything else bypasses it. Keeping it hand-rolled (rather than
// container/heap) keeps events out of interface boxes: pushing through
// heap.Interface converts every event to `any`, costing one heap
// allocation per scheduled event.
type eventHeap []event

// before reports strict (when, seq) ordering between two heap slots.
func (q eventHeap) before(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

// push appends an event and sifts it up to its heap position.
func (q *eventHeap) push(ev event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

// pop removes and returns the minimum event, sifting the displaced tail
// element down. The vacated tail slot is zeroed so the queue does not
// retain the popped closure.
func (q *eventHeap) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.before(r, c) {
			c = r
		}
		if !h.before(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	*q = h
	return top
}

// StallError reports a forward-progress failure: the watchdog observed no
// progress for too many executed events, or the queue drained while the
// simulated system still had work outstanding (a deadlock).
type StallError struct {
	Cycle    mem.Cycle // simulated time of detection
	Events   uint64    // events executed without observable progress
	Pending  int       // events still queued at detection time
	Snapshot string    // component-state dump captured at detection time
}

func (e *StallError) Error() string {
	kind := "stalled"
	if e.Pending == 0 {
		kind = "deadlocked"
	}
	msg := fmt.Sprintf("sim: %s at cycle %d (%d events without progress, %d pending)",
		kind, e.Cycle, e.Events, e.Pending)
	if e.Snapshot != "" {
		msg += "\n" + e.Snapshot
	}
	return msg
}

// watchdog is the engine's stall detector. Every batch executed events it
// samples the progress fingerprint; limit consecutive stale samples with no
// simulated-time advance between them trip a StallError.
type watchdog struct {
	batch, limit int
	count, stale int
	lastProg     uint64
	progress     func() uint64
	snapshot     func() string
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
//
// Events live in one of two structures: a timing wheel of one-cycle
// buckets covering [now, now+wheelSize), and an overflow heap for events
// scheduled further ahead. Both are ordered by (when, seq); pop compares
// the wheel's earliest bucket head with the heap top, so the execution
// order — and therefore every simulation result — is bit-identical to a
// single (when, seq) priority queue.
type Engine struct {
	now mem.Cycle
	seq uint64

	slots    []bucketList       // wheel ring, allocated on first use
	arena    []eventNode        // node storage for every wheel-resident event
	free     int32              // LIFO free-list head into arena, -1 when empty
	occ      [wheelWords]uint64 // one bit per non-empty bucket
	nwheel   int                // events resident in the wheel
	overflow eventHeap          // events >= wheelSize cycles ahead

	wd  *watchdog
	fs  *flightSampler
	err error
}

// flightSampler periodically invokes a state-capture callback — the flight
// recorder's feed. Like the watchdog it piggybacks on Step with a single
// counter increment per event when armed, and zero branches beyond the nil
// check when off.
type flightSampler struct {
	every, count int
	fn           func(mem.Cycle)
}

// New returns an empty engine at cycle zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() mem.Cycle { return e.now }

// Clock returns the engine's timestamp source as a plain function, the
// form consumed by observability components (internal/obs) that must not
// depend on the engine itself.
func (e *Engine) Clock() func() mem.Cycle { return e.Now }

// schedule places a clamped, sequenced event into the wheel or, when it
// lies beyond the wheel's coverage, into the overflow heap. The overflow
// never migrates into the wheel: pop compares both structures directly, so
// a far-future event is simply served from the heap when its time comes.
func (e *Engine) schedule(ev event) {
	if ev.when-e.now < wheelSize {
		if e.slots == nil {
			e.slots = make([]bucketList, wheelSize)
			for i := range e.slots {
				e.slots[i] = bucketList{head: -1, tail: -1}
			}
			e.free = -1
			e.arena = make([]eventNode, 0, 1024)
		}
		// Take a node from the free list, or append to the arena — append
		// before linking, so a reallocating append can never leave a slot
		// pointing into the stale backing array.
		var n int32
		if e.free >= 0 {
			n = e.free
			e.free = e.arena[n].next
			e.arena[n] = eventNode{ev: ev, next: -1}
		} else {
			e.arena = append(e.arena, eventNode{ev: ev, next: -1})
			n = int32(len(e.arena) - 1)
		}
		slot := int(ev.when) & wheelMask
		b := &e.slots[slot]
		if b.tail < 0 {
			b.head = n
		} else {
			e.arena[b.tail].next = n
		}
		b.tail = n
		e.occ[slot>>6] |= 1 << uint(slot&63)
		e.nwheel++
		return
	}
	e.overflow.push(ev)
}

// At schedules fn to run at absolute cycle when. Scheduling in the past is
// clamped to the current cycle (the event runs before time advances).
func (e *Engine) At(when mem.Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	e.schedule(event{when: when, seq: e.seq, fn: fn})
}

// AtCall schedules fn to run at absolute cycle when, passing it the cycle
// it executes at (when, after past-clamping). It exists for completion
// paths that already hold a func(mem.Cycle): scheduling it directly avoids
// allocating a wrapper closure per event, which matters on the DRAM
// data-return path where every access schedules one completion.
func (e *Engine) AtCall(when mem.Cycle, fn func(mem.Cycle)) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	e.schedule(event{when: when, seq: e.seq, fnc: fn})
}

// AtArg schedules the typed handler fn(ctx, v, when) at absolute cycle
// when (past-clamped like At). Passing a top-level function and a pointer
// ctx makes scheduling completely allocation-free, which is what the
// simulator's per-access paths (channel scheduler kicks, core wake-ups,
// load completions) use instead of capturing closures.
func (e *Engine) AtArg(when mem.Cycle, fn Handler, ctx any, v uint64) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	e.schedule(event{when: when, seq: e.seq, fna: fn, ctx: ctx, v: v})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay mem.Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// AfterArg schedules the typed handler fn(ctx, v, t) delay cycles from now
// (the allocation-free counterpart of After; see AtArg).
func (e *Engine) AfterArg(delay mem.Cycle, fn Handler, ctx any, v uint64) {
	e.AtArg(e.now+delay, fn, ctx, v)
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return e.nwheel + len(e.overflow) }

// wheelScan returns the slot of the earliest non-empty wheel bucket, which
// — because every resident event's cycle lies in [now, now+wheelSize) —
// is the first occupied slot in circular order from now's slot. Must only
// be called with nwheel > 0.
func (e *Engine) wheelScan() int {
	s := int(e.now) & wheelMask
	w := s >> 6
	word := e.occ[w] &^ (1<<uint(s&63) - 1) // ignore slots before now
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w = (w + 1) & (wheelWords - 1)
		word = e.occ[w]
	}
}

// nextWhen reports the cycle of the earliest pending event.
func (e *Engine) nextWhen() (mem.Cycle, bool) {
	switch {
	case e.nwheel == 0 && len(e.overflow) == 0:
		return 0, false
	case e.nwheel == 0:
		return e.overflow[0].when, true
	}
	slot := e.wheelScan()
	when := e.arena[e.slots[slot].head].ev.when
	if len(e.overflow) > 0 && e.overflow[0].when < when {
		return e.overflow[0].when, true
	}
	return when, true
}

// pop removes and returns the earliest event by (when, seq), comparing the
// wheel's first occupied bucket against the overflow heap top.
func (e *Engine) pop() (event, bool) {
	if e.nwheel == 0 {
		if len(e.overflow) == 0 {
			return event{}, false
		}
		return e.overflow.pop(), true
	}
	slot := e.wheelScan()
	b := &e.slots[slot]
	hn := b.head
	head := &e.arena[hn].ev
	if len(e.overflow) > 0 {
		if top := &e.overflow[0]; top.when < head.when ||
			(top.when == head.when && top.seq < head.seq) {
			return e.overflow.pop(), true
		}
	}
	ev := *head
	*head = event{} // release closure/ctx references
	b.head = e.arena[hn].next
	if b.head < 0 {
		b.tail = -1
		e.occ[slot>>6] &^= 1 << uint(slot&63)
	}
	e.arena[hn].next = e.free
	e.free = hn
	e.nwheel--
	return ev, true
}

// watchdogChecks is how many stale samples in a row trip the watchdog; the
// sample interval is staleEvents / watchdogChecks executed events.
const watchdogChecks = 8

// SetWatchdog arms the forward-progress watchdog: if the progress
// fingerprint returned by progress does not change across roughly
// staleEvents consecutively executed events, the engine stops and Err
// returns a *StallError. progress defaults to simulated time when nil;
// snapshot, when non-nil, supplies a component-state dump captured at the
// moment the stall is detected. staleEvents <= 0 disarms the watchdog.
//
// The per-event cost when armed is one counter increment; the fingerprint
// is only sampled every staleEvents/8 events.
func (e *Engine) SetWatchdog(staleEvents int, progress func() uint64, snapshot func() string) {
	if staleEvents <= 0 {
		e.wd = nil
		return
	}
	batch := staleEvents / watchdogChecks
	if batch < 1 {
		batch = 1
	}
	if progress == nil {
		progress = func() uint64 { return uint64(e.now) }
	}
	e.wd = &watchdog{
		batch: batch, limit: watchdogChecks,
		progress: progress, snapshot: snapshot, lastProg: progress(),
	}
}

// SetFlightSampler arms periodic state sampling: fn is invoked with the
// current cycle every `every` executed events — the feed for a flight
// recorder capturing "what was the system doing lately". fn must be a
// strict read-only observer (it runs between events on the engine
// goroutine); every <= 0 or a nil fn disarms. The per-event cost when
// armed is one counter increment, matching the watchdog.
func (e *Engine) SetFlightSampler(every int, fn func(mem.Cycle)) {
	if every <= 0 || fn == nil {
		e.fs = nil
		return
	}
	e.fs = &flightSampler{every: every, fn: fn}
}

// Fail stops the engine with err: no further events execute, and Err
// reports the failure. The first failure wins; later ones are dropped.
func (e *Engine) Fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// Err returns the failure that stopped the engine (a *StallError from the
// watchdog, or whatever was passed to Fail), or nil while healthy.
func (e *Engine) Err() error { return e.err }

// Step executes the next event. It reports false when no events remain or
// the engine has failed.
func (e *Engine) Step() bool {
	if e.err != nil {
		return false
	}
	ev, ok := e.pop()
	if !ok {
		return false
	}
	e.now = ev.when
	switch {
	case ev.fn != nil:
		ev.fn()
	case ev.fnc != nil:
		ev.fnc(ev.when)
	default:
		ev.fna(ev.ctx, ev.v, ev.when)
	}
	if f := e.fs; f != nil {
		f.count++
		if f.count >= f.every {
			f.count = 0
			f.fn(e.now)
		}
	}
	if w := e.wd; w != nil {
		w.count++
		if w.count >= w.batch {
			w.count = 0
			if p := w.progress(); p != w.lastProg {
				w.lastProg = p
				w.stale = 0
			} else if w.stale++; w.stale >= w.limit {
				snap := ""
				if w.snapshot != nil {
					snap = w.snapshot()
				}
				e.Fail(&StallError{
					Cycle:    e.now,
					Events:   uint64(w.batch) * uint64(w.stale),
					Pending:  e.Pending(),
					Snapshot: snap,
				})
			}
		}
	}
	return true
}

// RunUntil executes events until the queue is empty, the engine fails, or
// the next event lies beyond the limit cycle. Time stops at the last
// executed event (or at limit if the queue drains earlier than limit with
// no event at/after it); a failed engine does not advance time.
func (e *Engine) RunUntil(limit mem.Cycle) {
	for e.err == nil {
		when, ok := e.nextWhen()
		if !ok || when > limit {
			break
		}
		e.Step()
	}
	if e.err == nil && e.now < limit {
		e.now = limit
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Drain executes all remaining events.
func (e *Engine) Drain() {
	for e.Step() {
	}
}
