// Package sim provides the discrete-event simulation engine that drives the
// whole memory-hierarchy model. Components schedule closures at absolute or
// relative cycle times; the engine executes them in time order with a
// deterministic tie-break so that simulations are exactly reproducible.
package sim

import (
	"fmt"

	"dap/internal/mem"
)

// event is a scheduled callback. Exactly one of fn and fnc is set: fn is a
// plain closure, fnc receives the cycle the event runs at (AtCall), which
// lets completion paths schedule a pre-existing func(Cycle) without
// wrapping it in a fresh closure.
type event struct {
	when mem.Cycle
	seq  uint64 // insertion order; breaks ties deterministically
	fn   func()
	fnc  func(mem.Cycle)
}

// eventQueue is a hand-rolled binary min-heap ordered by (when, seq). It
// replaces container/heap to keep events out of interface boxes: pushing
// through heap.Interface converts every event to `any`, costing one heap
// allocation per scheduled event on the hottest path of the simulator.
// Because seq is unique, (when, seq) is a total order, so any correct heap
// pops events in exactly the same sequence — the execution order (and thus
// every simulation result) is bit-identical to the container/heap version.
type eventQueue []event

// before reports strict (when, seq) ordering between two queue slots.
func (q eventQueue) before(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

// push appends an event and sifts it up to its heap position.
func (q *eventQueue) push(ev event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

// pop removes and returns the minimum event, sifting the displaced tail
// element down. The vacated tail slot is zeroed so the queue does not
// retain the popped closure.
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.before(r, c) {
			c = r
		}
		if !h.before(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	*q = h
	return top
}

// StallError reports a forward-progress failure: the watchdog observed no
// progress for too many executed events, or the queue drained while the
// simulated system still had work outstanding (a deadlock).
type StallError struct {
	Cycle    mem.Cycle // simulated time of detection
	Events   uint64    // events executed without observable progress
	Pending  int       // events still queued at detection time
	Snapshot string    // component-state dump captured at detection time
}

func (e *StallError) Error() string {
	kind := "stalled"
	if e.Pending == 0 {
		kind = "deadlocked"
	}
	msg := fmt.Sprintf("sim: %s at cycle %d (%d events without progress, %d pending)",
		kind, e.Cycle, e.Events, e.Pending)
	if e.Snapshot != "" {
		msg += "\n" + e.Snapshot
	}
	return msg
}

// watchdog is the engine's stall detector. Every batch executed events it
// samples the progress fingerprint; limit consecutive stale samples with no
// simulated-time advance between them trip a StallError.
type watchdog struct {
	batch, limit int
	count, stale int
	lastProg     uint64
	progress     func() uint64
	snapshot     func() string
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now    mem.Cycle
	seq    uint64
	events eventQueue

	wd  *watchdog
	err error
}

// New returns an empty engine at cycle zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() mem.Cycle { return e.now }

// Clock returns the engine's timestamp source as a plain function, the
// form consumed by observability components (internal/obs) that must not
// depend on the engine itself.
func (e *Engine) Clock() func() mem.Cycle { return e.Now }

// At schedules fn to run at absolute cycle when. Scheduling in the past is
// clamped to the current cycle (the event runs before time advances).
func (e *Engine) At(when mem.Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	e.events.push(event{when: when, seq: e.seq, fn: fn})
}

// AtCall schedules fn to run at absolute cycle when, passing it the cycle
// it executes at (when, after past-clamping). It exists for completion
// paths that already hold a func(mem.Cycle): scheduling it directly avoids
// allocating a wrapper closure per event, which matters on the DRAM
// data-return path where every access schedules one completion.
func (e *Engine) AtCall(when mem.Cycle, fn func(mem.Cycle)) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	e.events.push(event{when: when, seq: e.seq, fnc: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay mem.Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// watchdogChecks is how many stale samples in a row trip the watchdog; the
// sample interval is staleEvents / watchdogChecks executed events.
const watchdogChecks = 8

// SetWatchdog arms the forward-progress watchdog: if the progress
// fingerprint returned by progress does not change across roughly
// staleEvents consecutively executed events, the engine stops and Err
// returns a *StallError. progress defaults to simulated time when nil;
// snapshot, when non-nil, supplies a component-state dump captured at the
// moment the stall is detected. staleEvents <= 0 disarms the watchdog.
//
// The per-event cost when armed is one counter increment; the fingerprint
// is only sampled every staleEvents/8 events.
func (e *Engine) SetWatchdog(staleEvents int, progress func() uint64, snapshot func() string) {
	if staleEvents <= 0 {
		e.wd = nil
		return
	}
	batch := staleEvents / watchdogChecks
	if batch < 1 {
		batch = 1
	}
	if progress == nil {
		progress = func() uint64 { return uint64(e.now) }
	}
	e.wd = &watchdog{
		batch: batch, limit: watchdogChecks,
		progress: progress, snapshot: snapshot, lastProg: progress(),
	}
}

// Fail stops the engine with err: no further events execute, and Err
// reports the failure. The first failure wins; later ones are dropped.
func (e *Engine) Fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// Err returns the failure that stopped the engine (a *StallError from the
// watchdog, or whatever was passed to Fail), or nil while healthy.
func (e *Engine) Err() error { return e.err }

// Step executes the next event. It reports false when no events remain or
// the engine has failed.
func (e *Engine) Step() bool {
	if e.err != nil || len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.when
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.fnc(ev.when)
	}
	if w := e.wd; w != nil {
		w.count++
		if w.count >= w.batch {
			w.count = 0
			if p := w.progress(); p != w.lastProg {
				w.lastProg = p
				w.stale = 0
			} else if w.stale++; w.stale >= w.limit {
				snap := ""
				if w.snapshot != nil {
					snap = w.snapshot()
				}
				e.Fail(&StallError{
					Cycle:    e.now,
					Events:   uint64(w.batch) * uint64(w.stale),
					Pending:  len(e.events),
					Snapshot: snap,
				})
			}
		}
	}
	return true
}

// RunUntil executes events until the queue is empty, the engine fails, or
// the next event lies beyond the limit cycle. Time stops at the last
// executed event (or at limit if the queue drains earlier than limit with
// no event at/after it); a failed engine does not advance time.
func (e *Engine) RunUntil(limit mem.Cycle) {
	for e.err == nil && len(e.events) > 0 && e.events[0].when <= limit {
		e.Step()
	}
	if e.err == nil && e.now < limit {
		e.now = limit
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Drain executes all remaining events.
func (e *Engine) Drain() {
	for e.Step() {
	}
}
