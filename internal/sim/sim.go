// Package sim provides the discrete-event simulation engine that drives the
// whole memory-hierarchy model. Components schedule closures at absolute or
// relative cycle times; the engine executes them in time order with a
// deterministic tie-break so that simulations are exactly reproducible.
package sim

import (
	"container/heap"

	"dap/internal/mem"
)

// Event is a scheduled callback.
type event struct {
	when mem.Cycle
	seq  uint64 // insertion order; breaks ties deterministically
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now    mem.Cycle
	seq    uint64
	events eventHeap
}

// New returns an empty engine at cycle zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() mem.Cycle { return e.now }

// At schedules fn to run at absolute cycle when. Scheduling in the past is
// clamped to the current cycle (the event runs before time advances).
func (e *Engine) At(when mem.Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	heap.Push(&e.events, event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay mem.Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Step executes the next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.when
	ev.fn()
	return true
}

// RunUntil executes events until the queue is empty or the next event lies
// beyond the limit cycle. Time stops at the last executed event (or at limit
// if the queue drains earlier than limit with no event at/after it).
func (e *Engine) RunUntil(limit mem.Cycle) {
	for len(e.events) > 0 && e.events[0].when <= limit {
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Drain executes all remaining events.
func (e *Engine) Drain() {
	for e.Step() {
	}
}
