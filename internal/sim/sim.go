// Package sim provides the discrete-event simulation engine that drives the
// whole memory-hierarchy model. Components schedule closures at absolute or
// relative cycle times; the engine executes them in time order with a
// deterministic tie-break so that simulations are exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"

	"dap/internal/mem"
)

// Event is a scheduled callback.
type event struct {
	when mem.Cycle
	seq  uint64 // insertion order; breaks ties deterministically
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// StallError reports a forward-progress failure: the watchdog observed no
// progress for too many executed events, or the queue drained while the
// simulated system still had work outstanding (a deadlock).
type StallError struct {
	Cycle    mem.Cycle // simulated time of detection
	Events   uint64    // events executed without observable progress
	Pending  int       // events still queued at detection time
	Snapshot string    // component-state dump captured at detection time
}

func (e *StallError) Error() string {
	kind := "stalled"
	if e.Pending == 0 {
		kind = "deadlocked"
	}
	msg := fmt.Sprintf("sim: %s at cycle %d (%d events without progress, %d pending)",
		kind, e.Cycle, e.Events, e.Pending)
	if e.Snapshot != "" {
		msg += "\n" + e.Snapshot
	}
	return msg
}

// watchdog is the engine's stall detector. Every batch executed events it
// samples the progress fingerprint; limit consecutive stale samples with no
// simulated-time advance between them trip a StallError.
type watchdog struct {
	batch, limit int
	count, stale int
	lastProg     uint64
	progress     func() uint64
	snapshot     func() string
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now    mem.Cycle
	seq    uint64
	events eventHeap

	wd  *watchdog
	err error
}

// New returns an empty engine at cycle zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() mem.Cycle { return e.now }

// Clock returns the engine's timestamp source as a plain function, the
// form consumed by observability components (internal/obs) that must not
// depend on the engine itself.
func (e *Engine) Clock() func() mem.Cycle { return e.Now }

// At schedules fn to run at absolute cycle when. Scheduling in the past is
// clamped to the current cycle (the event runs before time advances).
func (e *Engine) At(when mem.Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	heap.Push(&e.events, event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay mem.Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// watchdogChecks is how many stale samples in a row trip the watchdog; the
// sample interval is staleEvents / watchdogChecks executed events.
const watchdogChecks = 8

// SetWatchdog arms the forward-progress watchdog: if the progress
// fingerprint returned by progress does not change across roughly
// staleEvents consecutively executed events, the engine stops and Err
// returns a *StallError. progress defaults to simulated time when nil;
// snapshot, when non-nil, supplies a component-state dump captured at the
// moment the stall is detected. staleEvents <= 0 disarms the watchdog.
//
// The per-event cost when armed is one counter increment; the fingerprint
// is only sampled every staleEvents/8 events.
func (e *Engine) SetWatchdog(staleEvents int, progress func() uint64, snapshot func() string) {
	if staleEvents <= 0 {
		e.wd = nil
		return
	}
	batch := staleEvents / watchdogChecks
	if batch < 1 {
		batch = 1
	}
	if progress == nil {
		progress = func() uint64 { return uint64(e.now) }
	}
	e.wd = &watchdog{
		batch: batch, limit: watchdogChecks,
		progress: progress, snapshot: snapshot, lastProg: progress(),
	}
}

// Fail stops the engine with err: no further events execute, and Err
// reports the failure. The first failure wins; later ones are dropped.
func (e *Engine) Fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// Err returns the failure that stopped the engine (a *StallError from the
// watchdog, or whatever was passed to Fail), or nil while healthy.
func (e *Engine) Err() error { return e.err }

// Step executes the next event. It reports false when no events remain or
// the engine has failed.
func (e *Engine) Step() bool {
	if e.err != nil || len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.when
	ev.fn()
	if w := e.wd; w != nil {
		w.count++
		if w.count >= w.batch {
			w.count = 0
			if p := w.progress(); p != w.lastProg {
				w.lastProg = p
				w.stale = 0
			} else if w.stale++; w.stale >= w.limit {
				snap := ""
				if w.snapshot != nil {
					snap = w.snapshot()
				}
				e.Fail(&StallError{
					Cycle:    e.now,
					Events:   uint64(w.batch) * uint64(w.stale),
					Pending:  len(e.events),
					Snapshot: snap,
				})
			}
		}
	}
	return true
}

// RunUntil executes events until the queue is empty, the engine fails, or
// the next event lies beyond the limit cycle. Time stops at the last
// executed event (or at limit if the queue drains earlier than limit with
// no event at/after it); a failed engine does not advance time.
func (e *Engine) RunUntil(limit mem.Cycle) {
	for e.err == nil && len(e.events) > 0 && e.events[0].when <= limit {
		e.Step()
	}
	if e.err == nil && e.now < limit {
		e.now = limit
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Drain executes all remaining events.
func (e *Engine) Drain() {
	for e.Step() {
	}
}
