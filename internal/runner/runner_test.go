package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering: results come back in submission order at every worker
// count, even when later jobs finish first. Run with -race (the Makefile
// check target does) to exercise the pool's synchronization.
func TestMapOrdering(t *testing.T) {
	for _, parallel := range []int{0, 1, 2, 3, 8, 33} {
		n := 64
		got := Map(parallel, n, func(i int) int {
			// invert completion order: early jobs sleep longest
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			return i * i
		})
		if len(got) != n {
			t.Fatalf("parallel=%d: got %d results, want %d", parallel, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: result[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

// TestForEachRunsEveryJobOnce: no job is skipped or duplicated under
// contention.
func TestForEachRunsEveryJobOnce(t *testing.T) {
	n := 1000
	counts := make([]atomic.Int32, n)
	ForEach(16, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

// TestPanicPropagation: a worker panic is re-raised on the caller's
// goroutine as a *WorkerPanic carrying the original value, and the
// remaining jobs still run.
func TestPanicPropagation(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		var ran atomic.Int32
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("parallel=%d: panic did not propagate", parallel)
				}
				if parallel == 1 {
					// serial mode panics in place with the original value
					if r != "boom-7" {
						t.Fatalf("serial panic value = %v, want boom-7", r)
					}
					return
				}
				wp, ok := r.(*WorkerPanic)
				if !ok {
					t.Fatalf("parallel=%d: panic value %T, want *WorkerPanic", parallel, r)
				}
				if wp.Value != "boom-7" {
					t.Fatalf("wrapped panic value = %v, want boom-7", wp.Value)
				}
				if !strings.Contains(wp.String(), "worker stack") {
					t.Fatalf("WorkerPanic.String() missing stack: %q", wp.String())
				}
			}()
			ForEach(parallel, 32, func(i int) {
				if i == 7 {
					panic("boom-7")
				}
				ran.Add(1)
			})
		}()
		if parallel > 1 && ran.Load() != 31 {
			t.Fatalf("parallel=%d: %d jobs ran, want 31 (all but the panicking one)", parallel, ran.Load())
		}
	}
}

// TestMapEErrorPropagation: the lowest-index error wins regardless of
// scheduling, successful results are retained, and the index is attached.
func TestMapEErrorPropagation(t *testing.T) {
	sentinel := errors.New("job failed")
	for _, parallel := range []int{1, 8} {
		got, err := MapE(parallel, 16, func(i int) (int, error) {
			if i == 3 || i == 11 {
				return 0, fmt.Errorf("%w: %d", sentinel, i)
			}
			return i + 100, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("parallel=%d: err = %v, want wrapped sentinel", parallel, err)
		}
		if !strings.Contains(err.Error(), "job 3") {
			t.Fatalf("parallel=%d: err = %v, want lowest failing index 3", parallel, err)
		}
		if got[0] != 100 || got[15] != 115 {
			t.Fatalf("parallel=%d: successful results lost: %v", parallel, got)
		}
		if got[3] != 0 {
			t.Fatalf("parallel=%d: failed index holds %d, want zero value", parallel, got[3])
		}
	}
}

// TestMapEAllJobsRun: an early error does not cancel the rest (partial
// results stay deterministic between serial and parallel runs).
func TestMapEAllJobsRun(t *testing.T) {
	var ran atomic.Int32
	_, err := MapE(4, 64, func(i int) (struct{}, error) {
		ran.Add(1)
		if i == 0 {
			return struct{}{}, errors.New("first job fails")
		}
		return struct{}{}, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran.Load() != 64 {
		t.Fatalf("%d jobs ran, want all 64", ran.Load())
	}
}

// TestParallelism: the knob normalization used by every -j consumer.
func TestParallelism(t *testing.T) {
	if got := Parallelism(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Parallelism(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Parallelism(5); got != 5 {
		t.Fatalf("Parallelism(5) = %d", got)
	}
}

// TestZeroAndNegativeN: degenerate job counts are no-ops.
func TestZeroAndNegativeN(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("job ran for n=0") })
	ForEach(4, -1, func(int) { t.Fatal("job ran for n<0") })
	if got := Map(4, 0, func(int) int { return 1 }); len(got) != 0 {
		t.Fatalf("Map n=0 returned %v", got)
	}
}
