// Package runner provides a deterministic worker pool for fanning
// independent simulation jobs out across goroutines.
//
// Every experiment driver in the harness is embarrassingly parallel: each
// (configuration, workload) simulation owns a private sim.Engine and shares
// no mutable state with its siblings. The pool exploits that while keeping
// the one property the figures depend on: results come back in submission
// order, so the output of a parallel run is bit-identical to the serial
// one at any worker count.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"dap/internal/telemetry"
)

// Pool gauges published to the process-wide telemetry registry: how much
// work has been submitted/finished and how many workers are busy right now.
// Publishing is one atomic op per transition on whole-simulation-sized
// jobs — unmeasurable against the work itself — and keeps `-serve`
// dashboards live during cmd/figures sweeps.
var (
	jobsTotal   = telemetry.Default.Counter("runner_jobs_total", "Jobs submitted to the worker pool since process start.")
	jobsDone    = telemetry.Default.Counter("runner_jobs_done", "Jobs completed by the worker pool (including panicked jobs).")
	jobsRunning = telemetry.Default.Gauge("runner_jobs_running", "Jobs currently executing.")
	workersBusy = telemetry.Default.Gauge("runner_workers_busy", "Pool workers currently alive (serial callers count as one).")
	poolsActive = telemetry.Default.Gauge("runner_pools_active", "ForEach invocations currently in flight.")
)

// Parallelism normalizes a parallelism knob: values <= 0 select
// GOMAXPROCS (the -j default), anything else is returned unchanged.
func Parallelism(parallel int) int {
	if parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// WorkerPanic wraps a panic recovered from a pool worker so it can be
// re-raised on the caller's goroutine with the worker's stack attached.
type WorkerPanic struct {
	Value any    // the original panic value
	Stack []byte // the panicking worker's stack
}

func (p *WorkerPanic) String() string {
	return fmt.Sprintf("runner: worker panic: %v\n\nworker stack:\n%s", p.Value, p.Stack)
}

// ForEach runs fn(i) for every i in [0, n) using up to parallel workers
// (<= 0 selects GOMAXPROCS; 1 runs serially on the calling goroutine).
// It returns only after every job has finished. If a job panics, the
// remaining jobs still run and the first panic (any one of them — panics
// are exceptional, not ordered) is re-raised on the caller's goroutine as
// a *WorkerPanic.
func ForEach(parallel, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	parallel = Parallelism(parallel)
	if parallel > n {
		parallel = n
	}
	jobsTotal.Add(float64(n))
	poolsActive.Add(1)
	defer poolsActive.Add(-1)
	run := func(i int) {
		jobsRunning.Add(1)
		defer func() {
			jobsRunning.Add(-1)
			jobsDone.Inc()
		}()
		fn(i)
	}
	if parallel <= 1 {
		workersBusy.Add(1)
		defer workersBusy.Add(-1)
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		panics = make([]*WorkerPanic, parallel)
	)
	work := func(w int) {
		defer wg.Done()
		defer workersBusy.Add(-1)
		defer func() {
			if r := recover(); r != nil {
				panics[w] = &WorkerPanic{Value: r, Stack: debug.Stack()}
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			run(i)
		}
	}
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		workersBusy.Add(1)
		go work(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Map runs fn(i) for every i in [0, n) across the pool and returns the
// results in index (submission) order regardless of completion order.
func Map[T any](parallel, n int, fn func(int) T) []T {
	out := make([]T, n)
	ForEach(parallel, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapE is Map for fallible jobs. All jobs run to completion even when one
// fails (so partial results are deterministic); the returned error is the
// failure with the lowest index — again independent of scheduling — with
// the index attached. The result slice always has length n, holding the
// zero value at failed indices.
func MapE[T any](parallel, n int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(parallel, n, func(i int) { out[i], errs[i] = fn(i) })
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("runner: job %d: %w", i, err)
		}
	}
	return out, nil
}
