package cpu

import (
	"testing"

	"dap/internal/mem"
	"dap/internal/sim"
	"dap/internal/workload"
)

// fixedBackend serves every read after a fixed latency and records traffic.
type fixedBackend struct {
	eng        *sim.Engine
	lat        mem.Cycle
	reads      int
	writebacks int
	prefetches int
	warmReads  int
}

func (f *fixedBackend) Read(a mem.Addr, c int, k mem.Kind, done func(mem.Cycle)) {
	if k == mem.PrefetchKind {
		f.prefetches++
	} else {
		f.reads++
	}
	f.eng.After(f.lat, func() { done(f.eng.Now()) })
}
func (f *fixedBackend) Writeback(a mem.Addr, c int)     { f.writebacks++ }
func (f *fixedBackend) WarmRead(a mem.Addr, c int)      { f.warmReads++ }
func (f *fixedBackend) WarmWriteback(a mem.Addr, c int) {}

// scripted is a hand-written access stream.
type scripted struct {
	accs []workload.Access
	i    int
}

func (s *scripted) Next() workload.Access {
	if s.i < len(s.accs) {
		a := s.accs[s.i]
		s.i++
		return a
	}
	// endless filler afterwards
	return workload.Access{Addr: mem.Addr(0x7fff0000), Gap: 1000}
}

func testCPU(t *testing.T, cfg Config, streams []workload.Stream, lat mem.Cycle) (*CPU, *fixedBackend, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	be := &fixedBackend{eng: eng, lat: lat}
	c := New(cfg, eng, be)
	c.SetStreams(streams)
	return c, be, eng
}

func smallCfg(cores int) Config {
	c := Default()
	c.Cores = cores
	c.PFDegree = 0 // most tests want deterministic traffic
	return c
}

func run(t *testing.T, c *CPU, eng *sim.Engine, target uint64) {
	t.Helper()
	c.Start(target)
	limit := eng.Now() + 100_000_000
	eng.RunWhile(func() bool { return !c.Done() && eng.Now() < limit })
	if !c.Done() {
		t.Fatal("cpu did not finish (possible deadlock)")
	}
}

func TestComputeBoundIPC(t *testing.T) {
	// Huge gaps: the core should retire at ~Width IPC.
	cfg := smallCfg(1)
	s := &scripted{}
	c, _, eng := testCPU(t, cfg, []workload.Stream{s}, 100)
	run(t, c, eng, 100_000)
	ipc := c.CoreStats()[0].IPC()
	if ipc < 3.5 || ipc > 4.01 {
		t.Fatalf("compute-bound IPC = %.2f, want ~4", ipc)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	cfg := smallCfg(1)
	// 100 dependent loads, each missing all caches (distinct lines far apart)
	var accs []workload.Access
	for i := 0; i < 100; i++ {
		accs = append(accs, workload.Access{
			Addr: mem.Addr(0x100000 + i*64*1024), Gap: 0, Dependent: true,
		})
	}
	s := &scripted{accs: accs}
	c, _, eng := testCPU(t, cfg, []workload.Stream{s}, 200)
	run(t, c, eng, 100)
	cycles := c.CoreStats()[0].Cycles
	// each load takes >= 200 cycles and they cannot overlap
	if cycles < 100*200 {
		t.Fatalf("dependent loads overlapped: %d cycles for 100 loads of 200", cycles)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	cfg := smallCfg(1)
	var accs []workload.Access
	for i := 0; i < 100; i++ {
		accs = append(accs, workload.Access{
			Addr: mem.Addr(0x100000 + i*64*1024), Gap: 0,
		})
	}
	s := &scripted{accs: accs}
	c, _, eng := testCPU(t, cfg, []workload.Stream{s}, 100)
	run(t, c, eng, 100)
	cycles := c.CoreStats()[0].Cycles
	// with a 224-entry ROB all 100 loads fit in flight: total ~ latency
	if cycles > 2000 {
		t.Fatalf("independent loads serialized: %d cycles", cycles)
	}
}

func TestROBLimitsMLP(t *testing.T) {
	cfg := smallCfg(1)
	cfg.ROB = 4 // tiny window: at most 4 loads in flight (gap 0)
	var accs []workload.Access
	for i := 0; i < 64; i++ {
		accs = append(accs, workload.Access{Addr: mem.Addr(0x100000 + i*64*1024)})
	}
	s := &scripted{accs: accs}
	c, _, eng := testCPU(t, cfg, []workload.Stream{s}, 200)
	run(t, c, eng, 64)
	cycles := c.CoreStats()[0].Cycles
	// 64 loads / 4-deep window * 220 cycles ~ 3300 minimum
	if cycles < 3000 {
		t.Fatalf("ROB window not enforced: %d cycles", cycles)
	}
}

func TestCacheHierarchyFiltersTraffic(t *testing.T) {
	cfg := smallCfg(1)
	// 1000 accesses to the same line: one backend read only
	var accs []workload.Access
	for i := 0; i < 1000; i++ {
		accs = append(accs, workload.Access{Addr: 0x4000, Gap: 1})
	}
	s := &scripted{accs: accs}
	c, be, eng := testCPU(t, cfg, []workload.Stream{s}, 100)
	run(t, c, eng, 2000)
	if be.reads != 1 {
		t.Fatalf("backend reads = %d, want 1 (caches must filter)", be.reads)
	}
	if c.CoreStats()[0].L3Misses != 1 {
		t.Fatalf("L3 misses = %d, want 1", c.CoreStats()[0].L3Misses)
	}
}

func TestDirtyEvictionsReachBackend(t *testing.T) {
	cfg := smallCfg(1)
	cfg.L1Bytes = 2 * mem.KiB // tiny caches to force eviction cascades
	cfg.L2Bytes = 4 * mem.KiB
	cfg.L3Bytes = 8 * mem.KiB
	var accs []workload.Access
	for i := 0; i < 2000; i++ {
		accs = append(accs, workload.Access{
			Addr: mem.Addr(0x100000 + (i%1000)*64), Store: true, Gap: 0,
		})
	}
	s := &scripted{accs: accs}
	c, be, eng := testCPU(t, cfg, []workload.Stream{s}, 2000)
	run(t, c, eng, 2000)
	// let outstanding fills (and their eviction cascades) settle
	eng.RunUntil(eng.Now() + 50_000)
	if be.writebacks == 0 {
		t.Fatal("dirty L3 evictions must reach the backend")
	}
}

func TestPrefetcherIssuesOnStride(t *testing.T) {
	cfg := smallCfg(1)
	cfg.PFDegree = 2
	cfg.PFDistance = 8
	var accs []workload.Access
	for i := 0; i < 500; i++ {
		accs = append(accs, workload.Access{Addr: mem.Addr(0x100000 + i*64), Gap: 8})
	}
	s := &scripted{accs: accs}
	c, be, eng := testCPU(t, cfg, []workload.Stream{s}, 3000)
	run(t, c, eng, 3000)
	if be.prefetches == 0 {
		t.Fatal("sequential stream must trigger prefetches")
	}
	// prefetching must reduce demand misses well below the line count
	if c.CoreStats()[0].L3Misses > 450 {
		t.Fatalf("L3 misses = %d; prefetcher ineffective", c.CoreStats()[0].L3Misses)
	}
}

func TestStridePrefetcherUnit(t *testing.T) {
	p := newStridePrefetcher(4, 2, 8)
	var out []mem.Addr
	// constant stride of 1 line within a region
	for i := 0; i < 4; i++ {
		out = p.observe(mem.Addr(i*64), nil)
	}
	if len(out) == 0 {
		t.Fatal("confident stride must emit prefetches")
	}
	for _, a := range out {
		if a <= mem.Addr(3*64) {
			t.Fatalf("prefetch %#x is behind the demand stream", a)
		}
	}
	// stride break resets confidence
	out = p.observe(mem.Addr(100*4096), nil)
	if len(out) != 0 {
		t.Fatal("new region must not prefetch before confidence")
	}
}

func TestPrefetcherDisabled(t *testing.T) {
	p := newStridePrefetcher(4, 0, 8)
	for i := 0; i < 10; i++ {
		if out := p.observe(mem.Addr(i*64), nil); len(out) != 0 {
			t.Fatal("degree 0 must disable prefetching")
		}
	}
}

func TestWarmPopulatesCaches(t *testing.T) {
	cfg := smallCfg(1)
	spec, _ := workload.ByName("gcc.expr")
	st := workload.NewStream(spec, workload.CoreSpacing, 1)
	eng := sim.New()
	be := &fixedBackend{eng: eng, lat: 100}
	c := New(cfg, eng, be)
	c.SetStreams([]workload.Stream{st})
	c.Warm(20000)
	if be.warmReads == 0 {
		t.Fatal("warmup must reach the backend functionally")
	}
	if be.reads != 0 {
		t.Fatal("warmup must not generate timed traffic")
	}
	if c.L3().Occupancy() == 0 {
		t.Fatal("warmup must populate the L3")
	}
}

func TestMultiCoreCompletes(t *testing.T) {
	cfg := smallCfg(4)
	specs := workload.Sensitive()[:4]
	var streams []workload.Stream
	for i, sp := range specs {
		streams = append(streams, workload.NewStream(sp, workload.CoreSpacing*mem.Addr(i+1), uint64(i+1)))
	}
	eng := sim.New()
	be := &fixedBackend{eng: eng, lat: 150}
	c := New(cfg, eng, be)
	c.SetStreams(streams)
	run(t, c, eng, 20000)
	for i, cs := range c.CoreStats() {
		if cs.Instructions != 20000 {
			t.Fatalf("core %d retired %d, want 20000", i, cs.Instructions)
		}
		if cs.IPC() <= 0 {
			t.Fatalf("core %d IPC = %v", i, cs.IPC())
		}
	}
}

func TestL3ReadMissLatencyTracked(t *testing.T) {
	cfg := smallCfg(1)
	var accs []workload.Access
	for i := 0; i < 50; i++ {
		accs = append(accs, workload.Access{Addr: mem.Addr(0x100000 + i*64*1024), Gap: 50})
	}
	s := &scripted{accs: accs}
	c, _, eng := testCPU(t, cfg, []workload.Stream{s}, 123)
	run(t, c, eng, 3000)
	cs := c.CoreStats()[0]
	if cs.L3ReadMisses == 0 {
		t.Fatal("read misses must be counted")
	}
	avg := cs.AvgL3ReadMissLatency()
	// backend latency 123 plus L3 return path 20
	if avg < 140 || avg > 160 {
		t.Fatalf("avg L3 read miss latency = %.1f, want ~143", avg)
	}
}

func TestStreamCountMismatchPanics(t *testing.T) {
	cfg := smallCfg(2)
	eng := sim.New()
	c := New(cfg, eng, &fixedBackend{eng: eng, lat: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched stream count must panic")
		}
	}()
	c.SetStreams([]workload.Stream{&scripted{}})
}

func TestPrefetcherBackwardStride(t *testing.T) {
	p := newStridePrefetcher(4, 2, 8)
	var out []mem.Addr
	base := 100 * 64
	for i := 0; i < 4; i++ {
		out = p.observe(mem.Addr(base-i*64), nil)
	}
	if len(out) == 0 {
		t.Fatal("negative strides must prefetch too")
	}
	for _, a := range out {
		if a >= mem.Addr(base-3*64) {
			t.Fatalf("backward prefetch %#x not below the stream", a)
		}
	}
}

func TestPrefetcherStrideBreakRetrains(t *testing.T) {
	p := newStridePrefetcher(4, 2, 8)
	for i := 0; i < 4; i++ {
		p.observe(mem.Addr(i*64), nil)
	}
	// break the stride: jump within the same region
	if out := p.observe(mem.Addr(30*64), nil); len(out) != 0 {
		t.Fatal("stride break must lose confidence")
	}
	// two consistent accesses at the new stride rebuild confidence
	p.observe(mem.Addr(32*64), nil)
	if out := p.observe(mem.Addr(34*64), nil); len(out) == 0 {
		t.Fatal("new stride must retrain")
	}
}

func TestPFOutstandingBound(t *testing.T) {
	cfg := smallCfg(1)
	cfg.PFDegree = 4
	cfg.PFDistance = 64
	cfg.PFOutstanding = 4
	var accs []workload.Access
	for i := 0; i < 400; i++ {
		accs = append(accs, workload.Access{Addr: mem.Addr(0x100000 + i*64), Gap: 2})
	}
	s := &scripted{accs: accs}
	eng := sim.New()
	be := &fixedBackend{eng: eng, lat: 5000} // slow: prefetches pile up
	c := New(cfg, eng, be)
	c.SetStreams([]workload.Stream{s})
	c.Start(400)
	for i := 0; i < 50000 && !c.Done(); i++ {
		if !eng.Step() {
			break
		}
		if c.cores[0].pfOut > 4 {
			t.Fatalf("outstanding prefetches %d exceed the bound", c.cores[0].pfOut)
		}
	}
}
