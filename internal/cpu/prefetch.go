package cpu

import "dap/internal/mem"

// stridePrefetcher is a multi-stream stride prefetcher (one per core). It
// tracks up to Streams independent access streams keyed by 4 KB region,
// detects a repeated line stride, and once confident emits Degree prefetch
// candidates up to Distance lines ahead of the demand stream.
type stridePrefetcher struct {
	streams  []pfStream
	degree   int
	distance int64
	issued   uint64
}

type pfStream struct {
	valid     bool
	region    mem.Addr // 4 KB-aligned region tag
	lastLine  int64
	stride    int64
	confident bool
	ahead     int64 // lines already prefetched ahead of lastLine
	lastUse   uint64
}

func newStridePrefetcher(streams, degree, distance int) *stridePrefetcher {
	if streams <= 0 {
		streams = 1
	}
	return &stridePrefetcher{
		streams:  make([]pfStream, streams),
		degree:   degree,
		distance: int64(distance),
	}
}

// observe trains on a demand access (L1 miss stream) and appends up to
// Degree prefetch line addresses to out, returning the extended slice.
func (p *stridePrefetcher) observe(addr mem.Addr, out []mem.Addr) []mem.Addr {
	if p.degree == 0 {
		return out
	}
	line := int64(addr.Line())
	region := addr &^ (4096 - 1)
	p.issued++

	// find or allocate the stream for this region (LRU victim)
	var s *pfStream
	victim, oldest := 0, ^uint64(0)
	for i := range p.streams {
		st := &p.streams[i]
		if st.valid && st.region == region {
			s = st
			break
		}
		if st.lastUse < oldest {
			victim, oldest = i, st.lastUse
		}
	}
	if s == nil {
		s = &p.streams[victim]
		*s = pfStream{valid: true, region: region, lastLine: line, lastUse: p.issued}
		return out
	}
	s.lastUse = p.issued
	d := line - s.lastLine
	if d == 0 {
		return out
	}
	switch {
	case s.stride == d:
		s.confident = true
	case s.stride != 0:
		s.confident = false
		s.ahead = 0
	}
	s.stride = d
	s.lastLine = line
	if !s.confident {
		return out
	}
	if s.ahead > 0 {
		s.ahead-- // demand consumed one prefetched line
	}
	for i := 0; i < p.degree && s.ahead < p.distance; i++ {
		s.ahead++
		target := line + s.ahead*s.stride
		if target < 0 {
			break
		}
		out = append(out, mem.Addr(target<<mem.LineShift))
	}
	return out
}
