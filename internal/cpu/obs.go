package cpu

import (
	"fmt"

	"dap/internal/obs"
)

// RegisterMetrics registers per-core IPC probes (`core<i>.ipc`) on a
// sampler. The probes read each core's lazily-updated retirement counter as
// is — deliberately NOT forcing a catch-up, since that would mutate core
// state from a sampling event and break bit-identical determinism — so the
// series reports instructions retired at event granularity: exact in total,
// with window boundaries quantized to the core's last scheduling event.
func (c *CPU) RegisterMetrics(s *obs.Sampler) {
	for i := range c.cores {
		co := c.cores[i]
		s.Util(fmt.Sprintf("core%d.ipc", i), func() uint64 { return co.fetched })
	}
}
