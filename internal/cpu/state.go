package cpu

import (
	"fmt"

	"dap/internal/ckpt"
	"dap/internal/mem"
	"dap/internal/workload"
)

// Checkpoint serialization for the processor complex. A warmup checkpoint is
// taken after functional warmup and before timed execution, so the only CPU
// state that exists is functional: the private L1/L2 and shared L3 contents,
// the per-core stride-prefetcher training state, the pending access and its
// program-order position, and the workload stream cursors. Timed-execution
// state (in-flight loads, MSHRs, outstanding prefetches, wake events) is
// asserted empty at save time and is reconstructed as empty by Build on
// restore.

// SaveState serializes the post-warmup CPU state into a checkpoint section.
// It returns an error if any core has timed state in flight (the checkpoint
// would not be a pure warmup snapshot) or a core's stream does not support
// checkpointing.
func (c *CPU) SaveState(e *ckpt.Enc) error {
	e.U32(uint32(len(c.cores)))
	c.l3.SaveState(e)
	for _, co := range c.cores {
		if len(co.inflight) != 0 || len(co.mshr) != 0 || co.pfOut != 0 || co.wakeSet {
			return fmt.Errorf("cpu: core %d has timed state in flight; checkpoint must be taken before Start", co.id)
		}
		ss, ok := co.stream.(workload.StatefulStream)
		if !ok {
			return fmt.Errorf("cpu: core %d stream %T does not support checkpointing", co.id, co.stream)
		}
		co.l1.SaveState(e)
		co.l2.SaveState(e)
		co.pf.saveState(e)
		e.U64(uint64(co.pend.Addr))
		e.Bool(co.pend.Store)
		e.Bool(co.pend.Dependent)
		e.U32(co.pend.Gap)
		e.U64(co.pendPos)
		ss.SaveState(e)
	}
	return nil
}

// LoadState restores state saved by SaveState into a freshly built CPU with
// identical configuration and attached streams.
func (c *CPU) LoadState(d *ckpt.Dec) error {
	if n := int(d.U32()); n != len(c.cores) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("cpu: checkpoint has %d cores, built %d", n, len(c.cores))
	}
	if err := c.l3.LoadState(d); err != nil {
		return fmt.Errorf("cpu: l3: %w", err)
	}
	for _, co := range c.cores {
		ss, ok := co.stream.(workload.StatefulStream)
		if !ok {
			return fmt.Errorf("cpu: core %d stream %T does not support checkpointing", co.id, co.stream)
		}
		if err := co.l1.LoadState(d); err != nil {
			return fmt.Errorf("cpu: core %d l1: %w", co.id, err)
		}
		if err := co.l2.LoadState(d); err != nil {
			return fmt.Errorf("cpu: core %d l2: %w", co.id, err)
		}
		if err := co.pf.loadState(d); err != nil {
			return fmt.Errorf("cpu: core %d prefetcher: %w", co.id, err)
		}
		co.pend.Addr = mem.Addr(d.U64())
		co.pend.Store = d.Bool()
		co.pend.Dependent = d.Bool()
		co.pend.Gap = d.U32()
		co.pendPos = d.U64()
		if err := ss.LoadState(d); err != nil {
			return fmt.Errorf("cpu: core %d stream: %w", co.id, err)
		}
	}
	return d.Err()
}

// saveState serializes the prefetcher's training state.
func (p *stridePrefetcher) saveState(e *ckpt.Enc) {
	e.U32(uint32(len(p.streams)))
	e.U64(p.issued)
	for i := range p.streams {
		s := &p.streams[i]
		e.Bool(s.valid)
		e.U64(uint64(s.region))
		e.I64(s.lastLine)
		e.I64(s.stride)
		e.Bool(s.confident)
		e.I64(s.ahead)
		e.U64(s.lastUse)
	}
}

// loadState restores prefetcher training state saved by saveState.
func (p *stridePrefetcher) loadState(d *ckpt.Dec) error {
	if n := int(d.U32()); n != len(p.streams) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("prefetcher has %d streams, checkpoint %d", len(p.streams), n)
	}
	p.issued = d.U64()
	for i := range p.streams {
		s := &p.streams[i]
		s.valid = d.Bool()
		s.region = mem.Addr(d.U64())
		s.lastLine = d.I64()
		s.stride = d.I64()
		s.confident = d.Bool()
		s.ahead = d.I64()
		s.lastUse = d.U64()
	}
	return d.Err()
}
