// Package cpu models the processor side of the system: dynamically
// scheduled cores whose memory-level parallelism is bounded by a 224-entry
// reorder buffer, private L1/L2 caches, a shared inclusive L3, and an
// aggressive multi-stream stride prefetcher filling L2 and L3 — the
// configuration of Section V of the paper.
//
// The core model is an ROB-occupancy model: a core retires up to Width
// instructions per cycle, may fetch at most ROB instructions beyond the
// oldest incomplete load, issues loads and stores from its workload stream
// at the stream's configured intensity, and stalls when the window fills.
// Dependent (pointer-chase) loads additionally serialize with one another.
// This reproduces exactly the property every experiment in the paper
// depends on: how much bandwidth demand a core can expose.
package cpu

import (
	"dap/internal/check"
	"dap/internal/mem"
)

// Config collects the core and SRAM-hierarchy parameters.
type Config struct {
	Cores int
	ROB   int // reorder-buffer entries (fetch window past oldest load)
	Width int // retire width, instructions/cycle

	L1Bytes, L1Ways int
	L2Bytes, L2Ways int
	L3Bytes, L3Ways int

	L1Lat, L2Lat, L3Lat mem.Cycle // round-trip load-to-use latencies

	// Prefetcher: Streams tracked per core, Degree lines issued per
	// trigger, Distance lines of lookahead, PFOutstanding outstanding
	// prefetch fills per core (the prefetch request buffer). Degree 0
	// disables it.
	PFStreams, PFDegree, PFDistance, PFOutstanding int
}

// Validate checks the core and cache-geometry parameters, reporting every
// problem at once as check.Errors.
func (c *Config) Validate() error {
	var errs check.Collector
	errs.Positive("Cores", c.Cores)
	errs.Positive("ROB", c.ROB)
	errs.Positive("Width", c.Width)
	level := func(name string, bytes, ways int) {
		if ways <= 0 {
			errs.Addf(name+"Ways", ways, "must be positive")
			return
		}
		if bytes < mem.LineBytes*ways {
			errs.Addf(name+"Bytes", bytes, "smaller than one %d B line per way", mem.LineBytes)
		}
	}
	level("L1", c.L1Bytes, c.L1Ways)
	level("L2", c.L2Bytes, c.L2Ways)
	level("L3", c.L3Bytes, c.L3Ways)
	errs.NonNegative("PFStreams", c.PFStreams)
	errs.NonNegative("PFDegree", c.PFDegree)
	errs.NonNegative("PFDistance", c.PFDistance)
	errs.NonNegative("PFOutstanding", c.PFOutstanding)
	return errs.Err()
}

// Default returns the paper's eight-core Skylake-like configuration.
func Default() Config {
	return Config{
		Cores: 8, ROB: 224, Width: 4,
		L1Bytes: 32 * mem.KiB, L1Ways: 8,
		L2Bytes: 256 * mem.KiB, L2Ways: 8,
		L3Bytes: 8 * mem.MiB, L3Ways: 16,
		L1Lat: 3, L2Lat: 11, L3Lat: 20,
		PFStreams: 16, PFDegree: 4, PFDistance: 32, PFOutstanding: 32,
	}
}

// Default16 is the sixteen-core scaling configuration (Section VI-A.5):
// 16 MB L3 at the same sixteen-way associativity.
func Default16() Config {
	c := Default()
	c.Cores = 16
	c.L3Bytes = 16 * mem.MiB
	return c
}

// Backend is the memory system below the L3: a memory-side cache controller
// backed by main memory (or main memory alone). Read's done callback fires
// when the 64-byte line is available at the L3 boundary. Warm* are
// functional (timing-free) variants used to pre-populate state.
type Backend interface {
	Read(addr mem.Addr, core int, kind mem.Kind, done func(mem.Cycle))
	Writeback(addr mem.Addr, core int)
	WarmRead(addr mem.Addr, core int)
	WarmWriteback(addr mem.Addr, core int)
}
