package cpu

import (
	"fmt"
	"strings"

	"dap/internal/cache"
	"dap/internal/mem"
	"dap/internal/sim"
	"dap/internal/stats"
	"dap/internal/workload"
)

// CPU is the processor complex: cores, private L1/L2, shared inclusive L3.
type CPU struct {
	cfg     Config
	eng     *sim.Engine
	backend Backend
	l3      *cache.Cache
	cores   []*core

	startAt   mem.Cycle
	remaining int
	halted    bool
}

// New builds the processor complex. Streams are attached with SetStreams.
func New(cfg Config, eng *sim.Engine, backend Backend) *CPU {
	c := &CPU{cfg: cfg, eng: eng, backend: backend}
	c.l3 = cache.NewBytes(cfg.L3Bytes, cfg.L3Ways, cache.LRU)
	for i := 0; i < cfg.Cores; i++ {
		co := &core{
			cpu: c, id: i,
			l1: cache.NewBytes(cfg.L1Bytes, cfg.L1Ways, cache.LRU),
			l2: cache.NewBytes(cfg.L2Bytes, cfg.L2Ways, cache.LRU),
			pf: newStridePrefetcher(cfg.PFStreams, cfg.PFDegree, cfg.PFDistance),
			// Pre-size the miss-tracking structures for their steady-state
			// population (bounded by the ROB plus prefetch depth), so a
			// fresh core's warm-up does not grow them one doubling at a
			// time.
			mshr:     make(map[mem.Addr]*missEntry, cfg.ROB),
			inflight: make([]uint64, 0, cfg.ROB+1),
		}
		c.cores = append(c.cores, co)
	}
	return c
}

// L3 exposes the shared cache (the harness borrows ways for the SRAM tag
// cache / DBC by constructing the CPU with fewer L3 ways instead).
func (c *CPU) L3() *cache.Cache { return c.l3 }

// SetStreams attaches one workload stream per core.
func (c *CPU) SetStreams(streams []workload.Stream) {
	if len(streams) != len(c.cores) {
		panic("cpu: stream count must equal core count")
	}
	for i, s := range streams {
		c.cores[i].stream = s
		c.cores[i].loadFirst()
	}
}

// Warm replays n accesses per core through the cache hierarchy and backend
// functionally (no timing) to pre-populate all state. Cores are interleaved
// in small chunks so shared structures (L3, memory-side cache) end up in a
// realistic steady-state mix rather than dominated by the last core warmed.
func (c *CPU) Warm(n int) {
	const chunk = 64
	for done := 0; done < n; done += chunk {
		for _, co := range c.cores {
			for i := 0; i < chunk && done+i < n; i++ {
				co.warmExecute(co.pend)
				co.loadNext()
			}
		}
	}
}

// Start begins timed execution: every core runs until it has fetched target
// instructions; cores that finish early keep running (as in the paper).
func (c *CPU) Start(target uint64) {
	c.startAt = c.eng.Now()
	c.remaining = len(c.cores)
	c.halted = false
	for _, co := range c.cores {
		co.target = target
		co.fetched = 0
		co.fetchedAt = c.eng.Now()
		co.pendPos = uint64(co.pend.Gap)
		co.finished = false
		co.st = stats.CoreStats{}
		co.advance()
	}
}

// Done reports whether every core reached its target.
func (c *CPU) Done() bool { return c.remaining == 0 }

// Halt stops issuing new accesses on every core. Outstanding loads,
// prefetches and wake events keep draining through the engine; once
// Quiesced reports true the cores are idle and a new measured interval can
// begin with Start (which clears the halt). Used by SMARTS-style interval
// sampling to end a measured interval without running cores to a target.
func (c *CPU) Halt() { c.halted = true }

// Quiesced reports whether every core has fully drained: no in-flight
// loads, no outstanding MSHR fills or prefetches, and no pending wake
// events. Only meaningful after Halt.
func (c *CPU) Quiesced() bool {
	for _, co := range c.cores {
		if len(co.inflight) != 0 || len(co.mshr) != 0 || co.pfOut != 0 || co.wakeSet {
			return false
		}
	}
	return true
}

// ProgressFingerprint returns a value that changes whenever the slowest
// unfinished core fetches an instruction — the forward-progress signal the
// engine watchdog samples. Tracking the minimum over unfinished cores (not
// the total) catches a single wedged core even while its neighbours keep
// retiring. Returns ^0 once every core has finished.
func (c *CPU) ProgressFingerprint() uint64 {
	min := ^uint64(0)
	for _, co := range c.cores {
		if !co.finished && co.fetched < min {
			min = co.fetched
		}
	}
	return min
}

// Snapshot formats per-core progress and queue state for stall diagnostics:
// fetched/target instructions, in-flight loads, outstanding MSHR fills and
// prefetches, and whether issue is blocked on a dependent load.
func (c *CPU) Snapshot() string {
	var b strings.Builder
	for _, co := range c.cores {
		fmt.Fprintf(&b, "  core %2d: fetched %d/%d, inflight %d, mshr %d, pfOut %d",
			co.id, co.fetched, co.target, len(co.inflight), len(co.mshr), co.pfOut)
		if co.waitDep {
			b.WriteString(", blocked on dependent load")
		}
		if co.finished {
			b.WriteString(", finished")
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// AuditInvariants checks the structural invariants of the core model: the
// in-flight load window never exceeds the ROB, fetch never passes the
// pending access, and the prefetch buffer accounting stays in bounds. It
// returns a description of the first violation, or nil.
func (c *CPU) AuditInvariants() error {
	pfMax := c.cfg.PFOutstanding
	if pfMax <= 0 {
		pfMax = 32
	}
	for _, co := range c.cores {
		if len(co.inflight) > c.cfg.ROB+1 {
			return fmt.Errorf("core %d: %d in-flight loads exceed the %d-entry ROB", co.id, len(co.inflight), c.cfg.ROB)
		}
		if co.fetched > co.pendPos+1 {
			return fmt.Errorf("core %d: fetched %d passed the pending access at %d", co.id, co.fetched, co.pendPos)
		}
		if co.pfOut < 0 || co.pfOut > pfMax {
			return fmt.Errorf("core %d: outstanding prefetches %d out of [0, %d]", co.id, co.pfOut, pfMax)
		}
	}
	return nil
}

// CoreStats returns a copy of the per-core statistics.
func (c *CPU) CoreStats() []stats.CoreStats {
	out := make([]stats.CoreStats, len(c.cores))
	for i, co := range c.cores {
		out[i] = co.st
		if !co.finished {
			out[i].Instructions = co.fetched
			out[i].Cycles = c.eng.Now() - c.startAt
		}
	}
	return out
}

const noLimit = ^uint64(0)

// core implements the ROB-occupancy model described in the package comment.
type core struct {
	cpu    *CPU
	id     int
	stream workload.Stream
	l1, l2 *cache.Cache
	pf     *stridePrefetcher

	pend    workload.Access
	pendPos uint64 // absolute instruction index of pend

	fetched   uint64
	fetchedAt mem.Cycle
	inflight  []uint64 // program-order positions of incomplete loads
	depOut    bool     // a dependent (chase) load is outstanding
	waitDep   bool     // issue stalled on the outstanding dependent load
	wakeSet   bool     // a rate-limit wake event is scheduled

	target   uint64
	finished bool

	lastIssue   mem.Cycle
	issuedCycle int // accesses issued in the current cycle

	st    stats.CoreStats
	pfBuf []mem.Addr
	pfOut int // outstanding prefetch fills
	// mshr merges outstanding misses per line: secondary misses (demand or
	// prefetch) attach to the primary instead of issuing duplicate reads.
	mshr map[mem.Addr]*missEntry

	// freeMiss and freeFill recycle the per-miss records (missEntry, and
	// the fillOp continuation handed to the backend), so the steady-state
	// miss path allocates nothing. Per-core LIFO free lists: each core
	// lives on one engine goroutine, so recycling order is deterministic.
	freeMiss []*missEntry
	freeFill []*fillOp
}

// missEntry tracks one outstanding line fill and its merged waiters.
type missEntry struct {
	waiters []missWaiter
	store   bool // some waiter stores (line installs dirty)
}

// missWaiter is a load blocked on an outstanding fill.
type missWaiter struct {
	pos       uint64
	dependent bool
	issued    mem.Cycle
}

// fillOp is the pooled continuation for one backend read: cb is the method
// value bound to complete, allocated once when the record is first created
// and reused for every subsequent fill, so handing the backend a
// func(mem.Cycle) costs no allocation in steady state.
type fillOp struct {
	co   *core
	addr mem.Addr
	pf   bool // a prefetch fill (decrements pfOut on completion)
	cb   func(mem.Cycle)
}

// complete releases the record before dispatching: the fields are copied to
// locals, so the op can be reused by any read issued downstream of
// fillArrived (load completion → advance → execute → new miss).
func (f *fillOp) complete(t mem.Cycle) {
	co, addr, pf := f.co, f.addr, f.pf
	co.freeFill = append(co.freeFill, f)
	if pf {
		co.pfOut--
	}
	co.fillArrived(addr, t)
}

// missChunk is how many pooled miss records (missEntry, fillOp) an empty
// free list allocates at once: one block per chunk instead of one object
// per outstanding miss while a fresh core ramps to its steady-state depth.
const missChunk = 32

func (co *core) getFill(addr mem.Addr, pf bool) *fillOp {
	var f *fillOp
	if n := len(co.freeFill); n > 0 {
		f = co.freeFill[n-1]
		co.freeFill = co.freeFill[:n-1]
	} else {
		blk := make([]fillOp, missChunk)
		for i := missChunk - 1; i >= 1; i-- {
			co.freeFill = append(co.freeFill, &blk[i])
		}
		f = &blk[0]
	}
	if f.cb == nil {
		f.cb = f.complete // bound once per record, on its first use
	}
	f.co, f.addr, f.pf = co, addr, pf
	return f
}

func (co *core) getMiss() *missEntry {
	n := len(co.freeMiss)
	if n == 0 {
		blk := make([]missEntry, missChunk)
		for i := missChunk - 1; i >= 1; i-- {
			co.freeMiss = append(co.freeMiss, &blk[i])
		}
		return &blk[0]
	}
	e := co.freeMiss[n-1]
	co.freeMiss = co.freeMiss[:n-1]
	return e // reset on put; waiters keeps its capacity
}

func (co *core) putMiss(e *missEntry) {
	e.waiters = e.waiters[:0]
	e.store = false
	co.freeMiss = append(co.freeMiss, e)
}

// coreWake resumes a rate-limited core (the typed, allocation-free form of
// the wake closure advance used to capture).
func coreWake(ctx any, _ uint64, _ mem.Cycle) {
	co := ctx.(*core)
	co.wakeSet = false
	co.advance()
}

// coreCompleteLoad completes the load encoded in v: bit 0 is the dependent
// flag, the rest is the program-order position (see packLoad).
func coreCompleteLoad(ctx any, v uint64, _ mem.Cycle) {
	ctx.(*core).completeLoad(v>>1, v&1 != 0)
}

// packLoad encodes a load's identity into the AtArg payload word.
func packLoad(pos uint64, dependent bool) uint64 {
	v := pos << 1
	if dependent {
		v |= 1
	}
	return v
}

func (co *core) loadFirst() {
	co.pend = co.stream.Next()
	co.pendPos = uint64(co.pend.Gap)
}

func (co *core) loadNext() {
	a := co.stream.Next()
	co.pendPos += 1 + uint64(a.Gap)
	co.pend = a
}

func (co *core) windowLimit() uint64 {
	if len(co.inflight) == 0 {
		return noLimit
	}
	return co.inflight[0] + uint64(co.cpu.cfg.ROB)
}

// catchUp advances the fetch counter linearly to now, bounded by the pending
// access position and the ROB window. Between events the window limit is
// constant, so the linear model is exact.
func (co *core) catchUp() {
	now := co.cpu.eng.Now()
	elapsed := uint64(now - co.fetchedAt)
	can := co.fetched + elapsed*uint64(co.cpu.cfg.Width)
	if can < co.fetched { // overflow guard
		can = noLimit
	}
	tgt := co.pendPos
	if l := co.windowLimit(); l < tgt {
		tgt = l
	}
	if can > tgt {
		can = tgt
	}
	if can > co.fetched {
		co.fetched = can
	}
	co.fetchedAt = now
	co.checkFinished()
}

func (co *core) checkFinished() {
	if !co.finished && co.fetched >= co.target && co.target > 0 {
		co.finished = true
		co.st.Instructions = co.target
		co.st.Cycles = co.cpu.eng.Now() - co.cpu.startAt
		co.cpu.remaining--
	}
}

// advance is the core's event handler: fetch toward the next access, issue
// it when reached, repeat; otherwise arrange to be woken.
func (co *core) advance() {
	if co.cpu.halted {
		return
	}
	eng := co.cpu.eng
	for {
		co.catchUp()
		if co.fetched < co.pendPos {
			limit := co.windowLimit()
			if co.fetched >= limit {
				return // window full: a load completion will re-advance
			}
			tgt := co.pendPos
			if limit < tgt {
				tgt = limit
			}
			w := uint64(co.cpu.cfg.Width)
			dt := (tgt - co.fetched + w - 1) / w
			if !co.wakeSet {
				co.wakeSet = true
				eng.AfterArg(mem.Cycle(dt), coreWake, co, 0)
			}
			return
		}
		// the pending access is fetchable now; it must also fit in the
		// ROB window (its slot is pendPos, bounded by oldest+ROB)
		if co.pendPos >= co.windowLimit() {
			return // window full: a load completion will re-advance
		}
		if co.pend.Dependent && co.depOut {
			co.waitDep = true
			return
		}
		// cap memory issue rate at the pipeline width per cycle
		if now := eng.Now(); now != co.lastIssue {
			co.lastIssue, co.issuedCycle = now, 0
		} else if co.issuedCycle >= co.cpu.cfg.Width {
			if !co.wakeSet {
				co.wakeSet = true
				eng.AfterArg(1, coreWake, co, 0)
			}
			return
		}
		co.issuedCycle++
		a := co.pend
		pos := co.pendPos
		co.fetched = pos + 1 // the access instruction itself retires
		co.loadNext()
		co.execute(a, pos)
		co.checkFinished()
	}
}

// completeLoad removes a finished load from the window and resumes fetch.
func (co *core) completeLoad(pos uint64, dependent bool) {
	co.catchUp() // account progress under the old window limit first
	for i, p := range co.inflight {
		if p == pos {
			co.inflight = append(co.inflight[:i], co.inflight[i+1:]...)
			break
		}
	}
	if dependent {
		co.depOut = false
		co.waitDep = false
	}
	co.advance()
}

// execute performs one memory access against the hierarchy.
func (co *core) execute(a workload.Access, pos uint64) {
	cpu := co.cpu
	eng := cpu.eng
	addr := a.Addr

	// L1
	if l := co.l1.Lookup(addr); l.Ok() {
		if a.Store {
			l.MarkDirty()
		}
		return // L1 hits are free in this model
	}

	// train the prefetcher on the L1 miss stream. pfBuf is handed straight
	// to issuePrefetches below — nothing between observe and that call
	// reenters the core (backend reads only enqueue; completions fire from
	// the engine loop), so no defensive copy is needed.
	co.pfBuf = co.pf.observe(addr, co.pfBuf[:0])

	isLoad := !a.Store

	switch {
	case co.l2.Lookup(addr).Ok():
		co.installL1(addr, a.Store)
		co.trackLoad(isLoad, a.Dependent, pos, cpu.cfg.L2Lat)
	case cpu.l3.Lookup(addr).Ok():
		co.installL2(addr, false)
		co.installL1(addr, a.Store)
		co.trackLoad(isLoad, a.Dependent, pos, cpu.cfg.L3Lat)
	default:
		issued := eng.Now()
		if isLoad {
			co.st.L3ReadMisses++
			co.inflight = append(co.inflight, pos)
			if a.Dependent {
				co.depOut = true
			}
		}
		if e, pending := co.mshr[addr]; pending {
			// secondary miss: merge into the outstanding fill
			e.store = e.store || a.Store
			if isLoad {
				e.waiters = append(e.waiters, missWaiter{pos: pos, dependent: a.Dependent, issued: issued})
			}
			break
		}
		co.st.L3Misses++
		e := co.getMiss()
		e.store = a.Store
		if isLoad {
			e.waiters = append(e.waiters, missWaiter{pos: pos, dependent: a.Dependent, issued: issued})
		}
		co.mshr[addr] = e
		cpu.backend.Read(addr, co.id, mem.ReadKind, co.getFill(addr, false).cb)
	}
	co.issuePrefetches(co.pfBuf)
}

// trackLoad records an in-window load serviced by a private cache level and
// schedules its completion lat cycles out.
func (co *core) trackLoad(isLoad, dependent bool, pos uint64, lat mem.Cycle) {
	if !isLoad {
		return
	}
	co.inflight = append(co.inflight, pos)
	if dependent {
		co.depOut = true
	}
	co.cpu.eng.AfterArg(lat, coreCompleteLoad, co, packLoad(pos, dependent))
}

// fillArrived completes an outstanding miss: install the line and release
// every merged waiter.
func (co *core) fillArrived(addr mem.Addr, t mem.Cycle) {
	cpu := co.cpu
	e := co.mshr[addr]
	delete(co.mshr, addr)
	co.fillFromMemory(addr, e != nil && e.store)
	if e == nil {
		return
	}
	for _, w := range e.waiters {
		co.st.L3ReadMissLatSum += t - w.issued + cpu.cfg.L3Lat
		co.st.L3MissLat.Add(uint64(t - w.issued + cpu.cfg.L3Lat))
		cpu.eng.AfterArg(cpu.cfg.L3Lat, coreCompleteLoad, co, packLoad(w.pos, w.dependent))
	}
	co.putMiss(e)
}

// fillFromMemory installs a returned line into L3, L2 and L1.
func (co *core) fillFromMemory(addr mem.Addr, store bool) {
	co.installL3(addr)
	co.installL2(addr, false)
	co.installL1(addr, store)
}

func (co *core) issuePrefetches(cands []mem.Addr) {
	cpu := co.cpu
	max := cpu.cfg.PFOutstanding
	if max <= 0 {
		max = 32
	}
	for _, p := range cands {
		if co.pfOut >= max {
			return
		}
		if co.l2.Probe(p).Ok() || cpu.l3.Probe(p).Ok() {
			continue
		}
		if _, dup := co.mshr[p]; dup {
			continue
		}
		co.mshr[p] = co.getMiss()
		co.pfOut++
		cpu.backend.Read(p, co.id, mem.PrefetchKind, co.getFill(p, true).cb)
	}
}

// installL1 inserts into L1; a dirty victim marks the (inclusive) L2 copy.
func (co *core) installL1(addr mem.Addr, dirty bool) {
	if l := co.l1.Probe(addr); l.Ok() {
		if dirty {
			l.MarkDirty()
		}
		return
	}
	ev := co.l1.Insert(addr, dirty)
	if ev.Valid && ev.Dirty {
		si, _ := co.l1.Index(addr)
		va := co.l1.LineAddr(si, ev.Tag)
		if l := co.l2.Probe(va); l.Ok() {
			l.MarkDirty()
		} else if l3 := co.cpu.l3.Probe(va); l3.Ok() {
			l3.MarkDirty()
		} else {
			co.cpu.backend.Writeback(va, co.id)
		}
	}
}

// installL2 inserts into L2; victims invalidate L1 and dirty data settles in
// the (inclusive) L3 copy.
func (co *core) installL2(addr mem.Addr, dirty bool) {
	if l := co.l2.Probe(addr); l.Ok() {
		if dirty {
			l.MarkDirty()
		}
		return
	}
	ev := co.l2.Insert(addr, dirty)
	if !ev.Valid {
		return
	}
	si, _ := co.l2.Index(addr)
	va := co.l2.LineAddr(si, ev.Tag)
	d := ev.Dirty
	if l1, ok := co.l1.Invalidate(va); ok && l1.Dirty {
		d = true
	}
	if d {
		if l3 := co.cpu.l3.Probe(va); l3.Ok() {
			l3.MarkDirty()
		} else {
			co.cpu.backend.Writeback(va, co.id)
		}
	}
}

// installL3 inserts into the shared L3; victims back-invalidate the owning
// core's private caches and dirty lines are written back below.
func (co *core) installL3(addr mem.Addr) {
	cpu := co.cpu
	if cpu.l3.Probe(addr).Ok() {
		return
	}
	ev := cpu.l3.Insert(addr, false)
	if !ev.Valid {
		return
	}
	si, _ := cpu.l3.Index(addr)
	va := cpu.l3.LineAddr(si, ev.Tag)
	dirty := ev.Dirty
	if owner := ownerOf(va); owner >= 0 && owner < len(cpu.cores) {
		oc := cpu.cores[owner]
		if l1, ok := oc.l1.Invalidate(va); ok && l1.Dirty {
			dirty = true
		}
		if l2, ok := oc.l2.Invalidate(va); ok && l2.Dirty {
			dirty = true
		}
	}
	if dirty {
		cpu.backend.Writeback(va, co.id)
	}
}

// ownerOf maps a core-private address back to its core index.
func ownerOf(a mem.Addr) int { return int(a/workload.CoreSpacing) - 1 }

// warmExecute is the functional (timing-free) twin of execute.
func (co *core) warmExecute(a workload.Access) {
	addr := a.Addr
	if l := co.l1.Lookup(addr); l.Ok() {
		if a.Store {
			l.MarkDirty()
		}
		return
	}
	co.pfBuf = co.pf.observe(addr, co.pfBuf[:0]) // keep the prefetcher trained
	if co.l2.Lookup(addr).Ok() {
		co.installL1w(addr, a.Store)
		return
	}
	if co.cpu.l3.Lookup(addr).Ok() {
		co.installL2w(addr)
		co.installL1w(addr, a.Store)
		return
	}
	co.cpu.backend.WarmRead(addr, co.id)
	co.installL3w(addr)
	co.installL2w(addr)
	co.installL1w(addr, a.Store)
}

func (co *core) installL1w(addr mem.Addr, dirty bool) {
	ev := co.l1.Insert(addr, dirty)
	if ev.Valid && ev.Dirty {
		si, _ := co.l1.Index(addr)
		va := co.l1.LineAddr(si, ev.Tag)
		if l := co.l2.Probe(va); l.Ok() {
			l.MarkDirty()
		} else if l3 := co.cpu.l3.Probe(va); l3.Ok() {
			l3.MarkDirty()
		} else {
			co.cpu.backend.WarmWriteback(va, co.id)
		}
	}
}

func (co *core) installL2w(addr mem.Addr) {
	ev := co.l2.Insert(addr, false)
	if !ev.Valid {
		return
	}
	si, _ := co.l2.Index(addr)
	va := co.l2.LineAddr(si, ev.Tag)
	d := ev.Dirty
	if l1, ok := co.l1.Invalidate(va); ok && l1.Dirty {
		d = true
	}
	if d {
		if l3 := co.cpu.l3.Probe(va); l3.Ok() {
			l3.MarkDirty()
		} else {
			co.cpu.backend.WarmWriteback(va, co.id)
		}
	}
}

func (co *core) installL3w(addr mem.Addr) {
	cpu := co.cpu
	ev := cpu.l3.Insert(addr, false)
	if !ev.Valid {
		return
	}
	si, _ := cpu.l3.Index(addr)
	va := cpu.l3.LineAddr(si, ev.Tag)
	dirty := ev.Dirty
	if owner := ownerOf(va); owner >= 0 && owner < len(cpu.cores) {
		oc := cpu.cores[owner]
		if l1, ok := oc.l1.Invalidate(va); ok && l1.Dirty {
			dirty = true
		}
		if l2, ok := oc.l2.Invalidate(va); ok && l2.Dirty {
			dirty = true
		}
	}
	if dirty {
		cpu.backend.WarmWriteback(va, co.id)
	}
}
