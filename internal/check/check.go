// Package check provides the typed configuration diagnostics used by every
// Validate() pass in the simulator. A validation walks a configuration,
// collects one ConfigError per defective field, and returns them all at once
// so that a bad parameter sweep point reports every problem in a single
// round trip instead of failing one panic at a time.
package check

import (
	"fmt"
	"strings"
)

// ConfigError describes one invalid configuration field.
type ConfigError struct {
	Field  string // dotted path, e.g. "mainmem.Channels"
	Value  any    // the offending value
	Reason string // why it is invalid
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("%s = %v: %s", e.Field, e.Value, e.Reason)
}

// Errors is a non-empty list of configuration errors.
type Errors []*ConfigError

func (es Errors) Error() string {
	if len(es) == 1 {
		return "invalid config: " + es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invalid config (%d problems):", len(es))
	for _, e := range es {
		b.WriteString("\n  - ")
		b.WriteString(e.Error())
	}
	return b.String()
}

// Collector accumulates ConfigErrors during a Validate() walk. The zero
// value is ready to use.
type Collector struct {
	errs Errors
}

// Addf records one invalid field. The reason may use Printf verbs.
func (c *Collector) Addf(field string, value any, reason string, args ...any) {
	if len(args) > 0 {
		reason = fmt.Sprintf(reason, args...)
	}
	c.errs = append(c.errs, &ConfigError{Field: field, Value: value, Reason: reason})
}

// Sub merges a nested Validate() result, prefixing its field paths.
// Non-ConfigError errors are wrapped as a single entry under the prefix.
func (c *Collector) Sub(prefix string, err error) {
	switch e := err.(type) {
	case nil:
	case Errors:
		for _, ce := range e {
			c.errs = append(c.errs, &ConfigError{
				Field: prefix + "." + ce.Field, Value: ce.Value, Reason: ce.Reason,
			})
		}
	case *ConfigError:
		c.errs = append(c.errs, &ConfigError{
			Field: prefix + "." + e.Field, Value: e.Value, Reason: e.Reason,
		})
	default:
		c.errs = append(c.errs, &ConfigError{Field: prefix, Value: "", Reason: err.Error()})
	}
}

// Err returns the collected errors, or nil when the configuration is valid.
func (c *Collector) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs
}

// Positive records an error unless v > 0.
func (c *Collector) Positive(field string, v int) {
	if v <= 0 {
		c.Addf(field, v, "must be positive")
	}
}

// NonNegative records an error unless v >= 0.
func (c *Collector) NonNegative(field string, v int) {
	if v < 0 {
		c.Addf(field, v, "must not be negative")
	}
}

// PowerOfTwo records an error unless v is a positive power of two.
func (c *Collector) PowerOfTwo(field string, v int) {
	if v <= 0 || v&(v-1) != 0 {
		c.Addf(field, v, "must be a positive power of two")
	}
}
