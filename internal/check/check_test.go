package check

import (
	"errors"
	"strings"
	"testing"
)

func TestCollectorEmpty(t *testing.T) {
	var c Collector
	if err := c.Err(); err != nil {
		t.Fatalf("empty collector returned %v", err)
	}
}

func TestCollectorAddf(t *testing.T) {
	var c Collector
	c.Addf("Channels", 0, "must be positive")
	err := c.Err()
	if err == nil {
		t.Fatal("expected an error")
	}
	var es Errors
	if !errors.As(err, &es) || len(es) != 1 {
		t.Fatalf("expected one ConfigError, got %v", err)
	}
	if es[0].Field != "Channels" || es[0].Value != 0 {
		t.Fatalf("bad error: %+v", es[0])
	}
	if !strings.Contains(err.Error(), "Channels = 0: must be positive") {
		t.Fatalf("unhelpful message: %q", err.Error())
	}
}

func TestCollectorSubPrefixes(t *testing.T) {
	var inner Collector
	inner.Positive("Banks", -1)
	inner.PowerOfTwo("RowBytes", 3)

	var outer Collector
	outer.Sub("mainmem", inner.Err())
	err := outer.Err()
	var es Errors
	if !errors.As(err, &es) || len(es) != 2 {
		t.Fatalf("expected two errors, got %v", err)
	}
	if es[0].Field != "mainmem.Banks" || es[1].Field != "mainmem.RowBytes" {
		t.Fatalf("prefixes not applied: %v", err)
	}
	if !strings.Contains(err.Error(), "2 problems") {
		t.Fatalf("multi-error header missing: %q", err.Error())
	}
}

func TestCollectorSubNil(t *testing.T) {
	var c Collector
	c.Sub("cpu", nil)
	if err := c.Err(); err != nil {
		t.Fatalf("nil sub-error produced %v", err)
	}
}

func TestCollectorSubForeignError(t *testing.T) {
	var c Collector
	c.Sub("dap", errors.New("boom"))
	var es Errors
	if err := c.Err(); !errors.As(err, &es) || es[0].Field != "dap" || es[0].Reason != "boom" {
		t.Fatalf("foreign error not wrapped: %v", c.Err())
	}
}

func TestHelpers(t *testing.T) {
	var c Collector
	c.Positive("a", 1)
	c.NonNegative("b", 0)
	c.PowerOfTwo("c", 64)
	if err := c.Err(); err != nil {
		t.Fatalf("valid values flagged: %v", err)
	}
	c.Positive("a", 0)
	c.NonNegative("b", -2)
	c.PowerOfTwo("c", 48)
	var es Errors
	if err := c.Err(); !errors.As(err, &es) || len(es) != 3 {
		t.Fatalf("expected three errors, got %v", c.Err())
	}
}
