package mem

import "testing"

// TestPoolReusesRecords pins the free-list behaviour the hot path relies
// on: Put-then-Get hands back the same record (LIFO), and the record comes
// back zeroed no matter what the previous owner left in it.
func TestPoolReusesRecords(t *testing.T) {
	var p RequestPool
	a := p.Get()
	a.Addr, a.Kind, a.Core = 0x1000, WritebackKind, 3
	a.Issued, a.Burst = 42, 3
	a.Done = func(Cycle) {}
	a.OnIssue = func(Cycle) {}
	p.Put(a)

	b := p.Get()
	if b != a {
		t.Fatalf("Get after Put returned a fresh record, want the freed one reused")
	}
	if b.Addr != 0 || b.Kind != 0 || b.Core != 0 || b.Issued != 0 || b.Burst != 0 || b.Done != nil || b.OnIssue != nil {
		t.Fatalf("reused record not zeroed: %+v", *b)
	}
	p.Put(b)
}

// TestPoolLIFOOrder pins deterministic recycling: records come back in
// reverse order of their Puts, so a replayed simulation sees the same
// pointer-to-request assignment every run.
func TestPoolLIFOOrder(t *testing.T) {
	var p RequestPool
	r1, r2, r3 := p.Get(), p.Get(), p.Get()
	p.Put(r1)
	p.Put(r2)
	p.Put(r3)
	if g := p.Get(); g != r3 {
		t.Fatalf("first Get = %p, want last-freed %p", g, r3)
	}
	if g := p.Get(); g != r2 {
		t.Fatalf("second Get = %p, want %p", g, r2)
	}
	if g := p.Get(); g != r1 {
		t.Fatalf("third Get = %p, want %p", g, r1)
	}
}

// TestPoolGetAllocsOnlyWhenEmpty: a warm pool's Get/Put cycle is
// allocation-free; only a Get on an empty free list allocates the record.
func TestPoolGetAllocsOnlyWhenEmpty(t *testing.T) {
	if PoolDebug {
		t.Skip("debug mode tracks records in maps; alloc-free only applies to the release build")
	}
	var p RequestPool
	p.Put(p.Get()) // warm: one record in the free list, Put's append sized
	if a := testing.AllocsPerRun(100, func() {
		r := p.Get()
		r.Addr = 0x40
		p.Put(r)
	}); a != 0 {
		t.Fatalf("warm Get/Put allocates %.1f times per cycle, want 0", a)
	}
}

// TestPoolGenerationWithoutDebugTag: without -tags dappooldebug the debug
// hooks must be free no-ops — Generation reports 0 and CheckLive accepts
// anything, including a freed record.
func TestPoolGenerationWithoutDebugTag(t *testing.T) {
	if PoolDebug {
		t.Skip("covered by pool_debug_test.go under -tags dappooldebug")
	}
	var p RequestPool
	r := p.Get()
	if g := p.Generation(r); g != 0 {
		t.Fatalf("Generation = %d without debug tag, want 0", g)
	}
	p.Put(r)
	p.CheckLive(r, 0) // must not panic
}
