package mem

import (
	"testing"
	"testing/quick"
)

func TestLineHelpers(t *testing.T) {
	a := Addr(0x12345)
	if a.Line() != 0x12345>>6 {
		t.Fatalf("Line() = %#x", a.Line())
	}
	if a.LineAligned() != 0x12340 {
		t.Fatalf("LineAligned() = %#x", a.LineAligned())
	}
}

func TestLineAlignedProperty(t *testing.T) {
	f := func(a Addr) bool {
		al := a.LineAligned()
		return al%LineBytes == 0 && al <= a && a-al < LineBytes && al.Line() == a.Line()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthConversions(t *testing.T) {
	// 102.4 GB/s at 4 GHz is 25.6 B/cycle = 0.4 accesses/cycle.
	if got := BytesPerCycle(102.4); got != 25.6 {
		t.Fatalf("BytesPerCycle = %v", got)
	}
	if got := AccessesPerCycle(102.4); got != 0.4 {
		t.Fatalf("AccessesPerCycle = %v", got)
	}
	// round trip: bytes moved at a rate for a duration
	if got := GBPerSec(25600, 1000); got < 102.39 || got > 102.41 {
		t.Fatalf("GBPerSec = %v", got)
	}
	if got := GBPerSec(123, 0); got != 0 {
		t.Fatalf("GBPerSec with zero cycles = %v", got)
	}
}

func TestKindClassification(t *testing.T) {
	writes := []Kind{WritebackKind, FillKind, MetaWriteKind, PrefetchKind}
	reads := []Kind{ReadKind, MetaReadKind, VictimRdKind}
	for _, k := range writes {
		if !k.IsWrite() {
			t.Errorf("%v should be a write", k)
		}
	}
	for _, k := range reads {
		if k.IsWrite() {
			t.Errorf("%v should be a read", k)
		}
	}
}

func TestKindString(t *testing.T) {
	if ReadKind.String() != "read" {
		t.Fatalf("ReadKind.String() = %q", ReadKind)
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind must still format")
	}
}
