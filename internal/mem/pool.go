package mem

// RequestPool is a free list of Request records for components that keep
// requests alive across events (the DRAM channel queues). It is
// single-owner: each pool belongs to one simulated device on one engine
// goroutine, so Get/Put need no locking and recycling order is
// deterministic (LIFO).
//
// Lifetime contract: a request obtained with Get is live until exactly one
// Put returns it; after Put the caller must drop every reference. The
// opt-in `dappooldebug` build tag arms a poison mode that enforces the
// contract at runtime: every Get/Put transition bumps a per-record
// generation counter, double-Put and Put-of-foreign-record panic, and
// holders can stamp the generation at acquisition time and re-check it
// later (Generation/CheckLive) to detect a record that was freed and
// reused behind their back.
type RequestPool struct {
	free []*Request
	dbg  poolDebugState
}

// poolChunk is how many Requests an empty pool allocates at once. Channel
// queues ramp to their steady-state population early in a run; carving the
// records out of one block cuts the warm-up from one allocation per request
// to one per chunk, without changing the LIFO recycling order afterwards.
const poolChunk = 64

// Get returns a zeroed live Request, reusing a freed record when one is
// available.
func (p *RequestPool) Get() *Request {
	n := len(p.free)
	if n == 0 {
		if PoolDebug {
			// Poison mode tracks records one at a time; keep its allocation
			// pattern (and generation accounting) exactly as documented.
			r := &Request{}
			p.dbg.onNew(r)
			return r
		}
		blk := make([]Request, poolChunk)
		for i := poolChunk - 1; i >= 1; i-- {
			p.free = append(p.free, &blk[i])
		}
		return &blk[0]
	}
	r := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	p.dbg.onGet(r)
	*r = Request{}
	return r
}

// Put returns a live Request to the free list. The caller must not touch r
// afterwards.
func (p *RequestPool) Put(r *Request) {
	p.dbg.onPut(r)
	p.free = append(p.free, r)
}

// Generation reports r's reuse generation (always 0 without the
// dappooldebug build tag). A holder that stores the generation next to the
// pointer can later detect reuse with CheckLive.
func (p *RequestPool) Generation(r *Request) uint64 { return p.dbg.generation(r) }

// CheckLive panics when poison mode is armed and r is not live at the
// generation the holder recorded — i.e. the record was Put (and possibly
// handed out again) while the holder still considered it theirs. A no-op
// without the dappooldebug build tag.
func (p *RequestPool) CheckLive(r *Request, gen uint64) { p.dbg.checkLive(r, gen) }
