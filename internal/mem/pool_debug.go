//go:build dappooldebug

package mem

import "fmt"

// PoolDebug reports whether the dappooldebug poison mode is compiled in.
const PoolDebug = true

// poolDebugState tracks liveness and a reuse generation per record, outside
// the Request itself (callers overwrite requests wholesale with
// `*r = Request{...}`, so an in-struct field would be wiped). Maps are fine
// here: the tag is only enabled for safety test runs, never benchmarks.
type poolDebugState struct {
	gen  map[*Request]uint64
	live map[*Request]bool
}

func (d *poolDebugState) init() {
	if d.gen == nil {
		d.gen = make(map[*Request]uint64)
		d.live = make(map[*Request]bool)
	}
}

func (d *poolDebugState) onNew(r *Request) {
	d.init()
	d.gen[r] = 1
	d.live[r] = true
}

func (d *poolDebugState) onGet(r *Request) {
	if d.live[r] {
		panic(fmt.Sprintf("mem.RequestPool: record %p handed out while still live", r))
	}
	d.live[r] = true
}

func (d *poolDebugState) onPut(r *Request) {
	d.init()
	if _, known := d.gen[r]; !known {
		panic(fmt.Sprintf("mem.RequestPool: Put of foreign record %p (not from this pool)", r))
	}
	if !d.live[r] {
		panic(fmt.Sprintf("mem.RequestPool: double Put of record %p (generation %d)", r, d.gen[r]))
	}
	d.live[r] = false
	d.gen[r]++
	// Poison the callbacks so a stale holder that fires the freed request's
	// completion blows up immediately instead of silently corrupting state.
	// Get wipes these when the record is legitimately reissued.
	r.Done = poisonedDone
	r.OnIssue = poisonedOnIssue
}

func (d *poolDebugState) generation(r *Request) uint64 { return d.gen[r] }

func (d *poolDebugState) checkLive(r *Request, gen uint64) {
	if !d.live[r] || d.gen[r] != gen {
		panic(fmt.Sprintf(
			"mem.RequestPool: use of request %p at generation %d, but record is live=%v generation=%d (freed and/or reused)",
			r, gen, d.live[r], d.gen[r]))
	}
}

func poisonedDone(Cycle) {
	panic("mem.RequestPool: Done invoked on a freed (pooled) request")
}

func poisonedOnIssue(Cycle) {
	panic("mem.RequestPool: OnIssue invoked on a freed (pooled) request")
}
