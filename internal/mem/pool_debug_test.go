//go:build dappooldebug

package mem

import "testing"

// These tests arm the pool's poison mode (-tags dappooldebug) and verify
// each enforcement of the single-owner lifetime contract actually fires.

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestDebugDoublePutPanics: returning the same record twice is the classic
// pool corruption (two future Gets alias one record) and must panic.
func TestDebugDoublePutPanics(t *testing.T) {
	var p RequestPool
	r := p.Get()
	p.Put(r)
	mustPanic(t, "double Put", func() { p.Put(r) })
}

// TestDebugForeignPutPanics: a record that never came from the pool has no
// generation entry and must be rejected.
func TestDebugForeignPutPanics(t *testing.T) {
	var p RequestPool
	mustPanic(t, "Put of foreign record", func() { p.Put(&Request{}) })
}

// TestDebugPoisonedCallbacks: after Put, the freed record's Done and
// OnIssue are replaced with panicking stubs, so a stale holder that fires a
// completion on a recycled request dies loudly instead of corrupting an
// unrelated in-flight access.
func TestDebugPoisonedCallbacks(t *testing.T) {
	var p RequestPool
	r := p.Get()
	r.Done = func(Cycle) {}
	r.OnIssue = func(Cycle) {}
	p.Put(r)
	mustPanic(t, "Done on freed request", func() { r.Done(0) })
	mustPanic(t, "OnIssue on freed request", func() { r.OnIssue(0) })
}

// TestDebugCheckLiveCatchesReuse: a holder stamps the generation when it
// enqueues a pointer; if the record is freed — and even handed out again —
// behind its back, CheckLive at dequeue time must panic rather than let the
// holder issue someone else's request.
func TestDebugCheckLiveCatchesReuse(t *testing.T) {
	var p RequestPool
	r := p.Get()
	gen := p.Generation(r)
	if gen == 0 {
		t.Fatalf("debug Generation = 0, want a live nonzero generation")
	}
	p.CheckLive(r, gen) // live at the stamped generation: fine

	p.Put(r)
	mustPanic(t, "CheckLive after free", func() { p.CheckLive(r, gen) })

	r2 := p.Get() // the same record, recycled
	if r2 != r {
		t.Fatalf("expected LIFO reuse of the freed record")
	}
	mustPanic(t, "CheckLive after recycle", func() { p.CheckLive(r2, gen) })
	p.CheckLive(r2, p.Generation(r2)) // the new holder's stamp is valid
}
