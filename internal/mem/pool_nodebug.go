//go:build !dappooldebug

package mem

// PoolDebug reports whether the dappooldebug poison mode is compiled in.
const PoolDebug = false

// poolDebugState is empty in normal builds: every hook compiles to nothing
// so the pool stays a bare free list on the hot path.
type poolDebugState struct{}

func (poolDebugState) onNew(*Request)             {}
func (poolDebugState) onGet(*Request)             {}
func (poolDebugState) onPut(*Request)             {}
func (poolDebugState) generation(*Request) uint64 { return 0 }
func (poolDebugState) checkLive(*Request, uint64) {}
