package mscache

import (
	"dap/internal/cache"
	"dap/internal/core"
	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/obs"
	"dap/internal/policy"
	"dap/internal/sim"
	"dap/internal/stats"
)

// SectoredConfig describes a die-stacked sectored DRAM cache (the paper's
// default memory-side cache: 4 KB sectors, four ways, NRU replacement,
// metadata stored in the DRAM array with an SRAM tag cache in front, and a
// footprint prefetcher).
type SectoredConfig struct {
	CapacityBytes int
	SectorBytes   int
	Ways          int

	// TagCacheEntries is the SRAM tag cache size (0 disables it: every
	// access pays an in-DRAM metadata fetch, the unoptimized baseline of
	// Figure 5). TagCacheWays and TagCacheLat follow the paper (4, 5).
	TagCacheEntries int
	TagCacheWays    int
	TagCacheLat     mem.Cycle

	// Replacement selects the sector replacement policy (default NRU, the
	// paper's choice; LRU/SRRIP/Rand are available for ablation).
	Replacement cache.ReplPolicy

	// Footprint enables the footprint prefetcher.
	Footprint bool
	// FootprintEntries bounds the history table.
	FootprintEntries int

	// Array is the DRAM configuration of the cache stack.
	Array dram.Config
}

// DefaultSectored returns the paper's default 4 GB / 102.4 GB/s point,
// subject to the repository's 64x capacity scale-down (64 MB).
func DefaultSectored() SectoredConfig {
	return SectoredConfig{
		CapacityBytes:    64 * mem.MiB,
		SectorBytes:      4096,
		Ways:             4,
		TagCacheEntries:  512,
		TagCacheWays:     4,
		TagCacheLat:      5,
		Replacement:      cache.NRU,
		Footprint:        true,
		FootprintEntries: 1 << 14,
		Array:            dram.HBM102(),
	}
}

// Sectored is the sectored DRAM cache controller.
type Sectored struct {
	cfg SectoredConfig
	eng *sim.Engine
	dev *dram.Device // the HBM stack
	mm  *dram.Device // shared main memory

	tags     *cache.Cache // authoritative sector metadata (SetSkip = blocks/sector)
	tagCache *cache.Cache // SRAM tag cache (nil when disabled)
	fp       *footprintTable

	part core.Partitioner
	wc   core.WindowCounts
	st   stats.MemSideStats
	tr   *obs.Tracer

	sectorBlocks uint64

	// Pooled continuation records (see ops.go).
	fwd     fwdPool
	freeTag []*tagOp
	freeFp  []*fpOp

	// Optional related-proposal policies (at most one non-nil).
	SBD    *policy.SBD
	BATMAN *policy.BATMAN
	// BATMANEpoch is the set-adjustment period in cycles.
	BATMANEpoch mem.Cycle

	// decRec, when non-nil, receives PolicyEvents at the baseline
	// policies' adjustment points (BATMAN epochs, SBD decays).
	decRec *core.DecisionRecorder
}

// tagOp is the pooled continuation for one tag-path lookup: it remembers
// which operation (read, writeback, write-through) resumes once the
// sector's metadata is known, plus the per-request state that operation
// needs. cb is prebound to tagDone.
type tagOp struct {
	s      *Sectored
	addr   mem.Addr
	coreID int
	stage  uint8
	sfrm   bool // an SFRM read was launched to main memory in parallel
	inst   bool // install the fetched metadata into the SRAM tag cache
	sp     *obs.Span
	done   func(mem.Cycle)
	cb     func(mem.Cycle)
}

const (
	opRead uint8 = iota
	opWriteback
	opWriteThrough
)

// tagOpChunk is how many pooled tagOps an empty free list allocates at
// once, so a fresh controller ramps to its steady-state depth in one block
// allocation instead of one per outstanding lookup.
const tagOpChunk = 32

func (s *Sectored) getTagOp(addr mem.Addr, coreID int, stage uint8, sp *obs.Span, done func(mem.Cycle)) *tagOp {
	var op *tagOp
	if n := len(s.freeTag); n > 0 {
		op = s.freeTag[n-1]
		s.freeTag = s.freeTag[:n-1]
	} else {
		blk := make([]tagOp, tagOpChunk)
		for i := tagOpChunk - 1; i >= 1; i-- {
			s.freeTag = append(s.freeTag, &blk[i])
		}
		op = &blk[0]
	}
	if op.cb == nil {
		op.cb = op.tagDone // bound once per record, on its first use
	}
	op.s, op.addr, op.coreID, op.stage, op.sp, op.done = s, addr, coreID, stage, sp, done
	op.sfrm, op.inst = false, false
	return op
}

func (op *tagOp) free() {
	op.sp, op.done = nil, nil
	op.s.freeTag = append(op.s.freeTag, op)
}

// tagDone resumes the suspended operation once the metadata is in hand.
func (op *tagOp) tagDone(mem.Cycle) {
	s := op.s
	if op.inst {
		s.installTagEntry(op.addr)
	}
	line := s.tags.Probe(op.addr)
	switch op.stage {
	case opRead:
		addr, coreID, sfrm, sp, done := op.addr, op.coreID, op.sfrm, op.sp, op.done
		op.free()
		s.readTagKnown(addr, coreID, sfrm, sp, done, line)
	case opWriteback:
		addr, coreID := op.addr, op.coreID
		op.free()
		s.wbTagKnown(addr, coreID, line)
	default: // opWriteThrough
		addr, coreID := op.addr, op.coreID
		op.free()
		s.wtTagKnown(addr, coreID, line)
	}
}

// tagOpRun adapts a pooled tagOp to the engine's typed-handler form for the
// SRAM tag-cache hit path (a fixed-latency resume, no device access).
func tagOpRun(ctx any, _ uint64, t mem.Cycle) { ctx.(*tagOp).tagDone(t) }

// fpOp is the pooled continuation for one footprint-prefetch block: the
// main-memory read's completion installs the block into the (possibly
// since-replaced) sector.
type fpOp struct {
	s  *Sectored
	ba mem.Addr
	b  uint64
	cb func(mem.Cycle)
}

func (s *Sectored) getFpOp(ba mem.Addr, b uint64) *fpOp {
	var f *fpOp
	if n := len(s.freeFp); n > 0 {
		f = s.freeFp[n-1]
		s.freeFp = s.freeFp[:n-1]
	} else {
		f = &fpOp{}
		f.cb = f.fill
	}
	f.s, f.ba, f.b = s, ba, b
	return f
}

func (f *fpOp) fill(mem.Cycle) {
	s, ba, b := f.s, f.ba, f.b
	s.freeFp = append(s.freeFp, f)
	if cur := s.tags.Probe(ba); cur.Ok() {
		s.st.Fills++
		cur.OrVMask(b)
		s.dev.Access(ba, mem.FillKind, -1, nil)
	}
}

// NewSectored builds the controller. mm is the shared main-memory device;
// part decides partitioning (core.Nop{} for the baseline).
func NewSectored(cfg SectoredConfig, eng *sim.Engine, mm *dram.Device, part core.Partitioner) *Sectored {
	s := &Sectored{cfg: cfg, eng: eng, mm: mm, part: part}
	s.fwd.mm = mm
	s.dev = dram.NewDevice(cfg.Array, eng)
	s.sectorBlocks = uint64(cfg.SectorBytes / mem.LineBytes)
	sets := cfg.CapacityBytes / cfg.SectorBytes / cfg.Ways
	s.tags = cache.New(sets, cfg.Ways, cfg.Replacement, s.sectorBlocks)
	if cfg.TagCacheEntries > 0 {
		s.tagCache = cache.New(cfg.TagCacheEntries/cfg.TagCacheWays, cfg.TagCacheWays, cache.LRU, s.sectorBlocks)
	}
	if cfg.Footprint {
		n := cfg.FootprintEntries
		if n == 0 {
			n = 1 << 14
		}
		s.fp = newFootprintTable(n)
	}
	return s
}

// Windows exposes the window counters for the partitioner.
func (s *Sectored) Windows() *core.WindowCounts { return &s.wc }

// MSStats implements Controller.
func (s *Sectored) MSStats() *stats.MemSideStats { return &s.st }

// CacheCAS implements Controller.
func (s *Sectored) CacheCAS() uint64 { st := s.dev.Stats(); return st.CAS() }

// Device exposes the cache array (tests, bandwidth kernels).
func (s *Sectored) Device() *dram.Device { return s.dev }

// ResetStats implements Controller.
func (s *Sectored) ResetStats() {
	s.st = stats.MemSideStats{}
	s.dev.ResetStats()
}

// SetDecisionRecorder attaches the introspection recorder to the baseline
// policies: each BATMAN epoch evaluation and each SBD counter decay then
// captures a PolicyEvent. Call after SBD/BATMAN are assigned and before
// the run starts; passing nil detaches.
func (s *Sectored) SetDecisionRecorder(r *core.DecisionRecorder) {
	s.decRec = r
	if s.SBD == nil {
		return
	}
	if r == nil {
		s.SBD.OnDecay = nil
		return
	}
	sbd := s.SBD
	sbd.OnDecay = func() {
		s.decRec.AddPolicyEvent(core.PolicyEvent{
			Cycle: s.eng.Now(), Policy: "sbd",
			DirtyPages: sbd.DirtyPages(), SteeredMM: sbd.SteeredMM,
			Promotions: sbd.Promotions, Cleanings: sbd.Cleanings,
		})
	}
}

// StartBATMAN arms the periodic set-disable evaluation.
func (s *Sectored) StartBATMAN() {
	if s.BATMAN == nil {
		return
	}
	if s.BATMANEpoch == 0 {
		s.BATMANEpoch = 50000
	}
	var tick func()
	tick = func() {
		from, to := s.BATMAN.Epoch()
		for set := from; set < to; set++ {
			s.disableSet(set)
		}
		if s.decRec != nil {
			s.decRec.AddPolicyEvent(core.PolicyEvent{
				Cycle: s.eng.Now(), Policy: "batman",
				Epoch: s.BATMAN.Epochs, DisabledSets: s.BATMAN.DisabledSets(),
			})
		}
		s.eng.After(s.BATMANEpoch, tick)
	}
	s.eng.After(s.BATMANEpoch, tick)
}

// disableSet cleans and invalidates one cache set (BATMAN).
func (s *Sectored) disableSet(set int) {
	s.tags.InvalidateSet(set, func(l cache.Ref) {
		base := s.tags.LineAddr(set, l.Tag())
		forEachBit(l.DMask(), func(i uint) {
			s.writeoutDirtyBlock(blockAddr(base, s.sectorBlocks, i))
		})
		if s.fp != nil {
			s.fp.record(uint64(base)/s.sectorBlocks/mem.LineBytes, l.VMask())
		}
	})
}

// writeoutDirtyBlock reads a dirty block from the cache array and writes it
// to main memory (the read->write chain is bandwidth-accurate).
func (s *Sectored) writeoutDirtyBlock(a mem.Addr) {
	s.st.DirtyWriteouts++
	s.st.VictimReads++
	s.wc.AMSR++
	s.wc.AMM++
	s.dev.Access(a, mem.VictimRdKind, -1, s.fwd.forward(a))
}

// sectorOf returns the sector index of an address.
func (s *Sectored) sectorOf(a mem.Addr) uint64 {
	return uint64(a) / uint64(s.cfg.SectorBytes)
}

func (s *Sectored) blockBit(a mem.Addr) uint64 {
	return 1 << (uint64(a.Line()) % s.sectorBlocks)
}

// markMetaDirty records a metadata mutation: absorbed by a present tag-cache
// entry, else an immediate in-DRAM metadata update.
func (s *Sectored) markMetaDirty(a mem.Addr) {
	if s.tagCache != nil {
		if e := s.tagCache.Probe(a); e.Ok() {
			e.MarkDirty()
			return
		}
	}
	s.st.MetaWrites++
	s.wc.AMSW++
	s.dev.Access(a, mem.MetaWriteKind, -1, nil)
}

// tagPath performs the metadata lookup and resumes op (via tagDone) when
// the sector's state is known. op.sfrm records whether an SFRM read was
// launched to main memory in parallel (the resumed operation must not
// launch a second one).
func (s *Sectored) tagPath(op *tagOp, isRead bool) {
	a := op.addr
	if s.tagCache == nil {
		// no tag cache: every access fetches metadata from the DRAM array
		s.st.MetaReads++
		s.wc.AMSR++
		op.sfrm = isRead && s.part.TakeSFRM()
		s.dev.Access(a, mem.MetaReadKind, op.coreID, op.cb)
		return
	}
	if s.tagCache.Lookup(a).Ok() {
		s.st.TagCacheHits++
		s.eng.AfterArg(s.cfg.TagCacheLat, tagOpRun, op, 0)
		return
	}
	s.st.TagCacheMisses++
	s.st.MetaReads++
	s.wc.AMSR++
	op.sfrm = isRead && s.part.TakeSFRM()
	op.inst = true
	s.dev.Access(a, mem.MetaReadKind, op.coreID, op.cb)
}

// installTagEntry fills the SRAM tag cache; dirty victims update metadata in
// the DRAM array.
func (s *Sectored) installTagEntry(a mem.Addr) {
	ev := s.tagCache.Insert(a, false)
	if ev.Valid && ev.Dirty {
		si, _ := s.tagCache.Index(a)
		va := s.tagCache.LineAddr(si, ev.Tag)
		s.st.MetaWrites++
		s.wc.AMSW++
		s.dev.Access(va, mem.MetaWriteKind, -1, nil)
	}
}

// Read implements cpu.Backend: an L3 read miss (or hardware prefetch).
func (s *Sectored) Read(addr mem.Addr, coreID int, kind mem.Kind, done func(mem.Cycle)) {
	addr = addr.LineAligned()
	sp := s.tr.Read(coreID, addr, kind)
	done = sp.Wrap(done)

	// BATMAN: disabled sets go straight to main memory, no allocation.
	// These accesses count as misses in the hit-rate feedback — that is
	// the equilibrium the proposal's set disabling relies on.
	if s.BATMAN != nil {
		if set, _ := s.tags.Index(addr); s.BATMAN.Disabled(set) {
			s.BATMAN.NoteLookup(false)
			s.st.ReadMisses++
			s.wc.AMM++
			sp.Serve(stats.BDSrcMain)
			s.mm.AccessTraced(addr, kind, coreID, obs.OnIssue(sp), done)
			return
		}
	}

	// SBD: steer predicted hits of provably write-through pages to the
	// less loaded source; only such pages are memory-consistent.
	if s.SBD != nil {
		page := addr >> 12
		if s.SBD.Steerable(page) && s.SBD.PredictHit() {
			line := s.tags.Probe(addr)
			if s.steerMM() {
				s.st.ForcedMisses++
				if line.Ok() && line.VMask()&s.blockBit(addr) != 0 {
					s.st.ReadHits++
				} else {
					s.st.ReadMisses++
				}
				s.wc.AMM++
				sp.Serve(stats.BDSrcMain)
				s.mm.AccessTraced(addr, kind, coreID, obs.OnIssue(sp), done)
				return
			}
		}
	}

	sp.Meta()
	s.tagPath(s.getTagOp(addr, coreID, opRead, sp, done), true)
}

// readTagKnown finishes a demand read once the sector's metadata is known
// (the opRead continuation of tagPath).
func (s *Sectored) readTagKnown(addr mem.Addr, coreID int, sfrm bool, sp *obs.Span, done func(mem.Cycle), line cache.Ref) {
	bit := s.blockBit(addr)
	present := line.Ok() && line.VMask()&bit != 0
	if s.SBD != nil {
		s.SBD.NoteReadOutcome(present)
	}
	if s.BATMAN != nil {
		s.BATMAN.NoteLookup(present)
	}
	if present {
		s.st.ReadHits++
		s.wc.AMSR++         // the data read this hit demands
		s.tags.Lookup(addr) // NRU recency
		dirty := line.DMask()&bit != 0
		if !dirty {
			s.wc.CleanHits++
		}
		switch {
		case sfrm && dirty:
			// speculative main-memory read was wasted; data must
			// come from the cache array
			s.st.SpecForced++
			s.st.SpecWasted++
			sp.Decide(stats.BDTechSFRM)
			sp.Serve(stats.BDSrcCache)
			s.dev.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), done)
		case sfrm:
			// clean hit already being served by main memory
			s.st.SpecForced++
			sp.Decide(stats.BDTechSFRM)
			sp.Serve(stats.BDSrcMain)
			s.mm.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), done)
		case !dirty && s.part.TakeIFRM(coreID):
			s.st.ForcedMisses++
			sp.Decide(stats.BDTechIFRM)
			sp.Serve(stats.BDSrcMain)
			s.mm.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), done)
		default:
			sp.Decide(stats.BDTechNone)
			sp.Serve(stats.BDSrcCache)
			s.dev.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), done)
		}
		return
	}
	// read miss
	s.st.ReadMisses++
	s.wc.AMM++
	s.wc.Rm++
	sp.Decide(stats.BDTechNone)
	sp.Serve(stats.BDSrcMain)
	s.mm.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), done)
	s.handleFill(addr, line)
}

// steerMM applies SBD's expected-latency comparison using live queue depths.
func (s *Sectored) steerMM() bool {
	// service ~ burst occupancy per access; base ~ unloaded latencies
	return s.SBD.SteerToMM(s.mm.QueueLen(), s.dev.QueueLen(), 14, 10, 96, 60)
}

// handleFill performs read-miss fill handling: fill the block if the sector
// is resident, else allocate a sector (evicting a victim) and trigger the
// footprint fetch. Every intended fill consults FWB credits.
func (s *Sectored) handleFill(addr mem.Addr, line cache.Ref) {
	bit := s.blockBit(addr)
	if line.Ok() {
		// sector resident, block absent: a simple block fill
		s.wc.AMSW++
		if s.part.TakeFWB() {
			s.st.FillBypasses++
			return
		}
		s.st.Fills++
		line.OrVMask(bit)
		line.ClearDMask(bit)
		s.dev.Access(addr, mem.FillKind, -1, nil)
		s.markMetaDirty(addr)
		return
	}
	// allocate a sector
	ev := s.tags.Insert(addr, false)
	if ev.Valid {
		s.evictSector(addr, ev)
	}
	nl := s.tags.Probe(addr)
	s.markMetaDirty(addr)

	// demanded block fill
	s.wc.AMSW++
	if s.part.TakeFWB() {
		s.st.FillBypasses++
	} else {
		s.st.Fills++
		nl.OrVMask(bit)
		s.dev.Access(addr, mem.FillKind, -1, nil)
	}

	// footprint fetch for the rest of the predicted footprint
	if s.fp == nil {
		return
	}
	mask := s.fp.predict(s.sectorOf(addr)) &^ bit
	forEachBit(mask, func(i uint) {
		ba := blockAddr(addr, s.sectorBlocks, i)
		s.wc.AMM++
		s.wc.Rm++
		s.wc.AMSW++
		if s.part.TakeFWB() {
			s.st.FillBypasses++
			return
		}
		b := s.blockBit(ba)
		s.mm.Access(ba, mem.ReadKind, -1, s.getFpOp(ba, b).cb)
	})
}

// evictSector handles a victim sector: record its footprint and write out
// its dirty blocks.
func (s *Sectored) evictSector(newAddr mem.Addr, ev cache.Line) {
	s.st.SectorEvicts++
	si, _ := s.tags.Index(newAddr)
	base := s.tags.LineAddr(si, ev.Tag)
	if s.fp != nil {
		s.fp.record(s.sectorOf(base), ev.VMask)
	}
	forEachBit(ev.DMask, func(i uint) {
		s.writeoutDirtyBlock(blockAddr(base, s.sectorBlocks, i))
	})
	// drop any stale tag-cache copy of the victim's metadata
	if s.tagCache != nil {
		s.tagCache.Invalidate(base)
	}
}

// Writeback implements cpu.Backend: a dirty L3 eviction.
func (s *Sectored) Writeback(addr mem.Addr, coreID int) {
	addr = addr.LineAligned()
	s.wc.Wm++

	if s.BATMAN != nil {
		if set, _ := s.tags.Index(addr); s.BATMAN.Disabled(set) {
			s.mm.Access(addr, mem.WritebackKind, coreID, nil)
			return
		}
	}

	// SBD write handling: write-through pages write both levels; a
	// promotion may force-clean an evicted Dirty List page.
	if s.SBD != nil {
		page := addr >> 12
		evicted, mustClean := s.SBD.NoteWrite(page)
		if mustClean {
			s.cleanPage(evicted)
		}
		if !s.SBD.InDirtyList(page) {
			s.writeThrough(addr, coreID)
			return
		}
	}

	s.tagPath(s.getTagOp(addr, coreID, opWriteback, nil, nil), false)
}

// wbTagKnown finishes a dirty L3 eviction once the sector's metadata is
// known (the opWriteback continuation of tagPath).
func (s *Sectored) wbTagKnown(addr mem.Addr, coreID int, line cache.Ref) {
	bit := s.blockBit(addr)
	present := line.Ok() && line.VMask()&bit != 0
	s.wc.AMSW++ // the cache write this eviction demands
	if s.part.TakeWB() {
		s.st.WriteBypasses++
		s.mm.Access(addr, mem.WritebackKind, coreID, nil)
		if present {
			// the stale cache copy must be invalidated
			line.ClearVMask(bit)
			line.ClearDMask(bit)
			s.markMetaDirty(addr)
		}
		return
	}
	if present {
		s.st.WriteHits++
		line.OrDMask(bit)
		s.tags.Lookup(addr)
	} else {
		s.st.WriteMisses++
		if !line.Ok() {
			ev := s.tags.Insert(addr, false)
			if ev.Valid {
				s.evictSector(addr, ev)
			}
			line = s.tags.Probe(addr)
		}
		line.OrVMask(bit)
		line.OrDMask(bit)
	}
	s.markMetaDirty(addr)
	s.dev.Access(addr, mem.WritebackKind, coreID, nil)
}

// writeThrough writes a block to both the cache and main memory, leaving the
// cached copy clean (SBD write-through mode). The cache side behaves like a
// normal allocating write — write-through only adds the memory copy.
func (s *Sectored) writeThrough(addr mem.Addr, coreID int) {
	s.tagPath(s.getTagOp(addr, coreID, opWriteThrough, nil, nil), false)
}

// wtTagKnown finishes an SBD write-through once the sector's metadata is
// known (the opWriteThrough continuation of tagPath).
func (s *Sectored) wtTagKnown(addr mem.Addr, coreID int, line cache.Ref) {
	bit := s.blockBit(addr)
	s.wc.AMSW++
	s.mm.Access(addr, mem.WritebackKind, coreID, nil)
	if line.Ok() && line.VMask()&bit != 0 {
		s.st.WriteHits++
	} else {
		s.st.WriteMisses++
		if !line.Ok() {
			ev := s.tags.Insert(addr, false)
			if ev.Valid {
				s.evictSector(addr, ev)
			}
			line = s.tags.Probe(addr)
		}
		line.OrVMask(bit)
	}
	line.ClearDMask(bit) // clean: main memory holds the latest copy
	s.tags.Lookup(addr)
	s.markMetaDirty(addr)
	s.dev.Access(addr, mem.WritebackKind, coreID, nil)
}

// cleanPage writes out all dirty blocks of a page falling out of SBD's
// Dirty List.
func (s *Sectored) cleanPage(page mem.Addr) {
	base := page << 12
	for off := mem.Addr(0); off < 4096; off += mem.LineBytes {
		a := base + off
		if l := s.tags.Probe(a); l.Ok() {
			bit := s.blockBit(a)
			if l.DMask()&bit != 0 {
				l.ClearDMask(bit)
				s.writeoutDirtyBlock(a)
				s.markMetaDirty(a)
			}
		}
	}
}

// WarmRead implements cpu.Backend's functional warmup path.
func (s *Sectored) WarmRead(addr mem.Addr, coreID int) {
	addr = addr.LineAligned()
	if s.tagCache != nil && !s.tagCache.Lookup(addr).Ok() {
		s.installTagEntry(addr)
	}
	bit := s.blockBit(addr)
	if line := s.tags.Probe(addr); line.Ok() {
		s.tags.Lookup(addr)
		line.OrVMask(bit)
		return
	}
	ev := s.tags.Insert(addr, false)
	if ev.Valid {
		si, _ := s.tags.Index(addr)
		base := s.tags.LineAddr(si, ev.Tag)
		if s.fp != nil {
			s.fp.record(s.sectorOf(base), ev.VMask)
		}
		if s.tagCache != nil {
			s.tagCache.Invalidate(base)
		}
	}
	nl := s.tags.Probe(addr)
	nl.OrVMask(bit)
	if s.fp != nil {
		nl.OrVMask(s.fp.predict(s.sectorOf(addr)))
	}
}

// WarmWriteback implements cpu.Backend's functional warmup path.
func (s *Sectored) WarmWriteback(addr mem.Addr, coreID int) {
	addr = addr.LineAligned()
	s.WarmRead(addr, coreID)
	if line := s.tags.Probe(addr); line.Ok() {
		line.OrDMask(s.blockBit(addr))
	}
}

// SetPartitioner replaces the partitioning policy (used after construction
// once the DAP instance has been wired to this controller's counters).
func (s *Sectored) SetPartitioner(p core.Partitioner) { s.part = p }

// SetTracer attaches a request-lifecycle tracer (nil disables tracing; all
// hooks are nil-safe no-ops).
func (s *Sectored) SetTracer(t *obs.Tracer) { s.tr = t }
