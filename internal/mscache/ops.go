package mscache

import (
	"dap/internal/dram"
	"dap/internal/mem"
)

// This file holds the pooled continuation records the controllers hand to
// the DRAM devices and the engine in place of captured closures. Each
// record carries the state its completion needs plus a callback field
// prebound to the record's own method — the one closure allocation happens
// when the record is first created, and every reuse after that is free.
// Pools are per-controller LIFO free lists: a controller lives on one
// engine goroutine, so recycling is deterministic and needs no locking.
//
// Reentrancy rule: a completion method copies the fields it needs to
// locals and returns its record to the free list *before* dispatching, so
// the record can be reissued by anything the dispatch reaches.

// fwdPool recycles victim-forwarders: the completion of a victim read from
// the cache array that turns into a main-memory writeback of the same
// block (the read→write chain all three controllers use to evict dirty
// data).
type fwdPool struct {
	mm   *dram.Device
	free []*fwdOp
}

type fwdOp struct {
	p  *fwdPool
	a  mem.Addr
	cb func(mem.Cycle)
}

// forward returns a callback that, when fired, writes block a back to main
// memory.
func (p *fwdPool) forward(a mem.Addr) func(mem.Cycle) {
	var f *fwdOp
	if n := len(p.free); n > 0 {
		f = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		f = &fwdOp{p: p}
		f.cb = f.run
	}
	f.a = a
	return f.cb
}

func (f *fwdOp) run(mem.Cycle) {
	p, a := f.p, f.a
	p.free = append(p.free, f)
	p.mm.Access(a, mem.WritebackKind, -1, nil)
}
