package mscache

import (
	"dap/internal/cache"
	"dap/internal/core"
	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/obs"
	"dap/internal/sim"
	"dap/internal/stats"
)

// EDRAMConfig describes the sectored eDRAM cache (Section VI-C): 1 KB
// sectors, sixteen ways, metadata in on-die SRAM (so no metadata traffic and
// no SFRM), and two independent 51.2 GB/s channel sets — one for reads, one
// for writes — which is what makes its bandwidth behaviour in Figure 1
// qualitatively different from the DRAM cache's.
type EDRAMConfig struct {
	CapacityBytes int
	SectorBytes   int
	Ways          int

	// TagLat is the on-die metadata lookup latency (8 cycles at 4 GHz).
	TagLat mem.Cycle

	// ReadArray and WriteArray are the independent channel sets.
	ReadArray  dram.Config
	WriteArray dram.Config
}

// DefaultEDRAM returns the paper's 256 MB point with 51.2 GB/s read channels
// and 51.2 GB/s write channels. The eDRAM capacity is scaled 8x (not the
// repository's default 64x) so that the footprint:capacity ratio of the
// scaled workloads matches the paper's mid-range eDRAM hit rates; see
// DESIGN.md.
func DefaultEDRAM() EDRAMConfig {
	return EDRAMConfig{
		CapacityBytes: 32 * mem.MiB,
		SectorBytes:   1024,
		Ways:          16,
		TagLat:        8,
		ReadArray:     dram.EDRAMRead(51.2),
		WriteArray:    dram.EDRAMWrite(51.2),
	}
}

// EDRAM is the sectored eDRAM cache controller.
type EDRAM struct {
	cfg  EDRAMConfig
	eng  *sim.Engine
	rdev *dram.Device // read channel set
	wdev *dram.Device // write channel set
	mm   *dram.Device

	tags *cache.Cache
	part core.Partitioner
	wc   core.WindowCounts
	st   stats.MemSideStats
	tr   *obs.Tracer

	sectorBlocks uint64

	// Pooled continuation records (see ops.go).
	fwd     fwdPool
	freeOps []*edramOp
}

// edramOp is the pooled continuation for one request suspended on the
// on-die tag lookup latency (reads carry their span and completion;
// writebacks carry neither).
type edramOp struct {
	e      *EDRAM
	addr   mem.Addr
	coreID int
	sp     *obs.Span
	done   func(mem.Cycle)
}

func (e *EDRAM) getOp(addr mem.Addr, coreID int, sp *obs.Span, done func(mem.Cycle)) *edramOp {
	var op *edramOp
	if n := len(e.freeOps); n > 0 {
		op = e.freeOps[n-1]
		e.freeOps = e.freeOps[:n-1]
	} else {
		op = &edramOp{}
	}
	op.e, op.addr, op.coreID, op.sp, op.done = e, addr, coreID, sp, done
	return op
}

func (e *EDRAM) putOp(op *edramOp) {
	op.sp, op.done = nil, nil
	e.freeOps = append(e.freeOps, op)
}

// NewEDRAM builds the controller.
func NewEDRAM(cfg EDRAMConfig, eng *sim.Engine, mm *dram.Device, part core.Partitioner) *EDRAM {
	e := &EDRAM{cfg: cfg, eng: eng, mm: mm, part: part}
	e.fwd.mm = mm
	e.rdev = dram.NewDevice(cfg.ReadArray, eng)
	e.wdev = dram.NewDevice(cfg.WriteArray, eng)
	e.sectorBlocks = uint64(cfg.SectorBytes / mem.LineBytes)
	sets := cfg.CapacityBytes / cfg.SectorBytes / cfg.Ways
	e.tags = cache.New(sets, cfg.Ways, cache.NRU, e.sectorBlocks)
	return e
}

// Windows exposes the window counters for the partitioner.
func (e *EDRAM) Windows() *core.WindowCounts { return &e.wc }

// MSStats implements Controller.
func (e *EDRAM) MSStats() *stats.MemSideStats { return &e.st }

// CacheCAS implements Controller (sum of both channel sets).
func (e *EDRAM) CacheCAS() uint64 {
	r, w := e.rdev.Stats(), e.wdev.Stats()
	return r.CAS() + w.CAS()
}

// ReadDevice and WriteDevice expose the channel sets.
func (e *EDRAM) ReadDevice() *dram.Device  { return e.rdev }
func (e *EDRAM) WriteDevice() *dram.Device { return e.wdev }

// ResetStats implements Controller.
func (e *EDRAM) ResetStats() {
	e.st = stats.MemSideStats{}
	e.rdev.ResetStats()
	e.wdev.ResetStats()
}

func (e *EDRAM) blockBit(a mem.Addr) uint64 {
	return 1 << (uint64(a.Line()) % e.sectorBlocks)
}

// Read implements cpu.Backend.
func (e *EDRAM) Read(addr mem.Addr, coreID int, kind mem.Kind, done func(mem.Cycle)) {
	addr = addr.LineAligned()
	sp := e.tr.Read(coreID, addr, kind)
	done = sp.Wrap(done)
	sp.Meta()
	e.eng.AfterArg(e.cfg.TagLat, edramReadTag, e.getOp(addr, coreID, sp, done), 0)
}

// edramReadTag resumes a read after the tag lookup latency.
func edramReadTag(ctx any, _ uint64, _ mem.Cycle) {
	op := ctx.(*edramOp)
	e, addr, coreID, sp, done := op.e, op.addr, op.coreID, op.sp, op.done
	e.putOp(op)
	bit := e.blockBit(addr)
	line := e.tags.Probe(addr)
	if line.Ok() && line.VMask()&bit != 0 {
		e.st.ReadHits++
		e.wc.AMSR++
		e.tags.Lookup(addr)
		dirty := line.DMask()&bit != 0
		if !dirty {
			e.wc.CleanHits++
			if e.part.TakeIFRM(coreID) {
				e.st.ForcedMisses++
				sp.Decide(stats.BDTechIFRM)
				sp.Serve(stats.BDSrcMain)
				e.mm.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), done)
				return
			}
		}
		sp.Decide(stats.BDTechNone)
		sp.Serve(stats.BDSrcCache)
		e.rdev.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), done)
		return
	}
	// read miss
	e.st.ReadMisses++
	e.wc.AMM++
	e.wc.Rm++
	sp.Decide(stats.BDTechNone)
	sp.Serve(stats.BDSrcMain)
	e.mm.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), done)
	e.handleFill(addr, line)
}

// handleFill installs a missed block via the write channels; fills consult
// FWB credits. Unlike the DRAM cache, fills never steal read bandwidth.
func (e *EDRAM) handleFill(addr mem.Addr, line cache.Ref) {
	bit := e.blockBit(addr)
	if !line.Ok() {
		ev := e.tags.Insert(addr, false)
		if ev.Valid {
			e.evictSector(addr, ev)
		}
		line = e.tags.Probe(addr)
	}
	e.wc.AMSW++
	if e.part.TakeFWB() {
		e.st.FillBypasses++
		return
	}
	e.st.Fills++
	line.OrVMask(bit)
	line.ClearDMask(bit)
	e.wdev.Access(addr, mem.FillKind, -1, nil)
}

// evictSector writes out a victim sector's dirty blocks (read channel to
// fetch, main memory to store).
func (e *EDRAM) evictSector(newAddr mem.Addr, ev cache.Line) {
	e.st.SectorEvicts++
	si, _ := e.tags.Index(newAddr)
	base := e.tags.LineAddr(si, ev.Tag)
	forEachBit(ev.DMask, func(i uint) {
		a := blockAddr(base, e.sectorBlocks, i)
		e.st.DirtyWriteouts++
		e.st.VictimReads++
		e.wc.AMSR++
		e.wc.AMM++
		e.rdev.Access(a, mem.VictimRdKind, -1, e.fwd.forward(a))
	})
}

// Writeback implements cpu.Backend.
func (e *EDRAM) Writeback(addr mem.Addr, coreID int) {
	addr = addr.LineAligned()
	e.eng.AfterArg(e.cfg.TagLat, edramWBTag, e.getOp(addr, coreID, nil, nil), 0)
}

// edramWBTag resumes a writeback after the tag lookup latency.
func edramWBTag(ctx any, _ uint64, _ mem.Cycle) {
	op := ctx.(*edramOp)
	e, addr, coreID := op.e, op.addr, op.coreID
	e.putOp(op)
	e.wc.Wm++
	e.wc.AMSW++
	bit := e.blockBit(addr)
	line := e.tags.Probe(addr)
	present := line.Ok() && line.VMask()&bit != 0
	if e.part.TakeWB() {
		e.st.WriteBypasses++
		e.mm.Access(addr, mem.WritebackKind, coreID, nil)
		if present {
			line.ClearVMask(bit)
			line.ClearDMask(bit)
		}
		return
	}
	if present {
		e.st.WriteHits++
		line.OrDMask(bit)
		e.tags.Lookup(addr)
	} else {
		e.st.WriteMisses++
		if !line.Ok() {
			ev := e.tags.Insert(addr, false)
			if ev.Valid {
				e.evictSector(addr, ev)
			}
			line = e.tags.Probe(addr)
		}
		line.OrVMask(bit)
		line.OrDMask(bit)
	}
	e.wdev.Access(addr, mem.WritebackKind, coreID, nil)
}

// WarmRead implements cpu.Backend's functional path.
func (e *EDRAM) WarmRead(addr mem.Addr, coreID int) {
	addr = addr.LineAligned()
	bit := e.blockBit(addr)
	if line := e.tags.Probe(addr); line.Ok() {
		e.tags.Lookup(addr)
		line.OrVMask(bit)
		return
	}
	e.tags.Insert(addr, false)
	e.tags.Probe(addr).OrVMask(bit)
}

// WarmWriteback implements cpu.Backend's functional path.
func (e *EDRAM) WarmWriteback(addr mem.Addr, coreID int) {
	addr = addr.LineAligned()
	e.WarmRead(addr, coreID)
	if line := e.tags.Probe(addr); line.Ok() {
		line.OrDMask(e.blockBit(addr))
	}
}

// SetPartitioner replaces the partitioning policy (used after construction
// once the DAP instance has been wired to this controller's counters).
func (e *EDRAM) SetPartitioner(p core.Partitioner) { e.part = p }

// SetTracer attaches a request-lifecycle tracer (nil disables tracing; all
// hooks are nil-safe no-ops).
func (e *EDRAM) SetTracer(t *obs.Tracer) { e.tr = t }
