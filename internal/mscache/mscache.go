// Package mscache implements the three memory-side cache architectures the
// paper evaluates DAP on: the die-stacked sectored DRAM cache (Section
// VI-A), the Alloy cache (Section VI-B) and the sectored eDRAM cache
// (Section VI-C). Each controller implements cpu.Backend, owns its DRAM
// array device(s), shares the main-memory device, collects the per-window
// demand counts DAP learns from, and consults a core.Partitioner at every
// technique application point.
package mscache

import (
	"math/bits"

	"dap/internal/cpu"
	"dap/internal/mem"
	"dap/internal/stats"
)

// Controller is a memory-side cache plus its steering logic.
type Controller interface {
	cpu.Backend
	// MSStats exposes the memory-side cache statistics.
	MSStats() *stats.MemSideStats
	// CacheCAS returns the CAS operations performed by the cache array so
	// far (main-memory CAS comes from the shared device).
	CacheCAS() uint64
	// ResetStats clears statistics after warmup.
	ResetStats()
}

// footprintTable is the history table of the footprint prefetcher [26]:
// it remembers which blocks of a sector were touched during its last
// residency so that the next allocation of that sector fetches only those.
type footprintTable struct {
	m   map[uint64]uint64
	cap int
}

func newFootprintTable(capacity int) *footprintTable {
	return &footprintTable{m: make(map[uint64]uint64, capacity), cap: capacity}
}

// predict returns the footprint recorded for a sector (0 when unknown).
func (f *footprintTable) predict(sector uint64) uint64 { return f.m[sector] }

// record stores a sector's observed footprint, evicting an arbitrary entry
// when full.
func (f *footprintTable) record(sector uint64, mask uint64) {
	if len(f.m) >= f.cap {
		if _, ok := f.m[sector]; !ok {
			for k := range f.m {
				delete(f.m, k)
				break
			}
		}
	}
	f.m[sector] = mask
}

// forEachBit invokes fn with each set bit index of mask.
func forEachBit(mask uint64, fn func(i uint)) {
	for mask != 0 {
		fn(uint(bits.TrailingZeros64(mask)))
		mask &= mask - 1
	}
}

// blockAddr returns the byte address of block i within the sector that
// contains addr, for a sector of sectorBlocks lines.
func blockAddr(addr mem.Addr, sectorBlocks uint64, i uint) mem.Addr {
	base := addr &^ mem.Addr(sectorBlocks*mem.LineBytes-1)
	return base + mem.Addr(uint64(i)*mem.LineBytes)
}
