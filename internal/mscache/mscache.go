// Package mscache implements the three memory-side cache architectures the
// paper evaluates DAP on: the die-stacked sectored DRAM cache (Section
// VI-A), the Alloy cache (Section VI-B) and the sectored eDRAM cache
// (Section VI-C). Each controller implements cpu.Backend, owns its DRAM
// array device(s), shares the main-memory device, collects the per-window
// demand counts DAP learns from, and consults a core.Partitioner at every
// technique application point.
package mscache

import (
	"math/bits"

	"dap/internal/cpu"
	"dap/internal/mem"
	"dap/internal/stats"
)

// Controller is a memory-side cache plus its steering logic.
type Controller interface {
	cpu.Backend
	// MSStats exposes the memory-side cache statistics.
	MSStats() *stats.MemSideStats
	// CacheCAS returns the CAS operations performed by the cache array so
	// far (main-memory CAS comes from the shared device).
	CacheCAS() uint64
	// ResetStats clears statistics after warmup.
	ResetStats()
}

// footprintTable is the history table of the footprint prefetcher [26]:
// it remembers which blocks of a sector were touched during its last
// residency so that the next allocation of that sector fetches only those.
// footprintTable is an open-addressed hash table from sector to footprint
// mask: keys holds sector+1 (0 marks an empty slot), vals the masks, and
// the table is sized to twice the entry budget so linear probes terminate
// at an empty slot. Two flat slices replace the previous Go map: building
// a controller costs two allocations instead of a bucket tree, lookups
// never hash through the runtime, and the at-capacity eviction choice is
// deterministic (the new sector's home slot) where map iteration order was
// not.
type footprintTable struct {
	keys []uint64 // sector+1; 0 marks an empty slot
	vals []uint64
	mask uint64
	n    int // occupied slots
	cap  int // entry budget
}

func newFootprintTable(capacity int) *footprintTable {
	sz := 2
	for sz < 2*capacity {
		sz <<= 1
	}
	return &footprintTable{
		keys: make([]uint64, sz),
		vals: make([]uint64, sz),
		mask: uint64(sz - 1),
		cap:  capacity,
	}
}

// home returns a sector's preferred slot (Fibonacci hashing: multiply by
// the 64-bit golden ratio and fold the halves so high entropy reaches the
// low bits the mask keeps).
func (f *footprintTable) home(sector uint64) uint64 {
	h := sector * 0x9e3779b97f4a7c15
	return (h ^ h>>32) & f.mask
}

// predict returns the footprint recorded for a sector (0 when unknown).
func (f *footprintTable) predict(sector uint64) uint64 {
	k := sector + 1
	i := f.home(sector)
	for range f.keys {
		switch f.keys[i] {
		case k:
			return f.vals[i]
		case 0:
			return 0
		}
		i = (i + 1) & f.mask
	}
	return 0
}

// record stores a sector's observed footprint. At the entry budget a new
// sector deterministically evicts whatever occupies its home slot; the
// eviction never empties a slot, so other keys' probe chains stay intact.
func (f *footprintTable) record(sector uint64, mask uint64) {
	k := sector + 1
	i := f.home(sector)
	for range f.keys {
		switch f.keys[i] {
		case k:
			f.vals[i] = mask
			return
		case 0:
			if f.n >= f.cap {
				i = f.home(sector)
				if f.keys[i] == 0 {
					f.n++ // the home slot itself was the empty one
				}
			} else {
				f.n++
			}
			f.keys[i], f.vals[i] = k, mask
			return
		}
		i = (i + 1) & f.mask
	}
	// Physically full (unreachable while the budget is at most half the
	// table): still make deterministic progress by evicting the home slot.
	i = f.home(sector)
	f.keys[i], f.vals[i] = k, mask
}

// forEachBit invokes fn with each set bit index of mask.
func forEachBit(mask uint64, fn func(i uint)) {
	for mask != 0 {
		fn(uint(bits.TrailingZeros64(mask)))
		mask &= mask - 1
	}
}

// blockAddr returns the byte address of block i within the sector that
// contains addr, for a sector of sectorBlocks lines.
func blockAddr(addr mem.Addr, sectorBlocks uint64, i uint) mem.Addr {
	base := addr &^ mem.Addr(sectorBlocks*mem.LineBytes-1)
	return base + mem.Addr(uint64(i)*mem.LineBytes)
}
