package mscache

import (
	"dap/internal/cache"
	"dap/internal/core"
	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/obs"
	"dap/internal/sim"
	"dap/internal/stats"
)

// AlloyConfig describes an Alloy cache: a direct-mapped DRAM cache whose
// tag and data (TAD) are fused in the array, so every array access moves a
// 72 B TAD over three HBM clocks instead of two — the bandwidth bloat BEAR
// and DAP manage (Section VI-B).
type AlloyConfig struct {
	CapacityBytes int
	// TADBurst is the device-clock occupancy of one TAD transfer.
	TADBurst uint8

	// BEAR enables the BEAR optimizations: the L3 presence bit that lets
	// dirty writebacks skip the TAD fetch, a dead-fill bypass predictor,
	// and miss-probe avoidance for predicted misses on known-clean sets.
	// DAP also relies on the presence bit (Section IV-B).
	BEAR bool

	// DBCEntries/DBCWays size the SRAM dirty-bit cache used by DAP's
	// forced misses; each entry covers a stretch of 64 consecutive sets.
	DBCEntries int
	DBCWays    int
	DBCLat     mem.Cycle

	Array dram.Config
}

// DefaultAlloy returns the paper's Alloy point at the 64x capacity scale.
func DefaultAlloy() AlloyConfig {
	return AlloyConfig{
		CapacityBytes: 64 * mem.MiB,
		TADBurst:      3,
		DBCEntries:    512,
		DBCWays:       4,
		DBCLat:        5,
		Array:         dram.HBM102(),
	}
}

// AlloyEffectiveGBps returns the data bandwidth usable by an Alloy cache:
// only two of every three TAD bus cycles carry data (Section VI-B).
func AlloyEffectiveGBps(peak float64) float64 { return peak * 2 / 3 }

// dbc is the dirty-bit cache: a small SRAM set-associative structure whose
// entries each hold the dirty bits of 64 consecutive direct-mapped sets.
// Storage is structure-of-arrays: gv packs group<<1|valid so a probe is one
// word compare per way over a contiguous row, with the dirty bits and LRU
// ticks in parallel arrays touched only on the matching way.
type dbc struct {
	sets, ways int
	gv         []uint64 // group<<1 | valid
	bits       []uint64 // dirty bit per set in the group
	lru        []uint64
	tick       uint64
}

func newDBC(entries, ways int) *dbc {
	if ways <= 0 {
		ways = 4
	}
	sets := entries / ways
	if sets <= 0 {
		sets = 1
	}
	n := sets * ways
	return &dbc{
		sets: sets, ways: ways,
		gv: make([]uint64, n), bits: make([]uint64, n), lru: make([]uint64, n),
	}
}

// lookup returns the entry index for a group, or -1 on a DBC miss.
func (d *dbc) lookup(group uint64) int {
	d.tick++
	base := int(group%uint64(d.sets)) * d.ways
	want := group<<1 | 1
	for i := base; i < base+d.ways; i++ {
		if d.gv[i] == want {
			d.lru[i] = d.tick
			return i
		}
	}
	return -1
}

// install allocates an entry for group with the given initial bits and
// returns its index.
func (d *dbc) install(group, bits uint64) int {
	d.tick++
	base := int(group%uint64(d.sets)) * d.ways
	v := base
	for i := base; i < base+d.ways; i++ {
		if d.gv[i]&1 == 0 {
			v = i
			break
		}
		if d.lru[i] < d.lru[v] {
			v = i
		}
	}
	d.gv[v] = group<<1 | 1
	d.bits[v] = bits
	d.lru[v] = d.tick
	return v
}

// Alloy is the Alloy cache controller.
type Alloy struct {
	cfg AlloyConfig
	eng *sim.Engine
	dev *dram.Device
	mm  *dram.Device

	tags *cache.Cache // direct-mapped; Line.State bit0 = reused-since-fill
	dbc  *dbc

	part core.Partitioner
	wc   core.WindowCounts
	st   stats.MemSideStats
	tr   *obs.Tracer

	// hit/miss predictor: 2-bit counters hashed by 4 KB region and core.
	pred []uint8
	// fill-bypass predictor (BEAR): 2-bit usefulness counters trained by
	// observed fill reuse.
	fillPred []uint8

	// Pooled continuation records (see ops.go).
	fwd     fwdPool
	freeOps []*alloyOp
}

// alloyOp is the pooled continuation for one Alloy request. A read may
// have up to two outstanding completions at once (the parallel-miss TAD
// probe and main-memory access), so the record is reference-counted: each
// issued callback holds one reference and drops it when it will touch the
// record no further; the record recycles at zero. The callback fields are
// prebound method values, created once per record.
type alloyOp struct {
	a      *Alloy
	addr   mem.Addr
	coreID int
	sp     *obs.Span
	done   func(mem.Cycle)

	refs      int8
	launchPar bool // main-memory access launched alongside the TAD probe
	bearHit   bool // BEAR miss-probe-avoidance path: the line was present
	mmArrived bool
	tadMiss   bool
	resolved  bool
	mmT       mem.Cycle

	mmCB, tadCB, finCB, bearCB, wbCB func(mem.Cycle)
}

func (a *Alloy) getOp(addr mem.Addr, coreID int, sp *obs.Span, done func(mem.Cycle)) *alloyOp {
	var op *alloyOp
	if n := len(a.freeOps); n > 0 {
		op = a.freeOps[n-1]
		a.freeOps = a.freeOps[:n-1]
	} else {
		op = &alloyOp{}
		op.mmCB = op.mmDone
		op.tadCB = op.tadDone
		op.finCB = op.fin
		op.bearCB = op.bear
		op.wbCB = op.wbTadDone
	}
	op.a, op.addr, op.coreID, op.sp, op.done = a, addr, coreID, sp, done
	op.refs, op.launchPar, op.bearHit = 0, false, false
	op.mmArrived, op.tadMiss, op.resolved, op.mmT = false, false, false, 0
	return op
}

func (op *alloyOp) deref() {
	op.refs--
	if op.refs == 0 {
		op.sp, op.done = nil, nil
		op.a.freeOps = append(op.a.freeOps, op)
	}
}

// finishMiss resolves a read miss exactly once (the parallel TAD probe and
// main-memory access can both reach it).
func (op *alloyOp) finishMiss(t mem.Cycle) {
	if op.resolved {
		return
	}
	op.resolved = true
	op.a.fill(op.addr, op.coreID, false, true)
	op.done(t)
}

// mmDone joins the parallel-launched main-memory completion.
func (op *alloyOp) mmDone(t mem.Cycle) {
	op.mmArrived, op.mmT = true, t
	if op.tadMiss {
		op.finishMiss(t)
	}
	op.deref()
}

// tadDone resolves the TAD probe: a hit serves from the array (any
// parallel main-memory response is dropped); a miss joins with — or, when
// no parallel access was launched, starts — the main-memory read.
func (op *alloyOp) tadDone(t mem.Cycle) {
	a := op.a
	line := a.tags.Probe(op.addr)
	hit := line.Ok()
	a.trainPred(op.addr, op.coreID, hit)
	if hit {
		a.st.ReadHits++
		line.OrState(1) // reused
		a.tags.Lookup(op.addr)
		op.sp.Decide(stats.BDTechNone)
		op.sp.Serve(stats.BDSrcCache)
		done := op.done
		op.deref()
		done(t) // the TAD carries the data; a parallel MM response is dropped
		return
	}
	a.st.ReadMisses++
	a.wc.AMM++
	a.wc.Rm++
	op.tadMiss = true
	op.sp.Decide(stats.BDTechNone)
	if op.launchPar {
		if op.mmArrived {
			tt := t
			if op.mmT > tt {
				tt = op.mmT
			}
			op.finishMiss(tt)
		}
		op.deref()
		return
	}
	op.sp.Serve(stats.BDSrcMain)
	// the TAD reference transfers to the main-memory completion (finCB)
	a.mm.AccessTraced(op.addr, mem.ReadKind, op.coreID, obs.OnIssue(op.sp), op.finCB)
}

// fin completes the serial (non-parallel) miss path.
func (op *alloyOp) fin(t mem.Cycle) {
	op.finishMiss(t)
	op.deref()
}

// bear completes the BEAR miss-probe-avoidance path.
func (op *alloyOp) bear(t mem.Cycle) {
	a, addr, coreID, hit, done := op.a, op.addr, op.coreID, op.bearHit, op.done
	op.deref()
	if !hit {
		a.fill(addr, coreID, false, false)
	}
	done(t)
}

// wbTadDone completes the baseline (non-BEAR) writeback's presence-
// establishing TAD fetch.
func (op *alloyOp) wbTadDone(mem.Cycle) {
	a, addr, coreID := op.a, op.addr, op.coreID
	op.deref()
	a.applyWriteback(addr, coreID, true)
}

// alloyIFRM resumes a DAP forced miss after the DBC lookup latency.
func alloyIFRM(ctx any, _ uint64, _ mem.Cycle) {
	op := ctx.(*alloyOp)
	a, addr, coreID, sp, done := op.a, op.addr, op.coreID, op.sp, op.done
	op.deref()
	sp.Decide(stats.BDTechIFRM)
	sp.Serve(stats.BDSrcMain)
	a.mm.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), done)
}

// NewAlloy builds the controller. mm is the shared main-memory device.
func NewAlloy(cfg AlloyConfig, eng *sim.Engine, mm *dram.Device, part core.Partitioner) *Alloy {
	a := &Alloy{cfg: cfg, eng: eng, mm: mm, part: part}
	a.fwd.mm = mm
	a.dev = dram.NewDevice(cfg.Array, eng)
	sets := cfg.CapacityBytes / mem.LineBytes
	a.tags = cache.New(sets, 1, cache.LRU, 1)
	a.dbc = newDBC(cfg.DBCEntries, cfg.DBCWays)
	a.pred = make([]uint8, 4096)
	a.fillPred = make([]uint8, 4096)
	for i := range a.pred {
		a.pred[i] = 2 // weakly predict hit
	}
	for i := range a.fillPred {
		a.fillPred[i] = 3 // fills start strongly useful; dead fills train it down
	}
	return a
}

// Windows exposes the window counters for the partitioner.
func (a *Alloy) Windows() *core.WindowCounts { return &a.wc }

// MSStats implements Controller.
func (a *Alloy) MSStats() *stats.MemSideStats { return &a.st }

// CacheCAS implements Controller.
func (a *Alloy) CacheCAS() uint64 { st := a.dev.Stats(); return st.CAS() }

// Device exposes the cache array.
func (a *Alloy) Device() *dram.Device { return a.dev }

// ResetStats implements Controller.
func (a *Alloy) ResetStats() {
	a.st = stats.MemSideStats{}
	a.dev.ResetStats()
}

func predIdx(addr mem.Addr, coreID int) int {
	h := uint64(addr>>12)*0x9e3779b97f4a7c15 + uint64(coreID)*0xbf58476d1ce4e5b9
	return int((h >> 40) % 4096)
}

func (a *Alloy) predictHit(addr mem.Addr, coreID int) bool {
	return a.pred[predIdx(addr, coreID)] >= 2
}

func (a *Alloy) trainPred(addr mem.Addr, coreID int, hit bool) {
	i := predIdx(addr, coreID)
	if hit {
		if a.pred[i] < 3 {
			a.pred[i]++
		}
	} else if a.pred[i] > 0 {
		a.pred[i]--
	}
}

// setOf returns the direct-mapped set of an address plus its DBC group and
// in-group bit.
func (a *Alloy) setOf(addr mem.Addr) (set int, group uint64, bit uint64) {
	set, _ = a.tags.Index(addr)
	group = uint64(set) / 64
	bit = 1 << (uint64(set) % 64)
	return set, group, bit
}

// tad enqueues a TAD-sized array access through the device's request pool.
func (a *Alloy) tad(addr mem.Addr, kind mem.Kind, coreID int, done func(mem.Cycle)) {
	a.dev.AccessBurst(addr, kind, coreID, a.cfg.TADBurst, done)
}

// dbcBitsFromTags rebuilds a DBC entry from the tag array (models a
// TAD-sourced refill of the dirty-bit cache).
func (a *Alloy) dbcBitsFromTags(group uint64) uint64 {
	var bits uint64
	base := int(group * 64)
	for i := 0; i < 64; i++ {
		set := base + i
		if set >= a.tags.Sets {
			break
		}
		dirty := false
		a.tags.ForEachInSet(set, func(l cache.Ref) { dirty = dirty || l.Dirty() })
		if dirty {
			bits |= 1 << uint(i)
		}
	}
	return bits
}

// Read implements cpu.Backend.
func (a *Alloy) Read(addr mem.Addr, coreID int, kind mem.Kind, done func(mem.Cycle)) {
	addr = addr.LineAligned()
	if done == nil {
		done = func(mem.Cycle) {}
	}
	sp := a.tr.Read(coreID, addr, kind)
	done = sp.Wrap(done)
	_, group, bit := a.setOf(addr)

	dbcClean := false
	if e := a.dbc.lookup(group); e >= 0 && a.dbc.bits[e]&bit == 0 {
		dbcClean = true
		a.wc.CleanHits++ // IFRM candidate
	}

	// DAP forced miss: a DBC-known-clean set can be served from main
	// memory, skipping the TAD fetch; the fill is implicitly skipped too.
	if dbcClean && a.part.TakeIFRM(coreID) {
		a.wc.AMSR++ // the TAD read this access would have demanded
		a.st.ForcedMisses++
		if a.tags.Probe(addr).Ok() {
			a.st.ReadHits++
		} else {
			a.st.ReadMisses++
			a.wc.AMM++
			a.wc.Rm++
		}
		op := a.getOp(addr, coreID, sp, done)
		op.refs = 1
		a.eng.AfterArg(a.cfg.DBCLat, alloyIFRM, op, 0)
		return
	}

	predictedHit := a.predictHit(addr, coreID)

	// BEAR miss-probe avoidance: a predicted miss on a known-clean set can
	// skip the TAD probe (clean or absent lines are consistent with main
	// memory, so the main-memory copy is always safe to use).
	if a.cfg.BEAR && !predictedHit && dbcClean {
		hit := a.tags.Probe(addr).Ok()
		a.trainPred(addr, coreID, hit)
		if hit {
			a.st.ReadHits++
		} else {
			a.st.ReadMisses++
			a.wc.Rm++
		}
		a.wc.AMM++
		sp.Decide(stats.BDTechNone)
		sp.Serve(stats.BDSrcMain)
		op := a.getOp(addr, coreID, sp, done)
		op.refs, op.bearHit = 1, hit
		a.mm.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), op.bearCB)
		return
	}

	// Parallel miss handling: on a predicted miss, start the main-memory
	// access alongside the TAD probe and join the two completions on one
	// reference-counted op.
	op := a.getOp(addr, coreID, sp, done)
	op.launchPar = !predictedHit
	op.refs = 1
	if op.launchPar {
		op.refs = 2
		// Speculative serve mark: on a TAD hit the span is re-marked with
		// the true source in tadDone.
		sp.Serve(stats.BDSrcMain)
		a.mm.AccessTraced(addr, mem.ReadKind, coreID, obs.OnIssue(sp), op.mmCB)
	}

	a.wc.AMSR++
	sp.Meta()
	a.tad(addr, mem.MetaReadKind, coreID, op.tadCB)
}

// fill installs a returned line. probed reports whether a TAD read of the
// victim's location already happened (its data is then in hand; otherwise a
// dirty victim costs an extra TAD read before the main-memory write).
func (a *Alloy) fill(addr mem.Addr, coreID int, dirty, probed bool) {
	a.wc.AMSW++
	if a.part.TakeFWB() {
		a.st.FillBypasses++
		return
	}
	if a.cfg.BEAR && !dirty && a.fillPred[predIdx(addr, coreID)] < 2 {
		a.st.FillBypasses++
		return
	}
	a.st.Fills++
	_, group, bit := a.setOf(addr)
	ev := a.tags.Insert(addr, dirty)
	if nl := a.tags.Probe(addr); nl.Ok() {
		nl.SetState(0)
	}
	if ev.Valid {
		// train the fill predictor on the victim's observed reuse
		i := predIdx(addr, coreID)
		if ev.State&1 != 0 {
			if a.fillPred[i] < 3 {
				a.fillPred[i]++
			}
		} else if a.fillPred[i] > 0 {
			a.fillPred[i]--
		}
		if ev.Dirty {
			si, _ := a.tags.Index(addr)
			va := a.tags.LineAddr(si, ev.Tag)
			a.st.DirtyWriteouts++
			a.wc.AMM++
			if probed {
				// the probe already moved the victim's TAD
				a.mm.Access(va, mem.WritebackKind, -1, nil)
			} else {
				a.st.VictimReads++
				a.wc.AMSR++
				a.tad(va, mem.VictimRdKind, -1, a.fwd.forward(va))
			}
		}
	}
	a.tad(addr, mem.FillKind, -1, nil)
	e := a.dbc.lookup(group)
	if e < 0 {
		e = a.dbc.install(group, a.dbcBitsFromTags(group))
	}
	if dirty {
		a.dbc.bits[e] |= bit
	} else {
		a.dbc.bits[e] &^= bit
	}
}

// Writeback implements cpu.Backend.
func (a *Alloy) Writeback(addr mem.Addr, coreID int) {
	addr = addr.LineAligned()
	a.wc.Wm++

	if a.cfg.BEAR {
		// the L3 presence bit obviates the TAD fetch before a write
		a.applyWriteback(addr, coreID, false)
		return
	}
	// baseline Alloy: a TAD fetch must establish presence first
	a.wc.AMSR++
	a.st.MetaReads++
	op := a.getOp(addr, coreID, nil, nil)
	op.refs = 1
	a.tad(addr, mem.MetaReadKind, coreID, op.wbCB)
}

// applyWriteback lands a writeback once presence is established (directly
// under BEAR; after the TAD fetch otherwise).
func (a *Alloy) applyWriteback(addr mem.Addr, coreID int, probed bool) {
	_, group, bit := a.setOf(addr)
	line := a.tags.Probe(addr)
	if !line.Ok() {
		a.st.WriteMisses++
		a.fill(addr, coreID, true, probed)
		return
	}
	a.st.WriteHits++
	a.wc.AMSW++
	// DAP write-through: spend residual main-memory bandwidth keeping
	// blocks clean so forced misses stay applicable.
	wt := a.part.TakeWT()
	line.SetDirty(!wt)
	line.OrState(1)
	a.tags.Lookup(addr)
	a.tad(addr, mem.WritebackKind, coreID, nil)
	if wt {
		a.mm.Access(addr, mem.WritebackKind, coreID, nil)
	}
	e := a.dbc.lookup(group)
	if e < 0 {
		e = a.dbc.install(group, a.dbcBitsFromTags(group))
	}
	if wt {
		a.dbc.bits[e] &^= bit
	} else {
		a.dbc.bits[e] |= bit
	}
}

// WarmRead implements cpu.Backend's functional path.
func (a *Alloy) WarmRead(addr mem.Addr, coreID int) {
	addr = addr.LineAligned()
	if l := a.tags.Lookup(addr); l.Ok() {
		l.OrState(1)
		return
	}
	a.tags.Insert(addr, false)
}

// WarmWriteback implements cpu.Backend's functional path.
func (a *Alloy) WarmWriteback(addr mem.Addr, coreID int) {
	addr = addr.LineAligned()
	_, group, bit := a.setOf(addr)
	if l := a.tags.Lookup(addr); l.Ok() {
		l.MarkDirty()
	} else {
		a.tags.Insert(addr, true)
	}
	if e := a.dbc.lookup(group); e >= 0 {
		a.dbc.bits[e] |= bit
	} else {
		a.dbc.install(group, a.dbcBitsFromTags(group))
	}
}

// SetPartitioner replaces the partitioning policy (used after construction
// once the DAP instance has been wired to this controller's counters).
func (a *Alloy) SetPartitioner(p core.Partitioner) { a.part = p }

// SetTracer attaches a request-lifecycle tracer (nil disables tracing; all
// hooks are nil-safe no-ops).
func (a *Alloy) SetTracer(t *obs.Tracer) { a.tr = t }
