package mscache

import (
	"fmt"

	"dap/internal/cache"
	"dap/internal/check"
	"dap/internal/mem"
)

// validSectorGeometry checks the sector parameters shared by the sectored
// DRAM and eDRAM caches: the per-block valid/dirty masks are 64-bit words,
// so a sector holds at most 64 lines, and the tag array's set count must be
// a positive power of two.
func validSectorGeometry(errs *check.Collector, capacity, sectorBytes, ways int) {
	errs.Positive("CapacityBytes", capacity)
	if sectorBytes < mem.LineBytes || sectorBytes%mem.LineBytes != 0 {
		errs.Addf("SectorBytes", sectorBytes, "must be a positive multiple of the %d B line", mem.LineBytes)
		return
	}
	if blocks := sectorBytes / mem.LineBytes; blocks > 64 {
		errs.Addf("SectorBytes", sectorBytes, "sector holds %d blocks; the valid/dirty masks support at most 64", blocks)
	}
	errs.Positive("Ways", ways)
	if capacity <= 0 || ways <= 0 {
		return
	}
	sets := capacity / sectorBytes / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		errs.Addf("CapacityBytes", capacity,
			"capacity/sector/ways = %d sets; must be a positive power of two", sets)
	}
}

// Validate checks the sectored DRAM cache configuration, including the
// embedded HBM array, reporting every problem at once.
func (c *SectoredConfig) Validate() error {
	var errs check.Collector
	validSectorGeometry(&errs, c.CapacityBytes, c.SectorBytes, c.Ways)
	if c.TagCacheEntries < 0 {
		errs.Addf("TagCacheEntries", c.TagCacheEntries, "must not be negative")
	} else if c.TagCacheEntries > 0 {
		if c.TagCacheWays <= 0 {
			errs.Addf("TagCacheWays", c.TagCacheWays, "must be positive when the tag cache is enabled")
		} else if sets := c.TagCacheEntries / c.TagCacheWays; sets <= 0 || sets&(sets-1) != 0 {
			errs.Addf("TagCacheEntries", c.TagCacheEntries,
				"entries/ways = %d sets; must be a positive power of two", sets)
		}
	}
	if c.Replacement > cache.Rand {
		errs.Addf("Replacement", c.Replacement, "unknown replacement policy")
	}
	errs.NonNegative("FootprintEntries", c.FootprintEntries)
	errs.Sub("Array", c.Array.Validate())
	return errs.Err()
}

// Validate checks the Alloy cache configuration, reporting every problem at
// once.
func (c *AlloyConfig) Validate() error {
	var errs check.Collector
	errs.Positive("CapacityBytes", c.CapacityBytes)
	if c.TADBurst == 0 {
		errs.Addf("TADBurst", c.TADBurst, "must be positive")
	}
	if c.CapacityBytes > 0 {
		if sets := c.CapacityBytes / mem.LineBytes; sets <= 0 || sets&(sets-1) != 0 {
			errs.Addf("CapacityBytes", c.CapacityBytes,
				"capacity/line = %d direct-mapped sets; must be a positive power of two", sets)
		}
	}
	errs.NonNegative("DBCEntries", c.DBCEntries)
	if c.DBCEntries > 0 && c.DBCWays <= 0 {
		errs.Addf("DBCWays", c.DBCWays, "must be positive when the dirty-bit cache is enabled")
	}
	errs.Sub("Array", c.Array.Validate())
	return errs.Err()
}

// Validate checks the sectored eDRAM cache configuration, including both
// channel sets, reporting every problem at once.
func (c *EDRAMConfig) Validate() error {
	var errs check.Collector
	validSectorGeometry(&errs, c.CapacityBytes, c.SectorBytes, c.Ways)
	errs.Sub("ReadArray", c.ReadArray.Validate())
	errs.Sub("WriteArray", c.WriteArray.Validate())
	if c.ReadArray.WriteOnly {
		errs.Addf("ReadArray.WriteOnly", true, "the read channel set cannot be write-only")
	}
	if c.WriteArray.ReadOnly {
		errs.Addf("WriteArray.ReadOnly", true, "the write channel set cannot be read-only")
	}
	return errs.Err()
}

// AuditInvariants checks the sectored cache's structural invariants: a
// dirty block must also be valid (DMask within VMask). It returns a
// description of the first violated line, or nil.
func (s *Sectored) AuditInvariants() error {
	return auditSectorMasks(s.tags)
}

// AuditInvariants checks the eDRAM cache's structural invariants (same
// dirty-within-valid rule as the sectored DRAM cache).
func (e *EDRAM) AuditInvariants() error {
	return auditSectorMasks(e.tags)
}

// auditSectorMasks scans a sector tag array for dirty bits set on invalid
// blocks — the signature of a lost or double-counted writeback.
func auditSectorMasks(tags *cache.Cache) error {
	for set := 0; set < tags.Sets; set++ {
		var bad error
		tags.ForEachInSet(set, func(l cache.Ref) {
			if bad == nil && l.DMask()&^l.VMask() != 0 {
				bad = fmt.Errorf("sector set %d tag %#x: dirty mask %#x exceeds valid mask %#x",
					set, l.Tag(), l.DMask(), l.VMask())
			}
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}
