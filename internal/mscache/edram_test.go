package mscache

import (
	"testing"

	"dap/internal/core"
	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/sim"
)

func testEDRAM(t *testing.T, part core.Partitioner) (*EDRAM, *dram.Device, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	mm := dram.NewDevice(dram.DDR4_2400(), eng)
	cfg := DefaultEDRAM()
	cfg.CapacityBytes = 512 * mem.KiB // 32 sets x 16 ways
	e := NewEDRAM(cfg, eng, mm, part)
	return e, mm, eng
}

func eread(e *EDRAM, eng *sim.Engine, a mem.Addr) {
	e.Read(a, 0, mem.ReadKind, nil)
	eng.Drain()
}

func TestEDRAMMissFillsViaWriteChannels(t *testing.T) {
	e, mm, eng := testEDRAM(t, core.Nop{})
	a := mem.Addr(0x1000)
	eread(e, eng, a)
	if e.st.ReadMisses != 1 {
		t.Fatalf("misses = %d", e.st.ReadMisses)
	}
	if mm.Stats().Reads == 0 {
		t.Fatal("miss must read main memory")
	}
	if e.wdev.Stats().Writes != 1 {
		t.Fatal("fill must use the write channels")
	}
	if e.rdev.Stats().Reads != 0 {
		t.Fatal("fill must not consume read-channel bandwidth")
	}
}

func TestEDRAMHitUsesReadChannels(t *testing.T) {
	e, _, eng := testEDRAM(t, core.Nop{})
	a := mem.Addr(0x2000)
	eread(e, eng, a)
	eread(e, eng, a)
	if e.st.ReadHits != 1 {
		t.Fatalf("hits = %d", e.st.ReadHits)
	}
	if e.rdev.Stats().Reads != 1 {
		t.Fatal("hit must use the read channels")
	}
}

func TestEDRAMNoMetadataTraffic(t *testing.T) {
	e, _, eng := testEDRAM(t, core.Nop{})
	for i := 0; i < 50; i++ {
		eread(e, eng, mem.Addr(i*4096))
	}
	if e.st.MetaReads != 0 || e.st.MetaWrites != 0 {
		t.Fatal("eDRAM metadata is on-die SRAM: no metadata CAS")
	}
	if e.st.TagCacheMisses != 0 {
		t.Fatal("eDRAM has no tag cache")
	}
}

func TestEDRAMWritebackDirty(t *testing.T) {
	e, _, eng := testEDRAM(t, core.Nop{})
	a := mem.Addr(0x3000)
	e.Writeback(a, 0)
	eng.Drain()
	line := e.tags.Probe(a)
	if !line.Ok() || line.DMask()&e.blockBit(a) == 0 {
		t.Fatal("writeback must install dirty")
	}
	if e.wdev.Stats().Writes != 1 {
		t.Fatal("writeback must use the write channels")
	}
}

func TestEDRAMEvictionUsesReadChannelsAndMemory(t *testing.T) {
	e, mm, eng := testEDRAM(t, core.Nop{})
	sets := e.tags.Sets
	// fill one set's 16 ways with dirty sectors, then overflow it
	for w := 0; w <= 16; w++ {
		e.Writeback(mem.Addr(uint64(w)*uint64(sets)*1024), 0)
		eng.Drain()
	}
	if e.st.SectorEvicts == 0 {
		t.Fatal("17th sector must evict")
	}
	if e.st.VictimReads == 0 || e.rdev.Stats().Reads == 0 {
		t.Fatal("victim blocks are read out via the read channels")
	}
	if mm.Stats().Writes == 0 {
		t.Fatal("victim blocks must land in main memory")
	}
}

func TestEDRAMIFRMAndWB(t *testing.T) {
	stub := &dapStub{ifrm: 5, wb: 5}
	e, mm, eng := testEDRAM(t, stub)
	a := mem.Addr(0x4000)
	eread(e, eng, a) // clean resident
	mmR := mm.Stats().Reads
	eread(e, eng, a)
	if e.st.ForcedMisses != 1 || mm.Stats().Reads <= mmR {
		t.Fatal("IFRM must serve the clean hit from memory")
	}
	mmW := mm.Stats().Writes
	e.Writeback(a, 0)
	eng.Drain()
	if e.st.WriteBypasses != 1 || mm.Stats().Writes <= mmW {
		t.Fatal("WB must steer the write to memory")
	}
	if l := e.tags.Probe(a); l.Ok() && l.VMask()&e.blockBit(a) != 0 {
		t.Fatal("bypassed write must invalidate the cached block")
	}
}

func TestEDRAMFWB(t *testing.T) {
	stub := &dapStub{fwb: 5}
	e, _, eng := testEDRAM(t, stub)
	a := mem.Addr(0x5000)
	eread(e, eng, a)
	if e.st.FillBypasses != 1 {
		t.Fatal("fill must be bypassed")
	}
	if e.wdev.Stats().Writes != 0 {
		t.Fatal("bypassed fill must not touch the write channels")
	}
}

func TestEDRAMWarm(t *testing.T) {
	e, mm, eng := testEDRAM(t, core.Nop{})
	a := mem.Addr(0x6000)
	e.WarmRead(a, 0)
	e.WarmWriteback(a, 0)
	if mm.Stats().CAS() != 0 || e.CacheCAS() != 0 {
		t.Fatal("warm paths are traffic-free")
	}
	eread(e, eng, a)
	if e.st.ReadHits != 1 {
		t.Fatal("warmed block must hit")
	}
}

func TestEDRAMWindowCounts(t *testing.T) {
	e, _, eng := testEDRAM(t, core.Nop{})
	a := mem.Addr(0x7000)
	eread(e, eng, a)
	wc := e.Windows()
	if wc.AMM != 1 || wc.Rm != 1 || wc.AMSW != 1 {
		t.Fatalf("miss accounting wrong: %+v", wc)
	}
	eread(e, eng, a)
	if wc.AMSR != 1 || wc.CleanHits != 1 {
		t.Fatalf("hit accounting wrong: %+v", wc)
	}
	e.Writeback(a, 0)
	eng.Drain()
	if wc.Wm != 1 {
		t.Fatalf("write accounting wrong: %+v", wc)
	}
}

func TestEDRAMCacheCASCombinesChannels(t *testing.T) {
	e, _, eng := testEDRAM(t, core.Nop{})
	a := mem.Addr(0x8000)
	eread(e, eng, a) // fill: 1 write CAS
	eread(e, eng, a) // hit: 1 read CAS
	if e.CacheCAS() != 2 {
		t.Fatalf("cache CAS = %d, want 2", e.CacheCAS())
	}
	e.ResetStats()
	if e.CacheCAS() != 0 {
		t.Fatal("reset must clear")
	}
}
