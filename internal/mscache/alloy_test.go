package mscache

import (
	"testing"

	"dap/internal/core"
	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/sim"
)

func testAlloy(t *testing.T, bear bool, part core.Partitioner) (*Alloy, *dram.Device, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	mm := dram.NewDevice(dram.DDR4_2400(), eng)
	cfg := DefaultAlloy()
	cfg.CapacityBytes = 256 * mem.KiB // 4096 sets
	cfg.BEAR = bear
	a := NewAlloy(cfg, eng, mm, part)
	return a, mm, eng
}

func areadLat(a *Alloy, eng *sim.Engine, addr mem.Addr) mem.Cycle {
	var lat mem.Cycle
	start := eng.Now()
	a.Read(addr, 0, mem.ReadKind, func(d mem.Cycle) { lat = d - start })
	eng.Drain()
	return lat
}

func TestAlloyMissThenHit(t *testing.T) {
	a, mm, eng := testAlloy(t, false, core.Nop{})
	addr := mem.Addr(0x1000)
	areadLat(a, eng, addr)
	if a.st.ReadMisses != 1 || a.st.Fills != 1 {
		t.Fatalf("stats = %+v", a.st)
	}
	mmCAS := mm.Stats().CAS()
	areadLat(a, eng, addr)
	if a.st.ReadHits != 1 {
		t.Fatalf("hits = %d", a.st.ReadHits)
	}
	// the hit may still launch a parallel memory access only if the
	// predictor said miss; after one round trips it has trained to hit
	if got := mm.Stats().CAS(); got > mmCAS+1 {
		t.Fatalf("hit generated %d memory CAS", got-mmCAS)
	}
}

func TestAlloyTADBandwidthBloat(t *testing.T) {
	a, _, eng := testAlloy(t, false, core.Nop{})
	for i := 0; i < 64; i++ {
		a.Read(mem.Addr(i*mem.LineBytes), 0, mem.ReadKind, nil)
	}
	eng.Drain()
	st := a.dev.Stats()
	// every array access is a 3-device-clock TAD: busy = CAS * 15 CPU cycles
	perAccess := float64(st.BusyCycles) / float64(st.CAS())
	if perAccess < 14.9 || perAccess > 15.1 {
		t.Fatalf("TAD bus occupancy = %.2f CPU cycles, want 15", perAccess)
	}
}

func TestAlloyDirectMappedConflict(t *testing.T) {
	a, _, eng := testAlloy(t, false, core.Nop{})
	x := mem.Addr(0)
	y := x + mem.Addr(a.tags.Sets*mem.LineBytes) // same set
	areadLat(a, eng, x)
	areadLat(a, eng, y)
	if a.tags.Probe(x).Ok() {
		t.Fatal("direct-mapped conflict must evict x")
	}
	areadLat(a, eng, x)
	if a.st.ReadMisses != 3 {
		t.Fatalf("read misses = %d, want 3 (conflict thrash)", a.st.ReadMisses)
	}
}

func TestAlloyBaselineWritebackFetchesTAD(t *testing.T) {
	a, _, eng := testAlloy(t, false, core.Nop{})
	addr := mem.Addr(0x2000)
	areadLat(a, eng, addr)
	metaBefore := a.st.MetaReads
	a.Writeback(addr, 0)
	eng.Drain()
	if a.st.MetaReads != metaBefore+1 {
		t.Fatal("baseline Alloy write must fetch the TAD first")
	}
	if l := a.tags.Probe(addr); !l.Ok() || !l.Dirty() {
		t.Fatal("write hit must mark dirty")
	}
}

func TestAlloyBEARWritebackSkipsTADFetch(t *testing.T) {
	a, _, eng := testAlloy(t, true, core.Nop{})
	addr := mem.Addr(0x3000)
	areadLat(a, eng, addr)
	metaBefore := a.st.MetaReads
	a.Writeback(addr, 0)
	eng.Drain()
	if a.st.MetaReads != metaBefore {
		t.Fatal("BEAR presence bit must skip the TAD fetch")
	}
}

func TestAlloyDirtyVictimWrittenToMemory(t *testing.T) {
	a, mm, eng := testAlloy(t, true, core.Nop{})
	x := mem.Addr(0x100)
	y := x + mem.Addr(a.tags.Sets*mem.LineBytes)
	a.Writeback(x, 0) // dirty resident line
	eng.Drain()
	w := mm.Stats().Writes
	areadLat(a, eng, y) // conflicting fill evicts dirty x
	if mm.Stats().Writes <= w {
		t.Fatal("dirty victim must be written to main memory")
	}
	if a.st.DirtyWriteouts == 0 {
		t.Fatal("dirty writeout must be counted")
	}
}

func TestAlloyDBCTracksDirtySets(t *testing.T) {
	a, _, eng := testAlloy(t, true, core.Nop{})
	addr := mem.Addr(0x4000)
	a.Writeback(addr, 0)
	eng.Drain()
	_, group, bit := a.setOf(addr)
	e := a.dbc.lookup(group)
	if e < 0 || a.dbc.bits[e]&bit == 0 {
		t.Fatal("write must set the DBC dirty bit")
	}
}

func TestAlloyIFRMSkipsTADForCleanSet(t *testing.T) {
	stub := &dapStub{ifrm: 10}
	a, mm, eng := testAlloy(t, true, stub)
	addr := mem.Addr(0x5000)
	areadLat(a, eng, addr) // fill clean
	// ensure a DBC entry exists for the group (a write elsewhere installs it)
	other := addr + 2*mem.LineBytes
	a.Writeback(other, 0)
	eng.Drain()
	devCAS := a.dev.Stats().CAS()
	mmR := mm.Stats().Reads
	areadLat(a, eng, addr)
	if a.st.ForcedMisses != 1 {
		t.Fatalf("forced misses = %d", a.st.ForcedMisses)
	}
	if a.dev.Stats().CAS() != devCAS {
		t.Fatal("forced miss must skip the TAD access entirely")
	}
	if mm.Stats().Reads <= mmR {
		t.Fatal("forced miss must read from main memory")
	}
}

func TestAlloyIFRMNotAppliedToDirtySet(t *testing.T) {
	stub := &dapStub{ifrm: 10}
	a, _, eng := testAlloy(t, true, stub)
	addr := mem.Addr(0x6000)
	a.Writeback(addr, 0) // dirty; DBC knows
	eng.Drain()
	areadLat(a, eng, addr)
	if a.st.ForcedMisses != 0 {
		t.Fatal("dirty set must never be forced to memory")
	}
}

// wtStub grants write-through credits only.
type wtStub struct{ core.Nop }

func (wtStub) TakeWT() bool { return true }

func TestAlloyWriteThroughKeepsClean(t *testing.T) {
	a, mm, eng := testAlloy(t, true, wtStub{})
	addr := mem.Addr(0x7000)
	areadLat(a, eng, addr)
	w := mm.Stats().Writes
	a.Writeback(addr, 0)
	eng.Drain()
	if mm.Stats().Writes <= w {
		t.Fatal("write-through must copy the write to main memory")
	}
	if l := a.tags.Probe(addr); !l.Ok() || l.Dirty() {
		t.Fatal("written-through line must stay clean")
	}
	_, group, bit := a.setOf(addr)
	if e := a.dbc.lookup(group); e < 0 || a.dbc.bits[e]&bit != 0 {
		t.Fatal("DBC must mark the set clean after write-through")
	}
}

func TestAlloyHitPredictorTrains(t *testing.T) {
	a, _, eng := testAlloy(t, false, core.Nop{})
	addr := mem.Addr(0x8000)
	if !a.predictHit(addr, 0) {
		t.Fatal("predictor starts weakly predicting hit")
	}
	// repeated misses to the region train it toward miss
	for i := 0; i < 8; i++ {
		x := addr + mem.Addr(i)*mem.Addr(a.tags.Sets)*mem.LineBytes
		areadLat(a, eng, x)
	}
	if a.predictHit(addr, 0) {
		t.Fatal("repeated misses must flip the prediction")
	}
}

func TestAlloyEffectiveBandwidth(t *testing.T) {
	if got := AlloyEffectiveGBps(102.4); got < 68.2 || got > 68.3 {
		t.Fatalf("effective = %v, want 68.27", got)
	}
}

func TestAlloyWarmPaths(t *testing.T) {
	a, mm, eng := testAlloy(t, true, core.Nop{})
	addr := mem.Addr(0x9000)
	a.WarmRead(addr, 0)
	a.WarmWriteback(addr+mem.LineBytes, 0)
	if mm.Stats().CAS() != 0 || a.dev.Stats().CAS() != 0 {
		t.Fatal("warm paths must be traffic-free")
	}
	areadLat(a, eng, addr)
	if a.st.ReadHits != 1 {
		t.Fatal("warmed line must hit")
	}
}

func TestDBCReplacement(t *testing.T) {
	d := newDBC(8, 2) // 4 sets x 2 ways
	for g := uint64(0); g < 16; g++ {
		d.install(g, uint64(g))
	}
	// recently installed groups must be present, older ones evicted
	if d.lookup(15) < 0 || d.lookup(14) < 0 {
		t.Fatal("recent groups must survive")
	}
	found := 0
	for g := uint64(0); g < 16; g++ {
		if d.lookup(g) >= 0 {
			found++
		}
	}
	if found > 8 {
		t.Fatalf("dbc holds %d groups, capacity is 8", found)
	}
}
