package mscache

import (
	"testing"

	"dap/internal/core"
	"dap/internal/dram"
	"dap/internal/mem"
	"dap/internal/policy"
	"dap/internal/sim"
)

// testSectored builds a small sectored cache on a fresh engine.
func testSectored(t *testing.T, part core.Partitioner) (*Sectored, *dram.Device, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	mm := dram.NewDevice(dram.DDR4_2400(), eng)
	cfg := DefaultSectored()
	cfg.CapacityBytes = 1 * mem.MiB // 256 sectors, 64 sets
	cfg.TagCacheEntries = 64
	s := NewSectored(cfg, eng, mm, part)
	return s, mm, eng
}

func read(s *Sectored, eng *sim.Engine, a mem.Addr) mem.Cycle {
	var lat mem.Cycle
	start := eng.Now()
	s.Read(a, 0, mem.ReadKind, func(d mem.Cycle) { lat = d - start })
	eng.Drain()
	return lat
}

func TestSectoredMissThenHit(t *testing.T) {
	s, mm, eng := testSectored(t, core.Nop{})
	a := mem.Addr(0x10000)
	read(s, eng, a)
	if s.st.ReadMisses != 1 {
		t.Fatalf("misses = %d, want 1", s.st.ReadMisses)
	}
	mmCAS := mm.Stats().CAS()
	if mmCAS == 0 {
		t.Fatal("miss must access main memory")
	}
	read(s, eng, a)
	if s.st.ReadHits != 1 {
		t.Fatalf("hits = %d, want 1", s.st.ReadHits)
	}
	if mm.Stats().CAS() != mmCAS {
		t.Fatal("hit must not touch main memory")
	}
}

func TestSectoredFillMakesBlockValid(t *testing.T) {
	s, _, eng := testSectored(t, core.Nop{})
	a := mem.Addr(0x20000)
	read(s, eng, a)
	line := s.tags.Probe(a)
	if !line.Ok() || line.VMask()&s.blockBit(a) == 0 {
		t.Fatal("read miss must allocate the sector and fill the block")
	}
	if s.st.Fills == 0 {
		t.Fatal("fill must be recorded")
	}
}

func TestSectoredWritebackMakesDirty(t *testing.T) {
	s, _, eng := testSectored(t, core.Nop{})
	a := mem.Addr(0x30000)
	s.Writeback(a, 0)
	eng.Drain()
	line := s.tags.Probe(a)
	if !line.Ok() || line.DMask()&s.blockBit(a) == 0 {
		t.Fatal("writeback must install a dirty block")
	}
	if s.st.WriteMisses != 1 {
		t.Fatalf("write misses = %d", s.st.WriteMisses)
	}
	s.Writeback(a, 0)
	eng.Drain()
	if s.st.WriteHits != 1 {
		t.Fatalf("write hits = %d", s.st.WriteHits)
	}
}

func TestSectoredDirtyEvictionWritesOut(t *testing.T) {
	s, mm, eng := testSectored(t, core.Nop{})
	// fill one set (4 ways) with dirty blocks, then force an eviction
	sets := s.tags.Sets
	var addrs []mem.Addr
	for w := 0; w < 5; w++ {
		addrs = append(addrs, mem.Addr(uint64(w)*uint64(sets)*4096))
	}
	for _, a := range addrs[:4] {
		s.Writeback(a, 0)
	}
	eng.Drain()
	mmWritesBefore := mm.Stats().Writes
	s.Writeback(addrs[4], 0) // evicts one sector with a dirty block
	eng.Drain()
	if s.st.SectorEvicts != 1 {
		t.Fatalf("sector evicts = %d, want 1", s.st.SectorEvicts)
	}
	if s.st.DirtyWriteouts == 0 {
		t.Fatal("victim's dirty blocks must be written out")
	}
	if mm.Stats().Writes <= mmWritesBefore {
		t.Fatal("dirty write-out must reach main memory")
	}
}

func TestTagCacheReducesMetadataTraffic(t *testing.T) {
	s, _, eng := testSectored(t, core.Nop{})
	a := mem.Addr(0x40000)
	read(s, eng, a)
	if s.st.TagCacheMisses != 1 {
		t.Fatalf("first access: tag cache misses = %d", s.st.TagCacheMisses)
	}
	metaReads := s.st.MetaReads
	// same sector, different block: tag cache hit, no new metadata read
	read(s, eng, a+mem.LineBytes)
	if s.st.TagCacheHits != 1 {
		t.Fatalf("tag cache hits = %d", s.st.TagCacheHits)
	}
	if s.st.MetaReads != metaReads {
		t.Fatal("tag cache hit must not fetch metadata from DRAM")
	}
}

func TestNoTagCacheAlwaysFetchesMetadata(t *testing.T) {
	eng := sim.New()
	mm := dram.NewDevice(dram.DDR4_2400(), eng)
	cfg := DefaultSectored()
	cfg.CapacityBytes = 1 * mem.MiB
	cfg.TagCacheEntries = 0
	s := NewSectored(cfg, eng, mm, core.Nop{})
	a := mem.Addr(0x50000)
	s.Read(a, 0, mem.ReadKind, nil)
	eng.Drain()
	s.Read(a, 0, mem.ReadKind, nil)
	eng.Drain()
	if s.st.MetaReads != 2 {
		t.Fatalf("meta reads = %d, want one per access without a tag cache", s.st.MetaReads)
	}
}

func TestFootprintPrefetchOnReallocation(t *testing.T) {
	s, _, eng := testSectored(t, core.Nop{})
	sets := s.tags.Sets
	base := mem.Addr(0x100000)
	// touch 3 blocks of a sector
	for b := 0; b < 3; b++ {
		read(s, eng, base+mem.Addr(b*mem.LineBytes))
	}
	// evict it by filling the set with 4 more sectors
	for w := 1; w <= 4; w++ {
		read(s, eng, base+mem.Addr(uint64(w)*uint64(sets)*4096))
	}
	if s.st.SectorEvicts == 0 {
		t.Fatal("set pressure must evict the first sector")
	}
	fillsBefore := s.st.Fills
	// re-touch one block: the footprint (3 blocks) should be fetched
	read(s, eng, base)
	if s.st.Fills < fillsBefore+3 {
		t.Fatalf("footprint fetch expected ~3 fills, got %d", s.st.Fills-fillsBefore)
	}
	line := s.tags.Probe(base)
	if !line.Ok() || line.VMask()&0b111 != 0b111 {
		t.Fatalf("predicted footprint not restored: VMask=%b", line.VMask())
	}
}

// dapStub grants a fixed set of credits.
type dapStub struct {
	core.Nop
	fwb, wb, ifrm, sfrm int
}

func (d *dapStub) TakeFWB() bool {
	if d.fwb > 0 {
		d.fwb--
		return true
	}
	return false
}
func (d *dapStub) TakeWB() bool {
	if d.wb > 0 {
		d.wb--
		return true
	}
	return false
}
func (d *dapStub) TakeIFRM(int) bool {
	if d.ifrm > 0 {
		d.ifrm--
		return true
	}
	return false
}
func (d *dapStub) TakeSFRM() bool {
	if d.sfrm > 0 {
		d.sfrm--
		return true
	}
	return false
}

func TestFWBDropsFill(t *testing.T) {
	stub := &dapStub{fwb: 100}
	s, _, eng := testSectored(t, stub)
	a := mem.Addr(0x60000)
	read(s, eng, a)
	if s.st.FillBypasses == 0 {
		t.Fatal("fill must be bypassed")
	}
	line := s.tags.Probe(a)
	if line.Ok() && line.VMask()&s.blockBit(a) != 0 {
		t.Fatal("bypassed fill must leave the block invalid")
	}
	// the next read of the same block must miss again
	read(s, eng, a)
	if s.st.ReadMisses != 2 {
		t.Fatalf("read misses = %d, want 2", s.st.ReadMisses)
	}
}

func TestWBSteersWriteToMemoryAndInvalidates(t *testing.T) {
	s, mm, eng := testSectored(t, core.Nop{})
	a := mem.Addr(0x70000)
	read(s, eng, a) // make the block valid and clean
	s.part = &dapStub{wb: 10}
	mmW := mm.Stats().Writes
	s.Writeback(a, 0)
	eng.Drain()
	if s.st.WriteBypasses != 1 {
		t.Fatalf("write bypasses = %d", s.st.WriteBypasses)
	}
	if mm.Stats().Writes <= mmW {
		t.Fatal("bypassed write must go to main memory")
	}
	line := s.tags.Probe(a)
	if line.Ok() && line.VMask()&s.blockBit(a) != 0 {
		t.Fatal("stale cached copy must be invalidated on write bypass")
	}
}

func TestIFRMServesCleanHitFromMemory(t *testing.T) {
	s, mm, eng := testSectored(t, core.Nop{})
	a := mem.Addr(0x80000)
	read(s, eng, a) // clean block
	s.part = &dapStub{ifrm: 10}
	mmR := mm.Stats().Reads
	read(s, eng, a)
	if s.st.ForcedMisses != 1 {
		t.Fatalf("forced misses = %d", s.st.ForcedMisses)
	}
	if mm.Stats().Reads <= mmR {
		t.Fatal("forced miss must read from main memory")
	}
	// the block stays valid: a later read without credits hits the cache
	s.part = core.Nop{}
	devR := s.dev.Stats().Reads
	read(s, eng, a)
	if s.dev.Stats().Reads <= devR {
		t.Fatal("block must still be served by the cache afterwards")
	}
}

func TestIFRMNeverAppliedToDirtyHit(t *testing.T) {
	s, mm, eng := testSectored(t, core.Nop{})
	a := mem.Addr(0x90000)
	s.Writeback(a, 0) // dirty block
	eng.Drain()
	s.part = &dapStub{ifrm: 10}
	mmR := mm.Stats().Reads
	read(s, eng, a)
	if mm.Stats().Reads != mmR {
		t.Fatal("dirty hit must not be forced to memory")
	}
	if s.st.ForcedMisses != 0 {
		t.Fatal("no forced miss for dirty blocks")
	}
}

func TestSFRMLaunchesParallelRead(t *testing.T) {
	stub := &dapStub{sfrm: 10}
	s, mm, eng := testSectored(t, stub)
	a := mem.Addr(0xa0000)
	// first access: tag cache miss -> SFRM fires, and it is a real miss
	read(s, eng, a)
	if s.st.SpecForced != 0 {
		t.Fatal("SFRM on a miss is just the normal memory read")
	}
	// make a clean resident block, then evict its tag cache entry
	for i := 0; i < 100; i++ {
		read(s, eng, mem.Addr(0x200000)+mem.Addr(i*4096))
	}
	stub.sfrm = 10 // the filler reads consumed the credits
	mmR := mm.Stats().Reads
	read(s, eng, a) // tag-cache miss, clean hit -> served by memory
	if s.st.SpecForced == 0 {
		t.Fatal("SFRM must fire on a tag-cache-missing clean hit")
	}
	if mm.Stats().Reads <= mmR {
		t.Fatal("SFRM must consume a main-memory read")
	}
}

func TestWindowCountsPopulated(t *testing.T) {
	s, _, eng := testSectored(t, core.Nop{})
	a := mem.Addr(0xb0000)
	read(s, eng, a)
	wc := s.Windows()
	if wc.AMM == 0 || wc.Rm == 0 {
		t.Fatalf("miss must count AMM/Rm: %+v", wc)
	}
	if wc.AMSR == 0 {
		t.Fatalf("metadata read must count AMSR: %+v", wc)
	}
	read(s, eng, a)
	if wc.CleanHits == 0 {
		t.Fatalf("clean hit must be counted: %+v", wc)
	}
}

func TestWarmPathsPopulateState(t *testing.T) {
	s, mm, eng := testSectored(t, core.Nop{})
	a := mem.Addr(0xc0000)
	s.WarmRead(a, 0)
	s.WarmWriteback(a+mem.LineBytes, 0)
	if mm.Stats().CAS() != 0 || s.dev.Stats().CAS() != 0 {
		t.Fatal("warm paths must not generate traffic")
	}
	line := s.tags.Probe(a)
	if !line.Ok() || line.VMask()&s.blockBit(a) == 0 {
		t.Fatal("warm read must install the block")
	}
	if line.DMask()&s.blockBit(a+mem.LineBytes) == 0 {
		t.Fatal("warm writeback must mark dirty")
	}
	// warmed blocks hit in the timed path
	read(s, eng, a)
	if s.st.ReadHits != 1 {
		t.Fatal("warmed block must hit")
	}
}

func TestBATMANDisabledSetBypassesCache(t *testing.T) {
	s, mm, eng := testSectored(t, core.Nop{})
	s.BATMAN = policy.NewBATMAN(s.tags.Sets, 102.4, 38.4)
	// drive the hit rate above target so the first epoch disables set 0
	for i := 0; i < 1000; i++ {
		s.BATMAN.NoteLookup(true)
	}
	s.BATMAN.Epoch()
	if !s.BATMAN.Disabled(0) {
		t.Fatal("set 0 should be disabled")
	}
	a := mem.Addr(0) // set 0 is disabled
	mmR := mm.Stats().Reads
	read(s, eng, a)
	if mm.Stats().Reads <= mmR {
		t.Fatal("disabled set must read from memory")
	}
	if s.tags.Probe(a).Ok() {
		t.Fatal("disabled set must not allocate")
	}
}

func TestCASAccounting(t *testing.T) {
	s, mm, eng := testSectored(t, core.Nop{})
	for i := 0; i < 20; i++ {
		read(s, eng, mem.Addr(0x300000)+mem.Addr(i*mem.LineBytes))
	}
	if s.CacheCAS() == 0 {
		t.Fatal("cache CAS must accumulate")
	}
	if mm.Stats().CAS() == 0 {
		t.Fatal("memory CAS must accumulate")
	}
	s.ResetStats()
	if s.CacheCAS() != 0 {
		t.Fatal("ResetStats must clear device stats")
	}
}
