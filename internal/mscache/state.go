package mscache

import (
	"fmt"
	"sort"

	"dap/internal/ckpt"
)

// Checkpoint serialization for the three memory-side cache controllers.
// Functional warmup (WarmRead/WarmWriteback) mutates only the structures
// serialized here: the sector/line tag arrays (including per-block
// valid/dirty masks and replacement metadata), the SRAM tag cache, the
// footprint history table, the Alloy dirty-bit cache and the Alloy
// predictors. The per-window demand counters and MemSideStats are reset by
// the harness before measurement on both the straight and the resumed
// path, so they are not serialized; the optional SBD/BATMAN policies are
// serialized as their own sections by the harness.

// SaveState serializes the sectored DRAM cache's warmup-visible state.
func (s *Sectored) SaveState(e *ckpt.Enc) {
	s.tags.SaveState(e)
	e.Bool(s.tagCache != nil)
	if s.tagCache != nil {
		s.tagCache.SaveState(e)
	}
	saveFootprint(e, s.fp)
}

// LoadState restores state saved by SaveState.
func (s *Sectored) LoadState(d *ckpt.Dec) error {
	if err := s.tags.LoadState(d); err != nil {
		return fmt.Errorf("mscache: sectored tags: %w", err)
	}
	hadTC := d.Bool()
	if hadTC != (s.tagCache != nil) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("mscache: checkpoint tag cache presence %v != built %v", hadTC, s.tagCache != nil)
	}
	if s.tagCache != nil {
		if err := s.tagCache.LoadState(d); err != nil {
			return fmt.Errorf("mscache: sectored tag cache: %w", err)
		}
	}
	return loadFootprint(d, s.fp)
}

// SaveState serializes the Alloy cache's warmup-visible state.
func (a *Alloy) SaveState(e *ckpt.Enc) {
	a.tags.SaveState(e)
	e.U32(uint32(a.dbc.sets))
	e.U32(uint32(a.dbc.ways))
	e.U64(a.dbc.tick)
	e.U64s(a.dbc.gv)
	e.U64s(a.dbc.bits)
	e.U64s(a.dbc.lru)
	e.Bytes(a.pred)
	e.Bytes(a.fillPred)
}

// LoadState restores state saved by SaveState.
func (a *Alloy) LoadState(d *ckpt.Dec) error {
	if err := a.tags.LoadState(d); err != nil {
		return fmt.Errorf("mscache: alloy tags: %w", err)
	}
	sets, ways := int(d.U32()), int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if sets != a.dbc.sets || ways != a.dbc.ways {
		return fmt.Errorf("mscache: checkpoint DBC %dx%d != built %dx%d", sets, ways, a.dbc.sets, a.dbc.ways)
	}
	a.dbc.tick = d.U64()
	d.U64s(a.dbc.gv)
	d.U64s(a.dbc.bits)
	d.U64s(a.dbc.lru)
	pred, fillPred := d.Bytes(), d.Bytes()
	if err := d.Err(); err != nil {
		return err
	}
	if len(pred) != len(a.pred) || len(fillPred) != len(a.fillPred) {
		return fmt.Errorf("mscache: checkpoint predictor sizes %d/%d != built %d/%d",
			len(pred), len(fillPred), len(a.pred), len(a.fillPred))
	}
	copy(a.pred, pred)
	copy(a.fillPred, fillPred)
	return nil
}

// SaveState serializes the eDRAM cache's warmup-visible state.
func (e *EDRAM) SaveState(enc *ckpt.Enc) {
	e.tags.SaveState(enc)
}

// LoadState restores state saved by SaveState.
func (e *EDRAM) LoadState(d *ckpt.Dec) error {
	if err := e.tags.LoadState(d); err != nil {
		return fmt.Errorf("mscache: edram tags: %w", err)
	}
	return nil
}

// saveFootprint serializes the footprint history table sorted by sector so
// the byte stream is deterministic despite map iteration order.
func saveFootprint(e *ckpt.Enc, f *footprintTable) {
	idx := make([]int, 0, f.n)
	for i, k := range f.keys {
		if k != 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return f.keys[idx[a]] < f.keys[idx[b]] })
	e.U32(uint32(len(idx)))
	for _, i := range idx {
		e.U64(f.keys[i] - 1)
		e.U64(f.vals[i])
	}
}

func loadFootprint(d *ckpt.Dec, f *footprintTable) error {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if n > f.cap {
		return fmt.Errorf("mscache: checkpoint footprint table has %d entries, cap %d", n, f.cap)
	}
	for i := range f.keys {
		f.keys[i] = 0
	}
	f.n = 0
	for i := 0; i < n; i++ {
		k := d.U64()
		f.record(k, d.U64())
	}
	return d.Err()
}
