package obs

import (
	"bufio"
	"fmt"
	"io"
)

// ChromeTraceWriter is the shared encoder for Chrome trace-event JSON (the
// {"displayTimeUnit":"ns","traceEvents":[...]} form loadable in Perfetto or
// chrome://tracing). It handles the envelope and the comma discipline
// between events; callers format each event object themselves via Emit.
// Both the simulation-request tracer (WriteChromeTrace) and the
// job-lifecycle tracer (JobTracer.WriteChromeTrace) render through it.
type ChromeTraceWriter struct {
	bw    *bufio.Writer
	first bool
}

// NewChromeTraceWriter opens the trace envelope on w.
func NewChromeTraceWriter(w io.Writer) *ChromeTraceWriter {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	return &ChromeTraceWriter{bw: bw, first: true}
}

// Emit appends one event object, formatted printf-style. The format must
// produce a complete JSON object; the writer inserts the separating comma.
func (cw *ChromeTraceWriter) Emit(format string, args ...any) {
	if !cw.first {
		cw.bw.WriteByte(',')
	}
	cw.first = false
	fmt.Fprintf(cw.bw, format, args...)
}

// Close terminates the event array and envelope and flushes.
func (cw *ChromeTraceWriter) Close() error {
	cw.bw.WriteString("]}\n")
	return cw.bw.Flush()
}
