package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"

	"dap/internal/mem"
)

// WriteCSV writes the retained series as CSV: a `cycle` column followed by
// one column per probe in registration order, one row per sample window
// (oldest first). Counter/Util probes are exported as per-window deltas and
// rates, so the file is directly plottable.
func (s *Sampler) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("cycle")
	for i := range s.probes {
		bw.WriteByte(',')
		bw.WriteString(csvEscape(s.probes[i].name))
	}
	bw.WriteByte('\n')
	s.export(func(t mem.Cycle, vals []float64) {
		bw.WriteString(strconv.FormatUint(uint64(t), 10))
		for _, v := range vals {
			bw.WriteByte(',')
			bw.WriteString(formatVal(v))
		}
		bw.WriteByte('\n')
	})
	return bw.Flush()
}

// WriteJSONL writes the retained series as JSON Lines: one object per
// sample window with a "cycle" field plus one field per probe, in
// registration order (probe names are dotted and never collide with
// "cycle").
func (s *Sampler) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s.export(func(t mem.Cycle, vals []float64) {
		bw.WriteString(`{"cycle":`)
		bw.WriteString(strconv.FormatUint(uint64(t), 10))
		for i, v := range vals {
			bw.WriteString(`,"`)
			bw.WriteString(jsonEscape(s.probes[i].name))
			bw.WriteString(`":`)
			bw.WriteString(jsonNumber(v))
		}
		bw.WriteString("}\n")
	})
	return bw.Flush()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func jsonEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			if r < 0x20 {
				b.WriteString(`\u00`)
				const hex = "0123456789abcdef"
				b.WriteByte(hex[r>>4])
				b.WriteByte(hex[r&0xf])
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

// jsonNumber renders v with the same precision as the CSV exporter while
// staying valid JSON (no bare Inf/NaN).
func jsonNumber(v float64) string {
	s := formatVal(v)
	if strings.ContainsAny(s, "IN") { // +Inf, -Inf, NaN
		return "null"
	}
	return s
}
