package obs

import (
	"errors"
	"testing"

	"dap/internal/mem"
	"dap/internal/sim"
)

// TestSamplerIdleStopUnderWatchdog pins down the interaction between the
// sampler's idle-stop rule and the forward-progress watchdog on a real
// engine: once the workload's last event retires, the sampler is the only
// thing left in the queue and must stop rescheduling itself. If it kept
// the loop alive, the drain would never return and the watchdog — whose
// progress fingerprint froze with the workload — would report a phantom
// stall. A healthy run must instead drain cleanly with no error.
func TestSamplerIdleStopUnderWatchdog(t *testing.T) {
	eng := sim.New()

	// Workload: 50 events, 20 cycles apart, each advancing the progress
	// fingerprint. Finishes at cycle 1000.
	var progress uint64
	var step func()
	step = func() {
		progress++
		if progress < 50 {
			eng.After(20, step)
		}
	}
	eng.After(20, step)

	// Watchdog trips after ~64 stale events; the sampler alone would feed
	// it endless no-progress events if idle-stop failed.
	eng.SetWatchdog(64, func() uint64 { return progress }, nil)

	s := NewSampler(eng.Clock(), eng.After, eng.Pending, 100, 0)
	s.Gauge("progress", func() float64 { return float64(progress) })
	var windows int
	s.OnWindow(func(Window) { windows++ })
	s.Start()

	eng.Drain()

	if err := eng.Err(); err != nil {
		t.Fatalf("healthy run aborted: %v", err)
	}
	if p := eng.Pending(); p != 0 {
		t.Fatalf("queue not drained: %d events pending", p)
	}
	// The sampler's final tick fires at most one period past the last
	// workload event; anything later means it kept the loop alive.
	if now := eng.Now(); now > 1000+s.Every() {
		t.Fatalf("engine ran to cycle %d; sampler kept an idle loop alive past %d", now, 1000+s.Every())
	}
	if s.Samples() == 0 || windows == 0 {
		t.Fatalf("sampler recorded no windows (samples=%d, callbacks=%d)", s.Samples(), windows)
	}
}

// TestSamplerDoesNotMaskWatchdog is the converse: when the workload wedges
// while still scheduling events (no forward progress), the watchdog must
// fire even though the sampler is interleaving healthy-looking read-only
// ticks — sampling must never launder a stalled run into a live one.
func TestSamplerDoesNotMaskWatchdog(t *testing.T) {
	eng := sim.New()

	// Wedged workload: reschedules forever, progress frozen after 10 steps.
	var progress uint64
	var spin func()
	spin = func() {
		if progress < 10 {
			progress++
		}
		eng.After(5, spin)
	}
	eng.After(5, spin)
	eng.SetWatchdog(64, func() uint64 { return progress }, nil)

	s := NewSampler(eng.Clock(), eng.After, eng.Pending, 50, 0)
	s.Gauge("progress", func() float64 { return float64(progress) })
	s.Start()

	eng.RunWhile(func() bool { return eng.Now() < mem.Cycle(100000) })

	var stall *sim.StallError
	if err := eng.Err(); !errors.As(err, &stall) {
		t.Fatalf("wedged run ended with %v, want *sim.StallError", err)
	}
}
