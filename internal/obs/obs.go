// Package obs is the time-resolved observability layer of the simulator:
// a windowed metrics sampler (ring-buffered counter/gauge series exported
// as CSV or JSONL), a request-lifecycle tracer that stamps L3 misses
// through their phases and exports Chrome trace-event JSON viewable in
// Perfetto, and the plumbing that feeds the latency-breakdown histograms
// in internal/stats.
//
// Everything here is designed to be a strict observer: hooks are nil-safe
// no-ops when disabled, probes never mutate simulated state, and sampler
// events only read — so an instrumented run produces a bit-identical
// stats.Run to an uninstrumented one (the same determinism bar as the
// runtime invariant auditor).
package obs

// WindowedRatio returns a gauge probe reporting num/den over the interval
// since the probe was last sampled (0 when the denominator did not move).
// The closure is stateful — it keeps the previous cumulative values — and
// relies on the sampler calling each probe exactly once per sample, which
// the Sampler guarantees.
func WindowedRatio(num, den func() uint64) func() float64 {
	var pn, pd uint64
	return func() float64 {
		n, d := num(), den()
		dn, dd := n-pn, d-pd
		pn, pd = n, d
		if dd == 0 {
			return 0
		}
		return float64(dn) / float64(dd)
	}
}
