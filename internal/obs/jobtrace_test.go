package obs

import (
	"bytes"
	"context"
	"dap/internal/mem"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJobTracerChromeJSON(t *testing.T) {
	jt := NewJobTracer(16)
	jt.Track(3, "s1-j3 mcf/dap")
	t0 := time.Now()
	jt.Instant(3, "submit", "corr", "s1-j3")
	jt.Span(3, "queue-wait", t0, t0.Add(5*time.Millisecond), "corr", "s1-j3")
	jt.Instant(3, "retry", "corr", "s1-j3", "err", `boom "quoted"`)

	var buf bytes.Buffer
	if err := jt.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(parsed.TraceEvents) != 4 { // metadata + 3 events
		t.Fatalf("got %d events, want 4\n%s", len(parsed.TraceEvents), buf.Bytes())
	}
	if !jt.HasInstant("retry") {
		t.Fatal("HasInstant(retry) = false")
	}
	if jt.HasInstant("dead") {
		t.Fatal("HasInstant(dead) = true, want false")
	}

	// nil tracer: all no-ops, empty but valid trace
	var nilT *JobTracer
	nilT.Track(1, "x")
	nilT.Instant(1, "y")
	nilT.Span(1, "z", t0, t0)
	if nilT.Len() != 0 || nilT.Dropped() != 0 || nilT.HasInstant("y") {
		t.Fatal("nil tracer not inert")
	}
	buf.Reset()
	if err := nilT.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil trace invalid: %s", buf.Bytes())
	}
}

func TestJobTracerBoundedAndConcurrent(t *testing.T) {
	jt := NewJobTracer(100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				jt.Instant(uint64(w), "tick")
			}
		}(w)
	}
	wg.Wait()
	if jt.Len() != 100 {
		t.Fatalf("Len = %d, want capped at 100", jt.Len())
	}
	if jt.Dropped() != 300 {
		t.Fatalf("Dropped = %d, want 300", jt.Dropped())
	}
}

func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 1; i <= 6; i++ {
		fr.Addf(mem.Cycle(i*100), "note %d", i)
	}
	if fr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", fr.Len())
	}
	if fr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", fr.Dropped())
	}
	got := fr.Entries()
	for i, want := range []uint64{300, 400, 500, 600} {
		if got[i].Cycle != want {
			t.Fatalf("entry %d cycle = %d, want %d (all %v)", i, got[i].Cycle, want, got)
		}
	}

	d := fr.Dump("watchdog-stall", "cycle=600 pending=3")
	if d.Reason != "watchdog-stall" || len(d.Entries) != 4 || d.Dropped != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("dump not JSON-serializable: %v", err)
	}

	var nilFR *FlightRecorder
	nilFR.Add(1, "x")
	nilFR.Addf(1, "y")
	if nilFR.Len() != 0 || nilFR.Entries() != nil || nilFR.Dump("r", "s") != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestFlightErrorUnwrap(t *testing.T) {
	base := errors.New("engine stalled")
	fe := &FlightError{Dump: &FlightDump{Reason: "watchdog-stall"}, Err: base}
	if !errors.Is(fe, base) {
		t.Fatal("FlightError does not unwrap to its cause")
	}
	var got *FlightError
	if !errors.As(error(fe), &got) || got.Dump.Reason != "watchdog-stall" {
		t.Fatal("errors.As failed to recover the FlightError")
	}
}

func TestLoggingContextHelpers(t *testing.T) {
	ctx := WithCorr(context.Background(), "s1-j2")
	if Corr(ctx) != "s1-j2" {
		t.Fatalf("Corr = %q", Corr(ctx))
	}
	if Corr(context.Background()) != "" || Corr(nil) != "" {
		t.Fatal("absent corr should be empty")
	}

	var buf bytes.Buffer
	l := NewLogger(&buf, "debug", "json")
	ctx = WithLogger(ctx, l)
	LoggerFrom(ctx).Info("hello", "corr", Corr(ctx))
	if !strings.Contains(buf.String(), `"corr":"s1-j2"`) {
		t.Fatalf("log record missing corr: %s", buf.String())
	}
	// absent logger degrades to silent, never nil
	if LoggerFrom(context.Background()) == nil || LoggerFrom(nil) == nil || OrNop(nil) == nil {
		t.Fatal("LoggerFrom/OrNop returned nil")
	}
	LoggerFrom(context.Background()).Info("discarded")

	// level filtering: warn logger drops info
	buf.Reset()
	wl := NewLogger(&buf, "warn", "text")
	wl.Info("nope")
	wl.Warn("yep")
	if strings.Contains(buf.String(), "nope") || !strings.Contains(buf.String(), "yep") {
		t.Fatalf("level filtering wrong: %s", buf.String())
	}
}
