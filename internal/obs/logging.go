package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// The sweep service logs through log/slog with one convention: every record
// about a job carries the attribute "corr", the job's correlation ID
// ("s<sweep>-j<job>"), so a grep for one corr value reconstructs the job's
// whole lifecycle across submit, lease, execute, store and ack — whichever
// component emitted each record. The logger and the correlation ID travel
// on the context; a nil or absent logger degrades to a silent one so
// library code can log unconditionally.

// NewLogger builds a slog.Logger writing to w. format is "text" or "json"
// (anything else selects text); level is "debug", "info", "warn" or
// "error" (default info).
func NewLogger(w io.Writer, level, format string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	if strings.ToLower(format) == "json" {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// NopLogger returns a logger that discards every record — the fallback for
// components constructed without one, keeping call sites unconditional.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

type ctxKey int

const (
	corrKey ctxKey = iota
	loggerKey
)

// WithCorr stamps a correlation ID onto the context.
func WithCorr(ctx context.Context, corr string) context.Context {
	return context.WithValue(ctx, corrKey, corr)
}

// Corr returns the context's correlation ID, or "".
func Corr(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	c, _ := ctx.Value(corrKey).(string)
	return c
}

// WithLogger attaches a logger to the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the context's logger, or a silent one — never nil, so
// callers chain .Info/.Debug without checking.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if ctx != nil {
		if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
			return l
		}
	}
	return NopLogger()
}

// OrNop returns l, or a silent logger when l is nil — the standard guard at
// the top of a component that stores an optional logger.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}
