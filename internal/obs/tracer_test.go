package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dap/internal/mem"
	"dap/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTracer records two fully-phased spans with a hand-driven clock:
// a cache-served read with a queue wait and an SFRM-steered main-memory
// read without one.
func buildTracer() *Tracer {
	var clock mem.Cycle
	tr := NewTracer(func() mem.Cycle { return clock }, 1, 8)

	clock = 100
	sp := tr.Read(0, 0x1000, mem.ReadKind)
	clock = 104
	sp.Meta()
	clock = 120
	sp.Decide(stats.BDTechNone)
	sp.Serve(stats.BDSrcCache)
	sp.QueueWait(8)
	sp.Finish(180)

	clock = 200
	sp2 := tr.Read(1, 0x2040, mem.ReadKind)
	clock = 204
	sp2.Meta()
	clock = 220
	sp2.Decide(stats.BDTechSFRM)
	sp2.Serve(stats.BDSrcMain)
	sp2.Finish(300)
	sp2.Finish(350) // second Finish must be ignored
	return tr
}

func TestTracerSpanLifecycle(t *testing.T) {
	tr := buildTracer()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	want := SpanRecord{
		Core: 0, Addr: 0x1000, Kind: mem.ReadKind,
		Start: 100, Meta: 104, Decide: 120, Serve: 120, End: 180,
		Wait: 8, Src: stats.BDSrcCache, Tech: stats.BDTechNone,
	}
	if spans[0] != want {
		t.Errorf("span 0 = %+v, want %+v", spans[0], want)
	}
	if spans[1].End != 300 {
		t.Errorf("span 1 End = %d, want 300 (second Finish not ignored)", spans[1].End)
	}

	bd := tr.Breakdown()
	if bd.Spans() != 2 {
		t.Fatalf("breakdown spans = %d, want 2", bd.Spans())
	}
	// Cache-served span: queue 8, meta 16, service 60-8, total 80.
	c := bd.BySource(stats.BDSrcCache)
	if c.Queue.Sum != 8 || c.Meta.Sum != 16 || c.Service.Sum != 52 || c.Total.Sum != 80 {
		t.Errorf("cache phases q=%d m=%d s=%d t=%d, want 8/16/52/80",
			c.Queue.Sum, c.Meta.Sum, c.Service.Sum, c.Total.Sum)
	}
	// Main-memory SFRM span: queue 0, meta 16, service 80, total 100.
	m := bd.Cells[stats.BDSrcMain][stats.BDTechSFRM]
	if m.Queue.Sum != 0 || m.Meta.Sum != 16 || m.Service.Sum != 80 || m.Total.Sum != 100 {
		t.Errorf("main/sfrm phases q=%d m=%d s=%d t=%d, want 0/16/80/100",
			m.Queue.Sum, m.Meta.Sum, m.Service.Sum, m.Total.Sum)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	tr := buildTracer()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace is not valid JSON:\n%s", buf.String())
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (run with -update to create): %v", golden, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace mismatch\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

func TestTracerSamplingStride(t *testing.T) {
	var clock mem.Cycle
	tr := NewTracer(func() mem.Cycle { return clock }, 3, 0)
	traced := 0
	for i := 0; i < 9; i++ {
		if sp := tr.Read(0, mem.Addr(i), mem.ReadKind); sp != nil {
			traced++
			sp.Finish(clock)
		}
	}
	if traced != 3 {
		t.Errorf("traced %d of 9 reads at stride 3, want 3", traced)
	}
}

func TestTracerCapacityDrops(t *testing.T) {
	var clock mem.Cycle
	tr := NewTracer(func() mem.Cycle { return clock }, 1, 1)
	tr.Read(0, 0x40, mem.ReadKind).Finish(10)
	if sp := tr.Read(0, 0x80, mem.ReadKind); sp != nil {
		t.Error("read beyond capacity returned a live span")
	}
	if tr.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1", tr.Dropped())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Read(0, 0, mem.ReadKind)
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// Every span method must be a no-op on nil.
	sp.Meta()
	sp.Decide(stats.BDTechIFRM)
	sp.Serve(stats.BDSrcMain)
	sp.QueueWait(5)
	sp.Finish(10)
	if OnIssue(sp) != nil {
		t.Error("OnIssue(nil span) != nil: request fast path would allocate")
	}
	called := false
	done := func(mem.Cycle) { called = true }
	sp.Wrap(done)(1)
	if !called {
		t.Error("Wrap on nil span did not pass done through")
	}
	if tr.Breakdown() != nil || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer accessors not zero-valued")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) || !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Errorf("nil tracer trace invalid: %s", buf.String())
	}
}
