package obs

import (
	"io"
	"strconv"

	"dap/internal/mem"
	"dap/internal/stats"
)

// SpanRecord is one traced L3 miss stamped through its lifecycle phases:
// arrival at the memory-side controller (Start), metadata/tag probe begin
// (Meta), DAP decision (Decide), hand-off to the serving device (Serve) and
// response (End), plus the in-device queue wait of the serving access.
type SpanRecord struct {
	Core int
	Addr mem.Addr
	Kind mem.Kind

	Start, Meta, Decide, Serve, End mem.Cycle
	// Wait is how long the serving access sat in its device queue before
	// its data burst was scheduled (reported by mem.Request.OnIssue).
	Wait mem.Cycle

	Src  int // stats.BDSrc*: which source served the data
	Tech int // stats.BDTech*: DAP technique applied to this miss
}

// Tracer samples request lifecycles into a bounded span buffer and feeds
// the per-source/per-technique latency-breakdown histograms. A nil *Tracer
// is a valid disabled tracer: Read returns a nil *Span, and every *Span
// method is a nil-safe no-op, so controllers can hook unconditionally.
type Tracer struct {
	now   func() mem.Cycle
	every uint64
	max   int

	seen    uint64
	spans   []SpanRecord
	dropped uint64
	bd      *stats.LatencyBreakdown
}

// NewTracer builds a tracer sampling every sampleEvery-th read (≤ 1 traces
// all) into a buffer of at most capacity spans (≤ 0 selects 1<<16). now is
// the simulation clock (sim.Engine.Now).
func NewTracer(now func() mem.Cycle, sampleEvery, capacity int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Tracer{now: now, every: uint64(sampleEvery), max: capacity, bd: &stats.LatencyBreakdown{}}
}

// Breakdown returns the latency-breakdown histograms fed by finished spans.
func (t *Tracer) Breakdown() *stats.LatencyBreakdown {
	if t == nil {
		return nil
	}
	return t.bd
}

// Spans returns the retained span records, in completion order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	return t.spans
}

// Dropped returns how many sampled spans were discarded because the buffer
// was full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Read opens a span for an L3 miss entering the memory-side controller.
// Returns nil (a valid no-op span) when tracing is disabled, the read falls
// outside the sampling stride, or the buffer is full.
func (t *Tracer) Read(core int, addr mem.Addr, kind mem.Kind) *Span {
	if t == nil {
		return nil
	}
	n := t.seen
	t.seen++
	if n%t.every != 0 {
		return nil
	}
	if len(t.spans) >= t.max {
		t.dropped++
		return nil
	}
	now := t.now()
	return &Span{t: t, rec: SpanRecord{
		Core: core, Addr: addr, Kind: kind,
		// Phase marks default to the start time so unexercised phases
		// collapse to zero duration instead of underflowing.
		Start: now, Meta: now, Decide: now, Serve: now,
		Src: stats.BDSrcCache, Tech: stats.BDTechNone,
	}}
}

// Span is one in-flight traced request. All methods are nil-safe no-ops so
// call sites never branch on whether tracing is enabled.
type Span struct {
	t    *Tracer
	rec  SpanRecord
	done bool
}

// Meta marks the start of the tag/metadata probe.
func (sp *Span) Meta() {
	if sp == nil {
		return
	}
	sp.rec.Meta = sp.t.now()
}

// Decide marks the DAP decision point and records the technique applied
// (stats.BDTech*).
func (sp *Span) Decide(tech int) {
	if sp == nil {
		return
	}
	sp.rec.Decide = sp.t.now()
	sp.rec.Tech = tech
}

// Serve marks the hand-off to the serving device and records which source
// provides the data (stats.BDSrc*). Calling it again overwrites the mark —
// architectures that launch a speculative main-memory access and later
// discover a cache hit re-mark the span with the true source.
func (sp *Span) Serve(src int) {
	if sp == nil {
		return
	}
	sp.rec.Serve = sp.t.now()
	sp.rec.Src = src
}

// QueueWait records the serving access's in-device queue wait; usually
// wired via OnIssue rather than called directly.
func (sp *Span) QueueWait(w mem.Cycle) {
	if sp == nil || sp.done {
		return
	}
	sp.rec.Wait = w
}

// OnIssue adapts a span to the mem.Request.OnIssue hook. It returns nil
// for an untraced span so the request's fast path stays allocation-free.
func OnIssue(sp *Span) func(mem.Cycle) {
	if sp == nil {
		return nil
	}
	return sp.QueueWait
}

// Finish closes the span at completion time t, stores the record, and adds
// its phase durations to the latency breakdown. Second and later calls are
// ignored.
func (sp *Span) Finish(t mem.Cycle) {
	if sp == nil || sp.done {
		return
	}
	sp.done = true
	sp.rec.End = t
	sp.t.spans = append(sp.t.spans, sp.rec)

	r := &sp.rec
	meta := r.Decide - r.Meta
	service := r.End - r.Serve
	// The recorded queue wait belongs to the serving access except when a
	// speculative access's wait outlived the span (parallel-path cache
	// hit); clamp so service never underflows.
	wait := r.Wait
	if wait > service {
		wait = service
	}
	sp.t.bd.Add(r.Src, r.Tech, uint64(wait), uint64(meta), uint64(service-wait), uint64(r.End-r.Start))
}

// Wrap chains Finish in front of a completion callback; for a nil span it
// returns done unchanged, so wrapping never changes event counts when
// tracing is off.
func (sp *Span) Wrap(done func(mem.Cycle)) func(mem.Cycle) {
	if sp == nil {
		return done
	}
	return func(t mem.Cycle) {
		sp.Finish(t)
		if done != nil {
			done(t)
		}
	}
}

// usPerCycle converts simulated cycles to trace microseconds (Perfetto's
// native unit) at the modeled core frequency.
const usPerCycle = 1.0 / (mem.CPUFreqGHz * 1000)

func traceUS(c mem.Cycle) string {
	return strconv.FormatFloat(float64(c)*usPerCycle, 'f', 5, 64)
}

// CounterPoint is one sample of a counter track: a value at a simulation
// cycle. CounterTrack is a named series of such samples; producers (e.g.
// the core decision recorder) hand tracks to WriteChromeTraceWith to merge
// algorithm-level time series into the request-lifecycle trace.
type CounterPoint struct {
	Cycle mem.Cycle
	Value float64
}

// CounterTrack is a named counter series rendered as Perfetto "C" events.
type CounterTrack struct {
	Name   string
	Points []CounterPoint
}

// WriteChromeTrace writes the retained spans as Chrome trace-event JSON
// (the {"traceEvents":[...]} form) loadable in Perfetto or
// chrome://tracing. Each span becomes a top-level complete event on its
// core's track plus child events for the metadata-probe, device-queue and
// data-service phases; a metadata event names each track.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return t.WriteChromeTraceWith(w, nil)
}

// WriteChromeTraceWith writes the span trace plus the given counter tracks
// in the same envelope, so per-window algorithm state (optimality gap,
// access fractions) lines up under the request lifecycles it shaped. Safe
// on a nil tracer (emits only the counter tracks) and with nil tracks
// (equivalent to WriteChromeTrace).
func (t *Tracer) WriteChromeTraceWith(w io.Writer, tracks []CounterTrack) error {
	cw := NewChromeTraceWriter(w)
	emit := cw.Emit

	for _, tr := range tracks {
		for _, p := range tr.Points {
			emit(`{"name":%q,"cat":"dap","ph":"C","pid":0,"ts":%s,"args":{"value":%s}}`,
				tr.Name, traceUS(p.Cycle), strconv.FormatFloat(p.Value, 'g', -1, 64))
		}
	}

	if t != nil {
		seen := map[int]bool{}
		for i := range t.spans {
			c := t.spans[i].Core
			if seen[c] {
				continue
			}
			seen[c] = true
			emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"core %d"}}`, c, c)
		}
		for i := range t.spans {
			r := &t.spans[i]
			wait := r.Wait
			if serviceTotal := r.End - r.Serve; wait > serviceTotal {
				wait = serviceTotal
			}
			emit(`{"name":"l3-miss","cat":%q,"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"args":{"addr":"0x%x","src":%q,"tech":%q,"queue_wait":%d}}`,
				r.Kind.String(), r.Core, traceUS(r.Start), traceUS(r.End-r.Start),
				uint64(r.Addr), stats.BDSrcName(r.Src), stats.BDTechName(r.Tech), uint64(r.Wait))
			if r.Decide > r.Meta {
				emit(`{"name":"meta","cat":"phase","ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s}`,
					r.Core, traceUS(r.Meta), traceUS(r.Decide-r.Meta))
			}
			if wait > 0 {
				emit(`{"name":"queue","cat":"phase","ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s}`,
					r.Core, traceUS(r.Serve), traceUS(wait))
			}
			if r.End > r.Serve+wait {
				emit(`{"name":"service","cat":"phase","ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"args":{"src":%q}}`,
					r.Core, traceUS(r.Serve+wait), traceUS(r.End-r.Serve-wait), stats.BDSrcName(r.Src))
			}
		}
	}
	return cw.Close()
}
