package obs

import (
	"fmt"

	"dap/internal/mem"
)

// Kind selects how a probe's raw readings are turned into exported values.
type Kind uint8

const (
	// GaugeKind exports the raw reading of each sample (e.g. queue depth,
	// credit level, windowed ratio).
	GaugeKind Kind = iota
	// CounterKind exports the delta of a cumulative counter since the
	// previous sample (e.g. technique activations per window).
	CounterKind
	// UtilKind exports delta/elapsed-cycles × scale, i.e. a per-cycle rate
	// (e.g. busy-cycle utilization, IPC, bytes/cycle → GB/s).
	UtilKind
)

type probe struct {
	name  string
	kind  Kind
	scale float64
	fn    func() float64
}

// Sampler is a windowed metrics sampler: a registry of read-only probes
// polled every N cycles by a self-rescheduling simulation event, with the
// resulting rows kept in a bounded ring buffer.
//
// The sampler is a strict observer. Its tick event only reads probe values
// and reschedules itself; because the engine orders events by (when, seq),
// interleaving extra read-only events cannot reorder or retime any other
// event, so runs with sampling enabled stay bit-identical to runs without.
// Probes must not mutate simulated state.
//
// All probes must be registered before Start. Not safe for concurrent use
// (the engine is single-threaded).
type Sampler struct {
	now     func() mem.Cycle
	after   func(mem.Cycle, func())
	pending func() int
	every   mem.Cycle
	cap     int

	probes []probe

	// Window subscribers (OnWindow). The previous tick's raw readings are
	// kept so each closed window's exported values (deltas/rates applied)
	// can be handed out as they happen, not just at end of run.
	subs     []func(Window)
	lastTime mem.Cycle
	lastRow  []float64

	// Ring buffer of sampled rows. base holds the raw readings taken just
	// before the oldest retained row (the Start snapshot initially, then
	// each evicted row), so CounterKind/UtilKind deltas survive wrap-around.
	baseTime mem.Cycle
	base     []float64
	times    []mem.Cycle
	rows     [][]float64
	head     int
	n        int
	dropped  uint64

	started bool
	stopped bool
}

// NewSampler builds a sampler that polls its probes every `every` cycles.
// now/after provide the simulation clock and event scheduler (sim.Engine's
// Now and After); pending reports the number of other pending events and
// may be nil — when set, the sampler stops rescheduling itself once it is
// the only thing left in the event queue, so it never keeps a finished or
// deadlocked simulation artificially alive. capacity bounds the ring
// buffer (≤ 0 selects a default of 4096 rows).
func NewSampler(now func() mem.Cycle, after func(mem.Cycle, func()), pending func() int, every mem.Cycle, capacity int) *Sampler {
	if every <= 0 {
		every = 1000
	}
	if capacity <= 0 {
		capacity = 4096
	}
	return &Sampler{now: now, after: after, pending: pending, every: every, cap: capacity}
}

// Every returns the sampling period in cycles.
func (s *Sampler) Every() mem.Cycle { return s.every }

func (s *Sampler) register(name string, kind Kind, scale float64, fn func() float64) {
	if s.started {
		panic("obs: probe registered after Sampler.Start: " + name)
	}
	s.probes = append(s.probes, probe{name: name, kind: kind, scale: scale, fn: fn})
}

// Gauge registers a probe exported as its raw per-sample reading.
func (s *Sampler) Gauge(name string, fn func() float64) {
	s.register(name, GaugeKind, 1, fn)
}

// GaugeInt is Gauge for integer-valued readings such as queue depths.
func (s *Sampler) GaugeInt(name string, fn func() int) {
	s.register(name, GaugeKind, 1, func() float64 { return float64(fn()) })
}

// Counter registers a cumulative counter exported as its delta since the
// previous sample.
func (s *Sampler) Counter(name string, fn func() uint64) {
	s.register(name, CounterKind, 1, func() float64 { return float64(fn()) })
}

// Util registers a cumulative counter exported as delta per elapsed cycle
// (a 0..1 utilization when the counter advances at most once per cycle).
func (s *Sampler) Util(name string, fn func() uint64) {
	s.UtilScaled(name, 1, fn)
}

// UtilScaled is Util with the per-cycle rate multiplied by scale — e.g.
// scale bytes/cycle by mem.CPUFreqGHz to export GB/s.
func (s *Sampler) UtilScaled(name string, scale float64, fn func() uint64) {
	s.register(name, UtilKind, scale, func() float64 { return float64(fn()) })
}

// Window is one closed sampling window as delivered to OnWindow
// subscribers: the cycle the window closed at and the exported per-probe
// values in registration order, with counter deltas and per-cycle rates
// already applied (the same values WriteCSV/WriteJSONL would emit for the
// window). The Values slice is freshly allocated per window; subscribers
// own it.
type Window struct {
	Cycle  mem.Cycle
	Values []float64
}

// OnWindow registers fn to be called at the close of every sampling window,
// on the simulation goroutine, with that window's exported values. It is
// the live fan-out path behind the telemetry layer: fn must be a strict
// observer — it may copy values out (e.g. atomically publish them to an
// HTTP scrape path or push them to subscribers) but must never mutate
// simulated state or block. Like probes, subscribers must be registered
// before Start.
func (s *Sampler) OnWindow(fn func(Window)) {
	if s.started {
		panic("obs: OnWindow registered after Sampler.Start")
	}
	s.subs = append(s.subs, fn)
}

// Names returns the registered probe names in registration (column) order.
func (s *Sampler) Names() []string {
	out := make([]string, len(s.probes))
	for i := range s.probes {
		out[i] = s.probes[i].name
	}
	return out
}

// Start takes the baseline snapshot and schedules the first tick. It must
// be called at most once, after all probes are registered.
func (s *Sampler) Start() {
	if s.started || len(s.probes) == 0 {
		s.started = true
		return
	}
	s.started = true
	s.baseTime = s.now()
	s.base = s.read()
	s.lastTime, s.lastRow = s.baseTime, s.base
	s.after(s.every, s.tick)
}

// Stop halts sampling; any pending tick becomes a no-op.
func (s *Sampler) Stop() { s.stopped = true }

// Samples returns the number of rows currently retained.
func (s *Sampler) Samples() int { return s.n }

// Dropped returns how many old rows were evicted by ring wrap-around.
func (s *Sampler) Dropped() uint64 { return s.dropped }

func (s *Sampler) read() []float64 {
	row := make([]float64, len(s.probes))
	for i := range s.probes {
		row[i] = s.probes[i].fn()
	}
	return row
}

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	// If nothing else is pending, the simulation has either finished or
	// deadlocked; rescheduling would keep the event loop spinning forever
	// and mask deadlock detection (which relies on the queue draining).
	if s.pending != nil && s.pending() == 0 {
		return
	}
	s.after(s.every, s.tick)
	t, row := s.now(), s.read()
	if len(s.subs) > 0 {
		vals := make([]float64, len(s.probes))
		s.exportRow(s.lastTime, s.lastRow, t, row, vals)
		w := Window{Cycle: t, Values: vals}
		for _, fn := range s.subs {
			fn(w)
		}
		s.lastTime, s.lastRow = t, row
	}
	if s.n < s.cap {
		s.times = append(s.times, t)
		s.rows = append(s.rows, row)
		s.n++
		return
	}
	s.baseTime = s.times[s.head]
	s.base = s.rows[s.head]
	s.times[s.head] = t
	s.rows[s.head] = row
	s.head = (s.head + 1) % s.cap
	s.dropped++
}

// exportRow computes one window's exported values from consecutive raw
// readings: counter deltas, per-cycle rates, or raw gauges per probe kind.
func (s *Sampler) exportRow(prevT mem.Cycle, prev []float64, t mem.Cycle, row, vals []float64) {
	dt := float64(t - prevT)
	for j := range s.probes {
		switch s.probes[j].kind {
		case CounterKind:
			vals[j] = (row[j] - prev[j]) * s.probes[j].scale
		case UtilKind:
			if dt > 0 {
				vals[j] = (row[j] - prev[j]) / dt * s.probes[j].scale
			} else {
				vals[j] = 0
			}
		default:
			vals[j] = row[j] * s.probes[j].scale
		}
	}
}

// export walks the retained rows oldest-first, yielding the sample time and
// the per-probe exported values (deltas/rates already applied).
func (s *Sampler) export(emit func(t mem.Cycle, vals []float64)) {
	prevT, prev := s.baseTime, s.base
	vals := make([]float64, len(s.probes))
	for i := 0; i < s.n; i++ {
		idx := (s.head + i) % s.cap
		t, row := s.times[idx], s.rows[idx]
		s.exportRow(prevT, prev, t, row, vals)
		emit(t, vals)
		prevT, prev = t, row
	}
}

func formatVal(v float64) string {
	return fmt.Sprintf("%.6g", v)
}
