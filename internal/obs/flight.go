package obs

import (
	"fmt"

	"dap/internal/mem"
)

// FlightRecorder keeps a bounded ring of recent engine-state summaries for
// one running simulation — the "black box" that turns a watchdog stall, an
// exhausted job or a faultinject abort into a postmortem artifact. The
// simulation samples into it periodically (see sim.Engine.SetFlightSampler)
// and at lifecycle milestones; on a failure the harness freezes the ring
// into a FlightDump.
//
// Like every observer in this package the recorder is strictly read-only
// with respect to simulated state: it stores strings the simulation already
// produced, is single-goroutine (the engine's), and a nil *FlightRecorder
// is a valid disabled recorder whose methods are no-ops.
type FlightRecorder struct {
	entries []FlightEntry
	max     int
	head    int // next write position once the ring is full
	full    bool
	dropped uint64
}

// FlightEntry is one recorded state summary.
type FlightEntry struct {
	Cycle uint64 `json:"cycle"`
	Note  string `json:"note"`
}

// NewFlightRecorder builds a recorder retaining the last capacity entries
// (≤ 0 selects 256).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{max: capacity}
}

// Add records one entry, evicting the oldest when the ring is full.
func (fr *FlightRecorder) Add(cycle mem.Cycle, note string) {
	if fr == nil {
		return
	}
	e := FlightEntry{Cycle: uint64(cycle), Note: note}
	if len(fr.entries) < fr.max {
		fr.entries = append(fr.entries, e)
		return
	}
	fr.entries[fr.head] = e
	fr.head = (fr.head + 1) % fr.max
	fr.full = true
	fr.dropped++
}

// Addf is Add with printf formatting.
func (fr *FlightRecorder) Addf(cycle mem.Cycle, format string, args ...any) {
	if fr == nil {
		return
	}
	fr.Add(cycle, fmt.Sprintf(format, args...))
}

// Len returns the number of retained entries.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	return len(fr.entries)
}

// Dropped returns how many old entries were evicted by the ring.
func (fr *FlightRecorder) Dropped() uint64 {
	if fr == nil {
		return 0
	}
	return fr.dropped
}

// Entries returns the retained entries oldest-first (a copy).
func (fr *FlightRecorder) Entries() []FlightEntry {
	if fr == nil || len(fr.entries) == 0 {
		return nil
	}
	out := make([]FlightEntry, 0, len(fr.entries))
	if fr.full {
		out = append(out, fr.entries[fr.head:]...)
		out = append(out, fr.entries[:fr.head]...)
	} else {
		out = append(out, fr.entries...)
	}
	return out
}

// FlightDump is a frozen flight recording plus the failure context — what
// gets written to disk, logged and served from /jobs/{id}/flight when a run
// aborts.
type FlightDump struct {
	Corr     string        `json:"corr,omitempty"`     // job correlation ID
	Job      uint64        `json:"job,omitempty"`      // job ID, when service-run
	Key      string        `json:"key,omitempty"`      // config fingerprint / store key
	Reason   string        `json:"reason"`             // "watchdog-stall", "run-error", "attempts-exhausted"
	Error    string        `json:"error,omitempty"`    // the triggering error's text
	Snapshot string        `json:"snapshot,omitempty"` // engine state at failure
	Entries  []FlightEntry `json:"entries"`
	Dropped  uint64        `json:"dropped,omitempty"` // ring evictions before the dump
}

// Dump freezes the recorder into a FlightDump with the given failure
// context. Returns nil for a nil recorder.
func (fr *FlightRecorder) Dump(reason, snapshot string) *FlightDump {
	if fr == nil {
		return nil
	}
	return &FlightDump{
		Reason:   reason,
		Snapshot: snapshot,
		Entries:  fr.Entries(),
		Dropped:  fr.dropped,
	}
}

// FlightError attaches a flight recording to the error that aborted a run,
// so layers above the harness (the sweep service) can persist and serve the
// dump without importing harness types. It unwraps to the underlying error.
type FlightError struct {
	Dump *FlightDump
	Err  error
}

func (e *FlightError) Error() string { return e.Err.Error() }
func (e *FlightError) Unwrap() error { return e.Err }
