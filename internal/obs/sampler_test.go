package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dap/internal/mem"
)

// fakeEngine is a minimal (when, FIFO) event loop standing in for
// sim.Engine in sampler tests. `other` models non-sampler work still
// pending, which the sampler's idle-stop rule consults via pending().
type fakeEngine struct {
	clock  mem.Cycle
	events []fakeEvent
	other  int
}

type fakeEvent struct {
	when mem.Cycle
	fn   func()
}

func (e *fakeEngine) now() mem.Cycle { return e.clock }

func (e *fakeEngine) after(d mem.Cycle, fn func()) {
	e.events = append(e.events, fakeEvent{when: e.clock + d, fn: fn})
}

func (e *fakeEngine) pending() int { return len(e.events) + e.other }

// run drains the event queue in (when, insertion) order, like the engine.
func (e *fakeEngine) run() {
	for len(e.events) > 0 {
		best := 0
		for i, ev := range e.events {
			if ev.when < e.events[best].when {
				best = i
			}
		}
		ev := e.events[best]
		e.events = append(e.events[:best], e.events[best+1:]...)
		e.clock = ev.when
		ev.fn()
	}
}

func TestSamplerKindsAndCSVGolden(t *testing.T) {
	eng := &fakeEngine{other: 1}
	s := NewSampler(eng.now, eng.after, eng.pending, 100, 0)

	var gauge float64
	var count, busy uint64
	s.Gauge("g", func() float64 { return gauge })
	s.Counter("c", func() uint64 { return count })
	s.Util("u", func() uint64 { return busy })
	s.UtilScaled("us", 10, func() uint64 { return busy })

	if got := strings.Join(s.Names(), ","); got != "g,c,u,us" {
		t.Fatalf("Names() = %q", got)
	}

	// Advance the observed state between ticks by scheduling mutations just
	// before each sample point.
	for i := 1; i <= 3; i++ {
		i := i
		eng.after(mem.Cycle(100*i)-1, func() {
			gauge = float64(i)
			count += uint64(10 * i)
			busy += 50
		})
	}
	// Stop the run after the third sample so the sampler's idle-stop rule
	// (nothing else pending) ends the loop.
	eng.after(301, func() { eng.other = 0 })

	s.Start()
	eng.run()

	if s.Samples() != 3 {
		t.Fatalf("Samples() = %d, want 3", s.Samples())
	}
	if s.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0", s.Dropped())
	}

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden.csv")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s: %v", golden, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("CSV mismatch\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

func TestSamplerJSONL(t *testing.T) {
	eng := &fakeEngine{other: 1}
	s := NewSampler(eng.now, eng.after, eng.pending, 10, 0)
	var count uint64
	s.Counter("hits", func() uint64 { return count })
	eng.after(9, func() { count = 7 })
	eng.after(11, func() { eng.other = 0 })
	s.Start()
	eng.run()

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != s.Samples() {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), s.Samples())
	}
	var row map[string]float64
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatalf("line 0 not valid JSON: %v\n%s", err, lines[0])
	}
	if row["cycle"] != 10 || row["hits"] != 7 {
		t.Errorf("row = %v, want cycle=10 hits=7", row)
	}
}

// TestSamplerRingWrap checks that counter deltas stay correct after old rows
// are evicted: the evicted row becomes the new delta base.
func TestSamplerRingWrap(t *testing.T) {
	eng := &fakeEngine{other: 1}
	s := NewSampler(eng.now, eng.after, eng.pending, 10, 2)
	var count uint64
	s.Counter("c", func() uint64 { return count })
	// count advances by 1, 2, 3, 4 in the four windows.
	for i := 1; i <= 4; i++ {
		i := i
		eng.after(mem.Cycle(10*i)-1, func() { count += uint64(i) })
	}
	eng.after(41, func() { eng.other = 0 })
	s.Start()
	eng.run()

	if s.Samples() != 2 || s.Dropped() != 2 {
		t.Fatalf("Samples=%d Dropped=%d, want 2 and 2", s.Samples(), s.Dropped())
	}
	var got []float64
	s.export(func(_ mem.Cycle, vals []float64) { got = append(got, vals[0]) })
	// Retained windows are the 3rd and 4th; their deltas must still be 3, 4.
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("exported deltas = %v, want [3 4]", got)
	}
}

func TestSamplerIdleStopAndLateRegisterPanic(t *testing.T) {
	eng := &fakeEngine{} // other == 0: nothing but the sampler pending
	s := NewSampler(eng.now, eng.after, eng.pending, 10, 0)
	s.Gauge("g", func() float64 { return 0 })
	s.Start()
	eng.run() // must terminate: the first tick sees pending()==0 and stops
	if s.Samples() != 0 {
		t.Errorf("idle sampler recorded %d samples, want 0", s.Samples())
	}

	defer func() {
		if recover() == nil {
			t.Error("registering a probe after Start did not panic")
		}
	}()
	s.Gauge("late", func() float64 { return 0 })
}

func TestWindowedRatio(t *testing.T) {
	var num, den uint64
	r := WindowedRatio(func() uint64 { return num }, func() uint64 { return den })
	if got := r(); got != 0 {
		t.Errorf("empty interval ratio = %v, want 0", got)
	}
	num, den = 3, 4
	if got := r(); got != 0.75 {
		t.Errorf("ratio = %v, want 0.75", got)
	}
	num, den = 3, 8 // num flat, den +4 in this interval
	if got := r(); got != 0 {
		t.Errorf("interval ratio = %v, want 0", got)
	}
}
