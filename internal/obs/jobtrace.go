package obs

import (
	"io"
	"strings"
	"sync"
	"time"
)

// JobTracer records the service-level lifecycle of sweep jobs — spans for
// the queue wait, execution and store write, instants for submit, lease,
// ack, retry, dead-letter and requeue edges — as wall-clock events keyed by
// job ID, and renders them as Chrome trace-event JSON so a whole sweep
// opens in Perfetto with one track per job.
//
// Unlike the simulation Tracer (single-threaded, simulated cycles), the
// JobTracer is shared by every service goroutine: workers, the reaper and
// HTTP handlers record concurrently, so it is mutex-protected and
// wall-clock based. The buffer is bounded; events past the cap are counted
// in Dropped rather than retained. A nil *JobTracer is a valid disabled
// tracer — every method is a nil-safe no-op.
type JobTracer struct {
	mu      sync.Mutex
	t0      time.Time
	max     int
	events  []jobEvent
	tracks  map[uint64]string
	order   []uint64
	dropped uint64
}

type jobEvent struct {
	name  string
	phase byte // 'X' complete, 'i' instant
	tid   uint64
	ts    time.Duration // since t0
	dur   time.Duration // 'X' only
	args  []string      // alternating key, value
}

// NewJobTracer builds a tracer retaining at most capacity events (≤ 0
// selects 1<<16). The trace clock starts at the first recorded event.
func NewJobTracer(capacity int) *JobTracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &JobTracer{max: capacity, tracks: make(map[uint64]string)}
}

// Track names job tid's track in the rendered trace (typically the
// correlation ID plus the mix/policy). First name wins.
func (jt *JobTracer) Track(tid uint64, name string) {
	if jt == nil {
		return
	}
	jt.mu.Lock()
	if _, ok := jt.tracks[tid]; !ok {
		jt.tracks[tid] = name
		jt.order = append(jt.order, tid)
	}
	jt.mu.Unlock()
}

// Span records a completed interval [start, end) on job tid's track. args
// are alternating key, value strings rendered into the event's args object.
func (jt *JobTracer) Span(tid uint64, name string, start, end time.Time, args ...string) {
	if jt == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	jt.record(jobEvent{name: name, phase: 'X', tid: tid, dur: end.Sub(start), args: args}, start)
}

// Instant records a point event on job tid's track.
func (jt *JobTracer) Instant(tid uint64, name string, args ...string) {
	if jt == nil {
		return
	}
	jt.record(jobEvent{name: name, phase: 'i', tid: tid, args: args}, time.Now())
}

func (jt *JobTracer) record(ev jobEvent, at time.Time) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if jt.t0.IsZero() {
		jt.t0 = at
	}
	if len(jt.events) >= jt.max {
		jt.dropped++
		return
	}
	ev.ts = at.Sub(jt.t0)
	if ev.ts < 0 {
		ev.ts = 0
	}
	jt.events = append(jt.events, ev)
}

// Len returns the number of retained events.
func (jt *JobTracer) Len() int {
	if jt == nil {
		return 0
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return len(jt.events)
}

// Dropped returns how many events were discarded because the buffer was
// full.
func (jt *JobTracer) Dropped() uint64 {
	if jt == nil {
		return 0
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	return jt.dropped
}

// HasInstant reports whether an instant event with the given name was
// recorded — used by tests to assert lifecycle edges (e.g. "retry").
func (jt *JobTracer) HasInstant(name string) bool {
	if jt == nil {
		return false
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	for i := range jt.events {
		if jt.events[i].phase == 'i' && jt.events[i].name == name {
			return true
		}
	}
	return false
}

func traceWallUS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1000
}

func renderArgs(sb *strings.Builder, args []string) {
	sb.WriteString(`"args":{`)
	for i := 0; i+1 < len(args); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('"')
		sb.WriteString(jsonEscape(args[i]))
		sb.WriteString(`":"`)
		sb.WriteString(jsonEscape(args[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// WriteChromeTrace renders the retained job events as Chrome trace-event
// JSON: one named track per job (tid = job ID) under pid 1 — distinct from
// the simulation tracer's pid 0 core tracks, so both traces can be merged.
func (jt *JobTracer) WriteChromeTrace(w io.Writer) error {
	cw := NewChromeTraceWriter(w)
	if jt != nil {
		jt.mu.Lock()
		for _, tid := range jt.order {
			cw.Emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"%s"}}`,
				tid, jsonEscape(jt.tracks[tid]))
		}
		for i := range jt.events {
			ev := &jt.events[i]
			var sb strings.Builder
			renderArgs(&sb, ev.args)
			switch ev.phase {
			case 'X':
				cw.Emit(`{"name":"%s","cat":"job","ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,%s}`,
					jsonEscape(ev.name), ev.tid, traceWallUS(ev.ts), traceWallUS(ev.dur), sb.String())
			default:
				cw.Emit(`{"name":"%s","cat":"job","ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,%s}`,
					jsonEscape(ev.name), ev.tid, traceWallUS(ev.ts), sb.String())
			}
		}
		jt.mu.Unlock()
	}
	return cw.Close()
}
