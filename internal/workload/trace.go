package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dap/internal/mem"
)

// Trace recording and replay. Synthetic streams stand in for the paper's
// SPEC snippets, but users with real traces can bring them: WriteTrace
// serializes any Stream prefix to a compact varint-delta format, and
// TraceStream replays a recorded trace (looping when exhausted, like the
// paper's early-finishing threads that "continue to run").
//
// Format: the magic header, a uint32 record count, then per access:
//
//	flags byte (bit0 store, bit1 dependent)
//	uvarint gap
//	varint line delta from the previous access (signed, zig-zag)

const traceMagic = "DAPTRACE1"

// WriteTrace serializes the next n accesses of s.
func WriteTrace(w io.Writer, s Stream, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(n))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	prev := int64(0)
	for i := 0; i < n; i++ {
		a := s.Next()
		var flags byte
		if a.Store {
			flags |= 1
		}
		if a.Dependent {
			flags |= 2
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		k := binary.PutUvarint(buf[:], uint64(a.Gap))
		line := int64(a.Addr.Line())
		k += binary.PutVarint(buf[k:], line-prev)
		prev = line
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceStream replays a recorded access trace, looping at the end.
type TraceStream struct {
	accs []Access
	pos  int
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*TraceStream, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if string(head) != traceMagic {
		return nil, errors.New("workload: not a DAP trace file")
	}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace count: %w", err)
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	const maxTrace = 1 << 28
	if n == 0 || n > maxTrace {
		return nil, fmt.Errorf("workload: implausible trace length %d", n)
	}
	ts := &TraceStream{accs: make([]Access, 0, n)}
	prev := int64(0)
	for i := uint32(0); i < n; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("workload: truncated trace at record %d: %w", i, err)
		}
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("workload: truncated gap at record %d: %w", i, err)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("workload: truncated address at record %d: %w", i, err)
		}
		prev += delta
		if prev < 0 {
			return nil, fmt.Errorf("workload: negative address at record %d", i)
		}
		ts.accs = append(ts.accs, Access{
			Addr:      mem.Addr(prev) << mem.LineShift,
			Store:     flags&1 != 0,
			Dependent: flags&2 != 0,
			Gap:       uint32(gap),
		})
	}
	return ts, nil
}

// Len returns the number of recorded accesses.
func (t *TraceStream) Len() int { return len(t.accs) }

// Next implements Stream, looping at the end of the trace.
func (t *TraceStream) Next() Access {
	a := t.accs[t.pos]
	t.pos++
	if t.pos == len(t.accs) {
		t.pos = 0
	}
	return a
}

// Rebase returns a copy of the trace with every address offset so the trace
// occupies core i's private region (for replaying one trace in rate mode).
func (t *TraceStream) Rebase(base mem.Addr) *TraceStream {
	out := &TraceStream{accs: make([]Access, len(t.accs))}
	copy(out.accs, t.accs)
	for i := range out.accs {
		out.accs[i].Addr += base
	}
	return out
}
