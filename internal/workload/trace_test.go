package workload

import (
	"bytes"
	"testing"

	"dap/internal/mem"
)

func TestTraceRoundTrip(t *testing.T) {
	spec, _ := ByName("mcf")
	src := NewStream(spec, CoreSpacing, 7)
	ref := NewStream(spec, CoreSpacing, 7)

	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, src, n); err != nil {
		t.Fatal(err)
	}
	ts, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != n {
		t.Fatalf("len = %d, want %d", ts.Len(), n)
	}
	for i := 0; i < n; i++ {
		want := ref.Next()
		got := ts.Next()
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	// looping: record n wraps to record 0
	first := ref
	_ = first
	ts2, _ := ReadTrace(func() *bytes.Buffer {
		var b bytes.Buffer
		WriteTrace(&b, NewStream(spec, CoreSpacing, 7), 10)
		return &b
	}())
	var seq []Access
	for i := 0; i < 20; i++ {
		seq = append(seq, ts2.Next())
	}
	for i := 0; i < 10; i++ {
		if seq[i] != seq[i+10] {
			t.Fatalf("trace must loop: %d", i)
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must be rejected")
	}
	// valid magic, truncated body
	var buf bytes.Buffer
	spec, _ := ByName("hpcg")
	WriteTrace(&buf, NewStream(spec, 0, 1), 100)
	b := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated trace must be rejected")
	}
}

func TestTraceRebase(t *testing.T) {
	var buf bytes.Buffer
	spec, _ := ByName("sjeng")
	WriteTrace(&buf, NewStream(spec, 0, 1), 100)
	ts, _ := ReadTrace(&buf)
	shifted := ts.Rebase(CoreSpacing)
	for i := 0; i < 100; i++ {
		a, b := ts.Next(), shifted.Next()
		if b.Addr != a.Addr+CoreSpacing {
			t.Fatalf("rebase broken at %d", i)
		}
		if a.Store != b.Store || a.Gap != b.Gap {
			t.Fatal("rebase must preserve non-address fields")
		}
	}
}

func TestTraceDrivesSimulation(t *testing.T) {
	// a trace is a Stream: it must plug into RateN-style setups
	var buf bytes.Buffer
	spec, _ := ByName("gcc.expr")
	WriteTrace(&buf, NewStream(spec, 0, 1), 1000)
	ts, _ := ReadTrace(&buf)
	var s Stream = ts.Rebase(CoreBase(0))
	for i := 0; i < 2500; i++ { // loops twice
		a := s.Next()
		if a.Addr < CoreBase(0) || a.Addr >= CoreBase(0)+mem.Addr(spec.Footprint())+4096 {
			t.Fatalf("trace access out of region: %#x", a.Addr)
		}
	}
}
