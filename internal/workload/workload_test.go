package workload

import (
	"testing"
	"testing/quick"

	"dap/internal/mem"
)

func TestSuiteComposition(t *testing.T) {
	if n := len(Sensitive()); n != 12 {
		t.Fatalf("sensitive = %d, want 12", n)
	}
	if n := len(Insensitive()); n != 5 {
		t.Fatalf("insensitive = %d, want 5", n)
	}
	if n := len(All()); n != 17 {
		t.Fatalf("all = %d, want 17", n)
	}
	for _, s := range Sensitive() {
		if !s.BandwidthSensitive {
			t.Errorf("%s must be marked bandwidth-sensitive", s.Name)
		}
	}
	for _, s := range Insensitive() {
		if s.BandwidthSensitive {
			t.Errorf("%s must not be marked bandwidth-sensitive", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("mcf")
	if !ok || s.Name != "mcf" {
		t.Fatal("mcf must resolve")
	}
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Fatal("unknown name must fail")
	}
	if len(Names()) != 17 {
		t.Fatal("Names must list all 17")
	}
}

func TestMixCounts(t *testing.T) {
	hm := HeterogeneousMixes(8)
	if len(hm) != 27 {
		t.Fatalf("heterogeneous mixes = %d, want 27", len(hm))
	}
	for _, m := range hm {
		if len(m.Specs) != 8 {
			t.Fatalf("%s has %d specs", m.Name, len(m.Specs))
		}
	}
	all := AllMixes(8)
	if len(all) != 44 {
		t.Fatalf("all mixes = %d, want 44", len(all))
	}
}

func TestStreamDeterminism(t *testing.T) {
	spec, _ := ByName("mcf")
	a := NewStream(spec, 1<<36, 42)
	b := NewStream(spec, 1<<36, 42)
	for i := 0; i < 10000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("streams diverge at access %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	spec, _ := ByName("mcf")
	a := NewStream(spec, 1<<36, 1)
	b := NewStream(spec, 1<<36, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().Addr == b.Next().Addr {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical addresses", same)
	}
}

func TestAddressesStayInFootprint(t *testing.T) {
	for _, spec := range All() {
		base := mem.Addr(3) * CoreSpacing
		s := NewStream(spec, base, 7)
		limit := base + mem.Addr(spec.Footprint())
		for i := 0; i < 20000; i++ {
			a := s.Next()
			if a.Addr < base || a.Addr >= limit+mem.Addr(4096) {
				t.Fatalf("%s: address %#x outside [%#x, %#x)", spec.Name, a.Addr, base, limit)
			}
			if a.Addr%mem.LineBytes != 0 {
				t.Fatalf("%s: address %#x not line-aligned", spec.Name, a.Addr)
			}
		}
	}
}

func TestWriteFractionRoughlyHonored(t *testing.T) {
	spec, _ := ByName("parboil-lbm") // WriteFrac 0.45
	s := NewStream(spec, 1<<36, 3)
	stores := 0
	n := 50000
	for i := 0; i < n; i++ {
		if s.Next().Store {
			stores++
		}
	}
	frac := float64(stores) / float64(n)
	if frac < 0.40 || frac > 0.50 {
		t.Fatalf("store fraction = %.3f, want ~0.45", frac)
	}
}

func TestMeanGapMatchesIntensity(t *testing.T) {
	spec, _ := ByName("mcf") // 42 mem per kilo -> mean gap ~22.8
	s := NewStream(spec, 1<<36, 3)
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += float64(s.Next().Gap)
	}
	meanGap := sum / float64(n)
	want := 1000/spec.MemPerKilo - 1
	if meanGap < want*0.85 || meanGap > want*1.15 {
		t.Fatalf("mean gap = %.1f, want ~%.1f", meanGap, want)
	}
}

func TestSectorDensityLimitsBlocks(t *testing.T) {
	spec, _ := ByName("omnetpp") // density 0.20 -> <= 13 blocks per sector
	s := NewStream(spec, 0, 3)
	blocks := make(map[uint64]map[uint64]bool)
	for i := 0; i < 100000; i++ {
		a := s.Next()
		sector := uint64(a.Addr) / 4096
		if blocks[sector] == nil {
			blocks[sector] = make(map[uint64]bool)
		}
		blocks[sector][uint64(a.Addr.Line())%64] = true
	}
	max := int(spec.SectorDensity*64 + 0.5)
	for sector, bs := range blocks {
		if len(bs) > max {
			t.Fatalf("sector %d uses %d blocks, density cap is %d", sector, len(bs), max)
		}
	}
}

func TestDependentOnlyFromChase(t *testing.T) {
	spec, _ := ByName("libquantum") // no chase fraction
	s := NewStream(spec, 0, 3)
	for i := 0; i < 20000; i++ {
		if s.Next().Dependent {
			t.Fatal("libquantum must not emit dependent accesses")
		}
	}
	spec2, _ := ByName("mcf")
	s2 := NewStream(spec2, 0, 3)
	dep := 0
	for i := 0; i < 20000; i++ {
		if s2.Next().Dependent {
			dep++
		}
	}
	if dep < 20000/4 {
		t.Fatalf("mcf chase fraction 0.40 but only %d/20000 dependent", dep)
	}
}

func TestRateNPrivateRegions(t *testing.T) {
	spec, _ := ByName("hpcg")
	streams := RateN(spec, 8)
	if len(streams) != 8 {
		t.Fatal("want 8 streams")
	}
	for i, s := range streams {
		a := s.Next()
		region := a.Addr / CoreSpacing
		if int(region) != i+1 {
			t.Fatalf("stream %d emits region %d", i, region)
		}
	}
}

func TestSkewConcentratesMass(t *testing.T) {
	spec := Spec{Name: "skewtest", FootprintMB: 8, SkewAlpha: 3, MemPerKilo: 20, SectorDensity: 1}
	s := NewStream(spec, 0, 5)
	lines := spec.Footprint() / mem.LineBytes
	inFirstQuarter := 0
	n := 50000
	for i := 0; i < n; i++ {
		if uint64(s.Next().Addr.Line()) < lines/4 {
			inFirstQuarter++
		}
	}
	// With alpha=3, P(first quarter) = 0.25^(1/3) ~ 0.63.
	if frac := float64(inFirstQuarter) / float64(n); frac < 0.5 {
		t.Fatalf("skewed stream put only %.2f of mass in first quarter", frac)
	}
}

// Property: every generated access is inside the core's region and gaps are
// bounded.
func TestStreamInvariants(t *testing.T) {
	f := func(seed uint16, which uint8) bool {
		specs := All()
		spec := specs[int(which)%len(specs)]
		s := NewStream(spec, CoreSpacing, uint64(seed)+1)
		for i := 0; i < 500; i++ {
			a := s.Next()
			if a.Addr < CoreSpacing || a.Addr >= 2*CoreSpacing {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
