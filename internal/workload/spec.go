// Package workload provides the synthetic application snippets that stand in
// for the paper's SPEC CPU 2006 / HPCG / Parboil traces, plus the streaming
// bandwidth kernel of Figure 1 and the 27 heterogeneous mixes.
//
// Each snippet is a deterministic pseudo-random stream of line-granularity
// loads and stores over a private address space. The knobs (footprint, hot
// set, streaming/pointer-chase mix, write fraction, sector density, memory
// intensity) are calibrated so that each named workload reproduces the
// qualitative behaviour the paper reports for its namesake: its L3 MPKI
// band, bandwidth sensitivity, spatial (sector) utilization and latency
// sensitivity. Capacities follow the repository-wide 64x scale-down
// documented in DESIGN.md.
package workload

import "dap/internal/mem"

// Spec describes one application snippet.
type Spec struct {
	Name string

	// FootprintMB is the per-core working set (64x scaled).
	FootprintMB float64
	// HotMB is a small hot subset that captures temporal locality.
	HotMB float64

	// Access mix: fractions of all accesses. StreamFrac accesses walk
	// sequentially through the footprint; ChaseFrac are dependent
	// pointer-chasing loads (serialize in the ROB); HotFrac go to the hot
	// set; the remainder are uniform random over the footprint.
	StreamFrac float64
	ChaseFrac  float64
	HotFrac    float64

	// WriteFrac is the store fraction of all accesses.
	WriteFrac float64

	// MemPerKilo is distinct-line memory accesses per 1000 instructions.
	MemPerKilo float64

	// Burstiness in [0,1): probability that an access follows the previous
	// one back-to-back, producing the bandwidth spikes DAP's windows see.
	Burstiness float64

	// SectorDensity is the fraction of 64-byte blocks actually used inside
	// each 4 KB sector-sized region (omnetpp-style sparse access patterns
	// give low density, which wrecks tag-cache temporal utility and
	// footprint prefetching).
	SectorDensity float64

	// SkewAlpha shapes the power-law locality of random accesses (1 =
	// uniform; larger concentrates reuse in a smaller hot mass).
	SkewAlpha float64

	// BandwidthSensitive records the paper's classification (Figure 4).
	BandwidthSensitive bool
}

// Footprint returns the byte size of the per-core working set.
func (s *Spec) Footprint() uint64 { return uint64(s.FootprintMB * mem.MiB) }

// Hot returns the byte size of the hot region.
func (s *Spec) Hot() uint64 {
	h := uint64(s.HotMB * mem.MiB)
	if h == 0 {
		h = 1 * mem.MiB
	}
	return h
}

// The 12 bandwidth-sensitive snippets (Figure 4 top panel).
var sensitive = []Spec{
	{Name: "astar.BigLakes", FootprintMB: 6, HotMB: 1, ChaseFrac: 0.30, HotFrac: 0.20, WriteFrac: 0.20, MemPerKilo: 35, Burstiness: 0.35, SectorDensity: 0.30, SkewAlpha: 3.0, BandwidthSensitive: true},
	{Name: "bzip2.combined", FootprintMB: 6, HotMB: 1, StreamFrac: 0.45, HotFrac: 0.25, WriteFrac: 0.30, MemPerKilo: 28, Burstiness: 0.45, SectorDensity: 0.85, SkewAlpha: 2.5, BandwidthSensitive: true},
	{Name: "gcc.expr", FootprintMB: 5, HotMB: 1, StreamFrac: 0.30, HotFrac: 0.30, WriteFrac: 0.33, MemPerKilo: 24, Burstiness: 0.50, SectorDensity: 0.70, SkewAlpha: 3.0, BandwidthSensitive: true},
	{Name: "gcc.s04", FootprintMB: 6, HotMB: 1, StreamFrac: 0.35, HotFrac: 0.25, WriteFrac: 0.36, MemPerKilo: 30, Burstiness: 0.50, SectorDensity: 0.70, SkewAlpha: 3.2, BandwidthSensitive: true},
	{Name: "gobmk.score2", FootprintMB: 5, HotMB: 1, StreamFrac: 0.20, HotFrac: 0.35, WriteFrac: 0.28, MemPerKilo: 20, Burstiness: 0.40, SectorDensity: 0.55, SkewAlpha: 3.0, BandwidthSensitive: true},
	{Name: "hpcg", FootprintMB: 6, HotMB: 1, StreamFrac: 0.70, HotFrac: 0.10, WriteFrac: 0.16, MemPerKilo: 40, Burstiness: 0.55, SectorDensity: 1.0, SkewAlpha: 2.0, BandwidthSensitive: true},
	{Name: "libquantum", FootprintMB: 5, HotMB: 1, StreamFrac: 0.95, WriteFrac: 0.25, MemPerKilo: 36, Burstiness: 0.60, SectorDensity: 1.0, SkewAlpha: 1.0, BandwidthSensitive: true},
	{Name: "mcf", FootprintMB: 7, HotMB: 1, ChaseFrac: 0.25, HotFrac: 0.15, WriteFrac: 0.18, MemPerKilo: 60, Burstiness: 0.30, SectorDensity: 0.60, SkewAlpha: 2.8, BandwidthSensitive: true},
	{Name: "omnetpp", FootprintMB: 8, HotMB: 1, ChaseFrac: 0.10, HotFrac: 0.20, WriteFrac: 0.30, MemPerKilo: 34, Burstiness: 0.40, SectorDensity: 0.20, SkewAlpha: 2.5, BandwidthSensitive: true},
	{Name: "parboil-lbm", FootprintMB: 10, HotMB: 1, StreamFrac: 0.90, WriteFrac: 0.45, MemPerKilo: 34, Burstiness: 0.65, SectorDensity: 1.0, SkewAlpha: 1.0, BandwidthSensitive: true},
	{Name: "sjeng", FootprintMB: 6, HotMB: 1.5, HotFrac: 0.40, WriteFrac: 0.22, MemPerKilo: 20, Burstiness: 0.35, SectorDensity: 0.45, SkewAlpha: 3.0, BandwidthSensitive: true},
	{Name: "soplex.ref", FootprintMB: 6, HotMB: 1, StreamFrac: 0.55, HotFrac: 0.10, WriteFrac: 0.20, MemPerKilo: 34, Burstiness: 0.50, SectorDensity: 0.80, SkewAlpha: 2.0, BandwidthSensitive: true},
}

// The 5 bandwidth-insensitive snippets (lower MPKI / latency bound).
var insensitive = []Spec{
	{Name: "bwaves", FootprintMB: 5, HotMB: 1, StreamFrac: 0.88, WriteFrac: 0.22, MemPerKilo: 6, Burstiness: 0.20, SectorDensity: 1.0, SkewAlpha: 1.0},
	{Name: "cactusADM", FootprintMB: 4, HotMB: 1, StreamFrac: 0.50, HotFrac: 0.25, WriteFrac: 0.30, MemPerKilo: 5, Burstiness: 0.20, SectorDensity: 0.90, SkewAlpha: 2.0},
	{Name: "leslie3D", FootprintMB: 4, HotMB: 1, StreamFrac: 0.80, WriteFrac: 0.25, MemPerKilo: 6, Burstiness: 0.20, SectorDensity: 1.0, SkewAlpha: 1.5},
	{Name: "milc", FootprintMB: 4, HotMB: 1, StreamFrac: 0.60, HotFrac: 0.15, WriteFrac: 0.20, MemPerKilo: 5, Burstiness: 0.20, SectorDensity: 0.95, SkewAlpha: 2.0},
	{Name: "parboil-histo", FootprintMB: 3, HotMB: 1.5, HotFrac: 0.60, WriteFrac: 0.40, MemPerKilo: 5, Burstiness: 0.20, SectorDensity: 0.60, SkewAlpha: 2.0},
}

// Sensitive returns the 12 bandwidth-sensitive specs in the paper's order.
func Sensitive() []Spec { return append([]Spec(nil), sensitive...) }

// Insensitive returns the 5 bandwidth-insensitive specs.
func Insensitive() []Spec { return append([]Spec(nil), insensitive...) }

// All returns all 17 snippets.
func All() []Spec { return append(Sensitive(), Insensitive()...) }

// ByName looks up a spec; ok is false for unknown names.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists all snippet names.
func Names() []string {
	var out []string
	for _, s := range All() {
		out = append(out, s.Name)
	}
	return out
}
