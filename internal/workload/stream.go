package workload

import (
	"math"

	"dap/internal/mem"
)

// Access is one line-granularity memory operation in a core's stream.
type Access struct {
	Addr      mem.Addr // line-aligned byte address
	Store     bool
	Dependent bool   // must wait for the previous dependent load (pointer chase)
	Gap       uint32 // non-memory instructions preceding this access
}

// Stream produces an infinite access stream. Implementations are
// deterministic for a given seed.
type Stream interface {
	Next() Access
}

// rng is xorshift64* — fast, deterministic, good enough for address streams.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform integer in [0,n).
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

const (
	sectorBytes  = 4096
	sectorBlocks = sectorBytes / mem.LineBytes
)

// specStream generates a Spec's access pattern within [base, base+footprint).
type specStream struct {
	spec Spec
	base mem.Addr
	r    rng

	footLines uint64
	hotLines  uint64
	streamPos uint64 // current streaming cursor (line index)
	chasePos  uint64 // current pointer-chase position

	// usableBlocks[i] for i in [0,density*64) are the block offsets used
	// inside each sector (fixed permutation per workload).
	usableBlocks []uint64
	meanGap      float64
	alpha        float64
}

// NewStream builds the access stream for spec, core-private at base.
// Each (spec, seed) pair yields an identical sequence.
func NewStream(spec Spec, base mem.Addr, seed uint64) Stream {
	s := &specStream{spec: spec, base: base, r: newRNG(seed*0x9e3779b97f4a7c15 + 1)}
	s.footLines = spec.Footprint() / mem.LineBytes
	if s.footLines < sectorBlocks {
		s.footLines = sectorBlocks
	}
	s.hotLines = spec.Hot() / mem.LineBytes
	if s.hotLines > s.footLines {
		s.hotLines = s.footLines
	}
	n := int(spec.SectorDensity*sectorBlocks + 0.5)
	if n < 1 {
		n = 1
	}
	if n > sectorBlocks {
		n = sectorBlocks
	}
	// fixed permutation of block slots inside a sector
	perm := make([]uint64, sectorBlocks)
	for i := range perm {
		perm[i] = uint64(i)
	}
	pr := newRNG(seed ^ 0xabcdef)
	for i := sectorBlocks - 1; i > 0; i-- {
		j := pr.intn(uint64(i + 1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	s.usableBlocks = perm[:n]
	s.alpha = spec.SkewAlpha
	if s.alpha < 1 {
		s.alpha = 1
	}
	if spec.MemPerKilo > 0 {
		s.meanGap = 1000/spec.MemPerKilo - 1
		if s.meanGap < 0 {
			s.meanGap = 0
		}
	} else {
		s.meanGap = 999
	}
	return s
}

// skewed draws a line index with power-law locality: u^alpha concentrates
// mass toward low indices, modeling the temporal reuse real applications
// exhibit (alpha 1 = uniform).
func (s *specStream) skewed(n uint64) uint64 {
	u := s.r.float()
	if s.alpha > 1 {
		u = math.Pow(u, s.alpha)
	}
	i := uint64(u * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// sparse maps a uniformly chosen line index onto the workload's usable
// blocks: the sector is kept, the block within the sector is forced onto the
// usable permutation. Low density therefore spreads a footprint over more
// sectors with fewer blocks each.
func (s *specStream) sparse(line uint64) uint64 {
	sector := line / sectorBlocks
	slot := s.usableBlocks[line%uint64(len(s.usableBlocks))]
	return sector*sectorBlocks + slot
}

func (s *specStream) gap() uint32 {
	// Bursty bimodal gaps preserving the configured mean: with probability
	// Burstiness the access is back-to-back, otherwise the gap is drawn
	// around the stretched mean.
	b := s.spec.Burstiness
	if b > 0 && s.r.float() < b {
		return 0
	}
	stretched := s.meanGap / (1 - b)
	// uniform in [0.5, 1.5) x stretched keeps the mean while adding jitter
	g := stretched * (0.5 + s.r.float())
	if g > 4e9 {
		g = 4e9
	}
	return uint32(g)
}

func (s *specStream) Next() Access {
	a := Access{Gap: s.gap()}
	p := s.r.float()
	sp := &s.spec
	var line uint64
	switch {
	case p < sp.StreamFrac:
		line = s.streamPos
		s.streamPos++
		if s.streamPos >= s.footLines {
			s.streamPos = 0
		}
	case p < sp.StreamFrac+sp.ChaseFrac:
		// dependent pointer chase over the sparse footprint
		s.chasePos = s.sparse(s.skewed(s.footLines))
		line = s.chasePos
		a.Dependent = true
	case p < sp.StreamFrac+sp.ChaseFrac+sp.HotFrac:
		line = s.sparse(s.r.intn(s.hotLines))
	default:
		line = s.sparse(s.skewed(s.footLines))
	}
	a.Addr = s.base + mem.Addr(line*mem.LineBytes)
	if s.r.float() < sp.WriteFrac {
		a.Store = true
	}
	return a
}

// CoreSpacing is the address-space stride between cores' private regions.
// It is far larger than any footprint so workloads never alias.
const CoreSpacing = mem.Addr(1) << 36

// CoreBase returns core i's region base. A per-core stagger of 4615 sectors
// (~18.9 MB, chosen so that i*4615 spreads well modulo the sector-cache set
// count (4096), the Alloy cache's direct-mapped set count, and the L3 set
// count) tiles the cores' footprints evenly over every cache in the system,
// as physical frame allocation does on a real machine; power-of-two spacing
// alone would pile every core onto the same sets.
func CoreBase(i int) mem.Addr {
	return CoreSpacing*mem.Addr(i+1) + mem.Addr(i)*4615*4096
}

// RateN builds n identical streams (the paper's rate-n mode), each in a
// private address region with a distinct seed.
func RateN(spec Spec, n int) []Stream {
	out := make([]Stream, n)
	for i := range out {
		out[i] = NewStream(spec, CoreBase(i), uint64(i+1))
	}
	return out
}

// MixStreams builds one stream per spec, each core-private.
func MixStreams(specs []Spec) []Stream {
	out := make([]Stream, len(specs))
	for i, sp := range specs {
		out[i] = NewStream(sp, CoreBase(i), uint64(i+1)*7919)
	}
	return out
}
