package workload

import "fmt"

// Mix is a named eight-way combination of snippets (Section V: 27
// heterogeneous mixes; roughly half combine snippets of similar bandwidth
// sensitivity, the rest dissimilar).
type Mix struct {
	Name  string
	Specs []Spec
}

// HeterogeneousMixes deterministically builds the 27 eight-way mixes from
// the 17 snippets. Mixes 1-13 draw from a single sensitivity class
// ("similar"); mixes 14-27 interleave both classes ("dissimilar").
func HeterogeneousMixes(cores int) []Mix {
	sens := Sensitive()
	insens := Insensitive()
	var mixes []Mix
	pick := func(pool []Spec, start, stride int) []Spec {
		out := make([]Spec, cores)
		for i := 0; i < cores; i++ {
			out[i] = pool[(start+i*stride)%len(pool)]
		}
		return out
	}
	// 13 similar mixes: rotate through the sensitive pool with co-prime
	// strides so each mix is a distinct combination.
	for m := 0; m < 13; m++ {
		stride := 1 + m%5
		mixes = append(mixes, Mix{
			Name:  fmt.Sprintf("hetero-sim-%02d", m+1),
			Specs: pick(sens, m, stride),
		})
	}
	// 14 dissimilar mixes: alternate sensitive and insensitive snippets.
	for m := 0; m < 14; m++ {
		specs := make([]Spec, cores)
		for i := 0; i < cores; i++ {
			if i%2 == 0 {
				specs[i] = sens[(m*3+i)%len(sens)]
			} else {
				specs[i] = insens[(m+i)%len(insens)]
			}
		}
		mixes = append(mixes, Mix{Name: fmt.Sprintf("hetero-dis-%02d", m+1), Specs: specs})
	}
	return mixes
}

// RateMix wraps a homogeneous rate-n run as a Mix.
func RateMix(spec Spec, cores int) Mix {
	specs := make([]Spec, cores)
	for i := range specs {
		specs[i] = spec
	}
	return Mix{Name: spec.Name, Specs: specs}
}

// AllMixes returns the full 44-workload suite for an n-core system:
// 12 bandwidth-sensitive rate mixes, 5 insensitive rate mixes and the 27
// heterogeneous mixes (Figure 12).
func AllMixes(cores int) []Mix {
	var out []Mix
	for _, s := range Sensitive() {
		out = append(out, RateMix(s, cores))
	}
	for _, s := range Insensitive() {
		out = append(out, RateMix(s, cores))
	}
	out = append(out, HeterogeneousMixes(cores)...)
	return out
}

// Streams instantiates the per-core streams of a mix.
func (m Mix) Streams() []Stream { return MixStreams(m.Specs) }

// StreamsSeeded instantiates the mix with a run-level seed so experiments
// can be replicated over independent random draws (seed 0 matches Streams).
func (m Mix) StreamsSeeded(seed uint64) []Stream {
	out := make([]Stream, len(m.Specs))
	for i, sp := range m.Specs {
		out[i] = NewStream(sp, CoreBase(i), uint64(i+1)*7919+seed*0x9e3779b9)
	}
	return out
}
