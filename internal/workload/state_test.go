package workload

import (
	"bytes"
	"testing"

	"dap/internal/ckpt"
)

// roundTrip serializes src's stream state and loads it into dst.
func roundTrip(t *testing.T, src, dst StatefulStream) error {
	t.Helper()
	w := ckpt.NewWriter()
	src.SaveState(w.Section("s"))
	r, err := ckpt.NewReader(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	d, ok := r.Section("s")
	if !ok {
		t.Fatal("section lost in round trip")
	}
	return dst.LoadState(d)
}

// drain pulls n accesses, so stream cursors sit mid-sequence (and mid-wrap,
// when n exceeds a trace's length).
func drain(s Stream, n int) {
	for i := 0; i < n; i++ {
		s.Next()
	}
}

func sameTail(t *testing.T, a, b Stream, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("access %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

func TestSpecStreamStateRoundTrip(t *testing.T) {
	spec, ok := ByName("mcf")
	if !ok {
		t.Fatal("mcf spec missing")
	}
	src := NewStream(spec, CoreBase(0), 42).(StatefulStream)
	drain(src, 1234)
	dst := NewStream(spec, CoreBase(0), 42).(StatefulStream)
	if err := roundTrip(t, src, dst); err != nil {
		t.Fatal(err)
	}
	sameTail(t, src, dst, 2000)
}

func TestTraceStreamStateRoundTrip(t *testing.T) {
	spec, _ := ByName("libquantum")
	var buf bytes.Buffer
	if err := WriteTrace(&buf, NewStream(spec, CoreBase(0), 1), 512); err != nil {
		t.Fatal(err)
	}
	open := func() *TraceStream {
		ts, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}

	// Cursor past one full wrap: position 700 in a 512-entry trace.
	src := open()
	drain(src, 700)
	dst := open()
	if err := roundTrip(t, src, dst); err != nil {
		t.Fatal(err)
	}
	sameTail(t, src, dst, 1024)

	// A trace of a different length must refuse the state outright rather
	// than resume at a meaningless cursor.
	short := open().Rebase(CoreBase(1))
	shorter, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	shorter.accs = shorter.accs[:100]
	if err := roundTrip(t, short, shorter); err == nil {
		t.Fatal("load into a different-length trace should fail")
	}
}
