package workload

import (
	"fmt"

	"dap/internal/ckpt"
)

// StatefulStream is implemented by streams whose position can be saved into
// a warmup checkpoint and restored into a freshly constructed stream of the
// same kind. Construction-time derived state (footprint geometry, the
// usable-block permutation, the recorded trace itself) is NOT serialized —
// it is reproduced by rebuilding the stream from its spec or trace file —
// only the mutable cursor state that functional warmup advances.
type StatefulStream interface {
	Stream
	// SaveState appends the stream's cursor state to a checkpoint section.
	SaveState(e *ckpt.Enc)
	// LoadState restores cursor state saved by SaveState. The receiver must
	// have been constructed identically to the saving stream.
	LoadState(d *ckpt.Dec) error
}

// SaveState implements StatefulStream: RNG state plus the two cursors.
func (s *specStream) SaveState(e *ckpt.Enc) {
	e.U64(s.r.s)
	e.U64(s.streamPos)
	e.U64(s.chasePos)
}

// LoadState implements StatefulStream.
func (s *specStream) LoadState(d *ckpt.Dec) error {
	s.r.s = d.U64()
	s.streamPos = d.U64()
	s.chasePos = d.U64()
	return d.Err()
}

// SaveState implements StatefulStream: the replay cursor. The trace length
// is recorded so a restore into a different trace is rejected rather than
// replayed out of phase.
func (t *TraceStream) SaveState(e *ckpt.Enc) {
	e.U64(uint64(len(t.accs)))
	e.U64(uint64(t.pos))
}

// LoadState implements StatefulStream.
func (t *TraceStream) LoadState(d *ckpt.Dec) error {
	n, pos := d.U64(), d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if int(n) != len(t.accs) {
		return fmt.Errorf("workload: checkpoint trace length %d != loaded trace length %d", n, len(t.accs))
	}
	if pos >= n {
		return fmt.Errorf("workload: checkpoint trace cursor %d out of range [0,%d)", pos, n)
	}
	t.pos = int(pos)
	return nil
}
