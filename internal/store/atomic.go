package store

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
)

// magic identifies (and versions) the checksummed file envelope shared by
// the result store and the job queue's checkpoints.
const magic = "dapstore1"

// ErrCorrupt marks a file that exists but fails envelope verification — a
// torn write, a flipped byte, a truncated payload. Callers treat it as
// "entry absent", never as data.
var ErrCorrupt = errors.New("store: corrupt or torn entry")

// encodeEnvelope renders the on-disk format:
//
//	dapstore1 <crc32-ieee of payload, hex> <payload length> <url-escaped tag>\n
//	<payload bytes>
//
// The tag carries the logical key (or a checkpoint label) so the file is
// self-describing; length and checksum make truncation and corruption
// detectable byte-for-byte.
func encodeEnvelope(tag string, payload []byte) []byte {
	header := fmt.Sprintf("%s %08x %d %s\n", magic, crc32.ChecksumIEEE(payload), len(payload), url.QueryEscape(tag))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// decodeEnvelope verifies and strips the envelope, returning the payload
// and tag. Every failure mode — bad magic, short header, length mismatch,
// checksum mismatch — comes back wrapped in ErrCorrupt.
func decodeEnvelope(raw []byte) (payload []byte, tag string, err error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, "", fmt.Errorf("%w: no header line", ErrCorrupt)
	}
	var gotMagic, escTag string
	var crc uint32
	var n int
	if _, err := fmt.Sscanf(string(raw[:nl]), "%s %x %d %s", &gotMagic, &crc, &n, &escTag); err != nil {
		return nil, "", fmt.Errorf("%w: malformed header: %v", ErrCorrupt, err)
	}
	if gotMagic != magic {
		return nil, "", fmt.Errorf("%w: bad magic %q", ErrCorrupt, gotMagic)
	}
	payload = raw[nl+1:]
	if len(payload) != n {
		return nil, "", fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, "", fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	tag, err = url.QueryUnescape(escTag)
	if err != nil {
		return nil, "", fmt.Errorf("%w: bad tag: %v", ErrCorrupt, err)
	}
	return payload, tag, nil
}

// WriteFileAtomic durably writes payload (under the checksummed envelope,
// tagged with tag) to path: staged in a sibling temp file, fsynced, renamed
// into place, directory fsynced. A reader — or a post-crash recovery —
// observes either the old complete file or the new complete file.
func WriteFileAtomic(path, tag string, payload []byte) error {
	return writeFileAtomicVia(path+".tmp", path, tag, payload)
}

func writeFileAtomicVia(tmp, path, tag string, payload []byte) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(encodeEnvelope(tag, payload))
	serr := f.Sync()
	cerr := f.Close()
	for _, e := range []error{werr, serr, cerr} {
		if e != nil {
			os.Remove(tmp)
			return e
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ReadFileVerified reads a file written by WriteFileAtomic, verifying the
// envelope. It returns os.ErrNotExist-style errors for absent files and
// ErrCorrupt-wrapped errors for torn or corrupt ones.
func ReadFileVerified(path string) (payload []byte, tag string, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	return decodeEnvelope(raw)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Platforms that refuse to sync directories are tolerated: rename ordering
// still guarantees consistency, only durability of the very last operation
// could lag.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() //nolint:errcheck // best-effort, see above
	return nil
}

// hashKey is the filename hash (FNV-64a) of a store key.
func hashKey(key string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}
