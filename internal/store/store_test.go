package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dap/internal/faultinject"
)

func openT(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := openT(t)
	key := "fp-abc|mcf|seed=0"
	payload := []byte(`{"ipc":1.25}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 put, 0 corrupt", st)
	}
}

func TestOverwriteIsAtomicAndLastWins(t *testing.T) {
	s := openT(t)
	key := "k"
	for i := 0; i < 10; i++ {
		if err := s.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	got, ok := s.Get(key)
	if !ok || string(got) != "v9" {
		t.Fatalf("Get = %q, %v; want v9", got, ok)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d; want 1 (overwrites share a file)", n)
	}
}

// entryFile finds the single .res file of a one-entry store.
func entryFile(t *testing.T, s *Store) string {
	t.Helper()
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".res") {
			return filepath.Join(s.Dir(), e.Name())
		}
	}
	t.Fatal("no .res entry found")
	return ""
}

func TestTornEntryIsMissAndQuarantined(t *testing.T) {
	s := openT(t)
	if err := s.Put("k", []byte("some result payload bytes")); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, s)
	// Tear the tail off, as a crash mid-write (without the atomic-rename
	// discipline) would.
	if err := faultinject.TruncateTail(path, 5); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("torn entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d; want 1", st.Corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("torn entry not quarantined: stat err = %v", err)
	}
	// The slot is rewritable after quarantine.
	if err := s.Put("k", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "fresh" {
		t.Fatalf("rewrite after quarantine: Get = %q, %v", got, ok)
	}
}

func TestCorruptPayloadIsMiss(t *testing.T) {
	s := openT(t)
	if err := s.Put("k", []byte("some result payload bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the payload (the header survives, the checksum fails).
	if err := faultinject.FlipByte(entryFile(t, s), -3); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d; want 1", st.Corrupt)
	}
}

func TestCorruptHeaderIsMiss(t *testing.T) {
	s := openT(t)
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipByte(entryFile(t, s), 0); err != nil { // magic byte
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("bad-magic entry served as a hit")
	}
}

func TestHasDoesNotCount(t *testing.T) {
	s := openT(t)
	if s.Has("k") {
		t.Fatal("Has on empty store")
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !s.Has("k") {
		t.Fatal("Has missed a valid entry")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Has counted lookups: %+v", st)
	}
}

func TestKeysSortedAndSkipCorrupt(t *testing.T) {
	s := openT(t)
	for _, k := range []string{"b", "a", "c"} {
		if err := s.Put(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	want := []string{"a", "b", "c"}
	if len(keys) != 3 || keys[0] != want[0] || keys[1] != want[1] || keys[2] != want[2] {
		t.Fatalf("Keys = %v; want %v", keys, want)
	}
}

func TestKeyRecordedExactlyNotJustFilename(t *testing.T) {
	s := openT(t)
	// Two keys that sanitize to the same filename prefix must not collide.
	k1, k2 := "mix|a", "mixـa" // non-ASCII maps to the same '_' as '|'
	if sanitizeName(k1, 48) != sanitizeName(k2, 48) {
		t.Skip("keys no longer share a sanitized prefix")
	}
	if err := s.Put(k1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	g1, ok1 := s.Get(k1)
	g2, ok2 := s.Get(k2)
	if !ok1 || !ok2 || string(g1) != "one" || string(g2) != "two" {
		t.Fatalf("prefix-colliding keys mixed up: %q/%v %q/%v", g1, ok1, g2, ok2)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openT(t)
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i%8) // contended: 4 writers per key
			val := []byte(fmt.Sprintf("val-%d", i%8))
			if err := s.Put(key, val); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, val) {
				t.Errorf("Get %s = %q, %v; want %q", key, got, ok, val)
			}
		}(i)
	}
	wg.Wait()
	if n := s.Len(); n != 8 {
		t.Fatalf("Len = %d; want 8", n)
	}
}

func TestWriteFileAtomicReadBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := WriteFileAtomic(path, "tag-1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	payload, tag, err := ReadFileVerified(path)
	if err != nil || tag != "tag-1" || string(payload) != "payload" {
		t.Fatalf("ReadFileVerified = %q, %q, %v", payload, tag, err)
	}
	// Overwrite keeps the envelope intact.
	if err := WriteFileAtomic(path, "tag-2", []byte("next")); err != nil {
		t.Fatal(err)
	}
	payload, tag, err = ReadFileVerified(path)
	if err != nil || tag != "tag-2" || string(payload) != "next" {
		t.Fatalf("after overwrite: %q, %q, %v", payload, tag, err)
	}
}

func TestEnvelopeRejectsTamper(t *testing.T) {
	enc := encodeEnvelope("t", []byte("hello"))
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xff
		if _, _, err := decodeEnvelope(bad); err == nil {
			// A flip inside the escaped tag may still parse; the tag then
			// differs, which callers treat as a mismatch. Anything else must
			// fail outright.
			if _, tag, _ := decodeEnvelope(bad); tag == "t" {
				t.Fatalf("flip at byte %d went undetected", i)
			}
		}
	}
}
