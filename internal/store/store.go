// Package store is a crash-consistent on-disk result store keyed by
// arbitrary strings (the sweep service keys it by config fingerprint ×
// workload × seed).
//
// Every entry is one file written with the torn-write-safe discipline the
// whole persistence layer shares (see WriteFileAtomic): payload bytes behind
// a checksummed envelope, staged in a temp file, fsynced, and atomically
// renamed into place. A reader therefore observes either the previous
// complete entry or the new complete entry, never a mixture; a crash at any
// instruction leaves at most an ignorable temp file. Corrupt or truncated
// entries — a torn envelope, a checksum mismatch, a short payload — are
// detected on open, counted, quarantined (deleted) and reported as misses,
// so one bad block can never poison a resumed sweep: the job is simply
// re-executed and the entry rewritten.
//
// Determinism makes the store safe to share: a key is only ever associated
// with one byte-exact payload, so concurrent writers racing on the same key
// are idempotent and a hit is always interchangeable with re-running the
// job.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dap/internal/telemetry"
)

// Process-wide counters so `-serve` dashboards show cache effectiveness.
var (
	mHits    = telemetry.Default.Counter("store_hits_total", "Result-store lookups served from disk.")
	mMisses  = telemetry.Default.Counter("store_misses_total", "Result-store lookups that found no entry.")
	mCorrupt = telemetry.Default.Counter("store_corrupt_total", "Result-store entries rejected as torn or corrupt and quarantined.")
	mPuts    = telemetry.Default.Counter("store_puts_total", "Result-store entries written.")
)

// hPut is the end-to-end Put latency: staging write + fsync + atomic rename.
var hPut = telemetry.Default.Histogram("store_put_seconds",
	"Result-store Put latency (staging write + fsync + atomic rename).",
	telemetry.DurationBuckets())

// Store is a directory of checksummed result files. All methods are safe
// for concurrent use from any number of goroutines (and, because writes are
// atomic renames, from any number of processes sharing the directory).
type Store struct {
	dir string

	hits, misses, corrupt, puts atomic.Uint64

	// tmpSeq disambiguates concurrent stagings of the same key.
	tmpSeq atomic.Uint64

	mu sync.Mutex // serializes directory listings only
}

// Stats is a snapshot of the store's lookup counters.
type Stats struct {
	Hits, Misses, Corrupt, Puts uint64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key onto its entry file. The filename embeds a sanitized
// prefix of the key for human inspection plus the full key's FNV-64a hash
// for uniqueness; the exact key is recorded inside the envelope and
// verified on Get, so a (vanishingly unlikely) hash collision degrades to a
// miss, never to a wrong result.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%016x.res", sanitizeName(key, 48), hashKey(key)))
}

// Get returns the payload stored under key. A missing entry returns
// (nil, false); a torn or corrupt entry is counted, deleted and also
// returned as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	path := s.path(key)
	payload, gotKey, err := ReadFileVerified(path)
	switch {
	case err == nil && gotKey == key:
		s.hits.Add(1)
		mHits.Inc()
		return payload, true
	case os.IsNotExist(err):
		s.misses.Add(1)
		mMisses.Inc()
		return nil, false
	case err == nil: // hash collision: a different key owns the file
		s.misses.Add(1)
		mMisses.Inc()
		return nil, false
	default:
		// torn or corrupt: quarantine so the slot can be rewritten cleanly
		s.corrupt.Add(1)
		s.misses.Add(1)
		mCorrupt.Inc()
		mMisses.Inc()
		os.Remove(path)
		return nil, false
	}
}

// Has reports whether key resolves to a valid entry without counting a
// hit/miss (used by recovery reconciliation).
func (s *Store) Has(key string) bool {
	payload, gotKey, err := ReadFileVerified(s.path(key))
	return err == nil && gotKey == key && payload != nil
}

// Put durably stores payload under key: staged to a temp file, checksummed,
// fsynced and atomically renamed, so a crash mid-Put never leaves a partial
// entry visible.
func (s *Store) Put(key string, payload []byte) error {
	t0 := time.Now()
	tmp := fmt.Sprintf("%s.tmp.%d.%d", s.path(key), os.Getpid(), s.tmpSeq.Add(1))
	if err := writeFileAtomicVia(tmp, s.path(key), key, payload); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	s.puts.Add(1)
	mPuts.Inc()
	hPut.ObserveSince(t0)
	return nil
}

// Keys lists every valid entry's key, sorted. Corrupt files are skipped
// (and left for Get to quarantine).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var keys []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".res") {
			continue
		}
		if _, key, err := ReadFileVerified(filepath.Join(s.dir, e.Name())); err == nil {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of valid entries.
func (s *Store) Len() int { return len(s.Keys()) }

// Stats returns the store's counter snapshot.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Puts:    s.puts.Load(),
	}
}

// sanitizeName maps a key onto a filesystem-safe prefix of at most max
// bytes.
func sanitizeName(key string, max int) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= max {
			break
		}
	}
	if b.Len() == 0 {
		return "entry"
	}
	return b.String()
}
