package dram

import (
	"fmt"

	"dap/internal/mem"
	"dap/internal/obs"
)

// RegisterMetrics registers this device's time-series probes on a sampler
// under the given name prefix: delivered bandwidth (`<prefix>.gbps`), and
// per-channel data-bus utilization (`<prefix>.c<i>.util`) and queue depth
// (`<prefix>.c<i>.q`). All probes are read-only.
func (d *Device) RegisterMetrics(s *obs.Sampler, prefix string) {
	s.UtilScaled(prefix+".gbps", mem.LineBytes*mem.CPUFreqGHz, d.TotalCAS)
	for i := range d.channels {
		ch := d.channels[i]
		s.Util(fmt.Sprintf("%s.c%d.util", prefix, i), func() uint64 {
			return uint64(ch.stats.BusyCycles)
		})
		s.GaugeInt(fmt.Sprintf("%s.c%d.q", prefix, i), ch.queueLen)
	}
}
