// Package dram models DRAM bandwidth sources: multi-channel devices with
// banks, row buffers, FR-FCFS scheduling, batched writes, read/write
// turnaround and I/O delay. It is used both for the DDR main memory and for
// the die-stacked (HBM) and embedded (eDRAM) memory-side cache arrays.
//
// The model is deliberately at the granularity that matters for the paper:
// the data bus is the bandwidth bottleneck (every 64 B access occupies the
// bus for a burst), banks provide parallelism and row buffers provide the
// latency/bandwidth difference between hits and misses. Command-bus
// contention and refresh are not modeled (the paper likewise assumes no
// maintenance overheads for its bandwidth kernels).
package dram

import (
	"fmt"

	"dap/internal/check"
	"dap/internal/mem"
)

// Config describes one DRAM device (a set of identical channels).
type Config struct {
	Name string

	Channels int // independent channels with private data buses
	Banks    int // banks per channel (ranks folded in)
	RowBytes int // row-buffer size

	// FreqMHz is the device command clock. DDR transfers twice per clock;
	// that is folded into BurstCycles below.
	FreqMHz float64

	// Timing in device clocks.
	TCAS int // column access (read latency from CAS to first data)
	TRCD int // activate to CAS
	TRP  int // precharge
	TRAS int // activate to precharge

	// BurstCycles is the number of device clocks the data bus is occupied
	// per 64 B transfer (burst length / 2 for DDR; Alloy TADs use 3).
	BurstCycles int

	// IOCycles is the additional one-way I/O/board delay in device clocks
	// charged to each access (the paper charges ten 1.2 GHz cycles to the
	// DDR4 main memory).
	IOCycles int

	// Write batching: writes are buffered and drained when the queue
	// reaches WriteHigh, until it falls to WriteLow. TurnaroundCycles is
	// the bus penalty (device clocks) for each read<->write switch.
	WriteHigh        int
	WriteLow         int
	TurnaroundCycles int

	// Refresh: every RefreshInterval device clocks (tREFI) the channel
	// stalls for RefreshCycles (tRFC) with all banks precharged. Zero
	// disables refresh, the default — the paper's bandwidth kernels assume
	// no maintenance overheads, and the evaluation is calibrated that way;
	// enable it (EnableRefresh) to measure the ~2-4% bandwidth cost.
	RefreshInterval int
	RefreshCycles   int

	// ReadOnly / WriteOnly mark eDRAM-style dedicated channels.
	ReadOnly  bool
	WriteOnly bool
}

// Validate checks the configuration fields that the derived-timing
// arithmetic divides by or shifts with: zero channels, banks, burst length
// or row size would otherwise surface as divide-by-zero panics (address
// routing divides by RowBytes/LineBytes and the channel count) or nonsense
// latencies (cpuCycles and PeakGBps divide by FreqMHz and BurstCycles).
// All problems are reported at once as check.Errors.
func (c *Config) Validate() error {
	var errs check.Collector
	errs.Positive("Channels", c.Channels)
	errs.Positive("Banks", c.Banks)
	if c.RowBytes < mem.LineBytes || c.RowBytes%mem.LineBytes != 0 {
		errs.Addf("RowBytes", c.RowBytes, "must be a positive multiple of the %d B line", mem.LineBytes)
	}
	if !(c.FreqMHz > 0) {
		errs.Addf("FreqMHz", c.FreqMHz, "must be positive (derived timings divide by it)")
	}
	errs.Positive("BurstCycles", c.BurstCycles)
	errs.NonNegative("TCAS", c.TCAS)
	errs.NonNegative("TRCD", c.TRCD)
	errs.NonNegative("TRP", c.TRP)
	errs.NonNegative("TRAS", c.TRAS)
	errs.NonNegative("IOCycles", c.IOCycles)
	errs.NonNegative("TurnaroundCycles", c.TurnaroundCycles)
	errs.NonNegative("WriteLow", c.WriteLow)
	if c.WriteHigh < c.WriteLow {
		errs.Addf("WriteHigh", c.WriteHigh, "must be >= WriteLow (%d)", c.WriteLow)
	}
	if (c.RefreshInterval > 0) != (c.RefreshCycles > 0) {
		errs.Addf("RefreshInterval", c.RefreshInterval,
			"RefreshInterval and RefreshCycles must be set together (got tRFC %d)", c.RefreshCycles)
	}
	errs.NonNegative("RefreshInterval", c.RefreshInterval)
	errs.NonNegative("RefreshCycles", c.RefreshCycles)
	if c.ReadOnly && c.WriteOnly {
		errs.Addf("ReadOnly", true, "a channel set cannot be both read-only and write-only")
	}
	return errs.Err()
}

// EnableRefresh sets JEDEC-typical refresh timing for the configuration
// (tREFI 7.8 us, tRFC 350 ns at the device clock) and returns it.
func (c Config) EnableRefresh() Config {
	c.RefreshInterval = int(7800 * c.FreqMHz / 1000)
	c.RefreshCycles = int(350 * c.FreqMHz / 1000)
	return c
}

// cpuCycles converts device clocks to CPU cycles (rounded up).
func (c *Config) cpuCycles(dev int) mem.Cycle {
	if dev <= 0 {
		return 0
	}
	f := float64(dev) * mem.CPUFreqGHz * 1000 / c.FreqMHz
	n := mem.Cycle(f)
	if float64(n) < f {
		n++
	}
	return n
}

// PeakGBps returns the aggregate peak data bandwidth of the device.
func (c *Config) PeakGBps() float64 {
	perChannel := c.FreqMHz * 1e6 / float64(c.BurstCycles) * mem.LineBytes / 1e9
	return perChannel * float64(c.Channels)
}

func (c *Config) String() string {
	return fmt.Sprintf("%s: %d ch x %d banks, %.1f GB/s peak, %d-%d-%d-%d @ %.0f MHz",
		c.Name, c.Channels, c.Banks, c.PeakGBps(), c.TCAS, c.TRCD, c.TRP, c.TRAS, c.FreqMHz)
}

// Named configurations from Section V of the paper.

// DDR4_2400 is the default dual-channel main memory (38.4 GB/s).
// Two ranks per channel, eight banks per rank, 2 KB rows, 15-15-15-39,
// burst length 8, plus a ten-cycle I/O delay at 1.2 GHz.
func DDR4_2400() Config {
	return Config{
		Name: "DDR4-2400", Channels: 2, Banks: 16, RowBytes: 2048,
		FreqMHz: 1200, TCAS: 15, TRCD: 15, TRP: 15, TRAS: 39,
		BurstCycles: 4, IOCycles: 10,
		WriteHigh: 24, WriteLow: 8, TurnaroundCycles: 8,
	}
}

// DDR4_2400NoIO removes the board/I/O latency (Figure 9 sensitivity).
func DDR4_2400NoIO() Config {
	c := DDR4_2400()
	c.Name = "DDR4-2400-noIO"
	c.IOCycles = 0
	return c
}

// DDR4_3200 is the higher-bandwidth main memory point (51.2 GB/s,
// 20-20-20-52, same latency class as DDR4-2400).
func DDR4_3200() Config {
	return Config{
		Name: "DDR4-3200", Channels: 2, Banks: 16, RowBytes: 2048,
		FreqMHz: 1600, TCAS: 20, TRCD: 20, TRP: 20, TRAS: 52,
		BurstCycles: 4, IOCycles: 13,
		WriteHigh: 24, WriteLow: 8, TurnaroundCycles: 8,
	}
}

// LPDDR4_2400 is the slow quad-channel main memory point: 32-bit channels
// with burst length 16 (same 38.4 GB/s aggregate), 24-24-24-53, ~70% higher
// row-hit latency.
func LPDDR4_2400() Config {
	return Config{
		Name: "LPDDR4-2400", Channels: 4, Banks: 8, RowBytes: 2048,
		FreqMHz: 1200, TCAS: 24, TRCD: 24, TRP: 24, TRAS: 53,
		BurstCycles: 8, IOCycles: 10,
		WriteHigh: 24, WriteLow: 8, TurnaroundCycles: 8,
	}
}

// HBM102 is the default die-stacked DRAM cache array: four 128-bit channels
// at 800 MHz (102.4 GB/s), one rank, 16 banks, 2 KB rows, 10-10-10-26,
// burst length 4.
func HBM102() Config {
	return Config{
		Name: "HBM-102.4", Channels: 4, Banks: 16, RowBytes: 2048,
		FreqMHz: 800, TCAS: 10, TRCD: 10, TRP: 10, TRAS: 26,
		BurstCycles: 2, IOCycles: 0,
		WriteHigh: 24, WriteLow: 8, TurnaroundCycles: 4,
	}
}

// HBM128 raises the stack clock to 1 GHz (128 GB/s, 12-12-12-32).
func HBM128() Config {
	c := HBM102()
	c.Name = "HBM-128"
	c.FreqMHz = 1000
	c.TCAS, c.TRCD, c.TRP, c.TRAS = 12, 12, 12, 32
	return c
}

// HBM204 doubles the channels at 800 MHz (204.8 GB/s).
func HBM204() Config {
	c := HBM102()
	c.Name = "HBM-204.8"
	c.Channels = 8
	return c
}

// EDRAMRead and EDRAMWrite are the independent 51.2 GB/s read and write
// channel sets of the sectored eDRAM cache. Access latency is about
// two-thirds of the main memory page-hit latency (Section VI-C); eDRAM rows
// behave like an always-hitting row buffer at this abstraction, so we fold
// the array latency into TCAS with TRCD=TRP=0 on a single logical bank pool.
func EDRAMRead(gbps float64) Config {
	return Config{
		Name: "eDRAM-read", Channels: 2, Banks: 32, RowBytes: 1024,
		FreqMHz: 1600, TCAS: 26, TRCD: 0, TRP: 0, TRAS: 0,
		BurstCycles: 4, IOCycles: 0,
		ReadOnly: true,
		// scale channel count if a non-default bandwidth is requested
	}.scaled(gbps)
}

// EDRAMWrite mirrors EDRAMRead for the write channel set.
func EDRAMWrite(gbps float64) Config {
	c := EDRAMRead(gbps)
	c.Name = "eDRAM-write"
	c.ReadOnly = false
	c.WriteOnly = true
	return c
}

// scaled adjusts channel count so the aggregate peak matches gbps (must be a
// multiple of the per-channel bandwidth).
func (c Config) scaled(gbps float64) Config {
	per := c.PeakGBps() / float64(c.Channels)
	n := int(gbps/per + 0.5)
	if n < 1 {
		n = 1
	}
	c.Channels = n
	return c
}
