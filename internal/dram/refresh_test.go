package dram

import (
	"testing"

	"dap/internal/mem"
	"dap/internal/sim"
)

// streamWithConfig measures delivered bandwidth for sequential reads using
// RunUntil (refresh events self-reschedule, so Drain never terminates).
func streamWithConfig(cfg Config, cycles mem.Cycle) float64 {
	eng := sim.New()
	dev := NewDevice(cfg, eng)
	var done uint64
	var addr mem.Addr
	var issue func()
	issue = func() {
		if eng.Now() >= cycles {
			return
		}
		addr += mem.LineBytes
		dev.Access(addr, mem.ReadKind, 0, func(mem.Cycle) {
			done++
			issue()
		})
	}
	for i := 0; i < 128; i++ {
		issue()
	}
	eng.RunUntil(cycles)
	return mem.GBPerSec(done*mem.LineBytes, cycles)
}

func TestRefreshCostsBandwidth(t *testing.T) {
	const cycles = 2_000_000
	without := streamWithConfig(DDR4_2400(), cycles)
	with := streamWithConfig(DDR4_2400().EnableRefresh(), cycles)
	if with >= without {
		t.Fatalf("refresh must cost bandwidth: %.2f vs %.2f GB/s", with, without)
	}
	loss := 1 - with/without
	// tRFC/tREFI = 350ns/7800ns ~ 4.5%
	if loss < 0.01 || loss > 0.10 {
		t.Fatalf("refresh loss = %.1f%%, want ~2-6%%", loss*100)
	}
}

func TestRefreshCountsRecorded(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(DDR4_2400().EnableRefresh(), eng)
	dev.Access(0, mem.ReadKind, 0, nil)
	eng.RunUntil(500_000)
	if dev.Stats().Refreshes == 0 {
		t.Fatal("refreshes must be counted")
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(DDR4_2400(), eng)
	eng.RunUntil(1_000_000)
	if dev.Stats().Refreshes != 0 {
		t.Fatal("refresh must default off (the paper assumes no maintenance)")
	}
	if eng.Pending() != 0 {
		t.Fatal("no periodic events must linger when refresh is off")
	}
}

func TestEnableRefreshTimings(t *testing.T) {
	c := DDR4_2400().EnableRefresh()
	// 7.8us at 1200 MHz = 9360 device clocks; 350ns = 420
	if c.RefreshInterval != 9360 || c.RefreshCycles != 420 {
		t.Fatalf("refresh timings = %d/%d, want 9360/420", c.RefreshInterval, c.RefreshCycles)
	}
}
