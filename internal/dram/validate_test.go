package dram

import (
	"errors"
	"testing"

	"dap/internal/check"
	"dap/internal/sim"
)

// TestNamedConfigsValid: every named configuration the paper uses must pass
// its own validation.
func TestNamedConfigsValid(t *testing.T) {
	for _, cfg := range []Config{
		DDR4_2400(), DDR4_2400NoIO(), DDR4_3200(), LPDDR4_2400(),
		HBM102(), HBM128(), HBM204(),
		EDRAMRead(51.2), EDRAMWrite(51.2),
		DDR4_2400().EnableRefresh(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

// TestValidateCatchesDerivedTimingHazards: the fields the derived-timing
// arithmetic divides by must be rejected when zero, all in one pass.
func TestValidateCatchesDerivedTimingHazards(t *testing.T) {
	cfg := DDR4_2400()
	cfg.Channels = 0  // route() modulo by channel count
	cfg.Banks = 0     // bank selection modulo
	cfg.RowBytes = 32 // rowLines = RowBytes/64 = 0: route() divide-by-zero
	cfg.FreqMHz = 0   // cpuCycles and PeakGBps divide by it
	cfg.BurstCycles = 0
	err := cfg.Validate()
	var es check.Errors
	if !errors.As(err, &es) {
		t.Fatalf("expected check.Errors, got %v", err)
	}
	if len(es) < 5 {
		t.Fatalf("expected all five hazards reported at once, got %d: %v", len(es), err)
	}
	fields := map[string]bool{}
	for _, e := range es {
		fields[e.Field] = true
	}
	for _, f := range []string{"Channels", "Banks", "RowBytes", "FreqMHz", "BurstCycles"} {
		if !fields[f] {
			t.Errorf("hazardous field %s not reported: %v", f, err)
		}
	}
}

// TestValidateRefreshPairing: refresh interval and duration must be set
// together.
func TestValidateRefreshPairing(t *testing.T) {
	cfg := DDR4_2400()
	cfg.RefreshInterval = 1000
	cfg.RefreshCycles = 0
	if cfg.Validate() == nil {
		t.Fatal("half-configured refresh accepted")
	}
}

// TestValidateWriteWatermarks: WriteHigh below WriteLow is rejected.
func TestValidateWriteWatermarks(t *testing.T) {
	cfg := DDR4_2400()
	cfg.WriteHigh, cfg.WriteLow = 4, 8
	if cfg.Validate() == nil {
		t.Fatal("inverted write watermarks accepted")
	}
}

// TestNewDeviceE: the error-returning constructor rejects bad configs and
// accepts good ones; the panicking wrapper panics with the same diagnosis.
func TestNewDeviceE(t *testing.T) {
	eng := sim.New()
	if _, err := NewDeviceE(DDR4_2400(), eng); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := DDR4_2400()
	bad.Channels = 0
	if _, err := NewDeviceE(bad, eng); err == nil {
		t.Fatal("zero-channel config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice did not panic on invalid config")
		}
	}()
	NewDevice(bad, eng)
}
