package dram

import (
	"fmt"

	"dap/internal/ckpt"
	"dap/internal/mem"
)

// Checkpoint serialization for the DRAM timing state. A warmup checkpoint
// is taken before any timed request has been enqueued, so the queues must
// be empty and the bank/bus state is still at its constructed values
// (rows closed, bus free at cycle zero); it is serialized anyway so the
// checkpoint is a complete snapshot of every channel's scheduler-visible
// state. Statistics are reset by the harness before measurement on both
// the straight and the resumed path and are not serialized.

// SaveState serializes the device's channel and bank timing state. It
// returns an error if any channel still has queued requests — a warmup
// checkpoint must be taken with the memory system drained.
func (d *Device) SaveState(e *ckpt.Enc) error {
	e.U32(uint32(len(d.channels)))
	for i, ch := range d.channels {
		if ch.queueLen() != 0 {
			return fmt.Errorf("dram: channel %d has %d queued requests; checkpoint requires a drained device", i, ch.queueLen())
		}
		e.U32(uint32(len(ch.banks)))
		for b := range ch.banks {
			bk := &ch.banks[b]
			e.I64(bk.openRow)
			e.I64(int64(bk.nextData))
			e.I64(int64(bk.actAt))
		}
		e.I64(int64(ch.busFree))
		e.Bool(ch.draining)
		e.Bool(ch.lastWrite)
	}
	return nil
}

// LoadState restores state saved by SaveState into a freshly built device
// of identical geometry.
func (d *Device) LoadState(dec *ckpt.Dec) error {
	if n := int(dec.U32()); n != len(d.channels) {
		if err := dec.Err(); err != nil {
			return err
		}
		return fmt.Errorf("dram: checkpoint has %d channels, built %d", n, len(d.channels))
	}
	for i, ch := range d.channels {
		if n := int(dec.U32()); n != len(ch.banks) {
			if err := dec.Err(); err != nil {
				return err
			}
			return fmt.Errorf("dram: checkpoint channel %d has %d banks, built %d", i, n, len(ch.banks))
		}
		for b := range ch.banks {
			bk := &ch.banks[b]
			bk.openRow = dec.I64()
			bk.nextData = mem.Cycle(dec.I64())
			bk.actAt = mem.Cycle(dec.I64())
		}
		ch.busFree = mem.Cycle(dec.I64())
		ch.draining = dec.Bool()
		ch.lastWrite = dec.Bool()
	}
	return dec.Err()
}
