package dram

import (
	"dap/internal/mem"
	"dap/internal/sim"
	"dap/internal/stats"
)

// bank tracks row-buffer state and when its next data burst may start.
type bank struct {
	openRow  int64 // -1 when closed
	nextData mem.Cycle
	actAt    mem.Cycle // last activation time (for tRAS)
}

// queued is a request waiting in a channel queue. The request lives in the
// owning device's free-list pool: the channel is its sole holder from
// enqueue until issue, where the callbacks are extracted and the record is
// returned to the pool. gen is the pool generation stamped at enqueue
// (always 0 unless built with -tags dappooldebug), re-checked at issue to
// catch a record freed or reused while queued.
type queued struct {
	req      *mem.Request
	gen      uint64
	bank     int
	row      int64
	enqueued mem.Cycle
}

// ChannelStats aggregates per-channel activity.
type ChannelStats struct {
	Reads      uint64
	Writes     uint64
	RowHits    uint64
	RowMisses  uint64
	BusyCycles mem.Cycle // data-bus occupancy
	ReadLatSum mem.Cycle // enqueue-to-data latency, reads only
	QueuePeak  int
	Refreshes  uint64
	// ReadLat is the read latency distribution (cycles, log2 buckets).
	ReadLat stats.Histogram
}

// CAS returns the total column accesses performed.
func (s ChannelStats) CAS() uint64 { return s.Reads + s.Writes }

// horizon is how far ahead of real time data-bus slots may be reserved, in
// CPU cycles. It lets row activations and precharges on different banks
// proceed under an ongoing transfer, which is what gives DRAM its bank-level
// parallelism.
const horizon mem.Cycle = 240

// channel is a single DRAM channel with a private data bus and banks.
type channel struct {
	cfg    *Config
	eng    *sim.Engine
	pool   *mem.RequestPool // owned by the device, shared by its channels
	banks  []bank
	readQ  []queued
	writeQ []queued

	busFree   mem.Cycle
	draining  bool // write-drain mode
	lastWrite bool // last burst was a write (turnaround tracking)
	scheduled bool
	stats     ChannelStats

	// latencies precomputed in CPU cycles
	tCAS, tRCD, tRP, tRAS, burst, io, turn mem.Cycle
}

func newChannel(cfg *Config, eng *sim.Engine, pool *mem.RequestPool) *channel {
	ch := &channel{
		cfg: cfg, eng: eng, pool: pool, banks: make([]bank, cfg.Banks),
		// Queues sized for the usual backlog up front: growing them from
		// nil one doubling at a time was the largest allocation site of a
		// freshly built device.
		readQ:  make([]queued, 0, 64),
		writeQ: make([]queued, 0, 64),
	}
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	if cfg.RefreshInterval > 0 && cfg.RefreshCycles > 0 {
		interval := cfg.cpuCycles(cfg.RefreshInterval)
		dur := cfg.cpuCycles(cfg.RefreshCycles)
		var refresh func()
		refresh = func() {
			// all banks close and the channel stalls for tRFC
			start := maxCycle(eng.Now(), ch.busFree)
			end := start + dur
			ch.busFree = end
			for i := range ch.banks {
				ch.banks[i].openRow = -1
				if ch.banks[i].nextData < end {
					ch.banks[i].nextData = end
				}
			}
			ch.stats.Refreshes++
			eng.At(eng.Now()+interval, refresh)
		}
		eng.At(interval, refresh)
	}
	ch.tCAS = cfg.cpuCycles(cfg.TCAS)
	ch.tRCD = cfg.cpuCycles(cfg.TRCD)
	ch.tRP = cfg.cpuCycles(cfg.TRP)
	ch.tRAS = cfg.cpuCycles(cfg.TRAS)
	ch.burst = cfg.cpuCycles(cfg.BurstCycles)
	ch.io = cfg.cpuCycles(cfg.IOCycles)
	ch.turn = cfg.cpuCycles(cfg.TurnaroundCycles)
	return ch
}

// enqueue adds a pooled request; bank/row decoding already done by the
// device. Ownership of r transfers to the channel, which returns it to the
// pool at issue time.
func (ch *channel) enqueue(r *mem.Request, bk int, row int64) {
	q := queued{req: r, gen: ch.pool.Generation(r), bank: bk, row: row, enqueued: ch.eng.Now()}
	if r.Kind.IsWrite() && !ch.cfg.ReadOnly {
		ch.writeQ = append(ch.writeQ, q)
	} else {
		ch.readQ = append(ch.readQ, q)
	}
	if n := len(ch.readQ) + len(ch.writeQ); n > ch.stats.QueuePeak {
		ch.stats.QueuePeak = n
	}
	ch.kick(ch.eng.Now())
}

// queueLen reports pending requests (used by SBD's latency estimate).
func (ch *channel) queueLen() int { return len(ch.readQ) + len(ch.writeQ) }

func (ch *channel) kick(at mem.Cycle) {
	if ch.scheduled {
		return
	}
	ch.scheduled = true
	// AtArg with a top-level handler: forming the method value ch.schedule
	// here allocated a closure per kick, which profiling showed was the
	// single largest allocation site in the whole simulator (~36%).
	ch.eng.AtArg(at, chanSchedule, ch, 0)
}

// chanSchedule is the typed scheduler-kick handler (see kick).
func chanSchedule(ctx any, _ uint64, _ mem.Cycle) { ctx.(*channel).schedule() }

// estStart estimates the earliest data-bus start for a queued request if it
// were issued now.
func (ch *channel) estStart(e *queued, now mem.Cycle) mem.Cycle {
	b := &ch.banks[e.bank]
	var ready mem.Cycle
	switch {
	case b.openRow == e.row:
		ready = now + ch.tCAS
	case b.openRow == -1:
		ready = now + ch.tRCD + ch.tCAS
	default:
		pre := maxCycle(now, b.actAt+ch.tRAS)
		ready = pre + ch.tRP + ch.tRCD + ch.tCAS
	}
	return maxCycle(maxCycle(ready, b.nextData), ch.busFree)
}

// pick selects the issuable request with the earliest achievable data start
// among the oldest window entries (FR-FCFS: row hits to ready banks win).
func (ch *channel) pick(q []queued, now mem.Cycle) int {
	const window = 16
	n := len(q)
	if n > window {
		n = window
	}
	best, bestStart := 0, ch.estStart(&q[0], now)
	for i := 1; i < n; i++ {
		if s := ch.estStart(&q[i], now); s < bestStart {
			best, bestStart = i, s
		}
	}
	return best
}

// selectQueue applies write-batching hysteresis and returns the queue to
// serve next (nil when idle).
func (ch *channel) selectQueue() *[]queued {
	if ch.cfg.WriteOnly {
		if len(ch.writeQ) > 0 {
			return &ch.writeQ
		}
		return nil
	}
	if ch.cfg.ReadOnly {
		if len(ch.readQ) > 0 {
			return &ch.readQ
		}
		return nil
	}
	if ch.draining {
		if len(ch.writeQ) == 0 || (len(ch.writeQ) <= ch.cfg.WriteLow && len(ch.readQ) > 0) {
			ch.draining = false
		}
	} else {
		if (ch.cfg.WriteHigh > 0 && len(ch.writeQ) >= ch.cfg.WriteHigh) ||
			(len(ch.readQ) == 0 && len(ch.writeQ) > 0) {
			ch.draining = true
		}
	}
	if ch.draining && len(ch.writeQ) > 0 {
		return &ch.writeQ
	}
	if len(ch.readQ) > 0 {
		return &ch.readQ
	}
	return nil
}

// schedule issues requests while data-bus slots within the lookahead horizon
// remain, then re-arms itself.
func (ch *channel) schedule() {
	ch.scheduled = false
	now := ch.eng.Now()
	for {
		q := ch.selectQueue()
		if q == nil {
			return // idle; next enqueue kicks
		}
		if ch.busFree >= now+horizon {
			ch.kick(maxCycle(now+1, ch.busFree-horizon))
			return
		}
		i := ch.pick(*q, now)
		e := (*q)[i]
		*q = append((*q)[:i], (*q)[i+1:]...)
		ch.issue(&e, now)
	}
}

// issue performs the timing bookkeeping for one request, then releases the
// request record back to the device pool: everything the completion needs
// (the Done func value) is copied into the scheduled event, so nothing
// references the record after issue returns.
func (ch *channel) issue(e *queued, now mem.Cycle) {
	ch.pool.CheckLive(e.req, e.gen)
	isWrite := e.req.Kind.IsWrite() && !ch.cfg.ReadOnly
	b := &ch.banks[e.bank]
	burst := ch.burst
	if e.req.Burst > 0 {
		burst = ch.cfg.cpuCycles(int(e.req.Burst))
	}

	var dataStart mem.Cycle
	switch {
	case b.openRow == e.row:
		dataStart = maxCycle(now+ch.tCAS, b.nextData)
		ch.stats.RowHits++
	case b.openRow == -1:
		dataStart = maxCycle(now+ch.tRCD+ch.tCAS, b.nextData)
		b.actAt = dataStart - ch.tCAS - ch.tRCD
		ch.stats.RowMisses++
	default:
		pre := maxCycle(now, b.actAt+ch.tRAS)
		dataStart = maxCycle(pre+ch.tRP+ch.tRCD+ch.tCAS, b.nextData)
		b.actAt = dataStart - ch.tCAS - ch.tRCD
		ch.stats.RowMisses++
	}
	b.openRow = e.row

	busReady := ch.busFree
	if isWrite != ch.lastWrite {
		busReady += ch.turn
	}
	dataStart = maxCycle(dataStart, busReady)
	ch.lastWrite = isWrite
	b.nextData = dataStart + burst
	ch.busFree = dataStart + burst
	ch.stats.BusyCycles += burst

	if e.req.OnIssue != nil {
		e.req.OnIssue(dataStart - e.enqueued)
	}

	done := dataStart + burst + ch.io
	if isWrite {
		ch.stats.Writes++
	} else {
		ch.stats.Reads++
		ch.stats.ReadLatSum += done - e.enqueued
		ch.stats.ReadLat.Add(uint64(done - e.enqueued))
	}
	if e.req.Done != nil {
		// AtCall hands the callback its execution cycle directly, so no
		// wrapper closure is allocated per completed access.
		ch.eng.AtCall(done, e.req.Done)
	}
	ch.pool.Put(e.req)
	e.req = nil
}

func maxCycle(a, b mem.Cycle) mem.Cycle {
	if a > b {
		return a
	}
	return b
}
