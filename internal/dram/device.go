package dram

import (
	"dap/internal/mem"
	"dap/internal/sim"
)

// FaultAction is a fault-injection verdict for one request: drop its
// response (the access still occupies bandwidth, but the data never
// arrives) and/or delay its completion by ExtraDelay cycles.
type FaultAction struct {
	DropResponse bool
	ExtraDelay   mem.Cycle
}

// FaultHook inspects every enqueued request and returns the fault (if any)
// to inject. The zero FaultAction leaves the request untouched.
type FaultHook func(*mem.Request) FaultAction

// Device is a multi-channel DRAM bandwidth source. Lines are interleaved
// across channels at 64 B granularity; banks are selected from higher
// address bits XOR-folded with the row index to spread conflicts.
type Device struct {
	Cfg      Config
	eng      *sim.Engine
	channels []*channel

	// pool recycles request records across the device's channel queues.
	// The device and its channels run on one engine goroutine, so the
	// LIFO free list is deterministic and needs no locking. Steady state
	// holds the peak queue depth's worth of records and allocates nothing.
	pool mem.RequestPool

	rowLines uint64 // lines per row

	// Kinds counts accesses by kind for bandwidth attribution.
	Kinds [8]uint64

	// Fault, when non-nil, is consulted on every enqueue (fault injection).
	Fault FaultHook
}

// NewDeviceE builds a device from a configuration, rejecting one whose
// derived timings would divide by zero or route addresses nonsensically.
func NewDeviceE(cfg Config, eng *sim.Engine) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{Cfg: cfg, eng: eng, rowLines: uint64(cfg.RowBytes / mem.LineBytes)}
	for i := 0; i < cfg.Channels; i++ {
		d.channels = append(d.channels, newChannel(&d.Cfg, eng, &d.pool))
	}
	return d, nil
}

// NewDevice builds a device from a configuration; it panics on an invalid
// one (use NewDeviceE, or validate the enclosing system configuration, to
// get structured errors instead).
func NewDevice(cfg Config, eng *sim.Engine) *Device {
	d, err := NewDeviceE(cfg, eng)
	if err != nil {
		panic("dram: " + err.Error())
	}
	return d
}

// route decodes an address into channel, bank and row.
func (d *Device) route(a mem.Addr) (ch, bk int, row int64) {
	line := uint64(a.Line())
	nch := uint64(len(d.channels))
	ch = int(line % nch)
	inCh := line / nch
	r := inCh / d.rowLines
	nbk := uint64(d.Cfg.Banks)
	bk = int((r ^ (r >> 4)) % nbk)
	return ch, bk, int64(r)
}

// Enqueue submits a request to the device. The request's Done callback (if
// any) fires when data is transferred. The request is consumed by value —
// the device copies it into a pooled record and never retains r — so
// callers may pass a stack-allocated request and reuse or discard it
// immediately. (Prefer Access/AccessBurst: they fill the pooled record
// directly without the intermediate copy.)
func (d *Device) Enqueue(r *mem.Request) {
	p := d.pool.Get()
	*p = *r
	d.submit(p)
}

// submit is the pooled-request path shared by Access, AccessTraced,
// AccessBurst and Enqueue. Ownership of r (a record from d.pool) passes to
// the target channel. The fault hook lives on a separate non-inlined path
// so the fault-free common case stays branch-light.
func (d *Device) submit(r *mem.Request) {
	if d.Fault != nil {
		d.submitFaulty(r)
		return
	}
	d.Kinds[r.Kind]++
	ch, bk, row := d.route(r.Addr)
	d.channels[ch].enqueue(r, bk, row)
}

// submitFaulty consults the fault hook and rewrites the request according
// to its verdict: a dropped response loses its Done callback (the transfer
// still happens, so the bandwidth is spent, but the waiter never wakes); a
// delay defers Done.
//
//go:noinline
func (d *Device) submitFaulty(r *mem.Request) {
	if act := d.Fault(r); act.DropResponse || act.ExtraDelay > 0 {
		switch {
		case act.DropResponse:
			r.Done = nil
		case r.Done != nil:
			orig, extra := r.Done, act.ExtraDelay
			r.Done = func(t mem.Cycle) {
				d.eng.After(extra, func() { orig(t + extra) })
			}
		}
	}
	d.Kinds[r.Kind]++
	ch, bk, row := d.route(r.Addr)
	d.channels[ch].enqueue(r, bk, row)
}

// Access is a convenience wrapper building a Request.
func (d *Device) Access(a mem.Addr, k mem.Kind, core int, done func(mem.Cycle)) {
	r := d.pool.Get()
	r.Addr, r.Kind, r.Core, r.Issued, r.Done = a, k, core, d.eng.Now(), done
	d.submit(r)
}

// AccessBurst is Access with an explicit burst-length override in device
// cycles (0 means the config default). It exists for the mscache
// controllers' tag-and-data and writeback transactions, which transfer
// more than one line per CAS; routing them here keeps the request record
// pooled instead of heap-allocating one per enqueue.
func (d *Device) AccessBurst(a mem.Addr, k mem.Kind, core int, burst uint8, done func(mem.Cycle)) {
	r := d.pool.Get()
	r.Addr, r.Kind, r.Core, r.Issued, r.Burst, r.Done = a, k, core, d.eng.Now(), burst, done
	d.submit(r)
}

// AccessTraced is Access with an observability issue hook attached: onIssue
// (if non-nil) receives the request's in-queue wait when its data burst is
// scheduled. Timing is identical to Access.
func (d *Device) AccessTraced(a mem.Addr, k mem.Kind, core int, onIssue func(mem.Cycle), done func(mem.Cycle)) {
	r := d.pool.Get()
	r.Addr, r.Kind, r.Core, r.Issued, r.OnIssue, r.Done = a, k, core, d.eng.Now(), onIssue, done
	d.submit(r)
}

// NumChannels returns the number of channels.
func (d *Device) NumChannels() int { return len(d.channels) }

// ChannelQueueLen returns the pending requests queued on one channel.
func (d *Device) ChannelQueueLen(i int) int { return d.channels[i].queueLen() }

// ChannelBusyCycles returns one channel's cumulative data-bus occupancy.
func (d *Device) ChannelBusyCycles(i int) mem.Cycle { return d.channels[i].stats.BusyCycles }

// TotalCAS returns the cumulative column accesses across channels.
func (d *Device) TotalCAS() uint64 {
	var n uint64
	for _, ch := range d.channels {
		n += ch.stats.Reads + ch.stats.Writes
	}
	return n
}

// QueueLen returns the total queued requests across channels.
func (d *Device) QueueLen() int {
	n := 0
	for _, ch := range d.channels {
		n += ch.queueLen()
	}
	return n
}

// Stats sums channel statistics.
func (d *Device) Stats() ChannelStats {
	var s ChannelStats
	for _, ch := range d.channels {
		s.Reads += ch.stats.Reads
		s.Writes += ch.stats.Writes
		s.RowHits += ch.stats.RowHits
		s.RowMisses += ch.stats.RowMisses
		s.BusyCycles += ch.stats.BusyCycles
		s.ReadLatSum += ch.stats.ReadLatSum
		s.ReadLat.Merge(&ch.stats.ReadLat)
		s.Refreshes += ch.stats.Refreshes
		if ch.stats.QueuePeak > s.QueuePeak {
			s.QueuePeak = ch.stats.QueuePeak
		}
	}
	return s
}

// ResetStats clears all channel statistics (used after warmup).
func (d *Device) ResetStats() {
	for _, ch := range d.channels {
		ch.stats = ChannelStats{}
	}
	d.Kinds = [8]uint64{}
}

// DeliveredGBps reports the average data bandwidth over a cycle span.
func (d *Device) DeliveredGBps(cycles mem.Cycle) float64 {
	s := d.Stats()
	return mem.GBPerSec(s.CAS()*mem.LineBytes, cycles)
}

// AvgReadLatency returns the mean enqueue-to-data read latency in cycles.
func (d *Device) AvgReadLatency() float64 {
	s := d.Stats()
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatSum) / float64(s.Reads)
}
