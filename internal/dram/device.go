package dram

import (
	"dap/internal/mem"
	"dap/internal/sim"
)

// FaultAction is a fault-injection verdict for one request: drop its
// response (the access still occupies bandwidth, but the data never
// arrives) and/or delay its completion by ExtraDelay cycles.
type FaultAction struct {
	DropResponse bool
	ExtraDelay   mem.Cycle
}

// FaultHook inspects every enqueued request and returns the fault (if any)
// to inject. The zero FaultAction leaves the request untouched.
type FaultHook func(*mem.Request) FaultAction

// Device is a multi-channel DRAM bandwidth source. Lines are interleaved
// across channels at 64 B granularity; banks are selected from higher
// address bits XOR-folded with the row index to spread conflicts.
type Device struct {
	Cfg      Config
	eng      *sim.Engine
	channels []*channel

	rowLines uint64 // lines per row

	// Kinds counts accesses by kind for bandwidth attribution.
	Kinds [8]uint64

	// Fault, when non-nil, is consulted on every enqueue (fault injection).
	Fault FaultHook
}

// NewDeviceE builds a device from a configuration, rejecting one whose
// derived timings would divide by zero or route addresses nonsensically.
func NewDeviceE(cfg Config, eng *sim.Engine) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{Cfg: cfg, eng: eng, rowLines: uint64(cfg.RowBytes / mem.LineBytes)}
	for i := 0; i < cfg.Channels; i++ {
		d.channels = append(d.channels, newChannel(&d.Cfg, eng))
	}
	return d, nil
}

// NewDevice builds a device from a configuration; it panics on an invalid
// one (use NewDeviceE, or validate the enclosing system configuration, to
// get structured errors instead).
func NewDevice(cfg Config, eng *sim.Engine) *Device {
	d, err := NewDeviceE(cfg, eng)
	if err != nil {
		panic("dram: " + err.Error())
	}
	return d
}

// route decodes an address into channel, bank and row.
func (d *Device) route(a mem.Addr) (ch, bk int, row int64) {
	line := uint64(a.Line())
	nch := uint64(len(d.channels))
	ch = int(line % nch)
	inCh := line / nch
	r := inCh / d.rowLines
	nbk := uint64(d.Cfg.Banks)
	bk = int((r ^ (r >> 4)) % nbk)
	return ch, bk, int64(r)
}

// Enqueue submits a request to the device. The request's Done callback (if
// any) fires when data is transferred. The request is consumed by value —
// the device never retains r — so callers may pass a stack-allocated
// request and reuse or discard it immediately.
func (d *Device) Enqueue(r *mem.Request) {
	d.enqueueReq(*r)
}

// enqueueReq is the by-value request path shared by Access, AccessTraced
// and Enqueue. Keeping the fault hook on a separate non-inlined path lets
// escape analysis keep fault-free requests (the overwhelmingly common
// case) off the heap entirely.
func (d *Device) enqueueReq(req mem.Request) {
	if d.Fault != nil {
		d.enqueueFaulty(req)
		return
	}
	d.Kinds[req.Kind]++
	ch, bk, row := d.route(req.Addr)
	d.channels[ch].enqueue(req, bk, row)
}

// enqueueFaulty consults the fault hook and rewrites the request according
// to its verdict: a dropped response loses its Done callback (the transfer
// still happens, so the bandwidth is spent, but the waiter never wakes); a
// delay defers Done.
//
//go:noinline
func (d *Device) enqueueFaulty(req mem.Request) {
	if act := d.Fault(&req); act.DropResponse || act.ExtraDelay > 0 {
		switch {
		case act.DropResponse:
			req.Done = nil
		case req.Done != nil:
			orig, extra := req.Done, act.ExtraDelay
			req.Done = func(t mem.Cycle) {
				d.eng.After(extra, func() { orig(t + extra) })
			}
		}
	}
	d.Kinds[req.Kind]++
	ch, bk, row := d.route(req.Addr)
	d.channels[ch].enqueue(req, bk, row)
}

// Access is a convenience wrapper building a Request.
func (d *Device) Access(a mem.Addr, k mem.Kind, core int, done func(mem.Cycle)) {
	d.enqueueReq(mem.Request{Addr: a, Kind: k, Core: core, Issued: d.eng.Now(), Done: done})
}

// AccessTraced is Access with an observability issue hook attached: onIssue
// (if non-nil) receives the request's in-queue wait when its data burst is
// scheduled. Timing is identical to Access.
func (d *Device) AccessTraced(a mem.Addr, k mem.Kind, core int, onIssue func(mem.Cycle), done func(mem.Cycle)) {
	d.enqueueReq(mem.Request{Addr: a, Kind: k, Core: core, Issued: d.eng.Now(), OnIssue: onIssue, Done: done})
}

// NumChannels returns the number of channels.
func (d *Device) NumChannels() int { return len(d.channels) }

// ChannelQueueLen returns the pending requests queued on one channel.
func (d *Device) ChannelQueueLen(i int) int { return d.channels[i].queueLen() }

// ChannelBusyCycles returns one channel's cumulative data-bus occupancy.
func (d *Device) ChannelBusyCycles(i int) mem.Cycle { return d.channels[i].stats.BusyCycles }

// TotalCAS returns the cumulative column accesses across channels.
func (d *Device) TotalCAS() uint64 {
	var n uint64
	for _, ch := range d.channels {
		n += ch.stats.Reads + ch.stats.Writes
	}
	return n
}

// QueueLen returns the total queued requests across channels.
func (d *Device) QueueLen() int {
	n := 0
	for _, ch := range d.channels {
		n += ch.queueLen()
	}
	return n
}

// Stats sums channel statistics.
func (d *Device) Stats() ChannelStats {
	var s ChannelStats
	for _, ch := range d.channels {
		s.Reads += ch.stats.Reads
		s.Writes += ch.stats.Writes
		s.RowHits += ch.stats.RowHits
		s.RowMisses += ch.stats.RowMisses
		s.BusyCycles += ch.stats.BusyCycles
		s.ReadLatSum += ch.stats.ReadLatSum
		s.ReadLat.Merge(&ch.stats.ReadLat)
		s.Refreshes += ch.stats.Refreshes
		if ch.stats.QueuePeak > s.QueuePeak {
			s.QueuePeak = ch.stats.QueuePeak
		}
	}
	return s
}

// ResetStats clears all channel statistics (used after warmup).
func (d *Device) ResetStats() {
	for _, ch := range d.channels {
		ch.stats = ChannelStats{}
	}
	d.Kinds = [8]uint64{}
}

// DeliveredGBps reports the average data bandwidth over a cycle span.
func (d *Device) DeliveredGBps(cycles mem.Cycle) float64 {
	s := d.Stats()
	return mem.GBPerSec(s.CAS()*mem.LineBytes, cycles)
}

// AvgReadLatency returns the mean enqueue-to-data read latency in cycles.
func (d *Device) AvgReadLatency() float64 {
	s := d.Stats()
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatSum) / float64(s.Reads)
}
