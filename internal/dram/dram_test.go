package dram

import (
	"testing"

	"dap/internal/mem"
	"dap/internal/sim"
)

func TestPeakBandwidths(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64
	}{
		{DDR4_2400(), 38.4},
		{DDR4_3200(), 51.2},
		{LPDDR4_2400(), 38.4},
		{HBM102(), 102.4},
		{HBM128(), 128.0},
		{HBM204(), 204.8},
		{EDRAMRead(51.2), 51.2},
		{EDRAMWrite(51.2), 51.2},
	}
	for _, c := range cases {
		got := c.cfg.PeakGBps()
		if got < c.want*0.999 || got > c.want*1.001 {
			t.Errorf("%s: peak = %.2f GB/s, want %.2f", c.cfg.Name, got, c.want)
		}
	}
}

func TestCPUCycleConversion(t *testing.T) {
	c := DDR4_2400() // 1200 MHz device, 4000 MHz CPU
	if got := c.cpuCycles(3); got != 10 {
		t.Fatalf("3 device clocks = %d CPU cycles, want 10", got)
	}
	if got := c.cpuCycles(0); got != 0 {
		t.Fatalf("0 device clocks = %d", got)
	}
	// rounding up: 1 device clock = 3.33 -> 4
	if got := c.cpuCycles(1); got != 4 {
		t.Fatalf("1 device clock = %d CPU cycles, want 4", got)
	}
}

// stream measures delivered bandwidth for sequential reads.
func streamGBps(t *testing.T, cfg Config, outstanding int, cycles mem.Cycle) float64 {
	t.Helper()
	eng := sim.New()
	dev := NewDevice(cfg, eng)
	var done uint64
	var addr mem.Addr
	var issue func()
	issue = func() {
		if eng.Now() >= cycles {
			return
		}
		addr += mem.LineBytes
		dev.Access(addr, mem.ReadKind, 0, func(mem.Cycle) {
			done++
			issue()
		})
	}
	for i := 0; i < outstanding; i++ {
		issue()
	}
	eng.RunUntil(cycles)
	return mem.GBPerSec(done*mem.LineBytes, cycles)
}

func TestStreamingReachesNearPeak(t *testing.T) {
	for _, cfg := range []Config{DDR4_2400(), HBM102()} {
		got := streamGBps(t, cfg, 128, 1_000_000)
		peak := cfg.PeakGBps()
		if got < 0.85*peak {
			t.Errorf("%s: streaming delivers %.1f GB/s, want >= 85%% of %.1f", cfg.Name, got, peak)
		}
		if got > peak*1.001 {
			t.Errorf("%s: delivered %.1f exceeds peak %.1f", cfg.Name, got, peak)
		}
	}
}

func TestRandomIsSlowerThanStreaming(t *testing.T) {
	cfg := DDR4_2400()
	eng := sim.New()
	dev := NewDevice(cfg, eng)
	var done uint64
	rng := uint64(12345)
	var issue func()
	issue = func() {
		if eng.Now() >= 1_000_000 {
			return
		}
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		a := mem.Addr(rng*0x2545f4914f6cdd1d) & 0x3fffffc0
		dev.Access(a, mem.ReadKind, 0, func(mem.Cycle) {
			done++
			issue()
		})
	}
	for i := 0; i < 128; i++ {
		issue()
	}
	eng.RunUntil(1_000_000)
	random := mem.GBPerSec(done*mem.LineBytes, 1_000_000)
	seq := streamGBps(t, cfg, 128, 1_000_000)
	if random >= seq {
		t.Fatalf("random (%.1f) should be slower than sequential (%.1f)", random, seq)
	}
	st := dev.Stats()
	if st.RowMisses == 0 {
		t.Fatal("random traffic must cause row misses")
	}
}

func TestRowHitsForSequential(t *testing.T) {
	cfg := DDR4_2400()
	eng := sim.New()
	dev := NewDevice(cfg, eng)
	// touch 64 sequential lines synchronously-ish
	for i := 0; i < 256; i++ {
		dev.Access(mem.Addr(i*mem.LineBytes), mem.ReadKind, 0, nil)
	}
	eng.Drain()
	st := dev.Stats()
	if st.Reads != 256 {
		t.Fatalf("reads = %d, want 256", st.Reads)
	}
	if st.RowHits < st.RowMisses {
		t.Fatalf("sequential traffic should be row-hit dominated: hits=%d misses=%d", st.RowHits, st.RowMisses)
	}
}

func TestWritesAreBatched(t *testing.T) {
	cfg := DDR4_2400()
	eng := sim.New()
	dev := NewDevice(cfg, eng)
	// interleave reads and writes; writes must not starve
	for i := 0; i < 100; i++ {
		dev.Access(mem.Addr(i*mem.LineBytes), mem.ReadKind, 0, nil)
		dev.Access(mem.Addr((i+4096)*mem.LineBytes), mem.WritebackKind, 0, nil)
	}
	eng.Drain()
	st := dev.Stats()
	if st.Reads != 100 || st.Writes != 100 {
		t.Fatalf("reads=%d writes=%d, want 100/100", st.Reads, st.Writes)
	}
}

func TestDoneCallbackAlwaysFires(t *testing.T) {
	cfg := HBM102()
	eng := sim.New()
	dev := NewDevice(cfg, eng)
	fired := 0
	n := 500
	for i := 0; i < n; i++ {
		dev.Access(mem.Addr(i*977*mem.LineBytes), mem.ReadKind, 0, func(mem.Cycle) { fired++ })
	}
	eng.Drain()
	if fired != n {
		t.Fatalf("done fired %d times, want %d", fired, n)
	}
}

func TestReadLatencyReasonable(t *testing.T) {
	cfg := DDR4_2400()
	eng := sim.New()
	dev := NewDevice(cfg, eng)
	var lat mem.Cycle
	issued := eng.Now()
	dev.Access(0, mem.ReadKind, 0, func(d mem.Cycle) { lat = d - issued })
	eng.Drain()
	// closed bank: tRCD+tCAS+burst+IO = (15+15)*3.33 + 13.3 + 33.3 ~ 147
	if lat < 80 || lat > 250 {
		t.Fatalf("unloaded read latency = %d cycles, want ~100-250", lat)
	}
}

func TestTADBurstOccupiesMoreBus(t *testing.T) {
	cfg := HBM102()
	eng := sim.New()
	dev := NewDevice(cfg, eng)
	for i := 0; i < 100; i++ {
		dev.Enqueue(&mem.Request{Addr: mem.Addr(i * mem.LineBytes), Kind: mem.ReadKind, Burst: 3})
	}
	eng.Drain()
	tad := dev.Stats().BusyCycles
	dev2 := NewDevice(cfg, sim.New())
	eng2 := sim.New()
	dev2 = NewDevice(cfg, eng2)
	for i := 0; i < 100; i++ {
		dev2.Access(mem.Addr(i*mem.LineBytes), mem.ReadKind, 0, nil)
	}
	eng2.Drain()
	plain := dev2.Stats().BusyCycles
	if tad <= plain {
		t.Fatalf("TAD busy %d must exceed plain busy %d", tad, plain)
	}
}

func TestEDRAMSeparateChannels(t *testing.T) {
	eng := sim.New()
	rd := NewDevice(EDRAMRead(51.2), eng)
	wr := NewDevice(EDRAMWrite(51.2), eng)
	for i := 0; i < 50; i++ {
		rd.Access(mem.Addr(i*mem.LineBytes), mem.ReadKind, 0, nil)
		wr.Access(mem.Addr(i*mem.LineBytes), mem.FillKind, 0, nil)
	}
	eng.Drain()
	if rd.Stats().Reads != 50 {
		t.Fatalf("read channels served %d", rd.Stats().Reads)
	}
	if wr.Stats().Writes != 50 {
		t.Fatalf("write channels served %d", wr.Stats().Writes)
	}
}

func TestResetStats(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(DDR4_2400(), eng)
	dev.Access(0, mem.ReadKind, 0, nil)
	eng.Drain()
	if dev.Stats().CAS() != 1 {
		t.Fatal("expected one CAS")
	}
	dev.ResetStats()
	if dev.Stats().CAS() != 0 || dev.Kinds[mem.ReadKind] != 0 {
		t.Fatal("stats must reset")
	}
}

func TestQueueLen(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(DDR4_2400(), eng)
	for i := 0; i < 10; i++ {
		dev.Access(mem.Addr(i*64), mem.ReadKind, 0, nil)
	}
	if dev.QueueLen() == 0 {
		t.Fatal("queue should hold pending requests before the engine runs")
	}
	eng.Drain()
	if dev.QueueLen() != 0 {
		t.Fatal("queue must drain")
	}
}

func TestChannelInterleaving(t *testing.T) {
	eng := sim.New()
	dev := NewDevice(DDR4_2400(), eng) // 2 channels
	// consecutive lines alternate channels: per-channel stats should split
	for i := 0; i < 100; i++ {
		dev.Access(mem.Addr(i*mem.LineBytes), mem.ReadKind, 0, nil)
	}
	eng.Drain()
	for i, ch := range dev.channels {
		if ch.stats.Reads != 50 {
			t.Fatalf("channel %d served %d, want 50", i, ch.stats.Reads)
		}
	}
}
